//===- bench/ablation_cost.cpp - Cost-function ablation (E5) ----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E5: how much do the Definition 2/9 cost functions matter?
/// Runs the diagnosis loop over the 11 benchmarks under three cost models
/// (the paper's, uniform costs, and the tiers swapped) and compares the
/// number of queries, total query size, and classification success. The
/// paper argues its asymmetric costs ask the easiest questions first; the
/// ablation quantifies that.
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"
#include "smt/FormulaOps.h"
#include "study/Benchmarks.h"

#include <cstdio>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

namespace {

struct ModelTotals {
  int Queries = 0;
  size_t QueryAtoms = 0;
  int Decided = 0;
  int WrongStrategyFirst = 0; ///< first query kind mismatches ground truth
};

ModelTotals runModel(CostModel Model) {
  ModelTotals T;
  for (const BenchmarkInfo &B : benchmarkSuite()) {
    ErrorDiagnoser D(abdiag::Options().costs(Model));
    if (LoadResult L = D.loadFile(benchmarkPath(B)); !L) {
      std::fprintf(stderr, "cannot load %s: %s\n", B.Name.c_str(),
                   L.message().c_str());
      std::exit(1);
    }
    auto Oracle = D.makeConcreteOracle();
    DiagnosisResult R = D.diagnose(*Oracle);
    T.Queries += static_cast<int>(R.Transcript.size());
    for (const QueryRecord &Q : R.Transcript)
      T.QueryAtoms += smt::atomCount(Q.Fml);
    if (R.Outcome != DiagnosisOutcome::Inconclusive)
      ++T.Decided;
    // "Right" opening strategy: invariant query for false alarms, witness
    // query for real bugs (with a perfect user either resolves in one).
    if (!R.Transcript.empty()) {
      bool OpenedWithWitness =
          R.Transcript.front().K == QueryRecord::Kind::Possible;
      if (OpenedWithWitness != B.IsRealBug)
        ++T.WrongStrategyFirst;
    }
  }
  return T;
}

} // namespace

int main() {
  struct Row {
    const char *Name;
    CostModel Model;
  } Rows[] = {{"paper (Defs. 2/9)", CostModel::Paper},
              {"uniform", CostModel::Uniform},
              {"swapped", CostModel::Swapped}};

  std::printf("cost-function ablation over the 11 benchmarks "
              "(sound oracle)\n\n");
  std::printf("%-20s %9s %12s %11s %20s\n", "cost model", "queries",
              "query atoms", "decided", "wrong-first-strategy");
  std::printf("%-20s %9s %12s %11s %20s\n", "----------", "-------",
              "-----------", "-------", "--------------------");
  for (const Row &R : Rows) {
    ModelTotals T = runModel(R.Model);
    std::printf("%-20s %9d %12zu %8d/11 %20d\n", R.Name, T.Queries,
                T.QueryAtoms, T.Decided, T.WrongStrategyFirst);
  }
  std::printf("\nLower is better everywhere; the paper's asymmetric costs "
              "should open with the\ncorrect strategy (invariant query for "
              "false alarms, witness for bugs) more often.\n");
  return 0;
}
