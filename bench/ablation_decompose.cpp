//===- bench/ablation_decompose.cpp - Section 4.4 decomposition ablation ----===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.4 argues complex boolean queries must be decomposed into
/// simple subqueries because programmers struggle with boolean structure.
/// This ablation compares the diagnosis loop with and without
/// decomposition: without it, fewer but structurally larger questions are
/// asked (harder for humans); with it, each question is a single atom.
/// Also quantifies the subquery-learning optimization the section ends
/// with.
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"
#include "smt/FormulaOps.h"
#include "study/Benchmarks.h"

#include <cstdio>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

namespace {

struct Totals {
  int Queries = 0;
  size_t MaxAtoms = 0;
  double SumAtoms = 0;
  int Decided = 0;
};

Totals runWith(bool Decompose, bool Learn) {
  Totals T;
  for (const BenchmarkInfo &B : benchmarkSuite()) {
    ErrorDiagnoser D(abdiag::Options()
                         .decomposeQueries(Decompose)
                         .learnFromSubqueries(Learn));
    if (LoadResult L = D.loadFile(benchmarkPath(B)); !L) {
      std::fprintf(stderr, "cannot load %s: %s\n", B.Name.c_str(),
                   L.message().c_str());
      std::exit(1);
    }
    auto Oracle = D.makeConcreteOracle();
    DiagnosisResult R = D.diagnose(*Oracle);
    T.Queries += static_cast<int>(R.Transcript.size());
    for (const QueryRecord &Q : R.Transcript) {
      size_t Atoms = smt::atomCount(Q.Fml);
      T.MaxAtoms = std::max(T.MaxAtoms, Atoms);
      T.SumAtoms += static_cast<double>(Atoms);
    }
    if (R.Outcome != DiagnosisOutcome::Inconclusive)
      ++T.Decided;
  }
  return T;
}

} // namespace

int main() {
  std::printf("query decomposition ablation (Section 4.4), sound oracle, "
              "11 benchmarks\n\n");
  std::printf("%-34s %9s %11s %11s %9s\n", "configuration", "queries",
              "avg atoms", "max atoms", "decided");
  std::printf("%-34s %9s %11s %11s %9s\n", "-------------", "-------",
              "---------", "---------", "-------");
  struct Row {
    const char *Name;
    bool Decompose, Learn;
  } Rows[] = {{"decomposed + subquery learning", true, true},
              {"decomposed, no learning", true, false},
              {"whole-formula queries", false, true}};
  for (const Row &R : Rows) {
    Totals T = runWith(R.Decompose, R.Learn);
    std::printf("%-34s %9d %11.2f %11zu %6d/11\n", R.Name, T.Queries,
                T.Queries ? T.SumAtoms / T.Queries : 0.0, T.MaxAtoms,
                T.Decided);
  }
  std::printf("\nDecomposition trades a few extra questions for questions "
              "that are single atoms;\nwithout it users face multi-atom "
              "boolean formulas (the max-atoms column).\n");
  return 0;
}
