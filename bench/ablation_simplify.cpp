//===- bench/ablation_simplify.cpp - Simplification ablation (E6) -----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E6: the Remark after Lemma 3 says abduced obligations are
/// simplified with respect to I "to avoid unnecessary queries". This
/// ablation measures query sizes with and without that SAS'10-style
/// simplification.
///
//===----------------------------------------------------------------------===//

#include "core/Abduction.h"
#include "core/ErrorDiagnoser.h"
#include "smt/FormulaOps.h"
#include "study/Benchmarks.h"

#include <cstdio>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

int main() {
  std::printf("query-simplification ablation (Remark after Lemma 3)\n\n");
  std::printf("%-22s | %28s | %28s\n", "", "with simplification",
              "without simplification");
  std::printf("%-22s | %12s %15s | %12s %15s\n", "benchmark", "Gamma atoms",
              "Upsilon atoms", "Gamma atoms", "Upsilon atoms");
  std::printf("--------------------------------------------------------------"
              "--------------------\n");
  size_t TotalWith = 0, TotalWithout = 0;
  for (const BenchmarkInfo &B : benchmarkSuite()) {
    ErrorDiagnoser D;
    if (LoadResult L = D.loadFile(benchmarkPath(B)); !L) {
      std::fprintf(stderr, "cannot load %s: %s\n", B.Name.c_str(),
                   L.message().c_str());
      return 1;
    }
    const analysis::AnalysisResult &AR = D.analysis();
    size_t Atoms[2][2] = {{0, 0}, {0, 0}};
    for (int Simplify = 0; Simplify < 2; ++Simplify) {
      Abducer Abd(D.procedure(), /*SimplifyModuloI=*/Simplify == 0);
      AbductionResult G =
          Abd.proofObligation(AR.Invariants, AR.SuccessCondition);
      AbductionResult U =
          Abd.failureWitness(AR.Invariants, AR.SuccessCondition);
      Atoms[Simplify][0] = G.Found ? smt::atomCount(G.Fml) : 0;
      Atoms[Simplify][1] = U.Found ? smt::atomCount(U.Fml) : 0;
    }
    std::printf("%-22s | %12zu %15zu | %12zu %15zu\n", B.Name.c_str(),
                Atoms[0][0], Atoms[0][1], Atoms[1][0], Atoms[1][1]);
    TotalWith += Atoms[0][0] + Atoms[0][1];
    TotalWithout += Atoms[1][0] + Atoms[1][1];
  }
  std::printf("--------------------------------------------------------------"
              "--------------------\n");
  std::printf("total query atoms: %zu with vs %zu without simplification "
              "(%.1fx reduction)\n",
              TotalWith, TotalWithout,
              TotalWith ? static_cast<double>(TotalWithout) /
                              static_cast<double>(TotalWith)
                        : 0.0);
  return 0;
}
