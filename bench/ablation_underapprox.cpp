//===- bench/ablation_underapprox.cpp - Section 8 extension (E8) ------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E8, the paper's Section 8 future work implemented: "dynamic
/// analysis could also be very useful for automatically discharging some of
/// the failure witness queries." Here a dynamic underapproximation (the
/// exhaustive concrete-execution oracle) pre-answers *witness* queries --
/// whose "yes" answers it can certify with a concrete run -- and only
/// invariant queries reach the (simulated) human. Measures how many human
/// interactions the extension saves.
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"
#include "study/Benchmarks.h"

#include <cstdio>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

namespace {

/// Wraps the machine truth oracle but counts which queries would have gone
/// to a human: with the extension, possibility queries answered "yes" by
/// the dynamic analysis never reach the user.
class UnderapproxOracle : public Oracle {
public:
  explicit UnderapproxOracle(Oracle &Dynamic) : Dynamic(Dynamic) {}

  Answer isInvariant(const smt::Formula *F) override {
    ++HumanQueries;
    return Dynamic.isInvariant(F); // a human would answer; we reuse truth
  }

  Answer isPossible(const smt::Formula *F,
                    const smt::Formula *Given) override {
    Answer A = Dynamic.isPossible(F, Given);
    if (A == Answer::Yes) {
      ++AutoAnswered; // certified by a concrete execution: no human needed
      return A;
    }
    // The dynamic analysis cannot certify "no"; a human must confirm.
    ++HumanQueries;
    return A;
  }

  int HumanQueries = 0;
  int AutoAnswered = 0;

private:
  Oracle &Dynamic;
};

} // namespace

int main() {
  std::printf("Section 8 extension: dynamic analysis pre-answers witness "
              "queries\n\n");
  std::printf("%-22s %14s %16s %14s\n", "benchmark", "total queries",
              "auto-answered", "human queries");
  std::printf("%-22s %14s %16s %14s\n", "---------", "-------------",
              "-------------", "-------------");
  int TotalQueries = 0, TotalAuto = 0, TotalHuman = 0;
  for (const BenchmarkInfo &B : benchmarkSuite()) {
    ErrorDiagnoser D;
    if (LoadResult L = D.loadFile(benchmarkPath(B)); !L) {
      std::fprintf(stderr, "cannot load %s: %s\n", B.Name.c_str(),
                   L.message().c_str());
      return 1;
    }
    auto Truth = D.makeConcreteOracle();
    UnderapproxOracle Wrapped(*Truth);
    DiagnosisResult R = D.diagnose(Wrapped);
    (void)R;
    std::printf("%-22s %14d %16d %14d\n", B.Name.c_str(),
                Wrapped.HumanQueries + Wrapped.AutoAnswered,
                Wrapped.AutoAnswered, Wrapped.HumanQueries);
    TotalQueries += Wrapped.HumanQueries + Wrapped.AutoAnswered;
    TotalAuto += Wrapped.AutoAnswered;
    TotalHuman += Wrapped.HumanQueries;
  }
  std::printf("%-22s %14d %16d %14d\n", "total", TotalQueries, TotalAuto,
              TotalHuman);
  std::printf("\nwith the extension, %.0f%% of user interactions disappear "
              "on the bug benchmarks\n",
              TotalQueries
                  ? 100.0 * TotalAuto / static_cast<double>(TotalQueries)
                  : 0.0);
  return 0;
}
