//===- bench/fig7_user_study.cpp - Regenerates Figure 7 ---------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E1 + E3 (DESIGN.md): regenerates the paper's Figure 7 table
/// and the Section 6 Welch t-tests from the simulated user study. The
/// "new technique" arm runs the real Figure 6 diagnosis engine against
/// noisy simulated humans whose ground truth is exhaustive concrete
/// execution; the human-model constants are calibrated to the paper's
/// aggregate statistics (see EXPERIMENTS.md).
///
/// Usage: fig7_user_study [--seed N] [--respondents N] [--no-paper-rows]
///                        [--csv]
///
//===----------------------------------------------------------------------===//

#include "study/StudyRunner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace abdiag::study;

int main(int Argc, char **Argv) {
  StudyConfig Config;
  bool PaperRows = true;
  bool Csv = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc)
      Config.Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--respondents") && I + 1 < Argc)
      Config.RespondentsPerArm = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--no-paper-rows"))
      PaperRows = false;
    else if (!std::strcmp(Argv[I], "--csv"))
      Csv = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--respondents N] "
                   "[--no-paper-rows] [--csv]\n",
                   Argv[0]);
      return 2;
    }
  }

  StudyResult R = runStudy(Config);
  if (Csv) {
    std::printf("%s", formatFigure7Csv(R).c_str());
    return 0;
  }
  std::printf("%s", formatFigure7(R, PaperRows).c_str());

  // The Section 6 side claims.
  double MaxCompute = 0;
  int MinQ = 1 << 20, MaxQ = 0, NoisyMaxQ = 0;
  for (const ProblemResult &P : R.Problems) {
    MaxCompute = std::max(MaxCompute, P.ComputeSeconds);
    MinQ = std::min(MinQ, P.NoiselessQueries);
    MaxQ = std::max(MaxQ, P.NoiselessQueries);
    NoisyMaxQ = std::max(NoisyMaxQ, P.MaxQueries);
  }
  std::printf("\n  Queries per benchmark (sound answers): %d to %d"
              " (paper: one to three)\n",
              MinQ, MaxQ);
  std::printf("  Worst case with noisy answers: up to %d queries\n",
              NoisyMaxQ);
  std::printf("  Max query-computation time: %.4f s (paper: below 0.1 s)\n",
              MaxCompute);
  return 0;
}
