//===- bench/perf_abduction.cpp - End-to-end pipeline benchmarks (E7) -------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark suite for the upper pipeline: parsing, the Section 3
/// symbolic analysis, MSA search, abduction, and a complete noiseless
/// diagnosis run per benchmark program. The per-iteration times back the
/// paper's "query computation is negligible (below 0.1s)" claim.
///
//===----------------------------------------------------------------------===//

#include "core/Abduction.h"
#include "core/ErrorDiagnoser.h"
#include "smt/NativeBackend.h"
#include "lang/Parser.h"
#include "study/Benchmarks.h"

#include <benchmark/benchmark.h>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

namespace {

const char *IntroSource = R"(
program intro(flag, n) {
  var k, i, j, z;
  assume(n >= 0);
  k = 1;
  if (flag != 0) { k = n * n; }
  i = 0;
  j = 0;
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @ [i >= 0 && i > n]
  z = k + i + j;
  check(z > 2 * n);
}
)";

void BM_ParseProgram(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(lang::parseProgram(IntroSource));
}
BENCHMARK(BM_ParseProgram);

void BM_SymbolicAnalysis(benchmark::State &State) {
  lang::ParseResult P = lang::parseProgram(IntroSource);
  for (auto _ : State) {
    smt::FormulaManager M;
    smt::NativeBackend S(M);
    benchmark::DoNotOptimize(analysis::analyzeProgram(*P.Prog, S));
  }
}
BENCHMARK(BM_SymbolicAnalysis);

void BM_AbduceObligationAndWitness(benchmark::State &State) {
  lang::ParseResult P = lang::parseProgram(IntroSource);
  for (auto _ : State) {
    smt::FormulaManager M;
    smt::NativeBackend S(M);
    analysis::AnalysisResult AR = analysis::analyzeProgram(*P.Prog, S);
    Abducer Abd(S);
    benchmark::DoNotOptimize(
        Abd.proofObligation(AR.Invariants, AR.SuccessCondition));
    benchmark::DoNotOptimize(
        Abd.failureWitness(AR.Invariants, AR.SuccessCondition));
  }
}
BENCHMARK(BM_AbduceObligationAndWitness);

/// The MSA/abduction hot path (obligation + witness for the intro program),
/// incremental vs fresh. "Incremental" is the deployed configuration:
/// verdict cache on and the subset search running through one
/// Solver::Session. "Fresh" replays the pre-session behaviour: no cache,
/// a from-scratch solver query per candidate subset.
void AbduceIntro(benchmark::State &State, bool Incremental) {
  lang::ParseResult P = lang::parseProgram(IntroSource);
  for (auto _ : State) {
    smt::FormulaManager M;
    smt::NativeBackend S(M);
    S.setCaching(Incremental);
    analysis::AnalysisResult AR = analysis::analyzeProgram(*P.Prog, S);
    Abducer Abd(S);
    MsaOptions Opts;
    Opts.Incremental = Incremental;
    Abd.setMsaOptions(Opts);
    benchmark::DoNotOptimize(
        Abd.proofObligation(AR.Invariants, AR.SuccessCondition));
    benchmark::DoNotOptimize(
        Abd.failureWitness(AR.Invariants, AR.SuccessCondition));
  }
}
void BM_AbduceIntroIncremental(benchmark::State &State) {
  AbduceIntro(State, /*Incremental=*/true);
}
void BM_AbduceIntroFresh(benchmark::State &State) {
  AbduceIntro(State, /*Incremental=*/false);
}
BENCHMARK(BM_AbduceIntroIncremental);
BENCHMARK(BM_AbduceIntroFresh);

/// Full Figure 6 diagnosis runs, incremental vs fresh, over the paper
/// benchmark programs. Each iteration rebuilds the diagnoser (cold caches),
/// so the measured speedup comes from reuse *within* one diagnosis run --
/// the latency a user of the interactive tool actually experiences.
void DiagnoseSuiteProgram(benchmark::State &State, size_t Index,
                          bool Incremental) {
  const BenchmarkInfo &B = benchmarkSuite()[Index];
  State.SetLabel(B.Name);
  for (auto _ : State) {
    State.PauseTiming();
    ErrorDiagnoser D(abdiag::Options().incrementalMsa(Incremental));
    LoadResult L = D.loadFile(benchmarkPath(B));
    if (!L) {
      State.SkipWithError(L.message().c_str());
      return;
    }
    D.procedure().setCaching(Incremental);
    auto Oracle = D.makeConcreteOracle();
    State.ResumeTiming();
    benchmark::DoNotOptimize(D.diagnose(*Oracle));
  }
}
void BM_DiagnoseSuiteIncremental(benchmark::State &State) {
  DiagnoseSuiteProgram(State, static_cast<size_t>(State.range(0)),
                       /*Incremental=*/true);
}
void BM_DiagnoseSuiteFresh(benchmark::State &State) {
  DiagnoseSuiteProgram(State, static_cast<size_t>(State.range(0)),
                       /*Incremental=*/false);
}
BENCHMARK(BM_DiagnoseSuiteIncremental)->Arg(0)->Arg(2)->Arg(4);
BENCHMARK(BM_DiagnoseSuiteFresh)->Arg(0)->Arg(2)->Arg(4);

/// Intro-program diagnosis, incremental vs fresh (same protocol as the
/// suite variant; the intro program is the paper's running example).
void DiagnoseIntro(benchmark::State &State, bool Incremental) {
  for (auto _ : State) {
    State.PauseTiming();
    ErrorDiagnoser D(abdiag::Options().incrementalMsa(Incremental));
    LoadResult L = D.loadSource(IntroSource);
    if (!L) {
      State.SkipWithError(L.message().c_str());
      return;
    }
    D.procedure().setCaching(Incremental);
    auto Oracle = D.makeConcreteOracle();
    State.ResumeTiming();
    benchmark::DoNotOptimize(D.diagnose(*Oracle));
  }
}
void BM_DiagnoseIntroIncremental(benchmark::State &State) {
  DiagnoseIntro(State, /*Incremental=*/true);
}
void BM_DiagnoseIntroFresh(benchmark::State &State) {
  DiagnoseIntro(State, /*Incremental=*/false);
}
BENCHMARK(BM_DiagnoseIntroIncremental);
BENCHMARK(BM_DiagnoseIntroFresh);

void BM_FullDiagnosisPerBenchmark(benchmark::State &State) {
  const BenchmarkInfo &B =
      benchmarkSuite()[static_cast<size_t>(State.range(0))];
  State.SetLabel(B.Name);
  // Oracle construction (exhaustive execution) is test scaffolding, not
  // query computation; keep it outside the timed region.
  ErrorDiagnoser D;
  LoadResult L = D.loadFile(benchmarkPath(B));
  if (!L) {
    State.SkipWithError(L.message().c_str());
    return;
  }
  auto Oracle = D.makeConcreteOracle();
  for (auto _ : State)
    benchmark::DoNotOptimize(D.diagnose(*Oracle));
}
BENCHMARK(BM_FullDiagnosisPerBenchmark)->DenseRange(0, 10);

} // namespace

BENCHMARK_MAIN();
