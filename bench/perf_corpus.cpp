//===- bench/perf_corpus.cpp - Corpus triage throughput scaling curves -------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits throughput/latency scaling curves for triage over a generated
/// certified corpus: one JSONL row per (backend, jobs) point with
/// reports/sec, wall time, and per-report latency percentiles. Driven by
/// bench/run_bench.sh once per available backend, producing
/// BENCH_corpus_<backend>.jsonl (schema documented in run_bench.sh).
///
/// The generated corpus cycles all six report causes -- including the
/// interprocedural summarized_call and Section 5 unknown_answer templates
/// -- and triage runs with a deterministic unknown-injection rate
/// (--inject-unknown, default 0.10), so the scaling curves exercise the
/// summary-instantiation and don't-know paths and pin their counters.
///
/// Usage: perf_corpus [--backend native] [--programs 96] [--seed N]
///                    [--jobs-list 1,2,4,8] [--deadline-ms 60000]
///                    [--inject-unknown 0.10]
///
//===----------------------------------------------------------------------===//

#include "core/Triage.h"
#include "study/Corpus.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

namespace {

bool parseUnsigned(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (!End || End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  return Sorted[Idx];
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Backend = "native";
  uint64_t Programs = 96;
  uint64_t Seed = 20260807;
  uint64_t DeadlineMs = 60000;
  double InjectUnknown = 0.10;
  std::vector<unsigned> JobsList = {1, 2, 4, 8};

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextString = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "perf_corpus: %s needs an argument\n", Arg);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (std::strcmp(Arg, "--backend") == 0) {
      Backend = NextString();
    } else if (std::strcmp(Arg, "--programs") == 0) {
      if (!parseUnsigned(NextString(), Programs) || !Programs) {
        std::fprintf(stderr, "perf_corpus: bad --programs\n");
        return 2;
      }
    } else if (std::strcmp(Arg, "--seed") == 0) {
      if (!parseUnsigned(NextString(), Seed)) {
        std::fprintf(stderr, "perf_corpus: bad --seed\n");
        return 2;
      }
    } else if (std::strcmp(Arg, "--deadline-ms") == 0) {
      if (!parseUnsigned(NextString(), DeadlineMs)) {
        std::fprintf(stderr, "perf_corpus: bad --deadline-ms\n");
        return 2;
      }
    } else if (std::strcmp(Arg, "--inject-unknown") == 0) {
      char *End = nullptr;
      InjectUnknown = std::strtod(NextString(), &End);
      if (!End || *End != '\0' || InjectUnknown < 0.0 || InjectUnknown > 1.0) {
        std::fprintf(stderr, "perf_corpus: bad --inject-unknown (want 0..1)\n");
        return 2;
      }
    } else if (std::strcmp(Arg, "--jobs-list") == 0) {
      JobsList.clear();
      std::string List = NextString();
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string Tok = List.substr(Pos, Comma - Pos);
        uint64_t V = 0;
        if (!Tok.empty()) {
          if (!parseUnsigned(Tok.c_str(), V)) {
            std::fprintf(stderr, "perf_corpus: bad --jobs-list entry '%s'\n",
                         Tok.c_str());
            return 2;
          }
          JobsList.push_back(static_cast<unsigned>(V));
        }
        Pos = Comma + 1;
      }
      if (JobsList.empty()) {
        std::fprintf(stderr, "perf_corpus: empty --jobs-list\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: perf_corpus [--backend NAME] [--programs N] "
                   "[--seed N] [--jobs-list 1,2,4] [--deadline-ms MS] "
                   "[--inject-unknown R]\n");
      return 2;
    }
  }

  // Generate the certified corpus in-memory (and time it: generation
  // throughput is itself a tracked counter). All six causes cycle, so the
  // curves cover the interprocedural and don't-know templates too.
  CorpusOptions GenOpts;
  GenOpts.Seed = Seed;
  GenOpts.Count = static_cast<size_t>(Programs);
  GenOpts.Causes = {ReportCause::ImpreciseInvariant,
                    ReportCause::MissingAnnotation,
                    ReportCause::NonLinearArithmetic,
                    ReportCause::EnvironmentFact,
                    ReportCause::SummarizedCall,
                    ReportCause::UnknownAnswer};
  auto GenStart = std::chrono::steady_clock::now();
  CorpusGenerator Gen(GenOpts);
  std::vector<CorpusProgram> Corpus;
  try {
    Corpus = Gen.generateAll();
  } catch (const CorpusError &E) {
    std::fprintf(stderr, "perf_corpus: %s\n", E.what());
    return 1;
  }
  double GenWallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - GenStart)
                         .count();

  // Materialize to a scratch directory: triage measures the same
  // load-from-disk path production uses.
  const char *TmpBase = std::getenv("TMPDIR");
  std::string Dir = std::string(TmpBase ? TmpBase : "/tmp") +
                    "/abdiag_perf_corpus_" + std::to_string(Seed);
  if (std::string Err = writeCorpus(Dir, Corpus); !Err.empty()) {
    std::fprintf(stderr, "perf_corpus: %s\n", Err.c_str());
    return 1;
  }
  std::vector<TriageRequest> Queue;
  for (const CorpusProgram &P : Corpus)
    Queue.emplace_back(Dir + "/" + P.FileName, P.Name);

  const CauseStats Acceptance = Gen.stats().total();
  int Failures = 0;
  for (unsigned Jobs : JobsList) {
    TriageOptions Opts;
    Opts.Jobs = Jobs;
    Opts.DeadlineMs = DeadlineMs;
    Opts.Pipeline.backend(Backend);
    Opts.InjectUnknownRate = InjectUnknown;
    TriageResult Result = TriageEngine(Opts).run(Queue);

    std::vector<double> Lat;
    Lat.reserve(Result.Reports.size());
    size_t Mismatches = 0;
    uint64_t AnswersUnknown = 0, SummariesComputed = 0,
             SummariesInstantiated = 0, OpaqueCalls = 0, PotentialPeak = 0;
    for (size_t I = 0; I < Result.Reports.size(); ++I) {
      const TriageReport &R = Result.Reports[I];
      Lat.push_back(R.WallMs);
      AnswersUnknown += R.AnswersUnknown;
      SummariesComputed += R.SummariesComputed;
      SummariesInstantiated += R.SummariesInstantiated;
      OpaqueCalls += R.OpaqueCalls;
      PotentialPeak = std::max(
          PotentialPeak,
          static_cast<uint64_t>(R.PotentialInvariants + R.PotentialWitnesses));
      // A report driven inconclusive by injected unknowns is a budget
      // artifact tracked (and exactly gated) via "inconclusive"; a
      // *decisive* verdict contradicting the certified classification is a
      // correctness failure.
      bool Contradicted =
          R.Status == TriageStatus::Diagnosed &&
          R.Outcome != DiagnosisOutcome::Inconclusive &&
          R.Outcome != (Corpus[I].IsRealBug ? DiagnosisOutcome::Validated
                                            : DiagnosisOutcome::Discharged);
      if (Contradicted || R.Status == TriageStatus::Crashed ||
          R.Status == TriageStatus::LoadError)
        ++Mismatches;
    }
    std::sort(Lat.begin(), Lat.end());
    const TriageSummary &S = Result.Summary;
    double Rps = S.WallMs > 0.0 ? 1000.0 * static_cast<double>(Queue.size()) /
                                      S.WallMs
                                : 0.0;
    if (Mismatches)
      Failures = 1;

    std::printf(
        "{\"schema\":1,\"bench\":\"corpus_triage\",\"backend\":\"%s\",\"jobs\":%u,"
        "\"programs\":%zu,\"seed\":%llu,\"inject_unknown\":%.2f,"
        "\"wall_ms\":%.1f,"
        "\"reports_per_sec\":%.2f,\"p50_ms\":%.2f,\"p95_ms\":%.2f,"
        "\"p99_ms\":%.2f,\"timeouts\":%zu,\"inconclusive\":%zu,"
        "\"mismatches\":%zu,\"gen_wall_ms\":%.1f,"
        "\"gen_candidates\":%zu,\"gen_accepted\":%zu,"
        "\"answers_unknown\":%llu,\"potential_peak\":%llu,"
        "\"summaries_computed\":%llu,\"summaries_instantiated\":%llu,"
        "\"opaque_calls\":%llu,"
        "\"solver_queries\":%llu,\"simplex_pivots\":%llu,"
        "\"pivot_limit_hits\":%llu,\"tableau_reuses\":%llu,"
        "\"formula_nodes\":%llu,\"intern_hits\":%llu,"
        "\"fv_memo_hits\":%llu,\"subst_prunes\":%llu,"
        "\"arena_bytes\":%llu}\n",
        Backend.c_str(), Jobs, Queue.size(), (unsigned long long)Seed,
        InjectUnknown, S.WallMs, Rps, percentile(Lat, 0.50),
        percentile(Lat, 0.95), percentile(Lat, 0.99), S.Timeouts,
        S.Inconclusive, Mismatches, GenWallMs, Acceptance.Candidates,
        Acceptance.Accepted, (unsigned long long)AnswersUnknown,
        (unsigned long long)PotentialPeak,
        (unsigned long long)SummariesComputed,
        (unsigned long long)SummariesInstantiated,
        (unsigned long long)OpaqueCalls,
        (unsigned long long)S.Solver.Queries,
        (unsigned long long)S.Solver.SimplexPivots,
        (unsigned long long)S.Solver.PivotLimitHits,
        (unsigned long long)S.Solver.TableauReuses,
        (unsigned long long)S.Solver.FormulaNodes,
        (unsigned long long)S.Solver.FormulaInternHits,
        (unsigned long long)S.Solver.FormulaMemoHits,
        (unsigned long long)S.Solver.FormulaSubstPrunes,
        (unsigned long long)S.Solver.FormulaArenaBytes);
    std::fflush(stdout);
  }
  if (Failures)
    std::fprintf(stderr,
                 "perf_corpus: some reports missed their certified "
                 "classification (see \"mismatches\")\n");
  return Failures;
}
