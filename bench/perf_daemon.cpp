//===- bench/perf_daemon.cpp - Daemon session-replay load harness ------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loopback load harness for abdiagd: boots an in-process DaemonServer on a
/// unix socket, floods it with concurrent scripted sessions drawn from a
/// generated certified corpus (every program replayed many times via
/// mirror-oracle clients), and emits one JSONL row per run with session
/// throughput, query round-trip percentiles, the open-session high-water
/// mark, and graceful-drain latency. Every session's verdict is compared
/// against batch TriageEngine triage of the same program -- any deviation
/// is a failure, not a statistic.
///
/// Driven by bench/run_bench.sh once per available backend, producing
/// BENCH_daemon_<backend>.jsonl (gated by tools/check_bench_regression).
///
/// Usage: perf_daemon [--backend native] [--programs 64] [--sessions 1200]
///                    [--connections 4] [--max-active 8] [--seed N]
///                    [--drain-sessions 200]
///
//===----------------------------------------------------------------------===//

#include "core/Triage.h"
#include "server/Client.h"
#include "server/Server.h"
#include "study/Corpus.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::server;
using namespace abdiag::study;

namespace {

bool parseUnsigned(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (!End || End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  return Sorted[Idx];
}

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Replays one partition of the session list over its own connection.
struct ConnectionJob {
  std::vector<ReplayItem> Items;
  std::vector<size_t> ProgramOf; ///< corpus index per item, for verdict check
  std::vector<ReplayOutcome> Out;
  std::string Err;
  bool Ok = false;
};

} // namespace

int main(int Argc, char **Argv) {
  std::string Backend = "native";
  uint64_t Programs = 64;
  uint64_t Sessions = 1200;
  uint64_t Connections = 4;
  uint64_t MaxActive = 8;
  uint64_t Seed = 20260807;
  uint64_t DrainSessions = 200;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextString = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "perf_daemon: %s needs an argument\n", Arg);
        std::exit(2);
      }
      return Argv[++I];
    };
    uint64_t *Slot = nullptr;
    if (std::strcmp(Arg, "--backend") == 0) {
      Backend = NextString();
      continue;
    } else if (std::strcmp(Arg, "--programs") == 0) {
      Slot = &Programs;
    } else if (std::strcmp(Arg, "--sessions") == 0) {
      Slot = &Sessions;
    } else if (std::strcmp(Arg, "--connections") == 0) {
      Slot = &Connections;
    } else if (std::strcmp(Arg, "--max-active") == 0) {
      Slot = &MaxActive;
    } else if (std::strcmp(Arg, "--seed") == 0) {
      Slot = &Seed;
    } else if (std::strcmp(Arg, "--drain-sessions") == 0) {
      Slot = &DrainSessions;
    } else {
      std::fprintf(stderr,
                   "usage: perf_daemon [--backend NAME] [--programs N] "
                   "[--sessions N] [--connections N] [--max-active N] "
                   "[--seed N] [--drain-sessions N]\n");
      return 2;
    }
    if (!parseUnsigned(NextString(), *Slot) || !*Slot) {
      std::fprintf(stderr, "perf_daemon: bad value for %s\n", Arg);
      return 2;
    }
  }

  // Certified corpus, materialized to disk so daemon sessions exercise the
  // same load-by-path production uses.
  CorpusOptions GenOpts;
  GenOpts.Seed = Seed;
  GenOpts.Count = static_cast<size_t>(Programs);
  CorpusGenerator Gen(GenOpts);
  std::vector<CorpusProgram> Corpus;
  try {
    Corpus = Gen.generateAll();
  } catch (const CorpusError &E) {
    std::fprintf(stderr, "perf_daemon: %s\n", E.what());
    return 1;
  }
  const char *TmpBase = std::getenv("TMPDIR");
  std::string Dir = std::string(TmpBase ? TmpBase : "/tmp") +
                    "/abdiag_perf_daemon_" + std::to_string(Seed);
  if (std::string Err = writeCorpus(Dir, Corpus); !Err.empty()) {
    std::fprintf(stderr, "perf_daemon: %s\n", Err.c_str());
    return 1;
  }

  // Batch ground truth: one TriageEngine pass over the unique programs.
  // Every daemon replay of program i must land on exactly this row.
  TriageOptions BatchOpts;
  BatchOpts.Pipeline.backend(Backend);
  std::vector<TriageRequest> Queue;
  for (const CorpusProgram &P : Corpus)
    Queue.emplace_back(Dir + "/" + P.FileName, P.Name);
  TriageResult Batch = TriageEngine(BatchOpts).run(Queue);
  std::vector<std::string> WantStatus(Corpus.size()), WantVerdict(Corpus.size());
  for (size_t I = 0; I < Corpus.size(); ++I) {
    const TriageReport &B = Batch.Reports[I];
    WantStatus[I] = triageStatusName(B.Status);
    WantVerdict[I] = B.Status == TriageStatus::Diagnosed
                         ? diagnosisVerdictName(B.Outcome)
                         : "";
  }

  // The daemon under load: pending queue sized so admission never refuses
  // -- this harness measures throughput and concurrency, and the dedicated
  // backpressure behavior is covered by tests/server/DaemonTest.cpp.
  ServerConfig Cfg;
  Cfg.UnixPath = Dir + "/abdiagd_" + std::to_string(::getpid()) + ".sock";
  Cfg.MaxActiveSessions = static_cast<size_t>(MaxActive);
  Cfg.MaxPendingSessions = static_cast<size_t>(Sessions + DrainSessions);
  Cfg.Pipeline.backend(Backend);
  DaemonServer Server(Cfg);
  if (std::string Err; !Server.start(Err)) {
    std::fprintf(stderr, "perf_daemon: %s\n", Err.c_str());
    return 1;
  }

  // Phase 1: the flood. Sessions cycle through the corpus round-robin and
  // are partitioned round-robin across connections; every connection keeps
  // its whole partition in flight at once, so the daemon sees all
  // --sessions sessions open concurrently (PeakOpen asserts it did).
  std::vector<ConnectionJob> Jobs(static_cast<size_t>(Connections));
  for (uint64_t S = 0; S < Sessions; ++S) {
    ConnectionJob &J = Jobs[static_cast<size_t>(S % Connections)];
    size_t Prog = static_cast<size_t>(S % Programs);
    ReplayItem It;
    It.Session = "s" + std::to_string(S);
    It.Name = Corpus[Prog].Name;
    It.Path = Dir + "/" + Corpus[Prog].FileName;
    J.Items.push_back(std::move(It));
    J.ProgramOf.push_back(Prog);
  }

  // No connection starts answering until every connection has submitted its
  // whole partition: PeakOpen is then deterministically == --sessions (a
  // certified program never resolves without at least one answer). Each
  // thread arrives at the barrier exactly once, even on early failure, so a
  // broken connection cannot strand the others.
  std::barrier SubmitBarrier(static_cast<std::ptrdiff_t>(Connections));
  auto LoadStart = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (ConnectionJob &J : Jobs)
    Threads.emplace_back([&J, &Cfg, &SubmitBarrier] {
      bool Arrived = false;
      ReplayOptions RO;
      RO.Pipeline = Cfg.Pipeline;
      RO.MaxInFlight = J.Items.size();
      RO.RecordRtt = true;
      RO.OnAllSubmitted = [&Arrived, &SubmitBarrier] {
        Arrived = true;
        SubmitBarrier.arrive_and_wait();
      };
      ReplayClient C(RO);
      if (C.connectUnixSocket(Cfg.UnixPath, J.Err))
        J.Ok = C.run(J.Items, J.Out, J.Err);
      if (!Arrived)
        SubmitBarrier.arrive_and_wait();
    });
  for (std::thread &T : Threads)
    T.join();
  double LoadWallMs = msSince(LoadStart);

  size_t Mismatches = 0, Refused = 0, ParseFailures = 0;
  uint64_t Asks = 0;
  std::vector<double> Rtt;
  for (const ConnectionJob &J : Jobs) {
    if (!J.Ok) {
      std::fprintf(stderr, "perf_daemon: connection failed: %s\n",
                   J.Err.c_str());
      return 1;
    }
    for (size_t K = 0; K < J.Out.size(); ++K) {
      const ReplayOutcome &O = J.Out[K];
      size_t Prog = J.ProgramOf[K];
      if (O.Status == "refused") {
        ++Refused;
      } else if (O.Status != WantStatus[Prog] ||
                 O.Verdict != WantVerdict[Prog]) {
        ++Mismatches;
        std::fprintf(stderr, "MISMATCH %s (%s): daemon %s/%s vs batch %s/%s\n",
                     O.Session.c_str(), O.Name.c_str(), O.Status.c_str(),
                     O.Verdict.c_str(), WantStatus[Prog].c_str(),
                     WantVerdict[Prog].c_str());
      }
      Asks += O.AsksAnswered;
      ParseFailures += O.ParseFailures;
      Rtt.insert(Rtt.end(), O.RttMs.begin(), O.RttMs.end());
    }
  }
  std::sort(Rtt.begin(), Rtt.end());
  DaemonServer::Stats Load = Server.stats();

  // Phase 2: graceful drain under load. Submit one more wave, and once the
  // daemon has admitted all of it, request the drain and time how long the
  // in-flight work takes to unwind while the client keeps answering.
  ConnectionJob DrainJob;
  for (uint64_t S = 0; S < DrainSessions; ++S) {
    size_t Prog = static_cast<size_t>(S % Programs);
    ReplayItem It;
    It.Session = "d" + std::to_string(S);
    It.Name = Corpus[Prog].Name;
    It.Path = Dir + "/" + Corpus[Prog].FileName;
    DrainJob.Items.push_back(std::move(It));
    DrainJob.ProgramOf.push_back(Prog);
  }
  std::thread DrainClient([&DrainJob, &Cfg] {
    ReplayOptions RO;
    RO.Pipeline = Cfg.Pipeline;
    RO.MaxInFlight = DrainJob.Items.size();
    ReplayClient C(RO);
    if (!C.connectUnixSocket(Cfg.UnixPath, DrainJob.Err))
      return;
    DrainJob.Ok = C.run(DrainJob.Items, DrainJob.Out, DrainJob.Err);
  });
  while (Server.stats().Submitted < Load.Submitted + DrainSessions &&
         Server.stats().Refused == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto DrainStart = std::chrono::steady_clock::now();
  Server.requestDrain();
  Server.wait();
  double DrainMs = msSince(DrainStart);
  DrainClient.join();
  if (!DrainJob.Ok) {
    std::fprintf(stderr, "perf_daemon: drain connection failed: %s\n",
                 DrainJob.Err.c_str());
    return 1;
  }
  size_t DrainRefused = 0;
  for (size_t K = 0; K < DrainJob.Out.size(); ++K) {
    const ReplayOutcome &O = DrainJob.Out[K];
    size_t Prog = DrainJob.ProgramOf[K];
    if (O.Status == "refused")
      ++DrainRefused;
    else if (O.Status != WantStatus[Prog] || O.Verdict != WantVerdict[Prog])
      ++Mismatches;
  }
  DaemonServer::Stats Final = Server.stats();
  Server.stop();

  double Sps = LoadWallMs > 0.0
                   ? 1000.0 * static_cast<double>(Sessions) / LoadWallMs
                   : 0.0;
  std::printf(
      "{\"schema\":1,\"bench\":\"daemon_replay\",\"backend\":\"%s\","
      "\"seed\":%llu,\"programs\":%llu,\"sessions\":%llu,"
      "\"connections\":%llu,\"max_active\":%llu,\"wall_ms\":%.1f,"
      "\"sessions_per_sec\":%.2f,\"peak_open\":%zu,\"peak_active\":%zu,"
      "\"asks\":%llu,\"parse_failures\":%zu,\"mismatches\":%zu,"
      "\"refused\":%zu,\"reaped\":%zu,\"rtt_p50_ms\":%.3f,"
      "\"rtt_p95_ms\":%.3f,\"rtt_p99_ms\":%.3f,\"drain_sessions\":%llu,"
      "\"drain_ms\":%.1f,\"drain_refused\":%zu}\n",
      Backend.c_str(), (unsigned long long)Seed, (unsigned long long)Programs,
      (unsigned long long)Sessions, (unsigned long long)Connections,
      (unsigned long long)MaxActive, LoadWallMs, Sps, Final.PeakOpen,
      Final.PeakActive, (unsigned long long)Asks, ParseFailures, Mismatches,
      Refused, Final.Reaped, percentile(Rtt, 0.50), percentile(Rtt, 0.95),
      percentile(Rtt, 0.99), (unsigned long long)DrainSessions, DrainMs,
      DrainRefused);
  std::fflush(stdout);

  if (Mismatches || Refused) {
    std::fprintf(stderr,
                 "perf_daemon: %zu verdict deviation(s), %zu refused "
                 "session(s) -- the load run must be clean\n",
                 Mismatches, Refused);
    return 1;
  }
  return 0;
}
