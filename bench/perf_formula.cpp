//===- bench/perf_formula.cpp - Formula substrate microbenchmarks -----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark suite for the formula substrate itself: interning
/// throughput, structural ops (freeVars / containsVar / atomCount /
/// substitute) on deeply *shared* DAGs, Cooper elimination chains, and
/// MSA-style repeated renamings. Cooper QE and the MSA subset search build
/// formulas with massive subformula sharing, so these benchmarks measure
/// DAG work, not tree work: a substrate that re-walks shared subformulas
/// per occurrence goes exponential exactly where the diagnosis pipeline
/// lives. Recorded as BENCH_formula.json by bench/run_bench.sh and gated
/// against bench/baselines/BENCH_formula.json.
///
//===----------------------------------------------------------------------===//

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>
#include <vector>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Variables for one balanced shared DAG: a spine variable X (occurring in
/// every atom) plus two fresh leaf variables per level.
struct DagVars {
  VarId X;
  std::vector<VarId> A, B;
};

DagVars makeDagVars(FormulaManager &M, int Depth, const std::string &Tag) {
  DagVars V;
  V.X = M.vars().create(Tag + "_x", VarKind::Input);
  for (int I = 0; I < Depth; ++I) {
    V.A.push_back(
        M.vars().create(Tag + "_a" + std::to_string(I), VarKind::Input));
    V.B.push_back(
        M.vars().create(Tag + "_b" + std::to_string(I), VarKind::Input));
  }
  return V;
}

/// Balanced shared And/Or DAG of ~5*Depth distinct nodes whose *tree*
/// expansion has ~2^Depth leaves:
///
///   N_0     = (x <= 0)
///   N_{i+1} = And(Or(N_i, a_i + x - (i+1) <= 0),
///                 Or(N_i, b_i - x + (i+1) <= 0))
///
/// Levels alternate And-of-Or so the smart constructors neither flatten nor
/// fold anything, and every atom mentions the spine variable X so a
/// substitution for X must rebuild every node.
const Formula *buildSharedDag(FormulaManager &M, const DagVars &V, int Depth) {
  const Formula *N = M.mkAtom(AtomRel::Le, LinearExpr::variable(V.X));
  for (int I = 0; I < Depth; ++I) {
    const Formula *A =
        M.mkAtom(AtomRel::Le, LinearExpr::variable(V.A[I]) +
                                  LinearExpr::variable(V.X) +
                                  LinearExpr::constant(-(I + 1)));
    const Formula *B =
        M.mkAtom(AtomRel::Le, LinearExpr::variable(V.B[I]) -
                                  LinearExpr::variable(V.X) +
                                  LinearExpr::constant(I + 1));
    N = M.mkAnd(M.mkOr(N, A), M.mkOr(N, B));
  }
  return N;
}

/// Random NNF condition (Le/Ne atoms only), same flavor as the MSA
/// constraint pools in the diagnosis pipeline.
const Formula *randomCondition(FormulaManager &M, Rng &R,
                               const std::vector<VarId> &Vars, int Depth) {
  if (Depth == 0 || R.chance(0.4)) {
    LinearExpr E = LinearExpr::constant(R.range(-6, 6));
    for (VarId V : Vars)
      if (R.chance(0.6))
        E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    return R.chance(0.5) ? M.mkAtom(AtomRel::Le, E)
                         : M.mkAtom(AtomRel::Ne, E);
  }
  std::vector<const Formula *> Kids;
  for (int I = 0, N = static_cast<int>(R.range(2, 3)); I < N; ++I)
    Kids.push_back(randomCondition(M, R, Vars, Depth - 1));
  return R.chance(0.5) ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
}

/// Substitute the spine variable of a deeply shared DAG: the tree has
/// 2^Depth atom occurrences, the DAG ~5*Depth nodes. This is the headline
/// tree-vs-DAG benchmark.
void BM_DeepSharedSubstitute(benchmark::State &State) {
  int Depth = static_cast<int>(State.range(0));
  FormulaManager M;
  DagVars V = makeDagVars(M, Depth, "s");
  VarId Y = M.vars().create("s_y", VarKind::Input);
  const Formula *F = buildSharedDag(M, V, Depth);
  std::unordered_map<VarId, LinearExpr> Map;
  Map.emplace(V.X, LinearExpr::variable(Y));
  // Deterministic work counters from the first (cold) and second (warm)
  // substitution; recorded before the timed loop so they are independent
  // of the iteration count and exact-gated by check_bench_regression.
  FormulaStats S0 = M.stats();
  benchmark::DoNotOptimize(substitute(M, F, Map));
  FormulaStats S1 = M.stats();
  benchmark::DoNotOptimize(substitute(M, F, Map));
  FormulaStats S2 = M.stats();
  for (auto _ : State)
    benchmark::DoNotOptimize(substitute(M, F, Map));
  State.counters["x_dag_nodes"] = static_cast<double>(S0.NodesInterned);
  State.counters["x_cold_new_nodes"] =
      static_cast<double>(S1.NodesInterned - S0.NodesInterned);
  State.counters["x_warm_new_nodes"] =
      static_cast<double>(S2.NodesInterned - S1.NodesInterned);
}
BENCHMARK(BM_DeepSharedSubstitute)->Arg(12)->Arg(16)->Arg(20);

/// Substitution whose domain is disjoint from freeVars(F): semantically a
/// no-op. The MSA consistency-renaming loop hits this shape constantly
/// (most conditions do not mention the variables being renamed).
void BM_SubstituteDisjointDomain(benchmark::State &State) {
  FormulaManager M;
  DagVars V = makeDagVars(M, 14, "d");
  const Formula *F = buildSharedDag(M, V, 14);
  VarId U0 = M.vars().create("d_u0", VarKind::Input);
  VarId U1 = M.vars().create("d_u1", VarKind::Input);
  VarId W = M.vars().create("d_w", VarKind::Input);
  std::unordered_map<VarId, LinearExpr> Map;
  Map.emplace(U0, LinearExpr::variable(W).addConst(1));
  Map.emplace(U1, LinearExpr::constant(3));
  FormulaStats S0 = M.stats();
  benchmark::DoNotOptimize(substitute(M, F, Map));
  FormulaStats S1 = M.stats();
  for (auto _ : State)
    benchmark::DoNotOptimize(substitute(M, F, Map));
  State.counters["x_new_nodes"] =
      static_cast<double>(S1.NodesInterned - S0.NodesInterned);
  State.counters["x_prunes"] =
      static_cast<double>(S1.SubstPrunes - S0.SubstPrunes);
}
BENCHMARK(BM_SubstituteDisjointDomain);

/// Cooper elimination chain over a shared DAG mentioning two quantified
/// variables (unit coefficients keep delta = 1, so the cost is bound
/// collection + per-bound substitution -- pure substrate traffic).
void BM_QeChainShared(benchmark::State &State) {
  int Depth = static_cast<int>(State.range(0));
  FormulaManager M;
  VarId Q0 = M.vars().create("q0", VarKind::Input);
  VarId Q1 = M.vars().create("q1", VarKind::Input);
  VarId X0 = M.vars().create("qx0", VarKind::Input);
  std::vector<VarId> Leaves;
  for (int I = 0; I < Depth; ++I)
    Leaves.push_back(
        M.vars().create("ql" + std::to_string(I), VarKind::Input));
  const Formula *N =
      M.mkAtom(AtomRel::Le,
               LinearExpr::variable(Q0) - LinearExpr::variable(X0));
  for (int I = 0; I < Depth; ++I) {
    VarId Q = (I % 2) ? Q1 : Q0;
    const Formula *A =
        M.mkAtom(AtomRel::Le, LinearExpr::variable(Q) -
                                  LinearExpr::variable(Leaves[I]) +
                                  LinearExpr::constant(I));
    const Formula *B =
        M.mkAtom(AtomRel::Le, LinearExpr::variable(Leaves[I], -1) -
                                  LinearExpr::variable(Q) +
                                  LinearExpr::constant(-I));
    N = M.mkAnd(M.mkOr(N, A), M.mkOr(N, B));
  }
  std::vector<VarId> Elim = {Q0, Q1};
  FormulaStats S0 = M.stats();
  const Formula *R0 = eliminateExists(M, N, Elim);
  FormulaStats S1 = M.stats();
  for (auto _ : State)
    benchmark::DoNotOptimize(eliminateExists(M, N, Elim));
  State.counters["x_qe_new_nodes"] =
      static_cast<double>(S1.NodesInterned - S0.NodesInterned);
  State.counters["x_qe_result_id"] = static_cast<double>(R0->id());
}
BENCHMARK(BM_QeChainShared)->Arg(6)->Arg(9);

/// MSA-style repeated renamings: a pool of conditions, rounds of small
/// renaming maps. About half the conditions do not mention the renamed
/// variables at all (the disjoint-domain fast path in the subset search).
void BM_MsaRenameRounds(benchmark::State &State) {
  FormulaManager M;
  Rng R(77);
  std::vector<VarId> Shared, Aux, Pool;
  for (int I = 0; I < 5; ++I)
    Shared.push_back(M.vars().create("mv" + std::to_string(I),
                                     VarKind::Input));
  for (int I = 0; I < 4; ++I)
    Aux.push_back(M.vars().create("mt" + std::to_string(I), VarKind::Input));
  for (int I = 0; I < 8; ++I)
    Pool.push_back(M.vars().create("mr" + std::to_string(I), VarKind::Input));
  // Conditions 0..3 over shared+aux vars (renaming applies), 4..7 over
  // shared vars only (renaming domain disjoint).
  std::vector<const Formula *> Conds;
  std::vector<VarId> Both = Shared;
  Both.insert(Both.end(), Aux.begin(), Aux.end());
  for (int I = 0; I < 4; ++I)
    Conds.push_back(randomCondition(M, R, Both, 3));
  for (int I = 0; I < 4; ++I)
    Conds.push_back(randomCondition(M, R, Shared, 3));
  FormulaStats S0 = M.stats();
  {
    for (int Round = 0; Round < 8; ++Round) {
      std::unordered_map<VarId, LinearExpr> Renaming;
      for (int J = 0; J < 3; ++J)
        Renaming.emplace(Aux[J],
                         LinearExpr::variable(Pool[(Round + J) % 8]));
      for (const Formula *C : Conds)
        benchmark::DoNotOptimize(substitute(M, C, Renaming));
    }
  }
  FormulaStats S1 = M.stats();
  for (auto _ : State) {
    size_t Sink = 0;
    for (int Round = 0; Round < 8; ++Round) {
      std::unordered_map<VarId, LinearExpr> Renaming;
      for (int J = 0; J < 3; ++J)
        Renaming.emplace(Aux[J],
                         LinearExpr::variable(Pool[(Round + J) % 8]));
      for (const Formula *C : Conds)
        Sink += substitute(M, C, Renaming)->id();
    }
    benchmark::DoNotOptimize(Sink);
  }
  State.counters["x_rename_prunes"] =
      static_cast<double>(S1.SubstPrunes - S0.SubstPrunes);
  State.counters["x_rename_new_nodes"] =
      static_cast<double>(S1.NodesInterned - S0.NodesInterned);
}
BENCHMARK(BM_MsaRenameRounds);

/// Cooper's variable-ordering loop shape: freeVars + containsVar queried
/// over and over against the same shared formulas.
void BM_FreeVarsCooperScore(benchmark::State &State) {
  FormulaManager M;
  std::vector<const Formula *> Fs;
  for (int I = 0; I < 16; ++I) {
    DagVars V = makeDagVars(M, 12, "f" + std::to_string(I));
    Fs.push_back(buildSharedDag(M, V, 12));
  }
  FormulaStats S0 = M.stats();
  for (const Formula *F : Fs)
    benchmark::DoNotOptimize(freeVarsVec(F).size());
  FormulaStats S1 = M.stats();
  for (auto _ : State) {
    size_t Sink = 0;
    for (const Formula *F : Fs) {
      const std::vector<VarId> &FV = freeVarsVec(F);
      Sink += FV.size();
      for (VarId V : FV)
        Sink += containsVar(F, V);
    }
    benchmark::DoNotOptimize(Sink);
  }
  State.counters["x_fv_memo_misses"] =
      static_cast<double>(S1.MemoMisses - S0.MemoMisses);
}
BENCHMARK(BM_FreeVarsCooperScore);

/// atomCount keeps tree semantics (occurrence count), so on a shared DAG
/// the naive walk is exponential while a memoized pass is linear.
void BM_AtomCountShared(benchmark::State &State) {
  int Depth = static_cast<int>(State.range(0));
  FormulaManager M;
  DagVars V = makeDagVars(M, Depth, "c");
  const Formula *F = buildSharedDag(M, V, Depth);
  for (auto _ : State)
    benchmark::DoNotOptimize(atomCount(F));
  State.counters["x_atom_count"] = static_cast<double>(atomCount(F));
  State.counters["x_dag_nodes"] =
      static_cast<double>(M.stats().NodesInterned);
}
BENCHMARK(BM_AtomCountShared)->Arg(16)->Arg(20);

/// Raw interning throughput: fresh manager, a few hundred random formulas.
/// Measures arena allocation, LinearExpr handling, and intern probing.
void BM_InternChurn(benchmark::State &State) {
  for (auto _ : State) {
    FormulaManager M;
    Rng R(42);
    std::vector<VarId> Vars;
    for (int I = 0; I < 6; ++I)
      Vars.push_back(
          M.vars().create("v" + std::to_string(I), VarKind::Input));
    for (int I = 0; I < 300; ++I)
      benchmark::DoNotOptimize(randomCondition(M, R, Vars, 3));
  }
  // One deterministic churn outside the loop for the exact counter gates.
  FormulaManager M;
  Rng R(42);
  std::vector<VarId> Vars;
  for (int I = 0; I < 6; ++I)
    Vars.push_back(M.vars().create("v" + std::to_string(I), VarKind::Input));
  for (int I = 0; I < 300; ++I)
    benchmark::DoNotOptimize(randomCondition(M, R, Vars, 3));
  State.counters["x_nodes_interned"] =
      static_cast<double>(M.stats().NodesInterned);
  State.counters["x_intern_hits"] =
      static_cast<double>(M.stats().InternHits);
  State.counters["x_intern_probes"] =
      static_cast<double>(M.stats().InternProbes);
  State.counters["x_arena_bytes"] =
      static_cast<double>(M.stats().ArenaBytes);
}
BENCHMARK(BM_InternChurn);

} // namespace

BENCHMARK_MAIN();
