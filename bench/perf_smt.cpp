//===- bench/perf_smt.cpp - SMT substrate microbenchmarks (E7) --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark performance suite for the SMT substrate: formula
/// construction, SAT solving, LIA conjunctions, full DPLL(T) queries, and
/// Cooper quantifier elimination. An interactive tool must answer in
/// milliseconds; these benchmarks keep that budget measurable.
///
//===----------------------------------------------------------------------===//

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"
#include "smt/LiaSolver.h"
#include "smt/Sat.h"
#include "smt/Solver.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Random NNF formula over NumVars variables (same distribution as the
/// differential tests).
const Formula *randomFormula(FormulaManager &M, Rng &R,
                             const std::vector<VarId> &Vars, int Depth) {
  if (Depth == 0 || R.chance(0.4)) {
    LinearExpr E = LinearExpr::constant(R.range(-6, 6));
    for (VarId V : Vars)
      if (R.chance(0.7))
        E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    switch (R.range(0, 3)) {
    case 0:
      return M.mkAtom(AtomRel::Le, E);
    case 1:
      return M.mkAtom(AtomRel::Eq, E);
    case 2:
      return M.mkAtom(AtomRel::Ne, E);
    default:
      return M.mkAtom(AtomRel::Div, E, R.range(2, 4));
    }
  }
  std::vector<const Formula *> Kids;
  for (int I = 0, N = static_cast<int>(R.range(2, 3)); I < N; ++I)
    Kids.push_back(randomFormula(M, R, Vars, Depth - 1));
  return R.chance(0.5) ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
}

/// Like randomFormula but with Le/Ne atoms only. Used where the benchmark
/// should measure boolean search and encoding reuse: random Eq/Div mixes
/// occasionally produce conjunctions whose divisibility theory checks dwarf
/// everything else being measured.
const Formula *randomEasyFormula(FormulaManager &M, Rng &R,
                                 const std::vector<VarId> &Vars, int Depth) {
  if (Depth == 0 || R.chance(0.4)) {
    LinearExpr E = LinearExpr::constant(R.range(-6, 6));
    for (VarId V : Vars)
      if (R.chance(0.7))
        E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    return R.chance(0.5) ? M.mkAtom(AtomRel::Le, E)
                         : M.mkAtom(AtomRel::Ne, E);
  }
  std::vector<const Formula *> Kids;
  for (int I = 0, N = static_cast<int>(R.range(2, 3)); I < N; ++I)
    Kids.push_back(randomEasyFormula(M, R, Vars, Depth - 1));
  return R.chance(0.5) ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
}

void BM_FormulaConstruction(benchmark::State &State) {
  for (auto _ : State) {
    FormulaManager M;
    Rng R(42);
    std::vector<VarId> Vars;
    for (int I = 0; I < 4; ++I)
      Vars.push_back(M.vars().create("v" + std::to_string(I),
                                     VarKind::Input));
    for (int I = 0; I < 50; ++I)
      benchmark::DoNotOptimize(randomFormula(M, R, Vars, 2));
  }
}
BENCHMARK(BM_FormulaConstruction);

void BM_SatRandom3Sat(benchmark::State &State) {
  int NumVars = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Rng R(7);
    sat::SatSolver S;
    for (int I = 0; I < NumVars; ++I)
      S.newVar();
    for (int I = 0; I < static_cast<int>(NumVars * 4.2); ++I) {
      std::vector<sat::Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(sat::mkLit(
            static_cast<sat::BVar>(R.range(0, NumVars - 1)), R.chance(0.5)));
      S.addClause(C);
    }
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(20)->Arg(50)->Arg(100);

void BM_LiaConjunction(benchmark::State &State) {
  int NumVars = static_cast<int>(State.range(0));
  VarTable VT;
  std::vector<VarId> Vars;
  for (int I = 0; I < NumVars; ++I)
    Vars.push_back(VT.create("x" + std::to_string(I), VarKind::Input));
  Rng R(13);
  std::vector<LinearExpr> Rows;
  for (int I = 0; I < 2 * NumVars; ++I) {
    LinearExpr E = LinearExpr::constant(R.range(-10, 10));
    for (VarId V : Vars)
      E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    Rows.push_back(E);
  }
  for (auto _ : State) {
    Model Mo;
    benchmark::DoNotOptimize(solveLiaConjunction(Rows, &Mo));
  }
}
BENCHMARK(BM_LiaConjunction)->Arg(3)->Arg(6)->Arg(10);

/// Incremental vs fresh: answer a batch of assumption queries over one
/// clause set. The incremental solver keeps learned clauses between calls;
/// the fresh variant rebuilds the solver for every query (the pre-session
/// behaviour of the SMT layer).
void SatQueryBatch(benchmark::State &State, bool Incremental) {
  int NumVars = 60;
  Rng Setup(7);
  std::vector<std::vector<sat::Lit>> Clauses;
  for (int I = 0; I < static_cast<int>(NumVars * 4.0); ++I) {
    std::vector<sat::Lit> C;
    for (int K = 0; K < 3; ++K)
      C.push_back(sat::mkLit(
          static_cast<sat::BVar>(Setup.range(0, NumVars - 1)),
          Setup.chance(0.5)));
    Clauses.push_back(std::move(C));
  }
  for (auto _ : State) {
    Rng R(99);
    sat::SatSolver Inc;
    if (Incremental) {
      for (int I = 0; I < NumVars; ++I)
        Inc.newVar();
      for (const auto &C : Clauses)
        Inc.addClause(C);
    }
    for (int Query = 0; Query < 24; ++Query) {
      std::vector<sat::Lit> Assumps;
      for (int I = 0; I < 6; ++I)
        Assumps.push_back(sat::mkLit(
            static_cast<sat::BVar>(R.range(0, NumVars - 1)), R.chance(0.5)));
      if (Incremental) {
        benchmark::DoNotOptimize(Inc.solve(Assumps));
      } else {
        sat::SatSolver S;
        for (int I = 0; I < NumVars; ++I)
          S.newVar();
        for (const auto &C : Clauses)
          S.addClause(C);
        for (sat::Lit A : Assumps)
          S.addClause({A});
        benchmark::DoNotOptimize(S.solve());
      }
    }
  }
}
void BM_SatQueryBatchIncremental(benchmark::State &State) {
  SatQueryBatch(State, /*Incremental=*/true);
}
void BM_SatQueryBatchFresh(benchmark::State &State) {
  SatQueryBatch(State, /*Incremental=*/false);
}
BENCHMARK(BM_SatQueryBatchIncremental);
BENCHMARK(BM_SatQueryBatchFresh);

void BM_SolverIsSat(benchmark::State &State) {
  FormulaManager M;
  Solver S(M);
  Rng R(99);
  std::vector<VarId> Vars;
  for (int I = 0; I < 4; ++I)
    Vars.push_back(M.vars().create("v" + std::to_string(I), VarKind::Input));
  std::vector<const Formula *> Fs;
  for (int I = 0; I < 32; ++I)
    Fs.push_back(randomFormula(M, R, Vars, 2));
  for (auto _ : State) {
    for (const Formula *F : Fs)
      benchmark::DoNotOptimize(S.isSat(F));
  }
}
BENCHMARK(BM_SolverIsSat);

/// A repetitive query mix (every formula asked several times, as the
/// diagnosis loop does), answered with and without the verdict cache.
void SolverRepeatedQueries(benchmark::State &State, bool Caching) {
  FormulaManager M;
  Rng R(123);
  std::vector<VarId> Vars;
  for (int I = 0; I < 4; ++I)
    Vars.push_back(M.vars().create("v" + std::to_string(I), VarKind::Input));
  std::vector<const Formula *> Fs;
  for (int I = 0; I < 12; ++I)
    Fs.push_back(randomFormula(M, R, Vars, 2));
  for (auto _ : State) {
    Solver S(M);
    S.setCaching(Caching);
    for (int Rep = 0; Rep < 8; ++Rep)
      for (const Formula *F : Fs)
        benchmark::DoNotOptimize(S.isSat(F));
  }
}
void BM_SolverRepeatedQueriesCached(benchmark::State &State) {
  SolverRepeatedQueries(State, /*Caching=*/true);
}
void BM_SolverRepeatedQueriesFresh(benchmark::State &State) {
  SolverRepeatedQueries(State, /*Caching=*/false);
}
BENCHMARK(BM_SolverRepeatedQueriesCached);
BENCHMARK(BM_SolverRepeatedQueriesFresh);

/// Session-based conjunction checks with shared conjuncts vs one-shot
/// isSat over the conjunction (the MSA subset-search query shape). The pool
/// is kept shallow (3 vars, depth 1) so the benchmark measures encoding and
/// search reuse rather than individual theory-check hardness.
void SolverConjunctionChecks(benchmark::State &State, bool Incremental) {
  FormulaManager M;
  Rng R(321);
  std::vector<VarId> Vars;
  for (int I = 0; I < 3; ++I)
    Vars.push_back(M.vars().create("w" + std::to_string(I), VarKind::Input));
  std::vector<const Formula *> Pool;
  for (int I = 0; I < 10; ++I)
    Pool.push_back(randomEasyFormula(M, R, Vars, 1));
  for (auto _ : State) {
    Solver S(M);
    S.setCaching(false);
    Solver::Session Sess(S);
    Rng Q(555);
    for (int Query = 0; Query < 48; ++Query) {
      std::vector<const Formula *> Conj;
      for (int I = 0, N = static_cast<int>(Q.range(2, 4)); I < N; ++I)
        Conj.push_back(Pool[Q.range(0, Pool.size() - 1)]);
      if (Incremental)
        benchmark::DoNotOptimize(Sess.check(Conj));
      else
        benchmark::DoNotOptimize(S.isSat(M.mkAnd(std::move(Conj))));
    }
  }
}
void BM_SessionConjunctionsIncremental(benchmark::State &State) {
  SolverConjunctionChecks(State, /*Incremental=*/true);
}
void BM_SessionConjunctionsFresh(benchmark::State &State) {
  SolverConjunctionChecks(State, /*Incremental=*/false);
}
BENCHMARK(BM_SessionConjunctionsIncremental);
BENCHMARK(BM_SessionConjunctionsFresh);

void BM_CooperEliminateOne(benchmark::State &State) {
  FormulaManager M;
  Rng R(55);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Input)};
  std::vector<const Formula *> Fs;
  for (int I = 0; I < 16; ++I)
    Fs.push_back(randomFormula(M, R, Vars, 2));
  for (auto _ : State) {
    for (const Formula *F : Fs)
      benchmark::DoNotOptimize(eliminateExists(M, F, Vars[0]));
  }
}
BENCHMARK(BM_CooperEliminateOne);

void BM_CooperForallTwo(benchmark::State &State) {
  FormulaManager M;
  Rng R(56);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Input)};
  std::vector<const Formula *> Fs;
  for (int I = 0; I < 8; ++I)
    Fs.push_back(randomFormula(M, R, Vars, 1));
  std::vector<VarId> Elim = {Vars[0], Vars[1]};
  for (auto _ : State) {
    for (const Formula *F : Fs)
      benchmark::DoNotOptimize(eliminateForall(M, F, Elim));
  }
}
BENCHMARK(BM_CooperForallTwo);

} // namespace

BENCHMARK_MAIN();
