//===- bench/perf_smt.cpp - SMT substrate microbenchmarks (E7) --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark performance suite for the SMT substrate: formula
/// construction, SAT solving, LIA conjunctions, full DPLL(T) queries, and
/// Cooper quantifier elimination. An interactive tool must answer in
/// milliseconds; these benchmarks keep that budget measurable.
///
//===----------------------------------------------------------------------===//

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"
#include "smt/LiaSolver.h"
#include "smt/Sat.h"
#include "smt/Solver.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Random NNF formula over NumVars variables (same distribution as the
/// differential tests).
const Formula *randomFormula(FormulaManager &M, Rng &R,
                             const std::vector<VarId> &Vars, int Depth) {
  if (Depth == 0 || R.chance(0.4)) {
    LinearExpr E = LinearExpr::constant(R.range(-6, 6));
    for (VarId V : Vars)
      if (R.chance(0.7))
        E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    switch (R.range(0, 3)) {
    case 0:
      return M.mkAtom(AtomRel::Le, E);
    case 1:
      return M.mkAtom(AtomRel::Eq, E);
    case 2:
      return M.mkAtom(AtomRel::Ne, E);
    default:
      return M.mkAtom(AtomRel::Div, E, R.range(2, 4));
    }
  }
  std::vector<const Formula *> Kids;
  for (int I = 0, N = static_cast<int>(R.range(2, 3)); I < N; ++I)
    Kids.push_back(randomFormula(M, R, Vars, Depth - 1));
  return R.chance(0.5) ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
}

void BM_FormulaConstruction(benchmark::State &State) {
  for (auto _ : State) {
    FormulaManager M;
    Rng R(42);
    std::vector<VarId> Vars;
    for (int I = 0; I < 4; ++I)
      Vars.push_back(M.vars().create("v" + std::to_string(I),
                                     VarKind::Input));
    for (int I = 0; I < 50; ++I)
      benchmark::DoNotOptimize(randomFormula(M, R, Vars, 2));
  }
}
BENCHMARK(BM_FormulaConstruction);

void BM_SatRandom3Sat(benchmark::State &State) {
  int NumVars = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Rng R(7);
    sat::SatSolver S;
    for (int I = 0; I < NumVars; ++I)
      S.newVar();
    for (int I = 0; I < static_cast<int>(NumVars * 4.2); ++I) {
      std::vector<sat::Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(sat::mkLit(
            static_cast<sat::BVar>(R.range(0, NumVars - 1)), R.chance(0.5)));
      S.addClause(C);
    }
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(20)->Arg(50)->Arg(100);

void BM_LiaConjunction(benchmark::State &State) {
  int NumVars = static_cast<int>(State.range(0));
  VarTable VT;
  std::vector<VarId> Vars;
  for (int I = 0; I < NumVars; ++I)
    Vars.push_back(VT.create("x" + std::to_string(I), VarKind::Input));
  Rng R(13);
  std::vector<LinearExpr> Rows;
  for (int I = 0; I < 2 * NumVars; ++I) {
    LinearExpr E = LinearExpr::constant(R.range(-10, 10));
    for (VarId V : Vars)
      E = E.add(LinearExpr::variable(V, R.range(-3, 3)));
    Rows.push_back(E);
  }
  for (auto _ : State) {
    Model Mo;
    benchmark::DoNotOptimize(solveLiaConjunction(Rows, &Mo));
  }
}
BENCHMARK(BM_LiaConjunction)->Arg(3)->Arg(6)->Arg(10);

void BM_SolverIsSat(benchmark::State &State) {
  FormulaManager M;
  Solver S(M);
  Rng R(99);
  std::vector<VarId> Vars;
  for (int I = 0; I < 4; ++I)
    Vars.push_back(M.vars().create("v" + std::to_string(I), VarKind::Input));
  std::vector<const Formula *> Fs;
  for (int I = 0; I < 32; ++I)
    Fs.push_back(randomFormula(M, R, Vars, 2));
  for (auto _ : State) {
    for (const Formula *F : Fs)
      benchmark::DoNotOptimize(S.isSat(F));
  }
}
BENCHMARK(BM_SolverIsSat);

void BM_CooperEliminateOne(benchmark::State &State) {
  FormulaManager M;
  Rng R(55);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Input)};
  std::vector<const Formula *> Fs;
  for (int I = 0; I < 16; ++I)
    Fs.push_back(randomFormula(M, R, Vars, 2));
  for (auto _ : State) {
    for (const Formula *F : Fs)
      benchmark::DoNotOptimize(eliminateExists(M, F, Vars[0]));
  }
}
BENCHMARK(BM_CooperEliminateOne);

void BM_CooperForallTwo(benchmark::State &State) {
  FormulaManager M;
  Rng R(56);
  std::vector<VarId> Vars = {M.vars().create("x", VarKind::Input),
                             M.vars().create("y", VarKind::Input),
                             M.vars().create("z", VarKind::Input)};
  std::vector<const Formula *> Fs;
  for (int I = 0; I < 8; ++I)
    Fs.push_back(randomFormula(M, R, Vars, 1));
  std::vector<VarId> Elim = {Vars[0], Vars[1]};
  for (auto _ : State) {
    for (const Formula *F : Fs)
      benchmark::DoNotOptimize(eliminateForall(M, F, Elim));
  }
}
BENCHMARK(BM_CooperForallTwo);

} // namespace

BENCHMARK_MAIN();
