//===- bench/query_metrics.cpp - Section 6 query claims (E2) ----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E2: per benchmark, the number of queries a sound oracle
/// answers before the report is classified, the size of each query (atoms
/// and variables -- the paper's whole point is that these are tiny compared
/// to the success condition), and the query-computation time ("in all
/// cases, the computation time is below 0.1s").
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"
#include "smt/FormulaOps.h"
#include "study/Benchmarks.h"

#include <chrono>
#include <cstdio>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::study;

int main() {
  std::printf("%-22s %8s %10s %12s %14s %12s\n", "benchmark", "queries",
              "max atoms", "max vars", "phi atoms", "compute");
  std::printf("%-22s %8s %10s %12s %14s %12s\n", "---------", "-------",
              "---------", "--------", "---------", "-------");
  size_t WorstAtoms = 0;
  double WorstTime = 0;
  bool AllDecided = true;
  for (const BenchmarkInfo &B : benchmarkSuite()) {
    ErrorDiagnoser D;
    if (LoadResult L = D.loadFile(benchmarkPath(B)); !L) {
      std::fprintf(stderr, "cannot load %s: %s\n", B.Name.c_str(),
                   L.message().c_str());
      return 1;
    }
    auto Oracle = D.makeConcreteOracle();
    auto T0 = std::chrono::steady_clock::now();
    DiagnosisResult R = D.diagnose(*Oracle);
    auto T1 = std::chrono::steady_clock::now();
    double Seconds = std::chrono::duration<double>(T1 - T0).count();

    size_t MaxAtoms = 0, MaxVars = 0;
    for (const QueryRecord &Q : R.Transcript) {
      MaxAtoms = std::max(MaxAtoms, smt::atomCount(Q.Fml));
      MaxVars = std::max(MaxVars, smt::freeVarsVec(Q.Fml).size());
    }
    size_t PhiAtoms = smt::atomCount(D.analysis().SuccessCondition);
    std::printf("%-22s %8zu %10zu %12zu %14zu %9.4f s\n", B.Name.c_str(),
                R.Transcript.size(), MaxAtoms, MaxVars, PhiAtoms, Seconds);
    WorstAtoms = std::max(WorstAtoms, MaxAtoms);
    WorstTime = std::max(WorstTime, Seconds);
    AllDecided =
        AllDecided && R.Outcome != DiagnosisOutcome::Inconclusive;
  }
  std::printf("\nall reports decided: %s\n", AllDecided ? "yes" : "NO");
  std::printf("largest query: %zu atom(s) -- the success conditions above "
              "are much larger\n",
              WorstAtoms);
  std::printf("worst compute time: %.4f s (paper claims below 0.1 s)\n",
              WorstTime);
  return 0;
}
