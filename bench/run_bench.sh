#!/usr/bin/env bash
# Runs the google-benchmark performance suites and records the results as
# JSON, so the perf trajectory of the repo is captured run over run.
#
# Usage: bench/run_bench.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build directory containing bench/ binaries (default: build)
#   OUT_DIR    where BENCH_smt.json / BENCH_abduction.json land (default: repo root)
#
# When the triage tool is built, the 11-benchmark suite is additionally
# timed once per available decision-procedure backend (native, and z3 /
# differential when built with ABDIAG_WITH_Z3=ON), producing one
# BENCH_triage_<backend>.jsonl each -- the per-report wall_ms and solver
# counters give the backend-vs-backend perf dimension.
#
# When bench/perf_corpus is built, throughput/latency scaling curves over a
# generated certified corpus are recorded per backend as
# BENCH_corpus_<backend>.jsonl: one row per --jobs point, schema
#
#   {"bench":"corpus_triage","backend":"native","jobs":4,"programs":96,
#    "seed":20260807,"inject_unknown":0.10,
#    "wall_ms":...,"reports_per_sec":...,
#    "p50_ms":...,"p95_ms":...,"p99_ms":...,        per-report latency
#    "timeouts":0,"inconclusive":...,"mismatches":0,
#    "gen_wall_ms":...,"gen_candidates":...,"gen_accepted":...,
#    "answers_unknown":...,"potential_peak":...,    Section 5 counters
#    "summaries_computed":...,"summaries_instantiated":...,
#    "opaque_calls":...,                            interprocedural counters
#    "solver_queries":...,"simplex_pivots":...,     deterministic counters
#    "pivot_limit_hits":...,"tableau_reuses":...}
#
# The corpus cycles all six report causes (including summarized_call and
# unknown_answer) and triage injects a deterministic 10% of "unknown"
# oracle answers, so the curves pin the interprocedural-summary and
# Section 5 don't-know paths. "mismatches" counts reports whose *decisive*
# verdict contradicted the corpus ground truth (or that crashed) -- always
# 0 on a healthy build (perf_corpus exits non-zero otherwise); reports the
# injected unknowns drive inconclusive are tracked by the exactly-gated
# "inconclusive" counter instead. "solver_queries", "simplex_pivots",
# "answers_unknown", and "potential_peak" are deterministic for a given
# seed/backend at jobs=1 (with more workers, dynamic report-to-worker
# assignment changes which warm per-worker caches serve which report), so
# baseline comparison gates on them exactly only for the jobs=1 point; the
# summaries_* counters come from the load-time analysis alone and are
# gated at every jobs point (see tools/check_bench_regression).
#
# Equivalent cmake driver: `cmake --build BUILD_DIR --target bench-json`.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_DIR="${2:-$REPO_ROOT}"

for BIN in perf_smt perf_abduction perf_formula; do
  if [[ ! -x "$BUILD_DIR/bench/$BIN" ]]; then
    echo "error: $BUILD_DIR/bench/$BIN not built (run: cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

mkdir -p "$OUT_DIR"

# Run every suite even if one fails, but propagate failure to the caller:
# CI must notice a crashing benchmark binary, and a broken first suite must
# not hide the results of the second.
STATUS=0

# 3 repetitions per benchmark: single-run times jitter far more than the
# regression tolerance (1.3x swings between back-to-back runs were
# measured), so the gate compares *median* aggregates.
"$BUILD_DIR/bench/perf_smt" \
  --benchmark_repetitions=3 \
  --benchmark_out="$OUT_DIR/BENCH_smt.json" \
  --benchmark_out_format=json || {
    echo "error: perf_smt failed (exit $?)" >&2
    STATUS=1
  }
"$BUILD_DIR/bench/perf_abduction" \
  --benchmark_repetitions=3 \
  --benchmark_out="$OUT_DIR/BENCH_abduction.json" \
  --benchmark_out_format=json || {
    echo "error: perf_abduction failed (exit $?)" >&2
    STATUS=1
  }
# Formula-substrate suite: wall times are gated like the other suites, and
# its x_-prefixed user counters (intern/memo/DAG-size work counters) are
# deterministic, so check_bench_regression gates those *exactly*.
"$BUILD_DIR/bench/perf_formula" \
  --benchmark_repetitions=3 \
  --benchmark_out="$OUT_DIR/BENCH_formula.json" \
  --benchmark_out_format=json || {
    echo "error: perf_formula failed (exit $?)" >&2
    STATUS=1
  }

# Backend dimension: triage the study suite once per available backend.
TRIAGE="$BUILD_DIR/tools/abdiag_triage"
TRIAGE_OUTS=()
if [[ -x "$TRIAGE" ]]; then
  # --list-backends marks backends missing from this build "(not built)".
  while IFS= read -r BACKEND; do
    OUT_FILE="$OUT_DIR/BENCH_triage_$BACKEND.jsonl"
    "$TRIAGE" --backend "$BACKEND" --json > "$OUT_FILE" || {
      echo "error: triage with backend $BACKEND failed (exit $?)" >&2
      STATUS=1
    }
    TRIAGE_OUTS+=("$OUT_FILE")
  done < <("$TRIAGE" --list-backends | awk '!/not built/ { print $1 }')
fi

# Corpus dimension: scaling curves (reports/sec vs --jobs) per backend over
# a freshly generated certified corpus.
CORPUS_BIN="$BUILD_DIR/bench/perf_corpus"
CORPUS_OUTS=()
if [[ -x "$CORPUS_BIN" && -x "$TRIAGE" ]]; then
  while IFS= read -r BACKEND; do
    OUT_FILE="$OUT_DIR/BENCH_corpus_$BACKEND.jsonl"
    "$CORPUS_BIN" --backend "$BACKEND" > "$OUT_FILE" || {
      echo "error: perf_corpus with backend $BACKEND failed (exit $?)" >&2
      STATUS=1
    }
    CORPUS_OUTS+=("$OUT_FILE")
  done < <("$TRIAGE" --list-backends | awk '!/not built/ { print $1 }')
fi

# Daemon dimension: abdiagd under a loopback session flood (see
# bench/perf_daemon.cpp): 1200 concurrent mirror-oracle sessions over 4
# connections, schema
#
#   {"schema":1,"bench":"daemon_replay","backend":"native","seed":...,
#    "programs":64,"sessions":1200,"connections":4,"max_active":8,
#    "wall_ms":...,"sessions_per_sec":...,        replay throughput
#    "peak_open":1200,"peak_active":8,            concurrency high-water
#    "asks":...,"parse_failures":0,               wire query traffic
#    "mismatches":0,"refused":0,"reaped":0,       must all be zero
#    "rtt_p50_ms":...,"rtt_p95_ms":...,"rtt_p99_ms":...,
#    "drain_sessions":200,"drain_ms":...,"drain_refused":0}
#
# "mismatches" counts sessions whose daemon verdict deviated from batch
# triage of the same program -- perf_daemon exits non-zero unless it (and
# "refused") are 0. "asks" is deterministic for a fixed seed/backend (every
# session runs a fresh diagnoser, so concurrency cannot shift query
# counts), and check_bench_regression gates it exactly.
DAEMON_BIN="$BUILD_DIR/bench/perf_daemon"
DAEMON_OUTS=()
if [[ -x "$DAEMON_BIN" && -x "$TRIAGE" ]]; then
  while IFS= read -r BACKEND; do
    OUT_FILE="$OUT_DIR/BENCH_daemon_$BACKEND.jsonl"
    "$DAEMON_BIN" --backend "$BACKEND" > "$OUT_FILE" || {
      echo "error: perf_daemon with backend $BACKEND failed (exit $?)" >&2
      STATUS=1
    }
    DAEMON_OUTS+=("$OUT_FILE")
  done < <("$TRIAGE" --list-backends | awk '!/not built/ { print $1 }')
fi

if [[ "$STATUS" -ne 0 ]]; then
  echo "error: at least one benchmark suite failed" >&2
  exit "$STATUS"
fi

echo "wrote $OUT_DIR/BENCH_smt.json, $OUT_DIR/BENCH_abduction.json, and $OUT_DIR/BENCH_formula.json"
if [[ "${#TRIAGE_OUTS[@]}" -gt 0 ]]; then
  echo "wrote ${TRIAGE_OUTS[*]}"
fi
if [[ "${#CORPUS_OUTS[@]}" -gt 0 ]]; then
  echo "wrote ${CORPUS_OUTS[*]}"
fi
if [[ "${#DAEMON_OUTS[@]}" -gt 0 ]]; then
  echo "wrote ${DAEMON_OUTS[*]}"
fi
