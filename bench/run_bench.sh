#!/usr/bin/env bash
# Runs the google-benchmark performance suites and records the results as
# JSON, so the perf trajectory of the repo is captured run over run.
#
# Usage: bench/run_bench.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build directory containing bench/ binaries (default: build)
#   OUT_DIR    where BENCH_smt.json / BENCH_abduction.json land (default: repo root)
#
# When the triage tool is built, the 11-benchmark suite is additionally
# timed once per available decision-procedure backend (native, and z3 /
# differential when built with ABDIAG_WITH_Z3=ON), producing one
# BENCH_triage_<backend>.jsonl each -- the per-report wall_ms and solver
# counters give the backend-vs-backend perf dimension.
#
# Equivalent cmake driver: `cmake --build BUILD_DIR --target bench-json`.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_DIR="${2:-$REPO_ROOT}"

for BIN in perf_smt perf_abduction; do
  if [[ ! -x "$BUILD_DIR/bench/$BIN" ]]; then
    echo "error: $BUILD_DIR/bench/$BIN not built (run: cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

mkdir -p "$OUT_DIR"

# Run every suite even if one fails, but propagate failure to the caller:
# CI must notice a crashing benchmark binary, and a broken first suite must
# not hide the results of the second.
STATUS=0

"$BUILD_DIR/bench/perf_smt" \
  --benchmark_out="$OUT_DIR/BENCH_smt.json" \
  --benchmark_out_format=json || {
    echo "error: perf_smt failed (exit $?)" >&2
    STATUS=1
  }
"$BUILD_DIR/bench/perf_abduction" \
  --benchmark_out="$OUT_DIR/BENCH_abduction.json" \
  --benchmark_out_format=json || {
    echo "error: perf_abduction failed (exit $?)" >&2
    STATUS=1
  }

# Backend dimension: triage the study suite once per available backend.
TRIAGE="$BUILD_DIR/tools/abdiag_triage"
TRIAGE_OUTS=()
if [[ -x "$TRIAGE" ]]; then
  # --list-backends marks backends missing from this build "(not built)".
  while IFS= read -r BACKEND; do
    OUT_FILE="$OUT_DIR/BENCH_triage_$BACKEND.jsonl"
    "$TRIAGE" --backend "$BACKEND" --json > "$OUT_FILE" || {
      echo "error: triage with backend $BACKEND failed (exit $?)" >&2
      STATUS=1
    }
    TRIAGE_OUTS+=("$OUT_FILE")
  done < <("$TRIAGE" --list-backends | awk '!/not built/ { print $1 }')
fi

if [[ "$STATUS" -ne 0 ]]; then
  echo "error: at least one benchmark suite failed" >&2
  exit "$STATUS"
fi

echo "wrote $OUT_DIR/BENCH_smt.json and $OUT_DIR/BENCH_abduction.json"
if [[ "${#TRIAGE_OUTS[@]}" -gt 0 ]]; then
  echo "wrote ${TRIAGE_OUTS[*]}"
fi
