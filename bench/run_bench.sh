#!/usr/bin/env bash
# Runs the google-benchmark performance suites and records the results as
# JSON, so the perf trajectory of the repo is captured run over run.
#
# Usage: bench/run_bench.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build directory containing bench/ binaries (default: build)
#   OUT_DIR    where BENCH_smt.json / BENCH_abduction.json land (default: repo root)
#
# Equivalent cmake driver: `cmake --build BUILD_DIR --target bench-json`.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_DIR="${2:-$REPO_ROOT}"

for BIN in perf_smt perf_abduction; do
  if [[ ! -x "$BUILD_DIR/bench/$BIN" ]]; then
    echo "error: $BUILD_DIR/bench/$BIN not built (run: cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

mkdir -p "$OUT_DIR"

# Run every suite even if one fails, but propagate failure to the caller:
# CI must notice a crashing benchmark binary, and a broken first suite must
# not hide the results of the second.
STATUS=0

"$BUILD_DIR/bench/perf_smt" \
  --benchmark_out="$OUT_DIR/BENCH_smt.json" \
  --benchmark_out_format=json || {
    echo "error: perf_smt failed (exit $?)" >&2
    STATUS=1
  }
"$BUILD_DIR/bench/perf_abduction" \
  --benchmark_out="$OUT_DIR/BENCH_abduction.json" \
  --benchmark_out_format=json || {
    echo "error: perf_abduction failed (exit $?)" >&2
    STATUS=1
  }

if [[ "$STATUS" -ne 0 ]]; then
  echo "error: at least one benchmark suite failed" >&2
  exit "$STATUS"
fi

echo "wrote $OUT_DIR/BENCH_smt.json and $OUT_DIR/BENCH_abduction.json"
