file(REMOVE_RECURSE
  "CMakeFiles/ablation_decompose.dir/ablation_decompose.cpp.o"
  "CMakeFiles/ablation_decompose.dir/ablation_decompose.cpp.o.d"
  "ablation_decompose"
  "ablation_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
