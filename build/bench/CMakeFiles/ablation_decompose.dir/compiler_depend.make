# Empty compiler generated dependencies file for ablation_decompose.
# This may be replaced when dependencies are built.
