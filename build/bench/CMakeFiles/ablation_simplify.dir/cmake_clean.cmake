file(REMOVE_RECURSE
  "CMakeFiles/ablation_simplify.dir/ablation_simplify.cpp.o"
  "CMakeFiles/ablation_simplify.dir/ablation_simplify.cpp.o.d"
  "ablation_simplify"
  "ablation_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
