file(REMOVE_RECURSE
  "CMakeFiles/ablation_underapprox.dir/ablation_underapprox.cpp.o"
  "CMakeFiles/ablation_underapprox.dir/ablation_underapprox.cpp.o.d"
  "ablation_underapprox"
  "ablation_underapprox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_underapprox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
