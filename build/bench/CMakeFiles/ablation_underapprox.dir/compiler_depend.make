# Empty compiler generated dependencies file for ablation_underapprox.
# This may be replaced when dependencies are built.
