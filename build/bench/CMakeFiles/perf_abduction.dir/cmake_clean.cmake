file(REMOVE_RECURSE
  "CMakeFiles/perf_abduction.dir/perf_abduction.cpp.o"
  "CMakeFiles/perf_abduction.dir/perf_abduction.cpp.o.d"
  "perf_abduction"
  "perf_abduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_abduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
