# Empty dependencies file for perf_abduction.
# This may be replaced when dependencies are built.
