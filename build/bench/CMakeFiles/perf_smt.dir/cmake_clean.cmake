file(REMOVE_RECURSE
  "CMakeFiles/perf_smt.dir/perf_smt.cpp.o"
  "CMakeFiles/perf_smt.dir/perf_smt.cpp.o.d"
  "perf_smt"
  "perf_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
