# Empty compiler generated dependencies file for perf_smt.
# This may be replaced when dependencies are built.
