file(REMOVE_RECURSE
  "CMakeFiles/query_metrics.dir/query_metrics.cpp.o"
  "CMakeFiles/query_metrics.dir/query_metrics.cpp.o.d"
  "query_metrics"
  "query_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
