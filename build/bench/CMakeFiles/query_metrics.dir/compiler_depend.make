# Empty compiler generated dependencies file for query_metrics.
# This may be replaced when dependencies are built.
