file(REMOVE_RECURSE
  "CMakeFiles/batch_triage.dir/batch_triage.cpp.o"
  "CMakeFiles/batch_triage.dir/batch_triage.cpp.o.d"
  "batch_triage"
  "batch_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
