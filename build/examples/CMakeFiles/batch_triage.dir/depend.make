# Empty dependencies file for batch_triage.
# This may be replaced when dependencies are built.
