file(REMOVE_RECURSE
  "CMakeFiles/interactive_diagnosis.dir/interactive_diagnosis.cpp.o"
  "CMakeFiles/interactive_diagnosis.dir/interactive_diagnosis.cpp.o.d"
  "interactive_diagnosis"
  "interactive_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
