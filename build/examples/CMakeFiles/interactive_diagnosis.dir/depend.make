# Empty dependencies file for interactive_diagnosis.
# This may be replaced when dependencies are built.
