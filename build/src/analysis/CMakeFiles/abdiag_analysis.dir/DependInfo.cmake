
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/IntervalAnnotator.cpp" "src/analysis/CMakeFiles/abdiag_analysis.dir/IntervalAnnotator.cpp.o" "gcc" "src/analysis/CMakeFiles/abdiag_analysis.dir/IntervalAnnotator.cpp.o.d"
  "/root/repo/src/analysis/SymbolicAnalyzer.cpp" "src/analysis/CMakeFiles/abdiag_analysis.dir/SymbolicAnalyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/abdiag_analysis.dir/SymbolicAnalyzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/abdiag_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/abdiag_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
