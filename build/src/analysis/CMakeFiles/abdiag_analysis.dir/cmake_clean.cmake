file(REMOVE_RECURSE
  "CMakeFiles/abdiag_analysis.dir/IntervalAnnotator.cpp.o"
  "CMakeFiles/abdiag_analysis.dir/IntervalAnnotator.cpp.o.d"
  "CMakeFiles/abdiag_analysis.dir/SymbolicAnalyzer.cpp.o"
  "CMakeFiles/abdiag_analysis.dir/SymbolicAnalyzer.cpp.o.d"
  "libabdiag_analysis.a"
  "libabdiag_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abdiag_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
