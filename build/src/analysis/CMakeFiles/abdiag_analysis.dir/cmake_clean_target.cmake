file(REMOVE_RECURSE
  "libabdiag_analysis.a"
)
