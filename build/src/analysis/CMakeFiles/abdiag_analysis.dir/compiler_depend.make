# Empty compiler generated dependencies file for abdiag_analysis.
# This may be replaced when dependencies are built.
