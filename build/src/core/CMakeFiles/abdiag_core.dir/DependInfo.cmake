
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Abduction.cpp" "src/core/CMakeFiles/abdiag_core.dir/Abduction.cpp.o" "gcc" "src/core/CMakeFiles/abdiag_core.dir/Abduction.cpp.o.d"
  "/root/repo/src/core/ConcreteOracle.cpp" "src/core/CMakeFiles/abdiag_core.dir/ConcreteOracle.cpp.o" "gcc" "src/core/CMakeFiles/abdiag_core.dir/ConcreteOracle.cpp.o.d"
  "/root/repo/src/core/Diagnosis.cpp" "src/core/CMakeFiles/abdiag_core.dir/Diagnosis.cpp.o" "gcc" "src/core/CMakeFiles/abdiag_core.dir/Diagnosis.cpp.o.d"
  "/root/repo/src/core/ErrorDiagnoser.cpp" "src/core/CMakeFiles/abdiag_core.dir/ErrorDiagnoser.cpp.o" "gcc" "src/core/CMakeFiles/abdiag_core.dir/ErrorDiagnoser.cpp.o.d"
  "/root/repo/src/core/Explain.cpp" "src/core/CMakeFiles/abdiag_core.dir/Explain.cpp.o" "gcc" "src/core/CMakeFiles/abdiag_core.dir/Explain.cpp.o.d"
  "/root/repo/src/core/Msa.cpp" "src/core/CMakeFiles/abdiag_core.dir/Msa.cpp.o" "gcc" "src/core/CMakeFiles/abdiag_core.dir/Msa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/abdiag_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/abdiag_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/abdiag_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
