file(REMOVE_RECURSE
  "CMakeFiles/abdiag_core.dir/Abduction.cpp.o"
  "CMakeFiles/abdiag_core.dir/Abduction.cpp.o.d"
  "CMakeFiles/abdiag_core.dir/ConcreteOracle.cpp.o"
  "CMakeFiles/abdiag_core.dir/ConcreteOracle.cpp.o.d"
  "CMakeFiles/abdiag_core.dir/Diagnosis.cpp.o"
  "CMakeFiles/abdiag_core.dir/Diagnosis.cpp.o.d"
  "CMakeFiles/abdiag_core.dir/ErrorDiagnoser.cpp.o"
  "CMakeFiles/abdiag_core.dir/ErrorDiagnoser.cpp.o.d"
  "CMakeFiles/abdiag_core.dir/Explain.cpp.o"
  "CMakeFiles/abdiag_core.dir/Explain.cpp.o.d"
  "CMakeFiles/abdiag_core.dir/Msa.cpp.o"
  "CMakeFiles/abdiag_core.dir/Msa.cpp.o.d"
  "libabdiag_core.a"
  "libabdiag_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abdiag_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
