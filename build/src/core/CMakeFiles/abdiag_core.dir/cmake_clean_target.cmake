file(REMOVE_RECURSE
  "libabdiag_core.a"
)
