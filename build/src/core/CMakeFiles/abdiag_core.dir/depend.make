# Empty dependencies file for abdiag_core.
# This may be replaced when dependencies are built.
