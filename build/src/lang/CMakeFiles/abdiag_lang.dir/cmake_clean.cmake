file(REMOVE_RECURSE
  "CMakeFiles/abdiag_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/abdiag_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/abdiag_lang.dir/Interp.cpp.o"
  "CMakeFiles/abdiag_lang.dir/Interp.cpp.o.d"
  "CMakeFiles/abdiag_lang.dir/Lexer.cpp.o"
  "CMakeFiles/abdiag_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/abdiag_lang.dir/Parser.cpp.o"
  "CMakeFiles/abdiag_lang.dir/Parser.cpp.o.d"
  "libabdiag_lang.a"
  "libabdiag_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abdiag_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
