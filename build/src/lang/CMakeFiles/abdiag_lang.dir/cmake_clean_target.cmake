file(REMOVE_RECURSE
  "libabdiag_lang.a"
)
