# Empty dependencies file for abdiag_lang.
# This may be replaced when dependencies are built.
