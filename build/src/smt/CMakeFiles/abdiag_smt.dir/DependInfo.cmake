
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/Cooper.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/Cooper.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/Cooper.cpp.o.d"
  "/root/repo/src/smt/Formula.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/Formula.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/Formula.cpp.o.d"
  "/root/repo/src/smt/FormulaOps.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/FormulaOps.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/FormulaOps.cpp.o.d"
  "/root/repo/src/smt/FormulaParser.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/FormulaParser.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/FormulaParser.cpp.o.d"
  "/root/repo/src/smt/LiaSolver.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/LiaSolver.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/LiaSolver.cpp.o.d"
  "/root/repo/src/smt/LinearExpr.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/LinearExpr.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/LinearExpr.cpp.o.d"
  "/root/repo/src/smt/Printer.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/Printer.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/Printer.cpp.o.d"
  "/root/repo/src/smt/Sat.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/Sat.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/Sat.cpp.o.d"
  "/root/repo/src/smt/Simplify.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/Simplify.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/Simplify.cpp.o.d"
  "/root/repo/src/smt/Solver.cpp" "src/smt/CMakeFiles/abdiag_smt.dir/Solver.cpp.o" "gcc" "src/smt/CMakeFiles/abdiag_smt.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
