file(REMOVE_RECURSE
  "CMakeFiles/abdiag_smt.dir/Cooper.cpp.o"
  "CMakeFiles/abdiag_smt.dir/Cooper.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/Formula.cpp.o"
  "CMakeFiles/abdiag_smt.dir/Formula.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/FormulaOps.cpp.o"
  "CMakeFiles/abdiag_smt.dir/FormulaOps.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/FormulaParser.cpp.o"
  "CMakeFiles/abdiag_smt.dir/FormulaParser.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/LiaSolver.cpp.o"
  "CMakeFiles/abdiag_smt.dir/LiaSolver.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/LinearExpr.cpp.o"
  "CMakeFiles/abdiag_smt.dir/LinearExpr.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/Printer.cpp.o"
  "CMakeFiles/abdiag_smt.dir/Printer.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/Sat.cpp.o"
  "CMakeFiles/abdiag_smt.dir/Sat.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/Simplify.cpp.o"
  "CMakeFiles/abdiag_smt.dir/Simplify.cpp.o.d"
  "CMakeFiles/abdiag_smt.dir/Solver.cpp.o"
  "CMakeFiles/abdiag_smt.dir/Solver.cpp.o.d"
  "libabdiag_smt.a"
  "libabdiag_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abdiag_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
