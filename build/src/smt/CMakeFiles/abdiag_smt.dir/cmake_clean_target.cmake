file(REMOVE_RECURSE
  "libabdiag_smt.a"
)
