# Empty compiler generated dependencies file for abdiag_smt.
# This may be replaced when dependencies are built.
