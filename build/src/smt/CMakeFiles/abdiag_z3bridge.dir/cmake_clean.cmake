file(REMOVE_RECURSE
  "CMakeFiles/abdiag_z3bridge.dir/Z3Bridge.cpp.o"
  "CMakeFiles/abdiag_z3bridge.dir/Z3Bridge.cpp.o.d"
  "libabdiag_z3bridge.a"
  "libabdiag_z3bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abdiag_z3bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
