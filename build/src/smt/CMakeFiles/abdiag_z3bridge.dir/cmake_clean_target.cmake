file(REMOVE_RECURSE
  "libabdiag_z3bridge.a"
)
