# Empty dependencies file for abdiag_z3bridge.
# This may be replaced when dependencies are built.
