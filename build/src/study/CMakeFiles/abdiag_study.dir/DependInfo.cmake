
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/study/Benchmarks.cpp" "src/study/CMakeFiles/abdiag_study.dir/Benchmarks.cpp.o" "gcc" "src/study/CMakeFiles/abdiag_study.dir/Benchmarks.cpp.o.d"
  "/root/repo/src/study/HumanModel.cpp" "src/study/CMakeFiles/abdiag_study.dir/HumanModel.cpp.o" "gcc" "src/study/CMakeFiles/abdiag_study.dir/HumanModel.cpp.o.d"
  "/root/repo/src/study/Stats.cpp" "src/study/CMakeFiles/abdiag_study.dir/Stats.cpp.o" "gcc" "src/study/CMakeFiles/abdiag_study.dir/Stats.cpp.o.d"
  "/root/repo/src/study/StudyRunner.cpp" "src/study/CMakeFiles/abdiag_study.dir/StudyRunner.cpp.o" "gcc" "src/study/CMakeFiles/abdiag_study.dir/StudyRunner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abdiag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/abdiag_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/abdiag_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/abdiag_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
