file(REMOVE_RECURSE
  "CMakeFiles/abdiag_study.dir/Benchmarks.cpp.o"
  "CMakeFiles/abdiag_study.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/abdiag_study.dir/HumanModel.cpp.o"
  "CMakeFiles/abdiag_study.dir/HumanModel.cpp.o.d"
  "CMakeFiles/abdiag_study.dir/Stats.cpp.o"
  "CMakeFiles/abdiag_study.dir/Stats.cpp.o.d"
  "CMakeFiles/abdiag_study.dir/StudyRunner.cpp.o"
  "CMakeFiles/abdiag_study.dir/StudyRunner.cpp.o.d"
  "libabdiag_study.a"
  "libabdiag_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abdiag_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
