file(REMOVE_RECURSE
  "libabdiag_study.a"
)
