# Empty compiler generated dependencies file for abdiag_study.
# This may be replaced when dependencies are built.
