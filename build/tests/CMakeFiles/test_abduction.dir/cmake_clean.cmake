file(REMOVE_RECURSE
  "CMakeFiles/test_abduction.dir/core/AbductionTest.cpp.o"
  "CMakeFiles/test_abduction.dir/core/AbductionTest.cpp.o.d"
  "test_abduction"
  "test_abduction.pdb"
  "test_abduction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
