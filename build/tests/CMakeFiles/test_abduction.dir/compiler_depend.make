# Empty compiler generated dependencies file for test_abduction.
# This may be replaced when dependencies are built.
