file(REMOVE_RECURSE
  "CMakeFiles/test_benchmark_suite.dir/study/BenchmarkSuiteTest.cpp.o"
  "CMakeFiles/test_benchmark_suite.dir/study/BenchmarkSuiteTest.cpp.o.d"
  "test_benchmark_suite"
  "test_benchmark_suite.pdb"
  "test_benchmark_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmark_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
