file(REMOVE_RECURSE
  "CMakeFiles/test_concrete_oracle.dir/core/ConcreteOracleTest.cpp.o"
  "CMakeFiles/test_concrete_oracle.dir/core/ConcreteOracleTest.cpp.o.d"
  "test_concrete_oracle"
  "test_concrete_oracle.pdb"
  "test_concrete_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concrete_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
