# Empty dependencies file for test_concrete_oracle.
# This may be replaced when dependencies are built.
