file(REMOVE_RECURSE
  "CMakeFiles/test_cooper.dir/smt/CooperTest.cpp.o"
  "CMakeFiles/test_cooper.dir/smt/CooperTest.cpp.o.d"
  "test_cooper"
  "test_cooper.pdb"
  "test_cooper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cooper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
