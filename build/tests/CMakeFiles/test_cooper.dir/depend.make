# Empty dependencies file for test_cooper.
# This may be replaced when dependencies are built.
