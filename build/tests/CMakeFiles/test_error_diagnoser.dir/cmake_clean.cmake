file(REMOVE_RECURSE
  "CMakeFiles/test_error_diagnoser.dir/core/ErrorDiagnoserTest.cpp.o"
  "CMakeFiles/test_error_diagnoser.dir/core/ErrorDiagnoserTest.cpp.o.d"
  "test_error_diagnoser"
  "test_error_diagnoser.pdb"
  "test_error_diagnoser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_diagnoser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
