# Empty dependencies file for test_error_diagnoser.
# This may be replaced when dependencies are built.
