file(REMOVE_RECURSE
  "CMakeFiles/test_formula_parser.dir/smt/FormulaParserTest.cpp.o"
  "CMakeFiles/test_formula_parser.dir/smt/FormulaParserTest.cpp.o.d"
  "test_formula_parser"
  "test_formula_parser.pdb"
  "test_formula_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formula_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
