# Empty dependencies file for test_formula_parser.
# This may be replaced when dependencies are built.
