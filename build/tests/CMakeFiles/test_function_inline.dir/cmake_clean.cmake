file(REMOVE_RECURSE
  "CMakeFiles/test_function_inline.dir/lang/FunctionInlineTest.cpp.o"
  "CMakeFiles/test_function_inline.dir/lang/FunctionInlineTest.cpp.o.d"
  "test_function_inline"
  "test_function_inline.pdb"
  "test_function_inline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_function_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
