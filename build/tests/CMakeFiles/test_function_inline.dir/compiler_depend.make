# Empty compiler generated dependencies file for test_function_inline.
# This may be replaced when dependencies are built.
