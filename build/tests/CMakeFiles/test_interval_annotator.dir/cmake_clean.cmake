file(REMOVE_RECURSE
  "CMakeFiles/test_interval_annotator.dir/analysis/IntervalAnnotatorTest.cpp.o"
  "CMakeFiles/test_interval_annotator.dir/analysis/IntervalAnnotatorTest.cpp.o.d"
  "test_interval_annotator"
  "test_interval_annotator.pdb"
  "test_interval_annotator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_annotator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
