# Empty dependencies file for test_interval_annotator.
# This may be replaced when dependencies are built.
