# Empty dependencies file for test_lia.
# This may be replaced when dependencies are built.
