file(REMOVE_RECURSE
  "CMakeFiles/test_linear_expr.dir/smt/LinearExprTest.cpp.o"
  "CMakeFiles/test_linear_expr.dir/smt/LinearExprTest.cpp.o.d"
  "test_linear_expr"
  "test_linear_expr.pdb"
  "test_linear_expr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
