# Empty compiler generated dependencies file for test_linear_expr.
# This may be replaced when dependencies are built.
