
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/RandomDiagnosisTest.cpp" "tests/CMakeFiles/test_random_diagnosis.dir/core/RandomDiagnosisTest.cpp.o" "gcc" "tests/CMakeFiles/test_random_diagnosis.dir/core/RandomDiagnosisTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/abdiag_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/abdiag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/abdiag_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/abdiag_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
