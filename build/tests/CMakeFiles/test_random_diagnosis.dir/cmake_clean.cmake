file(REMOVE_RECURSE
  "CMakeFiles/test_random_diagnosis.dir/core/RandomDiagnosisTest.cpp.o"
  "CMakeFiles/test_random_diagnosis.dir/core/RandomDiagnosisTest.cpp.o.d"
  "test_random_diagnosis"
  "test_random_diagnosis.pdb"
  "test_random_diagnosis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
