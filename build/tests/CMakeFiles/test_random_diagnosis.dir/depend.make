# Empty dependencies file for test_random_diagnosis.
# This may be replaced when dependencies are built.
