file(REMOVE_RECURSE
  "CMakeFiles/test_study_runner.dir/study/StudyRunnerTest.cpp.o"
  "CMakeFiles/test_study_runner.dir/study/StudyRunnerTest.cpp.o.d"
  "test_study_runner"
  "test_study_runner.pdb"
  "test_study_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_study_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
