# Empty compiler generated dependencies file for test_study_runner.
# This may be replaced when dependencies are built.
