file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic_analyzer.dir/analysis/SymbolicAnalyzerTest.cpp.o"
  "CMakeFiles/test_symbolic_analyzer.dir/analysis/SymbolicAnalyzerTest.cpp.o.d"
  "test_symbolic_analyzer"
  "test_symbolic_analyzer.pdb"
  "test_symbolic_analyzer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
