# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_linear_expr[1]_include.cmake")
include("/root/repo/build/tests/test_formula[1]_include.cmake")
include("/root/repo/build/tests/test_formula_parser[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_lia[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_cooper[1]_include.cmake")
include("/root/repo/build/tests/test_simplify[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_function_inline[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic_analyzer[1]_include.cmake")
include("/root/repo/build/tests/test_interval_annotator[1]_include.cmake")
include("/root/repo/build/tests/test_msa[1]_include.cmake")
include("/root/repo/build/tests/test_abduction[1]_include.cmake")
include("/root/repo/build/tests/test_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_benchmark_suite[1]_include.cmake")
include("/root/repo/build/tests/test_study_runner[1]_include.cmake")
include("/root/repo/build/tests/test_concrete_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_error_diagnoser[1]_include.cmake")
include("/root/repo/build/tests/test_explain[1]_include.cmake")
include("/root/repo/build/tests/test_random_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_parser_robustness[1]_include.cmake")
