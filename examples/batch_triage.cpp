//===- examples/batch_triage.cpp - Automatic triage of a report queue -------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CI-style scenario: a verifier produced potential-error reports for a
/// directory of programs; triage them all automatically. The Section 8
/// future-work idea in action -- the exhaustive concrete-execution oracle
/// answers the queries instead of a human, so reports decidable within the
/// explored input box never reach a person.
///
/// Usage: batch_triage [--stats] <file.adg>...
/// (defaults to the 11-problem suite; --stats additionally reports the
/// solver's query/theory/cache counters per program and in aggregate)
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"
#include "lang/AstPrinter.h"
#include "study/Benchmarks.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace abdiag;
using namespace abdiag::core;

namespace {

struct TriageRow {
  std::string Name;
  std::string Verdict;
  size_t Queries = 0;
  size_t Loc = 0;
  smt::Solver::Stats Solver;
};

TriageRow triageOne(const std::string &Path, const std::string &Name) {
  TriageRow Row;
  Row.Name = Name;
  ErrorDiagnoser Diagnoser;
  std::string Error;
  if (!Diagnoser.loadFile(Path, &Error)) {
    Row.Verdict = "load error: " + Error;
    return Row;
  }
  Row.Loc = lang::programLoc(Diagnoser.program());
  if (Diagnoser.dischargedByAnalysis()) {
    Row.Verdict = "false alarm (analysis alone)";
    Row.Solver = Diagnoser.solver().stats();
    return Row;
  }
  if (Diagnoser.validatedByAnalysis()) {
    Row.Verdict = "REAL BUG (analysis alone)";
    Row.Solver = Diagnoser.solver().stats();
    return Row;
  }
  auto Oracle = Diagnoser.makeConcreteOracle();
  DiagnosisResult R = Diagnoser.diagnose(*Oracle);
  Row.Queries = R.Transcript.size();
  Row.Solver = Diagnoser.solver().stats();
  switch (R.Outcome) {
  case DiagnosisOutcome::Discharged:
    Row.Verdict = "false alarm";
    break;
  case DiagnosisOutcome::Validated:
    Row.Verdict = "REAL BUG";
    break;
  case DiagnosisOutcome::Inconclusive:
    Row.Verdict = "needs human review";
    break;
  }
  return Row;
}

void accumulate(smt::Solver::Stats &Total, const smt::Solver::Stats &S) {
  Total.Queries += S.Queries;
  Total.TheoryChecks += S.TheoryChecks;
  Total.TheoryConflicts += S.TheoryConflicts;
  Total.CooperFallbacks += S.CooperFallbacks;
  Total.CacheHits += S.CacheHits;
  Total.CacheMisses += S.CacheMisses;
  Total.SessionChecks += S.SessionChecks;
  Total.CoreSkips += S.CoreSkips;
  Total.QeCacheHits += S.QeCacheHits;
  Total.QeCacheMisses += S.QeCacheMisses;
}

} // namespace

int main(int Argc, char **Argv) {
  bool ShowStats = false;
  std::vector<std::pair<std::string, std::string>> Files;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats") == 0)
      ShowStats = true;
    else
      Files.emplace_back(Argv[I], Argv[I]);
  }
  if (Files.empty()) {
    for (const study::BenchmarkInfo &B : study::benchmarkSuite())
      Files.emplace_back(study::benchmarkPath(B), B.Name);
  }

  std::printf("%-24s %5s  %8s  %s\n", "program", "LOC", "queries", "verdict");
  std::printf("%-24s %5s  %8s  %s\n", "-------", "---", "-------", "-------");
  size_t Bugs = 0, FalseAlarms = 0, Unresolved = 0;
  smt::Solver::Stats Total;
  for (const auto &[Path, Name] : Files) {
    TriageRow Row = triageOne(Path, Name);
    std::printf("%-24s %5zu  %8zu  %s\n", Row.Name.c_str(), Row.Loc,
                Row.Queries, Row.Verdict.c_str());
    if (ShowStats)
      std::printf("  solver: queries=%llu theory=%llu conflicts=%llu "
                  "cooper=%llu cache=%llu/%llu session=%llu coreskips=%llu "
                  "qe=%llu/%llu\n",
                  (unsigned long long)Row.Solver.Queries,
                  (unsigned long long)Row.Solver.TheoryChecks,
                  (unsigned long long)Row.Solver.TheoryConflicts,
                  (unsigned long long)Row.Solver.CooperFallbacks,
                  (unsigned long long)Row.Solver.CacheHits,
                  (unsigned long long)Row.Solver.CacheMisses,
                  (unsigned long long)Row.Solver.SessionChecks,
                  (unsigned long long)Row.Solver.CoreSkips,
                  (unsigned long long)Row.Solver.QeCacheHits,
                  (unsigned long long)Row.Solver.QeCacheMisses);
    accumulate(Total, Row.Solver);
    if (Row.Verdict.find("BUG") != std::string::npos)
      ++Bugs;
    else if (Row.Verdict.find("false alarm") != std::string::npos)
      ++FalseAlarms;
    else
      ++Unresolved;
  }
  std::printf("\n%zu real bug(s), %zu false alarm(s), %zu unresolved\n", Bugs,
              FalseAlarms, Unresolved);
  if (ShowStats) {
    std::printf("\naggregate solver statistics:\n");
    Total.dump(std::cout);
  }
  return 0;
}
