//===- examples/interactive_diagnosis.cpp - Ask a real human ----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tool the paper's study participants used, in miniature: load a
/// program from a file, and when the analysis cannot decide the report,
/// pose the computed queries on stdin ("y" / "n" / "?") until the report is
/// classified.
///
/// Usage: interactive_diagnosis <program.adg>
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"
#include "lang/AstPrinter.h"
#include "smt/FormulaOps.h"
#include "smt/Printer.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace abdiag;
using namespace abdiag::core;

namespace {

/// Oracle that asks the person at the terminal.
class StdinOracle : public Oracle {
public:
  explicit StdinOracle(const analysis::AnalysisResult &AR,
                       const smt::VarTable &VT)
      : AR(AR), VT(VT) {}

  Answer isInvariant(const smt::Formula *F) override {
    std::printf("\nQUERY: does  %s  hold in EVERY execution?\n",
                smt::toString(F, VT).c_str());
    return prompt(F);
  }

  Answer isPossible(const smt::Formula *F,
                    const smt::Formula *Given) override {
    std::printf("\nQUERY: can  %s  hold in SOME execution",
                smt::toString(F, VT).c_str());
    if (!Given->isTrue())
      std::printf("\n       in which  %s  holds",
                  smt::toString(Given, VT).c_str());
    std::printf("?\n");
    return prompt(F);
  }

private:
  const analysis::AnalysisResult &AR;
  const smt::VarTable &VT;

  Answer prompt(const smt::Formula *F) {
    for (smt::VarId V : smt::freeVarsVec(F)) {
      auto It = AR.Origins.find(V);
      if (It != AR.Origins.end())
        std::printf("       (%s is %s)\n", VT.name(V).c_str(),
                    It->second.Text.c_str());
    }
    while (true) {
      std::printf("  [y]es / [n]o / [?] don't know > ");
      std::fflush(stdout);
      char Buf[64];
      if (!std::fgets(Buf, sizeof(Buf), stdin))
        return Answer::Unknown;
      switch (Buf[0]) {
      case 'y':
      case 'Y':
        return Answer::Yes;
      case 'n':
      case 'N':
        return Answer::No;
      case '?':
        return Answer::Unknown;
      default:
        std::printf("  please answer y, n or ?\n");
      }
    }
  }
};

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: %s <program.adg>\n", Argv[0]);
    return 2;
  }
  ErrorDiagnoser Diagnoser;
  if (LoadResult R = Diagnoser.loadFile(Argv[1]); !R) {
    std::fprintf(stderr, "error: %s\n", R.message().c_str());
    return 1;
  }
  std::printf("%s\n", lang::programToString(Diagnoser.program()).c_str());
  std::printf("The static analysis reports a POTENTIAL assertion failure.\n");

  if (Diagnoser.dischargedByAnalysis()) {
    std::printf("...but the analysis discharges it by itself: FALSE ALARM\n");
    return 0;
  }
  if (Diagnoser.validatedByAnalysis()) {
    std::printf("...and the analysis proves it: REAL BUG\n");
    return 0;
  }

  StdinOracle Oracle(Diagnoser.analysis(), Diagnoser.manager().vars());
  DiagnosisResult R = Diagnoser.diagnose(Oracle);
  switch (R.Outcome) {
  case DiagnosisOutcome::Discharged:
    std::printf("\n==> FALSE ALARM: with your answers, the assertion is "
                "proven safe.\n");
    break;
  case DiagnosisOutcome::Validated:
    std::printf("\n==> REAL BUG: with your answers, a failing execution is "
                "certain.\n");
    break;
  case DiagnosisOutcome::Inconclusive:
    std::printf("\n==> Inconclusive: the report could not be classified "
                "with the given answers.\n");
    break;
  }
  return 0;
}
