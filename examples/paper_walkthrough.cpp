//===- examples/paper_walkthrough.cpp - Section 1.1 / Examples 1-2 ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks through the paper's worked examples step by step, exposing the
/// intermediate artifacts: the symbolic analysis output (I, phi), the
/// minimum satisfying assignments, and the weakest minimum proof obligation
/// and failure witness with their Definition 2/9 costs. Regenerates
/// experiment E4 of DESIGN.md.
///
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"
#include "core/Abduction.h"
#include "core/Msa.h"
#include "analysis/SymbolicAnalyzer.h"
#include "lang/Parser.h"
#include "smt/FormulaOps.h"
#include "smt/Printer.h"

#include <cstdio>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

namespace {

void walkThrough(const char *Title, const char *Source) {
  std::printf("==================== %s ====================\n", Title);
  lang::ParseResult P = lang::parseProgram(Source);
  if (!P.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", P.Error.c_str());
    return;
  }
  FormulaManager M;
  NativeBackend S(M);
  analysis::AnalysisResult AR = analysis::analyzeProgram(*P.Prog, S);
  const VarTable &VT = M.vars();

  std::printf("I   = %s\n", toString(AR.Invariants, VT).c_str());
  std::printf("phi = %s\n\n", toString(AR.SuccessCondition, VT).c_str());
  std::printf("I |= phi ?   %s\n",
              S.isValid(M.mkImplies(AR.Invariants, AR.SuccessCondition))
                  ? "yes (error discharged, Lemma 1)"
                  : "no");
  std::printf("I |= !phi ?  %s\n\n",
              S.isValid(M.mkImplies(AR.Invariants,
                                    M.mkNot(AR.SuccessCondition)))
                  ? "yes (bug proven, Lemma 2)"
                  : "no");

  Abducer Abd(S);
  AbductionResult Gamma =
      Abd.proofObligation(AR.Invariants, AR.SuccessCondition);
  AbductionResult Upsilon =
      Abd.failureWitness(AR.Invariants, AR.SuccessCondition);

  if (Gamma.Found) {
    std::printf("weakest minimum proof obligation (Definition 3):\n");
    std::printf("  Gamma = %s   (cost %lld)\n", toString(Gamma.Fml, VT).c_str(),
                static_cast<long long>(Gamma.Cost));
    std::printf("  MSA variable set(s) at cost %lld:\n",
                static_cast<long long>(Gamma.Msa.Cost));
    for (const MsaCandidate &C : Gamma.Msa.Candidates) {
      std::printf("   ");
      for (VarId V : C.Vars)
        std::printf(" %s=%lld", VT.name(V).c_str(),
                    static_cast<long long>(C.Assignment.at(V)));
      std::printf("\n");
    }
  } else {
    std::printf("no consistent proof obligation exists\n");
  }
  if (Upsilon.Found) {
    std::printf("weakest minimum failure witness (Definition 10):\n");
    std::printf("  Upsilon = %s   (cost %lld)\n",
                toString(Upsilon.Fml, VT).c_str(),
                static_cast<long long>(Upsilon.Cost));
  } else {
    std::printf("no consistent failure witness exists\n");
  }
  if (Gamma.Found && Upsilon.Found)
    std::printf("\nengine strategy: try to %s first (cheaper query)\n",
                Gamma.Cost <= Upsilon.Cost ? "DISCHARGE" : "VALIDATE");

  std::printf("\nvariable legend:\n");
  for (const auto &[V, O] : AR.Origins)
    std::printf("  %-10s = %s\n", VT.name(V).c_str(), O.Text.c_str());
  std::printf("\n");
}

} // namespace

int main() {
  walkThrough("Section 1.1 running example", R"(
program intro(flag, n) {
  var k, i, j, z;
  assume(n >= 0);
  k = 1;
  if (flag != 0) { k = n * n; }
  i = 0;
  j = 0;
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @ [i >= 0 && i > n]
  z = k + i + j;
  check(z > 2 * n);
}
)");

  walkThrough("Example 1 / Example 2 (Sections 3-4)", R"(
program example1(a1, a2) {
  var k, i, j, z;
  if (a2 > 0) { k = a2; } else { k = 1; }
  while (i < a2 + 1) {
    i = i + 1;
    j = j + i;
  } @ [i > -1 && i > a2]
  if (a1 > 0) { z = k + i + j; } else { z = 2 * a2 + 1; }
  check(z > 2 * a2);
}
)");
  return 0;
}
