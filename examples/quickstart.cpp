//===- examples/quickstart.cpp - Five-minute tour of the library ------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: load a program whose assertion a static analysis cannot
/// verify, let the library compute the small queries that would resolve the
/// report, and answer them automatically with the built-in exhaustive
/// concrete-execution oracle.
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"
#include "core/Explain.h"
#include "lang/AstPrinter.h"
#include "smt/Printer.h"

#include <cstdio>

using namespace abdiag;
using namespace abdiag::core;

// The paper's running example (Section 1.1): the assertion always holds,
// but the analysis loses j's value at the loop and the result of n*n.
static const char *Intro = R"(
program intro(flag, n) {
  var k, i, j, z;
  assume(n >= 0);
  k = 1;
  if (flag != 0) { k = n * n; }
  i = 0;
  j = 0;
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @ [i >= 0 && i > n]
  z = k + i + j;
  check(z > 2 * n);
}
)";

int main() {
  ErrorDiagnoser Diagnoser;
  if (LoadResult R = Diagnoser.loadSource(Intro); !R) {
    std::fprintf(stderr, "parse failed: %s\n", R.message().c_str());
    return 1;
  }

  std::printf("=== Program ===\n%s\n",
              lang::programToString(Diagnoser.program()).c_str());

  const analysis::AnalysisResult &AR = Diagnoser.analysis();
  const smt::VarTable &VT = Diagnoser.manager().vars();
  std::printf("=== Analysis (Section 3) ===\n");
  std::printf("invariants I:        %s\n",
              smt::toString(AR.Invariants, VT).c_str());
  std::printf("success condition:   %s\n\n",
              smt::toString(AR.SuccessCondition, VT).c_str());
  std::printf("discharged by analysis alone? %s\n",
              Diagnoser.dischargedByAnalysis() ? "yes" : "no");
  std::printf("validated by analysis alone?  %s\n\n",
              Diagnoser.validatedByAnalysis() ? "yes" : "no");

  // The "user" here is the library's own testing oracle; swap in your own
  // abdiag::core::Oracle subclass to ask a real human.
  auto Oracle = Diagnoser.makeConcreteOracle();
  DiagnosisResult R = Diagnoser.diagnose(*Oracle);

  std::printf("=== Diagnosis (Figure 6) ===\n%s",
              explainDiagnosis(R, AR, VT).c_str());
  return 0;
}
