//===- analysis/IntervalAnnotator.cpp - Loop annotation inference -----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/IntervalAnnotator.h"

#include "support/Casting.h"
#include "support/CheckedArith.h"

#include <cassert>
#include <map>
#include <set>

using namespace abdiag;
using namespace abdiag::analysis;
using namespace abdiag::lang;

//===----------------------------------------------------------------------===//
// Interval arithmetic
//===----------------------------------------------------------------------===//

Interval Interval::join(const Interval &O) const {
  if (Bottom)
    return O;
  if (O.Bottom)
    return *this;
  Interval R;
  if (Lo && O.Lo)
    R.Lo = std::min(*Lo, *O.Lo);
  if (Hi && O.Hi)
    R.Hi = std::max(*Hi, *O.Hi);
  return R;
}

Interval Interval::widen(const Interval &Next) const {
  if (Bottom)
    return Next;
  if (Next.Bottom)
    return *this;
  Interval R;
  if (Lo && Next.Lo && *Next.Lo >= *Lo)
    R.Lo = Lo; // stable or shrinking from below: keep
  if (Hi && Next.Hi && *Next.Hi <= *Hi)
    R.Hi = Hi;
  return R;
}

Interval Interval::add(const Interval &O) const {
  if (Bottom || O.Bottom)
    return bottom();
  Interval R;
  if (Lo && O.Lo)
    R.Lo = checkedAdd(*Lo, *O.Lo);
  if (Hi && O.Hi)
    R.Hi = checkedAdd(*Hi, *O.Hi);
  return R;
}

Interval Interval::sub(const Interval &O) const {
  if (Bottom || O.Bottom)
    return bottom();
  Interval R;
  if (Lo && O.Hi)
    R.Lo = checkedSub(*Lo, *O.Hi);
  if (Hi && O.Lo)
    R.Hi = checkedSub(*Hi, *O.Lo);
  return R;
}

Interval Interval::mul(const Interval &O) const {
  if (Bottom || O.Bottom)
    return bottom();
  if (Lo && Hi && O.Lo && O.Hi) {
    int64_t P1 = checkedMul(*Lo, *O.Lo), P2 = checkedMul(*Lo, *O.Hi);
    int64_t P3 = checkedMul(*Hi, *O.Lo), P4 = checkedMul(*Hi, *O.Hi);
    Interval R;
    R.Lo = std::min(std::min(P1, P2), std::min(P3, P4));
    R.Hi = std::max(std::max(P1, P2), std::max(P3, P4));
    return R;
  }
  // Partially unbounded: retain non-negativity when both sides are >= 0.
  if (Lo && *Lo >= 0 && O.Lo && *O.Lo >= 0) {
    Interval R;
    R.Lo = checkedMul(*Lo, *O.Lo);
    return R;
  }
  return top();
}

Interval Interval::clamp(std::optional<int64_t> NewLo,
                         std::optional<int64_t> NewHi) const {
  if (Bottom)
    return bottom();
  Interval R = *this;
  if (NewLo && (!R.Lo || *NewLo > *R.Lo))
    R.Lo = NewLo;
  if (NewHi && (!R.Hi || *NewHi < *R.Hi))
    R.Hi = NewHi;
  if (R.Lo && R.Hi && *R.Lo > *R.Hi)
    return bottom();
  return R;
}

//===----------------------------------------------------------------------===//
// Abstract interpreter
//===----------------------------------------------------------------------===//

namespace {

using State = std::map<std::string, Interval>;

/// Inferred facts for one loop, used to build the annotation.
struct LoopFacts {
  std::map<std::string, Interval> ExitBounds; // modified vars only
};

State joinStates(const State &A, const State &B) {
  State R;
  for (const auto &[V, I] : A) {
    auto It = B.find(V);
    R[V] = It == B.end() ? I : I.join(It->second);
  }
  return R;
}

bool statesEqual(const State &A, const State &B) { return A == B; }

class IntervalInterp {
  std::map<uint32_t, LoopFacts> &Facts;

public:
  explicit IntervalInterp(std::map<uint32_t, LoopFacts> &Facts)
      : Facts(Facts) {}

  Interval evalExpr(const Expr *E, const State &S) {
    switch (E->kind()) {
    case ExprKind::VarRef: {
      auto It = S.find(cast<VarRefExpr>(E)->name());
      return It == S.end() ? Interval::top() : It->second;
    }
    case ExprKind::IntLit:
      return Interval::constant(cast<IntLitExpr>(E)->value());
    case ExprKind::Havoc:
      return Interval::top();
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      Interval L = evalExpr(B->lhs(), S);
      Interval R = evalExpr(B->rhs(), S);
      switch (B->op()) {
      case BinOp::Add:
        return L.add(R);
      case BinOp::Sub:
        return L.sub(R);
      case BinOp::Mul:
        return L.mul(R);
      }
      break;
    }
    }
    assert(false && "unhandled expression kind");
    return Interval::top();
  }

  /// Refines \p S assuming predicate \p P holds (best effort, sound).
  /// Only comparisons with a variable on one side are used; disjunctions
  /// refine to the join of both branches.
  State refine(const Pred *P, State S) {
    switch (P->kind()) {
    case PredKind::BoolLit:
      return S; // 'false' could give bottom; keeping S stays sound
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(P);
      if (L->isAnd())
        return refine(L->rhs(), refine(L->lhs(), std::move(S)));
      return joinStates(refine(L->lhs(), S), refine(L->rhs(), S));
    }
    case PredKind::Not:
      return refineNeg(cast<NotPred>(P)->sub(), std::move(S));
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(P);
      refineCompare(C->op(), C->lhs(), C->rhs(), S);
      return S;
    }
    }
    assert(false && "unhandled predicate kind");
    return S;
  }

  /// Refines \p S assuming !P holds.
  State refineNeg(const Pred *P, State S) {
    switch (P->kind()) {
    case PredKind::BoolLit:
      return S;
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(P);
      // !(a && b) == !a || !b; !(a || b) == !a && !b.
      if (L->isAnd())
        return joinStates(refineNeg(L->lhs(), S), refineNeg(L->rhs(), S));
      return refineNeg(L->rhs(), refineNeg(L->lhs(), std::move(S)));
    }
    case PredKind::Not:
      return refine(cast<NotPred>(P)->sub(), std::move(S));
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(P);
      refineCompare(negateCmp(C->op()), C->lhs(), C->rhs(), S);
      return S;
    }
    }
    assert(false && "unhandled predicate kind");
    return S;
  }

  State exec(const Stmt *St, State S) {
    switch (St->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(St);
      S[A->var()] = evalExpr(A->value(), S);
      return S;
    }
    case StmtKind::Skip:
      return S;
    case StmtKind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(St)->stmts())
        S = exec(Sub, std::move(S));
      return S;
    case StmtKind::Assume:
      return refine(cast<AssumeStmt>(St)->cond(), std::move(S));
    case StmtKind::Call:
      // Callee results are unconstrained here; each function body is
      // annotated in its own analysis run.
      S[cast<CallStmt>(St)->target()] = Interval::top();
      return S;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(St);
      State ThenS = exec(I->thenStmt(), refine(I->cond(), S));
      State ElseS = refineNeg(I->cond(), S);
      if (I->elseStmt())
        ElseS = exec(I->elseStmt(), std::move(ElseS));
      return joinStates(ThenS, ElseS);
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(St);
      // Fixpoint with widening after a few descending iterations.
      State Inv = S;
      for (int Iter = 0;; ++Iter) {
        State BodyOut = exec(W->body(), refine(W->cond(), Inv));
        State Next = joinStates(Inv, BodyOut);
        if (Iter >= 3)
          for (auto &[V, I] : Next)
            I = Inv.at(V).widen(I);
        if (statesEqual(Next, Inv))
          break;
        Inv = std::move(Next);
      }
      State Exit = refineNeg(W->cond(), Inv);
      std::set<std::string> Modified;
      collectModified(W->body(), Modified);
      LoopFacts &F = Facts[W->loopId()];
      for (const std::string &V : Modified)
        if (Exit.count(V))
          F.ExitBounds[V] = Exit.at(V);
      return Exit;
    }
    }
    assert(false && "unhandled statement kind");
    return S;
  }

private:
  static CmpOp negateCmp(CmpOp Op) {
    switch (Op) {
    case CmpOp::Lt:
      return CmpOp::Ge;
    case CmpOp::Gt:
      return CmpOp::Le;
    case CmpOp::Le:
      return CmpOp::Gt;
    case CmpOp::Ge:
      return CmpOp::Lt;
    case CmpOp::Eq:
      return CmpOp::Ne;
    case CmpOp::Ne:
      return CmpOp::Eq;
    }
    assert(false && "unhandled comparison");
    return CmpOp::Eq;
  }

  static void collectModified(const Stmt *S, std::set<std::string> &Out) {
    switch (S->kind()) {
    case StmtKind::Assign:
      Out.insert(cast<AssignStmt>(S)->var());
      return;
    case StmtKind::Call:
      Out.insert(cast<CallStmt>(S)->target());
      return;
    case StmtKind::Skip:
    case StmtKind::Assume:
      return;
    case StmtKind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        collectModified(Sub, Out);
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      collectModified(I->thenStmt(), Out);
      if (I->elseStmt())
        collectModified(I->elseStmt(), Out);
      return;
    }
    case StmtKind::While:
      collectModified(cast<WhileStmt>(S)->body(), Out);
      return;
    }
  }

  /// Refines variable bounds for `lhs op rhs` where one side is a variable
  /// and the other evaluates to a (half-)bounded interval.
  void refineCompare(CmpOp Op, const Expr *Lhs, const Expr *Rhs, State &S) {
    auto Apply = [&](const std::string &Var, CmpOp O, const Interval &Other) {
      Interval &I = S[Var];
      switch (O) {
      case CmpOp::Lt:
        if (Other.Hi)
          I = I.clamp(std::nullopt, checkedSub(*Other.Hi, 1));
        break;
      case CmpOp::Le:
        if (Other.Hi)
          I = I.clamp(std::nullopt, *Other.Hi);
        break;
      case CmpOp::Gt:
        if (Other.Lo)
          I = I.clamp(checkedAdd(*Other.Lo, 1), std::nullopt);
        break;
      case CmpOp::Ge:
        if (Other.Lo)
          I = I.clamp(*Other.Lo, std::nullopt);
        break;
      case CmpOp::Eq:
        I = I.clamp(Other.Lo, Other.Hi);
        break;
      case CmpOp::Ne:
        break; // no interval refinement
      }
    };
    auto Flip = [](CmpOp O) {
      switch (O) {
      case CmpOp::Lt:
        return CmpOp::Gt;
      case CmpOp::Gt:
        return CmpOp::Lt;
      case CmpOp::Le:
        return CmpOp::Ge;
      case CmpOp::Ge:
        return CmpOp::Le;
      default:
        return O;
      }
    };
    if (const auto *V = dyn_cast<VarRefExpr>(Lhs))
      Apply(V->name(), Op, evalExpr(Rhs, S));
    if (const auto *V = dyn_cast<VarRefExpr>(Rhs))
      Apply(V->name(), Flip(Op), evalExpr(Lhs, S));
  }
};

//===----------------------------------------------------------------------===//
// Annotation rebuilding
//===----------------------------------------------------------------------===//

/// Deep copy of the AST into a fresh arena, attaching inferred annotations
/// to loops that lack one.
class Rebuilder {
  AstArena &Arena;
  const std::map<uint32_t, LoopFacts> &Facts;

public:
  Rebuilder(AstArena &Arena, const std::map<uint32_t, LoopFacts> &Facts)
      : Arena(Arena), Facts(Facts) {}

  const Expr *copy(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::VarRef:
      return Arena.make<VarRefExpr>(cast<VarRefExpr>(E)->name());
    case ExprKind::IntLit:
      return Arena.make<IntLitExpr>(cast<IntLitExpr>(E)->value());
    case ExprKind::Havoc:
      return Arena.make<HavocExpr>(cast<HavocExpr>(E)->siteId());
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return Arena.make<BinaryExpr>(B->op(), copy(B->lhs()), copy(B->rhs()));
    }
    }
    assert(false && "unhandled expression kind");
    return nullptr;
  }

  const Pred *copy(const Pred *P) {
    switch (P->kind()) {
    case PredKind::BoolLit:
      return Arena.make<BoolLitPred>(cast<BoolLitPred>(P)->value());
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(P);
      return Arena.make<ComparePred>(C->op(), copy(C->lhs()), copy(C->rhs()));
    }
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(P);
      return Arena.make<LogicalPred>(L->isAnd(), copy(L->lhs()),
                                     copy(L->rhs()));
    }
    case PredKind::Not:
      return Arena.make<NotPred>(copy(cast<NotPred>(P)->sub()));
    }
    assert(false && "unhandled predicate kind");
    return nullptr;
  }

  const Stmt *copy(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      return Arena.make<AssignStmt>(A->var(), copy(A->value()));
    }
    case StmtKind::Skip:
      return Arena.make<SkipStmt>();
    case StmtKind::Block: {
      std::vector<const Stmt *> Stmts;
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        Stmts.push_back(copy(Sub));
      return Arena.make<BlockStmt>(std::move(Stmts));
    }
    case StmtKind::Assume:
      return Arena.make<AssumeStmt>(copy(cast<AssumeStmt>(S)->cond()));
    case StmtKind::Call: {
      const auto *C = cast<CallStmt>(S);
      std::vector<const Expr *> Args;
      Args.reserve(C->args().size());
      for (const Expr *A : C->args())
        Args.push_back(copy(A));
      return Arena.make<CallStmt>(C->target(), C->callee(), std::move(Args),
                                  C->siteId(), C->line(), C->col());
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      return Arena.make<IfStmt>(copy(I->cond()), copy(I->thenStmt()),
                                I->elseStmt() ? copy(I->elseStmt()) : nullptr);
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      const Pred *Annot = W->annot() ? copy(W->annot()) : inferred(W);
      return Arena.make<WhileStmt>(W->loopId(), copy(W->cond()),
                                   copy(W->body()), Annot);
    }
    }
    assert(false && "unhandled statement kind");
    return nullptr;
  }

private:
  /// Builds the inferred annotation: negated loop condition plus interval
  /// bounds for modified variables.
  const Pred *inferred(const WhileStmt *W) {
    const Pred *Annot = Arena.make<NotPred>(copy(W->cond()));
    auto It = Facts.find(W->loopId());
    if (It == Facts.end())
      return Annot;
    for (const auto &[Var, I] : It->second.ExitBounds) {
      if (I.Bottom)
        continue; // loop never exits normally; keep just !cond
      if (I.Lo) {
        const Pred *C = Arena.make<ComparePred>(
            CmpOp::Ge, Arena.make<VarRefExpr>(Var),
            Arena.make<IntLitExpr>(*I.Lo));
        Annot = Arena.make<LogicalPred>(/*IsAnd=*/true, Annot, C);
      }
      if (I.Hi) {
        const Pred *C = Arena.make<ComparePred>(
            CmpOp::Le, Arena.make<VarRefExpr>(Var),
            Arena.make<IntLitExpr>(*I.Hi));
        Annot = Arena.make<LogicalPred>(/*IsAnd=*/true, Annot, C);
      }
    }
    return Annot;
  }
};

} // namespace

Program abdiag::analysis::annotateLoops(const Program &Prog) {
  Program Out;
  Out.Name = Prog.Name;
  Out.Params = Prog.Params;
  Out.Locals = Prog.Locals;
  Out.NumLoops = Prog.NumLoops;
  Out.NumHavocs = Prog.NumHavocs;
  Out.NumCallSites = Prog.NumCallSites;

  // Loop ids are local to each function body, so every body gets its own
  // analysis run and fact map. Function formals are unconstrained (call
  // arguments are arbitrary); locals start at zero like program locals.
  for (const FunctionDef &F : Prog.Functions) {
    std::map<uint32_t, LoopFacts> Facts;
    IntervalInterp Interp(Facts);
    State Init;
    for (const std::string &P : F.Params)
      Init[P] = Interval::top();
    for (const std::string &L : F.Locals)
      Init[L] = Interval::constant(0);
    Interp.exec(F.Body, std::move(Init));

    FunctionDef NF = F;
    Rebuilder RB(*Out.Arena, Facts);
    NF.Body = RB.copy(F.Body);
    NF.Ret = RB.copy(F.Ret);
    Out.Functions.push_back(std::move(NF));
  }

  std::map<uint32_t, LoopFacts> Facts;
  IntervalInterp Interp(Facts);
  State Init;
  for (const std::string &P : Prog.Params)
    Init[P] = Interval::top();
  for (const std::string &L : Prog.Locals)
    Init[L] = Interval::constant(0);
  Interp.exec(Prog.Body, std::move(Init));

  Rebuilder RB(*Out.Arena, Facts);
  Out.Body = RB.copy(Prog.Body);
  Out.Check = RB.copy(Prog.Check);
  return Out;
}
