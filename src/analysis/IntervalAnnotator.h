//===- analysis/IntervalAnnotator.h - Loop annotation inference -*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper assumes loop postconditions `@p'` are "obtained from any
/// automatic sound static analysis technique, such as abstract
/// interpretation". This module is that analysis: a classic interval
/// abstract interpreter with widening. For every un-annotated loop it
/// infers a sound postcondition consisting of
///   * interval bounds for each loop-modified variable, and
///   * the negated loop condition (which always holds on normal exit),
/// and returns a copy of the program with those annotations attached.
/// Existing (hand-written) annotations are preserved untouched.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_ANALYSIS_INTERVALANNOTATOR_H
#define ABDIAG_ANALYSIS_INTERVALANNOTATOR_H

#include "lang/Ast.h"

#include <cstdint>
#include <optional>
#include <string>

namespace abdiag::analysis {

/// A (possibly unbounded) integer interval. An empty optional means
/// unbounded on that side; an interval with Lo > Hi is bottom.
struct Interval {
  std::optional<int64_t> Lo;
  std::optional<int64_t> Hi;
  bool Bottom = false;

  static Interval top() { return Interval(); }
  static Interval bottom() {
    Interval I;
    I.Bottom = true;
    return I;
  }
  static Interval constant(int64_t C) {
    Interval I;
    I.Lo = I.Hi = C;
    return I;
  }

  bool isTop() const { return !Bottom && !Lo && !Hi; }
  bool contains(int64_t V) const {
    return !Bottom && (!Lo || *Lo <= V) && (!Hi || V <= *Hi);
  }

  Interval join(const Interval &O) const;
  /// Standard widening: bounds that grew become unbounded.
  Interval widen(const Interval &Next) const;
  Interval add(const Interval &O) const;
  Interval sub(const Interval &O) const;
  Interval mul(const Interval &O) const;
  /// Intersects with [NewLo, NewHi]; either side may be absent.
  Interval clamp(std::optional<int64_t> NewLo, std::optional<int64_t> NewHi) const;

  bool operator==(const Interval &O) const {
    return Bottom == O.Bottom && Lo == O.Lo && Hi == O.Hi;
  }
};

/// Runs the interval analysis and returns an annotated copy of \p Prog:
/// every loop without a user annotation receives an inferred `@p'`.
lang::Program annotateLoops(const lang::Program &Prog);

} // namespace abdiag::analysis

#endif // ABDIAG_ANALYSIS_INTERVALANNOTATOR_H
