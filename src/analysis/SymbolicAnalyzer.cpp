//===- analysis/SymbolicAnalyzer.cpp - Section 3 symbolic analysis ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SymbolicAnalyzer.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>

using namespace abdiag;
using namespace abdiag::analysis;
using namespace abdiag::smt;
using namespace abdiag::lang;

namespace {

/// A symbolic value set theta = {(pi, phi)}.
using ValueSet = std::vector<std::pair<LinearExpr, const Formula *>>;

/// Collects the variables assigned anywhere inside \p S (including nested
/// loops and call targets), i.e. the "modified in s" set of the loop rule
/// in Figure 5.
void collectAssigned(const Stmt *S, std::set<std::string> &Out) {
  switch (S->kind()) {
  case StmtKind::Assign:
    Out.insert(cast<AssignStmt>(S)->var());
    return;
  case StmtKind::Call:
    Out.insert(cast<CallStmt>(S)->target());
    return;
  case StmtKind::Skip:
  case StmtKind::Assume:
    return;
  case StmtKind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
      collectAssigned(Sub, Out);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    collectAssigned(I->thenStmt(), Out);
    if (I->elseStmt())
      collectAssigned(I->elseStmt(), Out);
    return;
  }
  case StmtKind::While:
    collectAssigned(cast<WhileStmt>(S)->body(), Out);
    return;
  }
  assert(false && "unhandled statement kind");
}

/// The reusable record of analyzing one function body over placeholder
/// formals. Every source of abstraction inside the body is a placeholder
/// variable plus an *event* describing how a call site materializes it:
/// loop exits and havocs map their local id through the instance's plan
/// node; non-linear products replay through the caller's combine (so
/// constant arguments fold exactly as they would under inlining); nested
/// calls recursively instantiate the callee's summary at the plan child.
/// Placeholders never escape: instantiation substitutes all of them.
struct FunctionSummary {
  struct Event {
    enum class Kind : uint8_t { LoopAbs, Havoc, NonLinear, Call } K;
    VarId Placeholder;
    std::string VarName;  ///< LoopAbs: the callee-local variable
    uint32_t LocalId = 0; ///< LoopAbs: loop id; Havoc/Call: site id
    LinearExpr F1, F2;    ///< NonLinear: factors over summary vars
    std::string Callee;                       ///< Call
    std::vector<ValueSet> Args;               ///< Call, over summary vars
  };
  std::vector<VarId> Formals; ///< placeholder per parameter, in order
  std::vector<Event> Events;  ///< in analysis order (defines placeholders)
  const Formula *Invariant = nullptr; ///< over summary vars
  ValueSet Ret;                       ///< over summary vars
};

class Analyzer {
  FormulaManager &M;
  DecisionProcedure &Slv;
  const AnalyzerOptions &Opts;
  const Program *Prog = nullptr;
  AnalysisResult Res;
  std::map<std::string, ValueSet> Store;
  const Formula *I; // threaded invariant
  std::vector<const Formula *> SideConditions; // globally valid facts
  std::map<std::pair<LinearExpr, LinearExpr>, VarId> NonLinearMemo;

  /// Summary-mode frame state. While computing a summary, abstraction
  /// sinks append events to `Sum` instead of creating analysis alphas.
  FunctionSummary *Sum = nullptr;
  std::map<uint32_t, VarId> SumHavocMemo; // by local site
  std::map<const FunctionDef *, FunctionSummary> Summaries;

public:
  Analyzer(DecisionProcedure &Slv, const AnalyzerOptions &Opts)
      : M(Slv.manager()), Slv(Slv), Opts(Opts), I(M.getTrue()) {}

  AnalysisResult run(const Program &P) {
    Prog = &P;
    Res.Plan = std::make_shared<CallPlan>(buildCallPlan(P));
    for (const std::string &Param : P.Params) {
      VarId V = M.vars().getOrCreate(Param, VarKind::Input);
      Res.InputVars[Param] = V;
      VarOrigin O;
      O.K = VarOrigin::Kind::Input;
      O.ProgVar = Param;
      O.Text = "input " + Param;
      Res.Origins[V] = O;
      Store[Param] = {{LinearExpr::variable(V), M.getTrue()}};
    }
    for (const std::string &L : P.Locals)
      Store[L] = {{LinearExpr::constant(0), M.getTrue()}};
    exec(P.Body);
    Res.SuccessCondition = evalPred(P.Check);
    std::vector<const Formula *> Parts{I};
    Parts.insert(Parts.end(), SideConditions.begin(), SideConditions.end());
    Res.Invariants = M.mkAnd(std::move(Parts));
    return std::move(Res);
  }

private:
  bool inSummary() const { return Sum != nullptr; }

  /// Merges entries with identical symbolic value (or-ing their guards),
  /// drops false guards, and optionally prunes unsatisfiable ones.
  void normalize(ValueSet &VS) {
    std::map<LinearExpr, std::vector<const Formula *>> ByValue;
    for (auto &[Pi, Phi] : VS) {
      if (Phi->isFalse())
        continue;
      ByValue[Pi].push_back(Phi);
    }
    VS.clear();
    for (auto &[Pi, Phis] : ByValue) {
      const Formula *Guard = M.mkOr(std::move(Phis));
      if (Guard->isFalse())
        continue;
      if (Opts.PruneInfeasibleGuards && ByValue.size() > 4 &&
          !Slv.isSat(Guard))
        continue;
      VS.emplace_back(Pi, Guard);
    }
  }

  VarId freshAbstraction(const std::string &Name, VarOrigin O) {
    VarId V = M.vars().getOrCreate(Name, VarKind::Abstraction);
    Res.Origins[V] = std::move(O);
    return V;
  }

  /// Placeholder variables stand for a summary's abstractions and formals;
  /// they are substituted away at every instantiation, so they never reach
  /// result formulas or origins. Names are deterministic per function, so
  /// repeated analyses against one manager reuse the same ids.
  VarId placeholder(const std::string &Name) {
    return M.vars().getOrCreate("$sum$" + Name, VarKind::Abstraction);
  }

  /// The analysis alpha for global havoc site \p Site (memoized).
  VarId havocAbstraction(uint32_t Site) {
    auto It = Res.HavocVars.find(Site);
    if (It != Res.HavocVars.end())
      return It->second;
    VarOrigin O;
    O.K = VarOrigin::Kind::Havoc;
    O.Site = Site;
    O.Text = "the result of the unknown call #" + std::to_string(Site + 1);
    VarId V =
        freshAbstraction("havoc@" + std::to_string(Site), std::move(O));
    Res.HavocVars[Site] = V;
    return V;
  }

  ValueSet evalExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::VarRef: {
      auto It = Store.find(cast<VarRefExpr>(E)->name());
      assert(It != Store.end() && "undeclared variable survived parsing");
      return It->second;
    }
    case ExprKind::IntLit:
      return {{LinearExpr::constant(cast<IntLitExpr>(E)->value()),
               M.getTrue()}};
    case ExprKind::Havoc: {
      const auto *H = cast<HavocExpr>(E);
      if (inSummary()) {
        auto It = SumHavocMemo.find(H->siteId());
        VarId V;
        if (It != SumHavocMemo.end()) {
          V = It->second;
        } else {
          V = placeholder(SumName + "$havoc" + std::to_string(H->siteId()));
          SumHavocMemo[H->siteId()] = V;
          FunctionSummary::Event Ev;
          Ev.K = FunctionSummary::Event::Kind::Havoc;
          Ev.Placeholder = V;
          Ev.LocalId = H->siteId();
          Sum->Events.push_back(std::move(Ev));
        }
        return {{LinearExpr::variable(V), M.getTrue()}};
      }
      // Main body: the root plan node has base 0, so the global site id is
      // the syntactic one.
      return {{LinearExpr::variable(havocAbstraction(H->siteId())),
               M.getTrue()}};
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      ValueSet L = evalExpr(B->lhs());
      ValueSet R = evalExpr(B->rhs());
      ValueSet Out = combineSets(B->op(), L, R);
      return Out;
    }
    }
    assert(false && "unhandled expression kind");
    return {};
  }

  /// Cross product of two value sets under a binary operator.
  ValueSet combineSets(BinOp Op, const ValueSet &L, const ValueSet &R) {
    ValueSet Out;
    for (const auto &[Pi1, Phi1] : L)
      for (const auto &[Pi2, Phi2] : R) {
        const Formula *Guard = M.mkAnd(Phi1, Phi2);
        if (Guard->isFalse())
          continue;
        Out.emplace_back(combine(Op, Pi1, Pi2), Guard);
      }
    normalize(Out);
    return Out;
  }

  /// Combines two symbolic values; non-linear products become abstraction
  /// variables with a >= 0 side condition for syntactic squares.
  LinearExpr combine(BinOp Op, const LinearExpr &A, const LinearExpr &B) {
    switch (Op) {
    case BinOp::Add:
      return A.add(B);
    case BinOp::Sub:
      return A.sub(B);
    case BinOp::Mul:
      if (A.isConstant())
        return B.scaled(A.constant());
      if (B.isConstant())
        return A.scaled(B.constant());
      return LinearExpr::variable(nonLinearVar(A, B));
    }
    assert(false && "unhandled binary operator");
    return LinearExpr();
  }

  VarId nonLinearVar(const LinearExpr &A, const LinearExpr &B) {
    std::pair<LinearExpr, LinearExpr> Key =
        B < A ? std::make_pair(B, A) : std::make_pair(A, B);
    auto It = NonLinearMemo.find(Key);
    if (It != NonLinearMemo.end())
      return It->second;
    if (inSummary()) {
      // Record the factors over summary vars; instantiation replays the
      // product through the caller's combine, so constants fold and the
      // square side condition is emitted at caller level.
      VarId V = placeholder(SumName + "$mul" +
                            std::to_string(Sum->Events.size()));
      FunctionSummary::Event Ev;
      Ev.K = FunctionSummary::Event::Kind::NonLinear;
      Ev.Placeholder = V;
      Ev.F1 = Key.first;
      Ev.F2 = Key.second;
      Sum->Events.push_back(std::move(Ev));
      NonLinearMemo.emplace(std::move(Key), V);
      return V;
    }
    VarOrigin O;
    O.K = VarOrigin::Kind::NonLinear;
    O.Factor1 = Key.first;
    O.Factor2 = Key.second;
    O.Text = "the value of the non-linear product (" +
             Key.first.str(M.vars()) + ") * (" + Key.second.str(M.vars()) +
             ")";
    VarId V = freshAbstraction(
        "mul@" + std::to_string(NonLinearMemo.size() + 1), std::move(O));
    // A syntactic square is never negative (the alpha_{n*n} >= 0 fact the
    // paper's introduction uses).
    bool IsSquare = Key.first == Key.second;
    NonLinearMemo.emplace(std::move(Key), V);
    if (IsSquare)
      SideConditions.push_back(
          M.mkGe(LinearExpr::variable(V), LinearExpr::constant(0)));
    return V;
  }

  const Formula *evalPred(const Pred *P) {
    switch (P->kind()) {
    case PredKind::BoolLit:
      return M.getBool(cast<BoolLitPred>(P)->value());
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(P);
      ValueSet L = evalExpr(C->lhs());
      ValueSet R = evalExpr(C->rhs());
      std::vector<const Formula *> Cases;
      for (const auto &[Pi1, Phi1] : L)
        for (const auto &[Pi2, Phi2] : R) {
          const Formula *Cmp = nullptr;
          switch (C->op()) {
          case CmpOp::Lt:
            Cmp = M.mkLt(Pi1, Pi2);
            break;
          case CmpOp::Gt:
            Cmp = M.mkGt(Pi1, Pi2);
            break;
          case CmpOp::Le:
            Cmp = M.mkLe(Pi1, Pi2);
            break;
          case CmpOp::Ge:
            Cmp = M.mkGe(Pi1, Pi2);
            break;
          case CmpOp::Eq:
            Cmp = M.mkEq(Pi1, Pi2);
            break;
          case CmpOp::Ne:
            Cmp = M.mkNe(Pi1, Pi2);
            break;
          }
          Cases.push_back(M.mkAnd({Cmp, Phi1, Phi2}));
        }
      return M.mkOr(std::move(Cases));
    }
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(P);
      const Formula *A = evalPred(L->lhs());
      const Formula *B = evalPred(L->rhs());
      return L->isAnd() ? M.mkAnd(A, B) : M.mkOr(A, B);
    }
    case PredKind::Not:
      return M.mkNot(evalPred(cast<NotPred>(P)->sub()));
    }
    assert(false && "unhandled predicate kind");
    return M.getFalse();
  }

  //===--------------------------------------------------------------------===//
  // Summaries
  //===--------------------------------------------------------------------===//

  /// Name of the function whose summary is being computed (for placeholder
  /// naming); only valid while `Sum` is set.
  std::string SumName;

  /// Analyzes \p F once over placeholder formals (memoized).
  const FunctionSummary &summaryFor(const FunctionDef &F) {
    auto It = Summaries.find(&F);
    if (It != Summaries.end())
      return It->second;

    // Save the current frame and enter summary mode.
    auto SavedStore = std::move(Store);
    const Formula *SavedI = I;
    auto SavedNonLinear = std::move(NonLinearMemo);
    auto SavedHavoc = std::move(SumHavocMemo);
    FunctionSummary *SavedSum = Sum;
    std::string SavedName = std::move(SumName);

    FunctionSummary S;
    Sum = &S;
    SumName = F.Name;
    Store.clear();
    NonLinearMemo.clear();
    SumHavocMemo.clear();
    I = M.getTrue();
    for (const std::string &P : F.Params) {
      VarId V = placeholder(F.Name + "$" + P);
      S.Formals.push_back(V);
      Store[P] = {{LinearExpr::variable(V), M.getTrue()}};
    }
    for (const std::string &L : F.Locals)
      Store[L] = {{LinearExpr::constant(0), M.getTrue()}};
    exec(F.Body);
    S.Ret = evalExpr(F.Ret);
    S.Invariant = I;

    // Restore the caller frame.
    Store = std::move(SavedStore);
    I = SavedI;
    NonLinearMemo = std::move(SavedNonLinear);
    SumHavocMemo = std::move(SavedHavoc);
    Sum = SavedSum;
    SumName = std::move(SavedName);

    ++Res.SummariesComputed;
    return Summaries.emplace(&F, std::move(S)).first->second;
  }

  //===--------------------------------------------------------------------===//
  // Instantiation: sigma substitution over summary variables
  //===--------------------------------------------------------------------===//

  using Sigma = std::map<VarId, ValueSet>;
  using FormulaMemo = std::unordered_map<const Formula *, const Formula *>;

  /// Substitutes sigma into a linear expression over summary vars,
  /// distributing over each mapped variable's value-set cases.
  ValueSet substLinear(const LinearExpr &L, const Sigma &Sg) {
    ValueSet Acc{{LinearExpr::constant(L.constant()), M.getTrue()}};
    for (const auto &[V, Coeff] : L.terms()) {
      ValueSet Term;
      auto It = Sg.find(V);
      if (It == Sg.end()) {
        Term.emplace_back(LinearExpr::variable(V, Coeff), M.getTrue());
      } else {
        for (const auto &[Pi, Phi] : It->second)
          Term.emplace_back(Pi.scaled(Coeff), Phi);
      }
      ValueSet Next;
      for (const auto &[Pi1, Phi1] : Acc)
        for (const auto &[Pi2, Phi2] : Term) {
          const Formula *Guard = M.mkAnd(Phi1, Phi2);
          if (Guard->isFalse())
            continue;
          Next.emplace_back(Pi1.add(Pi2), Guard);
        }
      normalize(Next);
      Acc = std::move(Next);
    }
    return Acc;
  }

  /// Substitutes sigma into a formula over summary vars. Formulas are in
  /// NNF (every atom occurrence is positive), and value sets partition the
  /// state space exhaustively, so an atom A(v) with v -> {(pi_i, phi_i)}
  /// rewrites exactly to OR_i (phi_i && A[pi_i/v]).
  const Formula *substFormula(const Formula *F, const Sigma &Sg,
                              FormulaMemo &Memo) {
    if (F->isTrue() || F->isFalse())
      return F;
    auto It = Memo.find(F);
    if (It != Memo.end())
      return It->second;
    const Formula *Out = nullptr;
    if (F->isAtom()) {
      std::vector<VarId> Mapped;
      for (const auto &[V, Coeff] : F->expr().terms())
        if (Sg.count(V))
          Mapped.push_back(V);
      if (Mapped.empty()) {
        Out = F;
      } else {
        // Cross product over the mapped variables' cases.
        std::vector<std::pair<LinearExpr, const Formula *>> Cases{
            {F->expr(), M.getTrue()}};
        for (VarId V : Mapped) {
          const ValueSet &VS = Sg.at(V);
          std::vector<std::pair<LinearExpr, const Formula *>> Next;
          for (const auto &[E, G] : Cases)
            for (const auto &[Pi, Phi] : VS) {
              const Formula *Guard = M.mkAnd(G, Phi);
              if (Guard->isFalse())
                continue;
              Next.emplace_back(E.substituted(V, Pi), Guard);
            }
          Cases = std::move(Next);
        }
        std::vector<const Formula *> Parts;
        Parts.reserve(Cases.size());
        for (const auto &[E, G] : Cases)
          Parts.push_back(
              M.mkAnd(G, M.mkAtom(F->rel(), E, F->divisor())));
        Out = M.mkOr(std::move(Parts));
      }
    } else {
      std::vector<const Formula *> Kids;
      Kids.reserve(F->kids().size());
      for (const Formula *K : F->kids())
        Kids.push_back(substFormula(K, Sg, Memo));
      Out = F->isAnd() ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
    }
    Memo.emplace(F, Out);
    return Out;
  }

  ValueSet substValueSet(const ValueSet &VS, const Sigma &Sg,
                         FormulaMemo &Memo) {
    ValueSet Out;
    for (const auto &[Pi, Phi] : VS) {
      const Formula *G = substFormula(Phi, Sg, Memo);
      if (G->isFalse())
        continue;
      for (auto &[Pi2, Phi2] : substLinear(Pi, Sg)) {
        const Formula *Guard = M.mkAnd(G, Phi2);
        if (Guard->isFalse())
          continue;
        Out.emplace_back(Pi2, Guard);
      }
    }
    normalize(Out);
    return Out;
  }

  /// The unconstrained alpha modeling an opaque (recursive) call's result.
  ValueSet opaqueCallResult(const CallPlanNode &N, const std::string &Callee) {
    ++Res.OpaqueCallResults;
    auto It = Res.CallResultVars.find(N.CallResultId);
    VarId V;
    if (It != Res.CallResultVars.end()) {
      V = It->second;
    } else {
      VarOrigin O;
      O.K = VarOrigin::Kind::CallResult;
      O.ProgVar = Callee;
      O.Site = N.CallResultId;
      O.Text = "the result of the recursive call to '" + Callee + "' #" +
               std::to_string(N.CallResultId + 1);
      V = freshAbstraction("call@" + std::to_string(N.CallResultId + 1),
                           std::move(O));
      Res.CallResultVars[N.CallResultId] = V;
    }
    return {{LinearExpr::variable(V), M.getTrue()}};
  }

  /// Applies the call at plan child \p ChildIdx with already-evaluated
  /// caller-level argument value sets.
  ValueSet applyCall(uint32_t ChildIdx, const std::string &Callee,
                     const std::vector<ValueSet> &Args) {
    const CallPlanNode &N = Res.Plan->Nodes[ChildIdx];
    if (N.Opaque)
      return opaqueCallResult(N, Callee);
    ++Res.SummariesInstantiated;
    const FunctionSummary &S = summaryFor(*N.Func);
    return instantiate(S, N, Args);
  }

  /// Materializes one summary at plan node \p N: walks the events in
  /// order, extending sigma with a fresh caller-level value per
  /// placeholder, then conjoins the substituted invariant and returns the
  /// substituted return value set.
  ValueSet instantiate(const FunctionSummary &S, const CallPlanNode &N,
                       const std::vector<ValueSet> &Args) {
    assert(Args.size() == S.Formals.size());
    Sigma Sg;
    FormulaMemo Memo;
    for (size_t Idx = 0; Idx < Args.size(); ++Idx)
      Sg[S.Formals[Idx]] = Args[Idx];
    for (const FunctionSummary::Event &E : S.Events) {
      switch (E.K) {
      case FunctionSummary::Event::Kind::LoopAbs: {
        uint32_t G = N.LoopBase + E.LocalId;
        VarOrigin O;
        O.K = VarOrigin::Kind::LoopExit;
        O.ProgVar = E.VarName;
        O.LoopId = G;
        O.Text = "the value of " + E.VarName + " after loop " +
                 std::to_string(G + 1);
        VarId A = freshAbstraction(
            E.VarName + "@loop" + std::to_string(G + 1), std::move(O));
        Res.LoopExitVars[{G, E.VarName}] = A;
        Sg[E.Placeholder] = {{LinearExpr::variable(A), M.getTrue()}};
        break;
      }
      case FunctionSummary::Event::Kind::Havoc: {
        VarId A = havocAbstraction(N.HavocBase + E.LocalId);
        Sg[E.Placeholder] = {{LinearExpr::variable(A), M.getTrue()}};
        break;
      }
      case FunctionSummary::Event::Kind::NonLinear: {
        ValueSet A = substLinear(E.F1, Sg);
        ValueSet B = substLinear(E.F2, Sg);
        Sg[E.Placeholder] = combineSets(BinOp::Mul, A, B);
        break;
      }
      case FunctionSummary::Event::Kind::Call: {
        std::vector<ValueSet> A2;
        A2.reserve(E.Args.size());
        for (const ValueSet &AV : E.Args)
          A2.push_back(substValueSet(AV, Sg, Memo));
        Sg[E.Placeholder] =
            applyCall(N.Children[E.LocalId], E.Callee, A2);
        break;
      }
      }
    }
    I = M.mkAnd(I, substFormula(S.Invariant, Sg, Memo));
    return substValueSet(S.Ret, Sg, Memo);
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void exec(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Store[A->var()] = evalExpr(A->value());
      return;
    }
    case StmtKind::Skip:
      return;
    case StmtKind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        exec(Sub);
      return;
    case StmtKind::Assume:
      I = M.mkAnd(I, evalPred(cast<AssumeStmt>(S)->cond()));
      return;
    case StmtKind::Call: {
      const auto *C = cast<CallStmt>(S);
      std::vector<ValueSet> Args;
      Args.reserve(C->args().size());
      for (const Expr *A : C->args())
        Args.push_back(evalExpr(A));
      if (inSummary()) {
        VarId V = placeholder(SumName + "$call" +
                              std::to_string(C->siteId()));
        FunctionSummary::Event Ev;
        Ev.K = FunctionSummary::Event::Kind::Call;
        Ev.Placeholder = V;
        Ev.LocalId = C->siteId();
        Ev.Callee = C->callee();
        Ev.Args = std::move(Args);
        Sum->Events.push_back(std::move(Ev));
        Store[C->target()] = {{LinearExpr::variable(V), M.getTrue()}};
        return;
      }
      // The analyzer only executes the main body directly (summaries cover
      // callee bodies), so the enclosing plan node is always the root.
      Store[C->target()] =
          applyCall(Res.Plan->root().Children[C->siteId()], C->callee(),
                    Args);
      return;
    }
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      const Formula *Cond = evalPred(If->cond());
      // Run each branch from the current store with a fresh invariant
      // accumulator; recombine per the Figure 5 if-rule.
      std::map<std::string, ValueSet> SavedStore = Store;
      const Formula *SavedI = I;

      I = M.getTrue();
      exec(If->thenStmt());
      std::map<std::string, ValueSet> ThenStore = std::move(Store);
      const Formula *ThenI = I;

      Store = std::move(SavedStore);
      I = M.getTrue();
      if (If->elseStmt())
        exec(If->elseStmt());
      const Formula *ElseI = I;

      // S' = (S_then && cond) ⊔ (S_else && !cond).
      const Formula *NotCond = M.mkNot(Cond);
      std::map<std::string, ValueSet> Joined;
      for (auto &[Var, ElseVS] : Store) {
        ValueSet Merged;
        for (const auto &[Pi, Phi] : ThenStore.at(Var))
          Merged.emplace_back(Pi, M.mkAnd(Phi, Cond));
        for (const auto &[Pi, Phi] : ElseVS)
          Merged.emplace_back(Pi, M.mkAnd(Phi, NotCond));
        normalize(Merged);
        Joined[Var] = std::move(Merged);
      }
      Store = std::move(Joined);
      I = M.mkAnd({SavedI, M.mkImplies(Cond, ThenI),
                   M.mkImplies(NotCond, ElseI)});
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      std::set<std::string> Modified;
      collectAssigned(W->body(), Modified);
      for (const std::string &V : Modified) {
        VarId A;
        if (inSummary()) {
          A = placeholder(SumName + "$loop" + std::to_string(W->loopId()) +
                          "$" + V);
          FunctionSummary::Event Ev;
          Ev.K = FunctionSummary::Event::Kind::LoopAbs;
          Ev.Placeholder = A;
          Ev.VarName = V;
          Ev.LocalId = W->loopId();
          Sum->Events.push_back(std::move(Ev));
        } else {
          // Main body: the root node's LoopBase is 0, so the global id is
          // the syntactic one.
          VarOrigin O;
          O.K = VarOrigin::Kind::LoopExit;
          O.ProgVar = V;
          O.LoopId = W->loopId();
          O.Text = "the value of " + V + " after loop " +
                   std::to_string(W->loopId() + 1);
          A = freshAbstraction(
              V + "@loop" + std::to_string(W->loopId() + 1), std::move(O));
          Res.LoopExitVars[{W->loopId(), V}] = A;
        }
        Store[V] = {{LinearExpr::variable(A), M.getTrue()}};
      }
      if (W->annot())
        I = M.mkAnd(I, evalPred(W->annot()));
      if (Opts.AssumeLoopExitCondition)
        I = M.mkAnd(I, M.mkNot(evalPred(W->cond())));
      return;
    }
    }
    assert(false && "unhandled statement kind");
  }
};

} // namespace

AnalysisResult abdiag::analysis::analyzeProgram(const Program &Prog,
                                                DecisionProcedure &S,
                                                const AnalyzerOptions &Opts) {
  Analyzer A(S, Opts);
  return A.run(Prog);
}

std::string abdiag::analysis::describeVar(const AnalysisResult &R,
                                          const VarTable &VT, VarId V) {
  auto It = R.Origins.find(V);
  if (It != R.Origins.end())
    return It->second.Text;
  return VT.name(V);
}
