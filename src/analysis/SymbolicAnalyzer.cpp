//===- analysis/SymbolicAnalyzer.cpp - Section 3 symbolic analysis ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SymbolicAnalyzer.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace abdiag;
using namespace abdiag::analysis;
using namespace abdiag::smt;
using namespace abdiag::lang;

namespace {

/// A symbolic value set theta = {(pi, phi)}.
using ValueSet = std::vector<std::pair<LinearExpr, const Formula *>>;

/// Collects the variables assigned anywhere inside \p S (including nested
/// loops), i.e. the "modified in s" set of the loop rule in Figure 5.
void collectAssigned(const Stmt *S, std::set<std::string> &Out) {
  switch (S->kind()) {
  case StmtKind::Assign:
    Out.insert(cast<AssignStmt>(S)->var());
    return;
  case StmtKind::Skip:
  case StmtKind::Assume:
    return;
  case StmtKind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
      collectAssigned(Sub, Out);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    collectAssigned(I->thenStmt(), Out);
    if (I->elseStmt())
      collectAssigned(I->elseStmt(), Out);
    return;
  }
  case StmtKind::While:
    collectAssigned(cast<WhileStmt>(S)->body(), Out);
    return;
  }
  assert(false && "unhandled statement kind");
}

class Analyzer {
  FormulaManager &M;
  DecisionProcedure &Slv;
  const AnalyzerOptions &Opts;
  AnalysisResult Res;
  std::map<std::string, ValueSet> Store;
  const Formula *I; // threaded invariant
  std::vector<const Formula *> SideConditions; // globally valid facts
  std::map<std::pair<LinearExpr, LinearExpr>, VarId> NonLinearMemo;

public:
  Analyzer(DecisionProcedure &Slv, const AnalyzerOptions &Opts)
      : M(Slv.manager()), Slv(Slv), Opts(Opts), I(M.getTrue()) {}

  AnalysisResult run(const Program &Prog) {
    for (const std::string &P : Prog.Params) {
      VarId V = M.vars().getOrCreate(P, VarKind::Input);
      Res.InputVars[P] = V;
      VarOrigin O;
      O.K = VarOrigin::Kind::Input;
      O.ProgVar = P;
      O.Text = "input " + P;
      Res.Origins[V] = O;
      Store[P] = {{LinearExpr::variable(V), M.getTrue()}};
    }
    for (const std::string &L : Prog.Locals)
      Store[L] = {{LinearExpr::constant(0), M.getTrue()}};
    exec(Prog.Body);
    Res.SuccessCondition = evalPred(Prog.Check);
    std::vector<const Formula *> Parts{I};
    Parts.insert(Parts.end(), SideConditions.begin(), SideConditions.end());
    Res.Invariants = M.mkAnd(std::move(Parts));
    return std::move(Res);
  }

private:
  /// Merges entries with identical symbolic value (or-ing their guards),
  /// drops false guards, and optionally prunes unsatisfiable ones.
  void normalize(ValueSet &VS) {
    std::map<LinearExpr, std::vector<const Formula *>> ByValue;
    for (auto &[Pi, Phi] : VS) {
      if (Phi->isFalse())
        continue;
      ByValue[Pi].push_back(Phi);
    }
    VS.clear();
    for (auto &[Pi, Phis] : ByValue) {
      const Formula *Guard = M.mkOr(std::move(Phis));
      if (Guard->isFalse())
        continue;
      if (Opts.PruneInfeasibleGuards && ByValue.size() > 4 &&
          !Slv.isSat(Guard))
        continue;
      VS.emplace_back(Pi, Guard);
    }
  }

  VarId freshAbstraction(const std::string &Name, VarOrigin O) {
    VarId V = M.vars().getOrCreate(Name, VarKind::Abstraction);
    Res.Origins[V] = std::move(O);
    return V;
  }

  ValueSet evalExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::VarRef: {
      auto It = Store.find(cast<VarRefExpr>(E)->name());
      assert(It != Store.end() && "undeclared variable survived parsing");
      return It->second;
    }
    case ExprKind::IntLit:
      return {{LinearExpr::constant(cast<IntLitExpr>(E)->value()),
               M.getTrue()}};
    case ExprKind::Havoc: {
      const auto *H = cast<HavocExpr>(E);
      auto It = Res.HavocVars.find(H->siteId());
      VarId V;
      if (It != Res.HavocVars.end()) {
        V = It->second;
      } else {
        VarOrigin O;
        O.K = VarOrigin::Kind::Havoc;
        O.Site = H->siteId();
        O.Text = "the result of the unknown call #" +
                 std::to_string(H->siteId() + 1);
        V = freshAbstraction("havoc@" + std::to_string(H->siteId()),
                             std::move(O));
        Res.HavocVars[H->siteId()] = V;
      }
      return {{LinearExpr::variable(V), M.getTrue()}};
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      ValueSet L = evalExpr(B->lhs());
      ValueSet R = evalExpr(B->rhs());
      ValueSet Out;
      for (const auto &[Pi1, Phi1] : L)
        for (const auto &[Pi2, Phi2] : R) {
          const Formula *Guard = M.mkAnd(Phi1, Phi2);
          if (Guard->isFalse())
            continue;
          Out.emplace_back(combine(B->op(), Pi1, Pi2), Guard);
        }
      normalize(Out);
      return Out;
    }
    }
    assert(false && "unhandled expression kind");
    return {};
  }

  /// Combines two symbolic values; non-linear products become abstraction
  /// variables with a >= 0 side condition for syntactic squares.
  LinearExpr combine(BinOp Op, const LinearExpr &A, const LinearExpr &B) {
    switch (Op) {
    case BinOp::Add:
      return A.add(B);
    case BinOp::Sub:
      return A.sub(B);
    case BinOp::Mul:
      if (A.isConstant())
        return B.scaled(A.constant());
      if (B.isConstant())
        return A.scaled(B.constant());
      return LinearExpr::variable(nonLinearVar(A, B));
    }
    assert(false && "unhandled binary operator");
    return LinearExpr();
  }

  VarId nonLinearVar(const LinearExpr &A, const LinearExpr &B) {
    std::pair<LinearExpr, LinearExpr> Key =
        B < A ? std::make_pair(B, A) : std::make_pair(A, B);
    auto It = NonLinearMemo.find(Key);
    if (It != NonLinearMemo.end())
      return It->second;
    VarOrigin O;
    O.K = VarOrigin::Kind::NonLinear;
    O.Factor1 = Key.first;
    O.Factor2 = Key.second;
    O.Text = "the value of the non-linear product (" +
             Key.first.str(M.vars()) + ") * (" + Key.second.str(M.vars()) +
             ")";
    VarId V = freshAbstraction(
        "mul@" + std::to_string(NonLinearMemo.size() + 1), std::move(O));
    // A syntactic square is never negative (the alpha_{n*n} >= 0 fact the
    // paper's introduction uses).
    bool IsSquare = Key.first == Key.second;
    NonLinearMemo.emplace(std::move(Key), V);
    if (IsSquare)
      SideConditions.push_back(
          M.mkGe(LinearExpr::variable(V), LinearExpr::constant(0)));
    return V;
  }

  const Formula *evalPred(const Pred *P) {
    switch (P->kind()) {
    case PredKind::BoolLit:
      return M.getBool(cast<BoolLitPred>(P)->value());
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(P);
      ValueSet L = evalExpr(C->lhs());
      ValueSet R = evalExpr(C->rhs());
      std::vector<const Formula *> Cases;
      for (const auto &[Pi1, Phi1] : L)
        for (const auto &[Pi2, Phi2] : R) {
          const Formula *Cmp = nullptr;
          switch (C->op()) {
          case CmpOp::Lt:
            Cmp = M.mkLt(Pi1, Pi2);
            break;
          case CmpOp::Gt:
            Cmp = M.mkGt(Pi1, Pi2);
            break;
          case CmpOp::Le:
            Cmp = M.mkLe(Pi1, Pi2);
            break;
          case CmpOp::Ge:
            Cmp = M.mkGe(Pi1, Pi2);
            break;
          case CmpOp::Eq:
            Cmp = M.mkEq(Pi1, Pi2);
            break;
          case CmpOp::Ne:
            Cmp = M.mkNe(Pi1, Pi2);
            break;
          }
          Cases.push_back(M.mkAnd({Cmp, Phi1, Phi2}));
        }
      return M.mkOr(std::move(Cases));
    }
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(P);
      const Formula *A = evalPred(L->lhs());
      const Formula *B = evalPred(L->rhs());
      return L->isAnd() ? M.mkAnd(A, B) : M.mkOr(A, B);
    }
    case PredKind::Not:
      return M.mkNot(evalPred(cast<NotPred>(P)->sub()));
    }
    assert(false && "unhandled predicate kind");
    return M.getFalse();
  }

  void exec(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Store[A->var()] = evalExpr(A->value());
      return;
    }
    case StmtKind::Skip:
      return;
    case StmtKind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        exec(Sub);
      return;
    case StmtKind::Assume:
      I = M.mkAnd(I, evalPred(cast<AssumeStmt>(S)->cond()));
      return;
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      const Formula *Cond = evalPred(If->cond());
      // Run each branch from the current store with a fresh invariant
      // accumulator; recombine per the Figure 5 if-rule.
      std::map<std::string, ValueSet> SavedStore = Store;
      const Formula *SavedI = I;

      I = M.getTrue();
      exec(If->thenStmt());
      std::map<std::string, ValueSet> ThenStore = std::move(Store);
      const Formula *ThenI = I;

      Store = std::move(SavedStore);
      I = M.getTrue();
      if (If->elseStmt())
        exec(If->elseStmt());
      const Formula *ElseI = I;

      // S' = (S_then && cond) ⊔ (S_else && !cond).
      const Formula *NotCond = M.mkNot(Cond);
      std::map<std::string, ValueSet> Joined;
      for (auto &[Var, ElseVS] : Store) {
        ValueSet Merged;
        for (const auto &[Pi, Phi] : ThenStore.at(Var))
          Merged.emplace_back(Pi, M.mkAnd(Phi, Cond));
        for (const auto &[Pi, Phi] : ElseVS)
          Merged.emplace_back(Pi, M.mkAnd(Phi, NotCond));
        normalize(Merged);
        Joined[Var] = std::move(Merged);
      }
      Store = std::move(Joined);
      I = M.mkAnd({SavedI, M.mkImplies(Cond, ThenI),
                   M.mkImplies(NotCond, ElseI)});
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      std::set<std::string> Modified;
      collectAssigned(W->body(), Modified);
      for (const std::string &V : Modified) {
        VarOrigin O;
        O.K = VarOrigin::Kind::LoopExit;
        O.ProgVar = V;
        O.LoopId = W->loopId();
        O.Text = "the value of " + V + " after loop " +
                 std::to_string(W->loopId() + 1);
        VarId A = freshAbstraction(
            V + "@loop" + std::to_string(W->loopId() + 1), std::move(O));
        Res.LoopExitVars[{W->loopId(), V}] = A;
        Store[V] = {{LinearExpr::variable(A), M.getTrue()}};
      }
      if (W->annot())
        I = M.mkAnd(I, evalPred(W->annot()));
      if (Opts.AssumeLoopExitCondition)
        I = M.mkAnd(I, M.mkNot(evalPred(W->cond())));
      return;
    }
    }
    assert(false && "unhandled statement kind");
  }
};

} // namespace

AnalysisResult abdiag::analysis::analyzeProgram(const Program &Prog,
                                                DecisionProcedure &S,
                                                const AnalyzerOptions &Opts) {
  Analyzer A(S, Opts);
  return A.run(Prog);
}

std::string abdiag::analysis::describeVar(const AnalysisResult &R,
                                          const VarTable &VT, VarId V) {
  auto It = R.Origins.find(V);
  if (It != R.Origins.end())
    return It->second.Text;
  return VT.name(V);
}
