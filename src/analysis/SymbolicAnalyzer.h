//===- analysis/SymbolicAnalyzer.h - Section 3 symbolic analysis -*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static analysis of Section 3: exact symbolic value propagation on
/// loop-free code with every source of imprecision named by an abstraction
/// variable.
///
/// Values of program variables are *symbolic value sets*
/// theta = {(pi_1, phi_1), ..., (pi_k, phi_k)}: the variable has symbolic
/// value pi_i under path constraint phi_i (Figure 2 of the paper). The
/// transformers of Figure 5 propagate stores of value sets; loops bind
/// modified variables to fresh abstraction variables alpha_v^rho and
/// evaluate the @p' annotation in that store to constrain them; assume()
/// statements contribute invariants directly; non-linear products and
/// havoc() results get their own abstraction variables (with the side
/// condition alpha >= 0 for syntactic squares, as in the paper's alpha_{n*n}
/// example).
///
/// The result is the pair (I, phi) of Lemmas 1/2: known invariants over the
/// analysis variables and the success condition of the check.
///
/// Calls are analyzed interprocedurally via *function summaries* (the
/// Section 5 implementation note): each callee is analyzed exactly once
/// over placeholder formals, producing its return value set, invariant and
/// an ordered list of abstraction events; every call site then instantiates
/// the summary by substituting argument value sets for the formals and
/// materializing one fresh alpha per abstraction event, with global ids
/// drawn from the program's `lang::CallPlan`. Calls to recursive functions
/// are modeled by a single unconstrained CallResult alpha that the concrete
/// oracle resolves from the recorded return value.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_ANALYSIS_SYMBOLICANALYZER_H
#define ABDIAG_ANALYSIS_SYMBOLICANALYZER_H

#include "lang/Ast.h"
#include "lang/CallPlan.h"
#include "smt/Formula.h"
#include "smt/DecisionProcedure.h"

#include <map>
#include <memory>
#include <string>

namespace abdiag::analysis {

/// Where an analysis variable came from; used to render queries in terms of
/// program entities (Section 4.4: "translate analysis variables into program
/// expressions").
struct VarOrigin {
  enum class Kind {
    Input,     ///< nu: value of a program input
    LoopExit,  ///< alpha_v^rho: value of variable v after loop rho
    Havoc,     ///< alpha for an un-analyzed library call result
    NonLinear, ///< alpha for a non-linear product pi1 * pi2
    CallResult ///< alpha for the result of an unexpanded (recursive) call
  };
  Kind K = Kind::Input;
  std::string ProgVar;  ///< input name, variable v for LoopExit, or callee
  uint32_t LoopId = 0;  ///< for LoopExit (global, per the call plan)
  uint32_t Site = 0;    ///< for Havoc (global) / CallResult (CallResultId)
  /// For NonLinear: the two factor expressions (over analysis variables).
  smt::LinearExpr Factor1, Factor2;
  /// Human-readable description, e.g. "the value of j after loop 1".
  std::string Text;
};

/// Analysis output: the invariants I, the success condition phi, and the
/// mapping from analysis variables back to the program.
struct AnalysisResult {
  const smt::Formula *Invariants = nullptr;       ///< I
  const smt::Formula *SuccessCondition = nullptr; ///< phi
  std::map<std::string, smt::VarId> InputVars;    ///< param -> nu
  /// (global loop id, variable) -> alpha_v^rho for variables modified in
  /// the loop. Ids are global per `Plan` (syntactic ids for the main body).
  std::map<std::pair<uint32_t, std::string>, smt::VarId> LoopExitVars;
  /// global havoc site id -> alpha.
  std::map<uint32_t, smt::VarId> HavocVars;
  /// CallResultId -> alpha for opaque (recursive) call results.
  std::map<uint32_t, smt::VarId> CallResultVars;
  std::map<smt::VarId, VarOrigin> Origins;
  /// The static call-expansion plan the global ids above refer to; shared
  /// with the concrete oracle so both sides name the same instances.
  std::shared_ptr<const lang::CallPlan> Plan;
  /// Interprocedural work counters (deterministic; surfaced in triage
  /// stats and gated by the benchmark baselines).
  uint32_t SummariesComputed = 0;     ///< distinct callees analyzed
  uint32_t SummariesInstantiated = 0; ///< call sites expanded via summary
  uint32_t OpaqueCallResults = 0;     ///< calls modeled by a single alpha
};

/// Knobs for the analysis.
struct AnalyzerOptions {
  /// Conjoin the negated loop condition (over the post-loop store) to I.
  /// The paper leaves exit conditions to the @p' annotation; the automatic
  /// annotation pass uses this instead. Off by default for paper fidelity.
  bool AssumeLoopExitCondition = false;
  /// Prune value-set entries whose guard is unsatisfiable (needs a solver;
  /// keeps value sets small on branchy code). On by default.
  bool PruneInfeasibleGuards = true;
};

/// Runs the analysis. The FormulaManager inside \p S receives all analysis
/// variables; variable names are derived from program entities (inputs keep
/// their name; alpha variables get names like "j@loop1").
AnalysisResult analyzeProgram(const lang::Program &Prog, smt::DecisionProcedure &S,
                              const AnalyzerOptions &Opts = AnalyzerOptions());

/// Renders \p V for query text using its origin ("input n",
/// "the value of j after loop 1", ...).
std::string describeVar(const AnalysisResult &R, const smt::VarTable &VT,
                        smt::VarId V);

} // namespace abdiag::analysis

#endif // ABDIAG_ANALYSIS_SYMBOLICANALYZER_H
