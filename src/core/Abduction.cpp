//===- core/Abduction.cpp - Weakest minimum abduction ------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Abduction.h"

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"
#include "smt/Simplify.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

int64_t Abducer::varCost(const VarTable &VT, VarId V, AbductionMode Mode,
                         int64_t NumVars, CostModel Model) {
  int64_t Expensive = NumVars > 0 ? NumVars : 1;
  if (VT.kind(V) == VarKind::Aux) {
    // Aux variables are internal; make them prohibitively expensive so the
    // search never prefers them (they should not occur in targets anyway).
    return Expensive * 16 + 16;
  }
  if (Model == CostModel::Uniform)
    return 1;
  bool IsAbstraction = VT.kind(V) == VarKind::Abstraction;
  if (Model == CostModel::Swapped)
    IsAbstraction = !IsAbstraction;
  // Definition 2 / Definition 9.
  if (Mode == AbductionMode::ProofObligation)
    return IsAbstraction ? 1 : Expensive;
  return IsAbstraction ? Expensive : 1;
}

int64_t Abducer::formulaCost(const Formula *F, AbductionMode Mode,
                             int64_t NumVars) const {
  int64_t C = 0;
  for (VarId V : freeVarsVec(F))
    C += varCost(S.manager().vars(), V, Mode, NumVars, Model);
  return C;
}

AbductionResult Abducer::abduce(
    const Formula *I, const Formula *Target, AbductionMode Mode,
    const std::vector<const Formula *> &ConsistWith) {
  FormulaManager &M = S.manager();
  AbductionResult Res;

  // |Vars(phi) ∪ Vars(I)| drives the expensive tier of the cost function.
  // Target is I => phi (or I => ¬phi), so its variables are exactly that
  // union (variables simplified away cannot appear in any abduction).
  const std::vector<VarId> &TargetFv = freeVarsVec(Target);
  std::vector<VarId> AllVars = TargetFv;
  const std::vector<VarId> &IFv = freeVarsVec(I);
  AllVars.insert(AllVars.end(), IFv.begin(), IFv.end());
  std::sort(AllVars.begin(), AllVars.end());
  AllVars.erase(std::unique(AllVars.begin(), AllVars.end()), AllVars.end());
  int64_t NumVars = static_cast<int64_t>(AllVars.size());

  CostFn Cost = [this, Mode, NumVars](VarId V) {
    return varCost(S.manager().vars(), V, Mode, NumVars, Model);
  };
  Res.Msa = findMsa(S, Target, ConsistWith, Cost, MsaOpts);
  if (!Res.Msa.Found)
    return Res;

  // Lemma 3/5: Gamma = QE(forall V-bar. Target), simplified modulo I.
  // Among all minimum-cost candidates, apply Definition 3(2): drop any
  // candidate strictly stronger than another, then prefer the smallest.
  std::vector<const Formula *> Candidates;
  for (const MsaCandidate &Cand : Res.Msa.Candidates) {
    std::set<VarId> Keep(Cand.Vars.begin(), Cand.Vars.end());
    std::vector<VarId> Eliminate;
    for (VarId V : TargetFv)
      if (!Keep.count(V))
        Eliminate.push_back(V);
    // This QE was already performed by findMsa for every winning subset;
    // the incremental path serves it from the backend's QE memo.
    const Formula *Gamma = MsaOpts.Incremental
                               ? S.eliminateForall(Target, Eliminate)
                               : eliminateForall(M, Target, Eliminate);
    if (SimplifyModuloI)
      Gamma = simplifyModulo(S, Gamma, I);
    // The definition requires SAT(Gamma ∧ I); guaranteed by consistency of
    // the assignment, but re-check defensively (simplification preserves
    // equivalence modulo I, so this should never fire).
    if (!S.isSat(M.mkAnd(Gamma, I)))
      continue;
    Candidates.push_back(Gamma);
  }
  if (Candidates.empty())
    return Res;
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Formula *A, const Formula *B) { return A->id() < B->id(); });
  Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                   Candidates.end());

  // Remove candidates strictly stronger than another candidate.
  std::vector<const Formula *> Weakest;
  for (const Formula *A : Candidates) {
    bool StrictlyStronger = false;
    for (const Formula *B : Candidates) {
      if (A == B)
        continue;
      if (S.entails(A, B) && !S.entails(B, A)) {
        StrictlyStronger = true;
        break;
      }
    }
    if (!StrictlyStronger)
      Weakest.push_back(A);
  }
  assert(!Weakest.empty() && "strict implication is acyclic");

  // Prefer the syntactically smallest (fewest atoms, then lowest id).
  const Formula *Best = Weakest.front();
  for (const Formula *F : Weakest)
    if (atomCount(F) < atomCount(Best) ||
        (atomCount(F) == atomCount(Best) && F->id() < Best->id()))
      Best = F;

  Res.Found = true;
  Res.Fml = Best;
  Res.Cost = formulaCost(Best, Mode, NumVars);
  return Res;
}

AbductionResult Abducer::proofObligation(
    const Formula *I, const Formula *Phi,
    const std::vector<const Formula *> &Witnesses,
    const std::vector<const Formula *> &PotentialWitnesses) {
  FormulaManager &M = S.manager();
  const Formula *Target = M.mkImplies(I, Phi);
  // Consistency: with I itself, and with every (potential) witness in the
  // context of I -- we must not ask about facts violating a known witness.
  std::vector<const Formula *> Consist{I};
  for (const Formula *W : Witnesses)
    Consist.push_back(M.mkAnd(I, W));
  for (const Formula *W : PotentialWitnesses)
    Consist.push_back(M.mkAnd(I, W));
  return abduce(I, Target, AbductionMode::ProofObligation, Consist);
}

AbductionResult Abducer::failureWitness(
    const Formula *I, const Formula *Phi,
    const std::vector<const Formula *> &PotentialInvariants) {
  FormulaManager &M = S.manager();
  const Formula *Target = M.mkImplies(I, M.mkNot(Phi));
  std::vector<const Formula *> Consist{I};
  for (const Formula *P : PotentialInvariants)
    Consist.push_back(M.mkAnd(I, P));
  return abduce(I, Target, AbductionMode::FailureWitness, Consist);
}
