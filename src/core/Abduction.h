//===- core/Abduction.h - Weakest minimum abduction -------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central contribution (Section 4): computing *weakest minimum
/// proof obligations* (Definition 3) and *weakest minimum failure witnesses*
/// (Definition 10) by abductive inference.
///
///   proof obligation Gamma:  Gamma ∧ I |= phi   and  SAT(Gamma ∧ I)
///   failure witness  Upsilon: Upsilon ∧ I |= ¬phi and  SAT(Upsilon ∧ I)
///
/// Both are computed per Lemmas 3/5: find a minimum satisfying assignment of
/// I => phi (resp. I => ¬phi) consistent with I (and, for obligations, with
/// every known witness), then eliminate the unassigned variables
/// universally and simplify modulo I. Costs follow Definitions 2/9:
///
///   Pi_p(alpha) = 1,  Pi_p(nu) = |Vars(phi) ∪ Vars(I)|   (obligations)
///   Pi_w(nu)    = 1,  Pi_w(alpha) = |Vars(phi) ∪ Vars(I)| (witnesses)
///
/// so obligations prefer constraining sources of imprecision over the
/// program's environment, and witnesses prefer the opposite.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_ABDUCTION_H
#define ABDIAG_CORE_ABDUCTION_H

#include "core/Msa.h"

namespace abdiag::core {

/// A computed obligation or witness.
struct AbductionResult {
  bool Found = false;
  const smt::Formula *Fml = nullptr; ///< Gamma or Upsilon, simplified
  int64_t Cost = 0;                  ///< cost of Fml under the mode's Pi
  MsaResult Msa;                     ///< the underlying assignment(s)
};

/// Which cost function (Definition 2 vs Definition 9) applies.
enum class AbductionMode : uint8_t { ProofObligation, FailureWitness };

/// Cost-model variants, for the E5 ablation (DESIGN.md):
///  * Paper: Definitions 2/9 (obligations prefer abstraction variables,
///    witnesses prefer inputs);
///  * Uniform: every variable costs 1 (no strategy bias);
///  * Swapped: the definitions with the tiers exchanged (obligations prefer
///    inputs, witnesses prefer abstraction variables).
enum class CostModel : uint8_t { Paper, Uniform, Swapped };

/// Computes weakest minimum proof obligations and failure witnesses.
class Abducer {
  smt::DecisionProcedure &S;
  bool SimplifyModuloI;
  CostModel Model;
  MsaOptions MsaOpts;

public:
  explicit Abducer(smt::DecisionProcedure &S, bool SimplifyModuloI = true,
                   CostModel Model = CostModel::Paper)
      : S(S), SimplifyModuloI(SimplifyModuloI), Model(Model) {}

  /// Limits and the incremental/fresh switch for the underlying MSA search.
  void setMsaOptions(const MsaOptions &O) { MsaOpts = O; }
  const MsaOptions &msaOptions() const { return MsaOpts; }

  /// Per-variable cost (Definitions 2/9 under CostModel::Paper); \p NumVars
  /// is |Vars(phi) ∪ Vars(I)|. Aux variables never appear in queries but
  /// get a prohibitive cost for safety.
  static int64_t varCost(const smt::VarTable &VT, smt::VarId V,
                         AbductionMode Mode, int64_t NumVars,
                         CostModel Model = CostModel::Paper);

  /// Weakest minimum proof obligation for (I, phi), consistent with I and
  /// with each witness in \p Witnesses and each potential witness in
  /// \p PotentialWitnesses (Section 5).
  AbductionResult
  proofObligation(const smt::Formula *I, const smt::Formula *Phi,
                  const std::vector<const smt::Formula *> &Witnesses = {},
                  const std::vector<const smt::Formula *> &PotentialWitnesses =
                      {});

  /// Weakest minimum failure witness for (I, phi), consistent with I and
  /// with each potential invariant in \p PotentialInvariants (Section 5).
  AbductionResult
  failureWitness(const smt::Formula *I, const smt::Formula *Phi,
                 const std::vector<const smt::Formula *> &PotentialInvariants =
                     {});

  /// Cost of an arbitrary formula under a mode's Pi (used to re-evaluate
  /// simplified obligations and to compare Gamma vs Upsilon in Figure 6).
  int64_t formulaCost(const smt::Formula *F, AbductionMode Mode,
                      int64_t NumVars) const;

  smt::DecisionProcedure &procedure() { return S; }

private:
  AbductionResult abduce(const smt::Formula *I, const smt::Formula *Target,
                         AbductionMode Mode,
                         const std::vector<const smt::Formula *> &ConsistWith);
};

} // namespace abdiag::core

#endif // ABDIAG_CORE_ABDUCTION_H
