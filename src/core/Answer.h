//===- core/Answer.h - The three-valued oracle answer -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The answer domain of every oracle interaction (Definitions 7 and 11 plus
/// the Section 5 "I don't know"), promoted to a top-level type so the wire
/// protocol, the triage tool's output, and tests all share one spelling
/// instead of hand-rolling the enum mapping. `Oracle::Answer` is an alias
/// of this type, so existing `Oracle::Answer::Yes` call sites keep working.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_ANSWER_H
#define ABDIAG_CORE_ANSWER_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace abdiag::core {

/// One oracle answer: Yes and No are commitments (Definition 7/11), Unknown
/// is the Section 5 "I don't know".
enum class Answer : uint8_t { Yes, No, Unknown };

/// Stable lowercase spelling: "yes", "no", "unknown". Used by the abdiagd
/// wire protocol, `abdiag_triage --stats`/JSONL rows, and tests.
inline const char *answerName(Answer A) {
  switch (A) {
  case Answer::Yes:
    return "yes";
  case Answer::No:
    return "no";
  case Answer::Unknown:
    return "unknown";
  }
  return "unknown";
}

/// Inverse of answerName(). Also accepts the single-character spellings the
/// interactive tools prompt with ("y", "n", "?"). Returns nullopt for
/// anything else -- protocol handlers turn that into an error message
/// instead of guessing.
inline std::optional<Answer> parseAnswer(std::string_view Text) {
  if (Text == "yes" || Text == "y" || Text == "Y")
    return Answer::Yes;
  if (Text == "no" || Text == "n" || Text == "N")
    return Answer::No;
  if (Text == "unknown" || Text == "?")
    return Answer::Unknown;
  return std::nullopt;
}

} // namespace abdiag::core

#endif // ABDIAG_CORE_ANSWER_H
