//===- core/ConcreteOracle.cpp - Exhaustive concrete-execution oracle --------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ConcreteOracle.h"

#include "lang/Interp.h"
#include "smt/FormulaOps.h"

#include <cassert>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::analysis;
using namespace abdiag::smt;
using namespace abdiag::lang;

namespace {

/// Resolves the concrete value of an analysis variable in one run,
/// recursing through non-linear product factors.
class RunResolver {
  const AnalysisResult &AR;
  const RunResult &Run;
  const std::vector<int64_t> &Inputs;
  const std::vector<std::string> &Params;
  const std::vector<int64_t> &HavocVals;

public:
  RunResolver(const AnalysisResult &AR, const RunResult &Run,
              const std::vector<int64_t> &Inputs,
              const std::vector<std::string> &Params,
              const std::vector<int64_t> &HavocVals)
      : AR(AR), Run(Run), Inputs(Inputs), Params(Params),
        HavocVals(HavocVals) {}

  std::optional<int64_t> valueOf(VarId V) const {
    auto It = AR.Origins.find(V);
    if (It == AR.Origins.end())
      return std::nullopt; // aux variable: never defined in runs
    const VarOrigin &O = It->second;
    switch (O.K) {
    case VarOrigin::Kind::Input:
      for (size_t I = 0; I < Params.size(); ++I)
        if (Params[I] == O.ProgVar)
          return Inputs[I];
      return std::nullopt;
    case VarOrigin::Kind::LoopExit: {
      auto LIt = Run.LoopExitValues.find(O.LoopId);
      if (LIt == Run.LoopExitValues.end())
        return std::nullopt; // loop never exited in this run
      auto VIt = LIt->second.find(O.ProgVar);
      if (VIt == LIt->second.end())
        return std::nullopt;
      return VIt->second;
    }
    case VarOrigin::Kind::Havoc:
      if (O.Site < HavocVals.size())
        return HavocVals[O.Site];
      return std::nullopt;
    case VarOrigin::Kind::NonLinear: {
      std::optional<int64_t> F1 = valueOfExpr(O.Factor1);
      std::optional<int64_t> F2 = valueOfExpr(O.Factor2);
      if (!F1 || !F2)
        return std::nullopt;
      return checkedMul(*F1, *F2);
    }
    case VarOrigin::Kind::CallResult: {
      auto CIt = Run.CallReturns.find(O.Site);
      if (CIt == Run.CallReturns.end())
        return std::nullopt; // call site not reached in this run
      return CIt->second;
    }
    }
    return std::nullopt;
  }

  std::optional<int64_t> valueOfExpr(const LinearExpr &E) const {
    int64_t Acc = E.constant();
    for (const auto &[V, C] : E.terms()) {
      std::optional<int64_t> Val = valueOf(V);
      if (!Val)
        return std::nullopt;
      Acc = checkedAdd(Acc, checkedMul(C, *Val));
    }
    return Acc;
  }
};

} // namespace

ConcreteOracle::ConcreteOracle(const Program &Prog, const AnalysisResult &AR,
                               ConcreteOracleConfig Config) {
  // Determine the largest variable id we must track.
  for (const auto &[V, O] : AR.Origins) {
    (void)O;
    NumVarSlots = std::max(NumVarSlots, static_cast<size_t>(V) + 1);
  }

  // Shrink the input box so the total number of runs stays below the cap.
  // Havoc sites are counted over the call plan (one instance per expanded
  // call) so callee-internal havocs are enumerated too.
  size_t NumParams = Prog.Params.size();
  size_t NumHavocCombos = 1;
  size_t HavocSites = AR.Plan ? AR.Plan->NumHavocs : Prog.NumHavocs;
  for (size_t I = 0; I < HavocSites; ++I)
    NumHavocCombos *= Config.HavocValues.size();
  int64_t Bound = Config.InputBound;
  auto TotalRuns = [&](int64_t B) {
    double Runs = static_cast<double>(NumHavocCombos);
    for (size_t I = 0; I < NumParams; ++I)
      Runs *= static_cast<double>(2 * B + 1);
    return Runs;
  };
  while (Bound > 2 && TotalRuns(Bound) > static_cast<double>(Config.MaxRuns))
    --Bound;

  // Enumerate havoc combinations x input tuples.
  std::vector<int64_t> HavocVals(HavocSites, 0);
  std::vector<size_t> HavocIdx(HavocSites, 0);
  while (true) {
    for (size_t I = 0; I < HavocSites; ++I)
      HavocVals[I] = Config.HavocValues[HavocIdx[I]];
    auto HavocFn = [&](uint32_t Site, uint64_t) -> int64_t {
      return Site < HavocVals.size() ? HavocVals[Site] : 0;
    };

    std::vector<int64_t> Inputs(NumParams, -Bound);
    while (true) {
      support::pollCancellation(Config.Cancel);
      RunResult R = runProgram(Prog, Inputs, Config.Fuel, HavocFn,
                               AR.Plan.get());
      if (R.Status == RunStatus::CheckPassed ||
          R.Status == RunStatus::CheckFailed) {
        RunValues RV;
        RV.CheckPassed = R.Status == RunStatus::CheckPassed;
        AnyFailing = AnyFailing || !RV.CheckPassed;
        RV.Values.assign(NumVarSlots, std::nullopt);
        RunResolver Resolver(AR, R, Inputs, Prog.Params, HavocVals);
        for (const auto &[V, O] : AR.Origins) {
          (void)O;
          RV.Values[V] = Resolver.valueOf(V);
        }
        Runs.push_back(std::move(RV));
      }
      // Odometer over inputs; wrapping (or having no parameters) means all
      // input tuples for this havoc combination are done.
      size_t I = 0;
      while (I < NumParams && ++Inputs[I] > Bound) {
        Inputs[I] = -Bound;
        ++I;
      }
      if (I == NumParams)
        break;
    }
    // Odometer over havoc combinations.
    size_t I = 0;
    while (I < HavocSites && ++HavocIdx[I] == Config.HavocValues.size()) {
      HavocIdx[I] = 0;
      ++I;
    }
    if (I == HavocSites)
      break;
  }
}

std::optional<bool> ConcreteOracle::evalIn(const Formula *F,
                                           const RunValues &Run) const {
  // All variables must be defined in this run.
  for (VarId V : freeVarsVec(F))
    if (V >= Run.Values.size() || !Run.Values[V])
      return std::nullopt;
  return evaluate(F, [&](VarId V) { return *Run.Values[V]; });
}

Oracle::Answer ConcreteOracle::isInvariant(const Formula *F) {
  bool AnyDefined = false;
  for (const RunValues &Run : Runs) {
    std::optional<bool> V = evalIn(F, Run);
    if (!V)
      continue;
    AnyDefined = true;
    if (!*V)
      return Answer::No; // sound: a concrete violating execution
  }
  if (!AnyDefined)
    return Answer::Unknown;
  return Answer::Yes; // exhaustive within bounds
}

Oracle::Answer ConcreteOracle::isPossible(const Formula *F,
                                          const Formula *Given) {
  bool AnyDefined = false;
  for (const RunValues &Run : Runs) {
    std::optional<bool> FV = evalIn(F, Run);
    std::optional<bool> GV = evalIn(Given, Run);
    if (!FV || !GV)
      continue;
    AnyDefined = true;
    if (*FV && *GV)
      return Answer::Yes; // sound: a concrete execution
  }
  if (!AnyDefined)
    return Answer::Unknown;
  return Answer::No; // exhaustive within bounds
}
