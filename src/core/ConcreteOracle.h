//===- core/ConcreteOracle.h - Exhaustive concrete-execution oracle -*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A machine oracle that answers invariant/witness queries by exhaustively
/// executing the program over a box of input (and havoc) values with the
/// concrete interpreter, recording for each completed run the concrete
/// values of every analysis variable:
///
///   nu          -> the input value
///   alpha_v^rho -> the interpreter's recorded value of v when loop rho
///                  last exited
///   alpha_havoc -> the havoc value supplied for that site
///   alpha_mul   -> factor1 * factor2 evaluated recursively in the run
///   alpha_call  -> the interpreter's recorded return value of the opaque
///                  (recursive) call instance
///
/// Runs execute against the analysis result's call plan, so loop/havoc ids
/// agree between the symbolic and concrete sides for every expanded call
/// instance.
///
/// "Yes" answers to witness queries and "no" answers to invariant queries
/// are sound (backed by a concrete execution). "Yes" to an invariant and
/// "no" to a witness are exhaustive *within the bounds* -- precisely the
/// kind of evidence a careful human gathers, and the Section 8 future-work
/// idea of deciding witness queries with dynamic analysis. Queries whose
/// variables are defined in no completed run answer Unknown.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_CONCRETEORACLE_H
#define ABDIAG_CORE_CONCRETEORACLE_H

#include "analysis/SymbolicAnalyzer.h"
#include "core/Oracle.h"
#include "lang/Ast.h"
#include "support/Cancellation.h"

#include <optional>
#include <vector>

namespace abdiag::core {

/// Bounds for the exhaustive exploration.
struct ConcreteOracleConfig {
  /// Inputs range over [-InputBound, InputBound]; shrunk automatically when
  /// the program has many parameters so the run count stays manageable.
  int64_t InputBound = 8;
  /// Candidate values supplied to havoc() sites.
  std::vector<int64_t> HavocValues = {-7, -1, 0, 1, 3, 10};
  /// Loop-iteration fuel per run.
  uint64_t Fuel = 20000;
  /// Hard cap on the total number of runs.
  size_t MaxRuns = 2000000;
  /// Optional cancellation token polled between runs; construction throws
  /// CancelledError when it expires. ErrorDiagnoser::makeConcreteOracle
  /// defaults this to the solver's installed token.
  const support::CancellationToken *Cancel = nullptr;
};

/// The oracle; precomputes all runs at construction.
class ConcreteOracle : public Oracle {
public:
  ConcreteOracle(const lang::Program &Prog,
                 const analysis::AnalysisResult &AR,
                 ConcreteOracleConfig Config = ConcreteOracleConfig());

  Answer isInvariant(const smt::Formula *F) override;
  Answer isPossible(const smt::Formula *F, const smt::Formula *Given) override;

  /// Ground-truth helper: did any completed run fail its check? (Used to
  /// certify benchmark classifications.)
  bool anyFailingRun() const { return AnyFailing; }
  bool anyCompletedRun() const { return !Runs.empty(); }
  size_t numRuns() const { return Runs.size(); }

private:
  /// Values of analysis variables in one completed run; absent entries mean
  /// the variable's program point was not reached.
  struct RunValues {
    std::vector<std::optional<int64_t>> Values; // indexed by VarId
    bool CheckPassed = false;
  };

  std::vector<RunValues> Runs;
  size_t NumVarSlots = 0;
  bool AnyFailing = false;

  /// Evaluates \p F in \p Run; nullopt when some variable is undefined.
  std::optional<bool> evalIn(const smt::Formula *F, const RunValues &Run) const;
};

} // namespace abdiag::core

#endif // ABDIAG_CORE_CONCRETEORACLE_H
