//===- core/Diagnosis.cpp - The Figure 6 diagnosis loop ----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Diagnosis.h"

#include "smt/FormulaOps.h"
#include "smt/Printer.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

Oracle::~Oracle() = default;

Oracle::Answer ScriptedOracle::next() {
  if (Script.empty()) {
    if (OnExhausted == ScriptExhaustion::Unknown) {
      ++ExhaustedQueries_;
      return Answer::Unknown;
    }
    std::fprintf(stderr, "abdiag: fatal: scripted oracle ran out of answers\n");
    std::abort();
  }
  Answer A = Script.front();
  Script.pop_front();
  return A;
}

std::string DiagnosisEngine::renderFormula(const Formula *F) const {
  return toString(F, S.manager().vars());
}

Oracle::Answer DiagnosisEngine::askRawInvariant(const Formula *F) {
  auto Cached = InvariantCache.find(F);
  if (Cached != InvariantCache.end())
    return Cached->second;
  if (QueriesLeft-- <= 0)
    return Oracle::Answer::Unknown;
  QueryRecord R;
  R.K = QueryRecord::Kind::Invariant;
  R.Fml = F;
  R.Text = "Does \"" + renderFormula(F) + "\" hold in every execution?";
  R.Ans = User->isInvariant(F);
  Out->Transcript.push_back(R);
  InvariantCache.emplace(F, R.Ans);
  return R.Ans;
}

Oracle::Answer DiagnosisEngine::askRawPossible(const Formula *F,
                                               const Formula *Given) {
  auto Cached = PossibleCache.find({F, Given});
  if (Cached != PossibleCache.end())
    return Cached->second;
  if (QueriesLeft-- <= 0)
    return Oracle::Answer::Unknown;
  QueryRecord R;
  R.K = QueryRecord::Kind::Possible;
  R.Fml = F;
  R.Given = Given;
  R.Text = "Can \"" + renderFormula(F) + "\" hold in some execution";
  if (!Given->isTrue())
    R.Text += " in which \"" + renderFormula(Given) + "\" holds";
  R.Text += "?";
  R.Ans = User->isPossible(F, Given);
  Out->Transcript.push_back(R);
  PossibleCache.emplace(std::make_pair(F, Given), R.Ans);
  return R.Ans;
}

void DiagnosisEngine::learnInvariant(const Formula *F) {
  Invariants = S.manager().mkAnd(Invariants, F);
}

void DiagnosisEngine::learnWitness(const Formula *F) {
  Witnesses.push_back(F);
}

Oracle::Answer DiagnosisEngine::askInvariant(const Formula *F) {
  if (!Config.DecomposeQueries)
    return askRawInvariant(F);
  std::vector<std::vector<const Formula *>> Cnf;
  if (!toCnf(S.manager(), F, Cnf) || Cnf.empty())
    return askRawInvariant(F);
  // Each clause must independently be an invariant.
  bool SawUnknown = false;
  for (const auto &Clause : Cnf) {
    Oracle::Answer A = askClauseInvariant(Clause);
    if (A == Oracle::Answer::No)
      return Oracle::Answer::No;
    if (A == Oracle::Answer::Unknown)
      SawUnknown = true;
  }
  return SawUnknown ? Oracle::Answer::Unknown : Oracle::Answer::Yes;
}

Oracle::Answer DiagnosisEngine::askClauseInvariant(
    const std::vector<const Formula *> &Clause) {
  FormulaManager &M = S.manager();
  if (Clause.size() == 1) {
    Oracle::Answer A = askRawInvariant(Clause.front());
    if (A == Oracle::Answer::Yes && Config.LearnFromSubqueries)
      learnInvariant(Clause.front());
    return A;
  }
  // Disjunctive clause: humans find disjunctions hard (Section 4.4). First
  // try each disjunct as an invariant on its own, which often succeeds.
  bool SawUnknown = false;
  for (const Formula *L : Clause) {
    Oracle::Answer A = askRawInvariant(L);
    if (A == Oracle::Answer::Yes) {
      if (Config.LearnFromSubqueries)
        learnInvariant(L);
      return Oracle::Answer::Yes;
    }
    if (A == Oracle::Answer::Unknown)
      SawUnknown = true;
    if (QueriesLeft <= 0)
      return Oracle::Answer::Unknown;
  }
  // Truly disjunctive invariant: C is an invariant iff the conjunction of
  // the negated disjuncts is not a witness.
  std::vector<const Formula *> NegCube;
  NegCube.reserve(Clause.size());
  for (const Formula *L : Clause)
    NegCube.push_back(M.mkNot(L));
  Oracle::Answer W = askCubeWitness(NegCube);
  if (W == Oracle::Answer::Yes) {
    if (Config.LearnFromSubqueries)
      learnWitness(M.mkAnd(NegCube));
    return Oracle::Answer::No;
  }
  if (W == Oracle::Answer::No) {
    if (Config.LearnFromSubqueries)
      learnInvariant(M.mkOr(std::vector<const Formula *>(Clause)));
    return Oracle::Answer::Yes;
  }
  return SawUnknown ? Oracle::Answer::Unknown : Oracle::Answer::Unknown;
}

Oracle::Answer DiagnosisEngine::askWitness(const Formula *F) {
  if (!Config.DecomposeQueries) {
    // A witness query without decomposition is a single possibility query.
    return askRawPossible(F, S.manager().getTrue());
  }
  std::vector<std::vector<const Formula *>> Dnf;
  if (!toDnf(S.manager(), F, Dnf) || Dnf.empty())
    return askRawPossible(F, S.manager().getTrue());
  // Some cube possible => the witness holds in some execution.
  bool SawUnknown = false;
  for (const auto &Cube : Dnf) {
    Oracle::Answer A = askCubeWitness(Cube);
    if (A == Oracle::Answer::Yes)
      return Oracle::Answer::Yes;
    if (A == Oracle::Answer::Unknown)
      SawUnknown = true;
  }
  return SawUnknown ? Oracle::Answer::Unknown : Oracle::Answer::No;
}

Oracle::Answer DiagnosisEngine::askCubeWitness(
    const std::vector<const Formula *> &Cube) {
  FormulaManager &M = S.manager();
  // Sequential conditional queries: is m1 possible? is m2 possible in an
  // execution where m1 holds? ... (Section 4.4).
  const Formula *Ctx = M.getTrue();
  for (const Formula *Lit : Cube) {
    Oracle::Answer A = askRawPossible(Lit, Ctx);
    if (A == Oracle::Answer::No) {
      // No execution satisfies Ctx ∧ Lit: that negation is an invariant.
      if (Config.LearnFromSubqueries)
        learnInvariant(M.mkNot(M.mkAnd(Ctx, Lit)));
      return Oracle::Answer::No;
    }
    if (A == Oracle::Answer::Unknown)
      return Oracle::Answer::Unknown;
    Ctx = M.mkAnd(Ctx, Lit);
  }
  if (Config.LearnFromSubqueries && !Ctx->isTrue())
    learnWitness(Ctx);
  return Oracle::Answer::Yes;
}

DiagnosisResult DiagnosisEngine::run(const Formula *I, const Formula *Phi,
                                     Oracle &O) {
  FormulaManager &M = S.manager();
  DiagnosisResult Result;
  Out = &Result;
  User = &O;
  Invariants = I;
  Witnesses.clear();
  PotentialInvariants.clear();
  PotentialWitnesses.clear();
  InvariantCache.clear();
  PossibleCache.clear();
  QueriesLeft = Config.MaxQueries;

  Abducer Abd(S, Config.SimplifyQueries, Config.Costs);
  MsaOptions MsaOpts;
  MsaOpts.Incremental = Config.IncrementalMsa;
  MsaOpts.MaxSubsets = Config.MsaMaxSubsets;
  MsaOpts.MaxCandidates = Config.MsaMaxCandidates;
  Abd.setMsaOptions(MsaOpts);

  for (int Iter = 0; Iter < Config.MaxIterations; ++Iter) {
    support::pollCancellation(S.cancellation());
    Result.Iterations = Iter + 1;
    // Lines 3-4 of Figure 6: decided already?
    if (S.isValid(M.mkImplies(Invariants, Phi))) {
      Result.Outcome = DiagnosisOutcome::Discharged;
      Result.DecidedWithoutQueries = Result.Transcript.empty();
      break;
    }
    bool ValidatedByWitness = false;
    for (const Formula *W : Witnesses)
      if (!S.isSat(M.mkAnd({Invariants, W, Phi}))) {
        ValidatedByWitness = true;
        break;
      }
    if (ValidatedByWitness ||
        S.isValid(M.mkImplies(Invariants, M.mkNot(Phi)))) {
      Result.Outcome = DiagnosisOutcome::Validated;
      Result.DecidedWithoutQueries = Result.Transcript.empty();
      break;
    }
    if (QueriesLeft <= 0)
      break;

    // Lines 5-8: compute the two abductions.
    AbductionResult Gamma =
        Abd.proofObligation(Invariants, Phi, Witnesses, PotentialWitnesses);
    AbductionResult Upsilon =
        Abd.failureWitness(Invariants, Phi, PotentialInvariants);
    if (!Gamma.Found && !Upsilon.Found)
      break;

    // Line 9: ask the cheaper query first.
    bool TryDischarge =
        Gamma.Found && (!Upsilon.Found || Gamma.Cost <= Upsilon.Cost);
    if (TryDischarge) {
      Oracle::Answer A = askInvariant(Gamma.Fml);
      if (A == Oracle::Answer::Yes) {
        learnInvariant(Gamma.Fml);
        Result.Outcome = DiagnosisOutcome::Discharged;
        break;
      }
      if (A == Oracle::Answer::No) {
        learnWitness(M.mkNot(Gamma.Fml)); // line 12
      } else {
        PotentialInvariants.push_back(Gamma.Fml); // Section 5
        PotentialWitnesses.push_back(M.mkNot(Gamma.Fml));
      }
    } else {
      Oracle::Answer A = askWitness(Upsilon.Fml);
      if (A == Oracle::Answer::Yes) {
        Result.Outcome = DiagnosisOutcome::Validated;
        break;
      }
      if (A == Oracle::Answer::No) {
        learnInvariant(M.mkNot(Upsilon.Fml)); // line 17
      } else {
        PotentialWitnesses.push_back(Upsilon.Fml); // Section 5
        PotentialInvariants.push_back(M.mkNot(Upsilon.Fml));
      }
    }
  }

  // Facts learned on the last iteration may decide the report even after
  // the loop exits.
  if (Result.Outcome == DiagnosisOutcome::Inconclusive) {
    if (S.isValid(M.mkImplies(Invariants, Phi))) {
      Result.Outcome = DiagnosisOutcome::Discharged;
    } else {
      bool Validated = S.isValid(M.mkImplies(Invariants, M.mkNot(Phi)));
      for (const Formula *W : Witnesses)
        if (!Validated && !S.isSat(M.mkAnd({Invariants, W, Phi})))
          Validated = true;
      if (Validated)
        Result.Outcome = DiagnosisOutcome::Validated;
    }
  }

  Result.FinalInvariants = Invariants;
  Result.PotentialInvariantCount = PotentialInvariants.size();
  Result.PotentialWitnessCount = PotentialWitnesses.size();
  Out = nullptr;
  User = nullptr;
  return Result;
}
