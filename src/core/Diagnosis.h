//===- core/Diagnosis.h - The Figure 6 diagnosis loop -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full query-guided error diagnosis algorithm (Figure 6 of the paper)
/// with the Section 4.4 query decomposition and the Section 5 handling of
/// "I don't know" answers:
///
///  1. If I |= phi, the report is discharged (false alarm); if some learned
///     witness contradicts phi under I, it is validated (real bug).
///  2. Otherwise compute a weakest minimum proof obligation Gamma and
///     failure witness Upsilon, and ask the cheaper one.
///  3. "Yes" to Gamma discharges; "no" learns the witness ¬Gamma. "Yes" to
///     Upsilon validates; "no" learns the invariant ¬Upsilon. Unknown
///     answers populate the potential-invariant/potential-witness sets that
///     constrain later abductions.
///  4. Queries with boolean structure are decomposed: invariant queries per
///     CNF clause (disjunctive clauses first try each disjunct, then flip
///     into a conjunctive witness query), witness queries per DNF cube
///     (conjunctive cubes become chains of conditional possibility
///     queries). Facts learned from subqueries are integrated even when the
///     enclosing query fails (the optimization at the end of Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_DIAGNOSIS_H
#define ABDIAG_CORE_DIAGNOSIS_H

#include "core/Abduction.h"
#include "core/Oracle.h"

#include <map>
#include <string>
#include <vector>

namespace abdiag::core {

/// Final classification of an error report.
enum class DiagnosisOutcome : uint8_t {
  Discharged,   ///< proven false alarm
  Validated,    ///< proven real bug
  Inconclusive  ///< ran out of iterations / answerable queries
};

/// One user interaction, for transcripts and metrics.
struct QueryRecord {
  enum class Kind : uint8_t { Invariant, Possible };
  Kind K = Kind::Invariant;
  const smt::Formula *Fml = nullptr;
  const smt::Formula *Given = nullptr; ///< context for Possible queries
  Oracle::Answer Ans = Oracle::Answer::Unknown;
  std::string Text; ///< rendered question
};

/// Diagnosis engine configuration.
struct DiagnosisConfig {
  /// Maximum Figure 6 iterations before giving up.
  int MaxIterations = 16;
  /// Maximum individual oracle interactions.
  int MaxQueries = 64;
  /// Section 4.4 decomposition of boolean structure into subqueries.
  bool DecomposeQueries = true;
  /// Integrate facts learned from subqueries (Section 4.4 optimization).
  bool LearnFromSubqueries = true;
  /// Simplify abduced formulas modulo I (Remark after Lemma 3).
  bool SimplifyQueries = true;
  /// Cost model for abduction (E5 ablation; Paper = Definitions 2/9).
  CostModel Costs = CostModel::Paper;
  /// Run MSA subset searches through an incremental solver session.
  bool IncrementalMsa = true;
  /// Subset-search budgets forwarded to MsaOptions (the triage engine's
  /// escalated retry raises these).
  size_t MsaMaxSubsets = 4096;
  size_t MsaMaxCandidates = 8;
};

/// Result of a diagnosis run.
struct DiagnosisResult {
  DiagnosisOutcome Outcome = DiagnosisOutcome::Inconclusive;
  std::vector<QueryRecord> Transcript;
  int Iterations = 0;
  /// Invariants at the end (I plus learned facts).
  const smt::Formula *FinalInvariants = nullptr;
  /// True when the initial analysis already decided the report (no queries).
  bool DecidedWithoutQueries = false;
  /// Sizes of the Section 5 potential-invariant/-witness sets when the run
  /// ended. The sets only grow, so these are also their peak sizes; each
  /// don't-know answer to a top-level query adds one entry to both.
  size_t PotentialInvariantCount = 0;
  size_t PotentialWitnessCount = 0;
};

/// Runs query-guided diagnosis for the analysis output (I, phi).
class DiagnosisEngine {
public:
  DiagnosisEngine(smt::DecisionProcedure &S,
                  DiagnosisConfig Config = DiagnosisConfig())
      : S(S), Config(std::move(Config)) {}

  DiagnosisResult run(const smt::Formula *I, const smt::Formula *Phi,
                      Oracle &O);

private:
  smt::DecisionProcedure &S;
  DiagnosisConfig Config;

  // Per-run state.
  std::vector<const smt::Formula *> Witnesses;
  std::vector<const smt::Formula *> PotentialInvariants;
  std::vector<const smt::Formula *> PotentialWitnesses;
  const smt::Formula *Invariants = nullptr;
  DiagnosisResult *Out = nullptr;
  Oracle *User = nullptr;
  int QueriesLeft = 0;
  /// Answer caches: the engine never asks the user the same question twice
  /// (replayed answers do not appear in the transcript or cost time).
  std::map<const smt::Formula *, Oracle::Answer> InvariantCache;
  std::map<std::pair<const smt::Formula *, const smt::Formula *>,
           Oracle::Answer>
      PossibleCache;

  Oracle::Answer askRawInvariant(const smt::Formula *F);
  Oracle::Answer askRawPossible(const smt::Formula *F,
                                const smt::Formula *Given);

  Oracle::Answer askInvariant(const smt::Formula *F);
  Oracle::Answer askClauseInvariant(const std::vector<const smt::Formula *> &C);
  Oracle::Answer askWitness(const smt::Formula *F);
  Oracle::Answer askCubeWitness(const std::vector<const smt::Formula *> &Cube);

  void learnInvariant(const smt::Formula *F);
  void learnWitness(const smt::Formula *F);

  std::string renderFormula(const smt::Formula *F) const;
};

} // namespace abdiag::core

#endif // ABDIAG_CORE_DIAGNOSIS_H
