//===- core/ErrorDiagnoser.cpp - Public end-to-end API -----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"

#include "analysis/IntervalAnnotator.h"
#include "lang/Parser.h"

#include <cassert>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

ErrorDiagnoser::ErrorDiagnoser() : ErrorDiagnoser(Options()) {}

ErrorDiagnoser::ErrorDiagnoser(Options Opts) : Opts(std::move(Opts)), S(M) {}

ErrorDiagnoser::~ErrorDiagnoser() = default;

bool ErrorDiagnoser::loadSource(std::string_view Source, std::string *Error) {
  lang::ParseResult P = lang::parseProgram(Source);
  if (!P.ok()) {
    if (Error)
      *Error = P.Error;
    return false;
  }
  Prog = std::move(*P.Prog);
  if (Opts.AutoAnnotate)
    Prog = analysis::annotateLoops(Prog);
  Analysis = analysis::analyzeProgram(Prog, S, Opts.Analyzer);
  Loaded = true;
  return true;
}

bool ErrorDiagnoser::loadFile(const std::string &Path, std::string *Error) {
  lang::ParseResult P = lang::parseProgramFile(Path);
  if (!P.ok()) {
    if (Error)
      *Error = P.Error;
    return false;
  }
  Prog = std::move(*P.Prog);
  if (Opts.AutoAnnotate)
    Prog = analysis::annotateLoops(Prog);
  Analysis = analysis::analyzeProgram(Prog, S, Opts.Analyzer);
  Loaded = true;
  return true;
}

bool ErrorDiagnoser::dischargedByAnalysis() {
  assert(Loaded && "no program loaded");
  return S.isValid(
      M.mkImplies(Analysis.Invariants, Analysis.SuccessCondition));
}

bool ErrorDiagnoser::validatedByAnalysis() {
  assert(Loaded && "no program loaded");
  return S.isValid(M.mkImplies(Analysis.Invariants,
                               M.mkNot(Analysis.SuccessCondition)));
}

DiagnosisResult ErrorDiagnoser::diagnose(Oracle &O) {
  assert(Loaded && "no program loaded");
  DiagnosisEngine Engine(S, Opts.Diagnosis);
  return Engine.run(Analysis.Invariants, Analysis.SuccessCondition, O);
}

std::unique_ptr<ConcreteOracle>
ErrorDiagnoser::makeConcreteOracle(ConcreteOracleConfig Config) {
  assert(Loaded && "no program loaded");
  return std::make_unique<ConcreteOracle>(Prog, Analysis, std::move(Config));
}
