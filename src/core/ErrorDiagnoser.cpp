//===- core/ErrorDiagnoser.cpp - Public end-to-end API -----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"

#include "analysis/IntervalAnnotator.h"
#include "lang/Inline.h"
#include "lang/Parser.h"

#include <cassert>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

ErrorDiagnoser::ErrorDiagnoser() : ErrorDiagnoser(Options()) {}

ErrorDiagnoser::ErrorDiagnoser(Options Opts)
    : Opts(std::move(Opts)), DP(smt::createBackend(this->Opts.Backend, M)) {
  DP->setSimplexMaxPivots(this->Opts.SimplexMaxPivots);
}

ErrorDiagnoser::~ErrorDiagnoser() = default;

LoadResult ErrorDiagnoser::finishLoad(lang::ParseResult P) {
  // Drop the stale program *before* running the pipeline so a cancellation
  // (or parse failure) leaves the diagnoser in a well-defined unloaded state
  // instead of silently keeping the previous program.
  Loaded = false;
  if (!P.ok())
    return LoadResult::failure(std::move(P.D));
  Prog = std::move(*P.Prog);
  if (Opts.InlineCalls && !Prog.Functions.empty()) {
    lang::InlineResult IR = lang::inlineCalls(Prog);
    if (!IR.ok())
      return LoadResult::failure(std::move(IR.D));
    Prog = std::move(*IR.Prog);
  }
  if (Opts.AutoAnnotate)
    Prog = analysis::annotateLoops(Prog);
  Analysis = analysis::analyzeProgram(Prog, *DP, Opts.analyzerOptions());
  Loaded = true;
  return LoadResult::success();
}

LoadResult ErrorDiagnoser::loadSource(std::string_view Source) {
  return finishLoad(lang::parseProgram(Source));
}

LoadResult ErrorDiagnoser::loadFile(const std::string &Path) {
  return finishLoad(lang::parseProgramFile(Path));
}

bool ErrorDiagnoser::dischargedByAnalysis() {
  assert(Loaded && "no program loaded");
  return DP->isValid(
      M.mkImplies(Analysis.Invariants, Analysis.SuccessCondition));
}

bool ErrorDiagnoser::validatedByAnalysis() {
  assert(Loaded && "no program loaded");
  return DP->isValid(M.mkImplies(Analysis.Invariants,
                                 M.mkNot(Analysis.SuccessCondition)));
}

DiagnosisResult ErrorDiagnoser::diagnose(Oracle &O) {
  return diagnoseWith(Opts.diagnosisConfig(), O);
}

DiagnosisResult ErrorDiagnoser::diagnoseWith(const DiagnosisConfig &Config,
                                             Oracle &O) {
  assert(Loaded && "no program loaded");
  DiagnosisEngine Engine(*DP, Config);
  return Engine.run(Analysis.Invariants, Analysis.SuccessCondition, O);
}

std::unique_ptr<ConcreteOracle>
ErrorDiagnoser::makeConcreteOracle(ConcreteOracleConfig Config) {
  assert(Loaded && "no program loaded");
  if (!Config.Cancel)
    Config.Cancel = DP->cancellation();
  return std::make_unique<ConcreteOracle>(Prog, Analysis, std::move(Config));
}
