//===- core/ErrorDiagnoser.h - Public end-to-end API ------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop public API of the library: load a program, run the
/// annotation and symbolic analysis pipeline, and diagnose the potential
/// error report with an oracle.
///
/// \code
///   abdiag::core::ErrorDiagnoser D;
///   if (abdiag::core::LoadResult R = D.loadFile("prog.adg"); !R) {
///     // R.Diagnostic has the message and (when available) line/column.
///     std::cerr << R.message() << "\n";
///   }
///   auto Oracle = D.makeConcreteOracle();
///   abdiag::core::DiagnosisResult R = D.diagnose(*Oracle);
///   // R.Outcome is Discharged (false alarm) or Validated (real bug).
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_ERRORDIAGNOSER_H
#define ABDIAG_CORE_ERRORDIAGNOSER_H

#include "analysis/SymbolicAnalyzer.h"
#include "core/ConcreteOracle.h"
#include "core/Diagnosis.h"
#include "core/Options.h"
#include "lang/Parser.h"

#include <memory>
#include <string_view>

namespace abdiag::core {

/// Outcome of loading a program: success, or a structured diagnostic with
/// line/column when the failure has a source position.
struct LoadResult {
  bool Ok = false;
  lang::Diag Diagnostic; ///< meaningful when !Ok

  explicit operator bool() const { return Ok; }
  /// The rendered diagnostic ("parse error at line L, column C: ...").
  std::string message() const { return Diagnostic.render(); }

  static LoadResult success() {
    LoadResult R;
    R.Ok = true;
    return R;
  }
  static LoadResult failure(lang::Diag D) {
    LoadResult R;
    R.Diagnostic = std::move(D);
    return R;
  }
};

/// End-to-end driver: parse -> annotate loops -> symbolic analysis ->
/// query-guided diagnosis.
class ErrorDiagnoser {
public:
  /// The flat options aggregate (see core/Options.h).
  using Options = abdiag::Options;

  ErrorDiagnoser();
  explicit ErrorDiagnoser(Options Opts);
  ~ErrorDiagnoser();
  ErrorDiagnoser(const ErrorDiagnoser &) = delete;
  ErrorDiagnoser &operator=(const ErrorDiagnoser &) = delete;

  /// Parses and analyzes \p Source. Replaces any previously loaded program.
  LoadResult loadSource(std::string_view Source);
  LoadResult loadFile(const std::string &Path);

  /// The loaded (and possibly auto-annotated) program.
  const lang::Program &program() const { return Prog; }

  /// The (I, phi) analysis result with variable origin metadata.
  const analysis::AnalysisResult &analysis() const { return Analysis; }

  /// True if the analysis alone discharges the report (Lemma 1).
  bool dischargedByAnalysis();
  /// True if the analysis alone validates the report (Lemma 2).
  bool validatedByAnalysis();

  /// Runs the Figure 6 diagnosis loop against \p O.
  DiagnosisResult diagnose(Oracle &O);
  /// Like diagnose(), but with an explicit config (the triage engine's
  /// escalated retry re-runs with raised budgets without rebuilding the
  /// diagnoser).
  DiagnosisResult diagnoseWith(const DiagnosisConfig &Config, Oracle &O);

  /// Builds the exhaustive concrete-execution oracle for this program. When
  /// \p Config carries no cancellation token, the solver's current token
  /// (Solver::setCancellation) is used, so oracle construction respects the
  /// same deadline as everything else.
  std::unique_ptr<ConcreteOracle>
  makeConcreteOracle(ConcreteOracleConfig Config = ConcreteOracleConfig());

  /// The decision procedure every pipeline query goes through; the
  /// concrete engine is chosen by Options::Backend ("native" by default).
  smt::DecisionProcedure &procedure() { return *DP; }
  smt::FormulaManager &manager() { return M; }

private:
  Options Opts;
  smt::FormulaManager M;
  std::unique_ptr<smt::DecisionProcedure> DP;
  lang::Program Prog;
  analysis::AnalysisResult Analysis;
  bool Loaded = false;

  LoadResult finishLoad(lang::ParseResult P);
};

} // namespace abdiag::core

#endif // ABDIAG_CORE_ERRORDIAGNOSER_H
