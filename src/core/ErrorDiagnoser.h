//===- core/ErrorDiagnoser.h - Public end-to-end API ------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop public API of the library: load a program, run the
/// annotation and symbolic analysis pipeline, and diagnose the potential
/// error report with an oracle.
///
/// \code
///   abdiag::core::ErrorDiagnoser D;
///   std::string Err;
///   if (!D.loadFile("prog.adg", &Err)) { ... }
///   auto Oracle = D.makeConcreteOracle();
///   abdiag::core::DiagnosisResult R = D.diagnose(*Oracle);
///   // R.Outcome is Discharged (false alarm) or Validated (real bug).
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_ERRORDIAGNOSER_H
#define ABDIAG_CORE_ERRORDIAGNOSER_H

#include "analysis/SymbolicAnalyzer.h"
#include "core/ConcreteOracle.h"
#include "core/Diagnosis.h"

#include <memory>
#include <string_view>

namespace abdiag::core {

/// End-to-end driver: parse -> annotate loops -> symbolic analysis ->
/// query-guided diagnosis.
class ErrorDiagnoser {
public:
  struct Options {
    /// Infer @p' annotations for un-annotated loops with the interval
    /// abstract interpreter.
    bool AutoAnnotate = true;
    analysis::AnalyzerOptions Analyzer;
    DiagnosisConfig Diagnosis;
  };

  ErrorDiagnoser();
  explicit ErrorDiagnoser(Options Opts);
  ~ErrorDiagnoser();
  ErrorDiagnoser(const ErrorDiagnoser &) = delete;
  ErrorDiagnoser &operator=(const ErrorDiagnoser &) = delete;

  /// Parses and analyzes \p Source; on failure returns false and fills
  /// \p Error. Replaces any previously loaded program.
  bool loadSource(std::string_view Source, std::string *Error);
  bool loadFile(const std::string &Path, std::string *Error);

  /// The loaded (and possibly auto-annotated) program.
  const lang::Program &program() const { return Prog; }

  /// The (I, phi) analysis result with variable origin metadata.
  const analysis::AnalysisResult &analysis() const { return Analysis; }

  /// True if the analysis alone discharges the report (Lemma 1).
  bool dischargedByAnalysis();
  /// True if the analysis alone validates the report (Lemma 2).
  bool validatedByAnalysis();

  /// Runs the Figure 6 diagnosis loop against \p O.
  DiagnosisResult diagnose(Oracle &O);

  /// Builds the exhaustive concrete-execution oracle for this program.
  std::unique_ptr<ConcreteOracle>
  makeConcreteOracle(ConcreteOracleConfig Config = ConcreteOracleConfig());

  smt::Solver &solver() { return S; }
  smt::FormulaManager &manager() { return M; }

private:
  Options Opts;
  smt::FormulaManager M;
  smt::Solver S;
  lang::Program Prog;
  analysis::AnalysisResult Analysis;
  bool Loaded = false;
};

} // namespace abdiag::core

#endif // ABDIAG_CORE_ERRORDIAGNOSER_H
