//===- core/Explain.cpp - Human-readable diagnosis explanations --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Explain.h"

#include "smt/FormulaOps.h"
#include "smt/Printer.h"

#include <set>
#include <sstream>

using namespace abdiag;
using namespace abdiag::core;

std::string abdiag::core::explainDiagnosis(const DiagnosisResult &R,
                                           const analysis::AnalysisResult &AR,
                                           const smt::VarTable &VT) {
  std::ostringstream OS;
  switch (R.Outcome) {
  case DiagnosisOutcome::Discharged:
    OS << "Verdict: FALSE ALARM — the assertion is proven to hold in every "
          "execution.\n";
    break;
  case DiagnosisOutcome::Validated:
    OS << "Verdict: REAL BUG — some execution is certain to violate the "
          "assertion.\n";
    break;
  case DiagnosisOutcome::Inconclusive:
    OS << "Verdict: INCONCLUSIVE — the report could not be classified with "
          "the answers given.\n";
    break;
  }

  if (R.DecidedWithoutQueries) {
    OS << "The analysis facts alone decide the report (Lemma "
       << (R.Outcome == DiagnosisOutcome::Discharged ? "1" : "2")
       << "); no user interaction was needed.\n";
  } else if (!R.Transcript.empty()) {
    OS << "Resolved after " << R.Transcript.size() << " question"
       << (R.Transcript.size() == 1 ? "" : "s") << ":\n";
    for (size_t I = 0; I < R.Transcript.size(); ++I) {
      const QueryRecord &Q = R.Transcript[I];
      const char *Ans = Q.Ans == Oracle::Answer::Yes   ? "yes"
                        : Q.Ans == Oracle::Answer::No  ? "no"
                                                       : "don't know";
      OS << "  " << (I + 1) << ". " << Q.Text << "  ->  " << Ans << "\n";
    }
    // What each terminal answer established.
    const QueryRecord &Last = R.Transcript.back();
    if (R.Outcome == DiagnosisOutcome::Discharged) {
      OS << "Together with the analysis invariants, the confirmed facts "
            "entail the assertion.\n";
    } else if (R.Outcome == DiagnosisOutcome::Validated) {
      if (Last.K == QueryRecord::Kind::Possible &&
          Last.Ans == Oracle::Answer::Yes)
        OS << "The confirmed execution is incompatible with the assertion "
              "under the analysis invariants.\n";
      else
        OS << "The denied invariant yields a witness execution that "
              "contradicts the assertion.\n";
    }
  }

  // Legend for every analysis variable mentioned in the transcript.
  std::set<smt::VarId> Mentioned;
  for (const QueryRecord &Q : R.Transcript) {
    smt::collectFreeVars(Q.Fml, Mentioned);
    if (Q.Given)
      smt::collectFreeVars(Q.Given, Mentioned);
  }
  if (!Mentioned.empty()) {
    OS << "where:\n";
    for (smt::VarId V : Mentioned)
      OS << "  " << VT.name(V) << " = " << analysis::describeVar(AR, VT, V)
         << "\n";
  }
  return OS.str();
}
