//===- core/Explain.h - Human-readable diagnosis explanations ---*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a diagnosis result as a short natural-language justification:
/// which facts the user confirmed, which witnesses were established, and
/// why they decide the report. This is the "making static reasoning
/// transparent to users" goal of the paper's related-work discussion,
/// applied to our own output.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_EXPLAIN_H
#define ABDIAG_CORE_EXPLAIN_H

#include "analysis/SymbolicAnalyzer.h"
#include "core/Diagnosis.h"

#include <string>

namespace abdiag::core {

/// Builds a multi-line explanation of \p R for the analysis output \p AR.
/// Includes the verdict, the question/answer trail, and a variable legend
/// mapping analysis variables back to program entities.
std::string explainDiagnosis(const DiagnosisResult &R,
                             const analysis::AnalysisResult &AR,
                             const smt::VarTable &VT);

} // namespace abdiag::core

#endif // ABDIAG_CORE_EXPLAIN_H
