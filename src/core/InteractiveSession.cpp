//===- core/InteractiveSession.cpp - Pull-based diagnosis sessions -----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/InteractiveSession.h"

#include "lang/AstPrinter.h"
#include "smt/Printer.h"

using namespace abdiag;
using namespace abdiag::core;

/// The oracle the worker's diagnosis loop sees: every isInvariant/isPossible
/// call becomes a posted SessionQuery plus a park on WorkerCv until the
/// owner answers (or the session is cancelled / the deadline passes).
class InteractiveSession::ChannelOracle : public Oracle {
  InteractiveSession &S;
  const smt::VarTable &VT;

public:
  ChannelOracle(InteractiveSession &S, const smt::VarTable &VT)
      : S(S), VT(VT) {}

  Answer isInvariant(const smt::Formula *F) override {
    return S.ask(QueryRecord::Kind::Invariant, F, nullptr, VT);
  }
  Answer isPossible(const smt::Formula *F, const smt::Formula *G) override {
    return S.ask(QueryRecord::Kind::Possible, F, G, VT);
  }
};

InteractiveSession::InteractiveSession(SessionInput In_,
                                       InteractiveSessionOptions Opts_)
    : In(std::move(In_)), Opts(std::move(Opts_)) {
  Worker = std::thread([this] { run(); });
}

InteractiveSession::~InteractiveSession() {
  cancel();
  if (Worker.joinable())
    Worker.join();
}

void InteractiveSession::armDeadline() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Opts.DeadlineMs) {
    Token.emplace(std::chrono::milliseconds(Opts.DeadlineMs));
    HasDeadline = true;
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(Opts.DeadlineMs);
  } else {
    Token.emplace();
  }
  // A cancel that raced session startup (or the escalation re-arm) must
  // survive the fresh token.
  if (CancelRequested)
    Token->cancel();
}

void InteractiveSession::run() {
  TriageReport R;
  R.Name = In.Name;
  R.Path = In.Path;
  auto Start = std::chrono::steady_clock::now();

  std::unique_ptr<ErrorDiagnoser> D;
  smt::SolverStats Before{};
  try {
    D = std::make_unique<ErrorDiagnoser>(Opts.Pipeline);
    Before = D->procedure().stats();
    armDeadline();
    // The token lives in optional storage, so the re-arm between attempts
    // keeps this pointer valid.
    D->procedure().setCancellation(&*Token);

    LoadResult L =
        In.Source.empty() ? D->loadFile(In.Path) : D->loadSource(In.Source);
    if (!L) {
      R.Status = TriageStatus::LoadError;
      R.LoadDiag = L.Diagnostic;
      R.Message = L.message();
    } else {
      R.Loc = lang::programLoc(D->program());
      if (D->dischargedByAnalysis()) {
        R.Status = TriageStatus::Diagnosed;
        R.Outcome = DiagnosisOutcome::Discharged;
        R.AnalysisAlone = true;
      } else if (D->validatedByAnalysis()) {
        R.Status = TriageStatus::Diagnosed;
        R.Outcome = DiagnosisOutcome::Validated;
        R.AnalysisAlone = true;
      } else {
        ChannelOracle O(*this, D->manager().vars());
        DiagnosisResult Res = D->diagnose(O);
        if (Res.Outcome == DiagnosisOutcome::Inconclusive &&
            Opts.EscalateOnInconclusive) {
          R.Escalated = true;
          armDeadline(); // fresh deadline for the retry, as in batch triage
          DiagnosisConfig Cfg = Opts.Pipeline.diagnosisConfig();
          Cfg.MaxIterations *= 4;
          Cfg.MaxQueries *= 4;
          Cfg.MsaMaxSubsets *= 4;
          Res = D->diagnoseWith(Cfg, O);
        }
        R.Status = TriageStatus::Diagnosed;
        R.Outcome = Res.Outcome;
        countAnswers(Res, R);
      }
    }
  } catch (const support::CancelledError &) {
    bool WasCancel;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      WasCancel = CancelRequested;
    }
    if (WasCancel) {
      R.Status = TriageStatus::Cancelled;
      R.Message = "session cancelled";
    } else {
      R.Status = TriageStatus::Timeout;
      R.Message =
          "deadline of " + std::to_string(Opts.DeadlineMs) + " ms exceeded";
    }
  } catch (const std::exception &E) {
    R.Status = TriageStatus::Crashed;
    R.Message = E.what();
  } catch (...) {
    R.Status = TriageStatus::Crashed;
    R.Message = "unknown exception";
  }

  if (D) {
    D->procedure().setCancellation(nullptr);
    R.Solver = D->procedure().stats();
    R.Solver -= Before;
    R.Backend = D->procedure().name();
  }
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  postDone(std::move(R));
}

Oracle::Answer InteractiveSession::ask(QueryRecord::Kind K,
                                       const smt::Formula *F,
                                       const smt::Formula *Given,
                                       const smt::VarTable &VT) {
  SessionQuery Q;
  Q.K = K;
  Q.Fml = F;
  Q.Given = Given;
  Q.Formula = smt::toString(F, VT);
  bool TrivialGiven = !Given || Given->isTrue();
  if (!TrivialGiven)
    Q.GivenText = smt::toString(Given, VT);
  if (K == QueryRecord::Kind::Invariant) {
    Q.Text = "Does \"" + Q.Formula + "\" hold in every execution?";
  } else {
    Q.Text = "Can \"" + Q.Formula + "\" hold in some execution";
    if (!TrivialGiven)
      Q.Text += " in which \"" + Q.GivenText + "\" holds";
    Q.Text += "?";
  }

  std::function<void()> Fire;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (CancelRequested)
      throw support::CancelledError();
    Q.Index = NextQueryIndex++;
    Query = std::move(Q);
    HasQuery = true;
    QueryDelivered = false;
    Answered = false;
    Fire = Opts.OnEvent;
  }
  OwnerCv.notify_all();
  if (Fire)
    Fire();

  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (Answered)
      break;
    bool Expired =
        HasDeadline && std::chrono::steady_clock::now() >= Deadline;
    if (CancelRequested || Expired) {
      HasQuery = false;
      if (Expired && Token)
        Token->cancel(); // make the unwind visible to nested solver loops
      throw support::CancelledError();
    }
    if (HasDeadline)
      WorkerCv.wait_until(Lock, Deadline);
    else
      WorkerCv.wait(Lock);
  }
  HasQuery = false;
  Answered = false;
  return TheAnswer;
}

void InteractiveSession::postDone(TriageReport R) {
  std::function<void()> Fire;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Report = std::move(R);
    Done = true;
    DoneDelivered = false;
    HasQuery = false;
    Fire = Opts.OnEvent;
  }
  OwnerCv.notify_all();
  if (Fire)
    Fire();
}

SessionEvent InteractiveSession::next() {
  std::unique_lock<std::mutex> Lock(Mu);
  OwnerCv.wait(Lock, [&] { return Done || (HasQuery && !Answered); });
  SessionEvent E;
  if (HasQuery && !Answered) {
    E.K = Query.K == QueryRecord::Kind::Invariant
              ? SessionEvent::Kind::AskInvariant
              : SessionEvent::Kind::AskWitness;
    E.Query = Query;
    QueryDelivered = true;
    return E;
  }
  E.K = SessionEvent::Kind::Done;
  E.Report = Report;
  DoneDelivered = true;
  return E;
}

std::optional<SessionEvent> InteractiveSession::poll() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (HasQuery && !Answered && !QueryDelivered) {
    SessionEvent E;
    E.K = Query.K == QueryRecord::Kind::Invariant
              ? SessionEvent::Kind::AskInvariant
              : SessionEvent::Kind::AskWitness;
    E.Query = Query;
    QueryDelivered = true;
    return E;
  }
  if (Done && !DoneDelivered) {
    SessionEvent E;
    E.K = SessionEvent::Kind::Done;
    E.Report = Report;
    DoneDelivered = true;
    return E;
  }
  return std::nullopt;
}

void InteractiveSession::answer(Answer A) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Done)
      throw SessionError("session '" + In.Name + "': answer after done");
    if (!HasQuery || Answered)
      throw SessionError("session '" + In.Name +
                         "': no query is pending (double answer?)");
    TheAnswer = A;
    Answered = true;
  }
  WorkerCv.notify_all();
}

void InteractiveSession::cancel() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Done)
      return;
    CancelRequested = true;
    if (Token)
      Token->cancel();
  }
  WorkerCv.notify_all();
}

bool InteractiveSession::finished() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Done;
}

TriageReport InteractiveSession::result() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Done)
    throw SessionError("session '" + In.Name + "': result() before done");
  return Report;
}
