//===- core/InteractiveSession.h - Pull-based diagnosis sessions -*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 6 loop with its control flow inverted: instead of blocking
/// inside `ErrorDiagnoser::diagnose(Oracle&)` until an in-process callback
/// answers, an InteractiveSession runs the diagnosis pipeline on a
/// session-owned worker thread against a channel-backed oracle that *parks*
/// on a condition variable whenever it needs an answer. The owner of the
/// session pulls events and pushes answers:
///
///   InteractiveSession S({"p1", Source}, Opts);
///   for (;;) {
///     SessionEvent E = S.next();            // blocks until ask or done
///     if (E.K == SessionEvent::Kind::Done)
///       break;                              // E.Report has the verdict
///     S.answer(decide(E.Query));            // un-parks the worker
///   }
///
/// This is what lets the answerer live across a wire (tools/abdiagd), be a
/// machine oracle racing a human, or simply be another thread. Sessions
/// unwind cleanly instead of leaking the worker: a wall-clock deadline
/// (support::CancellationToken plus a timed park) or an explicit cancel()
/// aborts the pipeline mid-query, and the Done event reports Timeout or
/// Cancelled. The final event carries a core::TriageReport, so session
/// verdicts are directly comparable to batch `TriageEngine` rows -- the
/// replay tests assert they are identical.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_INTERACTIVESESSION_H
#define ABDIAG_CORE_INTERACTIVESESSION_H

#include "core/Triage.h"

#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

namespace abdiag::core {

/// Misuse of the session protocol by the *owner* (answer with no pending
/// query, answer after done). Distinct from CancelledError: protocol errors
/// never tear the session down, the caller just gets told off.
class SessionError : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

/// One pending oracle query, rendered for transport: Formula/GivenText are
/// in smt/FormulaParser syntax so a remote client can reconstruct the
/// formulas in its own manager; Fml/Given are the in-process pointers (valid
/// for the session's lifetime, owned by its manager).
struct SessionQuery {
  QueryRecord::Kind K = QueryRecord::Kind::Invariant;
  const smt::Formula *Fml = nullptr;
  const smt::Formula *Given = nullptr; ///< null or True for invariant queries
  std::string Formula;                 ///< parseable rendering of Fml
  std::string GivenText;               ///< parseable rendering of Given ("" if trivial)
  std::string Text;                    ///< human-readable question
  uint64_t Index = 0;                  ///< 0-based query number within the session
};

/// What next()/poll() deliver.
struct SessionEvent {
  enum class Kind : uint8_t { AskInvariant, AskWitness, Done };
  Kind K = Kind::Done;
  SessionQuery Query; ///< valid when K != Done
  TriageReport Report; ///< valid when K == Done
};

/// The program a session diagnoses: inline source (preferred; the daemon's
/// submit message carries the program text) or a file path.
struct SessionInput {
  std::string Name;   ///< display name for the result row
  std::string Source; ///< program text; when empty, Path is loaded instead
  std::string Path;
};

struct InteractiveSessionOptions {
  /// Pipeline knobs for the session's diagnoser (backend, budgets, ...).
  abdiag::Options Pipeline;
  /// Per-attempt wall-clock deadline in milliseconds; 0 disables it. As in
  /// the batch engine, the escalated retry gets a fresh deadline.
  uint64_t DeadlineMs = 0;
  /// Retry Inconclusive outcomes once with 4x budgets (matching the batch
  /// engine, so session verdicts replay batch verdicts exactly).
  bool EscalateOnInconclusive = true;
  /// Fired on the worker thread after each new event becomes available
  /// (ask or done); the daemon uses it to enqueue the session for its
  /// dispatcher. Must not call back into the session (poll() from another
  /// thread instead).
  std::function<void()> OnEvent;
};

/// A single interactive diagnosis session. Construction starts the worker;
/// destruction cancels and joins it. Thread-safe: one thread may pull
/// events while another answers or cancels.
class InteractiveSession {
public:
  InteractiveSession(SessionInput In,
                     InteractiveSessionOptions Opts = InteractiveSessionOptions());
  ~InteractiveSession();
  InteractiveSession(const InteractiveSession &) = delete;
  InteractiveSession &operator=(const InteractiveSession &) = delete;

  /// Blocks until the session has something for the owner: the pending
  /// query (re-delivered as long as it is unanswered) or the Done event
  /// (re-delivered forever).
  SessionEvent next();

  /// Non-blocking variant delivering each event at most once: the pending
  /// query if it has not been handed out by poll() yet, the Done event the
  /// first time it is seen. Returns nullopt while the worker is computing
  /// (or everything was already delivered).
  std::optional<SessionEvent> poll();

  /// Answers the pending query and un-parks the worker. Throws
  /// SessionError when the session is done or no query is pending (the
  /// double-answer path).
  void answer(Answer A);

  /// Requests cancellation: the parked oracle (or the next solver poll)
  /// unwinds, and the Done event follows with TriageStatus::Cancelled.
  /// Idempotent; a no-op once the session finished.
  void cancel();

  /// True once the Done event exists (its delivery state is irrelevant).
  bool finished() const;

  /// The final report; throws SessionError before finished().
  TriageReport result() const;

private:
  class ChannelOracle;

  SessionInput In;
  InteractiveSessionOptions Opts;

  mutable std::mutex Mu;
  std::condition_variable OwnerCv;  ///< signaled when an event is posted
  std::condition_variable WorkerCv; ///< signaled on answer or cancel

  // Pending-query channel (worker writes, owner reads/answers).
  bool HasQuery = false;
  bool QueryDelivered = false; ///< poll() handed it out
  bool Answered = false;
  Answer TheAnswer = Answer::Unknown;
  SessionQuery Query;
  uint64_t NextQueryIndex = 0;

  // Completion.
  bool Done = false;
  bool DoneDelivered = false; ///< poll() handed it out
  TriageReport Report;

  // Cancellation/deadline. The token is re-armed (under Mu) per attempt,
  // mirroring the batch engine's fresh-deadline-per-retry; the parked wait
  // additionally checks the Deadline timepoint directly, because the
  // token's rate-limited clock read is tuned for hot loops, not for a
  // thread that wakes a few times per second.
  bool CancelRequested = false;
  std::optional<support::CancellationToken> Token;
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline;

  std::thread Worker;

  void run();
  Answer ask(QueryRecord::Kind K, const smt::Formula *F,
             const smt::Formula *Given, const smt::VarTable &VT);
  void postDone(TriageReport R);
  void armDeadline();
};

} // namespace abdiag::core

#endif // ABDIAG_CORE_INTERACTIVESESSION_H
