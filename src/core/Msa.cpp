//===- core/Msa.cpp - Minimum satisfying assignments -------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Msa.h"

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <set>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

namespace {

/// A subset of the target's variables represented as a bitmask over the
/// (sorted) variable list, ordered by cost for the best-first search.
struct SearchNode {
  int64_t Cost;
  uint64_t Mask;
  bool operator>(const SearchNode &O) const {
    if (Cost != O.Cost)
      return Cost > O.Cost;
    return Mask > O.Mask; // deterministic tie-break
  }
};

} // namespace

MsaResult abdiag::core::findMsa(DecisionProcedure &S, const Formula *Target,
                                const std::vector<const Formula *> &ConsistWith,
                                const CostFn &Cost, const MsaOptions &Opts) {
  FormulaManager &M = S.manager();
  MsaResult Res;

  const std::vector<VarId> &Fv = freeVarsVec(Target);
  assert(Fv.size() <= 64 && "MSA search limited to 64 target variables");

  // Rename the non-shared variables of each consistency condition apart so
  // "individually satisfiable with sigma" becomes one joint SAT query.
  // Variables of Target stay; everything else gets a per-condition copy.
  std::vector<const Formula *> RenamedConds;
  for (size_t I = 0; I < ConsistWith.size(); ++I) {
    const Formula *C = ConsistWith[I];
    std::unordered_map<VarId, LinearExpr> Renaming;
    for (VarId V : freeVarsVec(C)) {
      if (std::binary_search(Fv.begin(), Fv.end(), V))
        continue;
      VarId Copy = M.vars().getOrCreate(
          M.vars().name(V) + "#c" + std::to_string(I), VarKind::Aux);
      Renaming.emplace(V, LinearExpr::variable(Copy));
    }
    RenamedConds.push_back(substitute(M, C, Renaming));
  }

  // But note: variables of Target that are *not* in the candidate subset V
  // are universally eliminated from Target, yet a consistency condition may
  // still mention them -- those occurrences are existential per condition
  // and must also be renamed. We handle this per subset below by renaming
  // the complement; to keep it cheap we precompute, for each condition, its
  // formula with every Target variable still intact and rename lazily.

  // One incremental session serves every candidate subset: the renamed
  // consistency conditions (and any recurring QE results) are encoded once,
  // engine lemmas persist between candidates, and unsat cores of rejected
  // conjunct sets prune later candidates without a solver call.
  std::unique_ptr<DecisionProcedure::Session> Sess = S.openSession();

  auto TestSubset = [&](uint64_t Mask, MsaCandidate &Out) -> bool {
    std::vector<VarId> Complement, Chosen;
    for (size_t I = 0; I < Fv.size(); ++I) {
      if (Mask & (1ULL << I))
        Chosen.push_back(Fv[I]);
      else
        Complement.push_back(Fv[I]);
    }
    // The incremental path goes through the backend's (memoized) QE hook:
    // lattice neighbours share all but one eliminated variable, and later
    // findMsa calls on the same target (diagnosis rounds grow only the
    // consistency set) replay whole chains.
    const Formula *Psi = Opts.Incremental
                             ? S.eliminateForall(Target, Complement)
                             : eliminateForall(M, Target, Complement);
    if (Psi->isFalse())
      return false;
    // Rename complement variables inside the consistency conditions (they
    // are existential per condition).
    std::vector<const Formula *> Conj{Psi};
    for (size_t I = 0; I < RenamedConds.size(); ++I) {
      std::unordered_map<VarId, LinearExpr> Renaming;
      for (VarId V : Complement) {
        if (!containsVar(RenamedConds[I], V))
          continue;
        VarId Copy = M.vars().getOrCreate(M.vars().name(V) + "#c" +
                                              std::to_string(I) + "e",
                                          VarKind::Aux);
        Renaming.emplace(V, LinearExpr::variable(Copy));
      }
      Conj.push_back(substitute(M, RenamedConds[I], Renaming));
    }
    Model Mo;
    bool Sat = Opts.Incremental ? Sess->check(Conj, &Mo)
                                : S.isSat(M.mkAnd(std::move(Conj)), &Mo);
    if (!Sat)
      return false;
    Out.Vars = Chosen;
    for (VarId V : Chosen)
      Out.Assignment[V] = Mo.count(V) ? Mo.at(V) : 0;
    return true;
  };

  auto MaskCost = [&](uint64_t Mask) {
    int64_t C = 0;
    for (size_t I = 0; I < Fv.size(); ++I)
      if (Mask & (1ULL << I))
        C += Cost(Fv[I]);
    return C;
  };

  // Best-first search over the subset lattice. Children extend a mask only
  // with variables beyond its highest set bit, so each subset is visited
  // exactly once.
  std::priority_queue<SearchNode, std::vector<SearchNode>, std::greater<>>
      Queue;
  Queue.push({0, 0});
  size_t Tested = 0;
  while (!Queue.empty() && Tested < Opts.MaxSubsets) {
    support::pollCancellation(S.cancellation());
    SearchNode N = Queue.top();
    Queue.pop();
    if (Res.Found && N.Cost > Res.Cost)
      break; // all minimum-cost subsets enumerated
    ++Tested;
    MsaCandidate Cand;
    Cand.Cost = N.Cost;
    if (TestSubset(N.Mask, Cand)) {
      if (!Res.Found) {
        Res.Found = true;
        Res.Cost = N.Cost;
      }
      if (Res.Candidates.size() < Opts.MaxCandidates)
        Res.Candidates.push_back(std::move(Cand));
      continue; // supersets cost more; no need to expand
    }
    size_t Start = 0;
    if (N.Mask != 0)
      Start = 64 - static_cast<size_t>(__builtin_clzll(N.Mask));
    for (size_t I = Start; I < Fv.size(); ++I) {
      uint64_t Child = N.Mask | (1ULL << I);
      Queue.push({MaskCost(Child), Child});
    }
  }
  return Res;
}
