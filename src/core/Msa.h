//===- core/Msa.h - Minimum satisfying assignments --------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimum satisfying assignments (Definitions 4-6 of the paper; algorithm
/// in the spirit of "Minimum Satisfying Assignments for SMT", Dillig,
/// Dillig, McMillan, Aiken, CAV 2012).
///
/// A partial assignment sigma *satisfies* phi if sigma(phi) is valid (true
/// for every value of the unassigned variables); its cost is the sum of the
/// per-variable costs of the assigned variables. Because the cost depends
/// only on the *set* of assigned variables, the search enumerates variable
/// subsets V in order of increasing cost and accepts the first V for which
///
///     QE(forall (X \ V). phi)  ∧  (renamed consistency side conditions)
///
/// is satisfiable; the model restricted to V is the assignment. Consistency
/// side conditions implement Definition 6 plus the witness-set and
/// potential-invariant requirements of Sections 4.3/5: each condition C must
/// be individually satisfiable together with sigma, which is encoded by
/// renaming the non-V variables of each C apart and conjoining.
///
/// All minimum-cost subsets are reported so the abduction layer can apply
/// the "weakest" tie-break of Definitions 3/10.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_MSA_H
#define ABDIAG_CORE_MSA_H

#include "smt/DecisionProcedure.h"
#include "smt/Formula.h"

#include <functional>
#include <vector>

namespace abdiag::core {

/// Per-variable cost function (Definitions 2 and 9 instantiate this).
using CostFn = std::function<int64_t(smt::VarId)>;

/// One minimum satisfying assignment candidate.
struct MsaCandidate {
  std::vector<smt::VarId> Vars; ///< assigned variable set, sorted
  smt::Model Assignment;        ///< values for exactly those variables
  int64_t Cost = 0;
};

/// Result of the MSA search: all distinct minimum-cost variable subsets
/// admitting a consistent satisfying assignment.
struct MsaResult {
  bool Found = false;
  int64_t Cost = 0;
  std::vector<MsaCandidate> Candidates;
};

/// Limits for the subset search.
struct MsaOptions {
  /// Maximum number of variable subsets to test before giving up.
  size_t MaxSubsets = 4096;
  /// Collect at most this many minimum-cost candidates.
  size_t MaxCandidates = 8;
  /// Decide subset queries through one incremental backend session (shared
  /// conjuncts encoded once, per-candidate activation via assumptions,
  /// rejected conjunct sets remembered as unsat cores) instead of a fresh
  /// solver query per candidate.
  bool Incremental = true;
};

/// Finds minimum satisfying assignments of \p Target consistent with every
/// formula in \p ConsistWith (each one individually, Definition 6).
MsaResult findMsa(smt::DecisionProcedure &S, const smt::Formula *Target,
                  const std::vector<const smt::Formula *> &ConsistWith,
                  const CostFn &Cost, const MsaOptions &Opts = MsaOptions());

} // namespace abdiag::core

#endif // ABDIAG_CORE_MSA_H
