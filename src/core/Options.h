//===- core/Options.h - The library's one options aggregate -----*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `abdiag::Options`: every user-tunable knob of the end-to-end pipeline in
/// one flat, documented aggregate. This replaces the old nesting
/// (`ErrorDiagnoser::Options.Analyzer`, `.Diagnosis`, plus `MsaOptions`
/// threaded through the `Abducer`): callers set flat fields, or chain the
/// named setters, and the per-layer option structs are derived views.
///
/// \code
///   abdiag::Options O;
///   O.maxQueries(32).decomposeQueries(false).costs(core::CostModel::Uniform);
///   abdiag::core::ErrorDiagnoser D(O);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_OPTIONS_H
#define ABDIAG_CORE_OPTIONS_H

#include "analysis/SymbolicAnalyzer.h"
#include "core/Diagnosis.h"

#include <cstddef>
#include <string>

namespace abdiag {

/// All pipeline knobs, flat. Field groups, in pipeline order: program
/// loading, Section 3 analysis, the Figure 6 diagnosis loop, and the MSA
/// subset search underneath abduction.
struct Options {
  //===--- decision procedure ----------------------------------------------===
  /// Which decision-procedure backend decides every satisfiability,
  /// validity and QE query of the pipeline (see smt/DecisionProcedure.h):
  /// "native" (default), "z3" (needs ABDIAG_WITH_Z3=ON), or "differential"
  /// (native and Z3 side by side, failing loudly on any disagreement).
  std::string Backend = "native";
  /// Total simplex pivot budget per LIA conjunction check in the native
  /// engine (the escalated retry pass gets 25x this). Exhaustion is counted
  /// in SolverStats::PivotLimitHits and falls back to the complete Cooper
  /// solver, so this trades speed against fallback frequency, never
  /// soundness. Ignored by engines without the knob (Z3).
  int SimplexMaxPivots = 20000;

  //===--- loading ---------------------------------------------------------===
  /// Infer @p' annotations for un-annotated loops with the interval
  /// abstract interpreter.
  bool AutoAnnotate = true;
  /// Lower calls by syntactic inlining at load time (the legacy pipeline)
  /// instead of the default summary-based interprocedural analysis.
  /// Loading a recursive program fails with a positioned diagnostic when
  /// this is on; the summary pipeline handles recursion via opaque call
  /// results.
  bool InlineCalls = false;

  //===--- Section 3 analysis ---------------------------------------------===
  /// Conjoin the negated loop condition (over the post-loop store) to I.
  /// Off by default for paper fidelity (the paper leaves exit conditions to
  /// the @p' annotation).
  bool AssumeLoopExitCondition = false;
  /// Prune value-set entries whose guard is unsatisfiable (keeps value sets
  /// small on branchy code).
  bool PruneInfeasibleGuards = true;

  //===--- Figure 6 diagnosis loop ----------------------------------------===
  /// Maximum Figure 6 iterations before giving up.
  int MaxIterations = 16;
  /// Maximum individual oracle interactions.
  int MaxQueries = 64;
  /// Section 4.4 decomposition of boolean structure into subqueries.
  bool DecomposeQueries = true;
  /// Integrate facts learned from subqueries (Section 4.4 optimization).
  bool LearnFromSubqueries = true;
  /// Simplify abduced formulas modulo I (Remark after Lemma 3).
  bool SimplifyQueries = true;
  /// Cost model for abduction (E5 ablation; Paper = Definitions 2/9).
  core::CostModel Costs = core::CostModel::Paper;

  //===--- MSA subset search ----------------------------------------------===
  /// Decide subset queries through one incremental Solver::Session.
  bool IncrementalMsa = true;
  /// Maximum number of variable subsets to test before giving up.
  size_t MsaMaxSubsets = 4096;
  /// Collect at most this many minimum-cost candidates.
  size_t MsaMaxCandidates = 8;

  //===--- named-setter chaining ------------------------------------------===
  Options &backend(std::string Name) {
    Backend = std::move(Name);
    return *this;
  }
  Options &simplexMaxPivots(int N) { SimplexMaxPivots = N; return *this; }
  Options &autoAnnotate(bool V) { AutoAnnotate = V; return *this; }
  Options &inlineCalls(bool V) { InlineCalls = V; return *this; }
  Options &assumeLoopExitCondition(bool V) {
    AssumeLoopExitCondition = V;
    return *this;
  }
  Options &pruneInfeasibleGuards(bool V) {
    PruneInfeasibleGuards = V;
    return *this;
  }
  Options &maxIterations(int N) { MaxIterations = N; return *this; }
  Options &maxQueries(int N) { MaxQueries = N; return *this; }
  Options &decomposeQueries(bool V) { DecomposeQueries = V; return *this; }
  Options &learnFromSubqueries(bool V) {
    LearnFromSubqueries = V;
    return *this;
  }
  Options &simplifyQueries(bool V) { SimplifyQueries = V; return *this; }
  Options &costs(core::CostModel M) { Costs = M; return *this; }
  Options &incrementalMsa(bool V) { IncrementalMsa = V; return *this; }
  Options &msaMaxSubsets(size_t N) { MsaMaxSubsets = N; return *this; }
  Options &msaMaxCandidates(size_t N) { MsaMaxCandidates = N; return *this; }

  //===--- per-layer views -------------------------------------------------===
  analysis::AnalyzerOptions analyzerOptions() const {
    analysis::AnalyzerOptions A;
    A.AssumeLoopExitCondition = AssumeLoopExitCondition;
    A.PruneInfeasibleGuards = PruneInfeasibleGuards;
    return A;
  }
  core::DiagnosisConfig diagnosisConfig() const {
    core::DiagnosisConfig C;
    C.MaxIterations = MaxIterations;
    C.MaxQueries = MaxQueries;
    C.DecomposeQueries = DecomposeQueries;
    C.LearnFromSubqueries = LearnFromSubqueries;
    C.SimplifyQueries = SimplifyQueries;
    C.Costs = Costs;
    C.IncrementalMsa = IncrementalMsa;
    C.MsaMaxSubsets = MsaMaxSubsets;
    C.MsaMaxCandidates = MsaMaxCandidates;
    return C;
  }
};

} // namespace abdiag

#endif // ABDIAG_CORE_OPTIONS_H
