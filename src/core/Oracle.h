//===- core/Oracle.h - Query-answering oracles ------------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle abstraction: whoever answers the diagnosis engine's queries.
/// In the paper this is a human programmer; in this library it can also be
/// a scripted answer list (tests), an exhaustive concrete-execution oracle
/// (machine stand-in, see core/ConcreteOracle.h), a simulated noisy human
/// (user study), or an interactive stdin session (examples).
///
/// Semantics (Definitions 7 and 11):
///  * isInvariant(F): Yes means F holds in ALL executions; No means at
///    least one execution violates F.
///  * isPossible(F, Given): Yes means SOME execution satisfies F (and
///    Given); No means no execution satisfies F together with Given.
/// Unknown is the Section 5 "I don't know".
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_ORACLE_H
#define ABDIAG_CORE_ORACLE_H

#include "core/Answer.h"
#include "smt/Formula.h"

#include <deque>
#include <functional>

namespace abdiag::core {

/// Interface for answering invariant and witness queries.
class Oracle {
public:
  /// The shared three-valued answer domain (core/Answer.h); kept as a
  /// nested alias so `Oracle::Answer::Yes` spellings stay valid.
  using Answer = abdiag::core::Answer;

  virtual ~Oracle();

  /// Does \p F hold in every execution?
  virtual Answer isInvariant(const smt::Formula *F) = 0;

  /// Can \p F hold in some execution in which \p Given also holds?
  /// \p Given may be the True formula.
  virtual Answer isPossible(const smt::Formula *F,
                            const smt::Formula *Given) = 0;
};

/// What a ScriptedOracle does once its answer list runs dry.
enum class ScriptExhaustion : uint8_t {
  Abort,   ///< hard-abort the process: a test script that runs out is a bug
  Unknown, ///< degrade to "I don't know" (the Section 5 path); a daemon-side
           ///< replay oracle must never take the process down
};

/// Replays a fixed sequence of answers (tests, replay clients). The
/// exhaustion policy decides between aborting (the historical default) and
/// answering Unknown forever after.
class ScriptedOracle : public Oracle {
  std::deque<Answer> Script;
  ScriptExhaustion OnExhausted;
  size_t ExhaustedQueries_ = 0;

public:
  explicit ScriptedOracle(std::deque<Answer> Script,
                          ScriptExhaustion OnExhausted = ScriptExhaustion::Abort)
      : Script(std::move(Script)), OnExhausted(OnExhausted) {}

  Answer isInvariant(const smt::Formula *) override { return next(); }
  Answer isPossible(const smt::Formula *, const smt::Formula *) override {
    return next();
  }
  bool exhausted() const { return Script.empty(); }
  /// Queries answered Unknown after the script ran out (always 0 under
  /// ScriptExhaustion::Abort).
  size_t exhaustedQueries() const { return ExhaustedQueries_; }

private:
  Answer next();
};

/// Delegates to callables; convenient for ad-hoc oracles.
class FunctionOracle : public Oracle {
public:
  using InvFn = std::function<Answer(const smt::Formula *)>;
  using PosFn =
      std::function<Answer(const smt::Formula *, const smt::Formula *)>;

  FunctionOracle(InvFn Inv, PosFn Pos)
      : Inv(std::move(Inv)), Pos(std::move(Pos)) {}

  Answer isInvariant(const smt::Formula *F) override { return Inv(F); }
  Answer isPossible(const smt::Formula *F, const smt::Formula *G) override {
    return Pos(F, G);
  }

private:
  InvFn Inv;
  PosFn Pos;
};

} // namespace abdiag::core

#endif // ABDIAG_CORE_ORACLE_H
