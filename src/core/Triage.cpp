//===- core/Triage.cpp - Parallel triage of report queues --------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Triage.h"

#include "lang/AstPrinter.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

using namespace abdiag;
using namespace abdiag::core;

const char *abdiag::core::triageStatusName(TriageStatus S) {
  switch (S) {
  case TriageStatus::Diagnosed:
    return "diagnosed";
  case TriageStatus::LoadError:
    return "load_error";
  case TriageStatus::Timeout:
    return "timeout";
  case TriageStatus::Crashed:
    return "crashed";
  case TriageStatus::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

const char *abdiag::core::diagnosisVerdictName(DiagnosisOutcome O) {
  switch (O) {
  case DiagnosisOutcome::Discharged:
    return "false_alarm";
  case DiagnosisOutcome::Validated:
    return "real_bug";
  case DiagnosisOutcome::Inconclusive:
    return "inconclusive";
  }
  return "inconclusive";
}

Answer UnknownInjectingOracle::inject(Answer A) {
  uint64_t Idx = QueryIndex++;
  if (Rate <= 0.0)
    return A;
  // FNV-1a over the salt and the query index; stable across platforms.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint8_t B) {
    H ^= B;
    H *= 1099511628211ull;
  };
  for (char C : Salt)
    Mix(static_cast<uint8_t>(C));
  for (int I = 0; I < 8; ++I)
    Mix(static_cast<uint8_t>(Idx >> (8 * I)));
  double U = static_cast<double>(H % 1000000ull) / 1000000.0;
  return U < Rate ? Answer::Unknown : A;
}

void abdiag::core::countAnswers(const DiagnosisResult &Res, TriageReport &R) {
  R.Queries = Res.Transcript.size();
  R.Iterations = Res.Iterations;
  R.PotentialInvariants = Res.PotentialInvariantCount;
  R.PotentialWitnesses = Res.PotentialWitnessCount;
  for (const QueryRecord &Q : Res.Transcript) {
    switch (Q.Ans) {
    case Answer::Yes:
      ++R.AnswersYes;
      break;
    case Answer::No:
      ++R.AnswersNo;
      break;
    case Answer::Unknown:
      ++R.AnswersUnknown;
      break;
    }
  }
}

TriageReport TriageEngine::triageOne(ErrorDiagnoser &D,
                                     const TriageRequest &Req) const {
  TriageReport R;
  R.Name = Req.Name;
  R.Path = Req.Path;

  auto Start = std::chrono::steady_clock::now();
  smt::SolverStats Before = D.procedure().stats();

  // One token per attempt; the backend only borrows the pointer, so it must
  // be cleared before the token goes out of scope.
  std::optional<support::CancellationToken> Token;
  auto ArmDeadline = [&] {
    if (!Opts.DeadlineMs)
      return;
    Token.emplace(std::chrono::milliseconds(Opts.DeadlineMs));
    D.procedure().setCancellation(&*Token);
  };

  try {
    ArmDeadline();
    if (LoadResult L = D.loadFile(Req.Path); !L) {
      R.Status = TriageStatus::LoadError;
      R.LoadDiag = L.Diagnostic;
      R.Message = L.message();
    } else {
      R.Loc = lang::programLoc(D.program());
      R.SummariesComputed = D.analysis().SummariesComputed;
      R.SummariesInstantiated = D.analysis().SummariesInstantiated;
      R.OpaqueCalls = D.analysis().OpaqueCallResults;
      if (D.dischargedByAnalysis()) {
        R.Status = TriageStatus::Diagnosed;
        R.Outcome = DiagnosisOutcome::Discharged;
        R.AnalysisAlone = true;
      } else if (D.validatedByAnalysis()) {
        R.Status = TriageStatus::Diagnosed;
        R.Outcome = DiagnosisOutcome::Validated;
        R.AnalysisAlone = true;
      } else {
        // makeConcreteOracle picks up the solver's token, so oracle
        // precomputation counts against the deadline too.
        std::unique_ptr<ConcreteOracle> Oracle =
            D.makeConcreteOracle(Opts.Oracle);
        // The injection salt is the report *name*, not the queue position,
        // so verdicts are independent of scheduling and --jobs.
        UnknownInjectingOracle Injected(*Oracle, Req.Name,
                                        Opts.InjectUnknownRate);
        core::Oracle &Asked =
            Opts.InjectUnknownRate > 0.0
                ? static_cast<core::Oracle &>(Injected)
                : static_cast<core::Oracle &>(*Oracle);
        DiagnosisResult Res = D.diagnose(Asked);
        if (Res.Outcome == DiagnosisOutcome::Inconclusive &&
            Opts.EscalateOnInconclusive) {
          R.Escalated = true;
          ArmDeadline(); // fresh deadline for the retry
          DiagnosisConfig Cfg = Opts.Pipeline.diagnosisConfig();
          Cfg.MaxIterations *= 4;
          Cfg.MaxQueries *= 4;
          Cfg.MsaMaxSubsets *= 4;
          Res = D.diagnoseWith(Cfg, Asked);
        }
        R.Status = TriageStatus::Diagnosed;
        R.Outcome = Res.Outcome;
        countAnswers(Res, R);
      }
    }
  } catch (const support::CancelledError &) {
    R.Status = TriageStatus::Timeout;
    R.Message =
        "deadline of " + std::to_string(Opts.DeadlineMs) + " ms exceeded";
  } catch (const std::exception &E) {
    R.Status = TriageStatus::Crashed;
    R.Message = E.what();
  } catch (...) {
    R.Status = TriageStatus::Crashed;
    R.Message = "unknown exception";
  }

  D.procedure().setCancellation(nullptr);
  R.Solver = D.procedure().stats();
  R.Solver -= Before;
  R.Backend = D.procedure().name();
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  return R;
}

TriageResult TriageEngine::run(const std::vector<TriageRequest> &Queue,
                               const RowCallback &OnRow) {
  TriageResult Result;
  Result.Reports.resize(Queue.size());

  // Validate the configured backend on the calling thread before any worker
  // spawns: an unknown or unbuilt backend must surface as a catchable
  // exception here, not terminate the process from a worker's diagnoser
  // constructor.
  {
    smt::FormulaManager Probe;
    smt::createBackend(Opts.Pipeline.Backend, Probe);
  }

  unsigned Jobs = Opts.Jobs ? Opts.Jobs : std::thread::hardware_concurrency();
  if (Jobs == 0)
    Jobs = 1;
  if (Jobs > Queue.size() && !Queue.empty())
    Jobs = static_cast<unsigned>(Queue.size());

  auto Start = std::chrono::steady_clock::now();
  std::atomic<size_t> Next{0};
  std::mutex Mu; // guards Result and the row callback

  auto Worker = [&](int W) {
    // One diagnoser per worker, reused across reports: the hash-consed
    // arena, verdict cache, and QE memo stay warm. Structural hash-consing
    // makes the caches sound across programs.
    auto D = std::make_unique<ErrorDiagnoser>(Opts.Pipeline);
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Queue.size())
        break;
      TriageReport R = triageOne(*D, Queue[I]);
      R.Worker = W;
      // A cancelled or crashed pipeline may have been unwound mid-update;
      // rebuild the worker's diagnoser so later reports see clean state.
      if (R.Status == TriageStatus::Timeout ||
          R.Status == TriageStatus::Crashed)
        D = std::make_unique<ErrorDiagnoser>(Opts.Pipeline);
      std::lock_guard<std::mutex> Lock(Mu);
      Result.Reports[I] = std::move(R);
      if (OnRow)
        OnRow(Result.Reports[I]);
    }
  };

  if (Jobs <= 1) {
    Worker(0);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Jobs);
    for (unsigned W = 0; W < Jobs; ++W)
      Pool.emplace_back(Worker, static_cast<int>(W));
    for (std::thread &T : Pool)
      T.join();
  }

  TriageSummary &Sum = Result.Summary;
  for (const TriageReport &R : Result.Reports) {
    switch (R.Status) {
    case TriageStatus::Diagnosed:
      switch (R.Outcome) {
      case DiagnosisOutcome::Validated:
        ++Sum.RealBugs;
        break;
      case DiagnosisOutcome::Discharged:
        ++Sum.FalseAlarms;
        break;
      case DiagnosisOutcome::Inconclusive:
        ++Sum.Inconclusive;
        break;
      }
      break;
    case TriageStatus::LoadError:
      ++Sum.LoadErrors;
      break;
    case TriageStatus::Timeout:
      ++Sum.Timeouts;
      break;
    case TriageStatus::Crashed:
      ++Sum.Crashes;
      break;
    case TriageStatus::Cancelled:
      ++Sum.Cancellations;
      break;
    }
    Sum.Solver += R.Solver;
  }
  Sum.WallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
  return Result;
}
