//===- core/Triage.h - Parallel triage of report queues ---------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The triage engine: fan a queue of `.adg` potential-error reports across a
/// fixed pool of workers, each owning one `ErrorDiagnoser` (and hence one
/// `smt::DecisionProcedure` backend and one hash-consed `FormulaManager`) so arenas and caches
/// stay thread-local and warm across reports. Every report runs under an
/// optional wall-clock deadline enforced by a cooperative
/// `support::CancellationToken` polled inside the MSA subset search, Cooper
/// elimination, the SAT solve loops, and concrete-oracle enumeration.
///
/// Each report produces a structured `TriageReport`:
///
///   Diagnosed  -> the Figure 6 loop ran to a `DiagnosisOutcome` (reports
///                 that come back Inconclusive get one budget-escalation
///                 retry with 4x iteration/query/subset budgets first)
///   LoadError  -> the file did not parse; `LoadDiag` has line/column
///   Timeout    -> the per-report deadline expired (the worker's diagnoser
///                 is rebuilt afterwards for isolation)
///   Crashed    -> the pipeline threw; `Message` has the exception text
///
/// A timed-out or crashed report never takes the rest of the batch down.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_CORE_TRIAGE_H
#define ABDIAG_CORE_TRIAGE_H

#include "core/ErrorDiagnoser.h"

#include <functional>
#include <string>
#include <vector>

namespace abdiag::core {

/// One queue entry: a report file plus the display name for output rows.
struct TriageRequest {
  std::string Path;
  std::string Name; ///< defaults to Path when empty

  TriageRequest() = default;
  TriageRequest(std::string Path, std::string Name = "")
      : Path(std::move(Path)), Name(std::move(Name)) {
    if (this->Name.empty())
      this->Name = this->Path;
  }
};

/// What happened to one report (orthogonal to the diagnosis outcome).
enum class TriageStatus : uint8_t {
  Diagnosed, ///< pipeline completed; see Outcome
  LoadError, ///< parse/IO failure; see LoadDiag
  Timeout,   ///< per-report deadline expired
  Crashed,   ///< pipeline threw an unexpected exception
  Cancelled  ///< explicitly cancelled (interactive sessions only; the batch
             ///< engine never produces it)
};

const char *triageStatusName(TriageStatus S);

/// Stable verdict spelling for Diagnosed rows ("false_alarm", "real_bug",
/// "inconclusive"), shared by the triage tool's JSONL rows and the abdiagd
/// wire protocol.
const char *diagnosisVerdictName(DiagnosisOutcome O);

struct TriageReport;
/// Fills Queries/Iterations and the per-answer counters of a report row
/// from a completed diagnosis run (shared by the batch engine and
/// core::InteractiveSession).
void countAnswers(const DiagnosisResult &Res, TriageReport &R);

/// Structured outcome of triaging one report.
struct TriageReport {
  std::string Name;
  std::string Path;
  TriageStatus Status = TriageStatus::Crashed;
  /// Valid only when Status == Diagnosed.
  DiagnosisOutcome Outcome = DiagnosisOutcome::Inconclusive;
  /// Human-readable detail for LoadError / Timeout / Crashed rows.
  std::string Message;
  /// Structured diagnostic (line/column) when Status == LoadError.
  lang::Diag LoadDiag;
  size_t Loc = 0;
  size_t Queries = 0;
  /// Oracle answers by value (core::Answer), summed over the transcript;
  /// AnswersYes + AnswersNo + AnswersUnknown == Queries for Diagnosed rows.
  size_t AnswersYes = 0;
  size_t AnswersNo = 0;
  size_t AnswersUnknown = 0;
  /// Sizes of the Section 5 potential-invariant/-witness sets at the end of
  /// the (final) diagnosis run; the sets only grow, so these are peaks.
  size_t PotentialInvariants = 0;
  size_t PotentialWitnesses = 0;
  /// Interprocedural analysis work for this report (deterministic): callees
  /// analyzed once, call sites expanded from summaries, and calls modeled by
  /// an opaque result variable (recursion).
  uint32_t SummariesComputed = 0;
  uint32_t SummariesInstantiated = 0;
  uint32_t OpaqueCalls = 0;
  int Iterations = 0;
  /// True when the budget-escalation retry ran.
  bool Escalated = false;
  /// True when the symbolic analysis alone decided the report (no queries).
  bool AnalysisAlone = false;
  double WallMs = 0.0;
  /// Index of the worker that processed this report.
  int Worker = -1;
  /// Decision-procedure counter *delta* attributable to this report
  /// (SolverStats::operator-= against the worker's pre-report snapshot).
  smt::SolverStats Solver;
  /// Name of the backend that decided this report ("native", "z3", ...).
  std::string Backend;
};

/// Engine configuration.
struct TriageOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned Jobs = 1;
  /// Per-report wall-clock deadline in milliseconds; 0 disables it. The
  /// escalated retry, when it runs, gets a fresh deadline of its own.
  uint64_t DeadlineMs = 0;
  /// Retry Inconclusive reports once with 4x iteration/query/subset budgets.
  bool EscalateOnInconclusive = true;
  /// Pipeline knobs shared by every worker's diagnoser.
  abdiag::Options Pipeline;
  /// Bounds for the concrete-execution oracle (its cancellation token is
  /// installed by the engine; any value set here is ignored).
  ConcreteOracleConfig Oracle;
  /// Fraction (0..1) of oracle answers overridden to Unknown, exercising
  /// the Section 5 don't-know path. Selection is a deterministic hash of
  /// the report name and per-report query index, so verdicts are identical
  /// across --jobs levels and across runs.
  double InjectUnknownRate = 0.0;
};

/// Oracle decorator that turns a deterministic pseudo-random subset of
/// answers into Unknown (see TriageOptions::InjectUnknownRate). The choice
/// depends only on (Salt, per-oracle query index), never on wall clock or
/// thread schedule.
class UnknownInjectingOracle : public Oracle {
public:
  UnknownInjectingOracle(Oracle &Inner, const std::string &Salt, double Rate)
      : Inner(Inner), Salt(Salt), Rate(Rate) {}

  Answer isInvariant(const smt::Formula *F) override {
    return inject(Inner.isInvariant(F));
  }
  Answer isPossible(const smt::Formula *F, const smt::Formula *Given) override {
    return inject(Inner.isPossible(F, Given));
  }

private:
  Oracle &Inner;
  std::string Salt;
  double Rate;
  uint64_t QueryIndex = 0;

  Answer inject(Answer A);
};

/// Aggregate over one run() call.
struct TriageSummary {
  size_t RealBugs = 0;
  size_t FalseAlarms = 0;
  size_t Inconclusive = 0;
  size_t LoadErrors = 0;
  size_t Timeouts = 0;
  size_t Crashes = 0;
  size_t Cancellations = 0;
  /// Sum of per-report solver deltas (SolverStats::operator+=).
  smt::SolverStats Solver;
  double WallMs = 0.0;
};

/// Result of one run(): per-report rows in queue order plus the aggregate.
struct TriageResult {
  std::vector<TriageReport> Reports;
  TriageSummary Summary;
};

class TriageEngine {
public:
  /// Called as each report finishes, serialized under the engine's mutex
  /// (safe to write to a shared stream). Reports may complete out of queue
  /// order when Jobs > 1.
  using RowCallback = std::function<void(const TriageReport &)>;

  explicit TriageEngine(TriageOptions Opts = TriageOptions())
      : Opts(std::move(Opts)) {}

  /// Triage the whole queue. Blocks until every report has a row.
  TriageResult run(const std::vector<TriageRequest> &Queue,
                   const RowCallback &OnRow = RowCallback());

private:
  TriageOptions Opts;

  TriageReport triageOne(ErrorDiagnoser &D, const TriageRequest &Req) const;
};

} // namespace abdiag::core

#endif // ABDIAG_CORE_TRIAGE_H
