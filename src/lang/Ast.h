//===- lang/Ast.h - AST for the paper's mini-language -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the Section 2 language of the paper:
///
///   Program    P ::= lambda a⃗. (let v⃗ in (s; check(p)))
///   Statement  s ::= v = e | skip | s1; s2 | if (p) s1 else s2
///                  | while^rho (p) { s } [@ p']
///   Expression e ::= v | c | e1 + e2 | e1 - e2 | e1 * e2
///   Predicate  p ::= e1 ⊘ e2 | p1 && p2 | p1 || p2 | !p
///
/// with three pragmatic extensions used by the benchmarks (all of which the
/// paper's implementation section mentions for real C code):
///   * `assume(p)` records environment facts (e.g. unsigned inputs,
///     argc/argv relationships) as invariants;
///   * `havoc()` is an expression with an unknown value, modeling calls to
///     un-analyzed library functions — each occurrence becomes an
///     abstraction variable;
///   * general multiplication `e1 * e2`; when both sides are non-constant
///     the symbolic analysis models the result with an abstraction variable
///     (the alpha_{n*n} of the paper's introduction).
///
/// Nodes are arena-allocated and immutable after construction; kind
/// discriminators with `classof` enable isa<>/dyn_cast<>.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_AST_H
#define ABDIAG_LANG_AST_H

#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace abdiag::lang {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t { VarRef, IntLit, Binary, Havoc };
enum class BinOp : uint8_t { Add, Sub, Mul };

/// Base class of expressions.
class Expr {
  ExprKind Kind;

protected:
  explicit Expr(ExprKind K) : Kind(K) {}

public:
  virtual ~Expr() = default;
  ExprKind kind() const { return Kind; }
};

/// Reference to a program variable (input or local).
class VarRefExpr : public Expr {
  std::string Name;

public:
  explicit VarRefExpr(std::string Name)
      : Expr(ExprKind::VarRef), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }
};

/// Integer constant.
class IntLitExpr : public Expr {
  int64_t Value;

public:
  explicit IntLitExpr(int64_t Value) : Expr(ExprKind::IntLit), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }
};

/// Binary arithmetic.
class BinaryExpr : public Expr {
  BinOp Op;
  const Expr *Lhs;
  const Expr *Rhs;

public:
  BinaryExpr(BinOp Op, const Expr *Lhs, const Expr *Rhs)
      : Expr(ExprKind::Binary), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinOp op() const { return Op; }
  const Expr *lhs() const { return Lhs; }
  const Expr *rhs() const { return Rhs; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }
};

/// An unknown value (un-analyzed library call result). Each syntactic
/// occurrence carries a unique id used to name its abstraction variable.
class HavocExpr : public Expr {
  uint32_t SiteId;

public:
  explicit HavocExpr(uint32_t SiteId) : Expr(ExprKind::Havoc), SiteId(SiteId) {}
  uint32_t siteId() const { return SiteId; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Havoc; }
};

//===----------------------------------------------------------------------===//
// Predicates
//===----------------------------------------------------------------------===//

enum class PredKind : uint8_t { Compare, Logical, Not, BoolLit };
enum class CmpOp : uint8_t { Lt, Gt, Le, Ge, Eq, Ne };

/// Base class of predicates.
class Pred {
  PredKind Kind;

protected:
  explicit Pred(PredKind K) : Kind(K) {}

public:
  virtual ~Pred() = default;
  PredKind kind() const { return Kind; }
};

/// Comparison between two integer expressions.
class ComparePred : public Pred {
  CmpOp Op;
  const Expr *Lhs;
  const Expr *Rhs;

public:
  ComparePred(CmpOp Op, const Expr *Lhs, const Expr *Rhs)
      : Pred(PredKind::Compare), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  CmpOp op() const { return Op; }
  const Expr *lhs() const { return Lhs; }
  const Expr *rhs() const { return Rhs; }
  static bool classof(const Pred *P) { return P->kind() == PredKind::Compare; }
};

/// Conjunction or disjunction.
class LogicalPred : public Pred {
  bool IsAnd;
  const Pred *Lhs;
  const Pred *Rhs;

public:
  LogicalPred(bool IsAnd, const Pred *Lhs, const Pred *Rhs)
      : Pred(PredKind::Logical), IsAnd(IsAnd), Lhs(Lhs), Rhs(Rhs) {}
  bool isAnd() const { return IsAnd; }
  const Pred *lhs() const { return Lhs; }
  const Pred *rhs() const { return Rhs; }
  static bool classof(const Pred *P) { return P->kind() == PredKind::Logical; }
};

/// Negation.
class NotPred : public Pred {
  const Pred *Sub;

public:
  explicit NotPred(const Pred *Sub) : Pred(PredKind::Not), Sub(Sub) {}
  const Pred *sub() const { return Sub; }
  static bool classof(const Pred *P) { return P->kind() == PredKind::Not; }
};

/// Boolean literal (true/false).
class BoolLitPred : public Pred {
  bool Value;

public:
  explicit BoolLitPred(bool Value) : Pred(PredKind::BoolLit), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const Pred *P) { return P->kind() == PredKind::BoolLit; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t { Assign, Skip, Block, If, While, Assume, Call };

/// Base class of statements.
class Stmt {
  StmtKind Kind;

protected:
  explicit Stmt(StmtKind K) : Kind(K) {}

public:
  virtual ~Stmt() = default;
  StmtKind kind() const { return Kind; }
};

/// Assignment v = e.
class AssignStmt : public Stmt {
  std::string Var;
  const Expr *Value;

public:
  AssignStmt(std::string Var, const Expr *Value)
      : Stmt(StmtKind::Assign), Var(std::move(Var)), Value(Value) {}
  const std::string &var() const { return Var; }
  const Expr *value() const { return Value; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }
};

/// No-op.
class SkipStmt : public Stmt {
public:
  SkipStmt() : Stmt(StmtKind::Skip) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Skip; }
};

/// Statement sequence.
class BlockStmt : public Stmt {
  std::vector<const Stmt *> Stmts;

public:
  explicit BlockStmt(std::vector<const Stmt *> Stmts)
      : Stmt(StmtKind::Block), Stmts(std::move(Stmts)) {}
  const std::vector<const Stmt *> &stmts() const { return Stmts; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }
};

/// Conditional.
class IfStmt : public Stmt {
  const Pred *Cond;
  const Stmt *Then;
  const Stmt *Else; // may be null

public:
  IfStmt(const Pred *Cond, const Stmt *Then, const Stmt *Else)
      : Stmt(StmtKind::If), Cond(Cond), Then(Then), Else(Else) {}
  const Pred *cond() const { return Cond; }
  const Stmt *thenStmt() const { return Then; }
  const Stmt *elseStmt() const { return Else; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }
};

/// While loop with unique id `rho` and optional postcondition annotation
/// `@ [p']` obtained from an external sound static analysis.
class WhileStmt : public Stmt {
  uint32_t LoopId;
  const Pred *Cond;
  const Stmt *Body;
  const Pred *Annot; // may be null

public:
  WhileStmt(uint32_t LoopId, const Pred *Cond, const Stmt *Body,
            const Pred *Annot)
      : Stmt(StmtKind::While), LoopId(LoopId), Cond(Cond), Body(Body),
        Annot(Annot) {}
  uint32_t loopId() const { return LoopId; }
  const Pred *cond() const { return Cond; }
  const Stmt *body() const { return Body; }
  const Pred *annot() const { return Annot; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }
};

/// Environment assumption; executions violating it are discarded.
class AssumeStmt : public Stmt {
  const Pred *Cond;

public:
  explicit AssumeStmt(const Pred *Cond)
      : Stmt(StmtKind::Assume), Cond(Cond) {}
  const Pred *cond() const { return Cond; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assume; }
};

/// A first-class call `target = callee(args);`. The call site id is dense
/// *within the enclosing function or program body* (the static call plan
/// maps it to one instance per expansion path); Line/Col anchor the
/// diagnostics the post-parse validation and the inlining pass emit
/// (undefined callee, arity mismatch, recursion under inlining).
class CallStmt : public Stmt {
  std::string Target;
  std::string Callee;
  std::vector<const Expr *> Args;
  uint32_t SiteId;
  uint32_t Line, Col;

public:
  CallStmt(std::string Target, std::string Callee,
           std::vector<const Expr *> Args, uint32_t SiteId, uint32_t Line,
           uint32_t Col)
      : Stmt(StmtKind::Call), Target(std::move(Target)),
        Callee(std::move(Callee)), Args(std::move(Args)), SiteId(SiteId),
        Line(Line), Col(Col) {}
  const std::string &target() const { return Target; }
  const std::string &callee() const { return Callee; }
  const std::vector<const Expr *> &args() const { return Args; }
  uint32_t siteId() const { return SiteId; }
  uint32_t line() const { return Line; }
  uint32_t col() const { return Col; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Call; }
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// Owns every AST node of one program.
class AstArena {
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Pred>> Preds;
  std::vector<std::unique_ptr<Stmt>> Stmts;

public:
  template <typename T, typename... Args> const T *make(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    const T *P = Node.get();
    if constexpr (std::is_base_of_v<Expr, T>)
      Exprs.push_back(std::move(Node));
    else if constexpr (std::is_base_of_v<Pred, T>)
      Preds.push_back(std::move(Node));
    else
      Stmts.push_back(std::move(Node));
    return P;
  }
};

/// A function definition `function f(a⃗) { let v⃗; s; return e; }`.
/// Loop/havoc/call-site ids inside the body are *function-local* (dense,
/// starting at 0); the static call plan maps them to globally unique ids
/// per call instance. `Recursive` marks membership in a call-graph cycle
/// (self- or mutual recursion), computed by post-parse validation.
struct FunctionDef {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<std::string> Locals;
  const Stmt *Body = nullptr; // BlockStmt of the body statements
  const Expr *Ret = nullptr;
  uint32_t NumLoops = 0;
  uint32_t NumHavocs = 0;
  uint32_t NumCallSites = 0;
  bool Recursive = false;
  uint32_t Line = 0, Col = 0;
};

/// A parsed program: inputs a⃗, locals v⃗ (zero-initialized), body, check.
/// `NumLoops`/`NumHavocs`/`NumCallSites` count sites in the *main body
/// only*; each FunctionDef carries its own local counts.
struct Program {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<std::string> Locals;
  const Stmt *Body = nullptr;
  const Pred *Check = nullptr;
  uint32_t NumLoops = 0;
  uint32_t NumHavocs = 0;
  uint32_t NumCallSites = 0;
  std::vector<FunctionDef> Functions;
  std::shared_ptr<AstArena> Arena = std::make_shared<AstArena>();

  const FunctionDef *function(const std::string &Name) const {
    for (const FunctionDef &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace abdiag::lang

#endif // ABDIAG_LANG_AST_H
