//===- lang/AstPrinter.cpp - Pretty printer for programs --------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include "support/Casting.h"
#include "support/StringUtils.h"

#include <cassert>
#include <sstream>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

int precedence(const Expr *E) {
  if (const auto *B = dyn_cast<BinaryExpr>(E))
    return B->op() == BinOp::Mul ? 2 : 1;
  return 3;
}

std::string renderExpr(const Expr *E, int ParentPrec) {
  switch (E->kind()) {
  case ExprKind::VarRef:
    return cast<VarRefExpr>(E)->name();
  case ExprKind::IntLit:
    return std::to_string(cast<IntLitExpr>(E)->value());
  case ExprKind::Havoc:
    return "havoc()";
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    int Prec = precedence(E);
    const char *Op = B->op() == BinOp::Add   ? " + "
                     : B->op() == BinOp::Sub ? " - "
                                             : " * ";
    // Right child of - needs parens at equal precedence (left associative).
    std::string S = renderExpr(B->lhs(), Prec) + Op +
                    renderExpr(B->rhs(), Prec + 1);
    if (Prec < ParentPrec)
      return "(" + S + ")";
    return S;
  }
  }
  assert(false && "unhandled expression kind");
  return "";
}

std::string renderPred(const Pred *P, bool Parenthesize) {
  switch (P->kind()) {
  case PredKind::BoolLit:
    return cast<BoolLitPred>(P)->value() ? "true" : "false";
  case PredKind::Compare: {
    const auto *C = cast<ComparePred>(P);
    const char *Op = nullptr;
    switch (C->op()) {
    case CmpOp::Lt:
      Op = " < ";
      break;
    case CmpOp::Gt:
      Op = " > ";
      break;
    case CmpOp::Le:
      Op = " <= ";
      break;
    case CmpOp::Ge:
      Op = " >= ";
      break;
    case CmpOp::Eq:
      Op = " == ";
      break;
    case CmpOp::Ne:
      Op = " != ";
      break;
    }
    return renderExpr(C->lhs(), 0) + Op + renderExpr(C->rhs(), 0);
  }
  case PredKind::Logical: {
    const auto *L = cast<LogicalPred>(P);
    std::string S = renderPred(L->lhs(), true) +
                    (L->isAnd() ? " && " : " || ") +
                    renderPred(L->rhs(), true);
    return Parenthesize ? "(" + S + ")" : S;
  }
  case PredKind::Not: {
    const Pred *Sub = cast<NotPred>(P)->sub();
    if (isa<BoolLitPred>(Sub))
      return "!" + renderPred(Sub, true);
    return "!(" + renderPred(Sub, false) + ")";
  }
  }
  assert(false && "unhandled predicate kind");
  return "";
}

void renderStmt(std::ostringstream &OS, const Stmt *S, int Indent) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    OS << Pad << A->var() << " = " << renderExpr(A->value(), 0) << ";\n";
    return;
  }
  case StmtKind::Skip:
    OS << Pad << "skip;\n";
    return;
  case StmtKind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
      renderStmt(OS, Sub, Indent);
    return;
  case StmtKind::Assume:
    OS << Pad << "assume(" << renderPred(cast<AssumeStmt>(S)->cond(), false)
       << ");\n";
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    OS << Pad << "if (" << renderPred(I->cond(), false) << ") {\n";
    renderStmt(OS, I->thenStmt(), Indent + 1);
    if (I->elseStmt()) {
      OS << Pad << "} else {\n";
      renderStmt(OS, I->elseStmt(), Indent + 1);
    }
    OS << Pad << "}\n";
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    OS << Pad << "while (" << renderPred(W->cond(), false) << ") {\n";
    renderStmt(OS, W->body(), Indent + 1);
    OS << Pad << "}";
    if (W->annot())
      OS << " @ [" << renderPred(W->annot(), false) << "]";
    OS << "\n";
    return;
  }
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    OS << Pad << C->target() << " = " << C->callee() << "(";
    for (size_t I = 0; I < C->args().size(); ++I)
      OS << (I ? ", " : "") << renderExpr(C->args()[I], 0);
    OS << ");\n";
    return;
  }
  }
  assert(false && "unhandled statement kind");
}

void renderFunction(std::ostringstream &OS, const FunctionDef &F) {
  OS << "function " << F.Name << "(" << join(F.Params, ", ") << ") {\n";
  if (!F.Locals.empty())
    OS << "  var " << join(F.Locals, ", ") << ";\n";
  renderStmt(OS, F.Body, 1);
  OS << "  return " << renderExpr(F.Ret, 0) << ";\n}\n";
}

} // namespace

std::string abdiag::lang::exprToString(const Expr *E) {
  return renderExpr(E, 0);
}

std::string abdiag::lang::predToString(const Pred *P) {
  return renderPred(P, false);
}

std::string abdiag::lang::programToString(const Program &Prog) {
  std::ostringstream OS;
  for (const FunctionDef &F : Prog.Functions) {
    renderFunction(OS, F);
    OS << "\n";
  }
  OS << "program " << Prog.Name << "(" << join(Prog.Params, ", ") << ") {\n";
  if (!Prog.Locals.empty())
    OS << "  var " << join(Prog.Locals, ", ") << ";\n";
  renderStmt(OS, Prog.Body, 1);
  OS << "  check(" << renderPred(Prog.Check, false) << ");\n}\n";
  return OS.str();
}

size_t abdiag::lang::programLoc(const Program &Prog) {
  std::string Text = programToString(Prog);
  size_t Lines = 0;
  bool NonBlank = false;
  for (char C : Text) {
    if (C == '\n') {
      if (NonBlank)
        ++Lines;
      NonBlank = false;
    } else if (!std::isspace(static_cast<unsigned char>(C))) {
      NonBlank = true;
    }
  }
  return Lines;
}
