//===- lang/AstPrinter.h - Pretty printer for programs ----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_ASTPRINTER_H
#define ABDIAG_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace abdiag::lang {

/// Renders \p E in concrete syntax.
std::string exprToString(const Expr *E);

/// Renders \p P in concrete syntax.
std::string predToString(const Pred *P);

/// Renders the whole program in parseable concrete syntax.
std::string programToString(const Program &Prog);

/// Number of non-blank source lines of the printed program; used as the LOC
/// metric in the user-study tables (Figure 7 reports per-problem LOC).
size_t programLoc(const Program &Prog);

} // namespace abdiag::lang

#endif // ABDIAG_LANG_ASTPRINTER_H
