//===- lang/CallPlan.cpp - Static call-expansion plan -----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/CallPlan.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace abdiag;
using namespace abdiag::lang;

void abdiag::lang::collectCallSites(const Stmt *S,
                                    std::vector<const CallStmt *> &Out) {
  switch (S->kind()) {
  case StmtKind::Call:
    Out.push_back(cast<CallStmt>(S));
    return;
  case StmtKind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
      collectCallSites(Sub, Out);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    collectCallSites(I->thenStmt(), Out);
    if (I->elseStmt())
      collectCallSites(I->elseStmt(), Out);
    return;
  }
  case StmtKind::While:
    collectCallSites(cast<WhileStmt>(S)->body(), Out);
    return;
  case StmtKind::Assign:
  case StmtKind::Skip:
  case StmtKind::Assume:
    return;
  }
}

namespace {

class PlanBuilder {
  const Program &P;
  const uint32_t MaxNodes;
  CallPlan Plan;

public:
  PlanBuilder(const Program &P, uint32_t MaxNodes)
      : P(P), MaxNodes(std::max<uint32_t>(MaxNodes, 1)) {}

  CallPlan run() {
    CallPlanNode Root;
    Root.LoopBase = 0;
    Root.HavocBase = 0;
    Plan.NumLoops = P.NumLoops;
    Plan.NumHavocs = P.NumHavocs;
    Plan.Nodes.push_back(Root);
    expand(0, P.Body, P.NumCallSites);
    return std::move(Plan);
  }

private:
  /// Expands the call sites of node \p NodeIdx (whose body is \p Body with
  /// \p NumSites local call sites), depth-first in site-id order.
  void expand(uint32_t NodeIdx, const Stmt *Body, uint32_t NumSites) {
    std::vector<const CallStmt *> Calls;
    collectCallSites(Body, Calls);
    assert(Calls.size() == NumSites && "parser assigns dense site ids");
    std::sort(Calls.begin(), Calls.end(),
              [](const CallStmt *A, const CallStmt *B) {
                return A->siteId() < B->siteId();
              });
    Plan.Nodes[NodeIdx].Children.resize(NumSites, 0);
    for (const CallStmt *C : Calls) {
      const FunctionDef *F = P.function(C->callee());
      assert(F && "calls resolved by parser validation");
      uint32_t ChildIdx = static_cast<uint32_t>(Plan.Nodes.size());
      CallPlanNode Child;
      Child.Func = F;
      if (F->Recursive || ChildIdx >= MaxNodes) {
        Child.Opaque = true;
        Child.CallResultId = Plan.NumCallResults++;
        Plan.Nodes.push_back(std::move(Child));
      } else {
        Child.LoopBase = Plan.NumLoops;
        Child.HavocBase = Plan.NumHavocs;
        Plan.NumLoops += F->NumLoops;
        Plan.NumHavocs += F->NumHavocs;
        Plan.Nodes.push_back(std::move(Child));
        expand(ChildIdx, F->Body, F->NumCallSites);
      }
      Plan.Nodes[NodeIdx].Children[C->siteId()] = ChildIdx;
    }
  }
};

} // namespace

CallPlan abdiag::lang::buildCallPlan(const Program &P, uint32_t MaxNodes) {
  PlanBuilder B(P, MaxNodes);
  return B.run();
}
