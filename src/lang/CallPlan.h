//===- lang/CallPlan.h - Static call-expansion plan -------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static expansion plan shared by the symbolic analyzer and the
/// concrete interpreter/oracle. Loop, havoc and call sites carry
/// *function-local* ids in the AST; a `CallPlan` assigns every site one
/// globally unique id per call *instance* by unrolling the (acyclic part
/// of the) call graph into a tree:
///
///   * node 0 is the program body; its bases are 0, so call-free programs
///     keep exactly the ids the parser assigned;
///   * each non-recursive call site gets a child node whose LoopBase /
///     HavocBase offset the callee's local ids into the global space;
///   * calls to recursive functions (and sites past the expansion cap)
///     become *opaque* nodes: no expansion, just a dense CallResultId the
///     interpreter records the concrete return value under, and which the
///     analyzer models with a single unconstrained α variable.
///
/// Both the analyzer (which instantiates one summary per expanded node it
/// reaches) and the oracle's interpreter (which executes every node) build
/// their ids from the same plan, so the α variable `r@loop7` and the
/// concrete snapshot `LoopExitValues[7]` always describe the same loop
/// instance.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_CALLPLAN_H
#define ABDIAG_LANG_CALLPLAN_H

#include "lang/Ast.h"

#include <cstdint>
#include <vector>

namespace abdiag::lang {

/// One call instance in the static expansion tree.
struct CallPlanNode {
  const FunctionDef *Func = nullptr; ///< null for the root (program body)
  uint32_t LoopBase = 0;  ///< global loop id = LoopBase + local id
  uint32_t HavocBase = 0; ///< global havoc id = HavocBase + local id
  bool Opaque = false;    ///< recursive callee / cap: not expanded
  uint32_t CallResultId = 0; ///< dense id of the recorded return (Opaque)
  /// Child node index per local call-site id (empty for opaque nodes).
  std::vector<uint32_t> Children;
};

/// The full expansion plan: a tree of call instances plus global totals.
struct CallPlan {
  std::vector<CallPlanNode> Nodes; ///< Nodes[0] is the root
  uint32_t NumLoops = 0;
  uint32_t NumHavocs = 0;
  uint32_t NumCallResults = 0;

  const CallPlanNode &root() const { return Nodes.front(); }
};

/// Collects every call statement under \p S in site-id order (the parser
/// assigns site ids in syntactic order, so a plain walk suffices).
void collectCallSites(const Stmt *S, std::vector<const CallStmt *> &Out);

/// Builds the expansion plan for \p P. Deterministic: depth-first in
/// call-site order. Expansion is capped at \p MaxNodes instances (shared
/// call DAGs can otherwise explode exponentially); sites past the cap
/// become opaque, which stays sound because the analyzer models opaque
/// results conservatively and the interpreter still executes them.
CallPlan buildCallPlan(const Program &P, uint32_t MaxNodes = 4096);

} // namespace abdiag::lang

#endif // ABDIAG_LANG_CALLPLAN_H
