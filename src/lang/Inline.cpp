//===- lang/Inline.cpp - Whole-program call inlining ------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Inline.h"

#include "support/Casting.h"

#include <cassert>
#include <map>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

using Rename = std::map<std::string, std::string>;

class Inliner {
  const Program &Src;
  Program NP;
  Diag D;
  std::string Error;
  uint32_t InstanceCounter = 0;

public:
  explicit Inliner(const Program &P) : Src(P) {
    NP.Name = P.Name;
    NP.Params = P.Params;
    NP.Locals = P.Locals;
    NP.Check = P.Check;
    NP.Arena = P.Arena;
  }

  InlineResult run() {
    Rename Empty;
    const Stmt *Body = cloneStmt(Src.Body, Empty);
    InlineResult R;
    if (Error.empty()) {
      NP.Body = Body;
      R.Prog = std::move(NP);
    }
    R.D = std::move(D);
    R.Error = std::move(Error);
    return R;
  }

private:
  bool failed() const { return !Error.empty(); }

  void failAt(const std::string &Msg, uint32_t Line, uint32_t Col) {
    if (!Error.empty())
      return;
    D.Message = Msg;
    D.Line = Line;
    D.Col = Col;
    Error = D.render();
  }

  template <typename T, typename... Args> const T *make(Args &&...As) {
    return NP.Arena->make<T>(std::forward<Args>(As)...);
  }

  /// Expands `target = callee(args);` into a block: parameter assignments
  /// (arguments cloned in the *caller's* renaming), zero-initialized
  /// locals, the renamed body (nested calls expanded recursively), and the
  /// final assignment of the renamed return expression.
  const Stmt *expandCall(const CallStmt *C, const Rename &CallerRename) {
    const FunctionDef *F = Src.function(C->callee());
    assert(F && "calls resolved by parser validation");
    if (F->Recursive) {
      failAt("recursive call to '" + C->callee() +
                 "' cannot be inlined (recursion requires the summary-based "
                 "pipeline)",
             C->line(), C->col());
      return make<SkipStmt>();
    }

    uint32_t Instance = ++InstanceCounter;
    Rename R;
    auto Renamed = [&](const std::string &V) {
      return C->callee() + "$" + std::to_string(Instance) + "$" + V;
    };
    std::vector<const Stmt *> Stmts;
    for (size_t I = 0; I < F->Params.size(); ++I) {
      R[F->Params[I]] = Renamed(F->Params[I]);
      NP.Locals.push_back(R[F->Params[I]]);
      Stmts.push_back(make<AssignStmt>(R[F->Params[I]],
                                       cloneExpr(C->args()[I], CallerRename)));
    }
    for (const std::string &L : F->Locals) {
      R[L] = Renamed(L);
      NP.Locals.push_back(R[L]);
      // Locals start at zero in the callee as well.
      Stmts.push_back(make<AssignStmt>(R[L], make<IntLitExpr>(0)));
    }
    Stmts.push_back(cloneStmt(F->Body, R));
    auto It = CallerRename.find(C->target());
    Stmts.push_back(
        make<AssignStmt>(It == CallerRename.end() ? C->target() : It->second,
                         cloneExpr(F->Ret, R)));
    return make<BlockStmt>(std::move(Stmts));
  }

  const Expr *cloneExpr(const Expr *E, const Rename &R) {
    switch (E->kind()) {
    case ExprKind::VarRef: {
      const auto &Name = cast<VarRefExpr>(E)->name();
      auto It = R.find(Name);
      return make<VarRefExpr>(It == R.end() ? Name : It->second);
    }
    case ExprKind::IntLit:
      return make<IntLitExpr>(cast<IntLitExpr>(E)->value());
    case ExprKind::Havoc:
      // Havoc sites are renumbered densely in program order; each inlined
      // copy is a fresh unknown-call site.
      return make<HavocExpr>(NP.NumHavocs++);
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return make<BinaryExpr>(B->op(), cloneExpr(B->lhs(), R),
                              cloneExpr(B->rhs(), R));
    }
    }
    assert(false && "unhandled expression kind");
    return nullptr;
  }

  const Pred *clonePred(const Pred *Pd, const Rename &R) {
    switch (Pd->kind()) {
    case PredKind::BoolLit:
      return make<BoolLitPred>(cast<BoolLitPred>(Pd)->value());
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(Pd);
      return make<ComparePred>(C->op(), cloneExpr(C->lhs(), R),
                               cloneExpr(C->rhs(), R));
    }
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(Pd);
      return make<LogicalPred>(L->isAnd(), clonePred(L->lhs(), R),
                               clonePred(L->rhs(), R));
    }
    case PredKind::Not:
      return make<NotPred>(clonePred(cast<NotPred>(Pd)->sub(), R));
    }
    assert(false && "unhandled predicate kind");
    return nullptr;
  }

  const Stmt *cloneStmt(const Stmt *S, const Rename &R) {
    if (failed())
      return make<SkipStmt>();
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      auto It = R.find(A->var());
      return make<AssignStmt>(It == R.end() ? A->var() : It->second,
                              cloneExpr(A->value(), R));
    }
    case StmtKind::Skip:
      return make<SkipStmt>();
    case StmtKind::Assume:
      return make<AssumeStmt>(clonePred(cast<AssumeStmt>(S)->cond(), R));
    case StmtKind::Call:
      return expandCall(cast<CallStmt>(S), R);
    case StmtKind::Block: {
      std::vector<const Stmt *> Stmts;
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        Stmts.push_back(cloneStmt(Sub, R));
      return make<BlockStmt>(std::move(Stmts));
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      return make<IfStmt>(clonePred(I->cond(), R), cloneStmt(I->thenStmt(), R),
                          I->elseStmt() ? cloneStmt(I->elseStmt(), R)
                                        : nullptr);
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      // Every copy is a fresh loop: fresh dense id, annotation cloned with
      // the same renaming.
      return make<WhileStmt>(NP.NumLoops++, clonePred(W->cond(), R),
                             cloneStmt(W->body(), R),
                             W->annot() ? clonePred(W->annot(), R) : nullptr);
    }
    }
    assert(false && "unhandled statement kind");
    return nullptr;
  }
};

} // namespace

InlineResult abdiag::lang::inlineCalls(const Program &P) {
  Inliner I(P);
  return I.run();
}
