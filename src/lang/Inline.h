//===- lang/Inline.h - Whole-program call inlining --------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in lowering that expands every `CallStmt` into a renamed copy of the
/// callee body — the representation the pipeline used before summary-based
/// interprocedural analysis. Each call instance renames the callee's
/// parameters and locals apart as `callee$<n>$var` ('$' cannot start a user
/// identifier), assigns parameters from the (caller-scope) arguments,
/// zero-initializes locals, and ends with an assignment of the renamed
/// return expression to the call target. Loop and havoc sites are
/// renumbered densely in program order so every inlined copy is a fresh
/// abstraction site.
///
/// Recursion is not representable under inlining: a call to any function on
/// a call-graph cycle fails with a diagnostic anchored at the call site.
/// The default (summary) pipeline handles such calls instead.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_INLINE_H
#define ABDIAG_LANG_INLINE_H

#include "lang/Parser.h"

namespace abdiag::lang {

/// Result of inlining: either a call-free program or a diagnostic.
struct InlineResult {
  std::optional<Program> Prog;
  Diag D;            ///< filled on failure
  std::string Error; // rendered D; empty on success

  bool ok() const { return Prog.has_value(); }
};

/// Expands every call in `P` (recursively) into inline copies. The result
/// shares `P`'s arena but has no functions and no call statements; its
/// NumLoops/NumHavocs are the global totals after expansion. Fails (with
/// the call site's line/col) if any reachable call targets a recursive
/// function.
InlineResult inlineCalls(const Program &P);

} // namespace abdiag::lang

#endif // ABDIAG_LANG_INLINE_H
