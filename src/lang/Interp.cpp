//===- lang/Interp.cpp - Concrete interpreter -------------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Interp.h"

#include "support/Casting.h"
#include "support/CheckedArith.h"

#include <cassert>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

/// Havoc site id reported for frames outside the plan (inside recursive
/// expansions): oracles treat out-of-range sites as the constant 0.
constexpr uint32_t kUnplannedHavocSite = 0xFFFFFFFFu;

struct Machine {
  const Program &Prog;
  const CallPlan *Plan; // may be null
  std::map<uint32_t, std::map<std::string, int64_t>> LoopExits;
  std::map<uint32_t, int64_t> CallReturns;
  std::map<uint32_t, uint64_t> HavocHits;
  const std::function<int64_t(uint32_t, uint64_t)> &Havoc;
  uint64_t Fuel;
  RunStatus Abort = RunStatus::CheckPassed; // sticky non-normal status
  bool Aborted = false;

  /// Current frame: the store of the executing function (or program body)
  /// and its plan node. A null node marks an *unplanned* frame (inside a
  /// recursive expansion): loops record no exits and havocs report the
  /// sentinel site.
  std::map<std::string, int64_t> *Store = nullptr;
  const CallPlanNode *Node = nullptr;

  Machine(const Program &Prog, const CallPlan *Plan,
          const std::function<int64_t(uint32_t, uint64_t)> &Havoc,
          uint64_t Fuel)
      : Prog(Prog), Plan(Plan), Havoc(Havoc), Fuel(Fuel) {}

  void abort(RunStatus S) {
    if (!Aborted) {
      Aborted = true;
      Abort = S;
    }
  }

  int64_t evalExpr(const Expr *E) {
    if (Aborted)
      return 0;
    switch (E->kind()) {
    case ExprKind::VarRef: {
      auto It = Store->find(cast<VarRefExpr>(E)->name());
      assert(It != Store->end() && "parser guarantees declared variables");
      return It->second;
    }
    case ExprKind::IntLit:
      return cast<IntLitExpr>(E)->value();
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int64_t L = evalExpr(B->lhs());
      int64_t R = evalExpr(B->rhs());
      switch (B->op()) {
      case BinOp::Add:
        return checkedAdd(L, R);
      case BinOp::Sub:
        return checkedSub(L, R);
      case BinOp::Mul:
        return checkedMul(L, R);
      }
      break;
    }
    case ExprKind::Havoc: {
      const auto *H = cast<HavocExpr>(E);
      uint32_t Site =
          Node ? Node->HavocBase + H->siteId() : kUnplannedHavocSite;
      uint64_t Hit = HavocHits[Site]++;
      return Havoc ? Havoc(Site, Hit) : 0;
    }
    }
    assert(false && "unhandled expression kind");
    return 0;
  }

  bool evalPred(const Pred *P) {
    if (Aborted)
      return false;
    switch (P->kind()) {
    case PredKind::BoolLit:
      return cast<BoolLitPred>(P)->value();
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(P);
      int64_t L = evalExpr(C->lhs());
      int64_t R = evalExpr(C->rhs());
      switch (C->op()) {
      case CmpOp::Lt:
        return L < R;
      case CmpOp::Gt:
        return L > R;
      case CmpOp::Le:
        return L <= R;
      case CmpOp::Ge:
        return L >= R;
      case CmpOp::Eq:
        return L == R;
      case CmpOp::Ne:
        return L != R;
      }
      break;
    }
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(P);
      if (L->isAnd())
        return evalPred(L->lhs()) && evalPred(L->rhs());
      return evalPred(L->lhs()) || evalPred(L->rhs());
    }
    case PredKind::Not:
      return !evalPred(cast<NotPred>(P)->sub());
    }
    assert(false && "unhandled predicate kind");
    return false;
  }

  void execCall(const CallStmt *C) {
    const FunctionDef *F = Prog.function(C->callee());
    assert(F && "calls resolved by parser validation");
    std::vector<int64_t> ArgV;
    ArgV.reserve(C->args().size());
    for (const Expr *A : C->args())
      ArgV.push_back(evalExpr(A));
    if (Aborted)
      return;

    // Resolve the callee's plan node. Recursive callees (opaque nodes) and
    // frames already outside the plan execute unplanned.
    const CallPlanNode *Child = nullptr;
    bool RecordReturn = false;
    uint32_t ResultId = 0;
    if (Node && Plan && C->siteId() < Node->Children.size()) {
      const CallPlanNode &CN = Plan->Nodes[Node->Children[C->siteId()]];
      if (CN.Opaque) {
        RecordReturn = true;
        ResultId = CN.CallResultId;
      } else {
        Child = &CN;
      }
    }
    // Only unplanned entries can recurse (the expanded plan is a finite
    // tree whose leaves are loop-free of further calls), so fuel is
    // charged there to bound non-terminating recursion.
    if (!Child) {
      if (Fuel == 0) {
        abort(RunStatus::OutOfFuel);
        return;
      }
      --Fuel;
    }

    std::map<std::string, int64_t> CalleeStore;
    for (size_t I = 0; I < F->Params.size(); ++I)
      CalleeStore[F->Params[I]] = ArgV[I];
    for (const std::string &L : F->Locals)
      CalleeStore[L] = 0;

    auto *SavedStore = Store;
    const auto *SavedNode = Node;
    Store = &CalleeStore;
    Node = Child;
    exec(F->Body);
    int64_t Ret = Aborted ? 0 : evalExpr(F->Ret);
    Store = SavedStore;
    Node = SavedNode;
    if (Aborted)
      return;
    if (RecordReturn)
      CallReturns[ResultId] = Ret;
    (*Store)[C->target()] = Ret;
  }

  void exec(const Stmt *S) {
    if (Aborted)
      return;
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      int64_t V = evalExpr(A->value());
      if (!Aborted)
        (*Store)[A->var()] = V;
      return;
    }
    case StmtKind::Skip:
      return;
    case StmtKind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        exec(Sub);
      return;
    case StmtKind::Assume:
      if (!evalPred(cast<AssumeStmt>(S)->cond()))
        abort(RunStatus::AssumeViolated);
      return;
    case StmtKind::Call:
      execCall(cast<CallStmt>(S));
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      if (evalPred(I->cond()))
        exec(I->thenStmt());
      else if (I->elseStmt())
        exec(I->elseStmt());
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      while (!Aborted && evalPred(W->cond())) {
        if (Fuel == 0) {
          abort(RunStatus::OutOfFuel);
          return;
        }
        --Fuel;
        exec(W->body());
      }
      if (!Aborted && Node)
        LoopExits[Node->LoopBase + W->loopId()] = *Store;
      return;
    }
    }
    assert(false && "unhandled statement kind");
  }
};

} // namespace

RunResult abdiag::lang::runProgram(
    const Program &Prog, const std::vector<int64_t> &Inputs, uint64_t Fuel,
    const std::function<int64_t(uint32_t, uint64_t)> &Havoc,
    const CallPlan *Plan) {
  assert(Inputs.size() == Prog.Params.size() && "wrong number of inputs");
  Machine Mc(Prog, Plan, Havoc, Fuel);
  // Without a plan the main body keeps its syntactic ids (identity bases);
  // callee frames then run unplanned.
  static const CallPlanNode IdentityRoot{};
  std::map<std::string, int64_t> RootStore;
  for (size_t I = 0; I < Prog.Params.size(); ++I)
    RootStore[Prog.Params[I]] = Inputs[I];
  for (const std::string &L : Prog.Locals)
    RootStore[L] = 0;
  Mc.Store = &RootStore;
  Mc.Node = Plan ? &Plan->root() : &IdentityRoot;
  Mc.exec(Prog.Body);
  RunResult R;
  if (Mc.Aborted) {
    R.Status = Mc.Abort;
  } else {
    bool Ok = Mc.evalPred(Prog.Check);
    R.Status = Ok ? RunStatus::CheckPassed : RunStatus::CheckFailed;
  }
  R.FinalStore = std::move(RootStore);
  R.LoopExitValues = std::move(Mc.LoopExits);
  R.CallReturns = std::move(Mc.CallReturns);
  return R;
}
