//===- lang/Interp.cpp - Concrete interpreter -------------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Interp.h"

#include "support/Casting.h"
#include "support/CheckedArith.h"

#include <cassert>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

struct Machine {
  std::map<std::string, int64_t> Store;
  std::map<uint32_t, std::map<std::string, int64_t>> LoopExits;
  std::map<uint32_t, uint64_t> HavocHits;
  const std::function<int64_t(uint32_t, uint64_t)> &Havoc;
  uint64_t Fuel;
  RunStatus Abort = RunStatus::CheckPassed; // sticky non-normal status
  bool Aborted = false;

  explicit Machine(const std::function<int64_t(uint32_t, uint64_t)> &Havoc,
                   uint64_t Fuel)
      : Havoc(Havoc), Fuel(Fuel) {}

  void abort(RunStatus S) {
    if (!Aborted) {
      Aborted = true;
      Abort = S;
    }
  }

  int64_t evalExpr(const Expr *E) {
    if (Aborted)
      return 0;
    switch (E->kind()) {
    case ExprKind::VarRef: {
      auto It = Store.find(cast<VarRefExpr>(E)->name());
      assert(It != Store.end() && "parser guarantees declared variables");
      return It->second;
    }
    case ExprKind::IntLit:
      return cast<IntLitExpr>(E)->value();
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int64_t L = evalExpr(B->lhs());
      int64_t R = evalExpr(B->rhs());
      switch (B->op()) {
      case BinOp::Add:
        return checkedAdd(L, R);
      case BinOp::Sub:
        return checkedSub(L, R);
      case BinOp::Mul:
        return checkedMul(L, R);
      }
      break;
    }
    case ExprKind::Havoc: {
      const auto *H = cast<HavocExpr>(E);
      uint64_t Hit = HavocHits[H->siteId()]++;
      return Havoc ? Havoc(H->siteId(), Hit) : 0;
    }
    }
    assert(false && "unhandled expression kind");
    return 0;
  }

  bool evalPred(const Pred *P) {
    if (Aborted)
      return false;
    switch (P->kind()) {
    case PredKind::BoolLit:
      return cast<BoolLitPred>(P)->value();
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(P);
      int64_t L = evalExpr(C->lhs());
      int64_t R = evalExpr(C->rhs());
      switch (C->op()) {
      case CmpOp::Lt:
        return L < R;
      case CmpOp::Gt:
        return L > R;
      case CmpOp::Le:
        return L <= R;
      case CmpOp::Ge:
        return L >= R;
      case CmpOp::Eq:
        return L == R;
      case CmpOp::Ne:
        return L != R;
      }
      break;
    }
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(P);
      if (L->isAnd())
        return evalPred(L->lhs()) && evalPred(L->rhs());
      return evalPred(L->lhs()) || evalPred(L->rhs());
    }
    case PredKind::Not:
      return !evalPred(cast<NotPred>(P)->sub());
    }
    assert(false && "unhandled predicate kind");
    return false;
  }

  void exec(const Stmt *S) {
    if (Aborted)
      return;
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      int64_t V = evalExpr(A->value());
      if (!Aborted)
        Store[A->var()] = V;
      return;
    }
    case StmtKind::Skip:
      return;
    case StmtKind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        exec(Sub);
      return;
    case StmtKind::Assume:
      if (!evalPred(cast<AssumeStmt>(S)->cond()))
        abort(RunStatus::AssumeViolated);
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      if (evalPred(I->cond()))
        exec(I->thenStmt());
      else if (I->elseStmt())
        exec(I->elseStmt());
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      while (!Aborted && evalPred(W->cond())) {
        if (Fuel == 0) {
          abort(RunStatus::OutOfFuel);
          return;
        }
        --Fuel;
        exec(W->body());
      }
      if (!Aborted)
        LoopExits[W->loopId()] = Store;
      return;
    }
    }
    assert(false && "unhandled statement kind");
  }
};

} // namespace

RunResult abdiag::lang::runProgram(
    const Program &Prog, const std::vector<int64_t> &Inputs, uint64_t Fuel,
    const std::function<int64_t(uint32_t, uint64_t)> &Havoc) {
  assert(Inputs.size() == Prog.Params.size() && "wrong number of inputs");
  Machine Mc(Havoc, Fuel);
  for (size_t I = 0; I < Prog.Params.size(); ++I)
    Mc.Store[Prog.Params[I]] = Inputs[I];
  for (const std::string &L : Prog.Locals)
    Mc.Store[L] = 0;
  Mc.exec(Prog.Body);
  RunResult R;
  if (Mc.Aborted) {
    R.Status = Mc.Abort;
  } else {
    bool Ok = Mc.evalPred(Prog.Check);
    R.Status = Ok ? RunStatus::CheckPassed : RunStatus::CheckFailed;
  }
  R.FinalStore = std::move(Mc.Store);
  R.LoopExitValues = std::move(Mc.LoopExits);
  return R;
}
