//===- lang/Interp.h - Concrete interpreter ---------------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Big-step concrete interpreter implementing the operational semantics of
/// Figure 1. Used as ground truth in tests (symbolic analysis vs. concrete
/// runs), by oracles that sample executions, and to certify the ground-truth
/// classification of the benchmark programs.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_INTERP_H
#define ABDIAG_LANG_INTERP_H

#include "lang/Ast.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace abdiag::lang {

/// Outcome of one concrete execution.
enum class RunStatus : uint8_t {
  CheckPassed,     ///< program evaluated to true
  CheckFailed,     ///< program evaluated to false (a buggy execution)
  AssumeViolated,  ///< an assume() failed: the execution is discarded
  OutOfFuel        ///< loop iterations exceeded the fuel budget
};

/// A finished execution: status plus the final store (for oracles that need
/// values of variables at specific points, see `LoopExitValues`).
struct RunResult {
  RunStatus Status = RunStatus::OutOfFuel;
  std::map<std::string, int64_t> FinalStore;
  /// For each loop id, the values of all variables when the loop last
  /// exited (i.e. the concrete counterpart of the alpha variables).
  std::map<uint32_t, std::map<std::string, int64_t>> LoopExitValues;
};

/// Runs \p Prog on the given input values (one per parameter, in order).
/// \p Fuel bounds the total number of loop iterations across the run.
/// \p Havoc supplies values for havoc() sites (called with the site id and
/// the number of times that site has been hit so far); defaults to 0.
RunResult
runProgram(const Program &Prog, const std::vector<int64_t> &Inputs,
           uint64_t Fuel = 100000,
           const std::function<int64_t(uint32_t, uint64_t)> &Havoc = {});

} // namespace abdiag::lang

#endif // ABDIAG_LANG_INTERP_H
