//===- lang/Interp.h - Concrete interpreter ---------------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Big-step concrete interpreter implementing the operational semantics of
/// Figure 1. Used as ground truth in tests (symbolic analysis vs. concrete
/// runs), by oracles that sample executions, and to certify the ground-truth
/// classification of the benchmark programs.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_INTERP_H
#define ABDIAG_LANG_INTERP_H

#include "lang/Ast.h"
#include "lang/CallPlan.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace abdiag::lang {

/// Outcome of one concrete execution.
enum class RunStatus : uint8_t {
  CheckPassed,     ///< program evaluated to true
  CheckFailed,     ///< program evaluated to false (a buggy execution)
  AssumeViolated,  ///< an assume() failed: the execution is discarded
  OutOfFuel        ///< loop iterations exceeded the fuel budget
};

/// A finished execution: status plus the final store (for oracles that need
/// values of variables at specific points, see `LoopExitValues`).
struct RunResult {
  RunStatus Status = RunStatus::OutOfFuel;
  std::map<std::string, int64_t> FinalStore;
  /// For each *global* loop id (per the run's CallPlan; identical to the
  /// syntactic id for call-free programs), the values of the enclosing
  /// frame's variables when the loop last exited (i.e. the concrete
  /// counterpart of the alpha variables).
  std::map<uint32_t, std::map<std::string, int64_t>> LoopExitValues;
  /// For each opaque plan node executed (recursive callee), the concrete
  /// return value last produced, keyed by CallPlanNode::CallResultId —
  /// the concrete counterpart of the analyzer's opaque call-result alphas.
  std::map<uint32_t, int64_t> CallReturns;
};

/// Runs \p Prog on the given input values (one per parameter, in order).
/// \p Fuel bounds the total number of loop iterations (plus entries into
/// recursive calls) across the run.
/// \p Havoc supplies values for havoc() sites (called with the *global*
/// site id and the number of times that site has been hit so far);
/// defaults to 0. Havoc sites in frames outside the plan (inside recursive
/// expansions) report the sentinel id 0xFFFFFFFF.
/// \p Plan maps function-local loop/havoc ids to global ids per call
/// instance; when null, the main body uses its syntactic ids unchanged and
/// every callee frame runs unplanned (executed, but with no loop-exit
/// recording and sentinel havoc sites).
RunResult
runProgram(const Program &Prog, const std::vector<int64_t> &Inputs,
           uint64_t Fuel = 100000,
           const std::function<int64_t(uint32_t, uint64_t)> &Havoc = {},
           const CallPlan *Plan = nullptr);

} // namespace abdiag::lang

#endif // ABDIAG_LANG_INTERP_H
