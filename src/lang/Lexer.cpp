//===- lang/Lexer.cpp - Tokenizer for the mini-language ---------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace abdiag::lang;

std::vector<Token> abdiag::lang::tokenize(std::string_view Src) {
  static const std::unordered_map<std::string_view, TokKind> Keywords = {
      {"program", TokKind::KwProgram}, {"var", TokKind::KwVar},
      {"function", TokKind::KwFunction}, {"return", TokKind::KwReturn},
      {"skip", TokKind::KwSkip},       {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
      {"check", TokKind::KwCheck},     {"assume", TokKind::KwAssume},
      {"havoc", TokKind::KwHavoc},     {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse}};

  std::vector<Token> Toks;
  uint32_t Line = 1, Col = 1;
  size_t I = 0;
  auto Push = [&](TokKind K, std::string Text, int64_t Num = 0) {
    Toks.push_back({K, std::move(Text), Num, Line,
                    Col - static_cast<uint32_t>(Toks.empty() ? 0 : 0)});
  };
  while (I < Src.size()) {
    char C = Src[I];
    if (C == '\n') {
      ++Line;
      Col = 1;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Col;
      ++I;
      continue;
    }
    // Line comments: // ... or # ...
    if (C == '#' || (C == '/' && I + 1 < Src.size() && Src[I + 1] == '/')) {
      while (I < Src.size() && Src[I] != '\n')
        ++I;
      continue;
    }
    uint32_t StartCol = Col;
    auto Emit = [&](TokKind K, size_t Len, int64_t Num = 0) {
      Toks.push_back({K, std::string(Src.substr(I, Len)), Num, Line, StartCol});
      I += Len;
      Col += static_cast<uint32_t>(Len);
    };
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t J = I;
      // '$' may appear inside (not start) identifiers: the parser uses it
      // for inlined-call renaming, and printed programs must re-parse.
      while (J < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[J])) ||
              Src[J] == '_' || Src[J] == '$'))
        ++J;
      std::string_view Word = Src.substr(I, J - I);
      auto It = Keywords.find(Word);
      Emit(It == Keywords.end() ? TokKind::Ident : It->second, J - I);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t J = I;
      int64_t Value = 0;
      while (J < Src.size() && std::isdigit(static_cast<unsigned char>(Src[J]))) {
        Value = Value * 10 + (Src[J] - '0');
        ++J;
      }
      Emit(TokKind::Number, J - I, Value);
      continue;
    }
    auto Two = [&](char Next) {
      return I + 1 < Src.size() && Src[I + 1] == Next;
    };
    switch (C) {
    case '(':
      Emit(TokKind::LParen, 1);
      continue;
    case ')':
      Emit(TokKind::RParen, 1);
      continue;
    case '{':
      Emit(TokKind::LBrace, 1);
      continue;
    case '}':
      Emit(TokKind::RBrace, 1);
      continue;
    case '[':
      Emit(TokKind::LBracket, 1);
      continue;
    case ']':
      Emit(TokKind::RBracket, 1);
      continue;
    case ',':
      Emit(TokKind::Comma, 1);
      continue;
    case ';':
      Emit(TokKind::Semi, 1);
      continue;
    case '@':
      Emit(TokKind::At, 1);
      continue;
    case '+':
      Emit(TokKind::Plus, 1);
      continue;
    case '-':
      Emit(TokKind::Minus, 1);
      continue;
    case '*':
      Emit(TokKind::Star, 1);
      continue;
    case '=':
      if (Two('='))
        Emit(TokKind::EqEq, 2);
      else
        Emit(TokKind::Assign, 1);
      continue;
    case '<':
      if (Two('='))
        Emit(TokKind::Le, 2);
      else
        Emit(TokKind::Lt, 1);
      continue;
    case '>':
      if (Two('='))
        Emit(TokKind::Ge, 2);
      else
        Emit(TokKind::Gt, 1);
      continue;
    case '!':
      if (Two('='))
        Emit(TokKind::NotEq, 2);
      else
        Emit(TokKind::Bang, 1);
      continue;
    case '&':
      if (Two('&')) {
        Emit(TokKind::AndAnd, 2);
        continue;
      }
      Emit(TokKind::Error, 1);
      continue;
    case '|':
      if (Two('|')) {
        Emit(TokKind::OrOr, 2);
        continue;
      }
      Emit(TokKind::Error, 1);
      continue;
    default:
      Emit(TokKind::Error, 1);
      continue;
    }
  }
  Push(TokKind::Eof, "");
  return Toks;
}

std::string abdiag::lang::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::KwProgram:
    return "'program'";
  case TokKind::KwFunction:
    return "'function'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwSkip:
    return "'skip'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwCheck:
    return "'check'";
  case TokKind::KwAssume:
    return "'assume'";
  case TokKind::KwHavoc:
    return "'havoc'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::At:
    return "'@'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Error:
    return "invalid character";
  }
  return "?";
}
