//===- lang/Lexer.h - Tokenizer for the mini-language -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_LEXER_H
#define ABDIAG_LANG_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace abdiag::lang {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  Number,
  // Keywords.
  KwProgram,
  KwFunction,
  KwReturn,
  KwVar,
  KwSkip,
  KwIf,
  KwElse,
  KwWhile,
  KwCheck,
  KwAssume,
  KwHavoc,
  KwTrue,
  KwFalse,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  At,
  Assign, // =
  Plus,
  Minus,
  Star,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Bang,
  Error
};

struct Token {
  TokKind Kind;
  std::string Text;
  int64_t Number = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

/// Tokenizes \p Source. Lexical errors become Error tokens carrying the
/// offending text; the parser reports them with position information.
/// Line comments start with `//` or `#`.
std::vector<Token> tokenize(std::string_view Source);

/// Human-readable token kind name (for diagnostics).
std::string tokKindName(TokKind K);

} // namespace abdiag::lang

#endif // ABDIAG_LANG_LEXER_H
