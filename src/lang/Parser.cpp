//===- lang/Parser.cpp - Recursive-descent parser ---------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Besides the Section 2 core, the parser supports function definitions:
//
//   function add(a, b) { var r; r = a + b; return r; }
//   program main(x) { var y; y = add(x, 1); check(y > x); }
//
// Calls may appear as the right-hand side of an assignment and are kept as
// first-class `CallStmt` nodes; the symbolic analysis instantiates one
// α-abstracted summary per call site (the paper's Section 5 implementation
// note), and `lang/Inline.h` offers the old whole-program inlining as an
// opt-in lowering. Functions may be defined in any order and may be
// (mutually) recursive; post-parse validation resolves every call, rejects
// undefined callees and arity mismatches with the call's source position,
// and marks call-graph cycles on `FunctionDef::Recursive`.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/Casting.h"

#include <cassert>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

class Parser {
  std::vector<Token> Toks;
  size_t Pos = 0;
  Program P;
  Diag D;
  std::string Error;
  std::set<std::string> Declared; // current scope (function or program)
  /// Function currently being parsed; null in the program body. Loop,
  /// havoc and call-site ids are local to the enclosing function (or to
  /// the program body), so counters live on the definition itself.
  FunctionDef *CurF = nullptr;

public:
  explicit Parser(std::string_view Src) : Toks(tokenize(Src)) {}

  ParseResult run() {
    bool SawProgram = false;
    while (!failed() && !at(TokKind::Eof)) {
      if (at(TokKind::KwFunction)) {
        parseFunction();
      } else if (at(TokKind::KwProgram)) {
        if (SawProgram) {
          fail("only one program per file");
          break;
        }
        SawProgram = true;
        parseProgramDecl();
      } else {
        fail("expected 'function' or 'program'");
        break;
      }
    }
    if (!failed() && !SawProgram)
      fail("no program definition found");
    if (!failed())
      validateCalls();
    ParseResult R;
    if (Error.empty())
      R.Prog = std::move(P);
    R.D = std::move(D);
    R.Error = std::move(Error);
    return R;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t N = 1) const {
    return Toks[std::min(Pos + N, Toks.size() - 1)];
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool failed() const { return !Error.empty(); }

  void fail(const std::string &Msg) {
    failAt(Msg + " (found " + tokKindName(cur().Kind) + ")", cur().Line,
           cur().Col);
  }

  void failAt(const std::string &Msg, uint32_t Line, uint32_t Col) {
    if (!Error.empty())
      return;
    D.Message = Msg;
    D.Line = Line;
    D.Col = Col;
    Error = D.render();
  }

  Token eat(TokKind K, const char *What) {
    if (failed())
      return cur();
    if (!at(K)) {
      fail(std::string("expected ") + tokKindName(K) + " " + What);
      return cur();
    }
    return Toks[Pos++];
  }

  bool accept(TokKind K) {
    if (!failed() && at(K)) {
      ++Pos;
      return true;
    }
    return false;
  }

  template <typename T, typename... Args> const T *make(Args &&...As) {
    return P.Arena->make<T>(std::forward<Args>(As)...);
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void parseHeader(std::vector<std::string> &Params) {
    eat(TokKind::LParen, "before parameter list");
    if (!at(TokKind::RParen)) {
      do {
        Token T = eat(TokKind::Ident, "as a parameter name");
        if (failed())
          return;
        if (!Declared.insert(T.Text).second) {
          fail("duplicate parameter '" + T.Text + "'");
          return;
        }
        Params.push_back(T.Text);
      } while (accept(TokKind::Comma));
    }
    eat(TokKind::RParen, "after parameter list");
    eat(TokKind::LBrace, "to open the body");
  }

  void parseVarDecls(std::vector<std::string> &Locals) {
    while (accept(TokKind::KwVar)) {
      do {
        Token T = eat(TokKind::Ident, "as a variable name");
        if (failed())
          return;
        if (!Declared.insert(T.Text).second) {
          fail("duplicate declaration of '" + T.Text + "'");
          return;
        }
        Locals.push_back(T.Text);
      } while (accept(TokKind::Comma));
      eat(TokKind::Semi, "after variable declaration");
    }
  }

  void parseFunction() {
    eat(TokKind::KwFunction, "to start a function");
    Token Name = eat(TokKind::Ident, "as the function name");
    if (P.function(Name.Text)) {
      fail("duplicate function '" + Name.Text + "'");
      return;
    }
    Declared.clear();
    FunctionDef F;
    F.Name = Name.Text;
    F.Line = Name.Line;
    F.Col = Name.Col;
    CurF = &F;
    parseHeader(F.Params);
    parseVarDecls(F.Locals);
    std::vector<const Stmt *> Body;
    while (!failed() && !at(TokKind::KwReturn) && !at(TokKind::Eof))
      Body.push_back(parseStmt());
    F.Body = make<BlockStmt>(std::move(Body));
    eat(TokKind::KwReturn, "(every function ends with one return)");
    F.Ret = parseExpr();
    eat(TokKind::Semi, "after return expression");
    eat(TokKind::RBrace, "to close the function body");
    CurF = nullptr;
    if (!failed())
      P.Functions.push_back(std::move(F));
  }

  void parseProgramDecl() {
    eat(TokKind::KwProgram, "to start the program");
    P.Name = eat(TokKind::Ident, "as the program name").Text;
    Declared.clear();
    parseHeader(P.Params);
    parseVarDecls(P.Locals);
    std::vector<const Stmt *> Body;
    while (!failed() && !at(TokKind::KwCheck) && !at(TokKind::Eof))
      Body.push_back(parseStmt());
    P.Body = make<BlockStmt>(std::move(Body));
    eat(TokKind::KwCheck, "(every program ends with one check)");
    eat(TokKind::LParen, "after 'check'");
    P.Check = parsePred();
    eat(TokKind::RParen, "after check predicate");
    eat(TokKind::Semi, "after check statement");
    eat(TokKind::RBrace, "to close the program body");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  const Stmt *parseStmt() {
    if (failed())
      return make<SkipStmt>();
    switch (cur().Kind) {
    case TokKind::KwSkip: {
      ++Pos;
      eat(TokKind::Semi, "after 'skip'");
      return make<SkipStmt>();
    }
    case TokKind::KwAssume: {
      ++Pos;
      eat(TokKind::LParen, "after 'assume'");
      const Pred *C = parsePred();
      eat(TokKind::RParen, "after assume predicate");
      eat(TokKind::Semi, "after assume statement");
      return make<AssumeStmt>(C);
    }
    case TokKind::KwIf: {
      ++Pos;
      eat(TokKind::LParen, "after 'if'");
      const Pred *C = parsePred();
      eat(TokKind::RParen, "after if condition");
      const Stmt *Then = parseBlock();
      const Stmt *Else = nullptr;
      if (accept(TokKind::KwElse))
        Else = at(TokKind::KwIf) ? parseStmt() : parseBlock();
      return make<IfStmt>(C, Then, Else);
    }
    case TokKind::KwWhile: {
      ++Pos;
      uint32_t LoopId = CurF ? CurF->NumLoops++ : P.NumLoops++;
      eat(TokKind::LParen, "after 'while'");
      const Pred *C = parsePred();
      eat(TokKind::RParen, "after while condition");
      const Stmt *Body = parseBlock();
      const Pred *Annot = nullptr;
      if (accept(TokKind::At)) {
        eat(TokKind::LBracket, "after '@' (annotation syntax is @ [pred])");
        Annot = parsePred();
        eat(TokKind::RBracket, "to close the loop annotation");
      }
      return make<WhileStmt>(LoopId, C, Body, Annot);
    }
    case TokKind::Ident: {
      Token Name = cur();
      ++Pos;
      if (!Declared.count(Name.Text)) {
        fail("assignment to undeclared variable '" + Name.Text + "'");
        return make<SkipStmt>();
      }
      eat(TokKind::Assign, "in assignment");
      // Function call as the full right-hand side? Callees may be defined
      // later in the file (forward reference), so any `ident (` here is a
      // call; undefined callees are diagnosed by post-parse validation.
      if (at(TokKind::Ident) && peek().Kind == TokKind::LParen)
        return parseCallStmt(Name.Text);
      const Expr *E = parseExpr();
      eat(TokKind::Semi, "after assignment");
      return make<AssignStmt>(Name.Text, E);
    }
    default:
      fail("expected a statement");
      return make<SkipStmt>();
    }
  }

  const Stmt *parseBlock() {
    eat(TokKind::LBrace, "to open a block");
    std::vector<const Stmt *> Stmts;
    while (!failed() && !at(TokKind::RBrace) && !at(TokKind::Eof))
      Stmts.push_back(parseStmt());
    eat(TokKind::RBrace, "to close a block");
    return make<BlockStmt>(std::move(Stmts));
  }

  /// Parses `f(e1, ..., ek);` after `target =` into a CallStmt.
  const Stmt *parseCallStmt(const std::string &Target) {
    Token Name = eat(TokKind::Ident, "as the callee");
    eat(TokKind::LParen, "after callee name");
    std::vector<const Expr *> Args;
    if (!at(TokKind::RParen)) {
      do {
        Args.push_back(parseExpr());
      } while (accept(TokKind::Comma));
    }
    eat(TokKind::RParen, "after call arguments");
    eat(TokKind::Semi,
        "after call (calls must be the entire right-hand side)");
    if (failed())
      return make<SkipStmt>();
    uint32_t SiteId = CurF ? CurF->NumCallSites++ : P.NumCallSites++;
    return make<CallStmt>(Target, Name.Text, std::move(Args), SiteId,
                          Name.Line, Name.Col);
  }

  //===--------------------------------------------------------------------===//
  // Post-parse call validation
  //===--------------------------------------------------------------------===//

  static void collectCalls(const Stmt *S, std::vector<const CallStmt *> &Out) {
    switch (S->kind()) {
    case StmtKind::Call:
      Out.push_back(cast<CallStmt>(S));
      return;
    case StmtKind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        collectCalls(Sub, Out);
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      collectCalls(I->thenStmt(), Out);
      if (I->elseStmt())
        collectCalls(I->elseStmt(), Out);
      return;
    }
    case StmtKind::While:
      collectCalls(cast<WhileStmt>(S)->body(), Out);
      return;
    case StmtKind::Assign:
    case StmtKind::Skip:
    case StmtKind::Assume:
      return;
    }
  }

  /// Resolves every call site (undefined callee / arity, diagnosed at the
  /// call's own position) and marks call-graph cycles: `F.Recursive` holds
  /// iff F can reach itself through one or more call edges.
  void validateCalls() {
    std::map<std::string, size_t> Index;
    for (size_t I = 0; I < P.Functions.size(); ++I)
      Index[P.Functions[I].Name] = I;

    std::vector<std::set<size_t>> Callees(P.Functions.size());
    auto Check = [&](const Stmt *Body, std::set<size_t> *Edges) {
      std::vector<const CallStmt *> Calls;
      collectCalls(Body, Calls);
      for (const CallStmt *C : Calls) {
        auto It = Index.find(C->callee());
        if (It == Index.end()) {
          failAt("call to undefined function '" + C->callee() + "'", C->line(),
                 C->col());
          return;
        }
        const FunctionDef &F = P.Functions[It->second];
        if (C->args().size() != F.Params.size()) {
          failAt("call to '" + C->callee() + "' with " +
                     std::to_string(C->args().size()) +
                     " argument(s), expected " +
                     std::to_string(F.Params.size()),
                 C->line(), C->col());
          return;
        }
        if (Edges)
          Edges->insert(It->second);
      }
    };
    for (size_t I = 0; I < P.Functions.size() && !failed(); ++I)
      Check(P.Functions[I].Body, &Callees[I]);
    if (!failed())
      Check(P.Body, nullptr);
    if (failed())
      return;

    // A function is recursive iff it reaches itself in the call graph.
    for (size_t I = 0; I < P.Functions.size(); ++I) {
      std::set<size_t> Seen;
      std::vector<size_t> Work(Callees[I].begin(), Callees[I].end());
      bool Cycle = false;
      while (!Work.empty() && !Cycle) {
        size_t N = Work.back();
        Work.pop_back();
        if (N == I) {
          Cycle = true;
          break;
        }
        if (!Seen.insert(N).second)
          continue;
        Work.insert(Work.end(), Callees[N].begin(), Callees[N].end());
      }
      P.Functions[I].Recursive = Cycle;
    }
  }

  //===--------------------------------------------------------------------===//
  // Predicates and expressions
  //===--------------------------------------------------------------------===//

  const Pred *parsePred() { return parseOr(); }

  const Pred *parseOr() {
    const Pred *L = parseAnd();
    while (accept(TokKind::OrOr))
      L = make<LogicalPred>(/*IsAnd=*/false, L, parseAnd());
    return L;
  }

  const Pred *parseAnd() {
    const Pred *L = parsePredUnary();
    while (accept(TokKind::AndAnd))
      L = make<LogicalPred>(/*IsAnd=*/true, L, parsePredUnary());
    return L;
  }

  const Pred *parsePredUnary() {
    if (accept(TokKind::Bang))
      return make<NotPred>(parsePredUnary());
    if (accept(TokKind::KwTrue))
      return make<BoolLitPred>(true);
    if (accept(TokKind::KwFalse))
      return make<BoolLitPred>(false);
    // A '(' is ambiguous: parenthesized predicate or parenthesized
    // arithmetic expression starting a comparison. Try predicate first by
    // backtracking on failure.
    if (at(TokKind::LParen)) {
      size_t Save = Pos;
      std::string SavedError = Error;
      Diag SavedDiag = D;
      ++Pos; // consume '('
      const Pred *Inner = parsePred();
      if (!failed() && at(TokKind::RParen) && !isCompareAhead()) {
        ++Pos;
        return Inner;
      }
      // Backtrack: treat as comparison whose LHS starts with '('.
      Pos = Save;
      Error = SavedError;
      D = SavedDiag;
    }
    return parseCompare();
  }

  /// After a parsed "(pred)" prefix, a comparison operator would mean the
  /// parenthesis was actually arithmetic: `(x + 1) < y`.
  bool isCompareAhead() const {
    switch (peek().Kind) {
    case TokKind::Lt:
    case TokKind::Gt:
    case TokKind::Le:
    case TokKind::Ge:
    case TokKind::EqEq:
    case TokKind::NotEq:
    case TokKind::Plus:
    case TokKind::Minus:
    case TokKind::Star:
      return true;
    default:
      return false;
    }
  }

  const Pred *parseCompare() {
    const Expr *L = parseExpr();
    CmpOp Op;
    switch (cur().Kind) {
    case TokKind::Lt:
      Op = CmpOp::Lt;
      break;
    case TokKind::Gt:
      Op = CmpOp::Gt;
      break;
    case TokKind::Le:
      Op = CmpOp::Le;
      break;
    case TokKind::Ge:
      Op = CmpOp::Ge;
      break;
    case TokKind::EqEq:
      Op = CmpOp::Eq;
      break;
    case TokKind::NotEq:
      Op = CmpOp::Ne;
      break;
    default:
      fail("expected a comparison operator");
      return make<BoolLitPred>(false);
    }
    ++Pos;
    const Expr *R = parseExpr();
    return make<ComparePred>(Op, L, R);
  }

  const Expr *parseExpr() {
    const Expr *L = parseTerm();
    while (!failed() && (at(TokKind::Plus) || at(TokKind::Minus))) {
      BinOp Op = at(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
      ++Pos;
      L = make<BinaryExpr>(Op, L, parseTerm());
    }
    return L;
  }

  const Expr *parseTerm() {
    const Expr *L = parseUnary();
    while (!failed() && at(TokKind::Star)) {
      ++Pos;
      L = make<BinaryExpr>(BinOp::Mul, L, parseUnary());
    }
    return L;
  }

  const Expr *parseUnary() {
    if (accept(TokKind::Minus))
      return make<BinaryExpr>(BinOp::Sub, make<IntLitExpr>(0), parseUnary());
    return parsePrimary();
  }

  const Expr *parsePrimary() {
    if (failed())
      return make<IntLitExpr>(0);
    switch (cur().Kind) {
    case TokKind::Number: {
      int64_t V = cur().Number;
      ++Pos;
      return make<IntLitExpr>(V);
    }
    case TokKind::Ident: {
      Token T = cur();
      if (peek().Kind == TokKind::LParen) {
        fail("calls are only allowed as the right-hand side of an "
             "assignment: v = " +
             T.Text + "(...)");
        return make<IntLitExpr>(0);
      }
      ++Pos;
      if (!Declared.count(T.Text)) {
        fail("use of undeclared variable '" + T.Text + "'");
        return make<IntLitExpr>(0);
      }
      return make<VarRefExpr>(T.Text);
    }
    case TokKind::KwHavoc: {
      ++Pos;
      eat(TokKind::LParen, "after 'havoc'");
      eat(TokKind::RParen, "after 'havoc('");
      return make<HavocExpr>(CurF ? CurF->NumHavocs++ : P.NumHavocs++);
    }
    case TokKind::LParen: {
      ++Pos;
      const Expr *E = parseExpr();
      eat(TokKind::RParen, "to close parenthesized expression");
      return E;
    }
    default:
      fail("expected an expression");
      return make<IntLitExpr>(0);
    }
  }
};

} // namespace

ParseResult abdiag::lang::parseProgram(std::string_view Source) {
  Parser P(Source);
  return P.run();
}

std::string Diag::render() const {
  if (!hasPosition())
    return Message;
  std::ostringstream OS;
  OS << "parse error at line " << Line << ", column " << Col << ": "
     << Message;
  return OS.str();
}

ParseResult abdiag::lang::parseProgramFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    ParseResult R;
    R.D.Message = "cannot open file '" + Path + "'";
    R.Error = R.D.render();
    return R;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseProgram(SS.str());
}
