//===- lang/Parser.cpp - Recursive-descent parser ---------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Besides the Section 2 core, the parser supports non-recursive function
// definitions:
//
//   function add(a, b) { var r; r = a + b; return r; }
//   program main(x) { var y; y = add(x, 1); check(y > x); }
//
// Calls may appear as the right-hand side of an assignment and are inlined
// at parse time: parameters and locals are renamed apart (with '$', which
// cannot start a user identifier), loop and havoc sites get fresh ids per
// call site, and the call becomes a block ending in an assignment of the
// renamed return expression. The paper treats interprocedural analysis as
// orthogonal (Section 2) and its implementation handles calls via
// summaries; inlining preserves the semantics for non-recursive programs
// while requiring no changes downstream. Functions must be defined before
// use, which also rules out (direct and mutual) recursion.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/Casting.h"

#include <cassert>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

/// A parsed function body, kept for inlining.
struct FunctionDecl {
  std::vector<std::string> Params;
  std::vector<std::string> Locals;
  std::vector<const Stmt *> Body;
  const Expr *Ret = nullptr;
};

class Parser {
  std::vector<Token> Toks;
  size_t Pos = 0;
  Program P;
  Diag D;
  std::string Error;
  std::set<std::string> Declared; // current scope (function or program)
  std::map<std::string, FunctionDecl> Functions;
  uint32_t InlineCounter = 0;
  /// Inside a function body, loop/havoc ids come from scratch counters:
  /// real ids are allocated per inlined copy, so the template's own ids
  /// must not leak into the program's counters.
  bool InFunction = false;
  uint32_t ScratchLoops = 0, ScratchHavocs = 0;

public:
  explicit Parser(std::string_view Src) : Toks(tokenize(Src)) {}

  ParseResult run() {
    bool SawProgram = false;
    while (!failed() && !at(TokKind::Eof)) {
      if (at(TokKind::KwFunction)) {
        parseFunction();
      } else if (at(TokKind::KwProgram)) {
        if (SawProgram) {
          fail("only one program per file");
          break;
        }
        SawProgram = true;
        parseProgramDecl();
      } else {
        fail("expected 'function' or 'program'");
        break;
      }
    }
    if (!failed() && !SawProgram)
      fail("no program definition found");
    ParseResult R;
    if (Error.empty())
      R.Prog = std::move(P);
    R.D = std::move(D);
    R.Error = std::move(Error);
    return R;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t N = 1) const {
    return Toks[std::min(Pos + N, Toks.size() - 1)];
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool failed() const { return !Error.empty(); }

  void fail(const std::string &Msg) {
    if (!Error.empty())
      return;
    D.Message = Msg + " (found " + tokKindName(cur().Kind) + ")";
    D.Line = cur().Line;
    D.Col = cur().Col;
    Error = D.render();
  }

  Token eat(TokKind K, const char *What) {
    if (failed())
      return cur();
    if (!at(K)) {
      fail(std::string("expected ") + tokKindName(K) + " " + What);
      return cur();
    }
    return Toks[Pos++];
  }

  bool accept(TokKind K) {
    if (!failed() && at(K)) {
      ++Pos;
      return true;
    }
    return false;
  }

  template <typename T, typename... Args> const T *make(Args &&...As) {
    return P.Arena->make<T>(std::forward<Args>(As)...);
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void parseHeader(std::vector<std::string> &Params) {
    eat(TokKind::LParen, "before parameter list");
    if (!at(TokKind::RParen)) {
      do {
        Token T = eat(TokKind::Ident, "as a parameter name");
        if (failed())
          return;
        if (!Declared.insert(T.Text).second) {
          fail("duplicate parameter '" + T.Text + "'");
          return;
        }
        Params.push_back(T.Text);
      } while (accept(TokKind::Comma));
    }
    eat(TokKind::RParen, "after parameter list");
    eat(TokKind::LBrace, "to open the body");
  }

  void parseVarDecls(std::vector<std::string> &Locals) {
    while (accept(TokKind::KwVar)) {
      do {
        Token T = eat(TokKind::Ident, "as a variable name");
        if (failed())
          return;
        if (!Declared.insert(T.Text).second) {
          fail("duplicate declaration of '" + T.Text + "'");
          return;
        }
        Locals.push_back(T.Text);
      } while (accept(TokKind::Comma));
      eat(TokKind::Semi, "after variable declaration");
    }
  }

  void parseFunction() {
    eat(TokKind::KwFunction, "to start a function");
    Token Name = eat(TokKind::Ident, "as the function name");
    if (Functions.count(Name.Text)) {
      fail("duplicate function '" + Name.Text + "'");
      return;
    }
    Declared.clear();
    InFunction = true;
    FunctionDecl F;
    parseHeader(F.Params);
    parseVarDecls(F.Locals);
    while (!failed() && !at(TokKind::KwReturn) && !at(TokKind::Eof))
      F.Body.push_back(parseStmt());
    eat(TokKind::KwReturn, "(every function ends with one return)");
    F.Ret = parseExpr();
    eat(TokKind::Semi, "after return expression");
    eat(TokKind::RBrace, "to close the function body");
    InFunction = false;
    if (!failed())
      Functions.emplace(Name.Text, std::move(F));
  }

  void parseProgramDecl() {
    eat(TokKind::KwProgram, "to start the program");
    P.Name = eat(TokKind::Ident, "as the program name").Text;
    Declared.clear();
    parseHeader(P.Params);
    parseVarDecls(P.Locals);
    std::vector<const Stmt *> Body;
    while (!failed() && !at(TokKind::KwCheck) && !at(TokKind::Eof))
      Body.push_back(parseStmt());
    P.Body = make<BlockStmt>(std::move(Body));
    eat(TokKind::KwCheck, "(every program ends with one check)");
    eat(TokKind::LParen, "after 'check'");
    P.Check = parsePred();
    eat(TokKind::RParen, "after check predicate");
    eat(TokKind::Semi, "after check statement");
    eat(TokKind::RBrace, "to close the program body");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  const Stmt *parseStmt() {
    if (failed())
      return make<SkipStmt>();
    switch (cur().Kind) {
    case TokKind::KwSkip: {
      ++Pos;
      eat(TokKind::Semi, "after 'skip'");
      return make<SkipStmt>();
    }
    case TokKind::KwAssume: {
      ++Pos;
      eat(TokKind::LParen, "after 'assume'");
      const Pred *C = parsePred();
      eat(TokKind::RParen, "after assume predicate");
      eat(TokKind::Semi, "after assume statement");
      return make<AssumeStmt>(C);
    }
    case TokKind::KwIf: {
      ++Pos;
      eat(TokKind::LParen, "after 'if'");
      const Pred *C = parsePred();
      eat(TokKind::RParen, "after if condition");
      const Stmt *Then = parseBlock();
      const Stmt *Else = nullptr;
      if (accept(TokKind::KwElse))
        Else = at(TokKind::KwIf) ? parseStmt() : parseBlock();
      return make<IfStmt>(C, Then, Else);
    }
    case TokKind::KwWhile: {
      ++Pos;
      uint32_t LoopId = InFunction ? ScratchLoops++ : P.NumLoops++;
      eat(TokKind::LParen, "after 'while'");
      const Pred *C = parsePred();
      eat(TokKind::RParen, "after while condition");
      const Stmt *Body = parseBlock();
      const Pred *Annot = nullptr;
      if (accept(TokKind::At)) {
        eat(TokKind::LBracket, "after '@' (annotation syntax is @ [pred])");
        Annot = parsePred();
        eat(TokKind::RBracket, "to close the loop annotation");
      }
      return make<WhileStmt>(LoopId, C, Body, Annot);
    }
    case TokKind::Ident: {
      Token Name = cur();
      ++Pos;
      if (!Declared.count(Name.Text)) {
        fail("assignment to undeclared variable '" + Name.Text + "'");
        return make<SkipStmt>();
      }
      eat(TokKind::Assign, "in assignment");
      // Function call as the full right-hand side?
      if (at(TokKind::Ident) && peek().Kind == TokKind::LParen &&
          Functions.count(cur().Text))
        return parseCallAssign(Name.Text);
      const Expr *E = parseExpr();
      eat(TokKind::Semi, "after assignment");
      return make<AssignStmt>(Name.Text, E);
    }
    default:
      fail("expected a statement");
      return make<SkipStmt>();
    }
  }

  const Stmt *parseBlock() {
    eat(TokKind::LBrace, "to open a block");
    std::vector<const Stmt *> Stmts;
    while (!failed() && !at(TokKind::RBrace) && !at(TokKind::Eof))
      Stmts.push_back(parseStmt());
    eat(TokKind::RBrace, "to close a block");
    return make<BlockStmt>(std::move(Stmts));
  }

  //===--------------------------------------------------------------------===//
  // Call inlining
  //===--------------------------------------------------------------------===//

  /// Parses `f(e1, ..., ek);` after `target =` and inlines the body.
  const Stmt *parseCallAssign(const std::string &Target) {
    Token Name = eat(TokKind::Ident, "as the callee");
    const FunctionDecl &F = Functions.at(Name.Text);
    eat(TokKind::LParen, "after callee name");
    std::vector<const Expr *> Args;
    if (!at(TokKind::RParen)) {
      do {
        Args.push_back(parseExpr());
      } while (accept(TokKind::Comma));
    }
    eat(TokKind::RParen, "after call arguments");
    eat(TokKind::Semi,
        "after call (calls must be the entire right-hand side)");
    if (failed())
      return make<SkipStmt>();
    if (Args.size() != F.Params.size()) {
      fail("call to '" + Name.Text + "' with " + std::to_string(Args.size()) +
           " argument(s), expected " + std::to_string(F.Params.size()));
      return make<SkipStmt>();
    }

    // Rename callee variables apart: f$<n>$v ('$' cannot start a user
    // identifier, so no collisions).
    uint32_t Instance = ++InlineCounter;
    std::map<std::string, std::string> Rename;
    auto Renamed = [&](const std::string &V) {
      return Name.Text + "$" + std::to_string(Instance) + "$" + V;
    };
    std::vector<const Stmt *> Stmts;
    for (size_t I = 0; I < F.Params.size(); ++I) {
      Rename[F.Params[I]] = Renamed(F.Params[I]);
      P.Locals.push_back(Rename[F.Params[I]]);
      Stmts.push_back(make<AssignStmt>(Rename[F.Params[I]], Args[I]));
    }
    for (const std::string &L : F.Locals) {
      Rename[L] = Renamed(L);
      P.Locals.push_back(Rename[L]);
      // Locals start at zero in the callee as well.
      Stmts.push_back(make<AssignStmt>(Rename[L], make<IntLitExpr>(0)));
    }
    for (const Stmt *S : F.Body)
      Stmts.push_back(cloneStmt(S, Rename));
    Stmts.push_back(make<AssignStmt>(Target, cloneExpr(F.Ret, Rename)));
    return make<BlockStmt>(std::move(Stmts));
  }

  const Expr *cloneExpr(const Expr *E,
                        const std::map<std::string, std::string> &Rename) {
    switch (E->kind()) {
    case ExprKind::VarRef: {
      const auto &Name = cast<VarRefExpr>(E)->name();
      auto It = Rename.find(Name);
      return make<VarRefExpr>(It == Rename.end() ? Name : It->second);
    }
    case ExprKind::IntLit:
      return make<IntLitExpr>(cast<IntLitExpr>(E)->value());
    case ExprKind::Havoc:
      // Each inlined copy is a fresh unknown-call site.
      return make<HavocExpr>(P.NumHavocs++);
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return make<BinaryExpr>(B->op(), cloneExpr(B->lhs(), Rename),
                              cloneExpr(B->rhs(), Rename));
    }
    }
    assert(false && "unhandled expression kind");
    return nullptr;
  }

  const Pred *clonePred(const Pred *Pd,
                        const std::map<std::string, std::string> &Rename) {
    switch (Pd->kind()) {
    case PredKind::BoolLit:
      return make<BoolLitPred>(cast<BoolLitPred>(Pd)->value());
    case PredKind::Compare: {
      const auto *C = cast<ComparePred>(Pd);
      return make<ComparePred>(C->op(), cloneExpr(C->lhs(), Rename),
                               cloneExpr(C->rhs(), Rename));
    }
    case PredKind::Logical: {
      const auto *L = cast<LogicalPred>(Pd);
      return make<LogicalPred>(L->isAnd(), clonePred(L->lhs(), Rename),
                               clonePred(L->rhs(), Rename));
    }
    case PredKind::Not:
      return make<NotPred>(clonePred(cast<NotPred>(Pd)->sub(), Rename));
    }
    assert(false && "unhandled predicate kind");
    return nullptr;
  }

  const Stmt *cloneStmt(const Stmt *S,
                        const std::map<std::string, std::string> &Rename) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      auto It = Rename.find(A->var());
      return make<AssignStmt>(It == Rename.end() ? A->var() : It->second,
                              cloneExpr(A->value(), Rename));
    }
    case StmtKind::Skip:
      return make<SkipStmt>();
    case StmtKind::Assume:
      return make<AssumeStmt>(clonePred(cast<AssumeStmt>(S)->cond(), Rename));
    case StmtKind::Block: {
      std::vector<const Stmt *> Stmts;
      for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
        Stmts.push_back(cloneStmt(Sub, Rename));
      return make<BlockStmt>(std::move(Stmts));
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      return make<IfStmt>(clonePred(I->cond(), Rename),
                          cloneStmt(I->thenStmt(), Rename),
                          I->elseStmt() ? cloneStmt(I->elseStmt(), Rename)
                                        : nullptr);
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      // Every inlined copy is a fresh loop: fresh id, and the annotation is
      // cloned with the same renaming.
      return make<WhileStmt>(P.NumLoops++, clonePred(W->cond(), Rename),
                             cloneStmt(W->body(), Rename),
                             W->annot() ? clonePred(W->annot(), Rename)
                                        : nullptr);
    }
    }
    assert(false && "unhandled statement kind");
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Predicates and expressions
  //===--------------------------------------------------------------------===//

  const Pred *parsePred() { return parseOr(); }

  const Pred *parseOr() {
    const Pred *L = parseAnd();
    while (accept(TokKind::OrOr))
      L = make<LogicalPred>(/*IsAnd=*/false, L, parseAnd());
    return L;
  }

  const Pred *parseAnd() {
    const Pred *L = parsePredUnary();
    while (accept(TokKind::AndAnd))
      L = make<LogicalPred>(/*IsAnd=*/true, L, parsePredUnary());
    return L;
  }

  const Pred *parsePredUnary() {
    if (accept(TokKind::Bang))
      return make<NotPred>(parsePredUnary());
    if (accept(TokKind::KwTrue))
      return make<BoolLitPred>(true);
    if (accept(TokKind::KwFalse))
      return make<BoolLitPred>(false);
    // A '(' is ambiguous: parenthesized predicate or parenthesized
    // arithmetic expression starting a comparison. Try predicate first by
    // backtracking on failure.
    if (at(TokKind::LParen)) {
      size_t Save = Pos;
      std::string SavedError = Error;
      Diag SavedDiag = D;
      ++Pos; // consume '('
      const Pred *Inner = parsePred();
      if (!failed() && at(TokKind::RParen) && !isCompareAhead()) {
        ++Pos;
        return Inner;
      }
      // Backtrack: treat as comparison whose LHS starts with '('.
      Pos = Save;
      Error = SavedError;
      D = SavedDiag;
    }
    return parseCompare();
  }

  /// After a parsed "(pred)" prefix, a comparison operator would mean the
  /// parenthesis was actually arithmetic: `(x + 1) < y`.
  bool isCompareAhead() const {
    switch (peek().Kind) {
    case TokKind::Lt:
    case TokKind::Gt:
    case TokKind::Le:
    case TokKind::Ge:
    case TokKind::EqEq:
    case TokKind::NotEq:
    case TokKind::Plus:
    case TokKind::Minus:
    case TokKind::Star:
      return true;
    default:
      return false;
    }
  }

  const Pred *parseCompare() {
    const Expr *L = parseExpr();
    CmpOp Op;
    switch (cur().Kind) {
    case TokKind::Lt:
      Op = CmpOp::Lt;
      break;
    case TokKind::Gt:
      Op = CmpOp::Gt;
      break;
    case TokKind::Le:
      Op = CmpOp::Le;
      break;
    case TokKind::Ge:
      Op = CmpOp::Ge;
      break;
    case TokKind::EqEq:
      Op = CmpOp::Eq;
      break;
    case TokKind::NotEq:
      Op = CmpOp::Ne;
      break;
    default:
      fail("expected a comparison operator");
      return make<BoolLitPred>(false);
    }
    ++Pos;
    const Expr *R = parseExpr();
    return make<ComparePred>(Op, L, R);
  }

  const Expr *parseExpr() {
    const Expr *L = parseTerm();
    while (!failed() && (at(TokKind::Plus) || at(TokKind::Minus))) {
      BinOp Op = at(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
      ++Pos;
      L = make<BinaryExpr>(Op, L, parseTerm());
    }
    return L;
  }

  const Expr *parseTerm() {
    const Expr *L = parseUnary();
    while (!failed() && at(TokKind::Star)) {
      ++Pos;
      L = make<BinaryExpr>(BinOp::Mul, L, parseUnary());
    }
    return L;
  }

  const Expr *parseUnary() {
    if (accept(TokKind::Minus))
      return make<BinaryExpr>(BinOp::Sub, make<IntLitExpr>(0), parseUnary());
    return parsePrimary();
  }

  const Expr *parsePrimary() {
    if (failed())
      return make<IntLitExpr>(0);
    switch (cur().Kind) {
    case TokKind::Number: {
      int64_t V = cur().Number;
      ++Pos;
      return make<IntLitExpr>(V);
    }
    case TokKind::Ident: {
      Token T = cur();
      if (peek().Kind == TokKind::LParen && Functions.count(T.Text)) {
        fail("calls are only allowed as the right-hand side of an "
             "assignment: v = " +
             T.Text + "(...)");
        return make<IntLitExpr>(0);
      }
      ++Pos;
      if (!Declared.count(T.Text)) {
        fail("use of undeclared variable '" + T.Text + "'");
        return make<IntLitExpr>(0);
      }
      return make<VarRefExpr>(T.Text);
    }
    case TokKind::KwHavoc: {
      ++Pos;
      eat(TokKind::LParen, "after 'havoc'");
      eat(TokKind::RParen, "after 'havoc('");
      return make<HavocExpr>(InFunction ? ScratchHavocs++ : P.NumHavocs++);
    }
    case TokKind::LParen: {
      ++Pos;
      const Expr *E = parseExpr();
      eat(TokKind::RParen, "to close parenthesized expression");
      return E;
    }
    default:
      fail("expected an expression");
      return make<IntLitExpr>(0);
    }
  }
};

} // namespace

ParseResult abdiag::lang::parseProgram(std::string_view Source) {
  Parser P(Source);
  return P.run();
}

std::string Diag::render() const {
  if (!hasPosition())
    return Message;
  std::ostringstream OS;
  OS << "parse error at line " << Line << ", column " << Col << ": "
     << Message;
  return OS.str();
}

ParseResult abdiag::lang::parseProgramFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    ParseResult R;
    R.D.Message = "cannot open file '" + Path + "'";
    R.Error = R.D.render();
    return R;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseProgram(SS.str());
}
