//===- lang/Parser.h - Recursive-descent parser -----------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_PARSER_H
#define ABDIAG_LANG_PARSER_H

#include "lang/Ast.h"

#include <optional>
#include <string>
#include <string_view>

namespace abdiag::lang {

/// Result of a parse: either a program or an error message with position.
struct ParseResult {
  std::optional<Program> Prog;
  std::string Error; // empty on success

  bool ok() const { return Prog.has_value(); }
};

/// Parses the concrete syntax:
///
///   file    := (function | program)*        (exactly one program)
///   function:= 'function' NAME '(' params ')' '{'
///                ('var' idents ';')* stmt* 'return' expr ';' '}'
///   program := 'program' NAME '(' params ')' '{'
///                ('var' idents ';')* stmt* 'check' '(' pred ')' ';' '}'
///
/// Statements: `v = e;`, `v = f(args);` (call, inlined at parse time),
/// `skip;`, `assume(p);`, `if (p) block [else block]`,
/// `while (p) block ['@' '[' p' ']']`. Undeclared variables, duplicate
/// declarations, recursive/undefined calls and a missing final check are
/// parse errors.
ParseResult parseProgram(std::string_view Source);

/// Convenience: parse from a file on disk.
ParseResult parseProgramFile(const std::string &Path);

} // namespace abdiag::lang

#endif // ABDIAG_LANG_PARSER_H
