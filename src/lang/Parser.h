//===- lang/Parser.h - Recursive-descent parser -----------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_LANG_PARSER_H
#define ABDIAG_LANG_PARSER_H

#include "lang/Ast.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace abdiag::lang {

/// A structured diagnostic: the bare message plus the source position it
/// anchors to. Line/Col are 1-based; both 0 means "no position" (e.g. the
/// file could not be opened).
struct Diag {
  std::string Message; ///< bare message, no position prefix
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool hasPosition() const { return Line != 0; }
  /// Renders "parse error at line L, column C: message" (or just the
  /// message when there is no position).
  std::string render() const;
};

/// Result of a parse: either a program or a structured diagnostic.
struct ParseResult {
  std::optional<Program> Prog;
  Diag D;            ///< filled on failure
  std::string Error; // rendered D; empty on success

  bool ok() const { return Prog.has_value(); }
};

/// Parses the concrete syntax:
///
///   file    := (function | program)*        (exactly one program)
///   function:= 'function' NAME '(' params ')' '{'
///                ('var' idents ';')* stmt* 'return' expr ';' '}'
///   program := 'program' NAME '(' params ')' '{'
///                ('var' idents ';')* stmt* 'check' '(' pred ')' ';' '}'
///
/// Statements: `v = e;`, `v = f(args);` (first-class call statement),
/// `skip;`, `assume(p);`, `if (p) block [else block]`,
/// `while (p) block ['@' '[' p' ']']`. Undeclared variables, duplicate
/// declarations, undefined callees, arity mismatches and a missing final
/// check are parse errors (call errors carry the call site's line/col).
/// Functions may be defined in any order and may be (mutually) recursive;
/// cycles are marked on `FunctionDef::Recursive`. The symbolic analysis
/// instantiates per-call-site summaries; `lang/Inline.h` offers the
/// legacy whole-program inlining (which rejects recursion) as an opt-in
/// lowering pass.
ParseResult parseProgram(std::string_view Source);

/// Convenience: parse from a file on disk.
ParseResult parseProgramFile(const std::string &Path);

} // namespace abdiag::lang

#endif // ABDIAG_LANG_PARSER_H
