//===- server/Client.cpp - Mirror-oracle replay client -----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include "smt/FormulaParser.h"

#include <chrono>

using namespace abdiag;
using namespace abdiag::server;

/// Replay state for one in-flight session. The mirror is built at the first
/// ask: sessions the daemon decides by analysis alone never pay for one.
struct ReplayClient::Live {
  size_t ItemIndex = 0;
  const ReplayItem *Item = nullptr;
  std::unique_ptr<core::ErrorDiagnoser> Mirror;
  std::unique_ptr<core::ConcreteOracle> Oracle;
  bool MirrorBroken = false; ///< mirror load failed; answer Unknown
  std::chrono::steady_clock::time_point LastSend;
  ReplayOutcome Out;
};

ReplayClient::ReplayClient(ReplayOptions Opts_) : Opts(std::move(Opts_)) {}
ReplayClient::~ReplayClient() = default;

bool ReplayClient::connectUnixSocket(const std::string &Path,
                                     std::string &Err) {
  Fd = connectUnix(Path, Err);
  return Fd.valid();
}

bool ReplayClient::connectTcpPort(int Port, std::string &Err) {
  Fd = connectTcp(Port, Err);
  return Fd.valid();
}

bool ReplayClient::submitOne(const ReplayItem &Item,
                             const std::string &Session, std::string &Err) {
  std::string F = "{\"schema\":" + std::to_string(kProtocolSchema);
  F += ",\"op\":\"submit\",\"session\":\"" + jsonEscape(Session) + "\"";
  F += ",\"name\":\"" + jsonEscape(Item.Name) + "\"";
  if (!Item.Source.empty())
    F += ",\"source\":\"" + jsonEscape(Item.Source) + "\"";
  else
    F += ",\"path\":\"" + jsonEscape(Item.Path) + "\"";
  if (!Opts.Tenant.empty())
    F += ",\"tenant\":\"" + jsonEscape(Opts.Tenant) + "\"";
  F += "}\n";
  if (!writeAll(Fd.get(), F)) {
    Err = "write failed during submit";
    return false;
  }
  return true;
}

core::Answer ReplayClient::answerAsk(Live &L, const ServerMessage &M) {
  if (!L.Mirror && !L.MirrorBroken) {
    L.Mirror = std::make_unique<core::ErrorDiagnoser>(Opts.Pipeline);
    core::LoadResult R = L.Item->Source.empty()
                             ? L.Mirror->loadFile(L.Item->Path)
                             : L.Mirror->loadSource(L.Item->Source);
    if (!R) {
      L.MirrorBroken = true;
      L.Mirror.reset();
    } else {
      L.Oracle = L.Mirror->makeConcreteOracle(Opts.Oracle);
    }
  }
  if (L.MirrorBroken)
    return core::Answer::Unknown;

  smt::FormulaParseOptions PO;
  PO.CreateUnknownVars = false; // the analysis already named every variable
  smt::FormulaParseResult F =
      smt::parseFormula(L.Mirror->manager(), M.Formula, PO);
  if (!F.ok()) {
    ++L.Out.ParseFailures;
    return core::Answer::Unknown;
  }
  if (M.Invariant)
    return L.Oracle->isInvariant(F.F);
  const smt::Formula *Given = L.Mirror->manager().getTrue();
  if (!M.Given.empty()) {
    smt::FormulaParseResult G =
        smt::parseFormula(L.Mirror->manager(), M.Given, PO);
    if (!G.ok()) {
      ++L.Out.ParseFailures;
      return core::Answer::Unknown;
    }
    Given = G.F;
  }
  return L.Oracle->isPossible(F.F, Given);
}

bool ReplayClient::run(const std::vector<ReplayItem> &Items,
                       std::vector<ReplayOutcome> &Outcomes,
                       std::string &Err) {
  Outcomes.assign(Items.size(), ReplayOutcome());
  std::map<std::string, Live> InFlight;
  size_t NextItem = 0, Finished = 0;
  LineReader Reader(Fd.get());

  auto SessionId = [&](size_t Index) {
    return Items[Index].Session.empty() ? "s" + std::to_string(Index)
                                        : Items[Index].Session;
  };
  bool NotifiedAllSubmitted = false;
  auto TopUp = [&]() -> bool {
    while (NextItem < Items.size() && InFlight.size() < Opts.MaxInFlight) {
      std::string Id = SessionId(NextItem);
      Live &L = InFlight[Id];
      L.ItemIndex = NextItem;
      L.Item = &Items[NextItem];
      L.Out.Session = Id;
      L.Out.Name = Items[NextItem].Name;
      if (!submitOne(Items[NextItem], Id, Err))
        return false;
      L.LastSend = std::chrono::steady_clock::now();
      ++NextItem;
    }
    if (NextItem == Items.size() && !NotifiedAllSubmitted) {
      NotifiedAllSubmitted = true;
      if (Opts.OnAllSubmitted)
        Opts.OnAllSubmitted();
    }
    return true;
  };

  if (!TopUp())
    return false;

  std::string Line;
  while (Finished < Items.size()) {
    if (!Reader.readLine(Line)) {
      Err = "connection closed with " +
            std::to_string(Items.size() - Finished) + " sessions unresolved";
      return false;
    }
    std::string ParseErr;
    std::optional<ServerMessage> M = parseServerMessage(Line, ParseErr);
    if (!M) {
      Err = "bad server frame: " + ParseErr;
      return false;
    }
    auto It = InFlight.find(M->Session);
    if (It == InFlight.end())
      continue; // frame for a session we already gave up on
    Live &L = It->second;
    if (Opts.RecordRtt)
      L.Out.RttMs.push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - L.LastSend)
                                .count());

    switch (M->K) {
    case ServerMessage::Kind::Ask: {
      core::Answer A = answerAsk(L, *M);
      ++L.Out.AsksAnswered;
      std::string F = "{\"schema\":" + std::to_string(kProtocolSchema);
      F += ",\"op\":\"answer\",\"session\":\"" + jsonEscape(M->Session) + "\"";
      F += ",\"query\":" + std::to_string(M->Query);
      F += ",\"answer\":\"" + std::string(core::answerName(A)) + "\"";
      F += "}\n";
      if (!writeAll(Fd.get(), F)) {
        Err = "write failed during answer";
        return false;
      }
      L.LastSend = std::chrono::steady_clock::now();
      break;
    }
    case ServerMessage::Kind::Result:
    case ServerMessage::Kind::Error: {
      if (M->K == ServerMessage::Kind::Result) {
        L.Out.Status = M->Status;
        L.Out.Verdict = M->Verdict;
        L.Out.Queries = M->Queries;
        L.Out.Message = M->Message;
      } else {
        L.Out.Status = "refused";
        L.Out.Verdict.clear();
        L.Out.Message = M->Code + ": " + M->Message;
      }
      Outcomes[L.ItemIndex] = std::move(L.Out);
      InFlight.erase(It);
      ++Finished;
      if (!TopUp())
        return false;
      break;
    }
    }
  }
  return true;
}
