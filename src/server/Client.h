//===- server/Client.h - Mirror-oracle replay client ------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scripted abdiagd client that answers the daemon's questions the way
/// the batch pipeline would: for each session it lazily builds a *mirror*
/// ErrorDiagnoser over the same program (analysis is deterministic, so
/// variable names agree), parses each incoming ask's formula text into the
/// mirror's FormulaManager, and answers with its own ConcreteOracle. A
/// daemon session replayed this way must produce the byte-identical verdict
/// to batch `TriageEngine` triage of the same file -- the replay tests and
/// the perf_daemon load harness both assert exactly that.
///
/// The client multiplexes many concurrent sessions over one connection,
/// keeping at most MaxInFlight submitted-but-unfinished; mirrors exist only
/// from a session's first ask to its result frame, which bounds client
/// memory by the daemon's active-session cap, not by the queue depth.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SERVER_CLIENT_H
#define ABDIAG_SERVER_CLIENT_H

#include "core/ErrorDiagnoser.h"
#include "server/Protocol.h"
#include "support/Socket.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace abdiag::server {

/// One program to replay.
struct ReplayItem {
  std::string Session; ///< wire session id; defaults to "s<index>" if empty
  std::string Name;
  std::string Source; ///< submitted inline when non-empty
  std::string Path;   ///< submitted by path (daemon-side load) otherwise
};

struct ReplayOptions {
  /// Pipeline knobs for the mirror diagnosers. Must match the daemon's
  /// configuration for verdict identity.
  abdiag::Options Pipeline;
  /// Mirror concrete-oracle bounds; must likewise match whatever batch run
  /// the verdicts are compared against.
  core::ConcreteOracleConfig Oracle;
  /// Submitted-but-unfinished sessions to keep open at once.
  size_t MaxInFlight = 8;
  /// Tenant name stamped on submits; empty uses the daemon's default.
  std::string Tenant;
  /// Record per-frame round-trip times (for the load harness).
  bool RecordRtt = false;
  /// Invoked once, right after the last item has been submitted and before
  /// the frame that follows it is read. The load harness uses this as a
  /// cross-connection barrier: no connection starts answering until every
  /// connection has submitted its whole partition, which pins the daemon's
  /// open-session high-water mark at exactly the session count.
  std::function<void()> OnAllSubmitted;
};

/// What one session came back with.
struct ReplayOutcome {
  std::string Session;
  std::string Name;
  std::string Status;  ///< triageStatusName spelling, or "refused"
  std::string Verdict; ///< diagnosisVerdictName spelling ("" unless diagnosed)
  std::string Message; ///< error detail for refused/errored sessions
  uint64_t Queries = 0;
  uint64_t AsksAnswered = 0;
  uint64_t ParseFailures = 0; ///< asks answered Unknown because the mirror
                              ///< could not parse the formula text
  /// Time from sending submit/answer to receiving this session's next
  /// frame, when RecordRtt is set.
  std::vector<double> RttMs;
};

/// Replays a batch of programs against a daemon over one connection.
class ReplayClient {
public:
  explicit ReplayClient(ReplayOptions Opts);
  ~ReplayClient();

  bool connectUnixSocket(const std::string &Path, std::string &Err);
  bool connectTcpPort(int Port, std::string &Err);

  /// Runs every item to a result (or error) frame. Outcomes are in item
  /// order. False + \p Err on transport failure.
  bool run(const std::vector<ReplayItem> &Items,
           std::vector<ReplayOutcome> &Outcomes, std::string &Err);

private:
  struct Live; ///< per-session replay state (mirror diagnoser + oracle)

  ReplayOptions Opts;
  FdHandle Fd;

  bool submitOne(const ReplayItem &Item, const std::string &Session,
                 std::string &Err);
  core::Answer answerAsk(Live &L, const ServerMessage &M);
};

} // namespace abdiag::server

#endif // ABDIAG_SERVER_CLIENT_H
