//===- server/Protocol.cpp - abdiagd wire protocol ---------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <cstdio>
#include <cstdlib>

using namespace abdiag;
using namespace abdiag::server;

std::string server::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JsonObject
//===----------------------------------------------------------------------===//

namespace {

/// Single-pass scanner over one JSON line. Only what the protocol needs:
/// flat objects of strings and scalars; nested values are skipped.
class Scanner {
public:
  Scanner(const std::string &S, std::string &Err) : S(S), Err(Err) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at offset " + std::to_string(At);
    return false;
  }

  void ws() {
    while (At < S.size() && (S[At] == ' ' || S[At] == '\t' || S[At] == '\r'))
      ++At;
  }

  bool eat(char C) {
    ws();
    if (At >= S.size() || S[At] != C)
      return fail(std::string("expected '") + C + "'");
    ++At;
    return true;
  }

  bool peek(char C) {
    ws();
    return At < S.size() && S[At] == C;
  }

  bool atEnd() {
    ws();
    return At >= S.size();
  }

  bool string(std::string &Out) {
    if (!eat('"'))
      return false;
    Out.clear();
    while (At < S.size()) {
      char C = S[At++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (At >= S.size())
        return fail("dangling escape");
      char E = S[At++];
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (At + 4 > S.size())
          return fail("truncated \\u escape");
        char *End = nullptr;
        char Hex[5] = {S[At], S[At + 1], S[At + 2], S[At + 3], 0};
        long V = std::strtol(Hex, &End, 16);
        if (End != Hex + 4)
          return fail("bad \\u escape");
        At += 4;
        // The protocol only ever escapes control bytes; anything beyond
        // Latin-1 is passed through as '?' rather than growing a UTF-8
        // encoder here.
        Out += V < 0x100 ? static_cast<char>(V) : '?';
        break;
      }
      default:
        Out += E; // \" \\ \/ and friends
      }
    }
    return fail("unterminated string");
  }

  /// Raw scalar token (number/bool/null).
  bool scalar(std::string &Out) {
    ws();
    size_t Start = At;
    while (At < S.size() && (std::isalnum(static_cast<unsigned char>(S[At])) ||
                             S[At] == '-' || S[At] == '+' || S[At] == '.'))
      ++At;
    if (At == Start)
      return fail("expected value");
    Out.assign(S, Start, At - Start);
    return true;
  }

  /// Skips one value of any shape, keeping brackets balanced.
  bool skipValue() {
    ws();
    if (At >= S.size())
      return fail("expected value");
    char C = S[At];
    if (C == '"') {
      std::string Tmp;
      return string(Tmp);
    }
    if (C == '{' || C == '[') {
      char Open = C, Close = C == '{' ? '}' : ']';
      int Depth = 0;
      while (At < S.size()) {
        char D = S[At];
        if (D == '"') {
          std::string Tmp;
          if (!string(Tmp))
            return false;
          continue;
        }
        ++At;
        if (D == Open)
          ++Depth;
        else if (D == Close && --Depth == 0)
          return true;
      }
      return fail("unbalanced brackets");
    }
    std::string Tmp;
    return scalar(Tmp);
  }

private:
  const std::string &S;
  std::string &Err;
  size_t At = 0;

  friend class abdiag::server::JsonObject;
};

} // namespace

std::optional<JsonObject> JsonObject::parse(const std::string &Line,
                                            std::string &Err) {
  Err.clear();
  Scanner Sc(Line, Err);
  JsonObject O;
  if (!Sc.eat('{'))
    return std::nullopt;
  if (!Sc.peek('}')) {
    for (;;) {
      std::string Key;
      if (!Sc.string(Key) || !Sc.eat(':'))
        return std::nullopt;
      Sc.ws();
      if (Sc.peek('"')) {
        std::string V;
        if (!Sc.string(V))
          return std::nullopt;
        O.Strings[Key] = std::move(V);
      } else if (Sc.peek('{') || Sc.peek('[')) {
        if (!Sc.skipValue())
          return std::nullopt;
      } else {
        std::string V;
        if (!Sc.scalar(V))
          return std::nullopt;
        O.Scalars[Key] = std::move(V);
      }
      if (Sc.peek(',')) {
        Sc.eat(',');
        continue;
      }
      break;
    }
  }
  if (!Sc.eat('}'))
    return std::nullopt;
  if (!Sc.atEnd()) {
    Sc.fail("trailing garbage");
    return std::nullopt;
  }
  return O;
}

std::optional<std::string> JsonObject::str(const std::string &Key) const {
  auto It = Strings.find(Key);
  if (It == Strings.end())
    return std::nullopt;
  return It->second;
}

std::optional<int64_t> JsonObject::integer(const std::string &Key) const {
  auto It = Scalars.find(Key);
  if (It == Scalars.end())
    return std::nullopt;
  char *End = nullptr;
  long long V = std::strtoll(It->second.c_str(), &End, 10);
  if (End == It->second.c_str())
    return std::nullopt;
  return V;
}

//===----------------------------------------------------------------------===//
// Client frames
//===----------------------------------------------------------------------===//

std::optional<ClientMessage>
server::parseClientMessage(const std::string &Line, std::string &Err) {
  std::optional<JsonObject> O = JsonObject::parse(Line, Err);
  if (!O)
    return std::nullopt;
  ClientMessage M;
  std::optional<std::string> Op = O->str("op");
  std::optional<std::string> Session = O->str("session");
  if (!Op) {
    Err = "missing \"op\"";
    return std::nullopt;
  }
  if (!Session || Session->empty()) {
    Err = "missing \"session\"";
    return std::nullopt;
  }
  M.Session = *Session;
  if (*Op == "submit") {
    M.Op = ClientOp::Submit;
    M.Name = O->str("name").value_or(M.Session);
    M.Source = O->str("source").value_or("");
    M.Path = O->str("path").value_or("");
    M.Tenant = O->str("tenant").value_or("");
    if (M.Source.empty() && M.Path.empty()) {
      Err = "submit needs \"source\" or \"path\"";
      return std::nullopt;
    }
  } else if (*Op == "answer") {
    M.Op = ClientOp::Answer;
    std::optional<int64_t> Q = O->integer("query");
    if (!Q || *Q < 0) {
      Err = "answer needs a non-negative \"query\" index";
      return std::nullopt;
    }
    M.Query = static_cast<uint64_t>(*Q);
    std::optional<std::string> A = O->str("answer");
    std::optional<core::Answer> Parsed =
        A ? core::parseAnswer(*A) : std::nullopt;
    if (!Parsed) {
      Err = "answer needs \"answer\": yes|no|unknown";
      return std::nullopt;
    }
    M.Ans = *Parsed;
  } else if (*Op == "cancel") {
    M.Op = ClientOp::Cancel;
  } else {
    Err = "unknown op \"" + *Op + "\"";
    return std::nullopt;
  }
  return M;
}

//===----------------------------------------------------------------------===//
// Server frames
//===----------------------------------------------------------------------===//

static std::string frameHead(const char *Op, const std::string &Session) {
  std::string F = "{\"schema\":" + std::to_string(kProtocolSchema);
  F += ",\"op\":\"";
  F += Op;
  F += "\",\"session\":\"" + jsonEscape(Session) + "\"";
  return F;
}

std::string server::askFrame(const std::string &Session,
                             const core::SessionQuery &Q, bool IsInvariant) {
  std::string F = frameHead("ask", Session);
  F += ",\"query\":" + std::to_string(Q.Index);
  F += ",\"kind\":\"";
  F += IsInvariant ? "invariant" : "witness";
  F += "\"";
  F += ",\"formula\":\"" + jsonEscape(Q.Formula) + "\"";
  if (!Q.GivenText.empty())
    F += ",\"given\":\"" + jsonEscape(Q.GivenText) + "\"";
  F += ",\"text\":\"" + jsonEscape(Q.Text) + "\"";
  F += "}";
  return F;
}

std::string server::resultFrame(const std::string &Session,
                                const core::TriageReport &R) {
  std::string F = frameHead("result", Session);
  F += ",\"status\":\"" + std::string(core::triageStatusName(R.Status)) + "\"";
  if (R.Status == core::TriageStatus::Diagnosed)
    F += ",\"verdict\":\"" +
         std::string(core::diagnosisVerdictName(R.Outcome)) + "\"";
  if (!R.Message.empty())
    F += ",\"message\":\"" + jsonEscape(R.Message) + "\"";
  F += ",\"loc\":" + std::to_string(R.Loc);
  F += ",\"queries\":" + std::to_string(R.Queries);
  F += ",\"answers\":{";
  F += "\"" + std::string(core::answerName(core::Answer::Yes)) +
       "\":" + std::to_string(R.AnswersYes);
  F += ",\"" + std::string(core::answerName(core::Answer::No)) +
       "\":" + std::to_string(R.AnswersNo);
  F += ",\"" + std::string(core::answerName(core::Answer::Unknown)) +
       "\":" + std::to_string(R.AnswersUnknown);
  F += "}";
  F += ",\"iterations\":" + std::to_string(R.Iterations);
  F += ",\"escalated\":";
  F += R.Escalated ? "true" : "false";
  F += ",\"analysis_alone\":";
  F += R.AnalysisAlone ? "true" : "false";
  char Wall[32];
  std::snprintf(Wall, sizeof(Wall), "%.3f", R.WallMs);
  F += ",\"wall_ms\":";
  F += Wall;
  F += "}";
  return F;
}

std::string server::errorFrame(const std::string &Session,
                               const std::string &Code,
                               const std::string &Message) {
  std::string F = frameHead("error", Session);
  F += ",\"code\":\"" + jsonEscape(Code) + "\"";
  F += ",\"message\":\"" + jsonEscape(Message) + "\"";
  F += "}";
  return F;
}

std::optional<ServerMessage>
server::parseServerMessage(const std::string &Line, std::string &Err) {
  std::optional<JsonObject> O = JsonObject::parse(Line, Err);
  if (!O)
    return std::nullopt;
  ServerMessage M;
  std::optional<std::string> Op = O->str("op");
  if (!Op) {
    Err = "missing \"op\"";
    return std::nullopt;
  }
  M.Session = O->str("session").value_or("");
  if (*Op == "ask") {
    M.K = ServerMessage::Kind::Ask;
    M.Query = static_cast<uint64_t>(O->integer("query").value_or(0));
    M.Invariant = O->str("kind").value_or("invariant") == "invariant";
    M.Formula = O->str("formula").value_or("");
    M.Given = O->str("given").value_or("");
  } else if (*Op == "result") {
    M.K = ServerMessage::Kind::Result;
    M.Status = O->str("status").value_or("");
    M.Verdict = O->str("verdict").value_or("");
    M.Queries = static_cast<uint64_t>(O->integer("queries").value_or(0));
    M.Message = O->str("message").value_or("");
  } else if (*Op == "error") {
    M.K = ServerMessage::Kind::Error;
    M.Code = O->str("code").value_or("");
    M.Message = O->str("message").value_or("");
  } else {
    Err = "unknown op \"" + *Op + "\"";
    return std::nullopt;
  }
  return M;
}
