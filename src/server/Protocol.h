//===- server/Protocol.h - abdiagd wire protocol ----------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-delimited JSON protocol between abdiagd and its clients. Every
/// frame is one JSON object on one line with an "op" discriminator and a
/// "schema" version:
///
///   client -> server
///     {"schema":1,"op":"submit","session":"s1","name":"p1","source":"..."}
///     {"schema":1,"op":"answer","session":"s1","query":0,"answer":"yes"}
///     {"schema":1,"op":"cancel","session":"s1"}
///
///   server -> client
///     {"schema":1,"op":"ask","session":"s1","query":0,"kind":"invariant",
///      "formula":"i@loop1 >= 0","text":"Does \"...\" hold ..."}
///     {"schema":1,"op":"result","session":"s1","status":"diagnosed",
///      "verdict":"false_alarm","queries":3,...}
///     {"schema":1,"op":"error","session":"s1","code":"busy","message":"..."}
///
/// Session ids are chosen by the client and scoped to its connection. The
/// "formula"/"given" fields of an ask are in smt/FormulaParser syntax, so a
/// client holding its own copy of the program can reconstruct the query in
/// its own FormulaManager and answer it mechanically.
///
/// Readers are tolerant: unknown keys are ignored, and a frame whose
/// "schema" is *newer* than ours is still processed best-effort (the bump
/// rule in benchmarks/README.md reserves bumps for breaking changes).
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SERVER_PROTOCOL_H
#define ABDIAG_SERVER_PROTOCOL_H

#include "core/InteractiveSession.h"

#include <map>
#include <optional>
#include <string>

namespace abdiag::server {

/// Wire schema version shared by both message directions.
constexpr int kProtocolSchema = 1;

/// JSON string escaping shared by every frame writer.
std::string jsonEscape(const std::string &S);

/// One parsed top-level JSON object: scalar fields only. String values are
/// unescaped; numbers/bools keep their raw spelling; nested objects and
/// arrays are skipped (balanced) -- the protocol never requires reading
/// them back.
class JsonObject {
public:
  /// Parses one frame. Returns nullopt and fills \p Err on malformed input.
  static std::optional<JsonObject> parse(const std::string &Line,
                                         std::string &Err);

  std::optional<std::string> str(const std::string &Key) const;
  std::optional<int64_t> integer(const std::string &Key) const;

private:
  std::map<std::string, std::string> Strings;
  std::map<std::string, std::string> Scalars; ///< raw number/bool/null text
};

/// Ops a client may send.
enum class ClientOp : uint8_t { Submit, Answer, Cancel };

/// A decoded client frame.
struct ClientMessage {
  ClientOp Op = ClientOp::Submit;
  std::string Session;
  // Submit fields.
  std::string Name;
  std::string Source;
  std::string Path;
  std::string Tenant; ///< optional; empty means per-connection default
  // Answer fields.
  uint64_t Query = 0;
  core::Answer Ans = core::Answer::Unknown;
};

/// Parses one client frame; nullopt + \p Err when the frame is malformed
/// (bad JSON, missing op/session, unknown op, unparseable answer).
std::optional<ClientMessage> parseClientMessage(const std::string &Line,
                                                std::string &Err);

/// Frame writers (no trailing newline; the transport appends it).
std::string askFrame(const std::string &Session, const core::SessionQuery &Q,
                     bool IsInvariant);
std::string resultFrame(const std::string &Session,
                        const core::TriageReport &R);
std::string errorFrame(const std::string &Session, const std::string &Code,
                       const std::string &Message);

/// Ops a server may send, decoded for client implementations.
struct ServerMessage {
  enum class Kind : uint8_t { Ask, Result, Error } K = Kind::Error;
  std::string Session;
  // Ask fields.
  uint64_t Query = 0;
  bool Invariant = true; ///< "kind" was "invariant" (else witness)
  std::string Formula;
  std::string Given;
  // Result fields.
  std::string Status;
  std::string Verdict;
  uint64_t Queries = 0;
  // Error fields (Message also carries result-row messages).
  std::string Code;
  std::string Message;
};

std::optional<ServerMessage> parseServerMessage(const std::string &Line,
                                                std::string &Err);

} // namespace abdiag::server

#endif // ABDIAG_SERVER_PROTOCOL_H
