//===- server/Server.cpp - The abdiagd triage daemon -------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Threading model. One reader thread per connection parses client frames
// and mutates the session table under the server mutex; session worker
// threads (inside core::InteractiveSession) enqueue weak tickets on the
// ready channel from their OnEvent callback; a single dispatcher thread
// owns all poll()/destroy traffic on sessions, so a session's lifetime
// after start is: dispatcher polls events -> dispatcher writes frames ->
// dispatcher destroys. The housekeeping thread only cancels (idle reaping)
// and retires dead connections. Lock order: server mutex before session
// mutex; the per-connection write mutex is taken with neither held.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <algorithm>

using namespace abdiag;
using namespace abdiag::server;

//===----------------------------------------------------------------------===//
// Internal structures
//===----------------------------------------------------------------------===//

struct DaemonServer::Connection {
  uint64_t Id = 0;
  FdHandle Fd;       ///< read side (and write side for sockets)
  FdHandle WriteFd_; ///< separate write fd for stdio mode
  int WriteFd = -1;
  std::mutex WriteMu;
  std::string DefaultTenant;

  // Guarded by the server mutex.
  bool Dead = false;       ///< EOF seen or a write failed; sessions cancelled
  bool AnswersClosed = false; ///< stdio EOF: asks can never be answered
  bool TornDown = false;   ///< closeConnection already ran
  bool ReaderDone = false; ///< reader thread exited (retire me)
  std::map<std::string, std::shared_ptr<SessionEntry>> Sessions;

  std::thread Reader; ///< empty in stdio mode (reader runs inline)
};

struct DaemonServer::SessionEntry {
  std::shared_ptr<Connection> Conn;
  std::string Id; ///< client-chosen, scoped to Conn
  std::string Tenant;
  std::string Name;
  std::string Source;
  std::string Path;

  // Guarded by the server mutex. S is written once by startSession and
  // reset only by the dispatcher (or stop() after every thread is joined).
  std::unique_ptr<core::InteractiveSession> S;
  bool Queued = false;   ///< admitted but waiting for an active slot
  bool Finished = false; ///< result frame handled
  bool AwaitingAnswer = false;
  uint64_t PendingQuery = 0;
  uint64_t NextExpected = 0; ///< lowest query index not yet answered
  std::map<uint64_t, core::Answer> BufferedAnswers; ///< pipelined answers
  std::chrono::steady_clock::time_point LastActivity;
};

struct DaemonServer::PendingSubmit {
  std::shared_ptr<Connection> Conn;
  std::shared_ptr<SessionEntry> Entry;
};

/// Pipelined answers a client may park per session before the matching
/// asks exist; beyond this the frames are refused.
static constexpr size_t kMaxBufferedAnswers = 4096;

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

DaemonServer::DaemonServer(ServerConfig Cfg_) : Cfg(std::move(Cfg_)) {}

DaemonServer::~DaemonServer() { stop(); }

bool DaemonServer::start(std::string &Err) {
  if (!Cfg.UnixPath.empty()) {
    ListenFd = listenUnix(Cfg.UnixPath, Err);
  } else if (Cfg.TcpPort >= 0) {
    ListenFd = listenTcp(Cfg.TcpPort, BoundPort, Err);
  } else {
    Err = "no listen address configured";
    return false;
  }
  if (!ListenFd.valid())
    return false;
  AcceptThread = std::thread([this] { acceptLoop(); });
  DispatchThread = std::thread([this] { dispatchLoop(); });
  HousekeepThread = std::thread([this] { housekeepLoop(); });
  return true;
}

void DaemonServer::serveStdio() {
  DispatchThread = std::thread([this] { dispatchLoop(); });
  HousekeepThread = std::thread([this] { housekeepLoop(); });

  auto Conn = std::make_shared<Connection>();
  Conn->Fd = FdHandle(::dup(0));
  Conn->WriteFd_ = FdHandle(::dup(1));
  Conn->WriteFd = Conn->WriteFd_.get();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Conn->Id = NextConnId++;
    Conn->DefaultTenant = "stdio";
    Connections.push_back(Conn);
  }
  // Inline reader; EOF on stdin means "no more input", not "client gone":
  // finish the submitted work before exiting.
  LineReader Reader(Conn->Fd.get());
  std::string Line;
  while (Reader.readLine(Line))
    handleLine(Conn, Line);
  {
    // No answer can arrive anymore: cancel sessions parked on an ask (and,
    // via AnswersClosed, any that ask from here on) so the drain can end.
    std::lock_guard<std::mutex> Lock(Mu);
    Conn->ReaderDone = true;
    Conn->AnswersClosed = true;
    for (auto &[Id, E] : Conn->Sessions)
      if (E->S && E->AwaitingAnswer)
        E->S->cancel();
  }
  requestDrain();
  wait();
  stop();
}

void DaemonServer::requestDrain() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Draining)
      return;
    Draining = true;
    maybeSignalDrained();
  }
  ListenFd.shutdownBoth(); // unblock accept()
}

void DaemonServer::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  DrainedCv.wait(Lock, [&] {
    return Stopping || (Draining && Active == 0 && Pending.empty());
  });
}

void DaemonServer::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopping)
      return;
    Stopping = true;
    Draining = true;
  }
  StopFlag.store(true);
  ListenFd.shutdownBoth();

  std::vector<std::shared_ptr<Connection>> Conns;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Conns = Connections;
    for (const auto &C : Conns) {
      C->Dead = true;
      C->Fd.shutdownBoth(); // unblock the reader
      for (auto &[Id, E] : C->Sessions)
        if (E->S)
          E->S->cancel();
    }
    Pending.clear();
  }

  ReadyQ.close();
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (DispatchThread.joinable())
    DispatchThread.join();
  if (HousekeepThread.joinable())
    HousekeepThread.join();
  for (const auto &C : Conns)
    if (C->Reader.joinable())
      C->Reader.join();

  // Every thread that could touch a session is gone; tear the remaining
  // sessions down (the destructor cancels and joins each worker).
  std::vector<std::shared_ptr<SessionEntry>> Leftover;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &C : Conns) {
      for (auto &[Id, E] : C->Sessions)
        Leftover.push_back(E);
      C->Sessions.clear();
    }
    Connections.clear();
  }
  for (const auto &E : Leftover)
    E->S.reset();

  {
    std::lock_guard<std::mutex> Lock(Mu);
    DrainedCv.notify_all();
  }
  ListenFd.reset();
}

DaemonServer::Stats DaemonServer::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

void DaemonServer::maybeSignalDrained() {
  if (Draining && Active == 0 && Pending.empty())
    DrainedCv.notify_all();
}

//===----------------------------------------------------------------------===//
// Accept / reader threads
//===----------------------------------------------------------------------===//

void DaemonServer::acceptLoop() {
  for (;;) {
    FdHandle Fd = acceptOne(ListenFd.get());
    if (!Fd.valid())
      return; // listener shut down (drain/stop)
    if (StopFlag.load())
      return;
    auto Conn = std::make_shared<Connection>();
    Conn->WriteFd = Fd.get();
    Conn->Fd = std::move(Fd);
    bool Refuse = false;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Conn->Id = NextConnId++;
      Conn->DefaultTenant = "conn-" + std::to_string(Conn->Id);
      Refuse = Draining;
      if (!Refuse)
        Connections.push_back(Conn);
    }
    if (Refuse) {
      // Raced the drain: tell the peer why before hanging up.
      sendFrame(Conn, errorFrame("", "draining", "daemon is draining"));
      continue;
    }
    Conn->Reader = std::thread([this, Conn] { serveConnection(Conn); });
  }
}

void DaemonServer::serveConnection(std::shared_ptr<Connection> Conn) {
  LineReader Reader(Conn->Fd.get());
  std::string Line;
  while (Reader.readLine(Line)) {
    if (StopFlag.load())
      break;
    handleLine(Conn, Line);
  }
  closeConnection(Conn); // peer is gone: cancel whatever it abandoned
  std::lock_guard<std::mutex> Lock(Mu);
  Conn->ReaderDone = true;
}

void DaemonServer::handleLine(const std::shared_ptr<Connection> &Conn,
                              const std::string &Line) {
  if (Line.empty())
    return;
  std::string Err;
  std::optional<ClientMessage> M = parseClientMessage(Line, Err);
  if (!M) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++St.ProtocolErrors;
    }
    sendError(Conn, "", "bad_message", Err);
    return;
  }
  switch (M->Op) {
  case ClientOp::Submit:
    handleSubmit(Conn, std::move(*M));
    break;
  case ClientOp::Answer:
    handleAnswer(Conn, *M);
    break;
  case ClientOp::Cancel:
    handleCancel(Conn, *M);
    break;
  }
}

//===----------------------------------------------------------------------===//
// Frame handlers
//===----------------------------------------------------------------------===//

void DaemonServer::handleSubmit(const std::shared_ptr<Connection> &Conn,
                                ClientMessage M) {
  std::shared_ptr<SessionEntry> StartNow;
  std::string RefuseCode, RefuseMsg;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Conn->Dead || Stopping)
      return;
    std::string Tenant = M.Tenant.empty() ? Conn->DefaultTenant : M.Tenant;
    if (Draining) {
      RefuseCode = "draining";
      RefuseMsg = "daemon is draining; not accepting new sessions";
      ++St.Refused;
    } else if (Conn->Sessions.count(M.Session)) {
      RefuseCode = "duplicate_session";
      RefuseMsg = "session id '" + M.Session + "' already in use";
      ++St.ProtocolErrors;
    } else if (Cfg.MaxSessionsPerTenant &&
               TenantLoad[Tenant] >= Cfg.MaxSessionsPerTenant) {
      RefuseCode = "tenant_limit";
      RefuseMsg = "tenant '" + Tenant + "' is at its session cap";
      ++St.Refused;
    } else if (Active >= Cfg.MaxActiveSessions &&
               Pending.size() >= Cfg.MaxPendingSessions) {
      RefuseCode = "busy";
      RefuseMsg = "active sessions and pending queue are both full";
      ++St.Refused;
    } else {
      auto Entry = std::make_shared<SessionEntry>();
      Entry->Conn = Conn;
      Entry->Id = M.Session;
      Entry->Tenant = Tenant;
      Entry->Name = M.Name;
      Entry->Source = std::move(M.Source);
      Entry->Path = std::move(M.Path);
      Entry->LastActivity = std::chrono::steady_clock::now();
      Conn->Sessions[Entry->Id] = Entry;
      ++TenantLoad[Tenant];
      ++St.Submitted;
      St.PeakOpen = std::max(St.PeakOpen, St.Submitted - St.Completed);
      if (Active < Cfg.MaxActiveSessions) {
        ++Active;
        St.PeakActive = std::max(St.PeakActive, Active);
        StartNow = Entry;
      } else {
        Entry->Queued = true;
        Pending.push_back(PendingSubmit{Conn, Entry});
      }
    }
  }
  if (!RefuseCode.empty()) {
    sendError(Conn, M.Session, RefuseCode, RefuseMsg);
    return;
  }
  if (StartNow)
    startSession(StartNow);
}

void DaemonServer::handleAnswer(const std::shared_ptr<Connection> &Conn,
                                const ClientMessage &M) {
  std::string ErrCode, ErrMsg;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Conn->Sessions.find(M.Session);
    if (It == Conn->Sessions.end()) {
      ErrCode = "unknown_session";
      ErrMsg = "no session '" + M.Session + "' on this connection";
      ++St.ProtocolErrors;
    } else {
      auto &E = *It->second;
      E.LastActivity = std::chrono::steady_clock::now();
      if (E.AwaitingAnswer && M.Query == E.PendingQuery) {
        E.AwaitingAnswer = false;
        E.NextExpected = M.Query + 1;
        try {
          E.S->answer(M.Ans);
        } catch (const core::SessionError &Ex) {
          // The session raced to done (deadline/cancel); harmless.
          ErrCode = "no_pending_query";
          ErrMsg = Ex.what();
          ++St.ProtocolErrors;
        }
      } else if (M.Query < E.NextExpected) {
        ErrCode = "bad_query_index";
        ErrMsg = "query " + std::to_string(M.Query) + " was already answered";
        ++St.ProtocolErrors;
      } else if (E.AwaitingAnswer && M.Query != E.PendingQuery) {
        ErrCode = "bad_query_index";
        ErrMsg = "pending query is " + std::to_string(E.PendingQuery) +
                 ", not " + std::to_string(M.Query);
        ++St.ProtocolErrors;
      } else if (E.BufferedAnswers.size() >= kMaxBufferedAnswers) {
        ErrCode = "bad_message";
        ErrMsg = "too many pipelined answers";
        ++St.ProtocolErrors;
      } else {
        // Pipelined answer ahead of its ask (scripted clients); applied by
        // the dispatcher when the query materializes.
        E.BufferedAnswers[M.Query] = M.Ans;
      }
    }
  }
  if (!ErrCode.empty())
    sendError(Conn, M.Session, ErrCode, ErrMsg);
}

void DaemonServer::handleCancel(const std::shared_ptr<Connection> &Conn,
                                const ClientMessage &M) {
  std::string Frame;
  bool Unknown = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Conn->Sessions.find(M.Session);
    if (It == Conn->Sessions.end()) {
      Unknown = true;
      ++St.ProtocolErrors;
    } else if (It->second->Queued) {
      // Never started: synthesize the cancelled result row directly.
      auto E = It->second;
      Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                                   [&](const PendingSubmit &P) {
                                     return P.Entry == E;
                                   }),
                    Pending.end());
      retireLocked(*E);
      core::TriageReport R;
      R.Name = E->Name;
      R.Status = core::TriageStatus::Cancelled;
      R.Message = "cancelled before start";
      Frame = resultFrame(E->Id, R);
      maybeSignalDrained();
    } else if (It->second->S) {
      It->second->S->cancel(); // the Cancelled result frame will follow
    }
  }
  if (Unknown)
    sendError(Conn, M.Session, "unknown_session",
              "no session '" + M.Session + "' on this connection");
  else if (!Frame.empty())
    sendFrame(Conn, Frame);
}

/// Removes a finished/cancelled entry from its connection and the tenant
/// ledger. Requires Mu held.
void DaemonServer::retireLocked(SessionEntry &E) {
  E.Finished = true;
  E.Conn->Sessions.erase(E.Id);
  auto TIt = TenantLoad.find(E.Tenant);
  if (TIt != TenantLoad.end() && --TIt->second == 0)
    TenantLoad.erase(TIt);
  ++St.Completed;
}

//===----------------------------------------------------------------------===//
// Session lifecycle
//===----------------------------------------------------------------------===//

void DaemonServer::startSession(std::shared_ptr<SessionEntry> Entry) {
  core::SessionInput In;
  In.Name = Entry->Name;
  In.Source = Entry->Source;
  In.Path = Entry->Path;
  core::InteractiveSessionOptions Opts;
  Opts.Pipeline = Cfg.Pipeline;
  Opts.DeadlineMs = Cfg.SessionDeadlineMs;
  Opts.EscalateOnInconclusive = Cfg.EscalateOnInconclusive;
  Opts.OnEvent = [this, W = std::weak_ptr<SessionEntry>(Entry)] {
    ReadyQ.send(W);
  };
  auto S = std::make_unique<core::InteractiveSession>(std::move(In),
                                                      std::move(Opts));
  std::lock_guard<std::mutex> Lock(Mu);
  Entry->LastActivity = std::chrono::steady_clock::now();
  Entry->S = std::move(S);
}

void DaemonServer::pumpPending() {
  for (;;) {
    std::shared_ptr<SessionEntry> Next;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Stopping || Active >= Cfg.MaxActiveSessions || Pending.empty())
        return;
      PendingSubmit P = std::move(Pending.front());
      Pending.pop_front();
      P.Entry->Queued = false;
      ++Active;
      St.PeakActive = std::max(St.PeakActive, Active);
      Next = std::move(P.Entry);
    }
    startSession(Next);
  }
}

void DaemonServer::dispatchOne(const std::shared_ptr<SessionEntry> &Entry) {
  core::InteractiveSession *S = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Entry->Finished)
      return;
    if (!Entry->S) {
      // The ticket raced startSession's store; retry shortly.
      std::this_thread::yield();
      ReadyQ.send(std::weak_ptr<SessionEntry>(Entry));
      return;
    }
    S = Entry->S.get();
  }

  std::optional<core::SessionEvent> Ev = S->poll();
  if (!Ev)
    return;

  if (Ev->K != core::SessionEvent::Kind::Done) {
    bool IsInvariant = Ev->K == core::SessionEvent::Kind::AskInvariant;
    std::string Frame = askFrame(Entry->Id, Ev->Query, IsInvariant);
    std::optional<core::Answer> Auto;
    bool CancelInstead = false;
    std::shared_ptr<Connection> Conn;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Entry->Finished)
        return;
      Conn = Entry->Conn;
      Entry->LastActivity = std::chrono::steady_clock::now();
      auto Buf = Entry->BufferedAnswers.find(Ev->Query.Index);
      if (Buf != Entry->BufferedAnswers.end()) {
        Auto = Buf->second;
        Entry->NextExpected = Ev->Query.Index + 1;
        // Stale pipelined answers below the applied index are dead.
        Entry->BufferedAnswers.erase(Entry->BufferedAnswers.begin(),
                                     std::next(Buf));
      } else if (Conn->AnswersClosed) {
        CancelInstead = true; // nobody left to answer (stdio EOF)
      } else {
        Entry->AwaitingAnswer = true;
        Entry->PendingQuery = Ev->Query.Index;
      }
    }
    if (!Conn->Dead)
      sendFrame(Conn, Frame);
    if (Auto) {
      try {
        S->answer(*Auto);
      } catch (const core::SessionError &) {
        // Raced to done; the Done ticket is already on its way.
      }
    } else if (CancelInstead) {
      S->cancel();
    }
    return;
  }

  // Done: write the result row, retire the entry, free the slot, admit the
  // next queued session. The session object is destroyed here, on the
  // dispatcher -- never on its own worker thread.
  std::string Frame = resultFrame(Entry->Id, Ev->Report);
  std::shared_ptr<Connection> Conn;
  std::unique_ptr<core::InteractiveSession> Dead;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Conn = Entry->Conn;
    retireLocked(*Entry);
    Dead = std::move(Entry->S);
    --Active;
    maybeSignalDrained();
  }
  if (!Conn->Dead)
    sendFrame(Conn, Frame);
  Dead.reset(); // joins the worker thread
  pumpPending();
}

void DaemonServer::dispatchLoop() {
  while (std::optional<std::weak_ptr<SessionEntry>> T = ReadyQ.recv())
    if (std::shared_ptr<SessionEntry> E = T->lock())
      dispatchOne(E);
}

//===----------------------------------------------------------------------===//
// Housekeeping
//===----------------------------------------------------------------------===//

void DaemonServer::housekeepLoop() {
  while (!StopFlag.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    // Reap sessions whose client has gone quiet mid-ask.
    if (Cfg.IdleReapMs) {
      auto Cutoff = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(Cfg.IdleReapMs);
      std::lock_guard<std::mutex> Lock(Mu);
      for (const auto &C : Connections)
        for (auto &[Id, E] : C->Sessions)
          if (E->S && E->AwaitingAnswer && E->LastActivity < Cutoff) {
            E->AwaitingAnswer = false; // reap once
            E->S->cancel();
            ++St.Reaped;
          }
    }

    // Retire connections whose reader exited and whose sessions are gone.
    std::vector<std::thread> Joinable;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Connections.begin();
      while (It != Connections.end()) {
        auto &C = *It;
        if (C->ReaderDone && C->Sessions.empty()) {
          if (C->Reader.joinable())
            Joinable.push_back(std::move(C->Reader));
          It = Connections.erase(It);
        } else {
          ++It;
        }
      }
    }
    for (std::thread &T : Joinable)
      T.join();

    pumpPending(); // defensive: admission is normally event-driven
  }
}

void DaemonServer::closeConnection(const std::shared_ptr<Connection> &Conn) {
  std::vector<std::shared_ptr<SessionEntry>> Queued;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Conn->TornDown)
      return;
    Conn->TornDown = true;
    Conn->Dead = true;
    for (auto &[Id, E] : Conn->Sessions) {
      if (E->Queued)
        Queued.push_back(E);
      else if (E->S)
        E->S->cancel(); // dispatcher retires it when Done arrives
    }
    for (const auto &E : Queued) {
      Pending.erase(std::remove_if(
                        Pending.begin(), Pending.end(),
                        [&](const PendingSubmit &P) { return P.Entry == E; }),
                    Pending.end());
      retireLocked(*E);
    }
    maybeSignalDrained();
  }
}

//===----------------------------------------------------------------------===//
// Frame output
//===----------------------------------------------------------------------===//

void DaemonServer::sendFrame(const std::shared_ptr<Connection> &Conn,
                             const std::string &Frame) {
  bool Ok;
  {
    std::lock_guard<std::mutex> Lock(Conn->WriteMu);
    Ok = writeAll(Conn->WriteFd, Frame + "\n");
  }
  if (!Ok)
    closeConnection(Conn); // peer went away mid-write
}

void DaemonServer::sendError(const std::shared_ptr<Connection> &Conn,
                             const std::string &Session,
                             const std::string &Code,
                             const std::string &Message) {
  sendFrame(Conn, errorFrame(Session, Code, Message));
}
