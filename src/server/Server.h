//===- server/Server.h - The abdiagd triage daemon --------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent daemon serving concurrent interactive diagnosis sessions
/// over the server/Protocol.h wire. Each accepted connection gets a reader
/// thread; each submitted program becomes a core::InteractiveSession whose
/// OnEvent callback enqueues the session on a ready-channel drained by one
/// dispatcher thread, which writes ask/result frames back to the owning
/// connection. A housekeeping thread reaps sessions whose client went quiet
/// mid-ask, retires closed connections, and pumps the admission queue.
///
/// Admission control and backpressure: at most MaxActiveSessions sessions
/// run at once (each owns a worker thread and an ErrorDiagnoser); beyond
/// that, submits park in a bounded pending queue, and once *that* is full
/// they are refused with an "busy" error frame -- the client's cue to back
/// off. Per-tenant caps bound how much of the daemon one client can hold.
///
/// Graceful drain (SIGTERM): new submits are refused with "draining",
/// in-flight sessions run to completion (the pending queue is admitted
/// normally), and wait() returns once the daemon is idle.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SERVER_SERVER_H
#define ABDIAG_SERVER_SERVER_H

#include "server/Protocol.h"
#include "support/Channel.h"
#include "support/Socket.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

namespace abdiag::server {

struct ServerConfig {
  /// Unix-domain socket path; takes precedence over TcpPort when set.
  std::string UnixPath;
  /// Loopback TCP port; 0 picks an ephemeral port (see port()), negative
  /// disables TCP. Ignored when UnixPath is set.
  int TcpPort = -1;
  /// Concurrently *running* sessions (each one worker thread + diagnoser).
  size_t MaxActiveSessions = 64;
  /// Running + queued sessions one tenant may hold; 0 disables the cap.
  size_t MaxSessionsPerTenant = 0;
  /// Bounded admission queue; submits beyond it are refused ("busy").
  size_t MaxPendingSessions = 256;
  /// Per-session wall-clock deadline in ms; 0 disables it.
  uint64_t SessionDeadlineMs = 0;
  /// Cancel sessions that sat awaiting an answer this long (ms); 0 disables
  /// reaping. Sessions that are *computing* are never reaped -- the
  /// deadline covers runaway computation, reaping covers absent clients.
  uint64_t IdleReapMs = 0;
  /// Pipeline knobs for every session's diagnoser.
  abdiag::Options Pipeline;
  /// Retry Inconclusive sessions once with 4x budgets (matches batch).
  bool EscalateOnInconclusive = true;
};

class DaemonServer {
public:
  explicit DaemonServer(ServerConfig Cfg);
  ~DaemonServer();
  DaemonServer(const DaemonServer &) = delete;
  DaemonServer &operator=(const DaemonServer &) = delete;

  /// Binds the configured socket and starts the accept/dispatcher/
  /// housekeeping threads. False + \p Err on bind failure.
  bool start(std::string &Err);

  /// Serves exactly one connection on stdin/stdout (no listener), blocking
  /// until the peer closes stdin and every session of that connection has
  /// its result frame. For tests and editor integrations.
  void serveStdio();

  /// Begins a graceful drain: stop accepting connections, refuse new
  /// submits, let in-flight and queued sessions finish. Idempotent.
  void requestDrain();

  /// Blocks until a requested drain completes (daemon idle).
  void wait();

  /// Hard stop: cancels every session, closes every connection, joins all
  /// threads. Called by the destructor; safe after wait().
  void stop();

  /// The resolved TCP port (ephemeral binds), -1 when not listening on TCP.
  int port() const { return BoundPort; }

  struct Stats {
    size_t Submitted = 0;     ///< sessions admitted (started or queued)
    size_t Completed = 0;     ///< result frames written
    size_t Refused = 0;       ///< submits refused (busy/tenant/draining)
    size_t Reaped = 0;        ///< idle sessions cancelled by the reaper
    size_t ProtocolErrors = 0;///< malformed/mis-sequenced client frames
    size_t PeakActive = 0;    ///< high-water mark of running sessions
    size_t PeakOpen = 0;      ///< high-water mark of open (running+queued)
  };
  Stats stats() const;

private:
  struct Connection;
  struct SessionEntry;
  struct PendingSubmit;

  ServerConfig Cfg;
  int BoundPort = -1;
  FdHandle ListenFd;

  mutable std::mutex Mu;
  std::condition_variable DrainedCv;
  std::atomic<bool> StopFlag{false};
  bool Draining = false;
  bool Stopping = false;
  size_t Active = 0;
  std::map<std::string, size_t> TenantLoad; ///< running + pending per tenant
  std::deque<PendingSubmit> Pending;
  std::vector<std::shared_ptr<Connection>> Connections;
  uint64_t NextConnId = 0;
  Stats St;

  Channel<std::weak_ptr<SessionEntry>> ReadyQ;

  std::thread AcceptThread;
  std::thread DispatchThread;
  std::thread HousekeepThread;

  void acceptLoop();
  void dispatchLoop();
  void housekeepLoop();

  void serveConnection(std::shared_ptr<Connection> Conn);
  void handleLine(const std::shared_ptr<Connection> &Conn,
                  const std::string &Line);
  void handleSubmit(const std::shared_ptr<Connection> &Conn, ClientMessage M);
  void handleAnswer(const std::shared_ptr<Connection> &Conn,
                    const ClientMessage &M);
  void handleCancel(const std::shared_ptr<Connection> &Conn,
                    const ClientMessage &M);

  /// Starts one admitted session (Active already incremented). Must be
  /// called without Mu held.
  void startSession(std::shared_ptr<SessionEntry> Entry);
  /// Admits queued submits while capacity allows. Must be called without
  /// Mu held.
  void pumpPending();
  /// Handles one ready ticket from the dispatcher.
  void dispatchOne(const std::shared_ptr<SessionEntry> &Entry);
  /// Removes a finished entry from its connection and the tenant ledger.
  /// Requires Mu held.
  void retireLocked(SessionEntry &E);
  /// Tears one connection down: cancel its sessions, drop its queued
  /// submits. Must be called without Mu held.
  void closeConnection(const std::shared_ptr<Connection> &Conn);

  void sendFrame(const std::shared_ptr<Connection> &Conn,
                 const std::string &Frame);
  void sendError(const std::shared_ptr<Connection> &Conn,
                 const std::string &Session, const std::string &Code,
                 const std::string &Message);
  void maybeSignalDrained(); ///< requires Mu held
};

} // namespace abdiag::server

#endif // ABDIAG_SERVER_SERVER_H
