//===- smt/Cooper.cpp - Cooper's quantifier elimination ---------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Elimination of ∃x from an NNF formula F over atoms E<=0, E=0, E!=0, d|E,
// d∤E proceeds in the textbook way:
//
//  1. Equality/disequality atoms mentioning x are lowered to Le atoms
//     (E=0 -> E<=0 ∧ -E<=0; E!=0 -> E+1<=0 ∨ -E+1<=0).
//  2. Let L be the lcm of |coefficient of x| over all atoms. Each atom is
//     scaled so the coefficient becomes ±L, and y = L*x is introduced with
//     the side constraint L | y. Scaled atoms are kept in a private DAG
//     mirroring the formula's shared structure (not re-interned, because
//     the manager's canonicalization would undo the scaling); X-free
//     subformulas collapse to single leaves.
//  3. With unit coefficients on y, atoms split into upper bounds y <= a,
//     lower bounds y >= b, and divisibility constraints. For
//     delta = lcm(L, divisors), the classic equivalence (non-strict-bound
//     variant) is
//
//       ∃y.F  <=>  ⋁_{j=1..delta} F_{-inf}[y:=j]
//                  ∨ ⋁_{b∈B} ⋁_{j=0..delta-1} F[y := b + j]
//
//     where F_{-inf} replaces upper-bound atoms by true and lower-bound
//     atoms by false. The dual form with F_{+inf} and upper bounds a - j is
//     used when it produces fewer disjuncts.
//
//===----------------------------------------------------------------------===//

#include "smt/Cooper.h"

#include "smt/FormulaOps.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <unordered_map>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// The formula restricted to the parts mentioning the eliminated variable,
/// as a *DAG* mirroring the (shared) structure of the source formula: atoms
/// mentioning X are held in scaled form (coefficient of y = L*x is +1 or
/// -1) outside the manager, and every maximal X-free subformula collapses
/// to a single Plain leaf. Nodes are stored post-order, so kids always
/// precede parents and a forward scan visits kids first.
struct XDag {
  struct Node {
    enum class Kind : uint8_t { Plain, XAtom, And, Or } K;
    const Formula *Plain = nullptr; // Kind::Plain
    // Kind::XAtom: Rel(YSign * y + Rest) or divisibility with Divisor.
    AtomRel Rel = AtomRel::Le;
    int YSign = 0;
    int64_t Divisor = 0;
    LinearExpr Rest;
    std::vector<uint32_t> Kids; // And/Or: indices into Nodes
  };
  std::vector<Node> Nodes;
  uint32_t Root = 0;
};

/// Rewrites Eq/Ne atoms that mention \p X into Le form so the main
/// elimination only sees Le/Div/NDiv atoms on X. Shared subformulas are
/// rewritten once per call; X-free subformulas are returned unchanged.
const Formula *
lowerEqNeOn(FormulaManager &M, const Formula *F, VarId X,
            std::unordered_map<const Formula *, const Formula *> &Memo) {
  if (!M.contains(F, X))
    return F;
  if (F->isAtom()) {
    const LinearExpr &E = F->expr();
    if (F->rel() == AtomRel::Eq)
      return M.mkAnd(M.mkAtom(AtomRel::Le, E),
                     M.mkAtom(AtomRel::Le, E.negated()));
    if (F->rel() == AtomRel::Ne)
      return M.mkOr(M.mkAtom(AtomRel::Le, E.addConst(1)),
                    M.mkAtom(AtomRel::Le, E.negated().addConst(1)));
    return F;
  }
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  std::vector<const Formula *> Kids;
  Kids.reserve(F->kids().size());
  for (const Formula *K : F->kids())
    Kids.push_back(lowerEqNeOn(M, K, X, Memo));
  const Formula *R =
      F->isAnd() ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
  Memo.emplace(F, R);
  return R;
}

/// Least common multiple of |coeff(X)| over all atoms of \p F containing X.
int64_t coeffLcm(const Formula *F, VarId X) {
  int64_t L = 1;
  for (const Formula *A : collectAtoms(F)) {
    int64_t C = A->expr().coeff(X);
    if (C != 0)
      L = lcm64(L, C);
  }
  return L;
}

/// Builds the scaled DAG node for \p F (eliminating X as y = L*x).
uint32_t buildDagRec(FormulaManager &M, const Formula *F, VarId X, int64_t L,
                     XDag &D,
                     std::unordered_map<const Formula *, uint32_t> &Memo) {
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  XDag::Node N;
  if (!M.contains(F, X)) {
    // Whole subformula is X-free (covers True/False): one Plain leaf.
    N.K = XDag::Node::Kind::Plain;
    N.Plain = F;
  } else if (F->isAtom()) {
    int64_t C = F->expr().coeff(X);
    assert(C != 0 && "X-containing atom must have an X coefficient");
    assert((F->rel() == AtomRel::Le || F->rel() == AtomRel::Div ||
            F->rel() == AtomRel::NDiv) &&
           "Eq/Ne on X must be lowered before scaling");
    int64_t K = L / (C < 0 ? -C : C);
    assert(K >= 1);
    N.K = XDag::Node::Kind::XAtom;
    N.Rel = F->rel();
    N.YSign = C < 0 ? -1 : 1;
    // Rest = K*(E - C*x): scale everything except the x term.
    N.Rest = F->expr().substituted(X, LinearExpr::constant(0)).scaled(K);
    N.Divisor = F->divisor() != 0 ? checkedMul(F->divisor(), K) : 0;
  } else {
    N.K = F->isAnd() ? XDag::Node::Kind::And : XDag::Node::Kind::Or;
    N.Kids.reserve(F->kids().size());
    for (const Formula *Kid : F->kids())
      N.Kids.push_back(buildDagRec(M, Kid, X, L, D, Memo));
  }
  D.Nodes.push_back(std::move(N));
  uint32_t Idx = static_cast<uint32_t>(D.Nodes.size() - 1);
  Memo.emplace(F, Idx);
  return Idx;
}

XDag buildDag(FormulaManager &M, const Formula *F, VarId X, int64_t L) {
  XDag D;
  std::unordered_map<const Formula *, uint32_t> Memo;
  D.Root = buildDagRec(M, F, X, L, D, Memo);
  return D;
}

/// Collects lower-bound terms (B), upper-bound terms (A), and the lcm of
/// divisors over all XAtoms. One scan over the DAG's node list -- each
/// distinct scaled atom counts once however often the tree expansion
/// repeats it -- with value-level dedup of the bound terms (duplicate
/// bounds generate identical disjunct sets).
void collectBounds(const XDag &D, std::vector<LinearExpr> &Lower,
                   std::vector<LinearExpr> &Upper, int64_t &Delta) {
  for (const XDag::Node &N : D.Nodes) {
    if (N.K != XDag::Node::Kind::XAtom)
      continue;
    if (N.Rel == AtomRel::Le) {
      // y + Rest <= 0  ->  y <= -Rest  (upper);  -y + Rest <= 0 -> y >= Rest.
      if (N.YSign > 0)
        Upper.push_back(N.Rest.negated());
      else
        Lower.push_back(N.Rest);
    } else {
      Delta = lcm64(Delta, N.Divisor);
    }
  }
  for (std::vector<LinearExpr> *B : {&Lower, &Upper}) {
    std::sort(B->begin(), B->end());
    B->erase(std::unique(B->begin(), B->end()), B->end());
  }
}

enum class InfMode { None, MinusInf, PlusInf };

/// Substitutes y := Val into the DAG and rebuilds a managed formula.
/// In MinusInf (PlusInf) mode, Le atoms are replaced by their limit truth
/// value and only divisibility atoms receive the substitution. A single
/// forward pass: nodes are post-ordered, so kid results are ready when a
/// parent needs them, and every shared subformula is rebuilt exactly once.
const Formula *substDag(FormulaManager &M, const XDag &D,
                        const LinearExpr &Val, InfMode Mode) {
  std::vector<const Formula *> R(D.Nodes.size());
  for (size_t I = 0; I < D.Nodes.size(); ++I) {
    const XDag::Node &N = D.Nodes[I];
    switch (N.K) {
    case XDag::Node::Kind::Plain:
      R[I] = N.Plain;
      break;
    case XDag::Node::Kind::XAtom: {
      if (N.Rel == AtomRel::Le && Mode != InfMode::None) {
        // As y -> -inf: y <= a is true, y >= b is false; dually for +inf.
        bool IsUpper = N.YSign > 0;
        bool Truth = (Mode == InfMode::MinusInf) == IsUpper;
        R[I] = M.getBool(Truth);
        break;
      }
      LinearExpr E = Val.scaled(N.YSign).add(N.Rest);
      R[I] = M.mkAtom(N.Rel, std::move(E), N.Divisor);
      break;
    }
    case XDag::Node::Kind::And:
    case XDag::Node::Kind::Or: {
      std::vector<const Formula *> Kids;
      Kids.reserve(N.Kids.size());
      for (uint32_t K : N.Kids)
        Kids.push_back(R[K]);
      R[I] = N.K == XDag::Node::Kind::And ? M.mkAnd(std::move(Kids))
                                          : M.mkOr(std::move(Kids));
      break;
    }
    }
  }
  return R[D.Root];
}

} // namespace

namespace {

const Formula *eliminateExistsOne(FormulaManager &M, const Formula *F,
                                  VarId X,
                                  const support::CancellationToken *Cancel) {
  support::pollCancellation(Cancel);
  {
    std::unordered_map<const Formula *, const Formula *> LowerMemo;
    F = lowerEqNeOn(M, F, X, LowerMemo);
  }
  if (!M.contains(F, X))
    return F;

  int64_t L = coeffLcm(F, X);
  XDag D = buildDag(M, F, X, L);
  // Side constraint from y = L*x: L | y. Represent as an XAtom conjunct by
  // appending a Div node and a fresh And root (post-order stays valid:
  // both kids precede the new root).
  if (L > 1) {
    XDag::Node DivAtom;
    DivAtom.K = XDag::Node::Kind::XAtom;
    DivAtom.Rel = AtomRel::Div;
    DivAtom.YSign = 1;
    DivAtom.Rest = LinearExpr::constant(0);
    DivAtom.Divisor = L;
    D.Nodes.push_back(std::move(DivAtom));
    XDag::Node Root;
    Root.K = XDag::Node::Kind::And;
    Root.Kids = {D.Root, static_cast<uint32_t>(D.Nodes.size() - 1)};
    D.Nodes.push_back(std::move(Root));
    D.Root = static_cast<uint32_t>(D.Nodes.size() - 1);
  }

  std::vector<LinearExpr> Lower, Upper;
  int64_t Delta = L;
  collectBounds(D, Lower, Upper, Delta);

  std::vector<const Formula *> Disjuncts;
  bool UseLower = Lower.size() <= Upper.size();
  // The ±infinity residues: j = 1..delta.
  for (int64_t J = 1; J <= Delta; ++J) {
    support::pollCancellation(Cancel);
    Disjuncts.push_back(substDag(M, D, LinearExpr::constant(J),
                                 UseLower ? InfMode::MinusInf
                                          : InfMode::PlusInf));
  }
  // Boundary points: b + j (resp. a - j) for j = 0..delta-1.
  const std::vector<LinearExpr> &Bounds = UseLower ? Lower : Upper;
  for (const LinearExpr &Bnd : Bounds)
    for (int64_t J = 0; J < Delta; ++J) {
      support::pollCancellation(Cancel);
      LinearExpr Val = UseLower ? Bnd.addConst(J) : Bnd.addConst(-J);
      Disjuncts.push_back(substDag(M, D, Val, InfMode::None));
    }
  return M.mkOr(std::move(Disjuncts));
}

} // namespace

const Formula *abdiag::smt::eliminateExists(
    FormulaManager &M, const Formula *F, VarId X, QeMemo *Memo,
    const support::CancellationToken *Cancel) {
  if (!Memo)
    return eliminateExistsOne(M, F, X, Cancel);
  auto It = Memo->Exists.find({F, X});
  if (It != Memo->Exists.end()) {
    ++Memo->Hits;
    return It->second;
  }
  ++Memo->Misses;
  const Formula *R = eliminateExistsOne(M, F, X, Cancel);
  Memo->Exists.emplace(std::make_pair(F, X), R);
  return R;
}

const Formula *abdiag::smt::eliminateExists(
    FormulaManager &M, const Formula *F, const std::vector<VarId> &Xs,
    QeMemo *Memo, const support::CancellationToken *Cancel) {
  // Heuristic: eliminate variables with fewer occurrences first to keep
  // intermediate formulas small.
  std::vector<VarId> Order(Xs.begin(), Xs.end());
  std::sort(Order.begin(), Order.end());
  Order.erase(std::unique(Order.begin(), Order.end()), Order.end());
  while (!Order.empty()) {
    std::vector<const Formula *> Atoms = collectAtoms(F);
    size_t BestIdx = 0;
    size_t BestCount = SIZE_MAX;
    for (size_t I = 0; I < Order.size(); ++I) {
      size_t Count = 0;
      for (const Formula *A : Atoms)
        if (A->expr().contains(Order[I]))
          ++Count;
      if (Count < BestCount) {
        BestCount = Count;
        BestIdx = I;
      }
    }
    F = eliminateExists(M, F, Order[BestIdx], Memo, Cancel);
    Order.erase(Order.begin() + BestIdx);
  }
  return F;
}

const Formula *abdiag::smt::eliminateForall(
    FormulaManager &M, const Formula *F, VarId X, QeMemo *Memo,
    const support::CancellationToken *Cancel) {
  return M.mkNot(eliminateExists(M, M.mkNot(F), X, Memo, Cancel));
}

const Formula *abdiag::smt::eliminateForall(
    FormulaManager &M, const Formula *F, const std::vector<VarId> &Xs,
    QeMemo *Memo, const support::CancellationToken *Cancel) {
  return M.mkNot(eliminateExists(M, M.mkNot(F), Xs, Memo, Cancel));
}

namespace {

/// Solves a univariate (or ground) Presburger formula exactly by evaluating
/// it at a complete set of candidate points. Returns true and sets \p Out on
/// success.
bool solveUnivariate(const Formula *F, VarId X, int64_t &Out) {
  // Ground formulas: any value works iff the formula is true.
  if (!containsVar(F, X)) {
    Out = 0;
    return evaluate(F, [](VarId) { return int64_t(0); });
  }
  std::set<int64_t> Thresholds;
  int64_t Delta = 1;
  for (const Formula *A : collectAtoms(F)) {
    int64_t C = A->expr().coeff(X);
    if (C == 0)
      continue;
    assert(A->expr().numTerms() == 1 && "formula is not univariate");
    int64_t R = A->expr().constant();
    switch (A->rel()) {
    case AtomRel::Le:
      // C*x + R <= 0: boundary at x = floor(-R/C) or ceil(-R/C).
      Thresholds.insert(C > 0 ? floorDiv(-R, C) : ceilDiv(-R, C));
      break;
    case AtomRel::Eq:
    case AtomRel::Ne:
      if (R % C == 0)
        Thresholds.insert(-R / C);
      break;
    case AtomRel::Div:
    case AtomRel::NDiv:
      Delta = lcm64(Delta, A->divisor());
      break;
    }
  }
  // Truth of comparison atoms is constant between consecutive thresholds and
  // divisibility atoms have period Delta, so candidates within Delta of each
  // threshold (plus a window around 0 for the threshold-free case) suffice.
  std::set<int64_t> Candidates;
  auto AddWindow = [&](int64_t Center) {
    for (int64_t J = -Delta - 1; J <= Delta + 1; ++J)
      Candidates.insert(checkedAdd(Center, J));
  };
  AddWindow(0);
  for (int64_t T : Thresholds)
    AddWindow(T);
  for (int64_t C : Candidates)
    if (evaluate(F, [&](VarId V) {
          assert(V == X && "formula is not univariate");
          (void)V;
          return C;
        })) {
      Out = C;
      return true;
    }
  return false;
}

} // namespace

bool abdiag::smt::findModelByQe(FormulaManager &M, const Formula *F,
                                std::unordered_map<VarId, int64_t> &Model) {
  std::vector<VarId> Vars = freeVarsVec(F);
  for (size_t I = 0; I < Vars.size(); ++I) {
    VarId X = Vars[I];
    std::vector<VarId> Others(Vars.begin() + I + 1, Vars.end());
    const Formula *Uni = eliminateExists(M, F, Others);
    int64_t Val = 0;
    if (!solveUnivariate(Uni, X, Val))
      return false;
    Model[X] = Val;
    F = substitute(M, F, X, LinearExpr::constant(Val));
  }
  return evaluate(F, [](VarId) { return int64_t(0); });
}

//===----------------------------------------------------------------------===//
// Complete conjunction solver (theory-solver fallback)
//===----------------------------------------------------------------------===//

namespace {

/// A scaled atom over y = L*x: Rel(YSign * y + Rest), divisor for Div/NDiv.
struct ScaledAtom {
  AtomRel Rel;
  int YSign;
  LinearExpr Rest;
  int64_t Divisor;
};

/// Evaluates \p E under \p Model, pinning unassigned variables to 0 so later
/// evaluations stay consistent.
int64_t evalAndPin(const LinearExpr &E,
                   std::unordered_map<VarId, int64_t> &Model) {
  E.forEachVar([&](VarId V) { Model.emplace(V, 0); });
  return E.evaluate([&](VarId V) { return Model.at(V); });
}

/// Decides a conjunction of atoms over the single variable \p X. The Le
/// atoms intersect to one interval [Lo, Hi]; the Div/NDiv atoms are
/// periodic with period lcm(divisors), so scanning one period inside the
/// interval is exhaustive. This replaces the general elimination step at the
/// innermost level, which otherwise rebuilds substituted formulas through
/// the manager for every candidate value.
bool solveSingleVar(const std::vector<const Formula *> &Work, VarId X,
                    std::unordered_map<VarId, int64_t> &Model) {
  bool HasLo = false, HasHi = false;
  int64_t Lo = 0, Hi = 0, Period = 1;
  for (const Formula *A : Work) {
    int64_t C = A->expr().coeff(X);
    int64_t K = A->expr().constant();
    if (A->rel() == AtomRel::Le) {
      if (C == 0) {
        if (K > 0)
          return false;
        continue;
      }
      if (C > 0) { // C*x + K <= 0  =>  x <= floor(-K / C)
        int64_t B = floorDiv(checkedNeg(K), C);
        if (!HasHi || B < Hi) {
          Hi = B;
          HasHi = true;
        }
      } else { // C < 0  =>  x >= ceil(K / -C)
        int64_t B = ceilDiv(K, checkedNeg(C));
        if (!HasLo || B > Lo) {
          Lo = B;
          HasLo = true;
        }
      }
    } else {
      Period = lcm64(Period, A->divisor());
    }
  }
  if (HasLo && HasHi && Lo > Hi)
    return false;
  auto Holds = [&](int64_t V) {
    for (const Formula *A : Work) {
      int64_t Val = checkedAdd(checkedMul(A->expr().coeff(X), V),
                               A->expr().constant());
      if (A->rel() == AtomRel::Le) {
        if (Val > 0)
          return false;
      } else {
        bool Divides = floorMod(Val, A->divisor()) == 0;
        if (Divides != (A->rel() == AtomRel::Div))
          return false;
      }
    }
    return true;
  };
  int64_t Start, End;
  if (HasLo) {
    Start = Lo;
    End = checkedAdd(Lo, Period - 1);
    if (HasHi && Hi < End)
      End = Hi;
  } else if (HasHi) {
    Start = checkedSub(Hi, Period - 1);
    End = Hi;
  } else {
    Start = 0;
    End = Period - 1;
  }
  for (int64_t V = Start; V <= End; ++V) {
    if (Holds(V)) {
      Model[X] = V;
      return true;
    }
  }
  return false;
}

bool solveConjRec(FormulaManager &M, const std::vector<const Formula *> &Atoms,
                  std::unordered_map<VarId, int64_t> &Model, int &Budget,
                  const support::CancellationToken *Cancel) {
  support::pollCancellation(Cancel);
  if (--Budget < 0) {
    std::fprintf(stderr,
                 "abdiag: fatal: conjunction solver budget exhausted\n");
    std::abort();
  }
  // Filter constants; collect per-variable occurrence counts and the lcm of
  // the variable's absolute coefficients.
  std::vector<const Formula *> Work;
  struct VarScore {
    size_t Occurrences = 0;
    int64_t CoeffLcm = 1;
  };
  std::unordered_map<VarId, VarScore> Scores;
  for (const Formula *A : Atoms) {
    if (A->isFalse())
      return false;
    if (A->isTrue())
      continue;
    assert(A->isAtom() && "conjunction solver expects atoms");
    assert((A->rel() == AtomRel::Le || A->rel() == AtomRel::Div ||
            A->rel() == AtomRel::NDiv) &&
           "Eq/Ne must be lowered before the conjunction solver");
    Work.push_back(A);
    A->expr().forEachVar([&](VarId V) {
      VarScore &Sc = Scores[V];
      ++Sc.Occurrences;
      int64_t C = A->expr().coeff(V);
      Sc.CoeffLcm = lcm64(Sc.CoeffLcm, C < 0 ? -C : C);
    });
  }
  if (Work.empty())
    return true;
  if (Scores.size() == 1)
    return solveSingleVar(Work, Scores.begin()->first, Model);

  // Pick the variable with the smallest coefficient lcm (it becomes the
  // scaling factor L below, and every divisor and coefficient in the
  // recursive subproblems is multiplied by L/|c|, so a large L cascades
  // exponentially through the remaining eliminations). Break ties by fewest
  // occurrences, then VarId, to keep the search deterministic.
  VarId X = Scores.begin()->first;
  VarScore Best = Scores.begin()->second;
  for (const auto &[V, Sc] : Scores) {
    bool Better =
        Sc.CoeffLcm < Best.CoeffLcm ||
        (Sc.CoeffLcm == Best.CoeffLcm &&
         (Sc.Occurrences < Best.Occurrences ||
          (Sc.Occurrences == Best.Occurrences && V < X)));
    if (Better) {
      X = V;
      Best = Sc;
    }
  }

  // Split into x-atoms (scaled to unit coefficient on y = L*x) and others.
  int64_t L = 1;
  for (const Formula *A : Work) {
    int64_t C = A->expr().coeff(X);
    if (C != 0)
      L = lcm64(L, C);
  }
  std::vector<ScaledAtom> XAtoms;
  std::vector<const Formula *> Others;
  for (const Formula *A : Work) {
    int64_t C = A->expr().coeff(X);
    if (C == 0) {
      Others.push_back(A);
      continue;
    }
    int64_t K = L / (C < 0 ? -C : C);
    ScaledAtom SA;
    SA.Rel = A->rel();
    SA.YSign = C < 0 ? -1 : 1;
    SA.Rest = A->expr().substituted(X, LinearExpr::constant(0)).scaled(K);
    SA.Divisor = A->divisor() != 0 ? checkedMul(A->divisor(), K) : 0;
    XAtoms.push_back(std::move(SA));
  }
  if (L > 1) {
    // y = L*x requires L | y.
    ScaledAtom SA;
    SA.Rel = AtomRel::Div;
    SA.YSign = 1;
    SA.Rest = LinearExpr::constant(0);
    SA.Divisor = L;
    XAtoms.push_back(std::move(SA));
  }

  int64_t Delta = L;
  std::vector<const ScaledAtom *> Lowers, Uppers, Divs;
  for (const ScaledAtom &SA : XAtoms) {
    if (SA.Rel == AtomRel::Le) {
      (SA.YSign < 0 ? Lowers : Uppers).push_back(&SA);
    } else {
      Delta = lcm64(Delta, SA.Divisor);
      Divs.push_back(&SA);
    }
  }

  auto SubstAll = [&](const LinearExpr &Val, bool DropLe) {
    std::vector<const Formula *> Sub = Others;
    for (const ScaledAtom &SA : XAtoms) {
      if (DropLe && SA.Rel == AtomRel::Le)
        continue;
      LinearExpr E = Val.scaled(SA.YSign).add(SA.Rest);
      Sub.push_back(M.mkAtom(SA.Rel, std::move(E), SA.Divisor));
    }
    return Sub;
  };

  auto FinishWithY = [&](int64_t YVal) {
    assert(floorMod(YVal, L) == 0 && "y must be divisible by L");
    Model[X] = YVal / L;
    return true;
  };

  if (!Lowers.empty() &&
      (Uppers.empty() || Lowers.size() <= Uppers.size())) {
    // Every solution has y in [b, b + Delta) for some lower bound b
    // (a smaller y - Delta would still satisfy all constraints otherwise,
    // descending below some lower bound eventually).
    for (const ScaledAtom *B : Lowers) {
      LinearExpr Bound = B->Rest; // y >= Rest
      for (int64_t J = 0; J < Delta; ++J) {
        if (solveConjRec(M, SubstAll(Bound.addConst(J), /*DropLe=*/false),
                         Model, Budget, Cancel))
          return FinishWithY(checkedAdd(evalAndPin(Bound, Model), J));
      }
    }
    return false;
  }
  if (!Uppers.empty()) {
    // Dual: y in (a - Delta, a] for some upper bound a = -Rest.
    for (const ScaledAtom *A : Uppers) {
      LinearExpr Bound = A->Rest.negated(); // y <= -Rest
      for (int64_t J = 0; J < Delta; ++J) {
        if (solveConjRec(M, SubstAll(Bound.addConst(-J), /*DropLe=*/false),
                         Model, Budget, Cancel))
          return FinishWithY(checkedSub(evalAndPin(Bound, Model), J));
      }
    }
    return false;
  }
  // Only divisibility constraints mention y; since every divisor divides
  // Delta, substituting any representative of the residue class is exact.
  for (int64_t J = 0; J < Delta; ++J) {
    if (solveConjRec(M, SubstAll(LinearExpr::constant(J), /*DropLe=*/true),
                     Model, Budget, Cancel))
      return FinishWithY(J);
  }
  return false;
}

} // namespace

bool abdiag::smt::solveAtomConjunction(
    FormulaManager &M, const std::vector<const Formula *> &Atoms,
    std::unordered_map<VarId, int64_t> &Model,
    const support::CancellationToken *Cancel) {
  int Budget = 2000000;
  return solveConjRec(M, Atoms, Model, Budget, Cancel);
}
