//===- smt/Cooper.h - Cooper's quantifier elimination -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifier elimination for Presburger arithmetic (linear integer
/// arithmetic with divisibility) using Cooper's algorithm. This is the
/// engine behind the paper's Lemmas 3 and 5: weakest minimum proof
/// obligations and failure witnesses are obtained by eliminating the
/// universally quantified non-MSA variables from `I => phi`.
///
/// Also provides a complete, QE-based model finder for quantifier-free
/// formulas, used (a) as the completeness fallback of the branch-and-bound
/// LIA solver and (b) as an independent test oracle.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_COOPER_H
#define ABDIAG_SMT_COOPER_H

#include "smt/Formula.h"
#include "support/Cancellation.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace abdiag::smt {

/// Memo for single-variable eliminations, shared across QE calls.
///
/// Multi-variable elimination is a fold of single-variable steps over
/// hash-consed formulas, so the memo is keyed on the (formula pointer,
/// variable) pair of each step: pointer equality is structural equality,
/// and entries stay valid for the owning FormulaManager's lifetime. The
/// MSA subset search profits enormously -- the complements of lattice
/// neighbours overlap in all but one variable, so most of their
/// elimination chains coincide step for step.
struct QeMemo {
  struct KeyHash {
    size_t operator()(const std::pair<const Formula *, VarId> &K) const {
      return std::hash<const Formula *>()(K.first) * 31u +
             std::hash<VarId>()(K.second);
    }
  };
  /// (F, X) -> quantifier-free equivalent of `exists X. F`.
  std::unordered_map<std::pair<const Formula *, VarId>, const Formula *,
                     KeyHash>
      Exists;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Computes a quantifier-free equivalent of `exists X. F`. All elimination
/// entry points poll \p Cancel (when non-null) between elimination steps and
/// while materializing disjunct sets, throwing support::CancelledError when
/// it expires; partial results are discarded, the memo only ever receives
/// completed steps.
const Formula *eliminateExists(FormulaManager &M, const Formula *F, VarId X,
                               QeMemo *Memo = nullptr,
                               const support::CancellationToken *Cancel =
                                   nullptr);

/// Eliminates every variable in \p Xs existentially (in a heuristic order).
const Formula *eliminateExists(FormulaManager &M, const Formula *F,
                               const std::vector<VarId> &Xs,
                               QeMemo *Memo = nullptr,
                               const support::CancellationToken *Cancel =
                                   nullptr);

/// Computes a quantifier-free equivalent of `forall X. F` (as ¬∃X.¬F).
const Formula *eliminateForall(FormulaManager &M, const Formula *F, VarId X,
                               QeMemo *Memo = nullptr,
                               const support::CancellationToken *Cancel =
                                   nullptr);

/// Eliminates every variable in \p Xs universally.
const Formula *eliminateForall(FormulaManager &M, const Formula *F,
                               const std::vector<VarId> &Xs,
                               QeMemo *Memo = nullptr,
                               const support::CancellationToken *Cancel =
                                   nullptr);

/// Complete satisfiability + model finding for a quantifier-free formula,
/// by QE to univariate formulas and candidate-point enumeration. Complete
/// for full Presburger arithmetic but exponential; intended as a test
/// oracle, not the main solving path (coefficients snowball across
/// eliminations on larger systems).
///
/// \returns true and fills \p Model (for every free variable of \p F) if
/// satisfiable; false otherwise.
bool findModelByQe(FormulaManager &M, const Formula *F,
                   std::unordered_map<VarId, int64_t> &Model);

/// Complete decision procedure + model finder for *conjunctions* of
/// Le / Div / NDiv atoms (the exact shape the DPLL(T) theory solver needs
/// when branch-and-bound exhausts its budget).
///
/// Works by Cooper-style elimination specialized to conjunctions: pick a
/// variable, enumerate its boundary substitutions y := b + j (or the
/// unbounded-side residues), and recurse on the substituted conjunction.
/// Unlike formula-level QE this never materializes the disjunction, so
/// memory stays linear in the recursion depth, and a model is recovered on
/// the way back up.
///
/// \p Atoms may contain True (ignored) and False (immediately unsat) nodes.
/// Eq/Ne atoms are rejected (lower them first). Returns true and fills
/// \p Model for every variable occurring in \p Atoms when satisfiable.
/// Polls \p Cancel at every recursion node (throws support::CancelledError).
bool solveAtomConjunction(FormulaManager &M,
                          const std::vector<const Formula *> &Atoms,
                          std::unordered_map<VarId, int64_t> &Model,
                          const support::CancellationToken *Cancel = nullptr);

} // namespace abdiag::smt

#endif // ABDIAG_SMT_COOPER_H
