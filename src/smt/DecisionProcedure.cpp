//===- smt/DecisionProcedure.cpp - Pluggable decision procedures ------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/DecisionProcedure.h"

#include "smt/DifferentialBackend.h"
#include "smt/FormulaOps.h"
#include "smt/NativeBackend.h"
#include "smt/Printer.h"
#include "smt/Z3Backend.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <ostream>

using namespace abdiag;
using namespace abdiag::smt;

DecisionProcedure::~DecisionProcedure() = default;
DecisionProcedure::Session::~Session() = default;

void SolverStats::dump(std::ostream &OS) const {
  OS << "queries:          " << Queries << "\n"
     << "theory checks:    " << TheoryChecks << "\n"
     << "theory conflicts: " << TheoryConflicts << "\n"
     << "cooper fallbacks: " << CooperFallbacks << "\n"
     << "cache hits:       " << CacheHits << "\n"
     << "cache misses:     " << CacheMisses << "\n"
     << "session checks:   " << SessionChecks << "\n"
     << "core skips:       " << CoreSkips << "\n"
     << "qe memo hits:     " << QeCacheHits << "\n"
     << "qe memo misses:   " << QeCacheMisses << "\n"
     << "sat restarts:     " << SatRestarts << "\n"
     << "sat learned:      " << SatLearned << "\n"
     << "sat reduced:      " << SatReduced << "\n"
     << "sat max lbd:      " << SatMaxLbd << "\n"
     << "simplex pivots:   " << SimplexPivots << "\n"
     << "pivot limit hits: " << PivotLimitHits << "\n"
     << "tableau reuses:   " << TableauReuses << "\n";
  if (CrossChecks)
    OS << "cross checks:     " << CrossChecks << "\n";
  if (FormulaNodes || FormulaArenaBytes)
    OS << "formula nodes:    " << FormulaNodes << "\n"
       << "intern hits:      " << FormulaInternHits << "\n"
       << "intern probes:    " << FormulaInternProbes << "\n"
       << "fv memo hits:     " << FormulaMemoHits << "\n"
       << "fv memo misses:   " << FormulaMemoMisses << "\n"
       << "subst prunes:     " << FormulaSubstPrunes << "\n"
       << "arena bytes:      " << FormulaArenaBytes << "\n";
}

SolverStats &SolverStats::operator+=(const SolverStats &O) {
  Queries += O.Queries;
  TheoryChecks += O.TheoryChecks;
  TheoryConflicts += O.TheoryConflicts;
  CooperFallbacks += O.CooperFallbacks;
  CacheHits += O.CacheHits;
  CacheMisses += O.CacheMisses;
  SessionChecks += O.SessionChecks;
  CoreSkips += O.CoreSkips;
  QeCacheHits += O.QeCacheHits;
  QeCacheMisses += O.QeCacheMisses;
  CrossChecks += O.CrossChecks;
  SatRestarts += O.SatRestarts;
  SatLearned += O.SatLearned;
  SatReduced += O.SatReduced;
  SatMaxLbd = std::max(SatMaxLbd, O.SatMaxLbd); // high-water mark
  SimplexPivots += O.SimplexPivots;
  PivotLimitHits += O.PivotLimitHits;
  TableauReuses += O.TableauReuses;
  FormulaNodes += O.FormulaNodes;
  FormulaInternHits += O.FormulaInternHits;
  FormulaInternProbes += O.FormulaInternProbes;
  FormulaMemoHits += O.FormulaMemoHits;
  FormulaMemoMisses += O.FormulaMemoMisses;
  FormulaSubstPrunes += O.FormulaSubstPrunes;
  FormulaArenaBytes += O.FormulaArenaBytes;
  return *this;
}

SolverStats &SolverStats::operator-=(const SolverStats &O) {
  Queries -= O.Queries;
  TheoryChecks -= O.TheoryChecks;
  TheoryConflicts -= O.TheoryConflicts;
  CooperFallbacks -= O.CooperFallbacks;
  CacheHits -= O.CacheHits;
  CacheMisses -= O.CacheMisses;
  SessionChecks -= O.SessionChecks;
  CoreSkips -= O.CoreSkips;
  QeCacheHits -= O.QeCacheHits;
  QeCacheMisses -= O.QeCacheMisses;
  CrossChecks -= O.CrossChecks;
  SatRestarts -= O.SatRestarts;
  SatLearned -= O.SatLearned;
  SatReduced -= O.SatReduced;
  // SatMaxLbd is a high-water mark: the delta of a window is still the
  // cumulative high water, so -= deliberately leaves it unchanged.
  SimplexPivots -= O.SimplexPivots;
  PivotLimitHits -= O.PivotLimitHits;
  TableauReuses -= O.TableauReuses;
  FormulaNodes -= O.FormulaNodes;
  FormulaInternHits -= O.FormulaInternHits;
  FormulaInternProbes -= O.FormulaInternProbes;
  FormulaMemoHits -= O.FormulaMemoHits;
  FormulaMemoMisses -= O.FormulaMemoMisses;
  FormulaSubstPrunes -= O.FormulaSubstPrunes;
  FormulaArenaBytes -= O.FormulaArenaBytes;
  return *this;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

struct RegistryEntry {
  BackendFactory Factory;
  bool Available = true;
};

struct Registry {
  std::mutex Mu;
  std::map<std::string, RegistryEntry> Entries;

  Registry() {
    Entries["native"] = {
        [](FormulaManager &M) -> std::unique_ptr<DecisionProcedure> {
          return std::make_unique<NativeBackend>(M);
        },
        true};
    Entries["z3"] = {
        [](FormulaManager &M) -> std::unique_ptr<DecisionProcedure> {
          return std::make_unique<Z3Backend>(M);
        },
        z3BackendBuilt()};
    // The default differential pair is native-vs-Z3, so it is only usable
    // when the Z3 engine is in the build.
    Entries["differential"] = {
        [](FormulaManager &M) -> std::unique_ptr<DecisionProcedure> {
          return std::make_unique<DifferentialBackend>(M);
        },
        z3BackendBuilt()};
  }
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

void abdiag::smt::registerBackend(const std::string &Name,
                                  BackendFactory Factory, bool Available) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Entries[Name] = {std::move(Factory), Available};
}

std::unique_ptr<DecisionProcedure>
abdiag::smt::createBackend(const std::string &Name, FormulaManager &M) {
  BackendFactory Factory;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    auto It = R.Entries.find(Name);
    if (It == R.Entries.end()) {
      std::string Known;
      for (const auto &[N, E] : R.Entries)
        Known += (Known.empty() ? "" : ", ") + N;
      throw BackendUnavailableError("unknown decision-procedure backend '" +
                                    Name + "' (known: " + Known + ")");
    }
    Factory = It->second.Factory;
  }
  // The factory itself throws BackendUnavailableError with a build hint
  // when the engine is registered but not compiled in.
  return Factory(M);
}

std::vector<std::string> abdiag::smt::backendNames() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::vector<std::string> Names;
  Names.reserve(R.Entries.size());
  for (const auto &[N, E] : R.Entries)
    Names.push_back(N);
  return Names; // std::map iterates sorted
}

bool abdiag::smt::backendAvailable(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Entries.find(Name);
  return It != R.Entries.end() && It->second.Available;
}

std::string abdiag::smt::reproducerDump(const VarTable &VT, const Formula *F) {
  std::string Out;
  for (VarId V : freeVarsVec(F)) {
    Out += "# var " + VT.name(V) + " ";
    switch (VT.kind(V)) {
    case VarKind::Input:
      Out += "input";
      break;
    case VarKind::Abstraction:
      Out += "abstraction";
      break;
    case VarKind::Aux:
      Out += "aux";
      break;
    }
    Out += "\n";
  }
  Out += toString(F, VT);
  Out += "\n";
  return Out;
}
