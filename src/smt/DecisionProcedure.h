//===- smt/DecisionProcedure.h - Pluggable decision procedures --*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract decision-procedure seam between the formula layer and every
/// consumer above it. The paper's whole pipeline -- entailment checks
/// `I |= phi` / `I |= !phi`, the MSA subset search, and simplification
/// modulo I (Lemmas 3/5) -- reduces to decision-procedure calls, so the
/// core, analysis, triage and tool layers talk exclusively to this
/// interface and pick a concrete engine by name:
///
///   * "native"       -- the in-tree lazy DPLL(T) LIA stack (smt/Solver)
///                       with its guard-literal sessions, verdict cache and
///                       QE memo (NativeBackend.h);
///   * "z3"           -- the Z3 SMT solver, when built with
///                       ABDIAG_WITH_Z3=ON (Z3Backend.h);
///   * "differential" -- both of the above side by side, cross-checking
///                       every verdict and failing loudly with a reproducer
///                       dump on any disagreement (DifferentialBackend.h).
///
/// Additional engines can be registered at runtime with registerBackend().
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_DECISIONPROCEDURE_H
#define ABDIAG_SMT_DECISIONPROCEDURE_H

#include "smt/Formula.h"
#include "support/Cancellation.h"

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace abdiag::smt {

/// An integer model; variables absent from the map are unconstrained and
/// may be read as 0.
using Model = std::unordered_map<VarId, int64_t>;

/// Per-backend query statistics. Counters that a backend does not track
/// (e.g. theory conflicts for Z3) simply stay 0; the counter-wise operators
/// let per-worker stats be aggregated and per-report deltas be computed
/// from cumulative counters.
struct SolverStats {
  uint64_t Queries = 0;          ///< top-level isSat/Session checks
  uint64_t TheoryChecks = 0;     ///< LIA conjunction checks
  uint64_t TheoryConflicts = 0;  ///< blocking clauses learned
  uint64_t CooperFallbacks = 0;  ///< budget-exhausted conjunctions
  uint64_t CacheHits = 0;        ///< isSat answers served from the cache
  uint64_t CacheMisses = 0;      ///< isSat answers that had to be solved
  uint64_t SessionChecks = 0;    ///< incremental Session::check calls
  uint64_t CoreSkips = 0;        ///< checks refuted by a remembered core
  uint64_t QeCacheHits = 0;      ///< single-var QE steps served memoized
  uint64_t QeCacheMisses = 0;    ///< single-var QE steps computed
  uint64_t CrossChecks = 0;      ///< verdicts compared by a differential backend
  uint64_t SatRestarts = 0;      ///< CDCL restarts
  uint64_t SatLearned = 0;       ///< CDCL learned clauses created
  uint64_t SatReduced = 0;       ///< learned clauses deleted by DB reduction
  /// Largest LBD ("glue") of any learned clause. A high-water mark, not a
  /// sum: += takes the max of the two sides and -= leaves it unchanged, so
  /// per-report deltas report the cumulative high water.
  uint64_t SatMaxLbd = 0;
  uint64_t SimplexPivots = 0;    ///< simplex pivotAndUpdate operations
  uint64_t PivotLimitHits = 0;   ///< LIA checks aborted by the pivot budget
  uint64_t TableauReuses = 0;    ///< slack rows served by a warm session tableau

  // Formula-substrate counters (FormulaStats deltas since the last reset,
  // merged in by backends that own the native manager; engine-only
  // backends such as Z3 leave them zero so differential sums don't
  // double-count).
  uint64_t FormulaNodes = 0;        ///< distinct nodes interned
  uint64_t FormulaInternHits = 0;   ///< intern lookups answered by existing nodes
  uint64_t FormulaInternProbes = 0; ///< open-addressing probe steps
  uint64_t FormulaMemoHits = 0;     ///< memoized structural-op lookups served
  uint64_t FormulaMemoMisses = 0;   ///< memoized structural-op entries computed
  uint64_t FormulaSubstPrunes = 0;  ///< substitutions returned unchanged
  uint64_t FormulaArenaBytes = 0;   ///< arena bytes grown in the window

  /// Human-readable one-line-per-counter report to a caller-supplied
  /// stream (callers pick stdout, a log file, a string buffer, ...).
  void dump(std::ostream &OS) const;

  SolverStats &operator+=(const SolverStats &O);
  SolverStats &operator-=(const SolverStats &O);
};

/// What a concrete backend can do natively. Consumers may use these to pick
/// strategies (e.g. skip core-based pruning when cores are emulated); every
/// interface method still works on every backend, falling back to shared
/// code where the engine has no native support.
struct BackendCapabilities {
  bool Models = true;        ///< fills integer models for sat answers
  bool UnsatCores = true;    ///< sessions report failed-conjunct cores
  bool NativeQe = true;      ///< quantifier elimination inside the engine
  bool VerdictCache = true;  ///< repeated queries are answered from a cache
  bool Incremental = true;   ///< sessions reuse work across checks
};

/// Base class of every backend error.
class BackendError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a backend is registered but cannot run in this build (e.g.
/// "z3" with ABDIAG_WITH_Z3=OFF) or an unknown backend name is requested.
class BackendUnavailableError : public BackendError {
public:
  using BackendError::BackendError;
};

/// Thrown by the differential backend when two engines disagree on a
/// verdict; what() carries the full reproducer dump (also printed to
/// stderr), in the FormulaParser syntax.
class BackendMismatchError : public BackendError {
public:
  using BackendError::BackendError;
};

/// Abstract decision procedure for quantifier-free LIA over one
/// FormulaManager: satisfiability/validity/entailment with models,
/// incremental sessions with unsat cores, and a (possibly memoized)
/// universal quantifier-elimination hook.
///
/// Instances are not thread-safe; parallel consumers (the triage engine)
/// create one backend per worker so arenas and caches stay thread-local.
class DecisionProcedure {
public:
  /// An incremental query session: each check decides the conjunction of
  /// the given formulas, reusing whatever the engine can carry across
  /// checks (learned clauses and remembered unsat cores for the native
  /// stack, guard-literal assumptions for Z3).
  class Session {
  public:
    virtual ~Session();

    /// True iff the conjunction of \p Conjuncts is satisfiable; fills
    /// \p Out (if non-null) with values for every free variable of the
    /// conjuncts. Equivalent to isSat on their conjunction.
    virtual bool check(const std::vector<const Formula *> &Conjuncts,
                       Model *Out = nullptr) = 0;

    /// After an Unsat check: the subset of that check's conjuncts found
    /// jointly unsatisfiable.
    virtual const std::vector<const Formula *> &lastCore() const = 0;

    /// Number of unsat cores remembered so far.
    virtual size_t numCores() const = 0;
  };

  explicit DecisionProcedure(FormulaManager &M) : M(M) {}
  virtual ~DecisionProcedure();
  DecisionProcedure(const DecisionProcedure &) = delete;
  DecisionProcedure &operator=(const DecisionProcedure &) = delete;

  /// The registry name of the concrete engine ("native", "z3", ...).
  virtual const char *name() const = 0;
  virtual BackendCapabilities capabilities() const = 0;

  /// True iff \p F has an integer model; fills \p Out (if non-null) with
  /// values for every free variable of F.
  virtual bool isSat(const Formula *F, Model *Out = nullptr) = 0;

  /// True iff \p F holds under every assignment.
  bool isValid(const Formula *F) { return !isSat(M.mkNot(F)); }

  /// True iff every model of \p A satisfies \p B.
  bool entails(const Formula *A, const Formula *B) {
    return !isSat(M.mkAnd(A, M.mkNot(B)));
  }

  /// True iff \p A and \p B have the same models.
  bool equivalent(const Formula *A, const Formula *B) {
    return entails(A, B) && entails(B, A);
  }

  /// Opens an incremental session over this backend. Sessions borrow the
  /// backend and must not outlive it.
  virtual std::unique_ptr<Session> openSession() = 0;

  /// Quantifier-free equivalent of `forall Xs. F`. Backends with NativeQe
  /// memoize per-variable elimination steps across calls (the MSA subset
  /// search eliminates near-identical variable sets); others fall back to
  /// the shared Cooper implementation.
  virtual const Formula *eliminateForall(const Formula *F,
                                         const std::vector<VarId> &Xs) = 0;

  FormulaManager &manager() { return M; }

  virtual const SolverStats &stats() const = 0;
  /// Zeroes every statistics counter (verdict caches are kept).
  virtual void resetStats() = 0;

  /// Installs a cooperative cancellation token (nullptr to clear). Engines
  /// poll it inside long-running loops where possible, and at least at
  /// every query boundary, throwing support::CancelledError when expired.
  /// The backend remains usable afterwards.
  virtual void setCancellation(const support::CancellationToken *T) = 0;
  virtual const support::CancellationToken *cancellation() const = 0;

  /// Enables/disables result caching where the engine has any (a no-op for
  /// engines without a VerdictCache capability). Disabling drops cached
  /// entries, so re-enabling starts cold.
  virtual void setCaching(bool On) = 0;
  virtual bool cachingEnabled() const = 0;

  /// Total simplex pivot budget per LIA conjunction check (see
  /// Options::SimplexMaxPivots). A tuning hint: engines without an
  /// equivalent knob (Z3) ignore it. Exhaustion is counted in
  /// SolverStats::PivotLimitHits and triggers the escalation ladder
  /// (bigger budget, then the complete Cooper fallback), so correctness
  /// never depends on the value.
  virtual void setSimplexMaxPivots(int /*MaxPivots*/) {}

protected:
  FormulaManager &M;
};

//===----------------------------------------------------------------------===//
// Backend registry
//===----------------------------------------------------------------------===//

/// Builds a backend instance over \p M.
using BackendFactory =
    std::function<std::unique_ptr<DecisionProcedure>(FormulaManager &)>;

/// Registers (or replaces) a backend under \p Name. \p Available marks
/// whether create() can succeed in this build; registered-but-unavailable
/// entries keep their name listed so tools can report "not built" instead
/// of "unknown backend". Thread-safe.
void registerBackend(const std::string &Name, BackendFactory Factory,
                     bool Available = true);

/// Instantiates the backend registered under \p Name over \p M. Throws
/// BackendUnavailableError for unknown names and for backends not built
/// into this binary (with a message saying how to enable them).
std::unique_ptr<DecisionProcedure> createBackend(const std::string &Name,
                                                 FormulaManager &M);

/// Every registered backend name, sorted, including unavailable ones.
std::vector<std::string> backendNames();

/// True iff createBackend(Name, ...) can succeed in this build.
bool backendAvailable(const std::string &Name);

/// Renders a self-contained reproducer for \p F: one `# var NAME KIND`
/// comment line per free variable followed by the formula in the
/// FormulaParser round-trip syntax. Disagreement dumps and fuzzing
/// artifacts use this format.
std::string reproducerDump(const VarTable &VT, const Formula *F);

} // namespace abdiag::smt

#endif // ABDIAG_SMT_DECISIONPROCEDURE_H
