//===- smt/DifferentialBackend.cpp - Cross-checking backend -----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/DifferentialBackend.h"

#include "smt/FormulaOps.h"
#include "smt/NativeBackend.h"
#include "smt/Z3Backend.h"

#include <cstdio>

using namespace abdiag;
using namespace abdiag::smt;

DifferentialBackend::DifferentialBackend(FormulaManager &M)
    : DifferentialBackend(M, std::make_unique<NativeBackend>(M),
                          std::make_unique<Z3Backend>(M)) {}

DifferentialBackend::DifferentialBackend(
    FormulaManager &M, std::unique_ptr<DecisionProcedure> Primary,
    std::unique_ptr<DecisionProcedure> Secondary)
    : DecisionProcedure(M), Primary(std::move(Primary)),
      Secondary(std::move(Secondary)) {}

DifferentialBackend::~DifferentialBackend() = default;

void DifferentialBackend::mismatch(const char *What, bool PrimarySat,
                                   bool SecondarySat, const Formula *F) const {
  std::string Msg = "decision-procedure disagreement on ";
  Msg += What;
  Msg += ": ";
  Msg += Primary->name();
  Msg += "=";
  Msg += PrimarySat ? "sat" : "unsat";
  Msg += " ";
  Msg += Secondary->name();
  Msg += "=";
  Msg += SecondarySat ? "sat" : "unsat";
  Msg += "\nreproducer (FormulaParser syntax):\n";
  Msg += reproducerDump(M.vars(), F);
  std::fprintf(stderr, "abdiag: FATAL: %s", Msg.c_str());
  std::fflush(stderr);
  throw BackendMismatchError(Msg);
}

bool DifferentialBackend::isSat(const Formula *F, Model *Out) {
  bool P = Primary->isSat(F, Out);
  bool S = Secondary->isSat(F);
  ++CrossChecks;
  if (P != S)
    mismatch("isSat", P, S, F);
  // A sat verdict with a model is additionally checked against the formula
  // itself -- a wrong model is a bug even when the verdicts agree.
  if (P && Out) {
    if (!evaluate(F, [&](VarId V) {
          auto It = Out->find(V);
          return It == Out->end() ? int64_t(0) : It->second;
        }))
      mismatch("model soundness (primary model violates formula)", P, S, F);
  }
  return P;
}

const Formula *
DifferentialBackend::eliminateForall(const Formula *F,
                                     const std::vector<VarId> &Xs) {
  const Formula *Elim = Primary->eliminateForall(F, Xs);
  // Z3 can decide `(forall Xs. F) <=> Elim` outright; other secondaries
  // have no quantified reasoning, so the QE cross-check is Z3-only.
  if (auto *Z3 = dynamic_cast<Z3Backend *>(Secondary.get())) {
    ++CrossChecks;
    if (!Z3->validForallEquiv(F, Xs, Elim))
      mismatch("eliminateForall (result not equivalent to forall Xs. F)",
               true, false, F);
  }
  return Elim;
}

namespace abdiag::smt {

/// Matches the friend declaration in DifferentialBackend; lives in the .cpp
/// only (created exclusively through openSession).
class DifferentialSession final : public DecisionProcedure::Session {
public:
  DifferentialSession(DifferentialBackend &B,
                      std::unique_ptr<DecisionProcedure::Session> P,
                      std::unique_ptr<DecisionProcedure::Session> S)
      : B(B), Primary(std::move(P)), Secondary(std::move(S)) {}

  bool check(const std::vector<const Formula *> &Conjuncts,
             Model *Out = nullptr) override {
    bool P = Primary->check(Conjuncts, Out);
    bool S = Secondary->check(Conjuncts);
    ++B.CrossChecks;
    if (P != S)
      B.mismatch("Session::check", P, S,
                 B.manager().mkAnd(
                     std::vector<const Formula *>(Conjuncts)));
    return P;
  }

  const std::vector<const Formula *> &lastCore() const override {
    return Primary->lastCore();
  }
  size_t numCores() const override { return Primary->numCores(); }

private:
  DifferentialBackend &B;
  std::unique_ptr<DecisionProcedure::Session> Primary;
  std::unique_ptr<DecisionProcedure::Session> Secondary;
};

} // namespace abdiag::smt

std::unique_ptr<DecisionProcedure::Session> DifferentialBackend::openSession() {
  return std::make_unique<DifferentialSession>(*this, Primary->openSession(),
                                               Secondary->openSession());
}

const SolverStats &DifferentialBackend::stats() const {
  Combined = Primary->stats();
  Combined.CrossChecks = CrossChecks;
  return Combined;
}

void DifferentialBackend::resetStats() {
  Primary->resetStats();
  Secondary->resetStats();
  CrossChecks = 0;
}

void DifferentialBackend::setCancellation(const support::CancellationToken *T) {
  Primary->setCancellation(T);
  Secondary->setCancellation(T);
}

void DifferentialBackend::setCaching(bool On) {
  Primary->setCaching(On);
  Secondary->setCaching(On);
}
