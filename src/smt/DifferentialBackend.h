//===- smt/DifferentialBackend.h - Cross-checking backend -------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decision procedure that runs two engines side by side and cross-checks
/// every verdict: satisfiability (one-shot and session checks), validity
/// and entailment (they reduce to isSat), and native quantifier
/// elimination (verified by Z3's quantified reasoning when the secondary
/// engine is Z3). On any disagreement it prints a self-contained reproducer
/// -- the formula and its variable table in FormulaParser syntax -- to
/// stderr and throws BackendMismatchError carrying the same dump, turning
/// the whole diagnosis pipeline into its own correctness harness
/// (`abdiag_triage --backend differential`).
///
/// Answers (models, cores, stats) always come from the primary engine, so a
/// differential run is verdict-for-verdict identical to a primary-only run
/// -- just slower and paranoid.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_DIFFERENTIALBACKEND_H
#define ABDIAG_SMT_DIFFERENTIALBACKEND_H

#include "smt/DecisionProcedure.h"

namespace abdiag::smt {

class DifferentialBackend final : public DecisionProcedure {
public:
  /// The default pair: native as primary, Z3 as secondary. Throws
  /// BackendUnavailableError when the Z3 engine is not built in.
  explicit DifferentialBackend(FormulaManager &M);

  /// An explicit pair, for tests and custom harnesses. Both backends must
  /// be built over \p M. The primary provides all answers; the secondary
  /// only votes on verdicts.
  DifferentialBackend(FormulaManager &M,
                      std::unique_ptr<DecisionProcedure> Primary,
                      std::unique_ptr<DecisionProcedure> Secondary);
  ~DifferentialBackend() override;

  const char *name() const override { return "differential"; }
  BackendCapabilities capabilities() const override {
    return Primary->capabilities();
  }

  bool isSat(const Formula *F, Model *Out = nullptr) override;

  std::unique_ptr<Session> openSession() override;

  /// Primary QE result, cross-checked for equivalence with `forall Xs. F`
  /// when the secondary engine can decide quantified formulas (Z3).
  const Formula *eliminateForall(const Formula *F,
                                 const std::vector<VarId> &Xs) override;

  /// The primary engine's counters, with CrossChecks counting the verdicts
  /// compared against the secondary engine.
  const SolverStats &stats() const override;
  void resetStats() override;

  void setCancellation(const support::CancellationToken *T) override;
  const support::CancellationToken *cancellation() const override {
    return Primary->cancellation();
  }

  void setCaching(bool On) override;
  bool cachingEnabled() const override { return Primary->cachingEnabled(); }

  void setSimplexMaxPivots(int MaxPivots) override {
    Primary->setSimplexMaxPivots(MaxPivots);
    Secondary->setSimplexMaxPivots(MaxPivots);
  }

  DecisionProcedure &primary() { return *Primary; }
  DecisionProcedure &secondary() { return *Secondary; }

private:
  friend class DifferentialSession;

  std::unique_ptr<DecisionProcedure> Primary;
  std::unique_ptr<DecisionProcedure> Secondary;
  /// Primary->stats() plus this backend's CrossChecks counter.
  mutable SolverStats Combined;
  uint64_t CrossChecks = 0;

  /// Prints the reproducer to stderr and throws BackendMismatchError.
  [[noreturn]] void mismatch(const char *What, bool PrimarySat,
                             bool SecondarySat, const Formula *F) const;
};

} // namespace abdiag::smt

#endif // ABDIAG_SMT_DIFFERENTIALBACKEND_H
