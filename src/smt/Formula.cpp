//===- smt/Formula.cpp - Hash-consed LIA formulas --------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Formula.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

size_t hashAtomKey(AtomRel Rel, const LinearExpr &E, int64_t Divisor) {
  size_t H = std::hash<uint8_t>()(static_cast<uint8_t>(FormulaKind::Atom));
  hashCombine(H, std::hash<uint8_t>()(static_cast<uint8_t>(Rel)));
  hashCombine(H, std::hash<int64_t>()(Divisor));
  hashCombine(H, E.hash());
  return H;
}

size_t hashNodeKey(FormulaKind Kind, const std::vector<const Formula *> &Kids) {
  size_t H = std::hash<uint8_t>()(static_cast<uint8_t>(Kind));
  for (const Formula *K : Kids)
    hashCombine(H, std::hash<uint32_t>()(K->id()));
  return H;
}

} // namespace

bool Formula::sameStructure(const Formula &O) const {
  if (Kind != O.Kind)
    return false;
  if (Kind == FormulaKind::Atom)
    return Rel == O.Rel && Divisor == O.Divisor && Expr == O.Expr;
  return NumKids == O.NumKids &&
         std::equal(KidArr, KidArr + NumKids, O.KidArr);
}

FormulaManager::FormulaManager() {
  Table.assign(1024, 0);
  TableMask = Table.size() - 1;
  TrueNode = internNode(FormulaKind::True, {});
  FalseNode = internNode(FormulaKind::False, {});
}

FormulaManager::~FormulaManager() {
  // Nodes live in the arena, which frees memory but runs no destructors;
  // the LinearExpr payload may own heap storage.
  for (Formula *N : NodeList)
    N->~Formula();
}

void FormulaManager::growTable() {
  std::vector<uint32_t> Old = std::move(Table);
  Table.assign(Old.size() * 2, 0);
  TableMask = Table.size() - 1;
  for (uint32_t E : Old) {
    if (!E)
      continue;
    size_t Slot = NodeList[E - 1]->Hash & TableMask;
    while (Table[Slot])
      Slot = (Slot + 1) & TableMask;
    Table[Slot] = E;
  }
}

size_t FormulaManager::probeEmpty(size_t H) const {
  size_t Slot = H & TableMask;
  while (Table[Slot])
    Slot = (Slot + 1) & TableMask;
  return Slot;
}

Formula *FormulaManager::newNode(FormulaKind K, size_t H, size_t Slot) {
  // Keep the load factor below 70%; growth invalidates Slot.
  if ((NodeList.size() + 1) * 10 >= Table.size() * 7) {
    growTable();
    Slot = probeEmpty(H);
  }
  Formula *N = new (Arena.allocate<Formula>()) Formula(K);
  N->Id = static_cast<uint32_t>(NodeList.size());
  N->Hash = H;
  N->Mgr = this;
  NodeList.push_back(N);
  Table[Slot] = N->Id + 1;
  ++Stats.NodesInterned;
  return N;
}

const Formula *FormulaManager::internAtom(AtomRel Rel, LinearExpr E,
                                          int64_t Divisor) {
  size_t H = hashAtomKey(Rel, E, Divisor);
  size_t Slot = H & TableMask;
  size_t Probes = 1;
  while (uint32_t Entry = Table[Slot]) {
    const Formula *N = NodeList[Entry - 1];
    if (N->Hash == H && N->Kind == FormulaKind::Atom && N->Rel == Rel &&
        N->Divisor == Divisor && N->Expr == E) {
      ++Stats.InternHits;
      Stats.InternProbes += Probes;
      return N;
    }
    Slot = (Slot + 1) & TableMask;
    ++Probes;
  }
  Stats.InternProbes += Probes;
  Formula *N = newNode(FormulaKind::Atom, H, Slot);
  N->Rel = Rel;
  N->Divisor = Divisor;
  N->Expr = std::move(E);
  Stats.ArenaBytes = Arena.bytesUsed();
  return N;
}

const Formula *
FormulaManager::internNode(FormulaKind Kind,
                           const std::vector<const Formula *> &Kids) {
  size_t H = hashNodeKey(Kind, Kids);
  size_t Slot = H & TableMask;
  size_t Probes = 1;
  while (uint32_t Entry = Table[Slot]) {
    const Formula *N = NodeList[Entry - 1];
    if (N->Hash == H && N->Kind == Kind && N->NumKids == Kids.size() &&
        std::equal(Kids.begin(), Kids.end(), N->KidArr)) {
      ++Stats.InternHits;
      Stats.InternProbes += Probes;
      return N;
    }
    Slot = (Slot + 1) & TableMask;
    ++Probes;
  }
  Stats.InternProbes += Probes;
  Formula *N = newNode(Kind, H, Slot);
  if (!Kids.empty()) {
    const Formula **Arr = Arena.allocateArray<const Formula *>(Kids.size());
    std::copy(Kids.begin(), Kids.end(), Arr);
    N->KidArr = Arr;
    N->NumKids = static_cast<uint32_t>(Kids.size());
  }
  Stats.ArenaBytes = Arena.bytesUsed();
  return N;
}

const Formula *FormulaManager::mkAtom(AtomRel Rel, LinearExpr E,
                                      int64_t Divisor) {
  switch (Rel) {
  case AtomRel::Le: {
    if (E.isConstant())
      return getBool(E.constant() <= 0);
    // Integer tightening: sum(a_i x_i) + c <= 0 with g = gcd(a_i) is
    // equivalent to sum(a_i/g x_i) <= floor(-c/g).
    int64_t G = E.coeffGcd();
    if (G > 1) {
      LinearExpr Tight;
      for (const auto &T : E.terms())
        Tight = Tight.add(LinearExpr::variable(T.first, T.second / G));
      Tight = Tight.addConst(checkedNeg(floorDiv(checkedNeg(E.constant()), G)));
      E = Tight;
    }
    break;
  }
  case AtomRel::Eq:
  case AtomRel::Ne: {
    if (E.isConstant())
      return getBool(Rel == AtomRel::Eq ? E.constant() == 0
                                        : E.constant() != 0);
    int64_t G = E.coeffGcd();
    if (E.constant() % G != 0)
      return getBool(Rel == AtomRel::Ne);
    if (G > 1)
      E = [&] {
        LinearExpr R = LinearExpr::constant(E.constant() / G);
        for (const auto &T : E.terms())
          R = R.add(LinearExpr::variable(T.first, T.second / G));
        return R;
      }();
    if (E.terms().front().second < 0)
      E = E.negated();
    break;
  }
  case AtomRel::Div:
  case AtomRel::NDiv: {
    assert(Divisor >= 1 && "divisibility atom needs a positive divisor");
    if (Divisor == 1)
      return getBool(Rel == AtomRel::Div);
    // Reduce coefficients and the constant modulo the divisor.
    LinearExpr R = LinearExpr::constant(floorMod(E.constant(), Divisor));
    for (const auto &T : E.terms())
      R = R.add(LinearExpr::variable(T.first, floorMod(T.second, Divisor)));
    E = R;
    if (E.isConstant())
      return getBool((E.constant() % Divisor == 0) == (Rel == AtomRel::Div));
    // d | g*E' with g dividing everything reduces to (d/g) | E'.
    int64_t G = gcd64(E.coeffGcd(), gcd64(E.constant(), Divisor));
    if (G > 1) {
      LinearExpr S = LinearExpr::constant(E.constant() / G);
      for (const auto &T : E.terms())
        S = S.add(LinearExpr::variable(T.first, T.second / G));
      E = S;
      Divisor /= G;
      if (Divisor == 1)
        return getBool(Rel == AtomRel::Div);
    }
    break;
  }
  }
  if (Rel != AtomRel::Div && Rel != AtomRel::NDiv)
    Divisor = 0;
  return internAtom(Rel, std::move(E), Divisor);
}

const Formula *FormulaManager::mkLe(const LinearExpr &A, const LinearExpr &B) {
  return mkAtom(AtomRel::Le, A.sub(B));
}
const Formula *FormulaManager::mkLt(const LinearExpr &A, const LinearExpr &B) {
  return mkAtom(AtomRel::Le, A.sub(B).addConst(1)); // A < B iff A - B + 1 <= 0
}
const Formula *FormulaManager::mkGe(const LinearExpr &A, const LinearExpr &B) {
  return mkLe(B, A);
}
const Formula *FormulaManager::mkGt(const LinearExpr &A, const LinearExpr &B) {
  return mkLt(B, A);
}
const Formula *FormulaManager::mkEq(const LinearExpr &A, const LinearExpr &B) {
  return mkAtom(AtomRel::Eq, A.sub(B));
}
const Formula *FormulaManager::mkNe(const LinearExpr &A, const LinearExpr &B) {
  return mkAtom(AtomRel::Ne, A.sub(B));
}
const Formula *FormulaManager::mkDiv(int64_t D, const LinearExpr &E) {
  return mkAtom(AtomRel::Div, E, D);
}

namespace {
/// Flattens \p Fs into \p Out, inlining children of nested nodes of the same
/// \p Kind. Returns false if a dominating constant (False in And, True in Or)
/// was found.
bool flattenInto(FormulaKind Kind, const std::vector<const Formula *> &Fs,
                 std::vector<const Formula *> &Out) {
  for (const Formula *F : Fs) {
    if (Kind == FormulaKind::And ? F->isTrue() : F->isFalse())
      continue;
    if (Kind == FormulaKind::And ? F->isFalse() : F->isTrue())
      return false;
    if (F->kind() == Kind) {
      // Children of an interned node are already flat.
      Out.insert(Out.end(), F->kids().begin(), F->kids().end());
      continue;
    }
    Out.push_back(F);
  }
  return true;
}
} // namespace

const Formula *FormulaManager::mkAnd(std::vector<const Formula *> Fs) {
  std::vector<const Formula *> Kids;
  if (!flattenInto(FormulaKind::And, Fs, Kids))
    return FalseNode;
  std::sort(Kids.begin(), Kids.end(),
            [](const Formula *A, const Formula *B) { return A->id() < B->id(); });
  Kids.erase(std::unique(Kids.begin(), Kids.end()), Kids.end());
  // Complementary atoms (a and ¬a) make the conjunction false.
  for (const Formula *K : Kids)
    if (K->isAtom() &&
        std::binary_search(Kids.begin(), Kids.end(), mkNot(K),
                           [](const Formula *A, const Formula *B) {
                             return A->id() < B->id();
                           }))
      return FalseNode;
  if (Kids.empty())
    return TrueNode;
  if (Kids.size() == 1)
    return Kids.front();
  return internNode(FormulaKind::And, Kids);
}

const Formula *FormulaManager::mkOr(std::vector<const Formula *> Fs) {
  std::vector<const Formula *> Kids;
  if (!flattenInto(FormulaKind::Or, Fs, Kids))
    return TrueNode;
  std::sort(Kids.begin(), Kids.end(),
            [](const Formula *A, const Formula *B) { return A->id() < B->id(); });
  Kids.erase(std::unique(Kids.begin(), Kids.end()), Kids.end());
  for (const Formula *K : Kids)
    if (K->isAtom() &&
        std::binary_search(Kids.begin(), Kids.end(), mkNot(K),
                           [](const Formula *A, const Formula *B) {
                             return A->id() < B->id();
                           }))
      return TrueNode;
  if (Kids.empty())
    return FalseNode;
  if (Kids.size() == 1)
    return Kids.front();
  return internNode(FormulaKind::Or, Kids);
}

const Formula *FormulaManager::mkNot(const Formula *F) {
  switch (F->kind()) {
  case FormulaKind::True:
    return FalseNode;
  case FormulaKind::False:
    return TrueNode;
  case FormulaKind::Atom:
    switch (F->rel()) {
    case AtomRel::Le: // ¬(E <= 0) iff 1 - E <= 0
      return mkAtom(AtomRel::Le, F->expr().negated().addConst(1));
    case AtomRel::Eq:
      return mkAtom(AtomRel::Ne, F->expr());
    case AtomRel::Ne:
      return mkAtom(AtomRel::Eq, F->expr());
    case AtomRel::Div:
      return mkAtom(AtomRel::NDiv, F->expr(), F->divisor());
    case AtomRel::NDiv:
      return mkAtom(AtomRel::Div, F->expr(), F->divisor());
    }
    break;
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<const Formula *> Negs;
    Negs.reserve(F->kids().size());
    for (const Formula *K : F->kids())
      Negs.push_back(mkNot(K));
    return F->isAnd() ? mkOr(std::move(Negs)) : mkAnd(std::move(Negs));
  }
  }
  assert(false && "unhandled formula kind");
  return FalseNode;
}
