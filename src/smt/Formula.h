//===- smt/Formula.h - Hash-consed LIA formulas -----------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, hash-consed formulas over linear integer arithmetic. Atoms are
/// canonical constraints of the form
///
///   E <= 0        (Le)         E == 0  (Eq)        E != 0  (Ne)
///   d | E         (Div)        d ∤ E   (NDiv)
///
/// where E is a LinearExpr and d >= 2. Divisibility atoms exist because
/// Cooper's quantifier-elimination algorithm introduces them; the solver
/// lowers them before deciding satisfiability.
///
/// Atoms are closed under negation (¬(E<=0) == (1-E<=0), ¬Eq == Ne,
/// ¬Div == NDiv), so smart constructors keep every formula in negation
/// normal form: the only node kinds are True, False, Atom, And, Or.
/// Construction performs local simplification (flattening, unit absorption,
/// duplicate and complementary-literal elimination) and constant atoms fold
/// to True/False, so many trivial tautologies never materialize.
///
/// Storage: nodes and their kid arrays live in a bump arena owned by the
/// manager (pointer-stable for the manager's lifetime, so pointer equality
/// stays structural equality), and interning probes a flat open-addressing
/// hash table of dense node ids. Every node carries its structural hash and
/// a back-pointer to its manager; the manager additionally owns id-indexed
/// memo tables that let the structural ops in FormulaOps run as linear DAG
/// passes instead of exponential tree walks (see FormulaOps.h).
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_FORMULA_H
#define ABDIAG_SMT_FORMULA_H

#include "smt/LinearExpr.h"
#include "smt/Var.h"
#include "support/Arena.h"

#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace abdiag::smt {

class FormulaManager;

/// Node discriminator; formulas are in NNF so there is no Not node.
enum class FormulaKind : uint8_t { True, False, Atom, And, Or };

/// Relation of an atomic constraint over its LinearExpr.
enum class AtomRel : uint8_t { Le, Eq, Ne, Div, NDiv };

/// An immutable formula DAG node. Nodes are created and owned exclusively by
/// a FormulaManager and are unique up to structure, so pointer equality is
/// structural equality.
class Formula {
  friend class FormulaManager;

  FormulaKind Kind;
  AtomRel Rel = AtomRel::Le;       // valid when Kind == Atom
  uint32_t Id = 0;                 // creation index; deterministic order
  uint32_t NumKids = 0;            // valid when Kind is And/Or
  int64_t Divisor = 0;             // valid when Rel is Div/NDiv
  size_t Hash = 0;                 // structural hash, fixed at interning
  const Formula *const *KidArr = nullptr; // arena array, valid for And/Or
  FormulaManager *Mgr = nullptr;   // owning manager (for memoized ops)
  LinearExpr Expr;                 // valid when Kind == Atom

  explicit Formula(FormulaKind K) : Kind(K) {}

public:
  FormulaKind kind() const { return Kind; }
  uint32_t id() const { return Id; }

  bool isTrue() const { return Kind == FormulaKind::True; }
  bool isFalse() const { return Kind == FormulaKind::False; }
  bool isAtom() const { return Kind == FormulaKind::Atom; }
  bool isAnd() const { return Kind == FormulaKind::And; }
  bool isOr() const { return Kind == FormulaKind::Or; }

  AtomRel rel() const { return Rel; }
  int64_t divisor() const { return Divisor; }
  const LinearExpr &expr() const { return Expr; }
  std::span<const Formula *const> kids() const { return {KidArr, NumKids}; }

  /// The manager that owns this node.
  FormulaManager &manager() const { return *Mgr; }

  size_t hash() const { return Hash; }
  bool sameStructure(const Formula &O) const;
};

/// Counters for the formula substrate: interning traffic, memoized-op hit
/// rates, and arena footprint. All deterministic for a fixed construction
/// sequence; surfaced through SolverStats and the benchmark gates.
struct FormulaStats {
  uint64_t NodesInterned = 0; ///< distinct nodes created
  uint64_t InternHits = 0;    ///< intern lookups answered by an existing node
  uint64_t InternProbes = 0;  ///< total open-addressing probe steps
  uint64_t MemoHits = 0;      ///< memoized structural-op lookups served
  uint64_t MemoMisses = 0;    ///< memoized structural-op entries computed
  uint64_t SubstPrunes = 0;   ///< substitutions returned unchanged via
                              ///< free-variable disjointness
  uint64_t ArenaBytes = 0;    ///< bytes of node + kid-array arena storage
};

/// Owns and uniques Formula nodes and the variable table.
///
/// All formula construction goes through the mk* smart constructors, which
/// canonicalize and hash-cons. Formulas from different managers must never
/// be mixed.
class FormulaManager {
  VarTable Vars;
  support::Arena Arena;
  std::vector<Formula *> NodeList; // dense id -> node
  /// Open-addressing intern table: power-of-two capacity, linear probing,
  /// entries are node id + 1 (0 = empty). Grown at 70% load.
  std::vector<uint32_t> Table;
  size_t TableMask = 0;
  const Formula *TrueNode;
  const Formula *FalseNode;
  FormulaStats Stats;

  // Id-indexed memo tables for the structural ops (FormulaOps.cpp). The
  // free-vars memo is a deque so references handed out stay stable while
  // the tables grow with new nodes.
  std::deque<std::vector<VarId>> FreeVarsMemo;
  std::vector<uint8_t> FreeVarsKnown;
  std::vector<uint64_t> AtomCountMemo;
  std::vector<uint32_t> VisitMark; // epoch marks for DAG traversals
  uint32_t VisitEpoch = 0;

  void growTable();
  size_t probeEmpty(size_t H) const;
  Formula *newNode(FormulaKind K, size_t H, size_t Slot);
  const Formula *internAtom(AtomRel Rel, LinearExpr E, int64_t Divisor);
  const Formula *internNode(FormulaKind K,
                            const std::vector<const Formula *> &Kids);

  void ensureMemoSize();
  const std::vector<VarId> &freeVarsRec(const Formula *F);
  uint64_t atomCountRec(const Formula *F);
  void collectAtomsRec(const Formula *F, std::vector<const Formula *> &Out);
  const Formula *
  substituteRec(const Formula *F, const std::vector<VarId> &Domain,
                const std::unordered_map<VarId, LinearExpr> &Map,
                std::unordered_map<const Formula *, const Formula *> &Memo);

public:
  FormulaManager();
  ~FormulaManager();
  FormulaManager(const FormulaManager &) = delete;
  FormulaManager &operator=(const FormulaManager &) = delete;

  VarTable &vars() { return Vars; }
  const VarTable &vars() const { return Vars; }
  size_t numNodes() const { return NodeList.size(); }

  /// Substrate counters; cumulative over the manager's lifetime.
  const FormulaStats &stats() const { return Stats; }

  const Formula *getTrue() const { return TrueNode; }
  const Formula *getFalse() const { return FalseNode; }
  const Formula *getBool(bool B) const { return B ? TrueNode : FalseNode; }

  /// Creates a canonical atom `Rel(E)`; folds constant atoms to True/False.
  /// \p Divisor is required (>= 1) for Div/NDiv and ignored otherwise.
  const Formula *mkAtom(AtomRel Rel, LinearExpr E, int64_t Divisor = 0);

  // Comparison sugar over linear expressions.
  const Formula *mkLe(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkLt(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkGe(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkGt(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkEq(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkNe(const LinearExpr &A, const LinearExpr &B);
  /// d | E  (divisibility; d >= 1).
  const Formula *mkDiv(int64_t D, const LinearExpr &E);

  const Formula *mkAnd(std::vector<const Formula *> Fs);
  const Formula *mkOr(std::vector<const Formula *> Fs);
  const Formula *mkAnd(const Formula *A, const Formula *B) {
    return mkAnd(std::vector<const Formula *>{A, B});
  }
  const Formula *mkOr(const Formula *A, const Formula *B) {
    return mkOr(std::vector<const Formula *>{A, B});
  }

  /// Negation; pushes to NNF immediately (atoms negate to atoms).
  const Formula *mkNot(const Formula *F);
  const Formula *mkImplies(const Formula *A, const Formula *B) {
    return mkOr(mkNot(A), B);
  }
  const Formula *mkIff(const Formula *A, const Formula *B) {
    return mkAnd(mkImplies(A, B), mkImplies(B, A));
  }

  // Memoized structural queries (implemented in FormulaOps.cpp; the
  // FormulaOps free functions are thin wrappers over these). Each is a
  // single linear pass over the formula's *DAG* nodes on first query and
  // an O(1)/O(log n) lookup afterwards.

  /// Sorted free variables of \p F; the reference stays valid for the
  /// manager's lifetime.
  const std::vector<VarId> &freeVarsOf(const Formula *F);
  /// Number of atom occurrences in the *tree* expansion of \p F,
  /// saturating at 2^62 (shared DAGs expand exponentially).
  uint64_t atomCountOf(const Formula *F);
  /// True iff \p V occurs in \p F.
  bool contains(const Formula *F, VarId V);
  /// Appends the distinct atom nodes of \p F (DAG pass, epoch-marked).
  void collectAtomsOf(const Formula *F, std::vector<const Formula *> &Out);
  /// Simultaneous substitution, memoized per shared subformula within the
  /// call; returns \p F itself when the map cannot touch it.
  const Formula *substitute(const Formula *F,
                            const std::unordered_map<VarId, LinearExpr> &Map);
};

} // namespace abdiag::smt

#endif // ABDIAG_SMT_FORMULA_H
