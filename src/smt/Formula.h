//===- smt/Formula.h - Hash-consed LIA formulas -----------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, hash-consed formulas over linear integer arithmetic. Atoms are
/// canonical constraints of the form
///
///   E <= 0        (Le)         E == 0  (Eq)        E != 0  (Ne)
///   d | E         (Div)        d ∤ E   (NDiv)
///
/// where E is a LinearExpr and d >= 2. Divisibility atoms exist because
/// Cooper's quantifier-elimination algorithm introduces them; the solver
/// lowers them before deciding satisfiability.
///
/// Atoms are closed under negation (¬(E<=0) == (1-E<=0), ¬Eq == Ne,
/// ¬Div == NDiv), so smart constructors keep every formula in negation
/// normal form: the only node kinds are True, False, Atom, And, Or.
/// Construction performs local simplification (flattening, unit absorption,
/// duplicate and complementary-literal elimination) and constant atoms fold
/// to True/False, so many trivial tautologies never materialize.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_FORMULA_H
#define ABDIAG_SMT_FORMULA_H

#include "smt/LinearExpr.h"
#include "smt/Var.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace abdiag::smt {

class FormulaManager;

/// Node discriminator; formulas are in NNF so there is no Not node.
enum class FormulaKind : uint8_t { True, False, Atom, And, Or };

/// Relation of an atomic constraint over its LinearExpr.
enum class AtomRel : uint8_t { Le, Eq, Ne, Div, NDiv };

/// An immutable formula DAG node. Nodes are created and owned exclusively by
/// a FormulaManager and are unique up to structure, so pointer equality is
/// structural equality.
class Formula {
  friend class FormulaManager;

  FormulaKind Kind;
  AtomRel Rel = AtomRel::Le;       // valid when Kind == Atom
  int64_t Divisor = 0;             // valid when Rel is Div/NDiv
  uint32_t Id = 0;                 // creation index; deterministic order
  LinearExpr Expr;                 // valid when Kind == Atom
  std::vector<const Formula *> Kids; // valid when Kind is And/Or

  explicit Formula(FormulaKind K) : Kind(K) {}

public:
  FormulaKind kind() const { return Kind; }
  uint32_t id() const { return Id; }

  bool isTrue() const { return Kind == FormulaKind::True; }
  bool isFalse() const { return Kind == FormulaKind::False; }
  bool isAtom() const { return Kind == FormulaKind::Atom; }
  bool isAnd() const { return Kind == FormulaKind::And; }
  bool isOr() const { return Kind == FormulaKind::Or; }

  AtomRel rel() const { return Rel; }
  int64_t divisor() const { return Divisor; }
  const LinearExpr &expr() const { return Expr; }
  const std::vector<const Formula *> &kids() const { return Kids; }

  size_t hash() const;
  bool sameStructure(const Formula &O) const;
};

/// Owns and uniques Formula nodes and the variable table.
///
/// All formula construction goes through the mk* smart constructors, which
/// canonicalize and hash-cons. Formulas from different managers must never
/// be mixed.
class FormulaManager {
  VarTable Vars;
  std::deque<Formula> Nodes;
  std::unordered_map<size_t, std::vector<const Formula *>> Buckets;
  const Formula *TrueNode;
  const Formula *FalseNode;

  const Formula *intern(Formula &&N);

public:
  FormulaManager();
  FormulaManager(const FormulaManager &) = delete;
  FormulaManager &operator=(const FormulaManager &) = delete;

  VarTable &vars() { return Vars; }
  const VarTable &vars() const { return Vars; }
  size_t numNodes() const { return Nodes.size(); }

  const Formula *getTrue() const { return TrueNode; }
  const Formula *getFalse() const { return FalseNode; }
  const Formula *getBool(bool B) const { return B ? TrueNode : FalseNode; }

  /// Creates a canonical atom `Rel(E)`; folds constant atoms to True/False.
  /// \p Divisor is required (>= 1) for Div/NDiv and ignored otherwise.
  const Formula *mkAtom(AtomRel Rel, LinearExpr E, int64_t Divisor = 0);

  // Comparison sugar over linear expressions.
  const Formula *mkLe(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkLt(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkGe(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkGt(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkEq(const LinearExpr &A, const LinearExpr &B);
  const Formula *mkNe(const LinearExpr &A, const LinearExpr &B);
  /// d | E  (divisibility; d >= 1).
  const Formula *mkDiv(int64_t D, const LinearExpr &E);

  const Formula *mkAnd(std::vector<const Formula *> Fs);
  const Formula *mkOr(std::vector<const Formula *> Fs);
  const Formula *mkAnd(const Formula *A, const Formula *B) {
    return mkAnd(std::vector<const Formula *>{A, B});
  }
  const Formula *mkOr(const Formula *A, const Formula *B) {
    return mkOr(std::vector<const Formula *>{A, B});
  }

  /// Negation; pushes to NNF immediately (atoms negate to atoms).
  const Formula *mkNot(const Formula *F);
  const Formula *mkImplies(const Formula *A, const Formula *B) {
    return mkOr(mkNot(A), B);
  }
  const Formula *mkIff(const Formula *A, const Formula *B) {
    return mkAnd(mkImplies(A, B), mkImplies(B, A));
  }
};

} // namespace abdiag::smt

#endif // ABDIAG_SMT_FORMULA_H
