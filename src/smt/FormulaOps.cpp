//===- smt/FormulaOps.cpp - Structural operations on formulas -------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/FormulaOps.h"

#include <algorithm>
#include <cassert>

using namespace abdiag;
using namespace abdiag::smt;

void abdiag::smt::collectFreeVars(const Formula *F, std::set<VarId> &Out) {
  if (F->isAtom()) {
    F->expr().forEachVar([&](VarId V) { Out.insert(V); });
    return;
  }
  for (const Formula *K : F->kids())
    collectFreeVars(K, Out);
}

std::set<VarId> abdiag::smt::freeVars(const Formula *F) {
  std::set<VarId> Out;
  collectFreeVars(F, Out);
  return Out;
}

namespace {
void collectAtomsImpl(const Formula *F, std::set<const Formula *> &Seen,
                      std::vector<const Formula *> &Out) {
  if (F->isAtom()) {
    if (Seen.insert(F).second)
      Out.push_back(F);
    return;
  }
  for (const Formula *K : F->kids())
    collectAtomsImpl(K, Seen, Out);
}
} // namespace

std::vector<const Formula *> abdiag::smt::collectAtoms(const Formula *F) {
  std::set<const Formula *> Seen;
  std::vector<const Formula *> Out;
  collectAtomsImpl(F, Seen, Out);
  std::sort(Out.begin(), Out.end(),
            [](const Formula *A, const Formula *B) { return A->id() < B->id(); });
  return Out;
}

bool abdiag::smt::containsVar(const Formula *F, VarId V) {
  if (F->isAtom())
    return F->expr().contains(V);
  for (const Formula *K : F->kids())
    if (containsVar(K, V))
      return true;
  return false;
}

const Formula *
abdiag::smt::substitute(FormulaManager &M, const Formula *F,
                        const std::unordered_map<VarId, LinearExpr> &Map) {
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return F;
  case FormulaKind::Atom: {
    LinearExpr E = F->expr();
    for (const auto &[V, Repl] : Map)
      E = E.substituted(V, Repl);
    return M.mkAtom(F->rel(), std::move(E), F->divisor());
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<const Formula *> Kids;
    Kids.reserve(F->kids().size());
    for (const Formula *K : F->kids())
      Kids.push_back(substitute(M, K, Map));
    return F->isAnd() ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
  }
  }
  assert(false && "unhandled formula kind");
  return F;
}

const Formula *abdiag::smt::substitute(FormulaManager &M, const Formula *F,
                                       VarId V, const LinearExpr &Repl) {
  std::unordered_map<VarId, LinearExpr> Map;
  Map.emplace(V, Repl);
  return substitute(M, F, Map);
}

bool abdiag::smt::evaluate(const Formula *F,
                           const std::function<int64_t(VarId)> &Value) {
  switch (F->kind()) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom: {
    int64_t E = F->expr().evaluate(Value);
    switch (F->rel()) {
    case AtomRel::Le:
      return E <= 0;
    case AtomRel::Eq:
      return E == 0;
    case AtomRel::Ne:
      return E != 0;
    case AtomRel::Div:
      return floorMod(E, F->divisor()) == 0;
    case AtomRel::NDiv:
      return floorMod(E, F->divisor()) != 0;
    }
    break;
  }
  case FormulaKind::And:
    for (const Formula *K : F->kids())
      if (!evaluate(K, Value))
        return false;
    return true;
  case FormulaKind::Or:
    for (const Formula *K : F->kids())
      if (evaluate(K, Value))
        return true;
    return false;
  }
  assert(false && "unhandled formula kind");
  return false;
}

size_t abdiag::smt::atomCount(const Formula *F) {
  if (F->isAtom())
    return 1;
  size_t N = 0;
  for (const Formula *K : F->kids())
    N += atomCount(K);
  return N;
}

namespace {

/// Shared engine for CNF/DNF by distribution. For CNF, a "group" is a clause
/// (set of atoms read disjunctively); And concatenates groups and Or takes
/// the cross product. DNF is the exact dual.
bool normalForm(const Formula *F, bool Cnf,
                std::vector<std::vector<const Formula *>> &Out, size_t Max) {
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False: {
    bool NeutralConst = Cnf ? F->isTrue() : F->isFalse();
    if (NeutralConst) {
      Out.clear(); // no groups: empty CNF is true / empty DNF is false
    } else {
      Out.clear();
      Out.push_back({}); // one empty group: empty clause/cube
    }
    return true;
  }
  case FormulaKind::Atom:
    Out.clear();
    Out.push_back({F});
    return true;
  case FormulaKind::And:
  case FormulaKind::Or: {
    bool Concat = Cnf == F->isAnd();
    std::vector<std::vector<const Formula *>> Acc;
    bool First = true;
    for (const Formula *K : F->kids()) {
      std::vector<std::vector<const Formula *>> Sub;
      if (!normalForm(K, Cnf, Sub, Max))
        return false;
      if (Concat) {
        Acc.insert(Acc.end(), Sub.begin(), Sub.end());
      } else if (First) {
        Acc = std::move(Sub);
      } else {
        std::vector<std::vector<const Formula *>> Cross;
        if (Acc.size() * Sub.size() > Max)
          return false;
        for (const auto &A : Acc)
          for (const auto &B : Sub) {
            std::vector<const Formula *> Merged = A;
            Merged.insert(Merged.end(), B.begin(), B.end());
            Cross.push_back(std::move(Merged));
          }
        Acc = std::move(Cross);
      }
      First = false;
      if (Acc.size() > Max)
        return false;
    }
    Out = std::move(Acc);
    return true;
  }
  }
  assert(false && "unhandled formula kind");
  return false;
}

/// Deduplicates atoms within each group and drops groups subsumed by
/// constant simplification (a clause containing complementary atoms is true;
/// a cube containing complementary atoms is false).
void tidyGroups(FormulaManager &M,
                std::vector<std::vector<const Formula *>> &Groups) {
  std::vector<std::vector<const Formula *>> Kept;
  for (auto &G : Groups) {
    std::sort(G.begin(), G.end(),
              [](const Formula *A, const Formula *B) { return A->id() < B->id(); });
    G.erase(std::unique(G.begin(), G.end()), G.end());
    bool Degenerate = false;
    for (const Formula *A : G)
      if (std::binary_search(G.begin(), G.end(), M.mkNot(A),
                             [](const Formula *X, const Formula *Y) {
                               return X->id() < Y->id();
                             })) {
        Degenerate = true;
        break;
      }
    // A degenerate clause is trivially true (drop it from the CNF); a
    // degenerate cube is trivially false (drop it from the DNF).
    if (!Degenerate)
      Kept.push_back(std::move(G));
  }
  Groups = std::move(Kept);
}

} // namespace

bool abdiag::smt::toCnf(FormulaManager &M, const Formula *F,
                        std::vector<std::vector<const Formula *>> &Out,
                        size_t MaxClauses) {
  if (!normalForm(F, /*Cnf=*/true, Out, MaxClauses))
    return false;
  tidyGroups(M, Out);
  return true;
}

bool abdiag::smt::toDnf(FormulaManager &M, const Formula *F,
                        std::vector<std::vector<const Formula *>> &Out,
                        size_t MaxCubes) {
  if (!normalForm(F, /*Cnf=*/false, Out, MaxCubes))
    return false;
  tidyGroups(M, Out);
  return true;
}
