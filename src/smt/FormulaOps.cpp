//===- smt/FormulaOps.cpp - Structural operations on formulas -------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The memoized query engines live here as FormulaManager members (they own
// the id-indexed memo tables declared in Formula.h); the public FormulaOps
// functions are thin wrappers that reach the manager through the node's
// back-pointer.
//
//===----------------------------------------------------------------------===//

#include "smt/FormulaOps.h"

#include <algorithm>
#include <cassert>

using namespace abdiag;
using namespace abdiag::smt;

namespace {
/// Tree atom counts of shared DAGs overflow quickly; saturate instead.
constexpr uint64_t UnknownCount = ~uint64_t(0);
constexpr uint64_t CountCap = uint64_t(1) << 62;

uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  return (A >= CountCap || B >= CountCap || A + B >= CountCap) ? CountCap
                                                               : A + B;
}
} // namespace

void FormulaManager::ensureMemoSize() {
  size_t N = NodeList.size();
  if (FreeVarsKnown.size() >= N)
    return;
  FreeVarsMemo.resize(N);
  FreeVarsKnown.resize(N, 0);
  AtomCountMemo.resize(N, UnknownCount);
  VisitMark.resize(N, 0);
}

const std::vector<VarId> &FormulaManager::freeVarsRec(const Formula *F) {
  uint32_t Id = F->id();
  if (FreeVarsKnown[Id]) {
    ++Stats.MemoHits;
    return FreeVarsMemo[Id];
  }
  ++Stats.MemoMisses;
  std::vector<VarId> Out;
  if (F->isAtom()) {
    for (const auto &T : F->expr().terms())
      Out.push_back(T.first); // terms are var-sorted already
  } else {
    for (const Formula *K : F->kids()) {
      const std::vector<VarId> &KV = freeVarsRec(K);
      Out.insert(Out.end(), KV.begin(), KV.end());
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }
  FreeVarsMemo[Id] = std::move(Out);
  FreeVarsKnown[Id] = 1;
  return FreeVarsMemo[Id];
}

const std::vector<VarId> &FormulaManager::freeVarsOf(const Formula *F) {
  assert(F->Mgr == this && "formula from a different manager");
  ensureMemoSize();
  return freeVarsRec(F);
}

uint64_t FormulaManager::atomCountRec(const Formula *F) {
  uint32_t Id = F->id();
  if (AtomCountMemo[Id] != UnknownCount) {
    ++Stats.MemoHits;
    return AtomCountMemo[Id];
  }
  ++Stats.MemoMisses;
  uint64_t N = 0;
  if (F->isAtom()) {
    N = 1;
  } else {
    for (const Formula *K : F->kids())
      N = saturatingAdd(N, atomCountRec(K));
  }
  AtomCountMemo[Id] = N;
  return N;
}

uint64_t FormulaManager::atomCountOf(const Formula *F) {
  assert(F->Mgr == this && "formula from a different manager");
  ensureMemoSize();
  return atomCountRec(F);
}

bool FormulaManager::contains(const Formula *F, VarId V) {
  const std::vector<VarId> &FV = freeVarsOf(F);
  return std::binary_search(FV.begin(), FV.end(), V);
}

void FormulaManager::collectAtomsRec(const Formula *F,
                                     std::vector<const Formula *> &Out) {
  uint32_t Id = F->id();
  if (VisitMark[Id] == VisitEpoch)
    return;
  VisitMark[Id] = VisitEpoch;
  if (F->isAtom()) {
    Out.push_back(F);
    return;
  }
  for (const Formula *K : F->kids())
    collectAtomsRec(K, Out);
}

void FormulaManager::collectAtomsOf(const Formula *F,
                                    std::vector<const Formula *> &Out) {
  assert(F->Mgr == this && "formula from a different manager");
  ensureMemoSize();
  if (++VisitEpoch == 0) { // epoch wrapped: old marks are ambiguous
    std::fill(VisitMark.begin(), VisitMark.end(), 0);
    VisitEpoch = 1;
  }
  collectAtomsRec(F, Out);
}

const Formula *FormulaManager::substituteRec(
    const Formula *F, const std::vector<VarId> &Domain,
    const std::unordered_map<VarId, LinearExpr> &Map,
    std::unordered_map<const Formula *, const Formula *> &Memo) {
  if (F->isTrue() || F->isFalse())
    return F;
  // Untouchable subformula: the map's domain misses every free variable.
  const std::vector<VarId> &FV = freeVarsRec(F);
  bool Touches = false;
  for (VarId V : Domain)
    if (std::binary_search(FV.begin(), FV.end(), V)) {
      Touches = true;
      break;
    }
  if (!Touches) {
    ++Stats.SubstPrunes;
    return F;
  }
  auto It = Memo.find(F);
  if (It != Memo.end()) {
    ++Stats.MemoHits;
    return It->second;
  }
  const Formula *R;
  if (F->isAtom()) {
    LinearExpr E = F->expr();
    for (const auto &[V, Repl] : Map)
      E = E.substituted(V, Repl);
    R = mkAtom(F->rel(), std::move(E), F->divisor());
  } else {
    std::vector<const Formula *> Kids;
    Kids.reserve(F->kids().size());
    for (const Formula *K : F->kids())
      Kids.push_back(substituteRec(K, Domain, Map, Memo));
    R = F->isAnd() ? mkAnd(std::move(Kids)) : mkOr(std::move(Kids));
  }
  Memo.emplace(F, R);
  return R;
}

const Formula *
FormulaManager::substitute(const Formula *F,
                           const std::unordered_map<VarId, LinearExpr> &Map) {
  assert(F->Mgr == this && "formula from a different manager");
  if (Map.empty()) {
    ++Stats.SubstPrunes;
    return F;
  }
  ensureMemoSize();
  std::vector<VarId> Domain;
  Domain.reserve(Map.size());
  for (const auto &[V, Repl] : Map)
    Domain.push_back(V);
  std::sort(Domain.begin(), Domain.end());
  std::unordered_map<const Formula *, const Formula *> Memo;
  return substituteRec(F, Domain, Map, Memo);
}

const std::vector<VarId> &abdiag::smt::freeVarsVec(const Formula *F) {
  return F->manager().freeVarsOf(F);
}

std::set<VarId> abdiag::smt::freeVars(const Formula *F) {
  const std::vector<VarId> &FV = freeVarsVec(F);
  return std::set<VarId>(FV.begin(), FV.end());
}

void abdiag::smt::collectFreeVars(const Formula *F, std::set<VarId> &Out) {
  const std::vector<VarId> &FV = freeVarsVec(F);
  Out.insert(FV.begin(), FV.end());
}

std::vector<const Formula *> abdiag::smt::collectAtoms(const Formula *F) {
  std::vector<const Formula *> Out;
  F->manager().collectAtomsOf(F, Out);
  std::sort(Out.begin(), Out.end(),
            [](const Formula *A, const Formula *B) { return A->id() < B->id(); });
  return Out;
}

bool abdiag::smt::containsVar(const Formula *F, VarId V) {
  return F->manager().contains(F, V);
}

const Formula *
abdiag::smt::substitute(FormulaManager &M, const Formula *F,
                        const std::unordered_map<VarId, LinearExpr> &Map) {
  return M.substitute(F, Map);
}

const Formula *abdiag::smt::substitute(FormulaManager &M, const Formula *F,
                                       VarId V, const LinearExpr &Repl) {
  std::unordered_map<VarId, LinearExpr> Map;
  Map.emplace(V, Repl);
  return substitute(M, F, Map);
}

bool abdiag::smt::evaluate(const Formula *F,
                           const std::function<int64_t(VarId)> &Value) {
  switch (F->kind()) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom: {
    int64_t E = F->expr().evaluate(Value);
    switch (F->rel()) {
    case AtomRel::Le:
      return E <= 0;
    case AtomRel::Eq:
      return E == 0;
    case AtomRel::Ne:
      return E != 0;
    case AtomRel::Div:
      return floorMod(E, F->divisor()) == 0;
    case AtomRel::NDiv:
      return floorMod(E, F->divisor()) != 0;
    }
    break;
  }
  case FormulaKind::And:
    for (const Formula *K : F->kids())
      if (!evaluate(K, Value))
        return false;
    return true;
  case FormulaKind::Or:
    for (const Formula *K : F->kids())
      if (evaluate(K, Value))
        return true;
    return false;
  }
  assert(false && "unhandled formula kind");
  return false;
}

size_t abdiag::smt::atomCount(const Formula *F) {
  return static_cast<size_t>(F->manager().atomCountOf(F));
}

namespace {

/// Shared engine for CNF/DNF by distribution. For CNF, a "group" is a clause
/// (set of atoms read disjunctively); And concatenates groups and Or takes
/// the cross product. DNF is the exact dual.
bool normalForm(const Formula *F, bool Cnf,
                std::vector<std::vector<const Formula *>> &Out, size_t Max) {
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False: {
    bool NeutralConst = Cnf ? F->isTrue() : F->isFalse();
    if (NeutralConst) {
      Out.clear(); // no groups: empty CNF is true / empty DNF is false
    } else {
      Out.clear();
      Out.push_back({}); // one empty group: empty clause/cube
    }
    return true;
  }
  case FormulaKind::Atom:
    Out.clear();
    Out.push_back({F});
    return true;
  case FormulaKind::And:
  case FormulaKind::Or: {
    bool Concat = Cnf == F->isAnd();
    std::vector<std::vector<const Formula *>> Acc;
    bool First = true;
    for (const Formula *K : F->kids()) {
      std::vector<std::vector<const Formula *>> Sub;
      if (!normalForm(K, Cnf, Sub, Max))
        return false;
      if (Concat) {
        Acc.insert(Acc.end(), Sub.begin(), Sub.end());
      } else if (First) {
        Acc = std::move(Sub);
      } else {
        std::vector<std::vector<const Formula *>> Cross;
        if (Acc.size() * Sub.size() > Max)
          return false;
        for (const auto &A : Acc)
          for (const auto &B : Sub) {
            std::vector<const Formula *> Merged = A;
            Merged.insert(Merged.end(), B.begin(), B.end());
            Cross.push_back(std::move(Merged));
          }
        Acc = std::move(Cross);
      }
      First = false;
      if (Acc.size() > Max)
        return false;
    }
    Out = std::move(Acc);
    return true;
  }
  }
  assert(false && "unhandled formula kind");
  return false;
}

/// Deduplicates atoms within each group and drops groups subsumed by
/// constant simplification (a clause containing complementary atoms is true;
/// a cube containing complementary atoms is false).
void tidyGroups(FormulaManager &M,
                std::vector<std::vector<const Formula *>> &Groups) {
  std::vector<std::vector<const Formula *>> Kept;
  for (auto &G : Groups) {
    std::sort(G.begin(), G.end(),
              [](const Formula *A, const Formula *B) { return A->id() < B->id(); });
    G.erase(std::unique(G.begin(), G.end()), G.end());
    bool Degenerate = false;
    for (const Formula *A : G)
      if (std::binary_search(G.begin(), G.end(), M.mkNot(A),
                             [](const Formula *X, const Formula *Y) {
                               return X->id() < Y->id();
                             })) {
        Degenerate = true;
        break;
      }
    // A degenerate clause is trivially true (drop it from the CNF); a
    // degenerate cube is trivially false (drop it from the DNF).
    if (!Degenerate)
      Kept.push_back(std::move(G));
  }
  Groups = std::move(Kept);
}

} // namespace

bool abdiag::smt::toCnf(FormulaManager &M, const Formula *F,
                        std::vector<std::vector<const Formula *>> &Out,
                        size_t MaxClauses) {
  if (!normalForm(F, /*Cnf=*/true, Out, MaxClauses))
    return false;
  tidyGroups(M, Out);
  return true;
}

bool abdiag::smt::toDnf(FormulaManager &M, const Formula *F,
                        std::vector<std::vector<const Formula *>> &Out,
                        size_t MaxCubes) {
  if (!normalForm(F, /*Cnf=*/false, Out, MaxCubes))
    return false;
  tidyGroups(M, Out);
  return true;
}
