//===- smt/FormulaOps.h - Structural operations on formulas -----*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural (solver-free) operations on formulas: free-variable and atom
/// collection, substitution, ground evaluation, size metrics, and the
/// CNF/DNF conversions used by query decomposition (Section 4.4 of the
/// paper). CNF/DNF use distribution, which can blow up exponentially; they
/// are only applied to the small query formulas produced by abduction.
///
/// Formulas are shared DAGs, and the queries here are memoized per node in
/// the owning FormulaManager: freeVars/atomCount/containsVar cost one
/// linear DAG pass on the first query and cached lookups afterwards, and
/// substitute rebuilds every shared subformula once per call (returning the
/// input unchanged when the substitution domain cannot touch it). Prefer
/// freeVarsVec over the std::set shim: it returns the manager's cached
/// sorted vector without allocating.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_FORMULAOPS_H
#define ABDIAG_SMT_FORMULAOPS_H

#include "smt/Formula.h"

#include <functional>
#include <set>
#include <unordered_map>

namespace abdiag::smt {

/// Sorted vector of the variables occurring in \p F, cached in the owning
/// manager; the reference stays valid for the manager's lifetime.
const std::vector<VarId> &freeVarsVec(const Formula *F);

/// Sorted set of the variables occurring in \p F. Compatibility shim over
/// freeVarsVec for callers that genuinely accumulate a set; prefer the
/// vector API on hot paths.
std::set<VarId> freeVars(const Formula *F);

/// Inserts the free variables of \p F into \p Out.
void collectFreeVars(const Formula *F, std::set<VarId> &Out);

/// All distinct atom nodes occurring in \p F, in deterministic (id) order.
std::vector<const Formula *> collectAtoms(const Formula *F);

/// True iff variable \p V occurs in \p F.
bool containsVar(const Formula *F, VarId V);

/// Replaces every variable in the domain of \p Map by its linear expression,
/// rebuilding (and re-canonicalizing) the formula in \p M. Returns \p F
/// unchanged when the map is empty or its domain is disjoint from
/// freeVars(F); shared subformulas are rebuilt once per call.
const Formula *substitute(FormulaManager &M, const Formula *F,
                          const std::unordered_map<VarId, LinearExpr> &Map);

/// Substitutes a single variable.
const Formula *substitute(FormulaManager &M, const Formula *F, VarId V,
                          const LinearExpr &Repl);

/// Evaluates \p F under the total assignment \p Value; every variable of F
/// must be defined by \p Value.
bool evaluate(const Formula *F, const std::function<int64_t(VarId)> &Value);

/// Number of atom occurrences in \p F (tree count, not DAG count;
/// saturates at 2^62 since shared DAGs expand exponentially).
size_t atomCount(const Formula *F);

/// Conjunctive normal form as a list of clauses (each clause a list of atom
/// formulas, representing their disjunction). \p MaxClauses bounds blowup;
/// returns false (leaving \p Out unspecified) if the bound is exceeded.
bool toCnf(FormulaManager &M, const Formula *F,
           std::vector<std::vector<const Formula *>> &Out,
           size_t MaxClauses = 4096);

/// Disjunctive normal form as a list of cubes (each cube a list of atom
/// formulas, representing their conjunction).
bool toDnf(FormulaManager &M, const Formula *F,
           std::vector<std::vector<const Formula *>> &Out,
           size_t MaxCubes = 4096);

} // namespace abdiag::smt

#endif // ABDIAG_SMT_FORMULAOPS_H
