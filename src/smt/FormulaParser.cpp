//===- smt/FormulaParser.cpp - Text syntax for formulas ----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/FormulaParser.h"

#include <cassert>
#include <cctype>
#include <vector>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

enum class Tok : uint8_t {
  End,
  Int,
  Ident,
  AndAnd,
  OrOr,
  Bang,
  LParen,
  RParen,
  Plus,
  Minus,
  Star,
  Pipe,
  Eq,   // '=' or '=='
  Ne,   // '!='
  Le,
  Ge,
  Lt,
  Gt,
  Error
};

struct Token {
  Tok Kind;
  int64_t Value = 0;
  std::string Text;
  size_t Pos = 0;
};

std::vector<Token> lex(std::string_view Src) {
  std::vector<Token> Out;
  size_t I = 0;
  auto IsIdentStart = [](char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
  };
  auto IsIdentChar = [&](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '@' || C == '.';
  };
  while (I < Src.size()) {
    char C = Src[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    size_t Start = I;
    auto Two = [&](char Next) {
      return I + 1 < Src.size() && Src[I + 1] == Next;
    };
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (I < Src.size() && std::isdigit(static_cast<unsigned char>(Src[I])))
        V = V * 10 + (Src[I++] - '0');
      Out.push_back({Tok::Int, V, "", Start});
      continue;
    }
    if (IsIdentStart(C)) {
      size_t J = I;
      while (J < Src.size() && IsIdentChar(Src[J]))
        ++J;
      std::string Name(Src.substr(I, J - I));
      I = J;
      if (Name == "true" || Name == "false") {
        // Handled by the parser via the Text field.
      }
      Out.push_back({Tok::Ident, 0, std::move(Name), Start});
      continue;
    }
    switch (C) {
    case '&':
      if (Two('&')) {
        Out.push_back({Tok::AndAnd, 0, "", Start});
        I += 2;
        continue;
      }
      break;
    case '|':
      if (Two('|')) {
        Out.push_back({Tok::OrOr, 0, "", Start});
        I += 2;
      } else {
        Out.push_back({Tok::Pipe, 0, "", Start});
        ++I;
      }
      continue;
    case '!':
      if (Two('=')) {
        Out.push_back({Tok::Ne, 0, "", Start});
        I += 2;
      } else {
        Out.push_back({Tok::Bang, 0, "", Start});
        ++I;
      }
      continue;
    case '=':
      Out.push_back({Tok::Eq, 0, "", Start});
      I += Two('=') ? 2 : 1;
      continue;
    case '<':
      if (Two('=')) {
        Out.push_back({Tok::Le, 0, "", Start});
        I += 2;
      } else {
        Out.push_back({Tok::Lt, 0, "", Start});
        ++I;
      }
      continue;
    case '>':
      if (Two('=')) {
        Out.push_back({Tok::Ge, 0, "", Start});
        I += 2;
      } else {
        Out.push_back({Tok::Gt, 0, "", Start});
        ++I;
      }
      continue;
    case '(':
      Out.push_back({Tok::LParen, 0, "", Start});
      ++I;
      continue;
    case ')':
      Out.push_back({Tok::RParen, 0, "", Start});
      ++I;
      continue;
    case '+':
      Out.push_back({Tok::Plus, 0, "", Start});
      ++I;
      continue;
    case '-':
      Out.push_back({Tok::Minus, 0, "", Start});
      ++I;
      continue;
    case '*':
      Out.push_back({Tok::Star, 0, "", Start});
      ++I;
      continue;
    default:
      break;
    }
    Out.push_back({Tok::Error, 0, std::string(1, C), Start});
    ++I;
  }
  Out.push_back({Tok::End, 0, "", Src.size()});
  return Out;
}

class Parser {
  FormulaManager &M;
  FormulaParseOptions Opts;
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::string Error;

public:
  Parser(FormulaManager &M, std::string_view Src,
         const FormulaParseOptions &Opts)
      : M(M), Opts(Opts), Toks(lex(Src)) {}

  FormulaParseResult run() {
    const Formula *F = parseDisj();
    if (Error.empty() && !at(Tok::End))
      fail("unexpected trailing input");
    FormulaParseResult R;
    if (Error.empty())
      R.F = F;
    R.Error = Error;
    return R;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  bool at(Tok K) const { return cur().Kind == K; }
  bool accept(Tok K) {
    if (Error.empty() && at(K)) {
      ++Pos;
      return true;
    }
    return false;
  }
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = "formula parse error at offset " + std::to_string(cur().Pos) +
              ": " + Msg;
  }

  const Formula *parseDisj() {
    std::vector<const Formula *> Kids{parseConj()};
    while (accept(Tok::OrOr))
      Kids.push_back(parseConj());
    return Kids.size() == 1 ? Kids.front() : M.mkOr(std::move(Kids));
  }

  const Formula *parseConj() {
    std::vector<const Formula *> Kids{parseUnary()};
    while (accept(Tok::AndAnd))
      Kids.push_back(parseUnary());
    return Kids.size() == 1 ? Kids.front() : M.mkAnd(std::move(Kids));
  }

  const Formula *parseUnary() {
    if (!Error.empty())
      return M.getFalse();
    if (accept(Tok::Bang))
      return M.mkNot(parseUnary());
    if (at(Tok::Ident) && cur().Text == "true") {
      ++Pos;
      return M.getTrue();
    }
    if (at(Tok::Ident) && cur().Text == "false") {
      ++Pos;
      return M.getFalse();
    }
    // Divisibility: INT '|' '(' linexpr ')'.
    if (at(Tok::Int) && Pos + 1 < Toks.size() &&
        Toks[Pos + 1].Kind == Tok::Pipe) {
      int64_t D = cur().Value;
      Pos += 2;
      if (!accept(Tok::LParen)) {
        fail("expected '(' after divisibility bar");
        return M.getFalse();
      }
      LinearExpr E = parseLinExpr();
      if (!accept(Tok::RParen)) {
        fail("expected ')' after divisibility expression");
        return M.getFalse();
      }
      if (D < 1) {
        fail("divisor must be positive");
        return M.getFalse();
      }
      return M.mkDiv(D, E);
    }
    // '(' is ambiguous: parenthesized formula or parenthesized arithmetic
    // starting a comparison. Try the formula reading and backtrack if a
    // comparison or arithmetic operator follows.
    if (at(Tok::LParen)) {
      size_t Save = Pos;
      std::string SavedError = Error;
      ++Pos;
      const Formula *Inner = parseDisj();
      if (Error.empty() && at(Tok::RParen) && !arithmeticFollows()) {
        ++Pos;
        return Inner;
      }
      Pos = Save;
      Error = SavedError;
    }
    return parseCompare();
  }

  /// After "(...)" parsed as a formula, these tokens mean it was really an
  /// arithmetic group.
  bool arithmeticFollows() const {
    if (Pos + 1 >= Toks.size())
      return false;
    switch (Toks[Pos + 1].Kind) {
    case Tok::Eq:
    case Tok::Ne:
    case Tok::Le:
    case Tok::Ge:
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Plus:
    case Tok::Minus:
    case Tok::Star:
      return true;
    default:
      return false;
    }
  }

  const Formula *parseCompare() {
    LinearExpr L = parseLinExpr();
    AtomRel Rel;
    bool Flip = false;
    int64_t Offset = 0;
    switch (cur().Kind) {
    case Tok::Le:
      Rel = AtomRel::Le;
      break;
    case Tok::Ge:
      Rel = AtomRel::Le;
      Flip = true;
      break;
    case Tok::Lt: // a < b  iff  a - b + 1 <= 0
      Rel = AtomRel::Le;
      Offset = 1;
      break;
    case Tok::Gt:
      Rel = AtomRel::Le;
      Flip = true;
      Offset = 1;
      break;
    case Tok::Eq:
      Rel = AtomRel::Eq;
      break;
    case Tok::Ne:
      Rel = AtomRel::Ne;
      break;
    default:
      fail("expected a comparison operator");
      return M.getFalse();
    }
    ++Pos;
    LinearExpr R = parseLinExpr();
    LinearExpr E = Flip ? R.sub(L) : L.sub(R);
    return M.mkAtom(Rel, E.addConst(Offset));
  }

  LinearExpr parseLinExpr() {
    LinearExpr E;
    bool Negate = accept(Tok::Minus);
    E = parseTerm().scaled(Negate ? -1 : 1);
    while (Error.empty() && (at(Tok::Plus) || at(Tok::Minus))) {
      bool Minus = at(Tok::Minus);
      ++Pos;
      E = E.add(parseTerm().scaled(Minus ? -1 : 1));
    }
    return E;
  }

  LinearExpr parseTerm() {
    if (at(Tok::Int)) {
      int64_t C = cur().Value;
      ++Pos;
      if (accept(Tok::Star)) {
        if (!at(Tok::Ident)) {
          fail("expected a variable after '*'");
          return LinearExpr();
        }
        return LinearExpr::variable(resolveVar(), C);
      }
      // Grouped arithmetic after a coefficient is not supported; keep the
      // grammar linear: INT, INT*VAR, or VAR.
      return LinearExpr::constant(C);
    }
    if (at(Tok::Ident))
      return LinearExpr::variable(resolveVar());
    if (at(Tok::LParen)) {
      ++Pos;
      LinearExpr E = parseLinExpr();
      if (!accept(Tok::RParen))
        fail("expected ')' in expression");
      return E;
    }
    fail("expected a term");
    return LinearExpr();
  }

  VarId resolveVar() {
    assert(at(Tok::Ident));
    std::string Name = cur().Text;
    ++Pos;
    VarId V = M.vars().lookup(Name);
    if (V != ~0u)
      return V;
    if (!Opts.CreateUnknownVars) {
      fail("unknown variable '" + Name + "'");
      return 0;
    }
    return M.vars().create(Name, Opts.NewVarKind);
  }
};

} // namespace

FormulaParseResult abdiag::smt::parseFormula(FormulaManager &M,
                                             std::string_view Text,
                                             const FormulaParseOptions &Opts) {
  Parser P(M, Text, Opts);
  return P.run();
}
