//===- smt/FormulaParser.h - Text syntax for formulas -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the human-readable formula syntax emitted by smt/Printer.h, so
/// users can write invariants and queries as text:
///
///   formula := disj
///   disj    := conj ("||" conj)*
///   conj    := unary ("&&" unary)*
///   unary   := "!" unary | "true" | "false" | "(" formula ")"
///            | INT "|" "(" linexpr ")"          (divisibility)
///            | linexpr (= | == | != | <= | >= | < | >) linexpr
///   linexpr := ["-"] term (("+" | "-") term)*
///   term    := INT | INT "*" VAR | VAR
///
/// Variable names may contain letters, digits, '_', '@' and '.', matching
/// the names the analysis generates (e.g. "j@loop1"). Unknown variables are
/// created with a configurable kind (or rejected).
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_FORMULAPARSER_H
#define ABDIAG_SMT_FORMULAPARSER_H

#include "smt/Formula.h"

#include <string>
#include <string_view>

namespace abdiag::smt {

/// Result of parsing a formula string.
struct FormulaParseResult {
  const Formula *F = nullptr;
  std::string Error; ///< empty on success

  bool ok() const { return F != nullptr; }
};

/// Options controlling variable resolution.
struct FormulaParseOptions {
  /// Create variables not present in the manager's table (otherwise their
  /// use is an error).
  bool CreateUnknownVars = true;
  /// Kind assigned to newly created variables.
  VarKind NewVarKind = VarKind::Input;
};

/// Parses \p Text into a formula of \p M.
FormulaParseResult parseFormula(FormulaManager &M, std::string_view Text,
                                const FormulaParseOptions &Opts =
                                    FormulaParseOptions());

} // namespace abdiag::smt

#endif // ABDIAG_SMT_FORMULAPARSER_H
