//===- smt/LiaSolver.cpp - Linear integer arithmetic conjunctions ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/LiaSolver.h"

#include <algorithm>
#include <cassert>

using namespace abdiag;
using namespace abdiag::smt;

//===----------------------------------------------------------------------===//
// IncrementalSimplex
//===----------------------------------------------------------------------===//

uint32_t IncrementalSimplex::addVar() {
  uint32_t V = static_cast<uint32_t>(Beta.size());
  Lower.emplace_back();
  Upper.emplace_back();
  Beta.emplace_back(0);
  RowOf.push_back(-1);
  for (std::vector<Rational> &Row : Coef)
    Row.emplace_back(0);
  return V;
}

uint32_t IncrementalSimplex::addRow(
    const std::vector<std::pair<uint32_t, int64_t>> &Terms) {
  assert(TrailLims.empty() && "rows may only be added at level 0");
  uint32_t S = addVar();
  // Express the row over the *current nonbasic* columns by substituting
  // every basic column with its defining row, so the new slack can join
  // the basis directly and the invariant (basic = combination of nonbasic)
  // holds without any pivoting.
  std::vector<Rational> Row(Beta.size(), Rational(0));
  Rational Val(0);
  for (const auto &[C, A] : Terms) {
    Rational RA(A);
    if (RowOf[C] == -1) {
      Row[C] = Row[C] + RA;
    } else {
      const std::vector<Rational> &Def = Coef[RowOf[C]];
      for (uint32_t V = 0; V < Def.size(); ++V)
        if (!Def[V].isZero())
          Row[V] = Row[V] + RA * Def[V];
    }
    Val = Val + RA * Beta[C];
  }
  RowOf[S] = static_cast<int32_t>(BasicVar.size());
  BasicVar.push_back(S);
  Coef.push_back(std::move(Row));
  Beta[S] = Val;
  return S;
}

void IncrementalSimplex::push() { TrailLims.push_back(Trail.size()); }

void IncrementalSimplex::pop() {
  assert(!TrailLims.empty() && "pop without matching push");
  size_t Lim = TrailLims.back();
  TrailLims.pop_back();
  while (Trail.size() > Lim) {
    BoundUndo &U = Trail.back();
    // Restoring only ever *relaxes* a bound (assertions tighten), so the
    // current assignment stays within bounds for every nonbasic column and
    // the warm basis survives the backtrack.
    if (U.IsUpper)
      Upper[U.Col] = std::move(U.Old);
    else
      Lower[U.Col] = std::move(U.Old);
    Trail.pop_back();
  }
}

void IncrementalSimplex::update(uint32_t V, const Rational &To) {
  Rational Delta = To - Beta[V];
  for (size_t R = 0; R < BasicVar.size(); ++R)
    if (!Coef[R][V].isZero())
      Beta[BasicVar[R]] = Beta[BasicVar[R]] + Coef[R][V] * Delta;
  Beta[V] = To;
}

bool IncrementalSimplex::assertUpper(uint32_t V, const Rational &B) {
  if (Upper[V] && *Upper[V] <= B)
    return true; // no tightening
  if (Lower[V] && B < *Lower[V])
    return false; // immediate conflict; caller pops the scope
  if (!TrailLims.empty())
    Trail.push_back({V, /*IsUpper=*/true, Upper[V]});
  Upper[V] = B;
  if (RowOf[V] == -1 && Beta[V] > B)
    update(V, B);
  return true;
}

bool IncrementalSimplex::assertLower(uint32_t V, const Rational &B) {
  if (Lower[V] && *Lower[V] >= B)
    return true;
  if (Upper[V] && B > *Upper[V])
    return false;
  if (!TrailLims.empty())
    Trail.push_back({V, /*IsUpper=*/false, Lower[V]});
  Lower[V] = B;
  if (RowOf[V] == -1 && Beta[V] < B)
    update(V, B);
  return true;
}

bool IncrementalSimplex::propagateBounds(SimplexStats *St) const {
  for (size_t R = 0; R < BasicVar.size(); ++R) {
    uint32_t B = BasicVar[R];
    if (!Upper[B] && !Lower[B])
      continue;
    // Row interval: basic = sum coef * nonbasic, so the row's reachable
    // minimum (maximum) plugs each nonbasic at the bound its coefficient
    // sign selects; a missing bound makes that side unbounded.
    const std::vector<Rational> &Row = Coef[R];
    Rational Min(0), Max(0);
    bool MinOk = true, MaxOk = true;
    for (uint32_t V = 0; V < Row.size() && (MinOk || MaxOk); ++V) {
      const Rational &C = Row[V];
      if (C.isZero() || RowOf[V] != -1)
        continue;
      const std::optional<Rational> &Lo = C.sign() > 0 ? Lower[V] : Upper[V];
      const std::optional<Rational> &Hi = C.sign() > 0 ? Upper[V] : Lower[V];
      if (MinOk) {
        if (Lo)
          Min = Min + C * *Lo;
        else
          MinOk = false;
      }
      if (MaxOk) {
        if (Hi)
          Max = Max + C * *Hi;
        else
          MaxOk = false;
      }
    }
    if ((MinOk && Upper[B] && Min > *Upper[B]) ||
        (MaxOk && Lower[B] && Max < *Lower[B])) {
      if (St)
        ++St->BoundPropagations;
      return true;
    }
  }
  return false;
}

IncrementalSimplex::Status IncrementalSimplex::check(int &MaxPivots,
                                                     SimplexStats *St) {
  if (propagateBounds(St))
    return Status::Infeasible;
  while (true) {
    // Bland: smallest violated basic column (guarantees termination).
    uint32_t Bad = UINT32_MAX;
    bool BelowLower = false;
    for (size_t R = 0; R < BasicVar.size(); ++R) {
      uint32_t B = BasicVar[R];
      if (B >= Bad)
        continue;
      if (Upper[B] && Beta[B] > *Upper[B]) {
        Bad = B;
        BelowLower = false;
      } else if (Lower[B] && Beta[B] < *Lower[B]) {
        Bad = B;
        BelowLower = true;
      }
    }
    if (Bad == UINT32_MAX)
      return Status::Feasible;
    if (--MaxPivots < 0) {
      if (St)
        ++St->PivotLimitHits;
      return Status::PivotLimit;
    }
    if (St)
      ++St->Pivots;
    int32_t R = RowOf[Bad];
    // Smallest suitable nonbasic column to move Beta[Bad] toward the
    // violated bound.
    uint32_t Pivot = UINT32_MAX;
    const std::vector<Rational> &Row = Coef[R];
    for (uint32_t V = 0; V < Row.size(); ++V) {
      if (RowOf[V] != -1 || Row[V].isZero())
        continue;
      int S = Row[V].sign();
      bool Suitable = BelowLower
                          ? ((S > 0 && canIncrease(V)) ||
                             (S < 0 && canDecrease(V)))
                          : ((S > 0 && canDecrease(V)) ||
                             (S < 0 && canIncrease(V)));
      if (Suitable) {
        Pivot = V;
        break;
      }
    }
    if (Pivot == UINT32_MAX)
      return Status::Infeasible; // no way to repair: infeasible
    pivotAndUpdate(Bad, Pivot, BelowLower ? *Lower[Bad] : *Upper[Bad]);
  }
}

void IncrementalSimplex::pivotAndUpdate(uint32_t B, uint32_t NB,
                                        const Rational &Target) {
  int32_t R = RowOf[B];
  Rational A = Coef[R][NB];
  assert(!A.isZero() && "pivot on zero coefficient");
  Rational Theta = (Target - Beta[B]) / A;
  Beta[B] = Target;
  Beta[NB] = Beta[NB] + Theta;
  for (size_t R2 = 0; R2 < BasicVar.size(); ++R2) {
    if (static_cast<int32_t>(R2) == R)
      continue;
    if (!Coef[R2][NB].isZero())
      Beta[BasicVar[R2]] = Beta[BasicVar[R2]] + Coef[R2][NB] * Theta;
  }
  // Pivot: express NB from row R, substitute into other rows.
  // Row R: B = A*NB + rest  =>  NB = (1/A)*B - rest/A.
  std::vector<Rational> NewRow(Beta.size(), Rational(0));
  Rational InvA = Rational(1) / A;
  for (uint32_t V = 0; V < Beta.size(); ++V) {
    if (V == NB)
      continue;
    if (!Coef[R][V].isZero())
      NewRow[V] = -(Coef[R][V] * InvA);
  }
  NewRow[B] = InvA;
  Coef[R] = NewRow;
  RowOf[NB] = R;
  RowOf[B] = -1;
  BasicVar[R] = NB;
  for (size_t R2 = 0; R2 < BasicVar.size(); ++R2) {
    if (static_cast<int32_t>(R2) == R)
      continue;
    Rational C = Coef[R2][NB];
    if (C.isZero())
      continue;
    Coef[R2][NB] = Rational(0);
    for (uint32_t V = 0; V < Beta.size(); ++V)
      if (!NewRow[V].isZero())
        Coef[R2][V] = Coef[R2][V] + C * NewRow[V];
  }
}

//===----------------------------------------------------------------------===//
// Integrality: branch-and-bound over the incremental tableau
//===----------------------------------------------------------------------===//

namespace {

/// Branch-and-bound driver. Branches are bound assertions on integer
/// columns, pushed and popped on the shared tableau -- no row is ever
/// added or rebuilt during the search.
struct BranchAndBound {
  IncrementalSimplex &Sx;
  const std::vector<uint32_t> &IntCols;
  const std::vector<LiaColRow> &Rows;
  SimplexStats *St;
  int NodeBudget;
  int PivotBudget;
  std::vector<int64_t> *Values;

  /// True iff rounding the current rational point down yields an integer
  /// model of every row (then fills Values).
  bool roundedModel() {
    std::vector<int64_t> Rounded(IntCols.size());
    for (size_t I = 0; I < IntCols.size(); ++I)
      Rounded[I] = Sx.value(IntCols[I]).floor();
    // Row terms reference integer columns only; map column -> rounded.
    std::unordered_map<uint32_t, int64_t> ByCol;
    ByCol.reserve(IntCols.size());
    for (size_t I = 0; I < IntCols.size(); ++I)
      ByCol.emplace(IntCols[I], Rounded[I]);
    for (const LiaColRow &Row : Rows) {
      int64_t Val = 0;
      for (const auto &[C, A] : Row.Terms)
        Val = checkedAdd(Val, checkedMul(A, ByCol.at(C)));
      if (Val > Row.Bound)
        return false;
    }
    if (Values)
      *Values = std::move(Rounded);
    return true;
  }

  void fillFromFloor() {
    if (!Values)
      return;
    Values->resize(IntCols.size());
    for (size_t I = 0; I < IntCols.size(); ++I)
      (*Values)[I] = Sx.value(IntCols[I]).floor();
  }

  LiaStatus run(int Depth) {
    if (--NodeBudget < 0 || Depth < 0)
      return LiaStatus::ResourceLimit;
    switch (Sx.check(PivotBudget, St)) {
    case IncrementalSimplex::Status::PivotLimit:
      return LiaStatus::ResourceLimit;
    case IncrementalSimplex::Status::Infeasible:
      return LiaStatus::Unsat;
    case IncrementalSimplex::Status::Feasible:
      break;
    }
    // Fast path: rounding the rational point often yields an integer model.
    if (roundedModel())
      return LiaStatus::Sat;
    uint32_t Frac = UINT32_MAX;
    for (uint32_t C : IntCols)
      if (!Sx.value(C).isInteger()) {
        Frac = C;
        break;
      }
    if (Frac == UINT32_MAX) {
      fillFromFloor();
      return LiaStatus::Sat;
    }
    int64_t Floor = Sx.value(Frac).floor();
    // Branch x <= floor(v): push a bound, recurse, pop.
    Sx.push();
    LiaStatus Left = Sx.assertUpper(Frac, Rational(Floor)) ? run(Depth - 1)
                                                           : LiaStatus::Unsat;
    Sx.pop();
    if (Left != LiaStatus::Unsat)
      return Left;
    // Branch x >= floor(v) + 1.
    Sx.push();
    LiaStatus Right =
        Sx.assertLower(Frac, Rational(checkedAdd(Floor, 1)))
            ? run(Depth - 1)
            : LiaStatus::Unsat;
    Sx.pop();
    return Right;
  }
};

/// Canonicalizes rows into dense (var, coeff) form with tightened integer
/// bounds. Returns false if a row is trivially infeasible.
struct Problem {
  std::vector<VarId> Vars; // dense index -> VarId
  std::unordered_map<VarId, uint32_t> Index;
  std::vector<LiaColRow> Rows;

  bool addRow(const LinearExpr &E) {
    if (E.isConstant())
      return E.constant() <= 0;
    int64_t G = E.coeffGcd();
    LiaColRow Row;
    for (const auto &[V, C] : E.terms()) {
      auto It = Index.find(V);
      uint32_t Idx;
      if (It == Index.end()) {
        Idx = static_cast<uint32_t>(Vars.size());
        Index.emplace(V, Idx);
        Vars.push_back(V);
      } else {
        Idx = It->second;
      }
      Row.Terms.emplace_back(Idx, C / G);
    }
    // sum a_i x_i <= -c tightens to sum (a_i/g) x_i <= floor(-c/g).
    Row.Bound = floorDiv(checkedNeg(E.constant()), G);
    Rows.push_back(std::move(Row));
    return true;
  }
};

} // namespace

LiaStatus abdiag::smt::solveIntegerOnTableau(
    IncrementalSimplex &Sx, const std::vector<uint32_t> &IntCols,
    const std::vector<LiaColRow> &Rows, const LiaConfig &Cfg,
    std::vector<int64_t> *Values) {
  BranchAndBound BB{Sx,           IntCols,       Rows, Cfg.Stats,
                    Cfg.MaxBranchNodes, Cfg.MaxPivots, Values};
  return BB.run(Cfg.MaxDepth);
}

LiaStatus abdiag::smt::solveLiaConjunction(
    const std::vector<LinearExpr> &Rows,
    std::unordered_map<VarId, int64_t> *Model, const LiaConfig &Config) {
  Problem P;
  for (const LinearExpr &E : Rows)
    if (!P.addRow(E))
      return LiaStatus::Unsat;

  IncrementalSimplex Sx;
  std::vector<uint32_t> IntCols(P.Vars.size());
  for (uint32_t V = 0; V < P.Vars.size(); ++V)
    IntCols[V] = Sx.addVar();
  for (const LiaColRow &Row : P.Rows) {
    uint32_t Slack = Sx.addRow(Row.Terms);
    if (!Sx.assertUpper(Slack, Rational(Row.Bound)))
      return LiaStatus::Unsat;
  }

  std::vector<int64_t> Values;
  LiaStatus R = solveIntegerOnTableau(Sx, IntCols, P.Rows, Config,
                                      Model ? &Values : nullptr);
  if (R == LiaStatus::Sat && Model) {
    for (uint32_t V = 0; V < P.Vars.size(); ++V)
      (*Model)[P.Vars[V]] = Values[V];
    // Variables mentioned nowhere keep value 0 (they are unconstrained);
    // ensure every requested variable has an entry.
    for (const LinearExpr &E : Rows)
      E.forEachVar([&](VarId V) {
        if (!Model->count(V))
          (*Model)[V] = 0;
      });
  }
  return R;
}
