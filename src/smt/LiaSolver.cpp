//===- smt/LiaSolver.cpp - Linear integer arithmetic conjunctions ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/LiaSolver.h"

#include "support/Rational.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <cstdio>
#include <cstdlib>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// General simplex for conjunctions of `sum a_i x_i <= b` over the
/// rationals. Every constraint becomes a slack variable with an upper bound;
/// structural variables are unbounded. Bland's rule guarantees termination.
class Simplex {
  // Internal variable indices: [0, NumStruct) structural, then slacks.
  size_t NumVars = 0;
  std::vector<std::optional<Rational>> Upper; // per internal var
  std::vector<Rational> Beta;                 // current assignment
  std::vector<int32_t> RowOf;                 // var -> row index or -1
  // Row r: BasicVar[r] = sum Coef[r][v] * v over nonbasic vars v.
  std::vector<uint32_t> BasicVar;
  std::vector<std::vector<Rational>> Coef; // dense over all internal vars

public:
  /// \p RowExprs are the linear parts (over dense structural indices) and
  /// \p Bounds the corresponding upper bounds: row_i <= Bounds[i].
  Simplex(size_t NumStruct,
          const std::vector<std::vector<std::pair<uint32_t, int64_t>>> &RowExprs,
          const std::vector<int64_t> &Bounds) {
    NumVars = NumStruct + RowExprs.size();
    Upper.resize(NumVars);
    Beta.assign(NumVars, Rational(0));
    RowOf.assign(NumVars, -1);
    for (size_t R = 0; R < RowExprs.size(); ++R) {
      uint32_t Slack = static_cast<uint32_t>(NumStruct + R);
      Upper[Slack] = Rational(Bounds[R]);
      RowOf[Slack] = static_cast<int32_t>(BasicVar.size());
      BasicVar.push_back(Slack);
      std::vector<Rational> Row(NumVars, Rational(0));
      for (const auto &[V, C] : RowExprs[R])
        Row[V] = Rational(C);
      Coef.push_back(std::move(Row));
    }
  }

  /// Runs the feasibility check; returns true iff the relaxation is SAT.
  /// Sets \p PivotLimitHit if the pivot cap was reached (treated as a
  /// resource limit by the caller rather than an answer).
  bool check(bool &PivotLimitHit) {
    int Pivots = 0;
    while (true) {
      if (++Pivots > 20000) {
        PivotLimitHit = true;
        return false;
      }
      // Bland: smallest violated basic variable.
      uint32_t Bad = UINT32_MAX;
      for (size_t R = 0; R < BasicVar.size(); ++R) {
        uint32_t B = BasicVar[R];
        if (Upper[B] && Beta[B] > *Upper[B] && B < Bad)
          Bad = B;
      }
      if (Bad == UINT32_MAX)
        return true;
      int32_t R = RowOf[Bad];
      // Find the smallest suitable nonbasic variable to decrease Beta[Bad].
      uint32_t Pivot = UINT32_MAX;
      for (uint32_t V = 0; V < NumVars; ++V) {
        if (RowOf[V] != -1 || Coef[R][V].isZero())
          continue;
        bool CanDecrease = true; // no lower bounds in this tableau
        bool CanIncrease = !Upper[V] || Beta[V] < *Upper[V];
        int S = Coef[R][V].sign();
        if ((S > 0 && CanDecrease) || (S < 0 && CanIncrease)) {
          Pivot = V;
          break;
        }
      }
      if (Pivot == UINT32_MAX)
        return false; // no way to repair: infeasible
      pivotAndUpdate(Bad, Pivot, *Upper[Bad]);
    }
  }

  Rational value(uint32_t V) const { return Beta[V]; }

private:
  /// Makes basic \p B take value \p Target by moving nonbasic \p NB, then
  /// swaps their roles (textbook pivotAndUpdate).
  void pivotAndUpdate(uint32_t B, uint32_t NB, Rational Target) {
    int32_t R = RowOf[B];
    Rational A = Coef[R][NB];
    assert(!A.isZero() && "pivot on zero coefficient");
    Rational Theta = (Target - Beta[B]) / A;
    Beta[B] = Target;
    Beta[NB] = Beta[NB] + Theta;
    for (size_t R2 = 0; R2 < BasicVar.size(); ++R2) {
      if (static_cast<int32_t>(R2) == R)
        continue;
      if (!Coef[R2][NB].isZero())
        Beta[BasicVar[R2]] = Beta[BasicVar[R2]] + Coef[R2][NB] * Theta;
    }
    // Pivot: express NB from row R, substitute into other rows.
    // Row R: B = A*NB + rest  =>  NB = (1/A)*B - rest/A.
    std::vector<Rational> NewRow(NumVars, Rational(0));
    Rational InvA = Rational(1) / A;
    for (uint32_t V = 0; V < NumVars; ++V) {
      if (V == NB)
        continue;
      if (!Coef[R][V].isZero())
        NewRow[V] = -(Coef[R][V] * InvA);
    }
    NewRow[B] = InvA;
    Coef[R] = NewRow;
    RowOf[NB] = R;
    RowOf[B] = -1;
    BasicVar[R] = NB;
    for (size_t R2 = 0; R2 < BasicVar.size(); ++R2) {
      if (static_cast<int32_t>(R2) == R)
        continue;
      Rational C = Coef[R2][NB];
      if (C.isZero())
        continue;
      Coef[R2][NB] = Rational(0);
      for (uint32_t V = 0; V < NumVars; ++V)
        if (!NewRow[V].isZero())
          Coef[R2][V] = Coef[R2][V] + C * NewRow[V];
    }
  }
};

/// Canonicalizes rows into dense (var, coeff) form with tightened integer
/// bounds. Returns false if a row is trivially infeasible.
struct Problem {
  std::vector<VarId> Vars; // dense index -> VarId
  std::unordered_map<VarId, uint32_t> Index;
  std::vector<std::vector<std::pair<uint32_t, int64_t>>> RowExprs;
  std::vector<int64_t> Bounds;

  bool addRow(const LinearExpr &E) {
    if (E.isConstant())
      return E.constant() <= 0;
    int64_t G = E.coeffGcd();
    std::vector<std::pair<uint32_t, int64_t>> Terms;
    for (const auto &[V, C] : E.terms()) {
      auto It = Index.find(V);
      uint32_t Idx;
      if (It == Index.end()) {
        Idx = static_cast<uint32_t>(Vars.size());
        Index.emplace(V, Idx);
        Vars.push_back(V);
      } else {
        Idx = It->second;
      }
      Terms.emplace_back(Idx, C / G);
    }
    // sum a_i x_i <= -c tightens to sum (a_i/g) x_i <= floor(-c/g).
    Bounds.push_back(floorDiv(checkedNeg(E.constant()), G));
    RowExprs.push_back(std::move(Terms));
    return true;
  }
};

LiaStatus solveRec(Problem &P, std::unordered_map<VarId, int64_t> *Model,
                   int &Budget, int Depth) {
  if (--Budget < 0 || Depth < 0)
    return LiaStatus::ResourceLimit;
  Simplex S(P.Vars.size(), P.RowExprs, P.Bounds);
  bool PivotLimitHit = false;
  if (!S.check(PivotLimitHit))
    return PivotLimitHit ? LiaStatus::ResourceLimit : LiaStatus::Unsat;
  // Fast path: rounding the rational point often yields an integer model.
  {
    std::vector<int64_t> Rounded(P.Vars.size());
    for (uint32_t V = 0; V < P.Vars.size(); ++V)
      Rounded[V] = S.value(V).floor();
    bool AllRowsOk = true;
    for (size_t R = 0; R < P.RowExprs.size() && AllRowsOk; ++R) {
      int64_t Val = 0;
      for (const auto &[V, C] : P.RowExprs[R])
        Val = checkedAdd(Val, checkedMul(C, Rounded[V]));
      AllRowsOk = Val <= P.Bounds[R];
    }
    if (AllRowsOk) {
      if (Model)
        for (uint32_t V = 0; V < P.Vars.size(); ++V)
          (*Model)[P.Vars[V]] = Rounded[V];
      return LiaStatus::Sat;
    }
  }
  // Find a fractional structural variable.
  uint32_t Frac = UINT32_MAX;
  for (uint32_t V = 0; V < P.Vars.size(); ++V)
    if (!S.value(V).isInteger()) {
      Frac = V;
      break;
    }
  if (Frac == UINT32_MAX) {
    if (Model)
      for (uint32_t V = 0; V < P.Vars.size(); ++V)
        (*Model)[P.Vars[V]] = S.value(V).floor();
    return LiaStatus::Sat;
  }
  int64_t Floor = S.value(Frac).floor();
  // Branch x <= floor(v): append a row, recurse, undo.
  P.RowExprs.push_back({{Frac, 1}});
  P.Bounds.push_back(Floor);
  LiaStatus Left = solveRec(P, Model, Budget, Depth - 1);
  P.RowExprs.pop_back();
  P.Bounds.pop_back();
  if (Left != LiaStatus::Unsat)
    return Left;
  // Branch x >= floor(v)+1, i.e. -x <= -(floor+1).
  P.RowExprs.push_back({{Frac, -1}});
  P.Bounds.push_back(checkedNeg(checkedAdd(Floor, 1)));
  LiaStatus Right = solveRec(P, Model, Budget, Depth - 1);
  P.RowExprs.pop_back();
  P.Bounds.pop_back();
  return Right;
}

} // namespace

LiaStatus abdiag::smt::solveLiaConjunction(
    const std::vector<LinearExpr> &Rows,
    std::unordered_map<VarId, int64_t> *Model, const LiaConfig &Config) {
  Problem P;
  for (const LinearExpr &E : Rows)
    if (!P.addRow(E))
      return LiaStatus::Unsat;
  int Budget = Config.MaxBranchNodes;
  LiaStatus R = solveRec(P, Model, Budget, Config.MaxDepth);
  if (R == LiaStatus::Sat && Model) {
    // Variables mentioned nowhere keep value 0 (they are unconstrained);
    // ensure every requested variable has an entry.
    for (const LinearExpr &E : Rows)
      E.forEachVar([&](VarId V) {
        if (!Model->count(V))
          (*Model)[V] = 0;
      });
  }
  return R;
}
