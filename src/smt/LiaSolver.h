//===- smt/LiaSolver.h - Linear integer arithmetic conjunctions -*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides conjunctions of linear integer constraints `E <= 0`. The solver
/// combines:
///
///  1. GCD/bound tightening per row (sum a_i x_i <= b tightens to
///     sum (a_i/g) x_i <= floor(b/g)), which also catches classic
///     divisibility infeasibilities such as 2x - 2y = 1;
///  2. a Dutertre–de Moura style general simplex over exact rationals for
///     the relaxation, with Bland's rule for termination; and
///  3. branch-and-bound on fractional structural variables for integrality.
///
/// Branch-and-bound alone is not complete for LIA, so the search carries a
/// node budget; when exhausted the caller (smt::Solver) falls back to the
/// complete Cooper-based model finder. In practice the formulas produced by
/// the analyses in this project are decided well within the budget.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_LIASOLVER_H
#define ABDIAG_SMT_LIASOLVER_H

#include "smt/LinearExpr.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace abdiag::smt {

/// Outcome of an LIA conjunction query.
enum class LiaStatus : uint8_t { Sat, Unsat, ResourceLimit };

/// Configuration knobs for the branch-and-bound search.
struct LiaConfig {
  /// Total branch-and-bound nodes across the whole query. Kept small:
  /// feasibility-only branch-and-bound can drift on unbounded systems, and
  /// the caller has a complete (Cooper) fallback.
  int MaxBranchNodes = 600;
  /// Maximum branching depth (rows added on one DFS path).
  int MaxDepth = 24;
};

/// Decides the conjunction of `Rows[i] <= 0` over the integers.
/// On Sat, \p Model (if non-null) receives integer values for every variable
/// occurring in \p Rows.
LiaStatus solveLiaConjunction(const std::vector<LinearExpr> &Rows,
                              std::unordered_map<VarId, int64_t> *Model,
                              const LiaConfig &Config = LiaConfig());

} // namespace abdiag::smt

#endif // ABDIAG_SMT_LIASOLVER_H
