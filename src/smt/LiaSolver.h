//===- smt/LiaSolver.h - Linear integer arithmetic conjunctions -*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides conjunctions of linear integer constraints `E <= 0`. The solver
/// combines:
///
///  1. GCD/bound tightening per row (sum a_i x_i <= b tightens to
///     sum (a_i/g) x_i <= floor(b/g)), which also catches classic
///     divisibility infeasibilities such as 2x - 2y = 1;
///  2. a Dutertre–de Moura style incremental general simplex over exact
///     rationals for the relaxation (IncrementalSimplex): the tableau
///     persists across checks, bounds are asserted on a backtrackable
///     stack (push/pop), row-interval bound propagation catches many
///     conflicts without pivoting, and Bland's rule guarantees
///     termination; and
///  3. branch-and-bound on fractional structural variables for
///     integrality. Branches are *variable bounds* pushed and popped on
///     the same tableau, never row rebuilds, so each node costs a handful
///     of repair pivots instead of a from-scratch re-solve.
///
/// Branch-and-bound alone is not complete for LIA, so the search carries a
/// node budget; when exhausted the caller (smt::Solver) falls back to the
/// complete Cooper-based model finder. In practice the formulas produced by
/// the analyses in this project are decided well within the budget.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_LIASOLVER_H
#define ABDIAG_SMT_LIASOLVER_H

#include "smt/LinearExpr.h"
#include "support/Rational.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace abdiag::smt {

/// Outcome of an LIA conjunction query.
enum class LiaStatus : uint8_t { Sat, Unsat, ResourceLimit };

/// Counters produced by the simplex layer; merged into SolverStats by the
/// SMT solver so the hot path stays observable.
struct SimplexStats {
  uint64_t Pivots = 0;            ///< pivotAndUpdate operations performed
  uint64_t PivotLimitHits = 0;    ///< checks aborted by the pivot budget
  uint64_t BoundPropagations = 0; ///< conflicts caught by row-interval propagation
};

/// Configuration knobs for the branch-and-bound search.
struct LiaConfig {
  /// Total branch-and-bound nodes across the whole query. Kept small:
  /// feasibility-only branch-and-bound can drift on unbounded systems, and
  /// the caller has a complete (Cooper) fallback.
  int MaxBranchNodes = 600;
  /// Maximum branching depth (rows added on one DFS path).
  int MaxDepth = 24;
  /// Total simplex pivots across the whole query. Exhaustion surfaces as
  /// LiaStatus::ResourceLimit (and a SimplexStats::PivotLimitHits tick)
  /// instead of silently degrading; the budget is caller-tunable through
  /// abdiag::Options::SimplexMaxPivots.
  int MaxPivots = 20000;
  /// Optional counter sink (pivots, limit hits, propagation conflicts).
  SimplexStats *Stats = nullptr;
};

/// A Dutertre–de Moura style general simplex over exact rationals with
/// incremental bound assertion and backtracking.
///
/// Columns are added with addVar() (structural) and addRow() (each row
/// `sum a_i x_i` defines a slack column constrained through its bounds).
/// Bounds are asserted against the current backtracking level; push()/pop()
/// bracket a scope, and pop() restores every bound asserted inside it.
/// The tableau (basis and current assignment) deliberately survives pop():
/// popping only relaxes bounds, so the assignment stays feasible for every
/// nonbasic column and the next check() starts from a warm basis. This is
/// what makes branch-and-bound nodes and successive theory checks cheap --
/// re-pivoting from scratch is replaced by a few repair pivots.
class IncrementalSimplex {
public:
  enum class Status : uint8_t { Feasible, Infeasible, PivotLimit };

  /// Adds a structural column; returns its index.
  uint32_t addVar();

  /// Adds a row `sum Terms.second * var(Terms.first)` as a new slack
  /// column (substituting current basic columns), makes it basic, and
  /// returns its index. Rows may only be added at backtracking level 0.
  uint32_t addRow(const std::vector<std::pair<uint32_t, int64_t>> &Terms);

  size_t numCols() const { return Beta.size(); }

  /// Opens a backtracking scope.
  void push();
  /// Closes the innermost scope, restoring the bounds it tightened.
  void pop();
  size_t numLevels() const { return TrailLims.size(); }

  /// Asserts V <= B / V >= B against the current scope. Returns false on
  /// an immediate bound conflict (lower > upper); the caller is expected
  /// to pop the scope. A no-op when the existing bound is at least as
  /// tight.
  bool assertUpper(uint32_t V, const Rational &B);
  bool assertLower(uint32_t V, const Rational &B);

  /// Repairs the assignment by pivoting until every column is within its
  /// bounds (Feasible), a column provably cannot be repaired (Infeasible),
  /// or the remaining pivot budget \p MaxPivots is exhausted (PivotLimit;
  /// \p MaxPivots is decremented in place by the pivots spent). Starts
  /// with a row-interval propagation pass that reports many infeasible
  /// systems without pivoting at all.
  Status check(int &MaxPivots, SimplexStats *St);

  /// Current value of column \p V (meaningful after Feasible).
  const Rational &value(uint32_t V) const { return Beta[V]; }

private:
  std::vector<std::optional<Rational>> Lower, Upper; // per column
  std::vector<Rational> Beta;                        // current assignment
  std::vector<int32_t> RowOf;                        // col -> row or -1
  // Row r: BasicVar[r] = sum Coef[r][v] * v over nonbasic columns v.
  std::vector<uint32_t> BasicVar;
  std::vector<std::vector<Rational>> Coef; // dense over all columns

  struct BoundUndo {
    uint32_t Col;
    bool IsUpper;
    std::optional<Rational> Old;
  };
  std::vector<BoundUndo> Trail;
  std::vector<size_t> TrailLims;

  bool canDecrease(uint32_t V) const {
    return !Lower[V] || Beta[V] > *Lower[V];
  }
  bool canIncrease(uint32_t V) const {
    return !Upper[V] || Beta[V] < *Upper[V];
  }
  /// Sets nonbasic \p V to \p To, updating every dependent basic value.
  void update(uint32_t V, const Rational &To);
  /// Makes basic \p B take value \p Target by moving nonbasic \p NB, then
  /// swaps their roles (textbook pivotAndUpdate).
  void pivotAndUpdate(uint32_t B, uint32_t NB, const Rational &Target);
  /// Row-interval propagation; true iff a row proves infeasibility.
  bool propagateBounds(SimplexStats *St) const;
};

/// An active row for the integrality search: linear terms over tableau
/// columns with the (GCD-tightened) upper bound asserted for this check.
struct LiaColRow {
  std::vector<std::pair<uint32_t, int64_t>> Terms;
  int64_t Bound;
};

/// Branch-and-bound for integrality over an already-bounded tableau: the
/// relaxation bounds for \p Rows must have been asserted on \p Sx by the
/// caller. Branches push/pop bounds on the columns in \p IntCols; \p Rows
/// is consulted by the integer-rounding fast path (a rounded rational
/// point that satisfies every row is a model regardless of the search
/// bounds). On Sat fills \p Values (parallel to IntCols). The tableau is
/// returned at the same backtracking depth it was given.
LiaStatus solveIntegerOnTableau(IncrementalSimplex &Sx,
                                const std::vector<uint32_t> &IntCols,
                                const std::vector<LiaColRow> &Rows,
                                const LiaConfig &Cfg,
                                std::vector<int64_t> *Values);

/// Decides the conjunction of `Rows[i] <= 0` over the integers.
/// On Sat, \p Model (if non-null) receives integer values for every variable
/// occurring in \p Rows.
LiaStatus solveLiaConjunction(const std::vector<LinearExpr> &Rows,
                              std::unordered_map<VarId, int64_t> *Model,
                              const LiaConfig &Config = LiaConfig());

} // namespace abdiag::smt

#endif // ABDIAG_SMT_LIASOLVER_H
