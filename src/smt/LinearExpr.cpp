//===- smt/LinearExpr.cpp - Linear integer expressions --------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/LinearExpr.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace abdiag;
using namespace abdiag::smt;

LinearExpr::LinearExpr(LinearExpr &&O) noexcept
    : HeapTerms(std::move(O.HeapTerms)), Size(O.Size), HeapCap(O.HeapCap),
      Const(O.Const), HashCache(O.HashCache) {
  if (!HeapCap)
    std::copy(O.InlineTerms, O.InlineTerms + Size, InlineTerms);
  O.Size = 0;
  O.HeapCap = 0;
  O.Const = 0;
  O.HashCache = NoHash;
}

LinearExpr &LinearExpr::operator=(LinearExpr &&O) noexcept {
  if (this == &O)
    return *this;
  HeapTerms = std::move(O.HeapTerms);
  Size = O.Size;
  HeapCap = O.HeapCap;
  Const = O.Const;
  HashCache = O.HashCache;
  if (!HeapCap)
    std::copy(O.InlineTerms, O.InlineTerms + Size, InlineTerms);
  O.Size = 0;
  O.HeapCap = 0;
  O.Const = 0;
  O.HashCache = NoHash;
  return *this;
}

LinearExpr::LinearExpr(const LinearExpr &O)
    : Size(O.Size), Const(O.Const), HashCache(O.HashCache) {
  if (O.Size > InlineCap) {
    HeapCap = O.Size;
    HeapTerms = std::make_unique<Term[]>(HeapCap);
    std::copy(O.data(), O.data() + O.Size, HeapTerms.get());
  } else {
    std::copy(O.data(), O.data() + O.Size, InlineTerms);
  }
}

LinearExpr &LinearExpr::operator=(const LinearExpr &O) {
  if (this == &O)
    return *this;
  LinearExpr Tmp(O);
  *this = std::move(Tmp);
  return *this;
}

void LinearExpr::append(VarId V, int64_t Coeff) {
  if (Size == (HeapCap ? HeapCap : InlineCap)) {
    uint32_t NewCap = Size * 2;
    auto NewTerms = std::make_unique<Term[]>(NewCap);
    std::copy(data(), data() + Size, NewTerms.get());
    HeapTerms = std::move(NewTerms);
    HeapCap = NewCap;
  }
  data()[Size++] = {V, Coeff};
}

LinearExpr LinearExpr::constant(int64_t C) {
  LinearExpr E;
  E.Const = C;
  return E;
}

LinearExpr LinearExpr::variable(VarId V, int64_t Coeff) {
  LinearExpr E;
  if (Coeff != 0)
    E.append(V, Coeff);
  return E;
}

int64_t LinearExpr::coeff(VarId V) const {
  const Term *B = data(), *E = B + Size;
  auto It = std::lower_bound(
      B, E, V, [](const Term &T, VarId Id) { return T.first < Id; });
  if (It != E && It->first == V)
    return It->second;
  return 0;
}

LinearExpr LinearExpr::add(const LinearExpr &O) const {
  LinearExpr R;
  R.Const = checkedAdd(Const, O.Const);
  const Term *A = data(), *AEnd = A + Size;
  const Term *B = O.data(), *BEnd = B + O.Size;
  while (A != AEnd || B != BEnd) {
    if (B == BEnd || (A != AEnd && A->first < B->first)) {
      R.append(A->first, A->second);
      ++A;
    } else if (A == AEnd || B->first < A->first) {
      R.append(B->first, B->second);
      ++B;
    } else {
      int64_t C = checkedAdd(A->second, B->second);
      if (C != 0)
        R.append(A->first, C);
      ++A;
      ++B;
    }
  }
  return R;
}

LinearExpr LinearExpr::sub(const LinearExpr &O) const {
  return add(O.negated());
}

LinearExpr LinearExpr::scaled(int64_t K) const {
  LinearExpr R;
  if (K == 0)
    return R;
  R.Const = checkedMul(Const, K);
  for (const Term &T : terms())
    R.append(T.first, checkedMul(T.second, K));
  return R;
}

LinearExpr LinearExpr::addConst(int64_t K) const {
  LinearExpr R = *this;
  R.Const = checkedAdd(R.Const, K);
  R.HashCache = NoHash;
  return R;
}

LinearExpr LinearExpr::substituted(VarId V, const LinearExpr &Repl) const {
  int64_t C = coeff(V);
  if (C == 0)
    return *this;
  LinearExpr WithoutV;
  WithoutV.Const = Const;
  for (const Term &T : terms())
    if (T.first != V)
      WithoutV.append(T.first, T.second);
  return WithoutV.add(Repl.scaled(C));
}

int64_t LinearExpr::coeffGcd() const {
  int64_t G = 0;
  for (const Term &T : terms())
    G = gcd64(G, T.second);
  return G;
}

int64_t LinearExpr::evaluate(const std::function<int64_t(VarId)> &Value) const {
  int64_t R = Const;
  for (const Term &T : terms())
    R = checkedAdd(R, checkedMul(T.second, Value(T.first)));
  return R;
}

bool LinearExpr::operator==(const LinearExpr &O) const {
  if (Const != O.Const || Size != O.Size)
    return false;
  if (HashCache != NoHash && O.HashCache != NoHash && HashCache != O.HashCache)
    return false;
  return std::equal(data(), data() + Size, O.data());
}

bool LinearExpr::operator<(const LinearExpr &O) const {
  if (Const != O.Const)
    return Const < O.Const;
  return std::lexicographical_compare(data(), data() + Size, O.data(),
                                      O.data() + O.Size);
}

size_t LinearExpr::hash() const {
  if (HashCache != NoHash)
    return HashCache;
  size_t H = std::hash<int64_t>()(Const);
  for (const Term &T : terms()) {
    hashCombine(H, std::hash<uint32_t>()(T.first));
    hashCombine(H, std::hash<int64_t>()(T.second));
  }
  if (H == NoHash)
    H ^= 1; // keep the sentinel value unreachable
  HashCache = H;
  return H;
}

std::string LinearExpr::str(const VarTable &VT) const {
  if (Size == 0)
    return std::to_string(Const);
  std::string Out;
  bool First = true;
  for (const Term &T : terms()) {
    int64_t C = T.second;
    if (First) {
      if (C == -1)
        Out += "-";
      else if (C != 1)
        Out += std::to_string(C) + "*";
    } else {
      Out += C < 0 ? " - " : " + ";
      int64_t A = C < 0 ? -C : C;
      if (A != 1)
        Out += std::to_string(A) + "*";
    }
    Out += VT.name(T.first);
    First = false;
  }
  if (Const > 0)
    Out += " + " + std::to_string(Const);
  else if (Const < 0)
    Out += " - " + std::to_string(-Const);
  return Out;
}
