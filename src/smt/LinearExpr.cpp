//===- smt/LinearExpr.cpp - Linear integer expressions --------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/LinearExpr.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace abdiag;
using namespace abdiag::smt;

LinearExpr LinearExpr::constant(int64_t C) {
  LinearExpr E;
  E.Const = C;
  return E;
}

LinearExpr LinearExpr::variable(VarId V, int64_t Coeff) {
  LinearExpr E;
  if (Coeff != 0)
    E.Terms.emplace_back(V, Coeff);
  return E;
}

int64_t LinearExpr::coeff(VarId V) const {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), V,
      [](const std::pair<VarId, int64_t> &T, VarId Id) { return T.first < Id; });
  if (It != Terms.end() && It->first == V)
    return It->second;
  return 0;
}

LinearExpr LinearExpr::add(const LinearExpr &O) const {
  LinearExpr R;
  R.Const = checkedAdd(Const, O.Const);
  R.Terms.reserve(Terms.size() + O.Terms.size());
  size_t I = 0, J = 0;
  while (I < Terms.size() || J < O.Terms.size()) {
    if (J == O.Terms.size() ||
        (I < Terms.size() && Terms[I].first < O.Terms[J].first)) {
      R.Terms.push_back(Terms[I++]);
    } else if (I == Terms.size() || O.Terms[J].first < Terms[I].first) {
      R.Terms.push_back(O.Terms[J++]);
    } else {
      int64_t C = checkedAdd(Terms[I].second, O.Terms[J].second);
      if (C != 0)
        R.Terms.emplace_back(Terms[I].first, C);
      ++I;
      ++J;
    }
  }
  return R;
}

LinearExpr LinearExpr::sub(const LinearExpr &O) const {
  return add(O.negated());
}

LinearExpr LinearExpr::scaled(int64_t K) const {
  LinearExpr R;
  if (K == 0)
    return R;
  R.Const = checkedMul(Const, K);
  R.Terms.reserve(Terms.size());
  for (const auto &T : Terms)
    R.Terms.emplace_back(T.first, checkedMul(T.second, K));
  return R;
}

LinearExpr LinearExpr::addConst(int64_t K) const {
  LinearExpr R = *this;
  R.Const = checkedAdd(R.Const, K);
  return R;
}

LinearExpr LinearExpr::substituted(VarId V, const LinearExpr &Repl) const {
  int64_t C = coeff(V);
  if (C == 0)
    return *this;
  LinearExpr WithoutV;
  WithoutV.Const = Const;
  for (const auto &T : Terms)
    if (T.first != V)
      WithoutV.Terms.push_back(T);
  return WithoutV.add(Repl.scaled(C));
}

int64_t LinearExpr::coeffGcd() const {
  int64_t G = 0;
  for (const auto &T : Terms)
    G = gcd64(G, T.second);
  return G;
}

int64_t LinearExpr::evaluate(const std::function<int64_t(VarId)> &Value) const {
  int64_t R = Const;
  for (const auto &T : Terms)
    R = checkedAdd(R, checkedMul(T.second, Value(T.first)));
  return R;
}

bool LinearExpr::operator<(const LinearExpr &O) const {
  if (Const != O.Const)
    return Const < O.Const;
  return Terms < O.Terms;
}

size_t LinearExpr::hash() const {
  size_t H = std::hash<int64_t>()(Const);
  for (const auto &T : Terms) {
    hashCombine(H, std::hash<uint32_t>()(T.first));
    hashCombine(H, std::hash<int64_t>()(T.second));
  }
  return H;
}

std::string LinearExpr::str(const VarTable &VT) const {
  if (Terms.empty())
    return std::to_string(Const);
  std::string Out;
  bool First = true;
  for (const auto &T : Terms) {
    int64_t C = T.second;
    if (First) {
      if (C == -1)
        Out += "-";
      else if (C != 1)
        Out += std::to_string(C) + "*";
    } else {
      Out += C < 0 ? " - " : " + ";
      int64_t A = C < 0 ? -C : C;
      if (A != 1)
        Out += std::to_string(A) + "*";
    }
    Out += VT.name(T.first);
    First = false;
  }
  if (Const > 0)
    Out += " + " + std::to_string(Const);
  else if (Const < 0)
    Out += " - " + std::to_string(-Const);
  return Out;
}
