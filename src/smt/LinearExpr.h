//===- smt/LinearExpr.h - Linear integer expressions ------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical linear expressions `c0 + c1*x1 + ... + cn*xn` over int64
/// coefficients. Terms are kept sorted by variable id with no zero
/// coefficients, so structural equality is semantic equality. These are the
/// symbolic expressions π of Section 3 restricted to their canonical form,
/// and the left-hand sides of all atoms in the SMT layer.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_LINEAREXPR_H
#define ABDIAG_SMT_LINEAREXPR_H

#include "smt/Var.h"
#include "support/CheckedArith.h"

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace abdiag::smt {

/// Immutable-by-convention canonical linear expression.
class LinearExpr {
  /// (variable, coefficient) pairs, sorted by VarId, coefficients non-zero.
  std::vector<std::pair<VarId, int64_t>> Terms;
  int64_t Const = 0;

public:
  LinearExpr() = default;

  /// The constant expression \p C.
  static LinearExpr constant(int64_t C);
  /// The expression Coeff * V.
  static LinearExpr variable(VarId V, int64_t Coeff = 1);

  int64_t constant() const { return Const; }
  const std::vector<std::pair<VarId, int64_t>> &terms() const { return Terms; }
  bool isConstant() const { return Terms.empty(); }
  size_t numTerms() const { return Terms.size(); }

  /// Coefficient of \p V (0 if absent).
  int64_t coeff(VarId V) const;
  bool contains(VarId V) const { return coeff(V) != 0; }

  LinearExpr add(const LinearExpr &O) const;
  LinearExpr sub(const LinearExpr &O) const;
  LinearExpr scaled(int64_t K) const;
  LinearExpr negated() const { return scaled(-1); }
  LinearExpr addConst(int64_t K) const;

  /// Replaces \p V by \p Repl (the coefficient of V multiplies into Repl).
  LinearExpr substituted(VarId V, const LinearExpr &Repl) const;

  /// GCD of the variable coefficients; 0 when the expression is constant.
  int64_t coeffGcd() const;

  /// Evaluates under a total assignment provided by \p Value.
  int64_t evaluate(const std::function<int64_t(VarId)> &Value) const;

  void forEachVar(const std::function<void(VarId)> &Fn) const {
    for (const auto &T : Terms)
      Fn(T.first);
  }

  bool operator==(const LinearExpr &O) const {
    return Const == O.Const && Terms == O.Terms;
  }
  bool operator!=(const LinearExpr &O) const { return !(*this == O); }

  /// Deterministic total order (for canonical child ordering).
  bool operator<(const LinearExpr &O) const;

  size_t hash() const;

  /// Renders e.g. "2*x - y + 3" using names from \p VT.
  std::string str(const VarTable &VT) const;
};

inline LinearExpr operator+(const LinearExpr &A, const LinearExpr &B) {
  return A.add(B);
}
inline LinearExpr operator-(const LinearExpr &A, const LinearExpr &B) {
  return A.sub(B);
}
inline LinearExpr operator*(int64_t K, const LinearExpr &A) {
  return A.scaled(K);
}

} // namespace abdiag::smt

#endif // ABDIAG_SMT_LINEAREXPR_H
