//===- smt/LinearExpr.h - Linear integer expressions ------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical linear expressions `c0 + c1*x1 + ... + cn*xn` over int64
/// coefficients. Terms are kept sorted by variable id with no zero
/// coefficients, so structural equality is semantic equality. These are the
/// symbolic expressions π of Section 3 restricted to their canonical form,
/// and the left-hand sides of all atoms in the SMT layer.
///
/// Expressions with at most two terms (the overwhelmingly common case --
/// bound atoms, difference constraints, renamed variables) are stored
/// inline with no heap allocation; longer term lists spill to the heap.
/// The structural hash is computed once and cached: interning and memo
/// tables hash the same expression many times.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_LINEAREXPR_H
#define ABDIAG_SMT_LINEAREXPR_H

#include "smt/Var.h"
#include "support/CheckedArith.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>

namespace abdiag::smt {

/// Immutable-by-convention canonical linear expression.
class LinearExpr {
public:
  using Term = std::pair<VarId, int64_t>;

private:
  static constexpr uint32_t InlineCap = 2;
  static constexpr size_t NoHash = ~size_t(0);

  /// (variable, coefficient) pairs, sorted by VarId, coefficients non-zero.
  /// Lives in InlineTerms while Size <= InlineCap, in HeapTerms beyond.
  Term InlineTerms[InlineCap];
  std::unique_ptr<Term[]> HeapTerms;
  uint32_t Size = 0;
  uint32_t HeapCap = 0;
  int64_t Const = 0;
  mutable size_t HashCache = NoHash;

  const Term *data() const {
    return HeapCap ? HeapTerms.get() : InlineTerms;
  }
  Term *data() { return HeapCap ? HeapTerms.get() : InlineTerms; }

  /// Appends a (sorted-order, non-zero) term; grows to the heap as needed.
  void append(VarId V, int64_t Coeff);

public:
  LinearExpr() = default;
  LinearExpr(LinearExpr &&O) noexcept;
  LinearExpr &operator=(LinearExpr &&O) noexcept;
  LinearExpr(const LinearExpr &O);
  LinearExpr &operator=(const LinearExpr &O);

  /// The constant expression \p C.
  static LinearExpr constant(int64_t C);
  /// The expression Coeff * V.
  static LinearExpr variable(VarId V, int64_t Coeff = 1);

  int64_t constant() const { return Const; }
  std::span<const Term> terms() const { return {data(), Size}; }
  bool isConstant() const { return Size == 0; }
  size_t numTerms() const { return Size; }

  /// Coefficient of \p V (0 if absent).
  int64_t coeff(VarId V) const;
  bool contains(VarId V) const { return coeff(V) != 0; }

  LinearExpr add(const LinearExpr &O) const;
  LinearExpr sub(const LinearExpr &O) const;
  LinearExpr scaled(int64_t K) const;
  LinearExpr negated() const { return scaled(-1); }
  LinearExpr addConst(int64_t K) const;

  /// Replaces \p V by \p Repl (the coefficient of V multiplies into Repl).
  LinearExpr substituted(VarId V, const LinearExpr &Repl) const;

  /// GCD of the variable coefficients; 0 when the expression is constant.
  int64_t coeffGcd() const;

  /// Evaluates under a total assignment provided by \p Value.
  int64_t evaluate(const std::function<int64_t(VarId)> &Value) const;

  void forEachVar(const std::function<void(VarId)> &Fn) const {
    for (const Term &T : terms())
      Fn(T.first);
  }

  bool operator==(const LinearExpr &O) const;
  bool operator!=(const LinearExpr &O) const { return !(*this == O); }

  /// Deterministic total order (for canonical child ordering).
  bool operator<(const LinearExpr &O) const;

  /// Structural hash; computed on first use and cached.
  size_t hash() const;

  /// Renders e.g. "2*x - y + 3" using names from \p VT.
  std::string str(const VarTable &VT) const;
};

inline LinearExpr operator+(const LinearExpr &A, const LinearExpr &B) {
  return A.add(B);
}
inline LinearExpr operator-(const LinearExpr &A, const LinearExpr &B) {
  return A.sub(B);
}
inline LinearExpr operator*(int64_t K, const LinearExpr &A) {
  return A.scaled(K);
}

} // namespace abdiag::smt

#endif // ABDIAG_SMT_LINEAREXPR_H
