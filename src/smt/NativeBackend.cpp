//===- smt/NativeBackend.cpp - Native LIA stack as a backend ----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Thin adapter from Solver::Session (guard literals, persistent learned
/// clauses, unsat-core subsumption) to the interface session.
class NativeSession final : public DecisionProcedure::Session {
public:
  explicit NativeSession(Solver &S) : Sess(S) {}

  bool check(const std::vector<const Formula *> &Conjuncts,
             Model *Out = nullptr) override {
    return Sess.check(Conjuncts, Out);
  }
  const std::vector<const Formula *> &lastCore() const override {
    return Sess.lastCore();
  }
  size_t numCores() const override { return Sess.numCores(); }

private:
  Solver::Session Sess;
};

} // namespace

std::unique_ptr<DecisionProcedure::Session> NativeBackend::openSession() {
  return std::make_unique<NativeSession>(S);
}
