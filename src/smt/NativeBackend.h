//===- smt/NativeBackend.h - Native LIA stack as a backend ------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-tree lazy DPLL(T) LIA stack (smt/Solver) re-homed behind the
/// DecisionProcedure interface. Everything the concrete solver earned over
/// time -- guard-literal incremental sessions with unsat-core subsumption,
/// the pointer-keyed verdict cache, and the per-variable-step QE memo --
/// stays intact; this class only adapts the surface. Registered in the
/// backend registry as "native" (the default).
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_NATIVEBACKEND_H
#define ABDIAG_SMT_NATIVEBACKEND_H

#include "smt/DecisionProcedure.h"
#include "smt/Solver.h"

namespace abdiag::smt {

class NativeBackend final : public DecisionProcedure {
public:
  explicit NativeBackend(FormulaManager &M) : DecisionProcedure(M), S(M) {}

  const char *name() const override { return "native"; }
  BackendCapabilities capabilities() const override {
    return BackendCapabilities{}; // everything, natively
  }

  bool isSat(const Formula *F, Model *Out = nullptr) override {
    return S.isSat(F, Out);
  }

  std::unique_ptr<Session> openSession() override;

  /// Served from the solver's memo of single-variable elimination steps.
  const Formula *eliminateForall(const Formula *F,
                                 const std::vector<VarId> &Xs) override {
    return S.eliminateForallCached(F, Xs);
  }

  const SolverStats &stats() const override { return S.stats(); }
  void resetStats() override { S.resetStats(); }

  void setCancellation(const support::CancellationToken *T) override {
    S.setCancellation(T);
  }
  const support::CancellationToken *cancellation() const override {
    return S.cancellation();
  }

  void setCaching(bool On) override { S.setCaching(On); }
  bool cachingEnabled() const override { return S.cachingEnabled(); }

  void setSimplexMaxPivots(int MaxPivots) override {
    S.setSimplexMaxPivots(MaxPivots);
  }

  /// The wrapped concrete solver, for smt-layer code and tests that tune
  /// engine-specific knobs. Layers above smt/ must not use this.
  Solver &solver() { return S; }

private:
  Solver S;
};

} // namespace abdiag::smt

#endif // ABDIAG_SMT_NATIVEBACKEND_H
