//===- smt/Printer.cpp - Formula rendering ---------------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Printer.h"

#include "smt/FormulaOps.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Splits E into (Pos, Neg) with E = Pos - Neg, both having non-negative
/// coefficients, so "E <= 0" renders as "Pos <= Neg".
void splitSides(const LinearExpr &E, LinearExpr &Pos, LinearExpr &Neg) {
  Pos = LinearExpr();
  Neg = LinearExpr();
  for (const auto &T : E.terms()) {
    if (T.second > 0)
      Pos = Pos.add(LinearExpr::variable(T.first, T.second));
    else
      Neg = Neg.add(LinearExpr::variable(T.first, -T.second));
  }
  if (E.constant() > 0)
    Pos = Pos.addConst(E.constant());
  else if (E.constant() < 0)
    Neg = Neg.addConst(-E.constant());
}

std::string renderAtom(const Formula *F, const VarTable &VT) {
  assert(F->isAtom());
  const LinearExpr &E = F->expr();
  switch (F->rel()) {
  case AtomRel::Le:
  case AtomRel::Eq:
  case AtomRel::Ne: {
    LinearExpr Pos, Neg;
    splitSides(E, Pos, Neg);
    const char *Op = F->rel() == AtomRel::Le   ? " <= "
                     : F->rel() == AtomRel::Eq ? " = "
                                               : " != ";
    return Pos.str(VT) + Op + Neg.str(VT);
  }
  case AtomRel::Div:
    return std::to_string(F->divisor()) + " | (" + E.str(VT) + ")";
  case AtomRel::NDiv:
    return "!(" + std::to_string(F->divisor()) + " | (" + E.str(VT) + "))";
  }
  assert(false && "unhandled atom relation");
  return "";
}

std::string render(const Formula *F, const VarTable &VT, bool TopLevel) {
  switch (F->kind()) {
  case FormulaKind::True:
    return "true";
  case FormulaKind::False:
    return "false";
  case FormulaKind::Atom:
    return renderAtom(F, VT);
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<std::string> Parts;
    Parts.reserve(F->kids().size());
    for (const Formula *K : F->kids())
      Parts.push_back(render(K, VT, /*TopLevel=*/false));
    std::string Body = join(Parts, F->isAnd() ? " && " : " || ");
    return TopLevel ? Body : "(" + Body + ")";
  }
  }
  assert(false && "unhandled formula kind");
  return "";
}

std::string smtExpr(const LinearExpr &E, const VarTable &VT) {
  std::vector<std::string> Parts;
  if (E.constant() != 0 || E.terms().empty()) {
    int64_t C = E.constant();
    Parts.push_back(C < 0 ? "(- " + std::to_string(-C) + ")"
                          : std::to_string(C));
  }
  for (const auto &T : E.terms()) {
    std::string V = VT.name(T.first);
    // SMT-LIB symbols cannot contain '*' etc.; wrap in |...| quoting.
    V = "|" + V + "|";
    int64_t C = T.second;
    if (C == 1)
      Parts.push_back(V);
    else if (C == -1)
      Parts.push_back("(- " + V + ")");
    else if (C < 0)
      Parts.push_back("(* (- " + std::to_string(-C) + ") " + V + ")");
    else
      Parts.push_back("(* " + std::to_string(C) + " " + V + ")");
  }
  if (Parts.size() == 1)
    return Parts.front();
  return "(+ " + join(Parts, " ") + ")";
}

std::string smtFormula(const Formula *F, const VarTable &VT) {
  switch (F->kind()) {
  case FormulaKind::True:
    return "true";
  case FormulaKind::False:
    return "false";
  case FormulaKind::Atom: {
    std::string E = smtExpr(F->expr(), VT);
    switch (F->rel()) {
    case AtomRel::Le:
      return "(<= " + E + " 0)";
    case AtomRel::Eq:
      return "(= " + E + " 0)";
    case AtomRel::Ne:
      return "(not (= " + E + " 0))";
    case AtomRel::Div:
      return "(= (mod " + E + " " + std::to_string(F->divisor()) + ") 0)";
    case AtomRel::NDiv:
      return "(not (= (mod " + E + " " + std::to_string(F->divisor()) +
             ") 0))";
    }
    break;
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<std::string> Parts;
    for (const Formula *K : F->kids())
      Parts.push_back(smtFormula(K, VT));
    return std::string("(") + (F->isAnd() ? "and " : "or ") + join(Parts, " ") +
           ")";
  }
  }
  assert(false && "unhandled formula kind");
  return "";
}

} // namespace

std::string abdiag::smt::toString(const Formula *F, const VarTable &VT) {
  return render(F, VT, /*TopLevel=*/true);
}

std::string abdiag::smt::atomToString(const Formula *F, const VarTable &VT) {
  return renderAtom(F, VT);
}

std::string abdiag::smt::toSmtLib(const Formula *F, const VarTable &VT) {
  std::string Out = "(set-logic ALL)\n";
  for (VarId V : freeVarsVec(F))
    Out += "(declare-const |" + VT.name(V) + "| Int)\n";
  Out += "(assert " + smtFormula(F, VT) + ")\n(check-sat)\n";
  return Out;
}
