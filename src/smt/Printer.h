//===- smt/Printer.h - Formula rendering ------------------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders formulas in a human-readable infix syntax (used for queries shown
/// to users) and in SMT-LIB2 (used for debugging and for cross-checking
/// against external solvers).
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_PRINTER_H
#define ABDIAG_SMT_PRINTER_H

#include "smt/Formula.h"

#include <string>

namespace abdiag::smt {

/// Infix rendering, e.g. "(x + 1 <= 0 && (y = 0 || 3 | x + y))".
std::string toString(const Formula *F, const VarTable &VT);

/// Renders a single atom with the relation on a readable side, e.g.
/// "x >= 2" instead of "-x + 2 <= 0". Falls back to canonical form for
/// multi-variable atoms.
std::string atomToString(const Formula *F, const VarTable &VT);

/// Full SMT-LIB2 script: declarations, one assert, check-sat.
std::string toSmtLib(const Formula *F, const VarTable &VT);

} // namespace abdiag::smt

#endif // ABDIAG_SMT_PRINTER_H
