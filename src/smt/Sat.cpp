//===- smt/Sat.cpp - CDCL propositional SAT solver --------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include <algorithm>
#include <cassert>

using namespace abdiag::sat;

uint64_t abdiag::sat::lubySequence(uint64_t I) {
  // Sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  assert(I >= 1 && "Luby sequence is 1-based");
  uint64_t Size = 1, Seq = 0;
  while (Size < I) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size != I) {
    Size = (Size - 1) / 2;
    --Seq;
    I = ((I - 1) % Size) + 1;
  }
  return 1ULL << Seq;
}

BVar SatSolver::newVar() {
  BVar V = static_cast<BVar>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Levels.push_back(0);
  Reasons.push_back(-1);
  Activity.push_back(0.0);
  SavedPhase.push_back(false);
  Seen.push_back(false);
  Watches.emplace_back();
  Watches.emplace_back();
  return V;
}

LBool SatSolver::valueLit(Lit L) const {
  LBool V = Assigns[litVar(L)];
  if (V == LBool::Undef)
    return LBool::Undef;
  bool B = (V == LBool::True) != litNeg(L);
  return B ? LBool::True : LBool::False;
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  if (UnsatAtLevel0)
    return false;
  // Incremental use: clauses may arrive after a Sat answer; undo the search.
  backtrack(0);
  // Root-level simplification: drop false literals, detect satisfied/taut.
  std::sort(Lits.begin(), Lits.end());
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  std::vector<Lit> Keep;
  for (size_t I = 0; I < Lits.size(); ++I) {
    if (I + 1 < Lits.size() && Lits[I + 1] == litNot(Lits[I]))
      return true; // tautology
    LBool V = valueLit(Lits[I]);
    if (V == LBool::True)
      return true; // already satisfied
    if (V == LBool::Undef)
      Keep.push_back(Lits[I]);
  }
  if (Keep.empty()) {
    UnsatAtLevel0 = true;
    return false;
  }
  if (Keep.size() == 1) {
    enqueue(Keep[0], -1);
    if (propagate() != -1) {
      UnsatAtLevel0 = true;
      return false;
    }
    return true;
  }
  Clauses.push_back({std::move(Keep)});
  attachClause(static_cast<uint32_t>(Clauses.size() - 1));
  return true;
}

void SatSolver::attachClause(uint32_t Idx) {
  const Clause &C = Clauses[Idx];
  assert(C.Lits.size() >= 2 && "watched clause must be binary or longer");
  Watches[litNot(C.Lits[0])].push_back({Idx, C.Lits[1]});
  Watches[litNot(C.Lits[1])].push_back({Idx, C.Lits[0]});
}

void SatSolver::enqueue(Lit L, int32_t Reason) {
  assert(valueLit(L) == LBool::Undef && "enqueue of assigned literal");
  BVar V = litVar(L);
  Assigns[V] = litNeg(L) ? LBool::False : LBool::True;
  Levels[V] = level();
  Reasons[V] = Reason;
  Trail.push_back(L);
}

int32_t SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++]; // P became true; scan watches of ¬P's list
    std::vector<Watcher> &WList = Watches[P];
    size_t Out = 0;
    for (size_t In = 0; In < WList.size(); ++In) {
      Watcher W = WList[In];
      if (valueLit(W.Blocker) == LBool::True) {
        WList[Out++] = W;
        continue;
      }
      Clause &C = Clauses[W.ClauseIdx];
      // Ensure the false literal (¬P) is at position 1.
      Lit NotP = litNot(P);
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP && "watch invariant broken");
      if (valueLit(C.Lits[0]) == LBool::True) {
        WList[Out++] = {W.ClauseIdx, C.Lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool Moved = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (valueLit(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[litNot(C.Lits[1])].push_back({W.ClauseIdx, C.Lits[0]});
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Clause is unit or conflicting.
      WList[Out++] = W;
      if (valueLit(C.Lits[0]) == LBool::False) {
        // Conflict: copy back remaining watchers and report.
        for (size_t K = In + 1; K < WList.size(); ++K)
          WList[Out++] = WList[K];
        WList.resize(Out);
        PropHead = Trail.size();
        return static_cast<int32_t>(W.ClauseIdx);
      }
      enqueue(C.Lits[0], static_cast<int32_t>(W.ClauseIdx));
    }
    WList.resize(Out);
  }
  return -1;
}

void SatSolver::bumpVar(BVar V) {
  Activity[V] += ActivityInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::decayActivity() { ActivityInc *= (1.0 / 0.95); }

void SatSolver::analyze(int32_t ConflictIdx, std::vector<Lit> &Learnt,
                        uint32_t &BackLevel) {
  Learnt.clear();
  Learnt.push_back(0); // slot for the asserting literal
  uint32_t Counter = 0;
  Lit P = 0;
  bool HaveP = false;
  size_t TrailIdx = Trail.size();
  int32_t Reason = ConflictIdx;

  do {
    assert(Reason != -1 && "no reason during conflict analysis");
    const Clause &C = Clauses[Reason];
    // When resolving on a reason clause, C.Lits[0] is the implied literal
    // itself and is skipped; for the initial conflict all literals count.
    for (size_t I = HaveP ? 1 : 0; I < C.Lits.size(); ++I) {
      Lit L = C.Lits[I];
      BVar V = litVar(L);
      if (Seen[V] || Levels[V] == 0)
        continue;
      Seen[V] = true;
      bumpVar(V);
      if (Levels[V] == level())
        ++Counter;
      else
        Learnt.push_back(L);
    }
    // Select next literal to resolve: last assigned seen variable.
    do {
      --TrailIdx;
    } while (!Seen[litVar(Trail[TrailIdx])]);
    P = litNot(Trail[TrailIdx]);
    HaveP = true;
    Seen[litVar(P)] = false;
    Reason = Reasons[litVar(P)];
    --Counter;
  } while (Counter > 0);
  Learnt[0] = P;

  // Compute backjump level = second-highest level in the learnt clause.
  BackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    uint32_t Lv = Levels[litVar(Learnt[I])];
    if (Lv > BackLevel) {
      BackLevel = Lv;
      MaxIdx = I;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);
  for (size_t I = 1; I < Learnt.size(); ++I)
    Seen[litVar(Learnt[I])] = false;
}

void SatSolver::backtrack(uint32_t ToLevel) {
  if (level() <= ToLevel)
    return;
  uint32_t Limit = TrailLims[ToLevel];
  for (size_t I = Trail.size(); I > Limit; --I) {
    BVar V = litVar(Trail[I - 1]);
    SavedPhase[V] = Assigns[V] == LBool::True;
    Assigns[V] = LBool::Undef;
    Reasons[V] = -1;
  }
  Trail.resize(Limit);
  TrailLims.resize(ToLevel);
  PropHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  BVar Best = 0;
  double BestAct = -1.0;
  bool Found = false;
  for (BVar V = 0; V < Assigns.size(); ++V) {
    if (Assigns[V] != LBool::Undef)
      continue;
    if (!Found || Activity[V] > BestAct) {
      Best = V;
      BestAct = Activity[V];
      Found = true;
    }
  }
  if (!Found)
    return UINT32_MAX;
  return mkLit(Best, !SavedPhase[Best]);
}

void SatSolver::analyzeFinal(Lit P) {
  // Assumption P is falsified by the current trail; collect the subset of
  // assumptions that (with the clause set) imply ¬P by walking the reason
  // graph. Assumptions are the only decisions on the trail here, so a seen
  // variable with no reason above level 0 is an assumption.
  FailedAssumps.clear();
  FailedAssumps.push_back(P);
  if (Levels[litVar(P)] == 0)
    return; // ¬P holds at level 0: P conflicts with the clause set alone
  Seen[litVar(P)] = true;
  uint32_t Level0End = TrailLims.empty()
                           ? static_cast<uint32_t>(Trail.size())
                           : TrailLims[0];
  for (size_t I = Trail.size(); I > Level0End; --I) {
    BVar V = litVar(Trail[I - 1]);
    if (!Seen[V])
      continue;
    Seen[V] = false;
    if (Reasons[V] == -1) {
      FailedAssumps.push_back(Trail[I - 1]);
      continue;
    }
    const Clause &C = Clauses[Reasons[V]];
    for (size_t K = 1; K < C.Lits.size(); ++K)
      if (Levels[litVar(C.Lits[K])] > 0)
        Seen[litVar(C.Lits[K])] = true;
  }
}

SatSolver::Result SatSolver::solve(const std::vector<Lit> &Assumptions) {
  FailedAssumps.clear();
  if (UnsatAtLevel0)
    return Result::Unsat;
  backtrack(0);
  if (propagate() != -1) {
    UnsatAtLevel0 = true;
    return Result::Unsat;
  }

  uint64_t RestartIdx = 1;
  uint64_t ConflictBudget = lubySequence(RestartIdx) * 64;
  uint64_t ConflictsHere = 0;

  while (true) {
    int32_t Confl = propagate();
    if (Confl != -1) {
      support::pollCancellation(Cancel);
      ++Conflicts;
      ++ConflictsHere;
      if (level() == 0) {
        UnsatAtLevel0 = true;
        return Result::Unsat;
      }
      std::vector<Lit> Learnt;
      uint32_t BackLevel = 0;
      analyze(Confl, Learnt, BackLevel);
      backtrack(BackLevel);
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], -1);
      } else {
        Clauses.push_back({Learnt});
        attachClause(static_cast<uint32_t>(Clauses.size() - 1));
        enqueue(Learnt[0], static_cast<int32_t>(Clauses.size() - 1));
      }
      decayActivity();
      continue;
    }
    if (ConflictsHere >= ConflictBudget) {
      // Restart. The assumption prefix is re-installed by the loop below.
      ConflictsHere = 0;
      ConflictBudget = lubySequence(++RestartIdx) * 64;
      backtrack(0);
      continue;
    }
    if (level() < Assumptions.size()) {
      // Install the next assumption as a pseudo-decision.
      Lit A = Assumptions[level()];
      LBool V = valueLit(A);
      if (V == LBool::True) {
        // Already implied; open an empty level to keep level==index aligned.
        TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
      } else if (V == LBool::False) {
        analyzeFinal(A);
        backtrack(0);
        return Result::Unsat;
      } else {
        TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
        enqueue(A, -1);
      }
      continue;
    }
    Lit Next = pickBranchLit();
    if (Next == UINT32_MAX)
      return Result::Sat; // all variables assigned
    support::pollCancellation(Cancel);
    ++Decisions;
    TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
    enqueue(Next, -1);
  }
}
