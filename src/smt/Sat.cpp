//===- smt/Sat.cpp - CDCL propositional SAT solver --------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

using namespace abdiag::sat;

uint64_t abdiag::sat::lubySequence(uint64_t I) {
  // Sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  assert(I >= 1 && "Luby sequence is 1-based");
  uint64_t Size = 1, Seq = 0;
  while (Size < I) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size != I) {
    Size = (Size - 1) / 2;
    --Seq;
    I = ((I - 1) % Size) + 1;
  }
  return 1ULL << Seq;
}

float SatSolver::clauseActivity(CRef C) const {
  float A;
  std::memcpy(&A, &Arena[C + 2], sizeof(float));
  return A;
}

void SatSolver::setClauseActivity(CRef C, float A) {
  std::memcpy(&Arena[C + 2], &A, sizeof(float));
}

BVar SatSolver::newVar() {
  BVar V = static_cast<BVar>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Levels.push_back(0);
  Reasons.push_back(InvalidCRef);
  Activity.push_back(0.0);
  SavedPhase.push_back(false);
  Seen.push_back(false);
  Watches.emplace_back();
  Watches.emplace_back();
  HeapPos.push_back(-1);
  heapInsert(V);
  return V;
}

LBool SatSolver::valueLit(Lit L) const {
  LBool V = Assigns[litVar(L)];
  if (V == LBool::Undef)
    return LBool::Undef;
  bool B = (V == LBool::True) != litNeg(L);
  return B ? LBool::True : LBool::False;
}

CRef SatSolver::allocClause(const std::vector<Lit> &Lits, bool IsLearned,
                            uint32_t Lbd) {
  CRef C = static_cast<CRef>(Arena.size());
  Arena.push_back(static_cast<uint32_t>(Lits.size()) << 2 |
                  (IsLearned ? 2u : 0u));
  Arena.push_back(Lbd);
  Arena.push_back(0); // activity bits (0.0f)
  Arena.insert(Arena.end(), Lits.begin(), Lits.end());
  return C;
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  if (UnsatAtLevel0)
    return false;
  // Incremental use: clauses may arrive after a Sat answer; undo the search.
  backtrack(0);
  // Root-level simplification: drop false literals, detect satisfied/taut.
  std::sort(Lits.begin(), Lits.end());
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  std::vector<Lit> Keep;
  for (size_t I = 0; I < Lits.size(); ++I) {
    if (I + 1 < Lits.size() && Lits[I + 1] == litNot(Lits[I]))
      return true; // tautology
    LBool V = valueLit(Lits[I]);
    if (V == LBool::True)
      return true; // already satisfied
    if (V == LBool::Undef)
      Keep.push_back(Lits[I]);
  }
  if (Keep.empty()) {
    UnsatAtLevel0 = true;
    return false;
  }
  if (Keep.size() == 1) {
    enqueue(Keep[0], InvalidCRef);
    if (propagate() != InvalidCRef) {
      UnsatAtLevel0 = true;
      return false;
    }
    return true;
  }
  attachClause(allocClause(Keep, /*IsLearned=*/false, /*Lbd=*/0));
  return true;
}

void SatSolver::attachClause(CRef C) {
  const Lit *L = clauseLits(C);
  assert(clauseSize(C) >= 2 && "watched clause must be binary or longer");
  Watches[litNot(L[0])].push_back({C, L[1]});
  Watches[litNot(L[1])].push_back({C, L[0]});
}

void SatSolver::enqueue(Lit L, CRef Reason) {
  assert(valueLit(L) == LBool::Undef && "enqueue of assigned literal");
  BVar V = litVar(L);
  Assigns[V] = litNeg(L) ? LBool::False : LBool::True;
  Levels[V] = level();
  Reasons[V] = Reason;
  Trail.push_back(L);
}

CRef SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++]; // P became true; scan watches of ¬P's list
    std::vector<Watcher> &WList = Watches[P];
    size_t Out = 0;
    for (size_t In = 0; In < WList.size(); ++In) {
      Watcher W = WList[In];
      if (valueLit(W.Blocker) == LBool::True) {
        WList[Out++] = W;
        continue;
      }
      Lit *CL = clauseLits(W.Ref);
      // Ensure the false literal (¬P) is at position 1.
      Lit NotP = litNot(P);
      if (CL[0] == NotP)
        std::swap(CL[0], CL[1]);
      assert(CL[1] == NotP && "watch invariant broken");
      if (valueLit(CL[0]) == LBool::True) {
        WList[Out++] = {W.Ref, CL[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool Moved = false;
      uint32_t Size = clauseSize(W.Ref);
      for (uint32_t K = 2; K < Size; ++K) {
        if (valueLit(CL[K]) != LBool::False) {
          std::swap(CL[1], CL[K]);
          Watches[litNot(CL[1])].push_back({W.Ref, CL[0]});
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Clause is unit or conflicting.
      WList[Out++] = W;
      if (valueLit(CL[0]) == LBool::False) {
        // Conflict: copy back remaining watchers and report.
        for (size_t K = In + 1; K < WList.size(); ++K)
          WList[Out++] = WList[K];
        WList.resize(Out);
        PropHead = Trail.size();
        return W.Ref;
      }
      enqueue(CL[0], W.Ref);
    }
    WList.resize(Out);
  }
  return InvalidCRef;
}

//===----------------------------------------------------------------------===//
// VSIDS order heap
//===----------------------------------------------------------------------===//

void SatSolver::heapSwap(size_t I, size_t K) {
  std::swap(Heap[I], Heap[K]);
  HeapPos[Heap[I]] = static_cast<int32_t>(I);
  HeapPos[Heap[K]] = static_cast<int32_t>(K);
}

void SatSolver::heapUp(size_t I) {
  while (I > 0) {
    size_t Parent = (I - 1) / 2;
    if (!heapLess(Heap[Parent], Heap[I]))
      return;
    heapSwap(I, Parent);
    I = Parent;
  }
}

void SatSolver::heapDown(size_t I) {
  while (true) {
    size_t L = 2 * I + 1, R = L + 1, Best = I;
    if (L < Heap.size() && heapLess(Heap[Best], Heap[L]))
      Best = L;
    if (R < Heap.size() && heapLess(Heap[Best], Heap[R]))
      Best = R;
    if (Best == I)
      return;
    heapSwap(I, Best);
    I = Best;
  }
}

void SatSolver::heapInsert(BVar V) {
  if (HeapPos[V] >= 0)
    return;
  HeapPos[V] = static_cast<int32_t>(Heap.size());
  Heap.push_back(V);
  heapUp(Heap.size() - 1);
}

BVar SatSolver::heapPop() {
  BVar Top = Heap[0];
  HeapPos[Top] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapPos[Heap[0]] = 0;
    heapDown(0);
  }
  return Top;
}

void SatSolver::bumpVar(BVar V) {
  Activity[V] += ActivityInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
  if (HeapPos[V] >= 0)
    heapUp(static_cast<size_t>(HeapPos[V]));
}

void SatSolver::bumpClause(CRef C) {
  if (!clauseLearned(C))
    return;
  float A = clauseActivity(C) + static_cast<float>(ClauseActivityInc);
  setClauseActivity(C, A);
  if (A > 1e20f) {
    for (CRef L : Learnts)
      setClauseActivity(L, clauseActivity(L) * 1e-20f);
    ClauseActivityInc *= 1e-20;
  }
}

void SatSolver::decayActivity() {
  ActivityInc *= (1.0 / 0.95);
  ClauseActivityInc *= (1.0 / 0.999);
}

uint32_t SatSolver::computeLbd(const std::vector<Lit> &Lits) {
  LevelSeen.resize(TrailLims.size() + 1, 0);
  ++LbdStamp;
  uint32_t Lbd = 0;
  for (Lit L : Lits) {
    uint32_t Lv = Levels[litVar(L)];
    if (LevelSeen[Lv] != LbdStamp) {
      LevelSeen[Lv] = LbdStamp;
      ++Lbd;
    }
  }
  return Lbd;
}

void SatSolver::analyze(CRef Conflict, std::vector<Lit> &Learnt,
                        uint32_t &BackLevel, uint32_t &Lbd) {
  Learnt.clear();
  Learnt.push_back(0); // slot for the asserting literal
  uint32_t Counter = 0;
  Lit P = 0;
  bool HaveP = false;
  size_t TrailIdx = Trail.size();
  CRef Reason = Conflict;

  do {
    assert(Reason != InvalidCRef && "no reason during conflict analysis");
    bumpClause(Reason);
    const Lit *CL = clauseLits(Reason);
    uint32_t Size = clauseSize(Reason);
    // When resolving on a reason clause, CL[0] is the implied literal
    // itself and is skipped; for the initial conflict all literals count.
    for (uint32_t I = HaveP ? 1 : 0; I < Size; ++I) {
      Lit L = CL[I];
      BVar V = litVar(L);
      if (Seen[V] || Levels[V] == 0)
        continue;
      Seen[V] = true;
      bumpVar(V);
      if (Levels[V] == level())
        ++Counter;
      else
        Learnt.push_back(L);
    }
    // Select next literal to resolve: last assigned seen variable.
    do {
      --TrailIdx;
    } while (!Seen[litVar(Trail[TrailIdx])]);
    P = litNot(Trail[TrailIdx]);
    HaveP = true;
    Seen[litVar(P)] = false;
    Reason = Reasons[litVar(P)];
    --Counter;
  } while (Counter > 0);
  Learnt[0] = P;

  Lbd = computeLbd(Learnt);
  if (Lbd > MaxLbd)
    MaxLbd = Lbd;

  // Compute backjump level = second-highest level in the learnt clause.
  BackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    uint32_t Lv = Levels[litVar(Learnt[I])];
    if (Lv > BackLevel) {
      BackLevel = Lv;
      MaxIdx = I;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);
  for (size_t I = 1; I < Learnt.size(); ++I)
    Seen[litVar(Learnt[I])] = false;
}

void SatSolver::backtrack(uint32_t ToLevel) {
  if (level() <= ToLevel)
    return;
  uint32_t Limit = TrailLims[ToLevel];
  for (size_t I = Trail.size(); I > Limit; --I) {
    BVar V = litVar(Trail[I - 1]);
    SavedPhase[V] = Assigns[V] == LBool::True;
    Assigns[V] = LBool::Undef;
    Reasons[V] = InvalidCRef;
    heapInsert(V); // lazy re-insertion: unassigned vars rejoin the order
  }
  Trail.resize(Limit);
  TrailLims.resize(ToLevel);
  PropHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  if (UseOrderHeap) {
    while (!Heap.empty()) {
      BVar V = heapPop();
      if (Assigns[V] == LBool::Undef)
        return mkLit(V, !SavedPhase[V]);
    }
    return UINT32_MAX;
  }
  // Reference decision order: linear scan for the max-activity unassigned
  // variable (differential-testing mode).
  BVar Best = 0;
  double BestAct = -1.0;
  bool Found = false;
  for (BVar V = 0; V < Assigns.size(); ++V) {
    if (Assigns[V] != LBool::Undef)
      continue;
    if (!Found || Activity[V] > BestAct) {
      Best = V;
      BestAct = Activity[V];
      Found = true;
    }
  }
  if (!Found)
    return UINT32_MAX;
  return mkLit(Best, !SavedPhase[Best]);
}

void SatSolver::analyzeFinal(Lit P) {
  // Assumption P is falsified by the current trail; collect the subset of
  // assumptions that (with the clause set) imply ¬P by walking the reason
  // graph. Assumptions are the only decisions on the trail here, so a seen
  // variable with no reason above level 0 is an assumption.
  FailedAssumps.clear();
  FailedAssumps.push_back(P);
  if (Levels[litVar(P)] == 0)
    return; // ¬P holds at level 0: P conflicts with the clause set alone
  Seen[litVar(P)] = true;
  uint32_t Level0End = TrailLims.empty()
                           ? static_cast<uint32_t>(Trail.size())
                           : TrailLims[0];
  for (size_t I = Trail.size(); I > Level0End; --I) {
    BVar V = litVar(Trail[I - 1]);
    if (!Seen[V])
      continue;
    Seen[V] = false;
    if (Reasons[V] == InvalidCRef) {
      FailedAssumps.push_back(Trail[I - 1]);
      continue;
    }
    const Lit *CL = clauseLits(Reasons[V]);
    uint32_t Size = clauseSize(Reasons[V]);
    for (uint32_t K = 1; K < Size; ++K)
      if (Levels[litVar(CL[K])] > 0)
        Seen[litVar(CL[K])] = true;
  }
}

void SatSolver::reduceDB() {
  // Partition the learned clauses: glue (LBD <= 2), binary, and locked
  // clauses (reason of a current assignment) always survive; the rest are
  // ranked by (LBD, activity) and the worst half is deleted.
  auto Locked = [&](CRef C) {
    BVar V = litVar(clauseLits(C)[0]);
    return Assigns[V] != LBool::Undef && Reasons[V] == C;
  };
  std::vector<CRef> Candidates;
  Candidates.reserve(Learnts.size());
  for (CRef C : Learnts)
    if (clauseLbd(C) > 2 && clauseSize(C) > 2 && !Locked(C))
      Candidates.push_back(C);
  if (Candidates.size() < 2)
    return;
  std::sort(Candidates.begin(), Candidates.end(), [&](CRef A, CRef B) {
    if (clauseLbd(A) != clauseLbd(B))
      return clauseLbd(A) > clauseLbd(B);
    if (clauseActivity(A) != clauseActivity(B))
      return clauseActivity(A) < clauseActivity(B);
    return A < B;
  });
  size_t NumDelete = Candidates.size() / 2;
  for (size_t I = 0; I < NumDelete; ++I)
    Arena[Candidates[I]] |= 1; // deleted flag
  Reduced += NumDelete;

  // Compact the arena in place, remapping references.
  std::unordered_map<CRef, CRef> Remap;
  Remap.reserve(Learnts.size());
  std::vector<uint32_t> NewArena;
  NewArena.reserve(Arena.size());
  for (CRef C = 0; C < Arena.size();
       C += HeaderWords + clauseSize(C)) {
    if (clauseDeleted(C))
      continue;
    CRef NewC = static_cast<CRef>(NewArena.size());
    Remap.emplace(C, NewC);
    NewArena.insert(NewArena.end(), Arena.begin() + C,
                    Arena.begin() + C + HeaderWords + clauseSize(C));
  }
  Arena = std::move(NewArena);

  std::vector<CRef> NewLearnts;
  NewLearnts.reserve(Learnts.size() - NumDelete);
  for (CRef C : Learnts) {
    auto It = Remap.find(C);
    if (It != Remap.end())
      NewLearnts.push_back(It->second);
  }
  Learnts = std::move(NewLearnts);

  for (Lit L : Trail) {
    CRef &R = Reasons[litVar(L)];
    if (R != InvalidCRef)
      R = Remap.at(R);
  }

  // Rebuild the watch lists: literal order inside each surviving clause is
  // unchanged, so re-watching positions 0/1 preserves the watch invariant.
  for (std::vector<Watcher> &W : Watches)
    W.clear();
  for (CRef C = 0; C < Arena.size();
       C += HeaderWords + clauseSize(C))
    attachClause(C);
}

SatSolver::Result SatSolver::solve(const std::vector<Lit> &Assumptions) {
  FailedAssumps.clear();
  if (UnsatAtLevel0)
    return Result::Unsat;
  backtrack(0);
  if (propagate() != InvalidCRef) {
    UnsatAtLevel0 = true;
    return Result::Unsat;
  }

  uint64_t RestartIdx = 1;
  uint64_t ConflictBudget = lubySequence(RestartIdx) * 64;
  uint64_t ConflictsHere = 0;
  std::vector<Lit> Learnt;

  while (true) {
    CRef Confl = propagate();
    if (Confl != InvalidCRef) {
      support::pollCancellation(Cancel);
      ++Conflicts;
      ++ConflictsHere;
      ++ConflictsSinceReduce;
      if (level() == 0) {
        UnsatAtLevel0 = true;
        return Result::Unsat;
      }
      uint32_t BackLevel = 0, Lbd = 0;
      analyze(Confl, Learnt, BackLevel, Lbd);
      backtrack(BackLevel);
      ++Learned;
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], InvalidCRef);
      } else {
        CRef C = allocClause(Learnt, /*IsLearned=*/true, Lbd);
        Learnts.push_back(C);
        attachClause(C);
        bumpClause(C);
        enqueue(Learnt[0], C);
      }
      decayActivity();
      if (ReduceEnabled && ConflictsSinceReduce >= ReduceInterval) {
        ConflictsSinceReduce = 0;
        ReduceInterval += 300;
        reduceDB();
      }
      continue;
    }
    if (ConflictsHere >= ConflictBudget) {
      // Restart. The assumption prefix is re-installed by the loop below.
      ConflictsHere = 0;
      ConflictBudget = lubySequence(++RestartIdx) * 64;
      ++Restarts;
      backtrack(0);
      continue;
    }
    if (level() < Assumptions.size()) {
      // Install the next assumption as a pseudo-decision.
      Lit A = Assumptions[level()];
      LBool V = valueLit(A);
      if (V == LBool::True) {
        // Already implied; open an empty level to keep level==index aligned.
        TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
      } else if (V == LBool::False) {
        analyzeFinal(A);
        backtrack(0);
        return Result::Unsat;
      } else {
        TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
        enqueue(A, InvalidCRef);
      }
      continue;
    }
    Lit Next = pickBranchLit();
    if (Next == UINT32_MAX)
      return Result::Sat; // all variables assigned
    support::pollCancellation(Cancel);
    ++Decisions;
    TrailLims.push_back(static_cast<uint32_t>(Trail.size()));
    enqueue(Next, InvalidCRef);
  }
}
