//===- smt/Sat.h - CDCL propositional SAT solver ----------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver used as the boolean engine
/// of the lazy DPLL(T) SMT loop. Features: two-watched-literal propagation,
/// first-UIP conflict analysis with non-chronological backjumping, EVSIDS
/// branching, phase saving, Luby restarts, and assumption-based incremental
/// solving: solve(Assumptions) decides the clause set under a temporary set
/// of assumed literals, keeps every original and learned clause live across
/// calls, and on Unsat reports the subset of assumptions responsible
/// (failedAssumptions()). Clause deletion is not implemented -- the formulas
/// in this project are small.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_SAT_H
#define ABDIAG_SMT_SAT_H

#include "support/Cancellation.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace abdiag::sat {

/// Boolean variable index.
using BVar = uint32_t;

/// Literal encoding: variable * 2 + (1 if negated).
using Lit = uint32_t;

inline Lit mkLit(BVar V, bool Neg = false) { return V * 2 + (Neg ? 1 : 0); }
inline BVar litVar(Lit L) { return L >> 1; }
inline bool litNeg(Lit L) { return L & 1; }
inline Lit litNot(Lit L) { return L ^ 1; }

/// Three-valued assignment.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/// The CDCL solver.
class SatSolver {
public:
  enum class Result { Sat, Unsat };

  /// Allocates a fresh variable and returns its index.
  BVar newVar();

  /// Adds a clause (disjunction of \p Lits). Returns false if the clause
  /// makes the formula trivially unsatisfiable (empty after simplification
  /// at level 0).
  bool addClause(std::vector<Lit> Lits);

  /// Solves the current clause set.
  Result solve() { return solve({}); }

  /// Solves the current clause set under \p Assumptions (literals assumed
  /// true for this call only). Learned clauses are retained across calls --
  /// they are implied by the clause set alone, never by the assumptions.
  /// After Unsat, failedAssumptions() is the responsible assumption subset.
  Result solve(const std::vector<Lit> &Assumptions);

  /// After solve(Assumptions) returned Unsat: a subset A' of the assumptions
  /// such that the clause set conjoined with A' is unsatisfiable. Empty when
  /// the clause set is unsatisfiable on its own.
  const std::vector<Lit> &failedAssumptions() const { return FailedAssumps; }

  /// Installs a cooperative cancellation token (nullptr to clear). The
  /// search loop polls it at every conflict and decision and aborts by
  /// throwing support::CancelledError; the solver is left in a consistent
  /// state (the next solve()/addClause() backtracks to level 0 first).
  void setCancellation(const support::CancellationToken *T) { Cancel = T; }

  /// Value of \p V in the satisfying assignment (valid after Sat).
  LBool value(BVar V) const { return Assigns[V]; }

  size_t numVars() const { return Assigns.size(); }
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }

private:
  struct Clause {
    std::vector<Lit> Lits;
  };
  struct Watcher {
    uint32_t ClauseIdx;
    Lit Blocker;
  };

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by literal
  std::vector<LBool> Assigns;                // indexed by variable
  std::vector<uint32_t> Levels;              // decision level per variable
  std::vector<int32_t> Reasons;              // clause idx or -1, per variable
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLims; // trail size at each decision level
  size_t PropHead = 0;

  std::vector<double> Activity;
  double ActivityInc = 1.0;
  std::vector<bool> SavedPhase;
  std::vector<bool> Seen; // scratch for conflict analysis

  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  bool UnsatAtLevel0 = false;
  std::vector<Lit> FailedAssumps;
  const support::CancellationToken *Cancel = nullptr;

  uint32_t level() const { return static_cast<uint32_t>(TrailLims.size()); }
  LBool valueLit(Lit L) const;
  void enqueue(Lit L, int32_t Reason);
  int32_t propagate(); // returns conflicting clause idx or -1
  void analyze(int32_t ConflictIdx, std::vector<Lit> &Learnt,
               uint32_t &BackLevel);
  void analyzeFinal(Lit P);
  void backtrack(uint32_t ToLevel);
  void bumpVar(BVar V);
  void decayActivity();
  Lit pickBranchLit();
  void attachClause(uint32_t Idx);
};

/// Luby restart sequence value for index \p I (1-based).
uint64_t lubySequence(uint64_t I);

} // namespace abdiag::sat

#endif // ABDIAG_SMT_SAT_H
