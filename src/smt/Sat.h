//===- smt/Sat.h - CDCL propositional SAT solver ----------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver used as the boolean engine
/// of the lazy DPLL(T) SMT loop. Features: two-watched-literal propagation
/// over a contiguous clause arena (inline headers, no per-clause heap
/// allocation), first-UIP conflict analysis with non-chronological
/// backjumping, EVSIDS branching through an indexed binary max-heap with
/// lazy re-insertion on backtrack, phase saving, Luby restarts, LBD
/// ("glue") tracking with periodic learned-clause-database reduction, and
/// assumption-based incremental solving: solve(Assumptions) decides the
/// clause set under a temporary set of assumed literals, keeps every
/// original clause and every *kept* learned clause live across calls, and
/// on Unsat reports the subset of assumptions responsible
/// (failedAssumptions()).
///
/// Clause-database reduction keeps glue clauses (LBD <= 2), binary
/// clauses, reason clauses of current assignments, and the most active
/// half of the rest; the arena is compacted in place afterwards. Clauses
/// added through addClause() are permanent -- the DPLL(T) loop adds
/// theory-valid blocking clauses that must never be forgotten, or the
/// boolean enumeration could repeat a refuted model.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_SAT_H
#define ABDIAG_SMT_SAT_H

#include "support/Cancellation.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace abdiag::sat {

/// Boolean variable index.
using BVar = uint32_t;

/// Literal encoding: variable * 2 + (1 if negated).
using Lit = uint32_t;

inline Lit mkLit(BVar V, bool Neg = false) { return V * 2 + (Neg ? 1 : 0); }
inline BVar litVar(Lit L) { return L >> 1; }
inline bool litNeg(Lit L) { return L & 1; }
inline Lit litNot(Lit L) { return L ^ 1; }

/// Three-valued assignment.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/// Reference to a clause: word offset of its header in the arena.
using CRef = uint32_t;
inline constexpr CRef InvalidCRef = UINT32_MAX;

/// The CDCL solver.
class SatSolver {
public:
  enum class Result { Sat, Unsat };

  /// Allocates a fresh variable and returns its index.
  BVar newVar();

  /// Adds a (permanent) clause -- the disjunction of \p Lits. Returns
  /// false if the clause makes the formula trivially unsatisfiable (empty
  /// after simplification at level 0).
  bool addClause(std::vector<Lit> Lits);

  /// Solves the current clause set.
  Result solve() { return solve({}); }

  /// Solves the current clause set under \p Assumptions (literals assumed
  /// true for this call only). Learned clauses are retained across calls --
  /// they are implied by the clause set alone, never by the assumptions.
  /// After Unsat, failedAssumptions() is the responsible assumption subset.
  Result solve(const std::vector<Lit> &Assumptions);

  /// After solve(Assumptions) returned Unsat: a subset A' of the assumptions
  /// such that the clause set conjoined with A' is unsatisfiable. Empty when
  /// the clause set is unsatisfiable on its own.
  const std::vector<Lit> &failedAssumptions() const { return FailedAssumps; }

  /// Installs a cooperative cancellation token (nullptr to clear). The
  /// search loop polls it at every conflict and decision and aborts by
  /// throwing support::CancelledError; the solver is left in a consistent
  /// state (the next solve()/addClause() backtracks to level 0 first).
  void setCancellation(const support::CancellationToken *T) { Cancel = T; }

  /// Value of \p V in the satisfying assignment (valid after Sat).
  LBool value(BVar V) const { return Assigns[V]; }

  size_t numVars() const { return Assigns.size(); }
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numRestarts() const { return Restarts; }
  /// Learned clauses ever created (including later-reduced ones).
  uint64_t numLearned() const { return Learned; }
  /// Learned clauses deleted by clause-database reduction.
  uint64_t numReduced() const { return Reduced; }
  /// Largest LBD ("glue") of any clause learned so far.
  uint32_t maxLbd() const { return MaxLbd; }

  /// Disables/enables periodic learned-clause-database reduction
  /// (differential testing knob; on by default).
  void setClauseReduction(bool On) { ReduceEnabled = On; }

  /// Switches between the VSIDS order heap (default) and a reference
  /// linear activity scan for decisions (differential testing knob; both
  /// must produce identical verdicts).
  void setUseOrderHeap(bool On) { UseOrderHeap = On; }

private:
  // Clause layout in the arena, in 32-bit words:
  //   [0] size << 2 | learned << 1 | deleted
  //   [1] LBD (learned clauses; 0 for problem clauses)
  //   [2] activity (float bits; learned clauses only)
  //   [3..3+size) literals
  static constexpr uint32_t HeaderWords = 3;

  struct Watcher {
    CRef Ref;
    Lit Blocker;
  };

  std::vector<uint32_t> Arena;
  std::vector<CRef> Learnts; // live learned clauses, for reduction
  std::vector<std::vector<Watcher>> Watches; // indexed by literal
  std::vector<LBool> Assigns;                // indexed by variable
  std::vector<uint32_t> Levels;              // decision level per variable
  std::vector<CRef> Reasons;                 // reason clause per variable
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLims; // trail size at each decision level
  size_t PropHead = 0;

  std::vector<double> Activity;
  double ActivityInc = 1.0;
  double ClauseActivityInc = 1.0;
  std::vector<bool> SavedPhase;
  std::vector<bool> Seen;          // scratch for conflict analysis
  std::vector<uint64_t> LevelSeen; // scratch stamps for LBD computation
  uint64_t LbdStamp = 0;

  // VSIDS order heap: Heap holds variable indices as a binary max-heap on
  // Activity; HeapPos[V] is V's index in Heap or -1.
  std::vector<BVar> Heap;
  std::vector<int32_t> HeapPos;
  bool UseOrderHeap = true;

  bool ReduceEnabled = true;
  uint64_t ConflictsSinceReduce = 0;
  uint64_t ReduceInterval = 2000;

  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Restarts = 0;
  uint64_t Learned = 0;
  uint64_t Reduced = 0;
  uint32_t MaxLbd = 0;
  bool UnsatAtLevel0 = false;
  std::vector<Lit> FailedAssumps;
  const support::CancellationToken *Cancel = nullptr;

  // Arena accessors.
  uint32_t clauseSize(CRef C) const { return Arena[C] >> 2; }
  bool clauseLearned(CRef C) const { return Arena[C] & 2; }
  bool clauseDeleted(CRef C) const { return Arena[C] & 1; }
  uint32_t clauseLbd(CRef C) const { return Arena[C + 1]; }
  float clauseActivity(CRef C) const;
  void setClauseActivity(CRef C, float A);
  Lit *clauseLits(CRef C) { return &Arena[C + HeaderWords]; }
  const Lit *clauseLits(CRef C) const { return &Arena[C + HeaderWords]; }
  CRef allocClause(const std::vector<Lit> &Lits, bool IsLearned,
                   uint32_t Lbd);

  uint32_t level() const { return static_cast<uint32_t>(TrailLims.size()); }
  LBool valueLit(Lit L) const;
  void enqueue(Lit L, CRef Reason);
  CRef propagate(); // returns conflicting clause or InvalidCRef
  void analyze(CRef Conflict, std::vector<Lit> &Learnt, uint32_t &BackLevel,
               uint32_t &Lbd);
  void analyzeFinal(Lit P);
  void backtrack(uint32_t ToLevel);
  void bumpVar(BVar V);
  void bumpClause(CRef C);
  void decayActivity();
  uint32_t computeLbd(const std::vector<Lit> &Lits);
  Lit pickBranchLit();
  void attachClause(CRef C);
  void reduceDB();

  // Order-heap primitives. Ties break toward the smaller variable index so
  // the heap pops the exact variable a linear max-activity scan would find
  // (first maximum wins there) -- the heap changes decision cost, never the
  // decision sequence.
  bool heapLess(BVar A, BVar B) const {
    return Activity[A] < Activity[B] ||
           (Activity[A] == Activity[B] && A > B);
  }
  void heapSwap(size_t I, size_t K);
  void heapUp(size_t I);
  void heapDown(size_t I);
  void heapInsert(BVar V);
  BVar heapPop();
};

/// Luby restart sequence value for index \p I (1-based).
uint64_t lubySequence(uint64_t I);

} // namespace abdiag::sat

#endif // ABDIAG_SMT_SAT_H
