//===- smt/Simplify.cpp - Semantic formula simplification -------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Simplify.h"

#include "smt/FormulaOps.h"

#include <cassert>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

/// Upper bound on formula size for the (solver-heavy) semantic pass; larger
/// formulas are returned after structural simplification only.
constexpr size_t MaxSemanticAtoms = 600;

const Formula *simp(DecisionProcedure &S, const Formula *F, const Formula *Ctx) {
  FormulaManager &M = S.manager();
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return F;
  case FormulaKind::Atom:
    if (S.entails(Ctx, F))
      return M.getTrue();
    if (S.entails(Ctx, M.mkNot(F)))
      return M.getFalse();
    return F;
  case FormulaKind::And: {
    std::vector<const Formula *> Kids(F->kids().begin(), F->kids().end());
    for (size_t I = 0; I < Kids.size(); ++I) {
      // Context for kid I: the critical constraint plus the other conjuncts
      // (in their current, possibly simplified form).
      std::vector<const Formula *> Others{Ctx};
      for (size_t J = 0; J < Kids.size(); ++J)
        if (J != I)
          Others.push_back(Kids[J]);
      const Formula *KidCtx = M.mkAnd(std::move(Others));
      if (S.entails(KidCtx, Kids[I])) {
        Kids[I] = M.getTrue(); // redundant conjunct
        continue;
      }
      Kids[I] = simp(S, Kids[I], KidCtx);
    }
    return M.mkAnd(std::move(Kids));
  }
  case FormulaKind::Or: {
    std::vector<const Formula *> Kids(F->kids().begin(), F->kids().end());
    for (size_t I = 0; I < Kids.size(); ++I) {
      // A disjunct inconsistent with the context contributes nothing.
      if (!S.isSat(M.mkAnd(Ctx, Kids[I]))) {
        Kids[I] = M.getFalse();
        continue;
      }
      // Context for kid I assumes the other disjuncts are false.
      std::vector<const Formula *> Others{Ctx};
      for (size_t J = 0; J < Kids.size(); ++J)
        if (J != I)
          Others.push_back(M.mkNot(Kids[J]));
      const Formula *KidCtx = M.mkAnd(std::move(Others));
      if (S.entails(KidCtx, Kids[I]))
        return M.getTrue(); // the whole disjunction holds under Ctx
      Kids[I] = simp(S, Kids[I], KidCtx);
    }
    return M.mkOr(std::move(Kids));
  }
  }
  assert(false && "unhandled formula kind");
  return F;
}

} // namespace

const Formula *abdiag::smt::simplifyModulo(DecisionProcedure &S, const Formula *F,
                                           const Formula *Critical) {
  if (atomCount(F) > MaxSemanticAtoms)
    return F;
  // Under an unsatisfiable critical constraint every formula is equivalent;
  // leave the input unchanged rather than collapsing it arbitrarily.
  if (!S.isSat(Critical))
    return F;
  // Iterate to a fixpoint; each pass only shrinks the formula, so this
  // terminates quickly.
  for (int Round = 0; Round < 8; ++Round) {
    const Formula *Next = simp(S, F, Critical);
    if (Next == F)
      break;
    F = Next;
  }
  return F;
}

const Formula *abdiag::smt::simplify(DecisionProcedure &S, const Formula *F) {
  return simplifyModulo(S, F, S.manager().getTrue());
}
