//===- smt/Simplify.h - Semantic formula simplification ---------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simplification of a formula modulo a *critical constraint*, in the style
/// of "Small Formulas for Large Programs: On-line Constraint Simplification
/// in Scalable Static Analysis" (Dillig, Dillig, Aiken; SAS 2010), which the
/// paper's Remark after Lemma 3 invokes: abduced obligations may contain
/// conjuncts already implied by the known invariants I, and those are
/// removed by simplifying with I as the critical constraint.
///
/// The simplifier performs recursive redundancy elimination:
///   * a conjunct implied by (critical ∧ remaining conjuncts) is dropped;
///   * a disjunct inconsistent with the critical constraint is dropped;
///   * leaves implied / refuted by the context fold to true / false;
/// and runs to a fixpoint. Each step is an SMT validity check, so the result
/// is equivalent to the input under the critical constraint.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_SIMPLIFY_H
#define ABDIAG_SMT_SIMPLIFY_H

#include "smt/Formula.h"
#include "smt/DecisionProcedure.h"

namespace abdiag::smt {

/// Returns a formula F' with `Critical |= (F <=> F')` that is no larger than
/// \p F (measured in atoms) and usually much smaller.
const Formula *simplifyModulo(DecisionProcedure &S, const Formula *F,
                              const Formula *Critical);

/// Simplification with a trivially true critical constraint.
const Formula *simplify(DecisionProcedure &S, const Formula *F);

} // namespace abdiag::smt

#endif // ABDIAG_SMT_SIMPLIFY_H
