//===- smt/Solver.cpp - Lazy DPLL(T) SMT solver for LIA ---------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"
#include "smt/LiaSolver.h"
#include "smt/Sat.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>
#include <cstdio>
#include <cstdlib>

using namespace abdiag;
using namespace abdiag::smt;

const Formula *Solver::lowerForSolver(
    const Formula *F,
    std::unordered_map<const Formula *, const Formula *> &Memo) {
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  const Formula *R = F;
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    break;
  case FormulaKind::Atom: {
    const LinearExpr &E = F->expr();
    switch (F->rel()) {
    case AtomRel::Le:
    case AtomRel::Div:
    case AtomRel::NDiv:
      // Handled natively by the theory solver.
      break;
    case AtomRel::Eq:
      R = M.mkAnd(M.mkAtom(AtomRel::Le, E),
                  M.mkAtom(AtomRel::Le, E.negated()));
      break;
    case AtomRel::Ne:
      R = M.mkOr(M.mkAtom(AtomRel::Le, E.addConst(1)),
                 M.mkAtom(AtomRel::Le, E.negated().addConst(1)));
      break;
    }
    break;
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<const Formula *> Kids;
    Kids.reserve(F->kids().size());
    for (const Formula *K : F->kids())
      Kids.push_back(lowerForSolver(K, Memo));
    R = F->isAnd() ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
    break;
  }
  }
  Memo.emplace(F, R);
  return R;
}

namespace {

/// A positive theory literal: one of E <= 0, d | E, d ∤ E.
struct TheoryLit {
  AtomRel Rel;
  LinearExpr Expr;
  int64_t Divisor = 0; // for Div/NDiv
};

/// Builds the positive theory literal asserted by assigning \p AtomNode the
/// boolean value \p Value.
TheoryLit literalFor(const Formula *AtomNode, bool Value) {
  TheoryLit L;
  if (AtomNode->rel() == AtomRel::Le) {
    L.Rel = AtomRel::Le;
    // ¬(E <= 0)  <=>  1 - E <= 0.
    L.Expr = Value ? AtomNode->expr()
                   : AtomNode->expr().negated().addConst(1);
    return L;
  }
  assert((AtomNode->rel() == AtomRel::Div ||
          AtomNode->rel() == AtomRel::NDiv) &&
         "Eq/Ne atoms must be lowered before theory extraction");
  bool IsDiv = (AtomNode->rel() == AtomRel::Div) == Value;
  L.Rel = IsDiv ? AtomRel::Div : AtomRel::NDiv;
  L.Expr = AtomNode->expr();
  L.Divisor = AtomNode->divisor();
  return L;
}

/// Decides a conjunction of theory literals over the integers.
///
/// Divisibility literals are handled by residue enumeration: with
/// delta = lcm of all moduli and Vd the variables occurring in divisibility
/// expressions, every model assigns each v in Vd some residue mod delta.
/// For each residue vector consistent with the divisibility literals, the
/// substitution v := delta * k_v + r_v turns the remaining Le rows into a
/// pure linear system, decided by simplex + branch-and-bound (with the
/// complete Cooper model finder as a budget fallback). Complete because the
/// residue vectors partition all models.
class TheoryChecker {
  FormulaManager &M;
  Solver::Stats &S;
  /// Cached quotient variable per (substituted variable): reused across
  /// checks to keep the variable table from growing per query.
  std::unordered_map<VarId, VarId> &QuotientVars;

public:
  TheoryChecker(FormulaManager &M, Solver::Stats &S,
                std::unordered_map<VarId, VarId> &QuotientVars)
      : M(M), S(S), QuotientVars(QuotientVars) {}

  bool check(const std::vector<TheoryLit> &Lits, Model *Out) {
    ++S.TheoryChecks;
    std::vector<LinearExpr> Rows;
    std::vector<const TheoryLit *> Divs;
    for (const TheoryLit &L : Lits) {
      if (L.Rel == AtomRel::Le)
        Rows.push_back(L.Expr);
      else
        Divs.push_back(&L);
    }
    if (Divs.empty())
      return checkRows(Rows, Out);

    // Residue enumeration setup.
    int64_t Delta = 1;
    std::set<VarId> VdSet;
    for (const TheoryLit *D : Divs) {
      Delta = lcm64(Delta, D->Divisor);
      D->Expr.forEachVar([&](VarId V) { VdSet.insert(V); });
    }
    std::vector<VarId> Vd(VdSet.begin(), VdSet.end());
    // Combinatorial guard; beyond this, fall back to the complete finder.
    double Combos = 1;
    for (size_t I = 0; I < Vd.size(); ++I)
      Combos *= static_cast<double>(Delta);
    if (Combos > 50000)
      return cooperFallback(Lits, Out);

    std::vector<int64_t> Residues(Vd.size(), 0);
    while (true) {
      if (residuesSatisfyDivs(Divs, Vd, Residues) &&
          checkWithResidues(Rows, Vd, Residues, Delta, Out))
        return true;
      // Odometer step.
      size_t I = 0;
      while (I < Vd.size() && ++Residues[I] == Delta) {
        Residues[I] = 0;
        ++I;
      }
      if (I == Vd.size())
        return false;
    }
  }

private:
  bool checkRows(const std::vector<LinearExpr> &Rows, Model *Out) {
    Model Local;
    LiaStatus St = solveLiaConjunction(Rows, &Local);
    if (St == LiaStatus::ResourceLimit) {
      ++S.CooperFallbacks;
      std::vector<const Formula *> Atoms;
      Atoms.reserve(Rows.size());
      for (const LinearExpr &E : Rows)
        Atoms.push_back(M.mkAtom(AtomRel::Le, E));
      Local.clear();
      if (!solveAtomConjunction(M, Atoms, Local))
        return false;
    } else if (St == LiaStatus::Unsat) {
      return false;
    }
    if (Out)
      *Out = std::move(Local);
    return true;
  }

  static bool residuesSatisfyDivs(const std::vector<const TheoryLit *> &Divs,
                                  const std::vector<VarId> &Vd,
                                  const std::vector<int64_t> &Residues) {
    for (const TheoryLit *D : Divs) {
      int64_t Val = D->Expr.constant();
      for (const auto &[V, C] : D->Expr.terms()) {
        size_t Idx = static_cast<size_t>(
            std::lower_bound(Vd.begin(), Vd.end(), V) - Vd.begin());
        Val = checkedAdd(Val, checkedMul(C, Residues[Idx]));
      }
      bool Divides = floorMod(Val, D->Divisor) == 0;
      if (Divides != (D->Rel == AtomRel::Div))
        return false;
    }
    return true;
  }

  bool checkWithResidues(const std::vector<LinearExpr> &Rows,
                         const std::vector<VarId> &Vd,
                         const std::vector<int64_t> &Residues, int64_t Delta,
                         Model *Out) {
    // Substitute v := Delta * k_v + r_v in all Le rows.
    std::vector<LinearExpr> Sub = Rows;
    for (size_t I = 0; I < Vd.size(); ++I) {
      auto QIt = QuotientVars.find(Vd[I]);
      if (QIt == QuotientVars.end())
        QIt = QuotientVars
                  .emplace(Vd[I], M.vars().freshAux(
                                      "quot_" + M.vars().name(Vd[I])))
                  .first;
      LinearExpr Repl =
          LinearExpr::variable(QIt->second, Delta).addConst(Residues[I]);
      for (LinearExpr &Row : Sub)
        Row = Row.substituted(Vd[I], Repl);
    }
    Model Local;
    if (!checkRows(Sub, &Local))
      return false;
    if (Out) {
      *Out = Local;
      for (size_t I = 0; I < Vd.size(); ++I) {
        VarId K = QuotientVars.at(Vd[I]);
        int64_t KV = Local.count(K) ? Local.at(K) : 0;
        (*Out)[Vd[I]] = checkedAdd(checkedMul(Delta, KV), Residues[I]);
      }
    }
    return true;
  }

  /// Complete fallback: hand the whole conjunction to the DFS Cooper solver.
  bool cooperFallback(const std::vector<TheoryLit> &Lits, Model *Out) {
    ++S.CooperFallbacks;
    std::vector<const Formula *> Atoms;
    Atoms.reserve(Lits.size());
    for (const TheoryLit &L : Lits)
      Atoms.push_back(M.mkAtom(L.Rel, L.Expr, L.Divisor));
    Model Local;
    if (!solveAtomConjunction(M, Atoms, Local))
      return false;
    if (Out)
      *Out = std::move(Local);
    return true;
  }
};

} // namespace

bool Solver::isSat(const Formula *F, Model *Out) {
  ++S.Queries;
  if (Out)
    Out->clear();
  if (F->isTrue())
    return true;
  if (F->isFalse())
    return false;

  std::unordered_map<const Formula *, const Formula *> Memo;
  const Formula *Low = lowerForSolver(F, Memo);
  if (Low->isTrue())
    return true;
  if (Low->isFalse())
    return false;

  std::unordered_map<VarId, VarId> QuotientVars;
  TheoryChecker Theory(M, S, QuotientVars);

  auto FillModel = [&](const Model &Candidate) {
    if (!Out)
      return;
    for (VarId V : freeVars(F)) {
      auto MIt = Candidate.find(V);
      (*Out)[V] = MIt == Candidate.end() ? 0 : MIt->second;
    }
  };

  // Fast path: a pure conjunction of atoms needs no boolean search.
  bool PureConj =
      Low->isAtom() ||
      (Low->isAnd() && std::all_of(Low->kids().begin(), Low->kids().end(),
                                   [](const Formula *K) { return K->isAtom(); }));
  if (PureConj) {
    std::vector<TheoryLit> Lits;
    auto AddAtom = [&](const Formula *A) {
      Lits.push_back(literalFor(A, /*Value=*/true));
    };
    if (Low->isAtom()) {
      AddAtom(Low);
    } else {
      for (const Formula *K : Low->kids())
        AddAtom(K);
    }
    Model Candidate;
    if (!Theory.check(Lits, &Candidate))
      return false;
    FillModel(Candidate);
    return true;
  }

  // Tseitin encoding. Every distinct atom gets a boolean variable; every
  // And/Or node gets a definition variable.
  sat::SatSolver Sat;
  std::unordered_map<const Formula *, sat::BVar> AtomVar;
  std::unordered_map<const Formula *, sat::Lit> NodeLit;

  std::function<sat::Lit(const Formula *)> Encode =
      [&](const Formula *N) -> sat::Lit {
    auto It = NodeLit.find(N);
    if (It != NodeLit.end())
      return It->second;
    sat::Lit L;
    if (N->isAtom()) {
      auto AIt = AtomVar.find(N);
      sat::BVar V = AIt == AtomVar.end() ? Sat.newVar() : AIt->second;
      if (AIt == AtomVar.end())
        AtomVar.emplace(N, V);
      L = sat::mkLit(V);
    } else {
      assert((N->isAnd() || N->isOr()) && "constants folded earlier");
      std::vector<sat::Lit> KidLits;
      KidLits.reserve(N->kids().size());
      for (const Formula *K : N->kids())
        KidLits.push_back(Encode(K));
      sat::BVar V = Sat.newVar();
      L = sat::mkLit(V);
      if (N->isAnd()) {
        // V <-> AND kids: (¬V ∨ k_i) for all i; (V ∨ ¬k_1 ∨ ... ∨ ¬k_n).
        std::vector<sat::Lit> Big{L};
        for (sat::Lit KL : KidLits) {
          Sat.addClause({sat::litNot(L), KL});
          Big.push_back(sat::litNot(KL));
        }
        Sat.addClause(std::move(Big));
      } else {
        std::vector<sat::Lit> Big{sat::litNot(L)};
        for (sat::Lit KL : KidLits) {
          Sat.addClause({L, sat::litNot(KL)});
          Big.push_back(KL);
        }
        Sat.addClause(std::move(Big));
      }
    }
    NodeLit.emplace(N, L);
    return L;
  };

  sat::Lit Root = Encode(Low);
  Sat.addClause({Root});

  while (true) {
    if (Sat.solve() == sat::SatSolver::Result::Unsat)
      return false;
    // Gather asserted theory literals from the boolean model.
    std::vector<TheoryLit> Lits;
    std::vector<sat::Lit> LitOrigins;
    for (const auto &[AtomNode, BV] : AtomVar) {
      sat::LBool Val = Sat.value(BV);
      assert(Val != sat::LBool::Undef && "full model expected");
      bool B = Val == sat::LBool::True;
      Lits.push_back(literalFor(AtomNode, B));
      LitOrigins.push_back(sat::mkLit(BV, /*Neg=*/!B));
    }
    Model Candidate;
    if (Theory.check(Lits, &Candidate)) {
      FillModel(Candidate);
      return true;
    }
    // Theory conflict: minimize by deletion, then block.
    ++S.TheoryConflicts;
    std::vector<size_t> Core(Lits.size());
    for (size_t I = 0; I < Core.size(); ++I)
      Core[I] = I;
    for (size_t I = 0; I < Core.size();) {
      std::vector<TheoryLit> SubLits;
      SubLits.reserve(Core.size() - 1);
      for (size_t K = 0; K < Core.size(); ++K)
        if (K != I)
          SubLits.push_back(Lits[Core[K]]);
      if (!Theory.check(SubLits, nullptr))
        Core.erase(Core.begin() + I);
      else
        ++I;
    }
    std::vector<sat::Lit> Block;
    Block.reserve(Core.size());
    for (size_t I : Core)
      Block.push_back(sat::litNot(LitOrigins[I]));
    if (!Sat.addClause(std::move(Block)))
      return false;
  }
}
