//===- smt/Solver.cpp - Lazy DPLL(T) SMT solver for LIA ---------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"
#include "smt/LiaSolver.h"
#include "smt/Sat.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <unordered_set>
#include <cstdio>
#include <cstdlib>

using namespace abdiag;
using namespace abdiag::smt;

void Solver::setCaching(bool On) {
  Caching = On;
  if (!On) {
    Cache.clear();
    Qe.Exists.clear();
  }
}

const Formula *Solver::eliminateForallCached(const Formula *F,
                                             const std::vector<VarId> &Xs) {
  if (!Caching)
    return eliminateForall(M, F, Xs, nullptr, Cancel);
  uint64_t H0 = Qe.Hits, M0 = Qe.Misses;
  const Formula *R = eliminateForall(M, F, Xs, &Qe, Cancel);
  S.QeCacheHits += Qe.Hits - H0;
  S.QeCacheMisses += Qe.Misses - M0;
  return R;
}

const Formula *Solver::lowerForSolver(
    const Formula *F,
    std::unordered_map<const Formula *, const Formula *> &Memo) {
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  const Formula *R = F;
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    break;
  case FormulaKind::Atom: {
    const LinearExpr &E = F->expr();
    switch (F->rel()) {
    case AtomRel::Le:
    case AtomRel::Div:
    case AtomRel::NDiv:
      // Handled natively by the theory solver.
      break;
    case AtomRel::Eq:
      R = M.mkAnd(M.mkAtom(AtomRel::Le, E),
                  M.mkAtom(AtomRel::Le, E.negated()));
      break;
    case AtomRel::Ne:
      R = M.mkOr(M.mkAtom(AtomRel::Le, E.addConst(1)),
                 M.mkAtom(AtomRel::Le, E.negated().addConst(1)));
      break;
    }
    break;
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<const Formula *> Kids;
    Kids.reserve(F->kids().size());
    for (const Formula *K : F->kids())
      Kids.push_back(lowerForSolver(K, Memo));
    R = F->isAnd() ? M.mkAnd(std::move(Kids)) : M.mkOr(std::move(Kids));
    break;
  }
  }
  Memo.emplace(F, R);
  return R;
}

namespace {

/// A positive theory literal: one of E <= 0, d | E, d ∤ E.
struct TheoryLit {
  AtomRel Rel;
  LinearExpr Expr;
  int64_t Divisor = 0; // for Div/NDiv
};

/// Accumulates the SAT-core counter deltas produced inside a scope into the
/// solver-level stats. Session SAT solvers are long-lived with cumulative
/// counters, so per-check contributions must be windowed, not added
/// wholesale; RAII covers every return path including cancellation.
struct SatStatsScope {
  sat::SatSolver &Sat;
  SolverStats &S;
  uint64_t Restarts0, Learned0, Reduced0;

  SatStatsScope(sat::SatSolver &Sat, SolverStats &S)
      : Sat(Sat), S(S), Restarts0(Sat.numRestarts()),
        Learned0(Sat.numLearned()), Reduced0(Sat.numReduced()) {}
  ~SatStatsScope() {
    S.SatRestarts += Sat.numRestarts() - Restarts0;
    S.SatLearned += Sat.numLearned() - Learned0;
    S.SatReduced += Sat.numReduced() - Reduced0;
    S.SatMaxLbd = std::max<uint64_t>(S.SatMaxLbd, Sat.maxLbd());
  }
};

/// A persistent incremental-simplex context shared by successive theory
/// checks. Structural columns are allocated per variable on first sight;
/// every distinct (gcd-normalized) row term vector gets one slack column
/// whose *bounds* are what an individual check asserts inside a push/pop
/// scope -- rows with the same terms but different constants share a slack.
/// The warm basis and assignment survive across checks (pop only relaxes
/// bounds), so repeated near-identical conjunctions -- the MSA subset
/// search, residue enumeration (identical terms, shifted constants), and
/// minimizeTheoryCore's deletion probes -- cost a few repair pivots instead
/// of a from-scratch tableau rebuild and re-solve.
struct SessionTableau {
  IncrementalSimplex Sx;
  std::unordered_map<VarId, uint32_t> ColOf;
  std::vector<VarId> VarOfCol; // structural columns only, index = column
  std::map<std::vector<std::pair<uint32_t, int64_t>>, uint32_t> SlackOf;

  uint32_t colFor(VarId V) {
    auto It = ColOf.find(V);
    if (It != ColOf.end())
      return It->second;
    uint32_t C = Sx.addVar();
    ColOf.emplace(V, C);
    if (VarOfCol.size() <= C)
      VarOfCol.resize(C + 1);
    VarOfCol[C] = V;
    return C;
  }
};

/// Builds the positive theory literal asserted by assigning \p AtomNode the
/// boolean value \p Value.
TheoryLit literalFor(const Formula *AtomNode, bool Value) {
  TheoryLit L;
  if (AtomNode->rel() == AtomRel::Le) {
    L.Rel = AtomRel::Le;
    // ¬(E <= 0)  <=>  1 - E <= 0.
    L.Expr = Value ? AtomNode->expr()
                   : AtomNode->expr().negated().addConst(1);
    return L;
  }
  assert((AtomNode->rel() == AtomRel::Div ||
          AtomNode->rel() == AtomRel::NDiv) &&
         "Eq/Ne atoms must be lowered before theory extraction");
  bool IsDiv = (AtomNode->rel() == AtomRel::Div) == Value;
  L.Rel = IsDiv ? AtomRel::Div : AtomRel::NDiv;
  L.Expr = AtomNode->expr();
  L.Divisor = AtomNode->divisor();
  return L;
}

/// Decides a conjunction of theory literals over the integers.
///
/// Divisibility literals are handled by residue enumeration: with
/// delta = lcm of all moduli and Vd the variables occurring in divisibility
/// expressions, every model assigns each v in Vd some residue mod delta.
/// For each residue vector consistent with the divisibility literals, the
/// substitution v := delta * k_v + r_v turns the remaining Le rows into a
/// pure linear system, decided by simplex + branch-and-bound (with the
/// complete Cooper model finder as a budget fallback). Complete because the
/// residue vectors partition all models.
class TheoryChecker {
  FormulaManager &M;
  Solver::Stats &S;
  /// Cached quotient variable per (substituted variable): reused across
  /// checks to keep the variable table from growing per query.
  std::unordered_map<VarId, VarId> &QuotientVars;
  /// The incremental tableau every Le conjunction is decided on.
  SessionTableau &Tab;
  /// Per-check total pivot budget (Options::SimplexMaxPivots).
  int MaxPivots;
  const support::CancellationToken *Cancel;

public:
  TheoryChecker(FormulaManager &M, Solver::Stats &S,
                std::unordered_map<VarId, VarId> &QuotientVars,
                SessionTableau &Tab, int MaxPivots,
                const support::CancellationToken *Cancel = nullptr)
      : M(M), S(S), QuotientVars(QuotientVars), Tab(Tab),
        MaxPivots(MaxPivots), Cancel(Cancel) {}

  bool check(const std::vector<TheoryLit> &Lits, Model *Out) {
    support::pollCancellation(Cancel);
    ++S.TheoryChecks;
    std::vector<LinearExpr> Rows;
    std::vector<const TheoryLit *> Divs;
    for (const TheoryLit &L : Lits) {
      if (L.Rel == AtomRel::Le)
        Rows.push_back(L.Expr);
      else
        Divs.push_back(&L);
    }
    if (Divs.empty())
      return checkRows(Rows, Out);

    // Residue enumeration setup.
    int64_t Delta = 1;
    std::set<VarId> VdSet;
    for (const TheoryLit *D : Divs) {
      Delta = lcm64(Delta, D->Divisor);
      D->Expr.forEachVar([&](VarId V) { VdSet.insert(V); });
    }
    std::vector<VarId> Vd(VdSet.begin(), VdSet.end());
    // Combinatorial guard; beyond this, fall back to the complete finder.
    double Combos = 1;
    for (size_t I = 0; I < Vd.size(); ++I)
      Combos *= static_cast<double>(Delta);
    if (Combos > 50000)
      return cooperFallback(Lits, Out);

    std::vector<int64_t> Residues(Vd.size(), 0);
    std::vector<std::vector<int64_t>> Limited;
    bool Done = false;
    while (!Done) {
      if (residuesSatisfyDivs(Divs, Vd, Residues)) {
        switch (checkWithResidues(Rows, Vd, Residues, Delta, defaultConfig(),
                                  Out)) {
        case Tri::Sat:
          return true;
        case Tri::Unsat:
          break;
        case Tri::Limit:
          // Branch-and-bound gave up on this residue class with the cheap
          // budget; queue it for an escalated retry instead of escalating
          // to the Cooper solver on the substituted rows (the
          // v := Delta*k + r substitution scales every coefficient by
          // Delta, and Cooper's per-variable lcm explodes on the scaled
          // system).
          Limited.push_back(Residues);
          break;
        }
      }
      // Odometer step.
      size_t I = 0;
      while (I < Vd.size() && ++Residues[I] == Delta) {
        Residues[I] = 0;
        ++I;
      }
      Done = I == Vd.size();
    }
    // Escalated pass over the undecided residue classes only. If even the
    // big budget is not enough, fall back to the complete Cooper solver on
    // the original (small-coefficient) literals.
    for (const std::vector<int64_t> &Rs : Limited) {
      switch (checkWithResidues(Rows, Vd, Rs, Delta, escalatedConfig(),
                                Out)) {
      case Tri::Sat:
        return true;
      case Tri::Unsat:
        break;
      case Tri::Limit:
        return cooperFallback(Lits, Out);
      }
    }
    return false;
  }

private:
  enum class Tri { Sat, Unsat, Limit };

  LiaConfig defaultConfig() const {
    LiaConfig C;
    C.MaxPivots = MaxPivots;
    return C;
  }

  /// Branch-and-bound budget for the retry pass. The default budget is kept
  /// deliberately small (most checks are trivial); systems that exhaust it
  /// almost always just need more nodes, and any amount of branch-and-bound
  /// is far cheaper than the superexponential Cooper elimination that is the
  /// only remaining fallback. The pivot budget scales with the node budget
  /// (it is a per-query total).
  LiaConfig escalatedConfig() const {
    LiaConfig C;
    C.MaxBranchNodes = 50000;
    C.MaxDepth = 64;
    C.MaxPivots = MaxPivots > INT_MAX / 25 ? INT_MAX : MaxPivots * 25;
    return C;
  }

  bool checkRows(const std::vector<LinearExpr> &Rows, Model *Out) {
    Tri St = tryRows(Rows, Out, defaultConfig());
    if (St == Tri::Limit)
      St = tryRows(Rows, Out, escalatedConfig());
    if (St != Tri::Limit)
      return St == Tri::Sat;
    ++S.CooperFallbacks;
    std::vector<const Formula *> Atoms;
    Atoms.reserve(Rows.size());
    for (const LinearExpr &E : Rows)
      Atoms.push_back(M.mkAtom(AtomRel::Le, E));
    Model Local;
    if (!solveAtomConjunction(M, Atoms, Local, Cancel))
      return false;
    if (Out)
      *Out = std::move(Local);
    return true;
  }

  /// Like checkRows but reports a branch-and-bound budget exhaustion to the
  /// caller instead of escalating to the Cooper solver on \p Rows. Decides
  /// the conjunction on the persistent session tableau: missing slack rows
  /// are added at level 0, this check's bounds are asserted inside a
  /// push/pop scope, and branch-and-bound runs on the warm basis.
  Tri tryRows(const std::vector<LinearExpr> &Rows, Model *Out,
              const LiaConfig &CfgIn) {
    assert(Tab.Sx.numLevels() == 0 && "unbalanced tableau scope");
    // Canonicalize over tableau columns with GCD/bound tightening:
    // sum a_i x_i <= -c tightens to sum (a_i/g) x_i <= floor(-c/g).
    std::vector<LiaColRow> CRows;
    for (const LinearExpr &E : Rows) {
      if (E.isConstant()) {
        if (E.constant() > 0)
          return Tri::Unsat;
        continue;
      }
      int64_t G = E.coeffGcd();
      LiaColRow Row;
      for (const auto &[V, C] : E.terms())
        Row.Terms.emplace_back(Tab.colFor(V), C / G);
      std::sort(Row.Terms.begin(), Row.Terms.end());
      Row.Bound = floorDiv(checkedNeg(E.constant()), G);
      CRows.push_back(std::move(Row));
    }
    // This check's columns, deterministic (sorted = session first-seen).
    std::vector<uint32_t> Cols;
    for (const LiaColRow &Row : CRows)
      for (const auto &[C, A] : Row.Terms)
        Cols.push_back(C);
    std::sort(Cols.begin(), Cols.end());
    Cols.erase(std::unique(Cols.begin(), Cols.end()), Cols.end());
    // Ensure a slack row per distinct term vector (shared across bounds).
    std::vector<uint32_t> Slacks;
    Slacks.reserve(CRows.size());
    for (const LiaColRow &Row : CRows) {
      auto It = Tab.SlackOf.find(Row.Terms);
      if (It == Tab.SlackOf.end())
        It = Tab.SlackOf.emplace(Row.Terms, Tab.Sx.addRow(Row.Terms)).first;
      else
        ++S.TableauReuses;
      Slacks.push_back(It->second);
    }
    SimplexStats SxSt;
    LiaConfig Cfg = CfgIn;
    Cfg.Stats = &SxSt;
    Tab.Sx.push();
    bool Conflict = false;
    for (size_t I = 0; I < CRows.size() && !Conflict; ++I)
      Conflict = !Tab.Sx.assertUpper(Slacks[I], Rational(CRows[I].Bound));
    std::vector<int64_t> Values;
    LiaStatus St = Conflict ? LiaStatus::Unsat
                            : solveIntegerOnTableau(Tab.Sx, Cols, CRows, Cfg,
                                                    Out ? &Values : nullptr);
    Tab.Sx.pop();
    S.SimplexPivots += SxSt.Pivots;
    S.PivotLimitHits += SxSt.PivotLimitHits;
    if (St == LiaStatus::ResourceLimit)
      return Tri::Limit;
    if (St == LiaStatus::Unsat)
      return Tri::Unsat;
    if (Out) {
      Out->clear();
      for (size_t I = 0; I < Cols.size(); ++I)
        (*Out)[Tab.VarOfCol[Cols[I]]] = Values[I];
    }
    return Tri::Sat;
  }

  static bool residuesSatisfyDivs(const std::vector<const TheoryLit *> &Divs,
                                  const std::vector<VarId> &Vd,
                                  const std::vector<int64_t> &Residues) {
    for (const TheoryLit *D : Divs) {
      int64_t Val = D->Expr.constant();
      for (const auto &[V, C] : D->Expr.terms()) {
        size_t Idx = static_cast<size_t>(
            std::lower_bound(Vd.begin(), Vd.end(), V) - Vd.begin());
        Val = checkedAdd(Val, checkedMul(C, Residues[Idx]));
      }
      bool Divides = floorMod(Val, D->Divisor) == 0;
      if (Divides != (D->Rel == AtomRel::Div))
        return false;
    }
    return true;
  }

  Tri checkWithResidues(const std::vector<LinearExpr> &Rows,
                        const std::vector<VarId> &Vd,
                        const std::vector<int64_t> &Residues, int64_t Delta,
                        const LiaConfig &Cfg, Model *Out) {
    // Substitute v := Delta * k_v + r_v in all Le rows.
    std::vector<LinearExpr> Sub = Rows;
    for (size_t I = 0; I < Vd.size(); ++I) {
      auto QIt = QuotientVars.find(Vd[I]);
      if (QIt == QuotientVars.end())
        QIt = QuotientVars
                  .emplace(Vd[I], M.vars().freshAux(
                                      "quot_" + M.vars().name(Vd[I])))
                  .first;
      LinearExpr Repl =
          LinearExpr::variable(QIt->second, Delta).addConst(Residues[I]);
      for (LinearExpr &Row : Sub)
        Row = Row.substituted(Vd[I], Repl);
    }
    Model Local;
    Tri St = tryRows(Sub, &Local, Cfg);
    if (St != Tri::Sat)
      return St;
    if (Out) {
      *Out = Local;
      for (size_t I = 0; I < Vd.size(); ++I) {
        VarId K = QuotientVars.at(Vd[I]);
        int64_t KV = Local.count(K) ? Local.at(K) : 0;
        (*Out)[Vd[I]] = checkedAdd(checkedMul(Delta, KV), Residues[I]);
      }
    }
    return Tri::Sat;
  }

  /// Complete fallback: hand the whole conjunction to the DFS Cooper solver.
  bool cooperFallback(const std::vector<TheoryLit> &Lits, Model *Out) {
    ++S.CooperFallbacks;
    std::vector<const Formula *> Atoms;
    Atoms.reserve(Lits.size());
    for (const TheoryLit &L : Lits)
      Atoms.push_back(M.mkAtom(L.Rel, L.Expr, L.Divisor));
    Model Local;
    if (!solveAtomConjunction(M, Atoms, Local, Cancel))
      return false;
    if (Out)
      *Out = std::move(Local);
    return true;
  }
};

/// Tseitin encoder over one SatSolver: every distinct atom gets a boolean
/// variable; every And/Or node gets a definition variable. Shared by the
/// one-shot isSat path and the incremental Session (where the maps persist
/// across checks so conjuncts are encoded exactly once).
struct TseitinEncoder {
  sat::SatSolver &Sat;
  std::unordered_map<const Formula *, sat::BVar> AtomVar;
  std::unordered_map<const Formula *, sat::Lit> NodeLit;

  explicit TseitinEncoder(sat::SatSolver &Sat) : Sat(Sat) {}

  sat::Lit encode(const Formula *N) {
    auto It = NodeLit.find(N);
    if (It != NodeLit.end())
      return It->second;
    sat::Lit L;
    if (N->isAtom()) {
      auto AIt = AtomVar.find(N);
      sat::BVar V = AIt == AtomVar.end() ? Sat.newVar() : AIt->second;
      if (AIt == AtomVar.end())
        AtomVar.emplace(N, V);
      L = sat::mkLit(V);
    } else {
      assert((N->isAnd() || N->isOr()) && "constants folded earlier");
      std::vector<sat::Lit> KidLits;
      KidLits.reserve(N->kids().size());
      for (const Formula *K : N->kids())
        KidLits.push_back(encode(K));
      sat::BVar V = Sat.newVar();
      L = sat::mkLit(V);
      if (N->isAnd()) {
        // V <-> AND kids: (¬V ∨ k_i) for all i; (V ∨ ¬k_1 ∨ ... ∨ ¬k_n).
        std::vector<sat::Lit> Big{L};
        for (sat::Lit KL : KidLits) {
          Sat.addClause({sat::litNot(L), KL});
          Big.push_back(sat::litNot(KL));
        }
        Sat.addClause(std::move(Big));
      } else {
        std::vector<sat::Lit> Big{sat::litNot(L)};
        for (sat::Lit KL : KidLits) {
          Sat.addClause({L, sat::litNot(KL)});
          Big.push_back(KL);
        }
        Sat.addClause(std::move(Big));
      }
    }
    NodeLit.emplace(N, L);
    return L;
  }
};

/// Deletion-minimizes a theory-inconsistent literal set and returns the
/// surviving indices (an irreducible unsat subset).
std::vector<size_t> minimizeTheoryCore(TheoryChecker &Theory,
                                       const std::vector<TheoryLit> &Lits) {
  std::vector<size_t> Core(Lits.size());
  for (size_t I = 0; I < Core.size(); ++I)
    Core[I] = I;
  for (size_t I = 0; I < Core.size();) {
    std::vector<TheoryLit> SubLits;
    SubLits.reserve(Core.size() - 1);
    for (size_t K = 0; K < Core.size(); ++K)
      if (K != I)
        SubLits.push_back(Lits[Core[K]]);
    if (!Theory.check(SubLits, nullptr))
      Core.erase(Core.begin() + I);
    else
      ++I;
  }
  return Core;
}

} // namespace

bool Solver::isSat(const Formula *F, Model *Out) {
  support::pollCancellation(Cancel);
  ++S.Queries;
  if (Out)
    Out->clear();
  if (F->isTrue())
    return true;
  if (F->isFalse())
    return false;

  if (Caching) {
    auto It = Cache.find(F);
    if (It != Cache.end()) {
      ++S.CacheHits;
      if (Out && It->second.Sat)
        *Out = It->second.M;
      return It->second.Sat;
    }
    ++S.CacheMisses;
  }
  Model Filled;
  bool Res = isSatCore(F, Filled);
  if (Caching)
    Cache.emplace(F, CacheEntry{Res, Filled});
  if (Out && Res)
    *Out = std::move(Filled);
  return Res;
}

bool Solver::isSatCore(const Formula *F, Model &Filled) {
  std::unordered_map<const Formula *, const Formula *> Memo;
  const Formula *Low = lowerForSolver(F, Memo);
  if (Low->isTrue())
    return true;
  if (Low->isFalse())
    return false;

  std::unordered_map<VarId, VarId> QuotientVars;
  // One warm tableau for the whole query: the DPLL(T) enumeration and core
  // minimization probe many near-identical conjunctions over the same atoms.
  SessionTableau Tab;
  TheoryChecker Theory(M, S, QuotientVars, Tab, SimplexMaxPivots, Cancel);

  auto FillModel = [&](const Model &Candidate) {
    for (VarId V : freeVarsVec(F)) {
      auto MIt = Candidate.find(V);
      Filled[V] = MIt == Candidate.end() ? 0 : MIt->second;
    }
  };

  // Fast path: a pure conjunction of atoms needs no boolean search.
  bool PureConj =
      Low->isAtom() ||
      (Low->isAnd() && std::all_of(Low->kids().begin(), Low->kids().end(),
                                   [](const Formula *K) { return K->isAtom(); }));
  if (PureConj) {
    std::vector<TheoryLit> Lits;
    auto AddAtom = [&](const Formula *A) {
      Lits.push_back(literalFor(A, /*Value=*/true));
    };
    if (Low->isAtom()) {
      AddAtom(Low);
    } else {
      for (const Formula *K : Low->kids())
        AddAtom(K);
    }
    Model Candidate;
    if (!Theory.check(Lits, &Candidate))
      return false;
    FillModel(Candidate);
    return true;
  }

  // Tseitin encoding and the lazy DPLL(T) loop.
  sat::SatSolver Sat;
  SatStatsScope SatScope(Sat, S);
  Sat.setCancellation(Cancel);
  TseitinEncoder Enc(Sat);
  sat::Lit Root = Enc.encode(Low);
  Sat.addClause({Root});

  while (true) {
    if (Sat.solve() == sat::SatSolver::Result::Unsat)
      return false;
    // Gather asserted theory literals from the boolean model.
    std::vector<TheoryLit> Lits;
    std::vector<sat::Lit> LitOrigins;
    for (const auto &[AtomNode, BV] : Enc.AtomVar) {
      sat::LBool Val = Sat.value(BV);
      assert(Val != sat::LBool::Undef && "full model expected");
      bool B = Val == sat::LBool::True;
      Lits.push_back(literalFor(AtomNode, B));
      LitOrigins.push_back(sat::mkLit(BV, /*Neg=*/!B));
    }
    Model Candidate;
    if (Theory.check(Lits, &Candidate)) {
      FillModel(Candidate);
      return true;
    }
    // Theory conflict: minimize by deletion, then block.
    ++S.TheoryConflicts;
    std::vector<size_t> Core = minimizeTheoryCore(Theory, Lits);
    std::vector<sat::Lit> Block;
    Block.reserve(Core.size());
    for (size_t I : Core)
      Block.push_back(sat::litNot(LitOrigins[I]));
    if (!Sat.addClause(std::move(Block)))
      return false;
  }
}

//===----------------------------------------------------------------------===//
// Solver::Session -- incremental checks over a persistent SAT solver.
//===----------------------------------------------------------------------===//

struct Solver::Session::Impl {
  /// Guard value for conjuncts that lower to True (nothing to assert).
  static constexpr sat::Lit NoGuard = UINT32_MAX;

  Solver &Slv;
  sat::SatSolver Sat;
  TseitinEncoder Enc{Sat};

  struct Entry {
    sat::Lit Guard = NoGuard;
    std::vector<const Formula *> Atoms; ///< atoms of the lowered conjunct
  };
  std::unordered_map<const Formula *, Entry> Entries;
  std::unordered_map<sat::Lit, const Formula *> GuardFormula;
  /// Known-unsat guard sets (each sorted). Any check whose guard set is a
  /// superset of one of these is unsatisfiable -- formulas are immutable,
  /// so a refuted conjunction stays refuted for the session's lifetime.
  std::vector<std::vector<sat::Lit>> Cores;
  std::vector<const Formula *> LastCore;
  std::unordered_map<const Formula *, const Formula *> LowerMemo;
  std::unordered_map<VarId, VarId> QuotientVars;
  /// Warm simplex tableau persisting across every theory check this
  /// session ever runs (see SessionTableau).
  SessionTableau Tab;

  explicit Impl(Solver &S) : Slv(S) {}

  /// Lazily lowers and guard-encodes \p F: the guard literal implies the
  /// Tseitin root, so F is active exactly when its guard is assumed.
  const Entry &entryFor(const Formula *F) {
    auto It = Entries.find(F);
    if (It != Entries.end())
      return It->second;
    Entry E;
    const Formula *Low = Slv.lowerForSolver(F, LowerMemo);
    if (!Low->isTrue()) {
      E.Guard = sat::mkLit(Sat.newVar());
      if (Low->isFalse()) {
        Sat.addClause({sat::litNot(E.Guard)});
      } else {
        sat::Lit Root = Enc.encode(Low);
        Sat.addClause({sat::litNot(E.Guard), Root});
        E.Atoms = collectAtoms(Low);
      }
      GuardFormula.emplace(E.Guard, F);
    }
    return Entries.emplace(F, std::move(E)).first->second;
  }
};

Solver::Session::Session(Solver &S) : I(std::make_unique<Impl>(S)) {}
Solver::Session::~Session() = default;

const std::vector<const Formula *> &Solver::Session::lastCore() const {
  return I->LastCore;
}

size_t Solver::Session::numCores() const { return I->Cores.size(); }

bool Solver::Session::check(const std::vector<const Formula *> &Conjuncts,
                            Model *Out) {
  Solver &Slv = I->Slv;
  ++Slv.S.Queries;
  ++Slv.S.SessionChecks;
  if (Out)
    Out->clear();
  I->LastCore.clear();

  std::vector<sat::Lit> Guards;
  for (const Formula *F : Conjuncts) {
    const Impl::Entry &E = I->entryFor(F);
    if (E.Guard != Impl::NoGuard)
      Guards.push_back(E.Guard);
  }
  std::sort(Guards.begin(), Guards.end());
  Guards.erase(std::unique(Guards.begin(), Guards.end()), Guards.end());

  // Remembered-core refutation: a superset of a known unsat core is unsat.
  for (const std::vector<sat::Lit> &Core : I->Cores) {
    if (std::includes(Guards.begin(), Guards.end(), Core.begin(),
                      Core.end())) {
      ++Slv.S.CoreSkips;
      for (sat::Lit G : Core)
        I->LastCore.push_back(I->GuardFormula.at(G));
      return false;
    }
  }

  // Atoms relevant to this check, in deterministic order. Only these are
  // theory-checked: atoms of inactive conjuncts may take arbitrary boolean
  // values without affecting the verdict.
  std::vector<const Formula *> Atoms;
  {
    std::unordered_set<const Formula *> SeenAtoms;
    for (const Formula *F : Conjuncts)
      for (const Formula *A : I->Entries.at(F).Atoms)
        if (SeenAtoms.insert(A).second)
          Atoms.push_back(A);
  }

  // Honor whatever token is installed on the owning solver right now (the
  // triage engine swaps tokens per report around a long-lived session-using
  // diagnoser).
  I->Sat.setCancellation(Slv.Cancel);
  SatStatsScope SatScope(I->Sat, Slv.S);
  TheoryChecker Theory(Slv.M, Slv.S, I->QuotientVars, I->Tab,
                       Slv.SimplexMaxPivots, Slv.Cancel);
  while (true) {
    if (I->Sat.solve(Guards) == sat::SatSolver::Result::Unsat) {
      std::vector<sat::Lit> Core = I->Sat.failedAssumptions();
      std::sort(Core.begin(), Core.end());
      for (sat::Lit G : Core)
        I->LastCore.push_back(I->GuardFormula.at(G));
      if (!Core.empty())
        I->Cores.push_back(std::move(Core));
      return false;
    }
    std::vector<TheoryLit> Lits;
    std::vector<sat::Lit> LitOrigins;
    Lits.reserve(Atoms.size());
    LitOrigins.reserve(Atoms.size());
    for (const Formula *A : Atoms) {
      sat::BVar BV = I->Enc.AtomVar.at(A);
      sat::LBool Val = I->Sat.value(BV);
      assert(Val != sat::LBool::Undef && "full model expected");
      bool B = Val == sat::LBool::True;
      Lits.push_back(literalFor(A, B));
      LitOrigins.push_back(sat::mkLit(BV, /*Neg=*/!B));
    }
    Model Candidate;
    if (Theory.check(Lits, &Candidate)) {
      if (Out) {
        for (const Formula *F : Conjuncts) {
          for (VarId V : freeVarsVec(F)) {
            auto MIt = Candidate.find(V);
            (*Out)[V] = MIt == Candidate.end() ? 0 : MIt->second;
          }
        }
      }
      return true;
    }
    // Theory conflict: the blocking clause is theory-valid, so it may be
    // added permanently and keeps pruning later checks.
    ++Slv.S.TheoryConflicts;
    std::vector<size_t> Core = minimizeTheoryCore(Theory, Lits);
    std::vector<sat::Lit> Block;
    Block.reserve(Core.size());
    for (size_t Idx : Core)
      Block.push_back(sat::litNot(LitOrigins[Idx]));
    if (!I->Sat.addClause(std::move(Block)))
      return false;
  }
}
