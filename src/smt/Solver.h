//===- smt/Solver.h - Lazy DPLL(T) SMT solver for LIA -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT entry point used by everything above the formula layer. Decides
/// satisfiability, validity, entailment and equivalence of quantifier-free
/// LIA formulas and produces integer models.
///
/// Architecture (lazy SMT): the formula is lowered to Le-only atoms
/// (equalities, disequalities and divisibility atoms are rewritten, the
/// latter two with fresh auxiliary variables), Tseitin-encoded into the CDCL
/// SAT solver, and full boolean models are checked against the LIA theory
/// solver; minimized theory conflicts are fed back as blocking clauses. When
/// branch-and-bound hits its node budget, the complete Cooper-based model
/// finder decides the conjunction, so the overall procedure is complete.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_SOLVER_H
#define ABDIAG_SMT_SOLVER_H

#include "smt/Formula.h"

#include <cstdint>
#include <unordered_map>

namespace abdiag::smt {

/// An integer model; variables absent from the map are unconstrained and
/// may be read as 0.
using Model = std::unordered_map<VarId, int64_t>;

/// Quantifier-free LIA decision procedures over one FormulaManager.
///
/// The solver is stateless between queries apart from statistics, so a
/// single instance can serve many heterogeneous queries.
class Solver {
public:
  struct Stats {
    uint64_t Queries = 0;          ///< top-level isSat calls
    uint64_t TheoryChecks = 0;     ///< LIA conjunction checks
    uint64_t TheoryConflicts = 0;  ///< blocking clauses learned
    uint64_t CooperFallbacks = 0;  ///< budget-exhausted conjunctions
  };

  explicit Solver(FormulaManager &M) : M(M) {}

  /// True iff \p F has an integer model; fills \p Out (if non-null) with
  /// values for every free variable of F.
  bool isSat(const Formula *F, Model *Out = nullptr);

  /// True iff \p F holds under every assignment.
  bool isValid(const Formula *F) { return !isSat(M.mkNot(F)); }

  /// True iff every model of \p A satisfies \p B.
  bool entails(const Formula *A, const Formula *B) {
    return !isSat(M.mkAnd(A, M.mkNot(B)));
  }

  /// True iff \p A and \p B have the same models.
  bool equivalent(const Formula *A, const Formula *B) {
    return entails(A, B) && entails(B, A);
  }

  FormulaManager &manager() { return M; }
  const Stats &stats() const { return S; }

private:
  FormulaManager &M;
  Stats S;

  const Formula *lowerForSolver(const Formula *F,
                                std::unordered_map<const Formula *,
                                                   const Formula *> &Memo);
};

} // namespace abdiag::smt

#endif // ABDIAG_SMT_SOLVER_H
