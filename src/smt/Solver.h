//===- smt/Solver.h - Lazy DPLL(T) SMT solver for LIA -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT entry point used by everything above the formula layer. Decides
/// satisfiability, validity, entailment and equivalence of quantifier-free
/// LIA formulas and produces integer models.
///
/// Architecture (lazy SMT): the formula is lowered to Le-only atoms
/// (equalities, disequalities and divisibility atoms are rewritten, the
/// latter two with fresh auxiliary variables), Tseitin-encoded into the CDCL
/// SAT solver, and full boolean models are checked against the LIA theory
/// solver; minimized theory conflicts are fed back as blocking clauses. When
/// branch-and-bound hits its node budget, the complete Cooper-based model
/// finder decides the conjunction, so the overall procedure is complete.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_SOLVER_H
#define ABDIAG_SMT_SOLVER_H

#include "smt/Cooper.h"
#include "smt/DecisionProcedure.h"
#include "smt/Formula.h"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

namespace abdiag::smt {

/// Quantifier-free LIA decision procedures over one FormulaManager.
///
/// The solver is stateless between queries apart from statistics and a
/// verdict cache, so a single instance can serve many heterogeneous
/// queries. Because formulas are hash-consed by the manager, the cache is
/// keyed on `const Formula *` directly: pointer equality is structural
/// equality, and entries stay valid for the manager's whole lifetime (nodes
/// are immutable and never freed while the manager lives).
class Solver {
public:
  /// The per-query counter aggregate, shared across backends (see
  /// smt/DecisionProcedure.h); kept as a nested alias for existing users.
  using Stats = SolverStats;

  explicit Solver(FormulaManager &M) : M(M), FormulaBase(M.stats()) {}

  /// True iff \p F has an integer model; fills \p Out (if non-null) with
  /// values for every free variable of F.
  bool isSat(const Formula *F, Model *Out = nullptr);

  /// True iff \p F holds under every assignment.
  bool isValid(const Formula *F) { return !isSat(M.mkNot(F)); }

  /// True iff every model of \p A satisfies \p B.
  bool entails(const Formula *A, const Formula *B) {
    return !isSat(M.mkAnd(A, M.mkNot(B)));
  }

  /// True iff \p A and \p B have the same models.
  bool equivalent(const Formula *A, const Formula *B) {
    return entails(A, B) && entails(B, A);
  }

  FormulaManager &manager() { return M; }

  /// Solver counters plus the owning manager's formula-substrate counters
  /// (as deltas since construction / the last resetStats, so windowed
  /// reporting over a long-lived manager stays meaningful).
  const Stats &stats() const {
    Merged = S;
    const FormulaStats &FS = M.stats();
    Merged.FormulaNodes = FS.NodesInterned - FormulaBase.NodesInterned;
    Merged.FormulaInternHits = FS.InternHits - FormulaBase.InternHits;
    Merged.FormulaInternProbes = FS.InternProbes - FormulaBase.InternProbes;
    Merged.FormulaMemoHits = FS.MemoHits - FormulaBase.MemoHits;
    Merged.FormulaMemoMisses = FS.MemoMisses - FormulaBase.MemoMisses;
    Merged.FormulaSubstPrunes = FS.SubstPrunes - FormulaBase.SubstPrunes;
    Merged.FormulaArenaBytes = FS.ArenaBytes - FormulaBase.ArenaBytes;
    return Merged;
  }

  /// Zeroes every statistics counter (the verdict cache is kept) and
  /// rebases the formula-substrate window on the manager's current totals.
  void resetStats() {
    S = Stats();
    FormulaBase = M.stats();
  }

  /// Installs a cooperative cancellation token (nullptr to clear). While a
  /// token is installed, every potentially long-running loop reachable from
  /// this solver -- the CDCL search (one-shot and Session), Cooper
  /// elimination (including eliminateForallCached), and the complete
  /// conjunction fallback -- polls it and aborts with
  /// support::CancelledError when it expires. The solver remains usable
  /// afterwards: caches only ever contain completed entries.
  void setCancellation(const support::CancellationToken *T) { Cancel = T; }
  const support::CancellationToken *cancellation() const { return Cancel; }

  /// Enables/disables the isSat verdict cache (on by default). Disabling
  /// also drops all cached entries (verdicts and QE memo), so re-enabling
  /// starts cold.
  void setCaching(bool On);
  bool cachingEnabled() const { return Caching; }

  /// Total simplex pivot budget per LIA conjunction check (the escalated
  /// retry pass gets 25x this). Exhaustion counts a
  /// SolverStats::PivotLimitHits and falls through the escalation ladder to
  /// the complete Cooper solver, so the knob trades time for fallback
  /// frequency, never soundness. Values < 1 are clamped to 1.
  void setSimplexMaxPivots(int MaxPivots) {
    SimplexMaxPivots = MaxPivots < 1 ? 1 : MaxPivots;
  }
  int simplexMaxPivots() const { return SimplexMaxPivots; }

  /// Universal quantifier elimination through a memo of single-variable
  /// elimination steps shared across queries (keyed on hash-consed formula
  /// pointers, so entries are sound for the manager's lifetime). With
  /// caching disabled this is plain eliminateForall. The incremental MSA
  /// subset search calls this: subset-lattice neighbours eliminate
  /// near-identical variable sets, so their per-variable chains coincide.
  const Formula *eliminateForallCached(const Formula *F,
                                       const std::vector<VarId> &Xs);

  class Session;

private:
  friend class Session;

  struct CacheEntry {
    bool Sat;
    Model M; ///< filled model over freeVars(F); meaningful when Sat
  };

  FormulaManager &M;
  Stats S;
  mutable Stats Merged;          // scratch for stats(): S + formula window
  FormulaStats FormulaBase;      // manager totals at the last resetStats
  bool Caching = true;
  int SimplexMaxPivots = 20000;
  const support::CancellationToken *Cancel = nullptr;
  std::unordered_map<const Formula *, CacheEntry> Cache;
  QeMemo Qe;

  const Formula *lowerForSolver(const Formula *F,
                                std::unordered_map<const Formula *,
                                                   const Formula *> &Memo);
  bool isSatCore(const Formula *F, Model &Filled);
};

/// An incremental query session over one Solver.
///
/// A session Tseitin-encodes each distinct conjunct formula exactly once
/// into a private SAT solver, guarded by a fresh activation literal, and
/// decides each check() under assumptions -- so learned clauses (boolean
/// and theory lemmas alike) persist across checks, and conjuncts shared by
/// successive queries are never re-encoded. Unsat checks additionally
/// record the failed conjunct subset (an unsat core); any later check whose
/// conjunct set contains a remembered core is refuted without touching the
/// SAT solver. This is the engine behind the MSA subset search, where
/// hundreds of near-identical conjunctions differ only in a few conjuncts.
class Solver::Session {
public:
  explicit Session(Solver &S);
  ~Session();
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// True iff the conjunction of \p Conjuncts is satisfiable; fills \p Out
  /// (if non-null) with values for every free variable of the conjuncts.
  /// Equivalent to Solver::isSat on their conjunction.
  bool check(const std::vector<const Formula *> &Conjuncts,
             Model *Out = nullptr);

  /// After an Unsat check: the subset of that check's conjuncts found
  /// jointly unsatisfiable.
  const std::vector<const Formula *> &lastCore() const;

  /// Number of unsat cores remembered so far.
  size_t numCores() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace abdiag::smt

#endif // ABDIAG_SMT_SOLVER_H
