//===- smt/Var.h - Analysis variables ---------------------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer variables appearing in formulas. Following the paper, a variable
/// is either an *input variable* (ν, the unknown value of a program input),
/// an *abstraction variable* (α, a named source of analysis imprecision such
/// as the value of a variable after a loop), or an auxiliary variable
/// introduced internally (Tseitin/divisibility lowering, Cooper's algorithm).
/// The kind drives the cost functions of Definitions 2 and 9.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_VAR_H
#define ABDIAG_SMT_VAR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace abdiag::smt {

/// Dense index of a variable within its VarTable.
using VarId = uint32_t;

/// Role of a variable; see Definitions 2 and 9 in the paper.
enum class VarKind : uint8_t {
  Input,       ///< ν: unknown program input.
  Abstraction, ///< α: unknown value due to analysis imprecision.
  Aux          ///< internal helper variable (never user-visible).
};

/// Registry of all variables used by one FormulaManager.
class VarTable {
  struct Info {
    std::string Name;
    VarKind Kind;
  };
  std::vector<Info> Vars;
  std::unordered_map<std::string, VarId> ByName;

public:
  /// Creates a new variable; \p Name must be unique within the table.
  VarId create(const std::string &Name, VarKind Kind) {
    assert(!ByName.count(Name) && "duplicate variable name");
    VarId Id = static_cast<VarId>(Vars.size());
    Vars.push_back({Name, Kind});
    ByName.emplace(Name, Id);
    return Id;
  }

  /// Returns the variable named \p Name, creating it if needed.
  VarId getOrCreate(const std::string &Name, VarKind Kind) {
    auto It = ByName.find(Name);
    if (It != ByName.end())
      return It->second;
    return create(Name, Kind);
  }

  /// Returns the id of \p Name, or ~0u if absent.
  VarId lookup(const std::string &Name) const {
    auto It = ByName.find(Name);
    return It == ByName.end() ? ~0u : It->second;
  }

  const std::string &name(VarId V) const { return Vars.at(V).Name; }
  VarKind kind(VarId V) const { return Vars.at(V).Kind; }
  size_t size() const { return Vars.size(); }

  /// Creates a fresh Aux variable with a unique generated name.
  VarId freshAux(const std::string &Prefix) {
    return create(Prefix + "!" + std::to_string(Vars.size()), VarKind::Aux);
  }
};

} // namespace abdiag::smt

#endif // ABDIAG_SMT_VAR_H
