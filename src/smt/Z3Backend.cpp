//===- smt/Z3Backend.cpp - Z3 as a first-class backend ----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Z3Backend.h"

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"

#ifdef ABDIAG_HAVE_Z3

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include <z3++.h>

using namespace abdiag;
using namespace abdiag::smt;

bool abdiag::smt::z3BackendBuilt() { return true; }

namespace {

/// One shared translation context: the z3::context, the VarId -> Z3 constant
/// map, and a memo of already-translated formula nodes (hash-consing makes
/// pointer keys sound for the manager's lifetime).
struct Translator {
  z3::context Ctx;
  const VarTable &VT;
  std::unordered_map<VarId, z3::expr> VarMap;
  std::unordered_map<const Formula *, z3::expr> FmlMap;

  explicit Translator(const VarTable &VT) : VT(VT) {}

  z3::expr var(VarId V) {
    auto It = VarMap.find(V);
    if (It == VarMap.end())
      It = VarMap.emplace(V, Ctx.int_const(VT.name(V).c_str())).first;
    return It->second;
  }

  z3::expr linExpr(const LinearExpr &E) {
    z3::expr Sum = Ctx.int_val(static_cast<int64_t>(E.constant()));
    for (const auto &[V, Coef] : E.terms())
      Sum = Sum + Ctx.int_val(Coef) * var(V);
    return Sum;
  }

  z3::expr formula(const Formula *F) {
    auto It = FmlMap.find(F);
    if (It != FmlMap.end())
      return It->second;
    z3::expr R = translate(F);
    FmlMap.emplace(F, R);
    return R;
  }

private:
  z3::expr translate(const Formula *F) {
    switch (F->kind()) {
    case FormulaKind::True:
      return Ctx.bool_val(true);
    case FormulaKind::False:
      return Ctx.bool_val(false);
    case FormulaKind::Atom: {
      z3::expr E = linExpr(F->expr());
      switch (F->rel()) {
      case AtomRel::Le:
        return E <= 0;
      case AtomRel::Eq:
        return E == 0;
      case AtomRel::Ne:
        return E != 0;
      case AtomRel::Div:
        return z3::mod(E, Ctx.int_val(F->divisor())) == 0;
      case AtomRel::NDiv:
        return z3::mod(E, Ctx.int_val(F->divisor())) != 0;
      }
      break;
    }
    case FormulaKind::And:
    case FormulaKind::Or: {
      z3::expr_vector Kids(Ctx);
      for (const Formula *K : F->kids())
        Kids.push_back(formula(K));
      return F->isAnd() ? z3::mk_and(Kids) : z3::mk_or(Kids);
    }
    }
    throw BackendError("z3 backend: unreachable formula kind");
  }
};

/// Reads the values of \p Vars out of a Z3 model into our Model type.
template <typename VarRange>
void extractModel(Translator &T, const z3::model &Mo, const VarRange &Vars,
                  Model &Out) {
  for (VarId V : Vars) {
    z3::expr Val = Mo.eval(T.var(V), /*model_completion=*/true);
    int64_t N = 0;
    if (Val.is_numeral_i64(N))
      Out[V] = N;
  }
}

/// Decodes a z3 check result, treating "unknown" as a hard error: it does
/// not happen for quantifier-free Presburger arithmetic, and silently
/// guessing would defeat the differential cross-check this backend powers.
bool decode(z3::check_result R, const char *What) {
  switch (R) {
  case z3::sat:
    return true;
  case z3::unsat:
    return false;
  case z3::unknown:
    break;
  }
  throw BackendError(std::string("z3 backend: solver answered 'unknown' for ") +
                     What);
}

} // namespace

struct Z3Backend::Impl {
  Translator T;
  explicit Impl(const VarTable &VT) : T(VT) {}
};

Z3Backend::Z3Backend(FormulaManager &M)
    : DecisionProcedure(M), I(std::make_unique<Impl>(M.vars())) {}

Z3Backend::~Z3Backend() = default;

bool Z3Backend::isSat(const Formula *F, Model *Out) {
  support::pollCancellation(Cancel);
  ++S.Queries;
  Translator &T = I->T;
  z3::solver Solver(T.Ctx);
  Solver.add(T.formula(F));
  bool Sat = decode(Solver.check(), "isSat");
  if (Sat && Out)
    extractModel(T, Solver.get_model(), freeVarsVec(F), *Out);
  return Sat;
}

const Formula *Z3Backend::eliminateForall(const Formula *F,
                                          const std::vector<VarId> &Xs) {
  support::pollCancellation(Cancel);
  return abdiag::smt::eliminateForall(M, F, Xs, /*Memo=*/nullptr, Cancel);
}

bool Z3Backend::validForallEquiv(const Formula *F,
                                 const std::vector<VarId> &Xs,
                                 const Formula *Candidate) {
  support::pollCancellation(Cancel);
  ++S.Queries;
  Translator &T = I->T;
  z3::expr Quantified = T.formula(F);
  if (!Xs.empty()) {
    z3::expr_vector Bound(T.Ctx);
    for (VarId X : Xs)
      Bound.push_back(T.var(X));
    Quantified = z3::forall(Bound, Quantified);
  }
  // Valid equivalence iff `(forall Xs. F) xor Candidate` is unsat. Run
  // quantifier elimination before the SMT core so Z3 stays complete on
  // quantified Presburger formulas.
  z3::tactic Tac = z3::tactic(T.Ctx, "qe") & z3::tactic(T.Ctx, "smt");
  z3::solver Solver = Tac.mk_solver();
  Solver.add(Quantified != T.formula(Candidate));
  return !decode(Solver.check(), "validForallEquiv");
}

namespace {

/// Guard-literal session: each distinct conjunct is asserted once as
/// `guard_i => F_i` on a persistent solver, and every check runs under the
/// assumption set of its conjuncts' guards -- Z3's internal learned lemmas
/// survive across checks, and z3 unsat cores (failed assumptions) map
/// straight back to conjunct subsets.
class Z3Session final : public DecisionProcedure::Session {
public:
  Z3Session(Translator &T, SolverStats &S,
            const support::CancellationToken *const &Cancel)
      : T(T), S(S), Cancel(Cancel), Solver(T.Ctx) {}

  bool check(const std::vector<const Formula *> &Conjuncts,
             Model *Out = nullptr) override {
    support::pollCancellation(Cancel);
    ++S.Queries;
    ++S.SessionChecks;
    z3::expr_vector Assumptions(T.Ctx);
    std::vector<VarId> Vars;
    std::set<const Formula *> Seen;
    for (const Formula *F : Conjuncts) {
      if (!Seen.insert(F).second)
        continue;
      Assumptions.push_back(guardFor(F));
      const std::vector<VarId> &Fv = freeVarsVec(F);
      Vars.insert(Vars.end(), Fv.begin(), Fv.end());
    }
    std::sort(Vars.begin(), Vars.end());
    Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
    bool Sat = decode(Solver.check(Assumptions), "Session::check");
    if (Sat) {
      if (Out)
        extractModel(T, Solver.get_model(), Vars, *Out);
    } else {
      Core.clear();
      z3::expr_vector Failed = Solver.unsat_core();
      for (unsigned J = 0; J < Failed.size(); ++J) {
        auto It = GuardToFml.find(Failed[J].id());
        if (It != GuardToFml.end())
          Core.push_back(It->second);
      }
      ++NumCores;
    }
    return Sat;
  }

  const std::vector<const Formula *> &lastCore() const override {
    return Core;
  }
  size_t numCores() const override { return NumCores; }

private:
  z3::expr guardFor(const Formula *F) {
    auto It = Guards.find(F);
    if (It != Guards.end())
      return It->second;
    std::string Name = "g!" + std::to_string(Guards.size());
    z3::expr G = T.Ctx.bool_const(Name.c_str());
    Solver.add(z3::implies(G, T.formula(F)));
    Guards.emplace(F, G);
    GuardToFml.emplace(G.id(), F);
    return G;
  }

  Translator &T;
  SolverStats &S;
  const support::CancellationToken *const &Cancel;
  z3::solver Solver;
  std::unordered_map<const Formula *, z3::expr> Guards;
  std::unordered_map<unsigned, const Formula *> GuardToFml;
  std::vector<const Formula *> Core;
  size_t NumCores = 0;
};

} // namespace

std::unique_ptr<DecisionProcedure::Session> Z3Backend::openSession() {
  return std::make_unique<Z3Session>(I->T, S, Cancel);
}

bool abdiag::smt::z3IsSat(FormulaManager &M, const Formula *F) {
  Z3Backend B(M);
  return B.isSat(F);
}

bool abdiag::smt::z3IsValid(FormulaManager &M, const Formula *F) {
  return !z3IsSat(M, M.mkNot(F));
}

#else // !ABDIAG_HAVE_Z3

using namespace abdiag;
using namespace abdiag::smt;

bool abdiag::smt::z3BackendBuilt() { return false; }

namespace {

[[noreturn]] void notBuilt() {
  throw BackendUnavailableError(
      "z3 backend not built into this binary; reconfigure with "
      "-DABDIAG_WITH_Z3=ON (requires libz3 and z3++.h)");
}

} // namespace

struct Z3Backend::Impl {};

Z3Backend::Z3Backend(FormulaManager &M) : DecisionProcedure(M) { notBuilt(); }
Z3Backend::~Z3Backend() = default;

// The constructor always throws, so these are unreachable; they exist only
// to satisfy the linker in Z3-less configurations.
bool Z3Backend::isSat(const Formula *, Model *) { notBuilt(); }
std::unique_ptr<DecisionProcedure::Session> Z3Backend::openSession() {
  notBuilt();
}
const Formula *Z3Backend::eliminateForall(const Formula *,
                                          const std::vector<VarId> &) {
  notBuilt();
}
bool Z3Backend::validForallEquiv(const Formula *, const std::vector<VarId> &,
                                 const Formula *) {
  notBuilt();
}

bool abdiag::smt::z3IsSat(FormulaManager &, const Formula *) { notBuilt(); }
bool abdiag::smt::z3IsValid(FormulaManager &, const Formula *) { notBuilt(); }

#endif // ABDIAG_HAVE_Z3
