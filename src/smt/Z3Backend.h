//===- smt/Z3Backend.h - Z3 as a first-class backend ------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Z3 SMT solver behind the DecisionProcedure interface, promoted from
/// the old test-only differential bridge. Sessions are incremental: every
/// distinct conjunct is asserted once under a fresh guard literal and each
/// check runs under assumptions, so Z3's learned lemmas persist across
/// checks and unsat cores fall out of the failed assumptions. Registered
/// as "z3"; constructing it in a build configured with ABDIAG_WITH_Z3=OFF
/// throws BackendUnavailableError with a build hint.
///
/// The header is Z3-free (pimpl) so it compiles in every configuration.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_Z3BACKEND_H
#define ABDIAG_SMT_Z3BACKEND_H

#include "smt/DecisionProcedure.h"

namespace abdiag::smt {

/// True when the Z3 engine is compiled into this binary
/// (ABDIAG_WITH_Z3=ON and libz3 found at configure time).
bool z3BackendBuilt();

class Z3Backend final : public DecisionProcedure {
public:
  /// Throws BackendUnavailableError when the Z3 engine is not built in.
  explicit Z3Backend(FormulaManager &M);
  ~Z3Backend() override;

  const char *name() const override { return "z3"; }
  BackendCapabilities capabilities() const override {
    BackendCapabilities C;
    C.NativeQe = false;     // QE falls back to the shared Cooper code
    C.VerdictCache = false; // Z3 keeps its own internal state instead
    return C;
  }

  bool isSat(const Formula *F, Model *Out = nullptr) override;

  std::unique_ptr<Session> openSession() override;

  /// Shared Cooper elimination (Z3's own QE output cannot be translated
  /// back into our atom language in general).
  const Formula *eliminateForall(const Formula *F,
                                 const std::vector<VarId> &Xs) override;

  /// Decides validity of `(forall Xs. F) <=> Candidate` with Z3's
  /// quantifier support -- the cross-check the differential backend runs
  /// against native quantifier elimination. Throws BackendError if Z3
  /// answers "unknown" (does not happen for Presburger arithmetic).
  bool validForallEquiv(const Formula *F, const std::vector<VarId> &Xs,
                        const Formula *Candidate);

  const SolverStats &stats() const override { return S; }
  void resetStats() override { S = SolverStats(); }

  /// Z3 is not cooperatively interruptible through our token, so the
  /// deadline is only polled at query boundaries.
  void setCancellation(const support::CancellationToken *T) override {
    Cancel = T;
  }
  const support::CancellationToken *cancellation() const override {
    return Cancel;
  }

  void setCaching(bool) override {} // no cache of our own to toggle
  bool cachingEnabled() const override { return false; }

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  SolverStats S;
  const support::CancellationToken *Cancel = nullptr;
};

/// Convenience one-shot checks used by the differential test suite. Both
/// take the owning manager (the historical pair took a VarTable and a
/// manager respectively; they are now uniform).
bool z3IsSat(FormulaManager &M, const Formula *F);
bool z3IsValid(FormulaManager &M, const Formula *F);

} // namespace abdiag::smt

#endif // ABDIAG_SMT_Z3BACKEND_H
