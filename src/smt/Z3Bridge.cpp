//===- smt/Z3Bridge.cpp - Differential-testing bridge to Z3 -----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Z3Bridge.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include <z3++.h>

using namespace abdiag;
using namespace abdiag::smt;

namespace {

z3::expr exprToZ3(z3::context &C,
                  std::unordered_map<VarId, z3::expr> &VarMap,
                  const VarTable &VT, const LinearExpr &E) {
  z3::expr Sum = C.int_val(static_cast<int64_t>(E.constant()));
  for (const auto &[V, Coef] : E.terms()) {
    auto It = VarMap.find(V);
    if (It == VarMap.end())
      It = VarMap.emplace(V, C.int_const(VT.name(V).c_str())).first;
    Sum = Sum + C.int_val(Coef) * It->second;
  }
  return Sum;
}

z3::expr formulaToZ3(z3::context &C,
                     std::unordered_map<VarId, z3::expr> &VarMap,
                     const VarTable &VT, const Formula *F) {
  switch (F->kind()) {
  case FormulaKind::True:
    return C.bool_val(true);
  case FormulaKind::False:
    return C.bool_val(false);
  case FormulaKind::Atom: {
    z3::expr E = exprToZ3(C, VarMap, VT, F->expr());
    switch (F->rel()) {
    case AtomRel::Le:
      return E <= 0;
    case AtomRel::Eq:
      return E == 0;
    case AtomRel::Ne:
      return E != 0;
    case AtomRel::Div:
      return z3::mod(E, C.int_val(F->divisor())) == 0;
    case AtomRel::NDiv:
      return z3::mod(E, C.int_val(F->divisor())) != 0;
    }
    break;
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    z3::expr_vector Kids(C);
    for (const Formula *K : F->kids())
      Kids.push_back(formulaToZ3(C, VarMap, VT, K));
    return F->isAnd() ? z3::mk_and(Kids) : z3::mk_or(Kids);
  }
  }
  std::abort();
}

} // namespace

bool abdiag::smt::z3IsSat(const Formula *F, const VarTable &VT) {
  z3::context C;
  std::unordered_map<VarId, z3::expr> VarMap;
  z3::solver Solver(C);
  Solver.add(formulaToZ3(C, VarMap, VT, F));
  switch (Solver.check()) {
  case z3::sat:
    return true;
  case z3::unsat:
    return false;
  case z3::unknown:
    std::fprintf(stderr, "abdiag: fatal: z3 returned unknown\n");
    std::abort();
  }
  std::abort();
}

bool abdiag::smt::z3IsValid(FormulaManager &M, const Formula *F) {
  return !z3IsSat(M.mkNot(F), M.vars());
}
