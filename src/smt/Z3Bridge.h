//===- smt/Z3Bridge.h - Differential-testing bridge to Z3 -------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates abdiag formulas to Z3 and asks Z3 for satisfiability. Used
/// exclusively by the test suite to differentially validate our own SMT
/// stack (solver, quantifier elimination, MSA); the library itself never
/// depends on Z3.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SMT_Z3BRIDGE_H
#define ABDIAG_SMT_Z3BRIDGE_H

#include "smt/Formula.h"

namespace abdiag::smt {

/// Checks satisfiability of \p F with Z3. Aborts if Z3 answers "unknown"
/// (does not happen for quantifier-free LIA).
bool z3IsSat(const Formula *F, const VarTable &VT);

/// Checks validity of \p F with Z3.
bool z3IsValid(FormulaManager &M, const Formula *F);

} // namespace abdiag::smt

#endif // ABDIAG_SMT_Z3BRIDGE_H
