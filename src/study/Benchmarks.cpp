//===- study/Benchmarks.cpp - The 11-problem study corpus --------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/Benchmarks.h"

#include <cstdlib>

using namespace abdiag::study;

#ifndef ABDIAG_BENCHMARK_DIR
#define ABDIAG_BENCHMARK_DIR "benchmarks"
#endif

const std::vector<BenchmarkInfo> &abdiag::study::benchmarkSuite() {
  // Figure 7 rows: LOC, manual %correct/%wrong/%?/time, new %c/%w/%?/time.
  static const std::vector<BenchmarkInfo> Suite = {
      {"p01_sum_scale", "p01_sum_scale.adg", /*Synthetic=*/true,
       /*IsRealBug=*/false, "imprecise loop invariant + non-linear arithmetic",
       {88, 43.5, 34.8, 21.7, 297, 92.3, 3.9, 3.9, 57}},
      {"p02_seq_format", "p02_seq_format.adg", /*Synthetic=*/false,
       /*IsRealBug=*/false, "imprecise loop invariant (lost accumulators)",
       {352, 30.8, 50.0, 19.2, 269, 87.0, 8.7, 4.4, 40}},
      {"p03_quadratic", "p03_quadratic.adg", /*Synthetic=*/true,
       /*IsRealBug=*/false, "non-linear arithmetic",
       {66, 46.2, 38.5, 15.4, 266, 79.2, 20.8, 0.0, 58}},
      {"p04_copy_overflow", "p04_copy_overflow.adg", /*Synthetic=*/false,
       /*IsRealBug=*/true, "off-by-one loop bound",
       {278, 37.5, 45.8, 16.7, 265, 92.3, 7.7, 0.0, 53}},
      {"p05_config_retry", "p05_config_retry.adg", /*Synthetic=*/false,
       /*IsRealBug=*/false, "missing library annotation + weak invariant",
       {363, 32.0, 48.0, 20.0, 289, 100.0, 0.0, 0.0, 46}},
      {"p06_chroot_optind", "p06_chroot_optind.adg", /*Synthetic=*/false,
       /*IsRealBug=*/false, "getopt-style option loop (optind correlation)",
       {173, 25.0, 54.2, 20.8, 339, 92.0, 8.0, 0.0, 54}},
      {"p07_rotate_negative", "p07_rotate_negative.adg", /*Synthetic=*/false,
       /*IsRealBug=*/true, "unhandled negative input in normalization loop",
       {326, 40.0, 56.0, 4.0, 233, 79.2, 8.3, 12.5, 55}},
      {"p08_parity_pad", "p08_parity_pad.adg", /*Synthetic=*/true,
       /*IsRealBug=*/false, "lost counter/accumulator correlation",
       {97, 16.7, 70.8, 12.5, 271, 92.0, 8.0, 0.0, 58}},
      {"p09_area_perimeter", "p09_area_perimeter.adg", /*Synthetic=*/true,
       /*IsRealBug=*/true, "non-linear arithmetic hides a boundary case",
       {116, 25.0, 58.3, 16.7, 308, 92.0, 4.0, 4.0, 62}},
      {"p10_sensor_offset", "p10_sensor_offset.adg", /*Synthetic=*/true,
       /*IsRealBug=*/true, "unconstrained library return value",
       {72, 24.0, 60.0, 16.0, 455, 95.8, 4.2, 0.0, 68}},
      {"p11_search_boundary", "p11_search_boundary.adg", /*Synthetic=*/true,
       /*IsRealBug=*/true, "off-by-one search loop misses last element",
       {118, 41.7, 45.8, 12.5, 235, 84.0, 16.0, 0.0, 50}},
  };
  return Suite;
}

std::string abdiag::study::benchmarkPath(const BenchmarkInfo &B) {
  const char *Dir = std::getenv("ABDIAG_BENCHMARK_DIR");
  std::string Base = Dir ? Dir : ABDIAG_BENCHMARK_DIR;
  return Base + "/" + B.File;
}
