//===- study/Benchmarks.h - The 11-problem study corpus ---------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of the 11 benchmark problems mirroring Figure 7 of the paper:
/// same classification split (6 false alarms, 5 real bugs), same kind split
/// (5 "real"-flavored, 6 synthetic), and the same diversity of report
/// causes (imprecise loop invariants, missing library annotations,
/// non-linear arithmetic, environment facts). The paper's published
/// per-problem numbers are embedded so the regenerated table can be printed
/// side by side with the original.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_STUDY_BENCHMARKS_H
#define ABDIAG_STUDY_BENCHMARKS_H

#include <string>
#include <vector>

namespace abdiag::study {

/// Per-problem numbers from Figure 7 of the paper.
struct PaperRow {
  int Loc;
  double ManualCorrect, ManualWrong, ManualUnknown, ManualTime;
  double NewCorrect, NewWrong, NewUnknown, NewTime;
};

/// One benchmark problem.
struct BenchmarkInfo {
  std::string Name;    ///< registry key, also the file stem
  std::string File;    ///< .adg file name under the benchmark directory
  bool Synthetic;      ///< Figure 7 "Kind" column
  bool IsRealBug;      ///< Figure 7 "Classification" column
  std::string Cause;   ///< why the analysis reports a potential error
  PaperRow Paper;      ///< the original Figure 7 row
};

/// All 11 problems, in Figure 7 order.
const std::vector<BenchmarkInfo> &benchmarkSuite();

/// Absolute path of a benchmark file (uses the build-time benchmark
/// directory unless ABDIAG_BENCHMARK_DIR is set in the environment).
std::string benchmarkPath(const BenchmarkInfo &B);

} // namespace abdiag::study

#endif // ABDIAG_STUDY_BENCHMARKS_H
