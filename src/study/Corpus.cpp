//===- study/Corpus.cpp - Certified corpus generator -------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Candidate programs are rendered from six cause-specific templates, each
// able to target either classification, braided with deterministic filler
// (straight-line arithmetic, branches, soundly-annotated bounded loops --
// optionally nested -- and helper functions that exercise the
// interprocedural summary path). Certification then re-runs the exact bar
// the hand-written suite is held to; rejected candidates are resampled from
// the next attempt's seed. The UnknownAnswer cause adds a third bar: a
// diagnosis dry-run against the concrete oracle must produce at least one
// "unknown" answer and still reach the certified verdict, guaranteeing the
// Section 5 potential-set path is exercised.
//
//===----------------------------------------------------------------------===//

#include "study/Corpus.h"

#include "core/ErrorDiagnoser.h"
#include "lang/AstPrinter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace abdiag;
using namespace abdiag::study;

//===----------------------------------------------------------------------===//
// Cause names and stats
//===----------------------------------------------------------------------===//

const char *study::causeName(ReportCause C) {
  switch (C) {
  case ReportCause::ImpreciseInvariant:
    return "imprecise_invariant";
  case ReportCause::MissingAnnotation:
    return "missing_annotation";
  case ReportCause::NonLinearArithmetic:
    return "non_linear_arithmetic";
  case ReportCause::EnvironmentFact:
    return "environment_fact";
  case ReportCause::SummarizedCall:
    return "summarized_call";
  case ReportCause::UnknownAnswer:
    return "unknown_answer";
  }
  return "unknown";
}

const char *study::causeToken(ReportCause C) {
  switch (C) {
  case ReportCause::ImpreciseInvariant:
    return "invariant";
  case ReportCause::MissingAnnotation:
    return "annotation";
  case ReportCause::NonLinearArithmetic:
    return "nonlinear";
  case ReportCause::EnvironmentFact:
    return "envfact";
  case ReportCause::SummarizedCall:
    return "call";
  case ReportCause::UnknownAnswer:
    return "dontknow";
  }
  return "unknown";
}

std::optional<ReportCause> study::causeFromName(std::string_view Name) {
  for (size_t I = 0; I < NumReportCauses; ++I) {
    ReportCause C = static_cast<ReportCause>(I);
    if (Name == causeName(C) || Name == causeToken(C))
      return C;
  }
  return std::nullopt;
}

CauseStats &CauseStats::operator+=(const CauseStats &O) {
  Accepted += O.Accepted;
  Candidates += O.Candidates;
  RejectedDecided += O.RejectedDecided;
  RejectedTruth += O.RejectedTruth;
  RejectedNoRuns += O.RejectedNoRuns;
  RejectedParse += O.RejectedParse;
  RejectedDryRun += O.RejectedDryRun;
  return *this;
}

CauseStats CorpusStats::total() const {
  CauseStats T;
  for (const CauseStats &S : PerCause)
    T += S;
  return T;
}

//===----------------------------------------------------------------------===//
// Candidate rendering
//===----------------------------------------------------------------------===//

namespace {

std::string num(int64_t V) { return std::to_string(V); }

/// Deterministic filler braided around a template's cause-specific core.
/// Filler is fully decoupled from the report: it reads and writes only its
/// own temporaries (never a parameter or core variable) and the check never
/// reads a filler variable. The decoupling is what keeps per-report
/// diagnosis cost uniform -- a filler branch whose condition mixes
/// parameters or loop-exit variables correlates with the check and can
/// blow the MSA subset search up from milliseconds to minutes.
class Filler {
public:
  Filler(Rng &R, const CorpusKnobs &K) : R(R), K(K) {}

  /// Emits between MinFillerStmts and MaxFillerStmts statements; call once
  /// per insertion region with that region's share.
  std::string stmts(int Count) {
    std::string Out;
    for (int I = 0; I < Count; ++I)
      Out += oneStmt();
    return Out;
  }

  int pickTotal() {
    if (K.MaxExtraVars <= 0)
      return 0; // filler statements need a temporary to write
    return static_cast<int>(R.range(K.MinFillerStmts, K.MaxFillerStmts));
  }

  const std::vector<std::string> &vars() const { return Vars; }
  const std::vector<std::string> &helpers() const { return Helpers; }

private:
  Rng &R;
  const CorpusKnobs &K;
  std::vector<std::string> Readable;
  std::vector<std::string> Vars;    ///< filler temporaries declared so far
  std::vector<std::string> Helpers; ///< helper function definitions
  int LoopsUsed = 0;
  int HelpersUsed = 0;

  /// A small linear expression over the readable variables.
  std::string linExpr() {
    std::string E = num(R.range(-4, 4));
    for (const std::string &V : Readable)
      if (R.chance(0.4))
        E += " + " + num(R.range(-2, 2)) + " * " + V;
    return E;
  }

  std::string target() {
    // Cycle through up to MaxExtraVars temporaries.
    size_t Slot = static_cast<size_t>(
        R.range(0, std::max(0, K.MaxExtraVars - 1)));
    while (Vars.size() <= Slot)
      Vars.push_back("f" + std::to_string(Vars.size()));
    return Vars[Slot];
  }

  std::string oneStmt() {
    std::string T = target();
    std::string Out;
    switch (R.range(0, 3)) {
    case 0:
      Out = "  " + T + " = " + linExpr() + ";\n";
      break;
    case 1:
      Out = "  if (" + linExpr() + " > " + linExpr() + ") { " + T + " = " +
            linExpr() + "; } else { " + T + " = " + linExpr() + "; }\n";
      break;
    case 2: {
      if (LoopsUsed >= K.MaxExtraLoops) {
        Out = "  " + T + " = " + linExpr() + ";\n";
        break;
      }
      ++LoopsUsed;
      // A bounded counting loop with a sound, *precise* postcondition so
      // filler adds loop structure without adding new imprecision. With
      // MaxLoopDepth >= 2 a bounded inner loop over a second temporary may
      // nest inside; its counter is pinned by the outer postcondition so
      // nesting stays imprecision-free too.
      std::string Bound = num(R.range(1, 4));
      std::string Inner;
      std::string Post =
          T + " >= " + Bound + " && " + T + " <= " + Bound;
      if (K.MaxLoopDepth >= 2 && R.chance(0.5)) {
        std::string U = target();
        if (U != T) {
          std::string IB = num(R.range(1, 3));
          Inner = U + " = 0; while (" + U + " < " + IB + ") { " + U + " = " +
                  U + " + 1; } @ [" + U + " >= " + IB + " && " + U + " <= " +
                  IB + "] ";
          // The outer loop body runs Bound >= 1 times, so U == IB on exit.
          Post += " && " + U + " >= " + IB + " && " + U + " <= " + IB;
          if (std::find(Readable.begin(), Readable.end(), U) ==
              Readable.end())
            Readable.push_back(U);
        }
      }
      Out = "  " + T + " = 0;\n  while (" + T + " < " + Bound + ") { " +
            Inner + T + " = " + T + " + 1; } @ [" + Post + "]\n";
      break;
    }
    default: {
      if (HelpersUsed >= K.MaxInlineDepth || Readable.size() < 2) {
        Out = "  " + T + " = " + linExpr() + ";\n";
        break;
      }
      // A helper function -- analyzed once via its summary (or inlined
      // under Options::InlineCalls): the call-free vs. interprocedural
      // dimension of the corpus.
      std::string H = "h" + std::to_string(HelpersUsed++);
      Helpers.push_back("function " + H + "(u, w) {\n  var t;\n  t = u + " +
                        num(R.range(-2, 3)) + " * w;\n  return t + " +
                        num(R.range(-3, 3)) + ";\n}\n");
      const std::string &A =
          Readable[static_cast<size_t>(R.range(0, Readable.size() - 1))];
      const std::string &B =
          Readable[static_cast<size_t>(R.range(0, Readable.size() - 1))];
      Out = "  " + T + " = " + H + "(" + A + ", " + B + ");\n";
      break;
    }
    }
    // Once written, a filler temporary becomes readable downstream.
    if (std::find(Readable.begin(), Readable.end(), T) == Readable.end())
      Readable.push_back(T);
    return Out;
  }
};

std::string join(const std::vector<std::string> &Parts, const char *Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

struct Candidate {
  std::vector<std::string> Params;
  std::vector<std::string> CoreVars;
  std::string Funcs;   ///< cause-specific function definitions (may be empty)
  std::string Assumes; ///< statements emitted before everything else
  std::string Core;    ///< the cause-specific statements
  std::string Check;   ///< the final check predicate
};

/// Assembles helpers + program with filler split across the two regions
/// around the core.
std::string assemble(Rng &R, const std::string &Name, const CorpusKnobs &K,
                     const Candidate &C) {
  Filler F(R, K);
  int Total = F.pickTotal();
  int Prefix = static_cast<int>(R.range(0, Total));
  std::string Pre = F.stmts(Prefix);
  std::string Post = F.stmts(Total - Prefix);

  std::vector<std::string> Vars = C.CoreVars;
  Vars.insert(Vars.end(), F.vars().begin(), F.vars().end());

  std::string S;
  for (const std::string &H : F.helpers())
    S += H;
  S += C.Funcs;
  S += "program " + Name + "(" + join(C.Params, ", ") + ") {\n";
  S += "  var " + join(Vars, ", ") + ";\n";
  S += C.Assumes;
  S += Pre;
  S += C.Core;
  S += Post;
  S += "  check(" + C.Check + ");\n}\n";
  return S;
}

/// Imprecise loop invariant: the annotation keeps the counter but forgets
/// the accumulator, so any check on the accumulator is undecided. The bug
/// variant fails exactly when the loop runs zero iterations.
Candidate emitImpreciseInvariant(Rng &R, bool WantBug) {
  Candidate C;
  C.Params = {"n"};
  if (R.chance(0.5))
    C.Params.push_back("b");
  C.CoreVars = {"i", "j"};
  int64_t Base = R.range(0, 3);
  int64_t Step = R.range(1, 3);
  bool SumCounter = R.chance(0.4); // accumulate the counter instead of Step
  std::string Ann = R.chance(0.5) ? "i >= 0 && i >= n" : "i >= n";

  C.Assumes = "  assume(n >= 0);\n";
  C.Core = "  j = " + num(Base) + ";\n  i = 0;\n  while (i < n) { i = i + 1; j = j + " +
           (SumCounter ? std::string("i") : num(Step)) + "; } @ [" + Ann +
           "]\n";
  // Truth: i == n and j == Base + (Step*n or n(n+1)/2) >= Base, with
  // j == Base exactly when n == 0.
  if (R.chance(0.5))
    C.Check = "j >= " + num(WantBug ? Base + 1 : Base);
  else
    C.Check = "i + j >= n + " + num(WantBug ? Base + 1 : Base);
  return C;
}

/// Missing library annotation: an un-annotated call (havoc) feeds a clamp
/// whose window is keyed to the library's actual range. The alarm variant
/// clamps every realizable negative; the bug variant's window is too small
/// and the library's minimum slips through.
Candidate emitMissingAnnotation(Rng &R, bool WantBug) {
  Candidate C;
  C.Params = {"g"};
  C.CoreVars = {"lib", "adj", "ok"};
  int64_t Off = R.range(1, 3); // adj = lib + Off, so min(adj) = Off - 7
  // Clamp window [-T, 0): realizable iff T >= 7 - Off.
  int64_t T = WantBug ? R.range(1, 6 - Off) : R.range(7 - Off, 9);
  bool ClampToParam = R.chance(0.4);

  C.Assumes = "  assume(g >= 1);\n";
  C.Core = "  lib = havoc();\n  adj = lib + " + num(Off) +
           ";\n  ok = adj;\n  if (adj < 0) {\n    if (adj >= -" + num(T) +
           ") { ok = " + (ClampToParam ? std::string("g") : std::string("0")) +
           "; }\n  }\n";
  C.Check = R.chance(0.5) ? "ok + g > 0" : "g + ok >= 1";
  return C;
}

/// Non-linear arithmetic: a product the analysis abstracts (knowing at most
/// non-negativity for squares). Square and cross-product shapes, each with
/// a bound that holds from the assumed range (alarm) or fails on small
/// inputs only (bug).
Candidate emitNonLinear(Rng &R, bool WantBug) {
  Candidate C;
  bool Square = R.chance(0.55);
  if (Square) {
    C.Params = {"x"};
    C.CoreVars = {"q"};
    if (WantBug) {
      int64_t D = R.range(1, 3);
      C.Assumes = "  assume(x >= 0);\n";
      C.Core = "  q = x * x;\n";
      // Fails for x in {0, 1} (and x == 2 when D == 3), passes above.
      C.Check = R.chance(0.5) ? "q > x" : "q >= x + " + num(D);
    } else {
      int64_t Lo = R.range(2, 4);
      int64_t Mul = R.range(1, Lo);
      C.Assumes = "  assume(x >= " + num(Lo) + ");\n";
      C.Core = "  q = x * x;\n";
      // x >= Lo >= Mul implies x*x >= Mul*x.
      C.Check = "q >= " + num(Mul) + " * x";
    }
  } else {
    C.Params = {"x", "y"};
    C.CoreVars = {"q"};
    if (WantBug) {
      C.Assumes = "  assume(x >= 0);\n  assume(y >= 0);\n";
      C.Core = "  q = x * y;\n";
      // Fails at e.g. (0, 1) and (1, 1); passes from (2, 2) up.
      C.Check = "q >= x + y";
    } else {
      C.Assumes = "  assume(x >= 1);\n  assume(y >= 1);\n";
      C.Core = "  q = x * y;\n";
      // x, y >= 1 make both forms hold.
      C.Check = R.chance(0.5) ? "q >= x" : "q + q >= x + y";
    }
  }
  return C;
}

/// Environment fact: the check depends on the range of an environment
/// reading the analysis knows nothing about. The alarm variant's bound is
/// satisfied by every value the environment actually supplies (the default
/// havoc box is [-7, 10]); the bug variant's threshold cuts that range.
Candidate emitEnvironmentFact(Rng &R, bool WantBug) {
  Candidate C;
  C.Params = {"r"};
  C.CoreVars = {"env", "lvl"};
  int64_t Off = R.range(-2, 2); // lvl = env + Off

  C.Assumes = "  assume(r >= 0);\n";
  C.Core = "  env = havoc();\n  lvl = " +
           (Off ? "env + " + num(Off) : std::string("env")) + ";\n";
  if (WantBug) {
    // env >= Thresh fails for env == -7 and holds for env == 10.
    int64_t Thresh = R.range(-6, 9);
    C.Check = (R.chance(0.5) ? "lvl >= " : "lvl + r >= ") + num(Thresh + Off);
  } else if (R.chance(0.5)) {
    // env >= -7 - Slack, strengthened by r >= 0.
    int64_t Slack = R.range(0, 2);
    C.Check = "lvl + r >= " + num(-7 - Slack + Off);
  } else {
    // env <= 10 + Slack, weakened by r >= 0.
    int64_t Slack = R.range(0, 2);
    C.Check = "lvl <= " + num(10 + Slack + Off) + " + r";
  }
  return C;
}

/// Summarized call: the imprecision lives in a *callee* -- an accumulator
/// loop whose annotation keeps the counter but forgets the sum -- analyzed
/// once via its function summary and instantiated at one or two first-class
/// call sites. The two-call shapes relate the results of both
/// instantiations (truth: acc(n + d) - acc(n) == Step * d).
Candidate emitSummarizedCall(Rng &R, bool WantBug) {
  Candidate C;
  C.Params = {"n"};
  C.CoreVars = {"a"};
  int64_t Base = R.range(0, 3);
  int64_t Step = R.range(1, 3);
  std::string Ann = R.chance(0.5) ? "k >= 0 && k >= m" : "k >= m";
  C.Funcs = "function acc(m) {\n  var k, s;\n  k = 0;\n  s = " + num(Base) +
            ";\n  while (k < m) { k = k + 1; s = s + " + num(Step) +
            "; } @ [" + Ann + "]\n  return s;\n}\n";
  C.Assumes = "  assume(n >= 0);\n";
  if (R.chance(0.5)) {
    // Two instantiations of the same summary, compared against each other.
    C.CoreVars.push_back("b");
    int64_t D = R.range(1, 3);
    C.Core = "  a = acc(n);\n  b = acc(n + " + num(D) + ");\n";
    // Truth: b - a == Step * D > 0, so b >= a always holds and a >= b
    // fails on every run.
    C.Check = WantBug ? "a >= b" : "b >= a";
  } else {
    C.Core = "  a = acc(n);\n";
    // Truth: a == Base + Step * n >= Base, with equality exactly at n == 0.
    C.Check = "a >= " + num(WantBug ? Base + 1 : Base);
  }
  return C;
}

/// Unknown answerer: a loop guarded by a condition no in-box input reaches,
/// so its loop-exit alphas are defined in *no* concrete run and every
/// oracle query touching them comes back "unknown" (Section 5). Under the
/// Definition 9 cost model, proof obligations price abstraction variables
/// at 1, so the cold alphas are where the abducer looks first. The alarm
/// variant's check reads the cold accumulator directly: the don't-know
/// answers land in the potential sets, which steer later abductions to the
/// decidable guard over the parameters. The bug variant routes the failure
/// through an un-annotated havoc, so no input-only failure witness exists
/// and the (alpha-cheap) proof obligation is asked -- and answered
/// "unknown" -- before the havoc witness validates the bug.
Candidate emitUnknownAnswer(Rng &R, bool WantBug) {
  Candidate C;
  C.Params = {"n", "m"};
  C.CoreVars = {"j", "t"};
  // The certification box keeps |n| + |m| <= 16, so the guard never fires
  // concretely but stays symbolically satisfiable.
  int64_t Thresh = R.range(20, 40);
  C.Assumes = "  assume(n >= 0);\n  assume(m >= 0);\n";
  std::string Cold = "  j = 0;\n  if (n + m > " + num(Thresh) +
                     ") {\n    t = 0;\n    while (t < n) { t = t + 1; j = j "
                     "+ 1; } @ [t >= n]\n  }\n";
  if (WantBug) {
    // In-box runs keep j == 0, so the check fails exactly when the havoc
    // reading is small enough -- a condition no input-only witness can
    // express.
    C.CoreVars.push_back("h");
    int64_t K = R.range(1, 3);
    C.Core = "  h = havoc();\n" + Cold;
    C.Check = "h + j >= " + num(K);
  } else {
    // j is 0 in-box (and j == n > Thresh - m >= 0 if the branch ever
    // fired), so the check never fails.
    C.Core = Cold;
    C.Check = "j + " + num(R.range(0, 2)) + " >= 0";
  }
  return C;
}

std::string renderCandidate(Rng &R, const std::string &Name, ReportCause Cause,
                            bool WantBug, const CorpusKnobs &Knobs) {
  Candidate C;
  switch (Cause) {
  case ReportCause::ImpreciseInvariant:
    C = emitImpreciseInvariant(R, WantBug);
    break;
  case ReportCause::MissingAnnotation:
    C = emitMissingAnnotation(R, WantBug);
    break;
  case ReportCause::NonLinearArithmetic:
    C = emitNonLinear(R, WantBug);
    break;
  case ReportCause::EnvironmentFact:
    C = emitEnvironmentFact(R, WantBug);
    break;
  case ReportCause::SummarizedCall:
    C = emitSummarizedCall(R, WantBug);
    break;
  case ReportCause::UnknownAnswer:
    C = emitUnknownAnswer(R, WantBug);
    break;
  }
  return assemble(R, Name, Knobs, C);
}

/// Stable per-candidate seed: depends only on (corpus seed, index, attempt).
uint64_t candidateSeed(uint64_t Seed, size_t Index, int Attempt) {
  auto Mix = [](uint64_t H, uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    return H;
  };
  return Mix(Mix(Seed, Index + 1), static_cast<uint64_t>(Attempt));
}

std::string programName(const std::string &Prefix, size_t Index,
                        ReportCause Cause, bool WantBug) {
  char Idx[16];
  std::snprintf(Idx, sizeof(Idx), "%06zu", Index);
  return Prefix + "_" + Idx + "_" + causeToken(Cause) + "_" +
         (WantBug ? "bug" : "alarm");
}

} // namespace

//===----------------------------------------------------------------------===//
// CorpusGenerator
//===----------------------------------------------------------------------===//

CorpusGenerator::CorpusGenerator(CorpusOptions O) : Opts(std::move(O)) {
  if (Opts.Causes.empty())
    throw CorpusError("corpus: Causes must be non-empty");
  if (Opts.Knobs.MinFillerStmts < 0 ||
      Opts.Knobs.MaxFillerStmts < Opts.Knobs.MinFillerStmts)
    throw CorpusError("corpus: bad filler-statement range");
  if (Opts.MaxAttempts < 1)
    throw CorpusError("corpus: MaxAttempts must be >= 1");
}

ReportCause CorpusGenerator::causeFor(size_t Index) const {
  return Opts.Causes[Index % Opts.Causes.size()];
}

bool CorpusGenerator::wantBugFor(size_t Index) const {
  return ((Index / Opts.Causes.size()) % 2) == 1;
}

std::string CorpusGenerator::randomCandidate(Rng &R, ReportCause Cause,
                                             bool WantBug,
                                             const CorpusKnobs &Knobs) {
  std::string Name = std::string("cand_") + causeToken(Cause) + "_" +
                     (WantBug ? "bug" : "alarm");
  return renderCandidate(R, Name, Cause, WantBug, Knobs);
}

CorpusProgram CorpusGenerator::generate(size_t Index) {
  ReportCause Cause = causeFor(Index);
  bool WantBug = wantBugFor(Index);
  CauseStats &CS = Stats.PerCause[static_cast<size_t>(Cause)];
  std::string Name = programName(Opts.NamePrefix, Index, Cause, WantBug);

  core::ErrorDiagnoser D;
  for (int Attempt = 1; Attempt <= Opts.MaxAttempts; ++Attempt) {
    uint64_t Seed = candidateSeed(Opts.Seed, Index, Attempt);
    Rng R(Seed);
    std::string Text = renderCandidate(R, Name, Cause, WantBug, Opts.Knobs);
    ++CS.Candidates;

    core::LoadResult L = D.loadSource(Text);
    if (!L) {
      ++CS.RejectedParse;
      continue;
    }
    // Certification bar 1: the paper requires benchmarks the analysis
    // reports as potential-but-not-certain errors.
    if (D.dischargedByAnalysis() || D.validatedByAnalysis()) {
      ++CS.RejectedDecided;
      continue;
    }
    // Certification bar 2: exhaustive concrete execution must confirm the
    // declared classification.
    auto Truth = D.makeConcreteOracle(Opts.Oracle);
    if (!Truth->anyCompletedRun()) {
      ++CS.RejectedNoRuns;
      continue;
    }
    if (Truth->anyFailingRun() != WantBug) {
      ++CS.RejectedTruth;
      continue;
    }
    // Certification bar 3 (UnknownAnswer only): a diagnosis dry-run against
    // the concrete oracle must hit the Section 5 path -- at least one
    // "unknown" answer -- and still reach the certified verdict through the
    // potential sets.
    if (Cause == ReportCause::UnknownAnswer) {
      core::DiagnosisResult Dry = D.diagnose(*Truth);
      bool SawUnknown = false;
      for (const core::QueryRecord &Q : Dry.Transcript)
        if (Q.Ans == core::Oracle::Answer::Unknown)
          SawUnknown = true;
      if (!SawUnknown ||
          Dry.Outcome != (WantBug ? core::DiagnosisOutcome::Validated
                                  : core::DiagnosisOutcome::Discharged)) {
        ++CS.RejectedDryRun;
        continue;
      }
    }

    ++CS.Accepted;
    CorpusProgram P;
    P.Name = Name;
    P.FileName = Name + ".adg";
    P.ProgramSeed = Seed;
    P.Index = Index;
    P.Cause = Cause;
    P.IsRealBug = WantBug;
    P.Loc = lang::programLoc(D.program());
    P.Attempts = Attempt;
    P.Source = "# " + Name + " -- generated by abdiag_gen\n# cause: " +
               causeName(Cause) +
               "; classification: " + (WantBug ? "real_bug" : "false_alarm") +
               "\n# seed: " + std::to_string(Seed) + " (corpus seed " +
               std::to_string(Opts.Seed) + ", index " + std::to_string(Index) +
               ", attempt " + std::to_string(Attempt) +
               ")\n# Certified: initially undecided by the symbolic "
               "analysis; classification\n# confirmed by exhaustive concrete "
               "execution over the oracle box.\n" +
               Text;
    return P;
  }
  throw CorpusError("corpus: no certified candidate for index " +
                    std::to_string(Index) + " (" + causeName(Cause) + ", " +
                    (WantBug ? "real_bug" : "false_alarm") + ") after " +
                    std::to_string(Opts.MaxAttempts) + " attempts");
}

std::vector<CorpusProgram> CorpusGenerator::generateAll(
    const std::function<void(const CorpusProgram &)> &OnProgram) {
  std::vector<CorpusProgram> Out;
  Out.reserve(Opts.Count);
  for (size_t I = 0; I < Opts.Count; ++I) {
    Out.push_back(generate(I));
    if (OnProgram)
      OnProgram(Out.back());
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// The mixed-statement random program (soundness property test factory)
//===----------------------------------------------------------------------===//

std::string study::randomMixedProgram(Rng &R) {
  std::string Src = "program rnd(a, b) {\n  var x, y, z;\n";
  auto Expr = [&]() {
    const char *Vars[] = {"a", "b", "x", "y", "z"};
    std::string E = std::to_string(R.range(-6, 6));
    for (const char *V : Vars)
      if (R.chance(0.35))
        E += std::string(" + ") + std::to_string(R.range(-2, 2)) + " * " + V;
    return E;
  };
  if (R.chance(0.6))
    Src += "  assume(a >= " + std::to_string(R.range(-2, 2)) + ");\n";
  int N = static_cast<int>(R.range(2, 6));
  for (int I = 0; I < N; ++I) {
    const char *T = R.chance(0.5) ? "x" : (R.chance(0.5) ? "y" : "z");
    switch (R.range(0, 4)) {
    case 0:
      Src += std::string("  ") + T + " = " + Expr() + ";\n";
      break;
    case 1:
      Src += std::string("  if (") + Expr() + " > " + Expr() + ") { " + T +
             " = " + Expr() + "; } else { " + T + " = " + Expr() + "; }\n";
      break;
    case 2: {
      // A bounded counting loop (always terminates).
      std::string Bound = std::to_string(R.range(1, 6));
      Src += std::string("  ") + T + " = 0;\n";
      Src += std::string("  while (") + T + " < " + Bound + ") { " + T +
             " = " + T + " + 1; }\n";
      break;
    }
    case 3:
      Src += std::string("  ") + T + " = havoc();\n";
      break;
    default:
      Src += std::string("  ") + T + " = " + (R.chance(0.5) ? "a" : "b") +
             " * " + (R.chance(0.5) ? "a" : "b") + ";\n";
      break;
    }
  }
  Src += std::string("  check(") + Expr() +
         (R.chance(0.5) ? " >= " : " != ") + Expr() + ");\n}\n";
  return Src;
}

//===----------------------------------------------------------------------===//
// Manifest I/O
//===----------------------------------------------------------------------===//

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Minimal field extraction from one manifest line (we only ever parse
/// manifests this library wrote, but unescape defensively).
bool findStringField(const std::string &Line, const std::string &Key,
                     std::string &Out) {
  std::string Needle = "\"" + Key + "\":\"";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  Out.clear();
  for (size_t I = At + Needle.size(); I < Line.size(); ++I) {
    char C = Line[I];
    if (C == '"')
      return true;
    if (C == '\\' && I + 1 < Line.size()) {
      char N = Line[++I];
      switch (N) {
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      default:
        Out += N;
      }
      continue;
    }
    Out += C;
  }
  return false; // unterminated string
}

bool findUIntField(const std::string &Line, const std::string &Key,
                   uint64_t &Out) {
  std::string Needle = "\"" + Key + "\":";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  const char *Start = Line.c_str() + At + Needle.size();
  char *End = nullptr;
  unsigned long long V = std::strtoull(Start, &End, 10);
  if (End == Start)
    return false;
  Out = V;
  return true;
}

} // namespace

std::string study::manifestRow(const CorpusProgram &P) {
  std::string Row = "{";
  Row += "\"schema\":" + std::to_string(kManifestSchema);
  Row += ",\"file\":\"" + jsonEscape(P.FileName) + "\"";
  Row += ",\"name\":\"" + jsonEscape(P.Name) + "\"";
  Row += ",\"index\":" + std::to_string(P.Index);
  Row += ",\"seed\":" + std::to_string(P.ProgramSeed);
  Row += ",\"cause\":\"" + std::string(causeName(P.Cause)) + "\"";
  Row += ",\"classification\":\"" +
         std::string(P.IsRealBug ? "real_bug" : "false_alarm") + "\"";
  Row += ",\"loc\":" + std::to_string(P.Loc);
  Row += ",\"attempts\":" + std::to_string(P.Attempts);
  Row += "}";
  return Row;
}

ManifestLoadResult study::loadManifest(const std::string &Path) {
  ManifestLoadResult R;
  std::ifstream In(Path);
  if (!In) {
    R.Error = "cannot open manifest '" + Path + "'";
    return R;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    ManifestEntry E;
    std::string Cause, Class;
    if (!findStringField(Line, "file", E.File) ||
        !findStringField(Line, "name", E.Name) ||
        !findStringField(Line, "cause", Cause) ||
        !findStringField(Line, "classification", Class) ||
        !findUIntField(Line, "seed", E.Seed)) {
      R.Error = Path + ":" + std::to_string(LineNo) +
                ": missing manifest field (need file/name/seed/cause/"
                "classification)";
      return R;
    }
    std::optional<ReportCause> C = causeFromName(Cause);
    if (!C) {
      R.Error = Path + ":" + std::to_string(LineNo) + ": unknown cause '" +
                Cause + "'";
      return R;
    }
    if (Class != "real_bug" && Class != "false_alarm") {
      R.Error = Path + ":" + std::to_string(LineNo) +
                ": unknown classification '" + Class + "'";
      return R;
    }
    E.Cause = *C;
    E.IsRealBug = Class == "real_bug";
    R.Entries.push_back(std::move(E));
  }
  return R;
}

std::string study::writeCorpus(const std::string &Dir,
                               const std::vector<CorpusProgram> &Programs) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return "cannot create directory '" + Dir + "': " + Ec.message();
  for (const CorpusProgram &P : Programs) {
    std::string Path = Dir + "/" + P.FileName;
    std::ofstream Out(Path);
    if (!Out)
      return "cannot write '" + Path + "'";
    Out << P.Source;
    if (!Out.good())
      return "write failed for '" + Path + "'";
  }
  std::string ManifestPath = Dir + "/manifest.jsonl";
  std::ofstream Man(ManifestPath);
  if (!Man)
    return "cannot write '" + ManifestPath + "'";
  for (const CorpusProgram &P : Programs)
    Man << manifestRow(P) << "\n";
  return Man.good() ? "" : "write failed for '" + ManifestPath + "'";
}

//===----------------------------------------------------------------------===//
// Triage-queue expansion
//===----------------------------------------------------------------------===//

QueueExpansion study::expandPathArgument(const std::string &Path) {
  namespace fs = std::filesystem;
  QueueExpansion Q;
  std::error_code Ec;
  if (fs::is_directory(Path, Ec)) {
    std::vector<std::string> Files;
    for (const fs::directory_entry &E : fs::directory_iterator(Path, Ec)) {
      if (E.is_regular_file() && E.path().extension() == ".adg")
        Files.push_back(E.path().string());
    }
    if (Ec) {
      Q.Error = "cannot list directory '" + Path + "': " + Ec.message();
      return Q;
    }
    if (Files.empty()) {
      Q.Error = "directory '" + Path + "' contains no .adg files";
      return Q;
    }
    std::sort(Files.begin(), Files.end());
    for (const std::string &F : Files)
      Q.Requests.emplace_back(F, fs::path(F).stem().string());
    return Q;
  }
  // A plain file keeps the CLI's historical behavior: the path is the name.
  Q.Requests.emplace_back(Path);
  return Q;
}

QueueExpansion study::expandManifestArgument(const std::string &ManifestPath) {
  namespace fs = std::filesystem;
  QueueExpansion Q;
  ManifestLoadResult M = loadManifest(ManifestPath);
  if (!M) {
    Q.Error = M.Error;
    return Q;
  }
  if (M.Entries.empty()) {
    Q.Error = "manifest '" + ManifestPath + "' has no entries";
    return Q;
  }
  fs::path Dir = fs::path(ManifestPath).parent_path();
  for (const ManifestEntry &E : M.Entries) {
    fs::path File = fs::path(E.File);
    if (File.is_relative() && !Dir.empty())
      File = Dir / File;
    Q.Requests.emplace_back(File.string(), E.Name);
    Q.Expected.push_back({E.Name, E.IsRealBug});
  }
  return Q;
}
