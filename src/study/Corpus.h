//===- study/Corpus.h - Certified corpus generator --------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic factory for annotated mini-language programs
/// with *certified* ground truth, scaling the 11-problem Figure 7 suite to
/// arbitrarily large corpora. Candidates are drawn from per-cause templates
/// (imprecise loop invariant, missing library annotation, non-linear
/// arithmetic, environment fact) and accepted only after certification --
/// the same bar `BenchmarkSuiteTest` holds the hand-written suite to:
///
///   1. the symbolic analysis reports the program initially *undecided*
///      (a potential but not certain error, as the paper requires of its
///      benchmarks), and
///   2. exhaustive concrete execution over the oracle's input/havoc box
///      confirms the declared real-bug/false-alarm classification.
///
/// Rejected candidates are resampled; acceptance-rate statistics are kept
/// per cause. Generation is deterministic per (seed, index): the candidate
/// stream for program #i depends only on the corpus seed and i, so
/// `generate(997)` works without generating the other 999 programs, the
/// same seed always yields byte-identical programs and manifest rows, and
/// a failing fuzz-farm seed replays exactly.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_STUDY_CORPUS_H
#define ABDIAG_STUDY_CORPUS_H

#include "core/Triage.h"
#include "support/Rng.h"

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace abdiag::study {

/// Why the symbolic analysis reports a potential error it cannot decide --
/// the same four report causes the Figure 7 benchmarks span.
enum class ReportCause : uint8_t {
  ImpreciseInvariant,  ///< loop annotation forgets an accumulator
  MissingAnnotation,   ///< un-annotated library call (havoc) flows to check
  NonLinearArithmetic, ///< product abstracted by an alpha variable
  EnvironmentFact,     ///< check depends on an environment-supplied range
  SummarizedCall,      ///< imprecision lives in a callee analyzed via its
                       ///< function summary (interprocedural)
  UnknownAnswer,       ///< a cold branch's loop-exit alpha is defined in no
                       ///< concrete run, so the oracle answers "unknown"
                       ///< (Section 5 potential-set path); certification
                       ///< additionally dry-runs the diagnosis and requires
                       ///< at least one unknown answer plus the right verdict
};

inline constexpr size_t NumReportCauses = 6;

/// Stable manifest spelling ("imprecise_invariant", ...).
const char *causeName(ReportCause C);
/// Short token used in generated program names ("invariant", ...).
const char *causeToken(ReportCause C);
/// Inverse of causeName(); accepts the short token too.
std::optional<ReportCause> causeFromName(std::string_view Name);

/// Size knobs: how much deterministic filler is braided around the
/// cause-specific core of each candidate.
struct CorpusKnobs {
  int MinFillerStmts = 1; ///< straight-line/branch/loop filler statements
  int MaxFillerStmts = 4;
  int MaxExtraLoops = 1;   ///< cap on *bounded* filler loops (soundly annotated)
  int MaxExtraVars = 4;    ///< filler temporaries beyond the template's core
  int MaxInlineDepth = 1;  ///< >0: some filler flows through helper functions
                           ///< (analyzed via summaries by default, or inlined
                           ///< under Options::InlineCalls -- the call-free vs.
                           ///< interprocedural dimension of the corpus)
  int MaxLoopDepth = 1;    ///< >1: filler loops may nest bounded inner loops
                           ///< to this depth (each level soundly annotated)
};

/// One accepted, certified program.
struct CorpusProgram {
  std::string Name;     ///< e.g. "gen_000042_nonlinear_bug"
  std::string FileName; ///< Name + ".adg"
  std::string Source;   ///< full file contents (header comment + program)
  uint64_t ProgramSeed = 0; ///< candidate seed that produced it (replayable)
  size_t Index = 0;         ///< position in the corpus
  ReportCause Cause = ReportCause::ImpreciseInvariant;
  bool IsRealBug = false; ///< certified classification
  size_t Loc = 0;         ///< lang::programLoc of the parsed program
  int Attempts = 0;       ///< candidates tried for this index (>= 1)
};

/// Why candidates were rejected, per cause.
struct CauseStats {
  size_t Accepted = 0;
  size_t Candidates = 0;       ///< total candidates drawn (>= Accepted)
  size_t RejectedDecided = 0;  ///< analysis alone discharged or validated
  size_t RejectedTruth = 0;    ///< oracle ground truth != declared class
  size_t RejectedNoRuns = 0;   ///< assumes filtered out every concrete run
  size_t RejectedParse = 0;    ///< template emitted an unparsable candidate
  size_t RejectedDryRun = 0;   ///< diagnosis dry-run missed the required
                               ///< verdict or unknown answers (UnknownAnswer
                               ///< cause only)

  double acceptanceRate() const {
    return Candidates ? static_cast<double>(Accepted) / Candidates : 0.0;
  }
  CauseStats &operator+=(const CauseStats &O);
};

struct CorpusStats {
  std::array<CauseStats, NumReportCauses> PerCause;
  CauseStats total() const;
};

/// Generator configuration.
struct CorpusOptions {
  uint64_t Seed = 1;
  size_t Count = 100;
  /// Causes cycled through per index; classification alternates every
  /// full cycle, so any window of 2*Causes.size() consecutive indices
  /// covers every (cause, classification) pair.
  std::vector<ReportCause> Causes = {
      ReportCause::ImpreciseInvariant, ReportCause::MissingAnnotation,
      ReportCause::NonLinearArithmetic, ReportCause::EnvironmentFact};
  CorpusKnobs Knobs;
  /// Certification box. Must be at least as large as the box triage will
  /// diagnose with, or a "false alarm" certified on a small box could fail
  /// on an input triage explores; defaults to the triage default.
  core::ConcreteOracleConfig Oracle;
  /// Candidate resamples per index before generate() throws CorpusError.
  int MaxAttempts = 256;
  std::string NamePrefix = "gen";
};

class CorpusError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class CorpusGenerator {
public:
  explicit CorpusGenerator(CorpusOptions Opts);

  const CorpusOptions &options() const { return Opts; }

  /// The cause/classification this index will be certified against.
  ReportCause causeFor(size_t Index) const;
  bool wantBugFor(size_t Index) const;

  /// Generates (certifying, resampling on rejection) program \p Index.
  /// Deterministic: depends only on options and \p Index. Throws
  /// CorpusError when MaxAttempts candidates all fail certification.
  CorpusProgram generate(size_t Index);

  /// All Count programs in index order; \p OnProgram (when set) observes
  /// each acceptance as it happens.
  std::vector<CorpusProgram>
  generateAll(const std::function<void(const CorpusProgram &)> &OnProgram = {});

  /// Acceptance/rejection counters accumulated by this generator.
  const CorpusStats &stats() const { return Stats; }

  /// One *uncertified* candidate for the given cause/classification --
  /// exposed so property tests can drive the raw template space.
  static std::string randomCandidate(Rng &R, ReportCause Cause, bool WantBug,
                                     const CorpusKnobs &Knobs);

private:
  CorpusOptions Opts;
  CorpusStats Stats;
};

/// The general mixed-statement random program factory (loops, branches,
/// assumes, havoc and products, no certification): shared by the
/// whole-pipeline soundness property test in RandomDiagnosisTest.
std::string randomMixedProgram(Rng &R);

//===----------------------------------------------------------------------===//
// Manifest I/O
//===----------------------------------------------------------------------===//

/// One row of a corpus manifest (manifest.jsonl).
struct ManifestEntry {
  std::string File; ///< .adg file name, relative to the manifest's directory
  std::string Name;
  uint64_t Seed = 0; ///< candidate seed (replay: same bytes)
  ReportCause Cause = ReportCause::ImpreciseInvariant;
  bool IsRealBug = false;
};

/// Manifest row schema version, emitted as the leading "schema" key. Bump
/// on breaking changes only (removing or re-typing a key); additions are
/// compatible because every reader tolerates unknown keys. The bump rule
/// is documented in benchmarks/README.md.
constexpr int kManifestSchema = 1;

/// Renders one manifest JSON object (no trailing newline). Schema is
/// documented in benchmarks/README.md.
std::string manifestRow(const CorpusProgram &P);

struct ManifestLoadResult {
  std::vector<ManifestEntry> Entries;
  std::string Error; ///< non-empty on failure

  explicit operator bool() const { return Error.empty(); }
};

/// Parses a manifest.jsonl written by writeCorpus()/abdiag_gen.
ManifestLoadResult loadManifest(const std::string &Path);

/// Writes each program's .adg plus manifest.jsonl into \p Dir (created if
/// missing). Returns an empty string on success, an error message otherwise.
std::string writeCorpus(const std::string &Dir,
                        const std::vector<CorpusProgram> &Programs);

//===----------------------------------------------------------------------===//
// Triage-queue expansion (shared between abdiag_triage and tests)
//===----------------------------------------------------------------------===//

/// Expected classification for a queued report, keyed by request name.
struct ExpectedVerdict {
  std::string Name;
  bool IsRealBug = false;
};

/// A CLI input expanded into triage requests: a single .adg file maps to
/// itself, a directory to every *.adg inside it (sorted by name), and a
/// manifest to its entries (which also carry expected classifications).
struct QueueExpansion {
  std::vector<core::TriageRequest> Requests;
  std::vector<ExpectedVerdict> Expected; ///< non-empty for manifests only
  std::string Error;                     ///< non-empty on failure

  explicit operator bool() const { return Error.empty(); }
};

/// Expands a positional path argument (file or directory).
QueueExpansion expandPathArgument(const std::string &Path);

/// Expands a --manifest argument; entry files resolve relative to the
/// manifest's directory.
QueueExpansion expandManifestArgument(const std::string &ManifestPath);

} // namespace abdiag::study

#endif // ABDIAG_STUDY_CORPUS_H
