//===- study/HumanModel.cpp - Simulated study participants -------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/HumanModel.h"

#include "smt/FormulaOps.h"

#include <algorithm>

using namespace abdiag;
using namespace abdiag::study;
using namespace abdiag::core;

Oracle::Answer SimulatedHumanOracle::corrupt(Answer TruthAnswer,
                                             const smt::Formula *F) {
  ++Queries;
  size_t NumVars = smt::freeVarsVec(F).size();
  QuerySeconds +=
      (Params.SecondsPerQuery +
       Params.SecondsPerQueryVar * static_cast<double>(NumVars)) *
      (1.0 + Rand.gaussian(0, Params.TimeJitter));

  if (Rand.chance(Params.UnknownRate) || TruthAnswer == Answer::Unknown)
    return Answer::Unknown;
  double ErrorRate =
      Params.BaseErrorRate +
      Params.ErrorPerExtraVar * static_cast<double>(NumVars > 0 ? NumVars - 1
                                                                : 0);
  if (Rand.chance(std::min(0.5, ErrorRate)))
    return TruthAnswer == Answer::Yes ? Answer::No : Answer::Yes;
  return TruthAnswer;
}

Oracle::Answer SimulatedHumanOracle::isInvariant(const smt::Formula *F) {
  return corrupt(Truth.isInvariant(F), F);
}

Oracle::Answer SimulatedHumanOracle::isPossible(const smt::Formula *F,
                                                const smt::Formula *Given) {
  return corrupt(Truth.isPossible(F, Given), F);
}

ManualClassification
abdiag::study::drawManualClassification(Rng &Rand, double Difficulty,
                                        const ManualModelParams &Params) {
  Difficulty = std::clamp(Difficulty, 0.0, 1.0);
  double PCorrect = Params.CorrectAtEasiest - Params.CorrectSlope * Difficulty;
  double PUnknown = Params.UnknownAtEasiest + Params.UnknownSlope * Difficulty;
  ManualClassification C;
  double U = Rand.uniform();
  if (U < PCorrect)
    C.V = ManualClassification::Verdict::Correct;
  else if (U < PCorrect + PUnknown)
    C.V = ManualClassification::Verdict::Unknown;
  else
    C.V = ManualClassification::Verdict::Wrong;
  double Base = Params.SecondsAtEasiest + Params.SecondsSlope * Difficulty;
  C.Seconds = std::max(60.0, Base * (1.0 + Rand.gaussian(0, Params.TimeJitter)));
  return C;
}
