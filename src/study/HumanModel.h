//===- study/HumanModel.h - Simulated study participants --------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated respondents for the Figure 7 user study. The original study
/// measured 49 professional programmers; those humans cannot be re-run, so
/// this module provides two *mechanistic* response models whose free
/// constants are calibrated against the paper's aggregate statistics (see
/// EXPERIMENTS.md for the calibration notes):
///
///  * SimulatedHumanOracle answers the diagnosis engine's queries by
///    consulting a ground-truth oracle and corrupting the answer with a
///    probability that grows with query size -- small queries (the point of
///    the paper) are answered nearly perfectly. Classification accuracy of
///    the "new technique" arm then *emerges* from running the real Figure 6
///    engine against these noisy answers.
///
///  * ManualClassification draws a whole-program classification whose
///    accuracy and latency degrade with problem difficulty (LOC and the
///    size of the analysis facts involved), reproducing the near-chance
///    accuracy the paper observed for manual triage.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_STUDY_HUMANMODEL_H
#define ABDIAG_STUDY_HUMANMODEL_H

#include "core/Oracle.h"
#include "support/Rng.h"

namespace abdiag::study {

/// Constants of the assisted-arm response model.
struct AssistedModelParams {
  /// Probability of answering a 1-variable query incorrectly.
  double BaseErrorRate = 0.025;
  /// Additional error probability per extra variable in the query.
  double ErrorPerExtraVar = 0.02;
  /// Probability of "I don't know".
  double UnknownRate = 0.02;
  /// Seconds of fixed overhead (reading the report and the first query).
  double BaseSeconds = 26;
  /// Seconds per query, plus per-variable reading time.
  double SecondsPerQuery = 11;
  double SecondsPerQueryVar = 3;
  /// Relative lognormal-ish jitter on times.
  double TimeJitter = 0.18;
};

/// Oracle that corrupts a ground-truth oracle's answers like a careful but
/// fallible human. Also accumulates the simulated time spent answering.
class SimulatedHumanOracle : public core::Oracle {
public:
  SimulatedHumanOracle(core::Oracle &Truth, Rng Rand,
                       AssistedModelParams Params = AssistedModelParams())
      : Truth(Truth), Rand(Rand), Params(Params) {}

  Answer isInvariant(const smt::Formula *F) override;
  Answer isPossible(const smt::Formula *F, const smt::Formula *Given) override;

  /// Simulated seconds spent on the queries answered so far (excluding the
  /// fixed per-session overhead).
  double querySeconds() const { return QuerySeconds; }
  int queriesAnswered() const { return Queries; }

private:
  core::Oracle &Truth;
  Rng Rand;
  AssistedModelParams Params;
  double QuerySeconds = 0;
  int Queries = 0;

  Answer corrupt(Answer TruthAnswer, const smt::Formula *F);
};

/// Constants of the manual-arm response model.
struct ManualModelParams {
  /// Accuracy for the easiest problem; decreases with difficulty.
  double CorrectAtEasiest = 0.47;
  /// Accuracy drop from easiest to hardest problem.
  double CorrectSlope = 0.24;
  /// "I don't know" rate at the easiest / added toward the hardest.
  double UnknownAtEasiest = 0.13;
  double UnknownSlope = 0.07;
  /// Seconds at easiest / added toward hardest, with jitter.
  double SecondsAtEasiest = 215;
  double SecondsSlope = 150;
  double TimeJitter = 0.2;
};

/// One simulated manual classification.
struct ManualClassification {
  enum class Verdict : uint8_t { Correct, Wrong, Unknown } V;
  double Seconds;
};

/// Draws a manual classification for a problem of normalized difficulty
/// \p Difficulty in [0, 1].
ManualClassification drawManualClassification(Rng &Rand, double Difficulty,
                                              const ManualModelParams &Params);

} // namespace abdiag::study

#endif // ABDIAG_STUDY_HUMANMODEL_H
