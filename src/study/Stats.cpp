//===- study/Stats.cpp - Statistics for the user study -----------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/Stats.h"

#include <cassert>
#include <cmath>

using namespace abdiag::study;

double abdiag::study::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double S = 0;
  for (double X : Xs)
    S += X;
  return S / static_cast<double>(Xs.size());
}

double abdiag::study::sampleVariance(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0;
  double M = mean(Xs);
  double S = 0;
  for (double X : Xs)
    S += (X - M) * (X - M);
  return S / static_cast<double>(Xs.size() - 1);
}

namespace {

/// Continued-fraction evaluation for the incomplete beta function
/// (Lentz's algorithm; see Numerical Recipes betacf).
double betaContinuedFraction(double A, double B, double X) {
  constexpr int MaxIter = 300;
  constexpr double Eps = 3e-14;
  constexpr double FpMin = 1e-300;

  double Qab = A + B, Qap = A + 1, Qam = A - 1;
  double C = 1, D = 1 - Qab * X / Qap;
  if (std::fabs(D) < FpMin)
    D = FpMin;
  D = 1 / D;
  double H = D;
  for (int M = 1; M <= MaxIter; ++M) {
    int M2 = 2 * M;
    double Aa = M * (B - M) * X / ((Qam + M2) * (A + M2));
    D = 1 + Aa * D;
    if (std::fabs(D) < FpMin)
      D = FpMin;
    C = 1 + Aa / C;
    if (std::fabs(C) < FpMin)
      C = FpMin;
    D = 1 / D;
    H *= D * C;
    Aa = -(A + M) * (Qab + M) * X / ((A + M2) * (Qap + M2));
    D = 1 + Aa * D;
    if (std::fabs(D) < FpMin)
      D = FpMin;
    C = 1 + Aa / C;
    if (std::fabs(C) < FpMin)
      C = FpMin;
    D = 1 / D;
    double Del = D * C;
    H *= Del;
    if (std::fabs(Del - 1.0) < Eps)
      break;
  }
  return H;
}

} // namespace

double abdiag::study::regularizedIncompleteBeta(double A, double B, double X) {
  if (X <= 0)
    return 0;
  if (X >= 1)
    return 1;
  double LnBeta = std::lgamma(A + B) - std::lgamma(A) - std::lgamma(B) +
                  A * std::log(X) + B * std::log(1 - X);
  double Front = std::exp(LnBeta);
  // Use the symmetry relation for faster convergence.
  if (X < (A + 1) / (A + B + 2))
    return Front * betaContinuedFraction(A, B, X) / A;
  return 1 - Front * betaContinuedFraction(B, A, 1 - X) / B;
}

double abdiag::study::studentTCdf(double T, double Nu) {
  if (Nu <= 0)
    return 0.5;
  double X = Nu / (Nu + T * T);
  double P = 0.5 * regularizedIncompleteBeta(Nu / 2, 0.5, X);
  return T >= 0 ? 1 - P : P;
}

TTestResult abdiag::study::welchTTest(const std::vector<double> &A,
                                      const std::vector<double> &B) {
  TTestResult R;
  if (A.size() < 2 || B.size() < 2)
    return R;
  double Ma = mean(A), Mb = mean(B);
  double Va = sampleVariance(A), Vb = sampleVariance(B);
  double Na = static_cast<double>(A.size()), Nb = static_cast<double>(B.size());
  double SeA = Va / Na, SeB = Vb / Nb;
  double Se = SeA + SeB;
  if (Se <= 0) {
    // Identical constant samples: no evidence of difference.
    R.T = 0;
    R.DegreesOfFreedom = Na + Nb - 2;
    R.PValue = Ma == Mb ? 1.0 : 0.0;
    return R;
  }
  R.T = (Ma - Mb) / std::sqrt(Se);
  R.DegreesOfFreedom =
      Se * Se / (SeA * SeA / (Na - 1) + SeB * SeB / (Nb - 1));
  // Two-tailed p-value via the direct tail formula
  // p = I_{nu/(nu+t^2)}(nu/2, 1/2), which stays accurate for extreme t
  // (no 1 - CDF cancellation).
  double Nu = R.DegreesOfFreedom;
  R.PValue = regularizedIncompleteBeta(Nu / 2, 0.5, Nu / (Nu + R.T * R.T));
  return R;
}
