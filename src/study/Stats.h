//===- study/Stats.h - Statistics for the user study ------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statistics the paper reports: means, and Welch's two-tailed t-test
/// ("assuming potentially unequal variance", Section 6) with p-values
/// computed through the regularized incomplete beta function.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_STUDY_STATS_H
#define ABDIAG_STUDY_STATS_H

#include <cstddef>
#include <vector>

namespace abdiag::study {

/// Sample mean; 0 for an empty sample.
double mean(const std::vector<double> &Xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points.
double sampleVariance(const std::vector<double> &Xs);

/// Result of Welch's t-test.
struct TTestResult {
  double T = 0;                ///< test statistic
  double DegreesOfFreedom = 0; ///< Welch-Satterthwaite approximation
  double PValue = 1;           ///< two-tailed
};

/// Welch's two-sample t-test (unequal variances), two-tailed.
TTestResult welchTTest(const std::vector<double> &A,
                       const std::vector<double> &B);

/// Regularized incomplete beta function I_x(a, b) (continued fraction,
/// Numerical-Recipes style); exposed for testing.
double regularizedIncompleteBeta(double A, double B, double X);

/// CDF of Student's t distribution with \p Nu degrees of freedom.
double studentTCdf(double T, double Nu);

} // namespace abdiag::study

#endif // ABDIAG_STUDY_STATS_H
