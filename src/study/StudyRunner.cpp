//===- study/StudyRunner.cpp - Figure 7 regeneration -------------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/StudyRunner.h"

#include "core/ErrorDiagnoser.h"
#include "lang/AstPrinter.h"
#include "smt/FormulaOps.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace abdiag;
using namespace abdiag::study;
using namespace abdiag::core;

namespace {

/// Difficulty proxy for the manual model: printed LOC plus the size of the
/// analysis facts the human would have to reconstruct.
double difficultyScore(size_t Loc, size_t Atoms) {
  return static_cast<double>(Loc) + 2.0 * static_cast<double>(Atoms);
}

struct LoadedProblem {
  ErrorDiagnoser Diagnoser;
  std::unique_ptr<ConcreteOracle> Truth;
  size_t Loc = 0;
  double Difficulty = 0; // raw; normalized later
};

} // namespace

StudyResult abdiag::study::runStudy(const StudyConfig &Config) {
  const std::vector<BenchmarkInfo> &Suite = benchmarkSuite();
  StudyResult Out;
  Rng Root(Config.Seed);

  // Load all problems first (difficulty normalization needs the full set).
  std::vector<std::unique_ptr<LoadedProblem>> Loaded;
  for (const BenchmarkInfo &B : Suite) {
    auto L = std::make_unique<LoadedProblem>();
    if (core::LoadResult R = L->Diagnoser.loadFile(benchmarkPath(B)); !R) {
      std::fprintf(stderr, "abdiag: fatal: cannot load benchmark %s: %s\n",
                   B.Name.c_str(), R.message().c_str());
      std::abort();
    }
    L->Loc = lang::programLoc(L->Diagnoser.program());
    const analysis::AnalysisResult &AR = L->Diagnoser.analysis();
    L->Difficulty = difficultyScore(
        L->Loc, smt::atomCount(AR.SuccessCondition) +
                    smt::atomCount(AR.Invariants));
    L->Truth = L->Diagnoser.makeConcreteOracle();
    if (Config.VerifyGroundTruth &&
        L->Truth->anyFailingRun() != B.IsRealBug) {
      std::fprintf(stderr,
                   "abdiag: fatal: benchmark %s ground truth mismatch\n",
                   B.Name.c_str());
      std::abort();
    }
    Loaded.push_back(std::move(L));
  }
  double DMin = 1e18, DMax = -1e18;
  for (const auto &L : Loaded) {
    DMin = std::min(DMin, L->Difficulty);
    DMax = std::max(DMax, L->Difficulty);
  }
  double DSpan = std::max(1.0, DMax - DMin);

  std::vector<double> AllManualCorrect, AllAssistedCorrect;
  std::vector<double> AllManualSeconds, AllAssistedSeconds;

  for (size_t PI = 0; PI < Suite.size(); ++PI) {
    const BenchmarkInfo &B = Suite[PI];
    LoadedProblem &L = *Loaded[PI];
    ProblemResult PR;
    PR.Info = B;
    PR.OurLoc = L.Loc;
    double Difficulty = (L.Difficulty - DMin) / DSpan;
    Rng ProblemRng = Root.fork(PI + 1);

    // Query-computation cost: one noiseless diagnosis with the exact
    // oracle, timed (the paper's "below 0.1s" claim).
    {
      auto T0 = std::chrono::steady_clock::now();
      DiagnosisResult R = L.Diagnoser.diagnose(*L.Truth);
      auto T1 = std::chrono::steady_clock::now();
      PR.ComputeSeconds =
          std::chrono::duration<double>(T1 - T0).count();
      PR.NoiselessQueries = static_cast<int>(R.Transcript.size());
      PR.MinQueries = PR.MaxQueries = PR.NoiselessQueries;
    }

    // Manual arm.
    for (int R = 0; R < Config.RespondentsPerArm; ++R) {
      Rng Rand = ProblemRng.fork(1000 + static_cast<uint64_t>(R));
      ManualClassification C =
          drawManualClassification(Rand, Difficulty, Config.Manual);
      switch (C.V) {
      case ManualClassification::Verdict::Correct:
        PR.Manual.PctCorrect += 1;
        PR.ManualCorrect.push_back(1);
        break;
      case ManualClassification::Verdict::Wrong:
        PR.Manual.PctWrong += 1;
        PR.ManualCorrect.push_back(0);
        break;
      case ManualClassification::Verdict::Unknown:
        PR.Manual.PctUnknown += 1;
        PR.ManualCorrect.push_back(0);
        break;
      }
      PR.Manual.AvgSeconds += C.Seconds;
      PR.ManualSeconds.push_back(C.Seconds);
    }

    // Assisted arm: run the real engine against the noisy human.
    for (int R = 0; R < Config.RespondentsPerArm; ++R) {
      Rng Rand = ProblemRng.fork(2000 + static_cast<uint64_t>(R));
      SimulatedHumanOracle Human(*L.Truth, Rand.fork(7), Config.Assisted);
      DiagnosisResult DR = L.Diagnoser.diagnose(Human);
      PR.MinQueries =
          std::min(PR.MinQueries, static_cast<int>(DR.Transcript.size()));
      PR.MaxQueries =
          std::max(PR.MaxQueries, static_cast<int>(DR.Transcript.size()));
      bool Correct = false, Unknown = false;
      switch (DR.Outcome) {
      case DiagnosisOutcome::Discharged:
        Correct = !B.IsRealBug;
        break;
      case DiagnosisOutcome::Validated:
        Correct = B.IsRealBug;
        break;
      case DiagnosisOutcome::Inconclusive:
        Unknown = true;
        break;
      }
      if (Unknown) {
        PR.Assisted.PctUnknown += 1;
        PR.AssistedCorrect.push_back(0);
      } else if (Correct) {
        PR.Assisted.PctCorrect += 1;
        PR.AssistedCorrect.push_back(1);
      } else {
        PR.Assisted.PctWrong += 1;
        PR.AssistedCorrect.push_back(0);
      }
      double Seconds =
          (Config.Assisted.BaseSeconds + Human.querySeconds()) *
          (1.0 + Rand.gaussian(0, 0.05));
      PR.Assisted.AvgSeconds += Seconds;
      PR.AssistedSeconds.push_back(Seconds);
    }

    double N = static_cast<double>(Config.RespondentsPerArm);
    for (ArmStats *A : {&PR.Manual, &PR.Assisted}) {
      A->PctCorrect = 100.0 * A->PctCorrect / N;
      A->PctWrong = 100.0 * A->PctWrong / N;
      A->PctUnknown = 100.0 * A->PctUnknown / N;
      A->AvgSeconds /= N;
    }

    AllManualCorrect.insert(AllManualCorrect.end(), PR.ManualCorrect.begin(),
                            PR.ManualCorrect.end());
    AllAssistedCorrect.insert(AllAssistedCorrect.end(),
                              PR.AssistedCorrect.begin(),
                              PR.AssistedCorrect.end());
    AllManualSeconds.insert(AllManualSeconds.end(), PR.ManualSeconds.begin(),
                            PR.ManualSeconds.end());
    AllAssistedSeconds.insert(AllAssistedSeconds.end(),
                              PR.AssistedSeconds.begin(),
                              PR.AssistedSeconds.end());
    Out.Problems.push_back(std::move(PR));
  }

  // Averages and t-tests.
  size_t NP = Out.Problems.size();
  for (const ProblemResult &PR : Out.Problems) {
    Out.ManualAvg.PctCorrect += PR.Manual.PctCorrect;
    Out.ManualAvg.PctWrong += PR.Manual.PctWrong;
    Out.ManualAvg.PctUnknown += PR.Manual.PctUnknown;
    Out.ManualAvg.AvgSeconds += PR.Manual.AvgSeconds;
    Out.AssistedAvg.PctCorrect += PR.Assisted.PctCorrect;
    Out.AssistedAvg.PctWrong += PR.Assisted.PctWrong;
    Out.AssistedAvg.PctUnknown += PR.Assisted.PctUnknown;
    Out.AssistedAvg.AvgSeconds += PR.Assisted.AvgSeconds;
    Out.AvgLoc += static_cast<double>(PR.OurLoc);
  }
  for (ArmStats *A : {&Out.ManualAvg, &Out.AssistedAvg}) {
    A->PctCorrect /= static_cast<double>(NP);
    A->PctWrong /= static_cast<double>(NP);
    A->PctUnknown /= static_cast<double>(NP);
    A->AvgSeconds /= static_cast<double>(NP);
  }
  Out.AvgLoc /= static_cast<double>(NP);
  Out.AccuracyTest = welchTTest(AllManualCorrect, AllAssistedCorrect);
  Out.TimeTest = welchTTest(AllManualSeconds, AllAssistedSeconds);
  std::vector<double> MC, AC, MT, AT;
  for (const ProblemResult &PR : Out.Problems) {
    MC.push_back(PR.Manual.PctCorrect);
    AC.push_back(PR.Assisted.PctCorrect);
    MT.push_back(PR.Manual.AvgSeconds);
    AT.push_back(PR.Assisted.AvgSeconds);
  }
  Out.AccuracyTestPerProblem = welchTTest(MC, AC);
  Out.TimeTestPerProblem = welchTTest(MT, AT);
  return Out;
}

std::string abdiag::study::formatFigure7(const StudyResult &R,
                                         bool IncludePaperRows) {
  std::ostringstream OS;
  char Buf[256];
  OS << "Figure 7: results from the (simulated) user study\n";
  OS << "                        |      Manual classification        |"
        "          New technique\n";
  OS << "  problem        LOC cls| %corr  %wrong  %?     time        |"
        " %corr  %wrong  %?     time   #q\n";
  OS << "  ----------------------------------------------------------"
        "--------------------------------\n";
  for (size_t I = 0; I < R.Problems.size(); ++I) {
    const ProblemResult &P = R.Problems[I];
    std::snprintf(Buf, sizeof(Buf),
                  "  %-14s %4zu %-3s| %5.1f  %5.1f  %5.1f  %5.0f s     | "
                  "%5.1f  %5.1f  %5.1f  %4.0f s  %d-%d\n",
                  P.Info.Name.c_str(), P.OurLoc,
                  P.Info.IsRealBug ? "bug" : "fa", P.Manual.PctCorrect,
                  P.Manual.PctWrong, P.Manual.PctUnknown,
                  P.Manual.AvgSeconds, P.Assisted.PctCorrect,
                  P.Assisted.PctWrong, P.Assisted.PctUnknown,
                  P.Assisted.AvgSeconds, P.MinQueries, P.MaxQueries);
    OS << Buf;
    if (IncludePaperRows) {
      const PaperRow &PR = P.Info.Paper;
      std::snprintf(Buf, sizeof(Buf),
                    "   (paper)       %4d    | %5.1f  %5.1f  %5.1f  %5.0f s"
                    "     | %5.1f  %5.1f  %5.1f  %4.0f s\n",
                    PR.Loc, PR.ManualCorrect, PR.ManualWrong,
                    PR.ManualUnknown, PR.ManualTime, PR.NewCorrect,
                    PR.NewWrong, PR.NewUnknown, PR.NewTime);
      OS << Buf;
    }
  }
  OS << "  ----------------------------------------------------------"
        "--------------------------------\n";
  std::snprintf(Buf, sizeof(Buf),
                "  Average        %4.0f    | %5.1f  %5.1f  %5.1f  %5.0f s"
                "     | %5.1f  %5.1f  %5.1f  %4.0f s\n",
                R.AvgLoc, R.ManualAvg.PctCorrect, R.ManualAvg.PctWrong,
                R.ManualAvg.PctUnknown, R.ManualAvg.AvgSeconds,
                R.AssistedAvg.PctCorrect, R.AssistedAvg.PctWrong,
                R.AssistedAvg.PctUnknown, R.AssistedAvg.AvgSeconds);
  OS << Buf;
  OS << "  (paper average)  186    |  32.9   51.1   16.0    293 s     |"
        "  89.6    7.3    2.3    55 s\n\n";
  std::snprintf(Buf, sizeof(Buf),
                "  Welch t-test, accuracy (per problem):     t = %6.2f, "
                "df = %5.1f, p = %.3g (paper: p = 5e-8)\n",
                R.AccuracyTestPerProblem.T,
                R.AccuracyTestPerProblem.DegreesOfFreedom,
                R.AccuracyTestPerProblem.PValue);
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  Welch t-test, time (per participant):     t = %6.2f, "
                "df = %5.1f, p = %.3g (paper: p = 1.2e-28)\n",
                R.TimeTest.T, R.TimeTest.DegreesOfFreedom, R.TimeTest.PValue);
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  Welch t-test, accuracy (per participant): t = %6.2f, "
                "df = %5.1f, p = %.3g\n",
                R.AccuracyTest.T, R.AccuracyTest.DegreesOfFreedom,
                R.AccuracyTest.PValue);
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  Welch t-test, time (per problem):         t = %6.2f, "
                "df = %5.1f, p = %.3g\n",
                R.TimeTestPerProblem.T, R.TimeTestPerProblem.DegreesOfFreedom,
                R.TimeTestPerProblem.PValue);
  OS << Buf;
  return OS.str();
}

std::string abdiag::study::formatFigure7Csv(const StudyResult &R) {
  std::ostringstream OS;
  OS << "problem,loc,classification,kind,"
        "manual_correct,manual_wrong,manual_unknown,manual_seconds,"
        "new_correct,new_wrong,new_unknown,new_seconds,"
        "queries_noiseless,compute_seconds\n";
  for (const ProblemResult &P : R.Problems) {
    OS << P.Info.Name << ',' << P.OurLoc << ','
       << (P.Info.IsRealBug ? "bug" : "false-alarm") << ','
       << (P.Info.Synthetic ? "synthetic" : "real") << ','
       << P.Manual.PctCorrect << ',' << P.Manual.PctWrong << ','
       << P.Manual.PctUnknown << ',' << P.Manual.AvgSeconds << ','
       << P.Assisted.PctCorrect << ',' << P.Assisted.PctWrong << ','
       << P.Assisted.PctUnknown << ',' << P.Assisted.AvgSeconds << ','
       << P.NoiselessQueries << ',' << P.ComputeSeconds << "\n";
  }
  return OS.str();
}
