//===- study/StudyRunner.h - Figure 7 regeneration --------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the full user-study simulation (experiment E1/E3 in DESIGN.md):
/// for each of the 11 benchmark problems, simulate one respondent pool
/// classifying the error report manually and another using the Figure 6
/// query loop (the real engine, answered by the noisy simulated human whose
/// ground truth is the exhaustive concrete-execution oracle), then compute
/// the Figure 7 columns and the Section 6 Welch t-tests.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_STUDY_STUDYRUNNER_H
#define ABDIAG_STUDY_STUDYRUNNER_H

#include "study/Benchmarks.h"
#include "study/HumanModel.h"
#include "study/Stats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace abdiag::study {

/// Aggregated per-arm results for one problem (one Figure 7 half-row).
struct ArmStats {
  double PctCorrect = 0;
  double PctWrong = 0;
  double PctUnknown = 0;
  double AvgSeconds = 0;
};

/// Result for one problem (one Figure 7 row).
struct ProblemResult {
  BenchmarkInfo Info;
  size_t OurLoc = 0;
  ArmStats Manual;
  ArmStats Assisted;
  int MinQueries = 0, MaxQueries = 0;
  /// Queries asked in one noiseless run with the sound oracle (the paper's
  /// "one to three questions" claim refers to this).
  int NoiselessQueries = 0;
  /// Wall-clock seconds of query computation (analysis + all abductions)
  /// for one noiseless diagnosis run -- the paper's "< 0.1s" claim.
  double ComputeSeconds = 0;
  /// Raw per-respondent samples, for the t-tests.
  std::vector<double> ManualCorrect, AssistedCorrect;
  std::vector<double> ManualSeconds, AssistedSeconds;
};

/// Whole-study result.
struct StudyResult {
  std::vector<ProblemResult> Problems;
  ArmStats ManualAvg, AssistedAvg;
  double AvgLoc = 0;
  TTestResult AccuracyTest; ///< per-participant manual vs assisted accuracy
  TTestResult TimeTest;     ///< per-participant manual vs assisted seconds
  /// Per-problem variants (11 rows per arm), closer to the magnitudes the
  /// paper reports.
  TTestResult AccuracyTestPerProblem;
  TTestResult TimeTestPerProblem;
};

/// Study configuration.
struct StudyConfig {
  uint64_t Seed = 2012;
  int RespondentsPerArm = 24; // paper: ~24 per problem per arm
  AssistedModelParams Assisted;
  ManualModelParams Manual;
  /// Abort (with a message) if a benchmark's ground truth disagrees with
  /// its declared classification; on by default.
  bool VerifyGroundTruth = true;
};

/// Runs the simulation over the whole benchmark suite.
StudyResult runStudy(const StudyConfig &Config = StudyConfig());

/// Renders the Figure 7 table (plus the original paper numbers) as text.
std::string formatFigure7(const StudyResult &R, bool IncludePaperRows = true);

/// Renders the per-problem results as CSV (one row per problem, both arms),
/// for plotting.
std::string formatFigure7Csv(const StudyResult &R);

} // namespace abdiag::study

#endif // ABDIAG_STUDY_STUDYRUNNER_H
