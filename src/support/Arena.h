//===- support/Arena.h - Bump-pointer allocator -----------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic bump allocator: allocations are appended to fixed-size
/// blocks and never individually freed, so an allocation costs a pointer
/// bump and objects stay contiguous in allocation order. Nothing is ever
/// moved, so pointers into the arena are stable for its whole lifetime.
/// The arena does not run destructors -- owners of objects with
/// non-trivial destructors must destroy them explicitly before the arena
/// dies (FormulaManager does this for its nodes).
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_ARENA_H
#define ABDIAG_SUPPORT_ARENA_H

#include <cstddef>
#include <memory>
#include <vector>

namespace abdiag::support {

class Arena {
  struct Block {
    std::unique_ptr<std::byte[]> Mem;
    size_t Size;
  };
  std::vector<Block> Blocks;
  std::byte *Cur = nullptr;
  size_t Left = 0;
  size_t Used = 0;

public:
  static constexpr size_t DefaultBlockBytes = 64 * 1024;

private:

  void grow(size_t AtLeast) {
    size_t Size = std::max(DefaultBlockBytes, AtLeast);
    Blocks.push_back({std::make_unique<std::byte[]>(Size), Size});
    Cur = Blocks.back().Mem.get();
    Left = Size;
  }

public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  void *allocate(size_t Bytes, size_t Align) {
    size_t Pad = (Align - reinterpret_cast<uintptr_t>(Cur) % Align) % Align;
    if (Left < Bytes + Pad) {
      // A fresh block is maximally aligned, so no pad is needed there.
      grow(Bytes + Align);
      Pad = 0;
    }
    std::byte *P = Cur + Pad;
    Cur = P + Bytes;
    Left -= Bytes + Pad;
    Used += Bytes + Pad;
    return P;
  }

  template <typename T> T *allocate() {
    return static_cast<T *>(allocate(sizeof(T), alignof(T)));
  }

  template <typename T> T *allocateArray(size_t N) {
    return static_cast<T *>(allocate(sizeof(T) * N, alignof(T)));
  }

  /// Bytes handed out (including alignment padding); grows monotonically.
  size_t bytesUsed() const { return Used; }
};

} // namespace abdiag::support

#endif // ABDIAG_SUPPORT_ARENA_H
