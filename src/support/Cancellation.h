//===- support/Cancellation.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for long-running solver work. A
/// CancellationToken combines an explicit cancel flag with an optional
/// wall-clock deadline; the potentially unbounded loops of the stack (the
/// CDCL search, Cooper elimination, the MSA subset search, the concrete
/// oracle's run enumeration) poll it and abort by throwing CancelledError.
///
/// Polling is cheap by construction: the fast path is one relaxed atomic
/// load, and the monotonic clock is consulted only on every 256th poll, so
/// tokens can be polled from per-node/per-conflict loops without measurable
/// overhead. Deadline enforcement is therefore best-effort -- a timeout is
/// detected within a few hundred loop iterations of the deadline, not at
/// the exact instant.
///
/// Tokens are installed per Solver (Solver::setCancellation) and flow from
/// there into every nested loop; the triage engine allocates one token per
/// report, which is how one pathological report degrades to a Timeout row
/// instead of stalling a whole batch.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_CANCELLATION_H
#define ABDIAG_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace abdiag::support {

/// Thrown by cancellation-aware loops once their token expires. Callers that
/// install a token (the triage engine, tools) catch this at the work-item
/// boundary; code in between only needs to be exception-safe.
class CancelledError : public std::runtime_error {
public:
  CancelledError()
      : std::runtime_error("abdiag: operation cancelled (deadline exceeded)") {
  }
};

/// A poll-based cancellation token: an atomic flag, optionally armed with a
/// monotonic-clock deadline. Thread-safe: any thread may cancel(), the
/// working thread polls. Not copyable (identity is the point).
class CancellationToken {
public:
  /// A token that never expires on its own (cancel() still works).
  CancellationToken() = default;

  /// A token that expires \p Budget from now.
  explicit CancellationToken(std::chrono::milliseconds Budget)
      : HasDeadline(true),
        Deadline(std::chrono::steady_clock::now() + Budget) {}

  CancellationToken(const CancellationToken &) = delete;
  CancellationToken &operator=(const CancellationToken &) = delete;

  /// Requests cancellation; every subsequent poll()/expired() fires.
  void cancel() { Flag.store(true, std::memory_order_relaxed); }

  /// True once cancel() was called or the deadline passed. Rate-limits the
  /// clock read: between clock reads, up to 256 calls return a stale false.
  bool expired() const {
    if (Flag.load(std::memory_order_relaxed))
      return true;
    if (!HasDeadline)
      return false;
    if ((Polls.fetch_add(1, std::memory_order_relaxed) & 0xFFu) != 0)
      return false;
    if (std::chrono::steady_clock::now() < Deadline)
      return false;
    Flag.store(true, std::memory_order_relaxed);
    return true;
  }

  /// Throws CancelledError once expired.
  void poll() const {
    if (expired())
      throw CancelledError();
  }

private:
  mutable std::atomic<bool> Flag{false};
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline{};
  mutable std::atomic<uint32_t> Polls{0};
};

/// Polls through a possibly-null token pointer (the convention everywhere:
/// a null token means "not cancellable").
inline void pollCancellation(const CancellationToken *T) {
  if (T)
    T->poll();
}

} // namespace abdiag::support

#endif // ABDIAG_SUPPORT_CANCELLATION_H
