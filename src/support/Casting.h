//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the isa<>, cast<>, and dyn_cast<> templates used for opt-in,
/// kind-discriminator based RTTI throughout the project, mirroring the LLVM
/// casting idiom. A class participates by providing a static
/// `classof(const Base *)` predicate.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_CASTING_H
#define ABDIAG_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace abdiag {

/// Returns true if \p Val is an instance of the target type \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer!");
  return To::classof(Val);
}

/// Casts \p Val to type \p To, asserting that the dynamic kind matches.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type!");
  return static_cast<const To *>(Val);
}

/// Casts \p Val to type \p To (mutable overload).
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type!");
  return static_cast<To *>(Val);
}

/// Returns \p Val cast to \p To, or nullptr if the kind does not match.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Returns \p Val cast to \p To, or nullptr (mutable overload).
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace abdiag

#endif // ABDIAG_SUPPORT_CASTING_H
