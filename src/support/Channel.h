//===- support/Channel.h - Bounded blocking MPMC channel --------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/multi-consumer channel with close semantics,
/// used as the daemon's ready-queue (session worker threads produce
/// "session has an event" tickets, the dispatcher consumes them) and as its
/// admission queue. Closing wakes every blocked producer and consumer;
/// after close, sends are refused and receives drain whatever is left.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_CHANNEL_H
#define ABDIAG_SUPPORT_CHANNEL_H

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace abdiag {

template <typename T> class Channel {
public:
  /// \p Capacity bounds the queue; 0 means unbounded.
  explicit Channel(size_t Capacity = 0) : Capacity(Capacity) {}

  /// Blocks while the channel is full. Returns false (dropping \p V) once
  /// the channel is closed.
  bool send(T V) {
    std::unique_lock<std::mutex> Lock(Mu);
    NotFull.wait(Lock, [&] { return Closed || !full(); });
    if (Closed)
      return false;
    Items.push_back(std::move(V));
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking send: false when full or closed.
  bool trySend(T V) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Closed || full())
        return false;
      Items.push_back(std::move(V));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once the channel is closed
  /// *and* drained.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> Lock(Mu);
    NotEmpty.wait(Lock, [&] { return Closed || !Items.empty(); });
    if (Items.empty())
      return std::nullopt;
    T V = std::move(Items.front());
    Items.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return V;
  }

  /// Non-blocking receive.
  std::optional<T> tryRecv() {
    std::optional<T> V;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Items.empty())
        return std::nullopt;
      V = std::move(Items.front());
      Items.pop_front();
    }
    NotFull.notify_one();
    return V;
  }

  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Closed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Items.size();
  }

private:
  bool full() const { return Capacity != 0 && Items.size() >= Capacity; }

  const size_t Capacity;
  mutable std::mutex Mu;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace abdiag

#endif // ABDIAG_SUPPORT_CHANNEL_H
