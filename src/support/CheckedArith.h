//===- support/CheckedArith.h - Overflow-checked 64-bit math ----*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overflow-checked arithmetic on int64_t. Linear-arithmetic manipulation
/// (Cooper's algorithm in particular) multiplies coefficients by LCMs, so all
/// coefficient arithmetic in the project funnels through these helpers. On
/// overflow the process aborts with a diagnostic; the formula sizes produced
/// by the analyses in this project keep coefficients far below the limit.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_CHECKEDARITH_H
#define ABDIAG_SUPPORT_CHECKEDARITH_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace abdiag {

[[noreturn]] inline void overflowAbort(const char *Op) {
  std::fprintf(stderr, "abdiag: fatal: 64-bit overflow in %s\n", Op);
  std::abort();
}

/// Returns \p A + \p B, aborting on signed overflow.
inline int64_t checkedAdd(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    overflowAbort("add");
  return R;
}

/// Returns \p A - \p B, aborting on signed overflow.
inline int64_t checkedSub(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_sub_overflow(A, B, &R))
    overflowAbort("sub");
  return R;
}

/// Returns \p A * \p B, aborting on signed overflow.
inline int64_t checkedMul(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    overflowAbort("mul");
  return R;
}

/// Returns -\p A, aborting on overflow (INT64_MIN).
inline int64_t checkedNeg(int64_t A) { return checkedSub(0, A); }

/// Greatest common divisor of |A| and |B|; gcd(0, 0) == 0.
inline int64_t gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = checkedNeg(A);
  if (B < 0)
    B = checkedNeg(B);
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Least common multiple of |A| and |B|; both must be non-zero.
inline int64_t lcm64(int64_t A, int64_t B) {
  int64_t G = gcd64(A, B);
  return checkedMul(A < 0 ? -A : A, (B < 0 ? -B : B) / G);
}

/// Floor division (rounds toward negative infinity), unlike C's truncation.
inline int64_t floorDiv(int64_t A, int64_t B) {
  int64_t Q = A / B, R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

/// Ceiling division (rounds toward positive infinity).
inline int64_t ceilDiv(int64_t A, int64_t B) {
  int64_t Q = A / B, R = A % B;
  if (R != 0 && ((R < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Mathematical modulus: result always in [0, |B|).
inline int64_t floorMod(int64_t A, int64_t B) {
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    R += B;
  return R;
}

} // namespace abdiag

#endif // ABDIAG_SUPPORT_CHECKEDARITH_H
