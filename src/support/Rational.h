//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small exact rational number over int64_t with __int128 intermediates,
/// used by the simplex-based linear arithmetic solver. Strict inequalities
/// never reach the solver (x < c is canonicalized to x <= c-1 over the
/// integers), so plain rationals suffice -- no delta extension needed.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_RATIONAL_H
#define ABDIAG_SUPPORT_RATIONAL_H

#include "support/CheckedArith.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace abdiag {

/// Exact rational number with canonical representation (Den > 0, reduced).
class Rational {
  int64_t Num = 0;
  int64_t Den = 1;

  static int64_t narrow(__int128 V, const char *Op) {
    if (V > INT64_MAX || V < INT64_MIN)
      overflowAbort(Op);
    return static_cast<int64_t>(V);
  }

  void normalize() {
    assert(Den != 0 && "rational with zero denominator");
    if (Den < 0) {
      Num = checkedNeg(Num);
      Den = checkedNeg(Den);
    }
    int64_t G = gcd64(Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
  }

public:
  Rational() = default;
  Rational(int64_t N) : Num(N) {}
  Rational(int64_t N, int64_t D) : Num(N), Den(D) { normalize(); }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }
  bool isInteger() const { return Den == 1; }
  bool isZero() const { return Num == 0; }
  int sign() const { return Num > 0 ? 1 : (Num < 0 ? -1 : 0); }

  /// Largest integer <= this value.
  int64_t floor() const { return floorDiv(Num, Den); }
  /// Smallest integer >= this value.
  int64_t ceil() const { return ceilDiv(Num, Den); }

  Rational operator+(const Rational &O) const {
    __int128 N = (__int128)Num * O.Den + (__int128)O.Num * Den;
    __int128 D = (__int128)Den * O.Den;
    return make(N, D, "rat add");
  }
  Rational operator-(const Rational &O) const {
    __int128 N = (__int128)Num * O.Den - (__int128)O.Num * Den;
    __int128 D = (__int128)Den * O.Den;
    return make(N, D, "rat sub");
  }
  Rational operator*(const Rational &O) const {
    __int128 N = (__int128)Num * O.Num;
    __int128 D = (__int128)Den * O.Den;
    return make(N, D, "rat mul");
  }
  Rational operator/(const Rational &O) const {
    assert(!O.isZero() && "rational division by zero");
    __int128 N = (__int128)Num * O.Den;
    __int128 D = (__int128)Den * O.Num;
    return make(N, D, "rat div");
  }
  Rational operator-() const { return Rational(checkedNeg(Num), Den); }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const {
    return (__int128)Num * O.Den < (__int128)O.Num * Den;
  }
  bool operator<=(const Rational &O) const {
    return (__int128)Num * O.Den <= (__int128)O.Num * Den;
  }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return O <= *this; }

  std::string str() const {
    if (Den == 1)
      return std::to_string(Num);
    return std::to_string(Num) + "/" + std::to_string(Den);
  }

private:
  static Rational make(__int128 N, __int128 D, const char *Op) {
    // Reduce in 128 bits first so in-range results never spuriously overflow.
    __int128 A = N < 0 ? -N : N, B = D < 0 ? -D : D;
    while (B != 0) {
      __int128 T = A % B;
      A = B;
      B = T;
    }
    if (A > 1) {
      N /= A;
      D /= A;
    }
    Rational R;
    R.Num = narrow(N, Op);
    R.Den = narrow(D, Op);
    R.normalize();
    return R;
  }
};

} // namespace abdiag

#endif // ABDIAG_SUPPORT_RATIONAL_H
