//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, reproducible PRNG (SplitMix64) used by property tests, the
/// user-study simulation, and randomized workload generators. We deliberately
/// avoid std::mt19937 default seeding so results are identical across
/// platforms and runs.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_RNG_H
#define ABDIAG_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace abdiag {

/// SplitMix64 generator; passes BigCrush for our purposes and needs only a
/// 64-bit state, so forking independent streams is trivial.
class Rng {
  uint64_t State;

public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    return Lo + static_cast<int64_t>(next() % Span);
  }

  /// Uniform double in [0, 1).
  double uniform() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli trial with success probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Approximately normal variate via sum of uniforms (Irwin-Hall, 12 terms).
  double gaussian(double Mean, double Stddev) {
    double S = 0;
    for (int I = 0; I < 12; ++I)
      S += uniform();
    return Mean + (S - 6.0) * Stddev;
  }

  /// Derives an independent stream for a labeled sub-experiment.
  Rng fork(uint64_t Label) {
    return Rng(next() ^ (Label * 0x9e3779b97f4a7c15ULL));
  }
};

} // namespace abdiag

#endif // ABDIAG_SUPPORT_RNG_H
