//===- support/Socket.h - RAII sockets and line-framed I/O ------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX socket helpers for the abdiagd wire: an owning fd wrapper,
/// unix-domain and loopback-TCP listen/connect, a buffered newline-framed
/// reader, and a write-all helper. Everything returns errors by value (no
/// exceptions) because connection failures are routine for a daemon.
///
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_SOCKET_H
#define ABDIAG_SUPPORT_SOCKET_H

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

namespace abdiag {

/// Owning file descriptor.
class FdHandle {
public:
  FdHandle() = default;
  explicit FdHandle(int Fd) : Fd(Fd) {}
  ~FdHandle() { reset(); }
  FdHandle(FdHandle &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  FdHandle &operator=(FdHandle &&O) noexcept {
    if (this != &O) {
      reset();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  FdHandle(const FdHandle &) = delete;
  FdHandle &operator=(const FdHandle &) = delete;

  int get() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  int release() { return std::exchange(Fd, -1); }
  void reset() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }
  /// Shuts both directions down (waking any thread blocked in read) without
  /// closing the descriptor; safe to call while a reader owns the fd.
  void shutdownBoth() {
    if (Fd >= 0)
      ::shutdown(Fd, SHUT_RDWR);
  }

private:
  int Fd = -1;
};

/// Binds and listens on a unix-domain socket, unlinking any stale file at
/// \p Path first. Invalid handle + \p Err on failure.
inline FdHandle listenUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return FdHandle();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  FdHandle Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Fd.valid()) {
    Err = std::string("socket: ") + std::strerror(errno);
    return FdHandle();
  }
  ::unlink(Path.c_str());
  if (::bind(Fd.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "bind " + Path + ": " + std::strerror(errno);
    return FdHandle();
  }
  if (::listen(Fd.get(), 128) != 0) {
    Err = "listen " + Path + ": " + std::strerror(errno);
    return FdHandle();
  }
  return Fd;
}

/// Binds and listens on 127.0.0.1:\p Port (0 picks an ephemeral port;
/// \p BoundPort receives the resolved one).
inline FdHandle listenTcp(int Port, int &BoundPort, std::string &Err) {
  FdHandle Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!Fd.valid()) {
    Err = std::string("socket: ") + std::strerror(errno);
    return FdHandle();
  }
  int One = 1;
  ::setsockopt(Fd.get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::bind(Fd.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "bind 127.0.0.1:" + std::to_string(Port) + ": " + std::strerror(errno);
    return FdHandle();
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd.get(), reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Err = std::string("getsockname: ") + std::strerror(errno);
    return FdHandle();
  }
  BoundPort = ntohs(Addr.sin_port);
  if (::listen(Fd.get(), 128) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    return FdHandle();
  }
  return Fd;
}

inline FdHandle connectUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return FdHandle();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  FdHandle Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Fd.valid()) {
    Err = std::string("socket: ") + std::strerror(errno);
    return FdHandle();
  }
  if (::connect(Fd.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "connect " + Path + ": " + std::strerror(errno);
    return FdHandle();
  }
  return Fd;
}

inline FdHandle connectTcp(int Port, std::string &Err) {
  FdHandle Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!Fd.valid()) {
    Err = std::string("socket: ") + std::strerror(errno);
    return FdHandle();
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "connect 127.0.0.1:" + std::to_string(Port) + ": " +
          std::strerror(errno);
    return FdHandle();
  }
  return Fd;
}

/// Accepts one connection; invalid handle on error (including the listener
/// being shut down for drain).
inline FdHandle acceptOne(int ListenFd) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd >= 0)
      return FdHandle(Fd);
    if (errno == EINTR)
      continue;
    return FdHandle();
  }
}

/// Writes all of \p Data to \p Fd; false on any error.
inline bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Buffered newline-framed reader over an fd it does not own.
class LineReader {
public:
  explicit LineReader(int Fd) : Fd(Fd) {}

  /// Reads the next '\n'-terminated line (terminator stripped). False on
  /// EOF or error; a final unterminated line is delivered before EOF.
  bool readLine(std::string &Out) {
    for (;;) {
      size_t Nl = Buf.find('\n', Scan);
      if (Nl != std::string::npos) {
        Out.assign(Buf, 0, Nl);
        Buf.erase(0, Nl + 1);
        Scan = 0;
        return true;
      }
      Scan = Buf.size();
      char Chunk[4096];
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      if (N == 0) {
        if (Buf.empty())
          return false;
        Out = std::move(Buf);
        Buf.clear();
        Scan = 0;
        return true;
      }
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

private:
  int Fd;
  std::string Buf;
  size_t Scan = 0;
};

} // namespace abdiag

#endif // ABDIAG_SUPPORT_SOCKET_H
