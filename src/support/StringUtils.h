//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef ABDIAG_SUPPORT_STRINGUTILS_H
#define ABDIAG_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace abdiag {

/// Joins \p Parts with \p Sep between consecutive elements.
inline std::string join(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

/// Combines a hash value into a running seed (boost::hash_combine style).
inline void hashCombine(size_t &Seed, size_t V) {
  Seed ^= V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

} // namespace abdiag

#endif // ABDIAG_SUPPORT_STRINGUTILS_H
