//===- tests/analysis/IntervalAnnotatorTest.cpp - Interval AI tests ---------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"
#include "analysis/IntervalAnnotator.h"

#include "analysis/SymbolicAnalyzer.h"
#include "lang/AstPrinter.h"
#include "lang/Interp.h"
#include "lang/Parser.h"
#include "smt/Solver.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::analysis;
using namespace abdiag::lang;
using namespace abdiag::smt;

namespace {

Program parse(const char *Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(*R.Prog);
}

TEST(IntervalTest, BasicLattice) {
  Interval A = Interval::constant(3);
  Interval B = Interval::constant(7);
  Interval J = A.join(B);
  EXPECT_EQ(J.Lo, 3);
  EXPECT_EQ(J.Hi, 7);
  EXPECT_TRUE(Interval::top().join(A).isTop());
  EXPECT_EQ(Interval::bottom().join(A), A);
}

TEST(IntervalTest, Arithmetic) {
  Interval A = Interval::constant(2).join(Interval::constant(5)); // [2,5]
  Interval B = Interval::constant(-1).join(Interval::constant(3)); // [-1,3]
  Interval Sum = A.add(B);
  EXPECT_EQ(Sum.Lo, 1);
  EXPECT_EQ(Sum.Hi, 8);
  Interval Prod = A.mul(B);
  EXPECT_EQ(Prod.Lo, -5); // 5 * -1
  EXPECT_EQ(Prod.Hi, 15); // 5 * 3
}

TEST(IntervalTest, MulPreservesNonNegativity) {
  Interval A; // [0, inf)
  A.Lo = 0;
  Interval P = A.mul(A);
  EXPECT_EQ(P.Lo, 0);
  EXPECT_FALSE(P.Hi.has_value());
}

TEST(IntervalTest, WideningDropsGrowingBounds) {
  Interval A = Interval::constant(0).join(Interval::constant(3)); // [0,3]
  Interval B = Interval::constant(0).join(Interval::constant(5)); // [0,5]
  Interval W = A.widen(B);
  EXPECT_EQ(W.Lo, 0);
  EXPECT_FALSE(W.Hi.has_value()); // upper bound grew: widened away
}

TEST(IntervalTest, ClampToBottom) {
  Interval A = Interval::constant(5);
  Interval C = A.clamp(7, std::nullopt);
  EXPECT_TRUE(C.Bottom);
}

TEST(AnnotatorTest, CountingLoopGetsExitFacts) {
  Program P = parse(R"(
program p(n) {
  var i;
  i = 0;
  while (i < n) { i = i + 1; }
  check(i >= 0);
}
)");
  Program A = annotateLoops(P);
  std::string Printed = programToString(A);
  // The inferred annotation includes !(i < n) and i >= 0.
  EXPECT_NE(Printed.find("@ ["), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("!(i < n)"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("i >= 0"), std::string::npos) << Printed;
}

TEST(AnnotatorTest, ExistingAnnotationPreserved) {
  Program P = parse(R"(
program p(n) {
  var i;
  while (i < n) { i = i + 1; } @ [i >= 123]
  check(i >= 0);
}
)");
  Program A = annotateLoops(P);
  std::string Printed = programToString(A);
  EXPECT_NE(Printed.find("i >= 123"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("!(i < n)"), std::string::npos)
      << "user annotation must not be extended: " << Printed;
}

TEST(AnnotatorTest, AnnotationEnablesDischarge) {
  // Without any annotation the analysis cannot discharge this; with the
  // inferred one (exit condition i >= n) it can.
  const char *Src = R"(
program p(n) {
  var i;
  i = 0;
  while (i < n) { i = i + 1; }
  check(i >= n || n < 0);
}
)";
  Program Plain = parse(Src);
  {
    FormulaManager M;
    NativeBackend S(M);
    AnalysisResult R = analyzeProgram(Plain, S);
    EXPECT_FALSE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)));
  }
  {
    FormulaManager M;
    NativeBackend S(M);
    Program Annotated = annotateLoops(Plain);
    AnalysisResult R = analyzeProgram(Annotated, S);
    EXPECT_TRUE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)))
        << programToString(Annotated);
  }
}

/// Soundness: inferred annotations must hold on every terminating concrete
/// run (checked by evaluating the annotation on the loop-exit store).
TEST(AnnotatorTest, InferredAnnotationsSoundOnConcreteRuns) {
  const char *Sources[] = {
      R"(program p(n) { var i, s; i = 0; s = 0;
          while (i < n) { i = i + 1; s = s + i; }
          check(s >= 0); })",
      R"(program p(a, b) { var x; x = 0;
          while (x < a + b) { x = x + 2; }
          check(x >= 0 || a + b < 0); })",
      R"(program p(n) { var i, j; i = n; j = 0;
          while (i > 0) { i = i - 1; j = j + 1; }
          check(j >= 0); })",
  };
  for (const char *Src : Sources) {
    Program P = parse(Src);
    Program A = annotateLoops(P);
    // Every loop must have received an annotation.
    const WhileStmt *Loop = nullptr;
    for (const Stmt *St : cast<BlockStmt>(A.Body)->stmts())
      if (const auto *W = dyn_cast<WhileStmt>(St))
        Loop = W;
    ASSERT_NE(Loop, nullptr);
    ASSERT_NE(Loop->annot(), nullptr);
    // Semantic soundness check via Lemmas 1/2: with the inferred
    // annotation, the symbolic analysis may not claim a bug when all runs
    // pass, nor discharge when some run fails.
    FormulaManager M;
    NativeBackend S(M);
    AnalysisResult AR = analyzeProgram(A, S);
    bool AnyFail = false, AnyPass = false;
    for (int64_t V1 = -6; V1 <= 6; ++V1)
      for (int64_t V2 = -6; V2 <= 6; ++V2) {
        std::vector<int64_t> Inputs{V1};
        if (P.Params.size() == 2)
          Inputs.push_back(V2);
        RunResult R = runProgram(A, Inputs, 10000);
        AnyFail = AnyFail || R.Status == RunStatus::CheckFailed;
        AnyPass = AnyPass || R.Status == RunStatus::CheckPassed;
      }
    if (S.isValid(M.mkImplies(AR.Invariants, AR.SuccessCondition))) {
      EXPECT_FALSE(AnyFail) << Src;
    }
    if (S.isValid(M.mkImplies(AR.Invariants, M.mkNot(AR.SuccessCondition)))) {
      EXPECT_FALSE(AnyPass) << Src;
    }
  }
}

TEST(AnnotatorTest, NestedLoopsAnnotated) {
  Program P = parse(R"(
program p(n) {
  var i, j;
  i = 0;
  while (i < n) {
    j = 0;
    while (j < i) { j = j + 1; }
    i = i + 1;
  }
  check(i >= 0);
}
)");
  Program A = annotateLoops(P);
  std::string Printed = programToString(A);
  // Both loops carry annotations.
  size_t First = Printed.find("@ [");
  ASSERT_NE(First, std::string::npos) << Printed;
  EXPECT_NE(Printed.find("@ [", First + 1), std::string::npos) << Printed;
}

} // namespace
