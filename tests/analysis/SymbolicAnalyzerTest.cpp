//===- tests/analysis/SymbolicAnalyzerTest.cpp - Section 3 analysis tests ---===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"
#include "analysis/SymbolicAnalyzer.h"

#include "lang/Interp.h"
#include "lang/Parser.h"
#include "smt/FormulaOps.h"
#include "smt/Printer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::analysis;
using namespace abdiag::lang;
using namespace abdiag::smt;

namespace {

Program parse(const char *Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(*R.Prog);
}

class AnalyzerTest : public ::testing::Test {
protected:
  FormulaManager M;
  NativeBackend S{M};
};

TEST_F(AnalyzerTest, LoopFreeProgramIsExact) {
  // For loop-free programs the analysis is exact: the success condition,
  // evaluated on concrete inputs, must agree with the interpreter.
  Program P = parse(R"(
program p(a, b) {
  var c;
  c = a + 2 * b;
  if (c > 10) { c = c - 1; } else { c = c + 1; }
  check(c != 11);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  ASSERT_TRUE(R.Invariants->isTrue());
  VarId A = R.InputVars.at("a"), B = R.InputVars.at("b");
  for (int64_t VA = -5; VA <= 15; ++VA)
    for (int64_t VB = -5; VB <= 5; ++VB) {
      bool Sym = evaluate(R.SuccessCondition, [&](VarId V) {
        return V == A ? VA : (V == B ? VB : 0);
      });
      bool Conc = runProgram(P, {VA, VB}).Status == RunStatus::CheckPassed;
      ASSERT_EQ(Sym, Conc) << "a=" << VA << " b=" << VB;
    }
}

TEST_F(AnalyzerTest, AssumeBecomesInvariant) {
  Program P = parse("program p(n) { assume(n >= 0); check(n > -1); }");
  AnalysisResult R = analyzeProgram(P, S);
  VarId N = R.InputVars.at("n");
  const Formula *Expect = M.mkGe(LinearExpr::variable(N), LinearExpr::constant(0));
  EXPECT_TRUE(S.equivalent(R.Invariants, Expect));
  // And the report is discharged by Lemma 1.
  EXPECT_TRUE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)));
}

TEST_F(AnalyzerTest, LoopBindsModifiedVarsToAbstractions) {
  Program P = parse(R"(
program p(n) {
  var i, k;
  k = 7;
  while (i < n) { i = i + 1; }
  check(i + k > 0);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  // i is loop-modified: gets an abstraction variable; k is untouched.
  ASSERT_TRUE(R.LoopExitVars.count({0, "i"}));
  EXPECT_FALSE(R.LoopExitVars.count({0, "k"}));
  VarId Ai = R.LoopExitVars.at({0, "i"});
  EXPECT_EQ(M.vars().kind(Ai), VarKind::Abstraction);
  EXPECT_TRUE(containsVar(R.SuccessCondition, Ai));
}

TEST_F(AnalyzerTest, AnnotationConstrainsAbstractions) {
  Program P = parse(R"(
program p(n) {
  var i;
  while (i < n) { i = i + 1; } @ [i >= 0 && i >= n]
  check(i >= n);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  // Lemma 1 applies: I |= phi.
  EXPECT_TRUE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)));
}

TEST_F(AnalyzerTest, NonLinearProductGetsAbstractionWithSquareFact) {
  Program P = parse(R"(
program p(n) {
  var k;
  k = n * n;
  check(k >= 0);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  // The square fact alpha_{n*n} >= 0 is exactly what discharges the check.
  EXPECT_TRUE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)));
}

TEST_F(AnalyzerTest, NonLinearProductOfDistinctVarsUnconstrained) {
  Program P = parse(R"(
program p(a, b) {
  var k;
  k = a * b;
  check(k >= 0);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  EXPECT_FALSE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)));
  EXPECT_FALSE(
      S.isValid(M.mkImplies(R.Invariants, M.mkNot(R.SuccessCondition))));
}

TEST_F(AnalyzerTest, HavocIntroducesAbstraction) {
  Program P = parse(
      "program p() { var x; x = havoc(); check(x > 0); }");
  AnalysisResult R = analyzeProgram(P, S);
  ASSERT_EQ(R.HavocVars.size(), 1u);
  VarId H = R.HavocVars.begin()->second;
  EXPECT_EQ(M.vars().kind(H), VarKind::Abstraction);
  EXPECT_FALSE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)));
}

TEST_F(AnalyzerTest, PathSensitivityThroughJoin) {
  // The classic pattern requiring path-sensitive reasoning: the same
  // condition guards the definition and the use.
  Program P = parse(R"(
program p(a) {
  var x, y;
  if (a > 0) { x = 1; } else { x = 0 - 1; }
  if (a > 0) { y = x; } else { y = 0 - x; }
  check(y == 1);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  EXPECT_TRUE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)))
      << toString(R.SuccessCondition, M.vars());
}

TEST_F(AnalyzerTest, DefiniteBugDetectedByLemma2) {
  Program P = parse("program p(a) { var x; x = a - a; check(x > 0); }");
  AnalysisResult R = analyzeProgram(P, S);
  EXPECT_TRUE(
      S.isValid(M.mkImplies(R.Invariants, M.mkNot(R.SuccessCondition))));
}

/// Paper Example 1: the exact program from Section 3 with its annotation.
const char *Example1 = R"(
program example1(a1, a2) {
  var k, i, j, z;
  if (a2 > 0) { k = a2; } else { k = 1; }
  while (i < a2 + 1) {
    i = i + 1;
    j = j + i;
  } @ [i > -1 && i > a2]
  if (a1 > 0) { z = k + i + j; } else { z = 2 * a2 + 1; }
  check(z > 2 * a2);
}
)";

TEST_F(AnalyzerTest, PaperExample1NeitherDischargedNorValidated) {
  Program P = parse(Example1);
  AnalysisResult R = analyzeProgram(P, S);
  // I = alpha_i >= 0 ∧ alpha_i > a2 (paper: nu_2).
  VarId Ai = R.LoopExitVars.at({0, "i"});
  VarId A2 = R.InputVars.at("a2");
  const Formula *ExpectI =
      M.mkAnd(M.mkGe(LinearExpr::variable(Ai), LinearExpr::constant(0)),
              M.mkGt(LinearExpr::variable(Ai), LinearExpr::variable(A2)));
  EXPECT_TRUE(S.equivalent(R.Invariants, ExpectI))
      << toString(R.Invariants, M.vars());
  // Neither Lemma applies (the paper's point).
  EXPECT_FALSE(S.isValid(M.mkImplies(R.Invariants, R.SuccessCondition)));
  EXPECT_FALSE(
      S.isValid(M.mkImplies(R.Invariants, M.mkNot(R.SuccessCondition))));
}

// Property: for loop-free randomly generated programs, the success
// condition evaluated on inputs equals the concrete run outcome.
TEST_F(AnalyzerTest, PropertyLoopFreeAgreesWithInterpreter) {
  Rng R(5150);
  for (int Round = 0; Round < 40; ++Round) {
    // Build a small random straight-line/if program as source text.
    std::string Src = "program rnd(a, b) {\n  var x, y;\n";
    auto RandExpr = [&]() {
      std::string E = std::to_string(R.range(-3, 3));
      const char *Vars[] = {"a", "b", "x", "y"};
      for (const char *V : Vars)
        if (R.chance(0.5))
          E += std::string(" + ") + std::to_string(R.range(-2, 2)) + " * " + V;
      return E;
    };
    for (int I = 0; I < 4; ++I) {
      const char *Target = R.chance(0.5) ? "x" : "y";
      if (R.chance(0.3)) {
        Src += std::string("  if (") + RandExpr() + " > " + RandExpr() +
               ") { " + Target + " = " + RandExpr() + "; } else { " + Target +
               " = " + RandExpr() + "; }\n";
      } else {
        Src += std::string("  ") + Target + " = " + RandExpr() + ";\n";
      }
    }
    Src += "  check(x + y >= a - b);\n}\n";
    ParseResult PR = parseProgram(Src);
    ASSERT_TRUE(PR.ok()) << PR.Error << "\n" << Src;

    FormulaManager LocalM;
    NativeBackend LocalS(LocalM);
    AnalysisResult AR = analyzeProgram(*PR.Prog, LocalS);
    VarId A = AR.InputVars.at("a"), B = AR.InputVars.at("b");
    for (int64_t VA = -4; VA <= 4; VA += 2)
      for (int64_t VB = -4; VB <= 4; VB += 2) {
        bool Sym = evaluate(AR.SuccessCondition, [&](VarId V) {
          return V == A ? VA : (V == B ? VB : 0);
        });
        bool Conc =
            runProgram(*PR.Prog, {VA, VB}).Status == RunStatus::CheckPassed;
        ASSERT_EQ(Sym, Conc) << Src << "a=" << VA << " b=" << VB;
      }
  }
}

TEST_F(AnalyzerTest, DescribeVarRendering) {
  Program P = parse(R"(
program p(n) {
  var i;
  while (i < n) { i = i + 1; }
  check(i >= 0);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  VarId N = R.InputVars.at("n");
  VarId Ai = R.LoopExitVars.at({0, "i"});
  EXPECT_EQ(describeVar(R, M.vars(), N), "input n");
  EXPECT_EQ(describeVar(R, M.vars(), Ai), "the value of i after loop 1");
}

TEST_F(AnalyzerTest, SharedCalleeAnalyzedOnceInstantiatedPerSite) {
  // Two call sites to one callee: the summary is computed once and
  // instantiated twice, and each instantiation gets its own loop-exit
  // alpha (distinct global loop ids from the call plan).
  Program P = parse(R"(
function count(n) {
  var k;
  k = 0;
  while (k < n) { k = k + 1; } @ [k >= 0]
  return k;
}
program p(a, b) {
  var x, y;
  x = count(a);
  y = count(b);
  check(x + y >= 0);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  EXPECT_EQ(R.SummariesComputed, 1u);
  EXPECT_EQ(R.SummariesInstantiated, 2u);
  EXPECT_EQ(R.OpaqueCallResults, 0u);
  ASSERT_EQ(R.LoopExitVars.size(), 2u);
  std::vector<VarId> Alphas;
  for (const auto &[Key, V] : R.LoopExitVars) {
    EXPECT_EQ(Key.second, "k");
    EXPECT_EQ(R.Origins.at(V).K, VarOrigin::Kind::LoopExit);
    Alphas.push_back(V);
  }
  EXPECT_NE(Alphas[0], Alphas[1]);
}

TEST_F(AnalyzerTest, SummaryInstantiationExactOnLoopFreeCallee) {
  // A loop-free callee introduces no abstraction, so summary substitution
  // must keep the analysis exact: the success condition over concrete
  // inputs agrees with the interpreter at every point.
  Program P = parse(R"(
function clamp(v) {
  var r;
  r = v;
  if (r < 0) { r = 0 - r; } else { skip; }
  return r;
}
program p(a, b) {
  var x, y;
  x = clamp(a);
  y = clamp(b - 3);
  check(x + y != 5);
}
)");
  AnalysisResult R = analyzeProgram(P, S);
  ASSERT_TRUE(R.Invariants->isTrue());
  EXPECT_EQ(R.SummariesInstantiated, 2u);
  VarId A = R.InputVars.at("a"), B = R.InputVars.at("b");
  for (int64_t VA = -6; VA <= 6; ++VA)
    for (int64_t VB = -4; VB <= 9; ++VB) {
      bool Sym = evaluate(R.SuccessCondition, [&](VarId V) {
        return V == A ? VA : (V == B ? VB : 0);
      });
      bool Conc = runProgram(P, {VA, VB}).Status == RunStatus::CheckPassed;
      ASSERT_EQ(Sym, Conc) << "a=" << VA << " b=" << VB;
    }
}

TEST_F(AnalyzerTest, RecursiveCallModeledByOpaqueCallResult) {
  Program P = parse(R"(
function dec(n) {
  var r;
  if (n <= 0) { r = 0; } else { r = dec(n - 1); }
  return r;
}
program p(n) {
  var y;
  y = dec(n);
  check(y >= 0);
}
)");
  ASSERT_TRUE(P.Functions[0].Recursive);
  AnalysisResult R = analyzeProgram(P, S);
  EXPECT_EQ(R.OpaqueCallResults, 1u);
  ASSERT_EQ(R.CallResultVars.size(), 1u);
  VarId Alpha = R.CallResultVars.begin()->second;
  EXPECT_EQ(R.Origins.at(Alpha).K, VarOrigin::Kind::CallResult);
  EXPECT_EQ(R.Origins.at(Alpha).ProgVar, "dec");
}

} // namespace
