//===- tests/core/AbductionTest.cpp - Weakest minimum abduction tests -------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the paper's core definitions, including the exact expected results
/// for the Section 1.1 running example (Gamma ≡ alpha_j >= n and
/// Upsilon ≡ ¬flag ∧ alpha_i + alpha_j < 0) and Example 2
/// (Gamma ≡ alpha_j >= 0).
///
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"
#include "core/Abduction.h"

#include "analysis/SymbolicAnalyzer.h"
#include "lang/Parser.h"
#include "smt/FormulaOps.h"
#include "smt/Printer.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

namespace {

class AbductionTest : public ::testing::Test {
protected:
  FormulaManager M;
  NativeBackend S{M};
  Abducer Abd{S};

  LinearExpr c(int64_t V) { return LinearExpr::constant(V); }

  /// Checks the defining properties of a proof obligation (Definition 1).
  void expectObligation(const AbductionResult &R, const Formula *I,
                        const Formula *Phi) {
    ASSERT_TRUE(R.Found);
    EXPECT_TRUE(S.isValid(M.mkImplies(M.mkAnd(R.Fml, I), Phi)))
        << toString(R.Fml, M.vars());
    EXPECT_TRUE(S.isSat(M.mkAnd(R.Fml, I)));
  }

  /// Checks the defining properties of a failure witness (Definition 8).
  void expectWitness(const AbductionResult &R, const Formula *I,
                     const Formula *Phi) {
    ASSERT_TRUE(R.Found);
    EXPECT_TRUE(S.isValid(M.mkImplies(M.mkAnd(R.Fml, I), M.mkNot(Phi))))
        << toString(R.Fml, M.vars());
    EXPECT_TRUE(S.isSat(M.mkAnd(R.Fml, I)));
  }
};

TEST_F(AbductionTest, SimpleObligation) {
  // I: alpha >= 0. phi: alpha + n > 0. Obligation should involve n only if
  // unavoidable; here alpha >= 0 gives phi when n >= 1... the cheapest
  // abduction constrains alpha (cost 1) if possible: alpha + n > 0 cannot
  // follow from alpha alone (n unbounded below), so n must appear.
  VarId Alpha = M.vars().create("alpha", VarKind::Abstraction);
  VarId N = M.vars().create("n", VarKind::Input);
  LinearExpr A = LinearExpr::variable(Alpha), Nv = LinearExpr::variable(N);
  const Formula *I = M.mkGe(A, c(0));
  const Formula *Phi = M.mkGt(A.add(Nv), c(0));
  AbductionResult R = Abd.proofObligation(I, Phi);
  expectObligation(R, I, Phi);
  EXPECT_TRUE(freeVars(R.Fml).count(N));
}

TEST_F(AbductionTest, ObligationPrefersAbstractionVariables) {
  // Both "alpha >= 5" and "n >= 5" would discharge phi; Definition 2 makes
  // the abstraction-variable query cheaper.
  VarId Alpha = M.vars().create("alpha", VarKind::Abstraction);
  VarId N = M.vars().create("n", VarKind::Input);
  LinearExpr A = LinearExpr::variable(Alpha), Nv = LinearExpr::variable(N);
  const Formula *I = M.getTrue();
  const Formula *Phi = M.mkOr(M.mkGe(A, c(5)), M.mkGe(Nv, c(5)));
  AbductionResult R = Abd.proofObligation(I, Phi);
  ASSERT_TRUE(R.Found);
  std::set<VarId> Fv = freeVars(R.Fml);
  EXPECT_TRUE(Fv.count(Alpha));
  EXPECT_FALSE(Fv.count(N)) << toString(R.Fml, M.vars());
}

TEST_F(AbductionTest, WitnessPrefersInputVariables) {
  VarId Alpha = M.vars().create("alpha", VarKind::Abstraction);
  VarId N = M.vars().create("n", VarKind::Input);
  LinearExpr A = LinearExpr::variable(Alpha), Nv = LinearExpr::variable(N);
  const Formula *I = M.getTrue();
  // phi fails when alpha <= 4 or n <= 4; the witness should constrain n.
  const Formula *Phi = M.mkAnd(M.mkGe(A, c(5)), M.mkGe(Nv, c(5)));
  AbductionResult R = Abd.failureWitness(I, Phi);
  expectWitness(R, I, Phi);
  std::set<VarId> Fv = freeVars(R.Fml);
  EXPECT_TRUE(Fv.count(N));
  EXPECT_FALSE(Fv.count(Alpha)) << toString(R.Fml, M.vars());
}

TEST_F(AbductionTest, TrivialWhenAlreadyValid) {
  // I |= phi: the empty MSA yields Gamma == true (no query needed; the
  // engine checks Lemma 1 first, but the abduction is still well-defined).
  VarId Alpha = M.vars().create("alpha", VarKind::Abstraction);
  LinearExpr A = LinearExpr::variable(Alpha);
  const Formula *I = M.mkGe(A, c(5));
  const Formula *Phi = M.mkGe(A, c(0));
  AbductionResult R = Abd.proofObligation(I, Phi);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Fml->isTrue());
  EXPECT_EQ(R.Cost, 0);
}

TEST_F(AbductionTest, NoObligationWhenPhiContradictsI) {
  VarId Alpha = M.vars().create("alpha", VarKind::Abstraction);
  LinearExpr A = LinearExpr::variable(Alpha);
  const Formula *I = M.mkGe(A, c(5));
  const Formula *Phi = M.mkLe(A, c(0)); // unreachable under I
  AbductionResult R = Abd.proofObligation(I, Phi);
  EXPECT_FALSE(R.Found) << "SAT(Gamma ∧ I) is impossible";
}

TEST_F(AbductionTest, WitnessConsistencyBlocksKnownInvariants) {
  // Section 5: potential invariants constrain witness abduction.
  VarId N = M.vars().create("n", VarKind::Input);
  LinearExpr Nv = LinearExpr::variable(N);
  const Formula *I = M.getTrue();
  const Formula *Phi = M.mkGe(Nv, c(0));
  // Without constraints the witness is n < 0.
  AbductionResult R1 = Abd.failureWitness(I, Phi);
  expectWitness(R1, I, Phi);
  // Claiming "n >= 0" is a potential invariant leaves no consistent witness.
  AbductionResult R2 = Abd.failureWitness(I, Phi, {M.mkGe(Nv, c(0))});
  EXPECT_FALSE(R2.Found);
}

TEST_F(AbductionTest, ObligationConsistentWithWitnesses) {
  // A known witness "n < 0 possible" must not be contradicted: the
  // obligation cannot be the (otherwise cheapest) "n >= 0".
  VarId Alpha = M.vars().create("alpha", VarKind::Abstraction);
  VarId N = M.vars().create("n", VarKind::Input);
  LinearExpr A = LinearExpr::variable(Alpha), Nv = LinearExpr::variable(N);
  const Formula *I = M.getTrue();
  const Formula *Phi = M.mkOr(M.mkGe(Nv, c(0)), M.mkGe(A.add(Nv), c(0)));
  const Formula *W = M.mkLt(Nv, c(0));
  AbductionResult R = Abd.proofObligation(I, Phi, {W});
  ASSERT_TRUE(R.Found);
  // Gamma ∧ I ∧ W must stay satisfiable.
  EXPECT_TRUE(S.isSat(M.mkAnd({R.Fml, I, W})))
      << toString(R.Fml, M.vars());
  expectObligation(R, I, Phi);
}

//===----------------------------------------------------------------------===//
// Paper fidelity: the running example of Section 1.1 and Example 2.
//===----------------------------------------------------------------------===//

const char *IntroSource = R"(
program intro(flag, n) {
  var k, i, j, z;
  assume(n >= 0);
  k = 1;
  if (flag != 0) { k = n * n; }
  i = 0;
  j = 0;
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @ [i >= 0 && i > n]
  z = k + i + j;
  check(z > 2 * n);
}
)";

class IntroExampleTest : public ::testing::Test {
protected:
  FormulaManager M;
  NativeBackend S{M};
  Abducer Abd{S};
  lang::Program Prog;
  analysis::AnalysisResult AR;

  void SetUp() override {
    lang::ParseResult P = lang::parseProgram(IntroSource);
    ASSERT_TRUE(P.ok()) << P.Error;
    Prog = std::move(*P.Prog);
    AR = analysis::analyzeProgram(Prog, S);
  }

  LinearExpr var(VarId V) { return LinearExpr::variable(V); }
};

TEST_F(IntroExampleTest, NeitherLemmaApplies) {
  EXPECT_FALSE(S.isValid(M.mkImplies(AR.Invariants, AR.SuccessCondition)));
  EXPECT_FALSE(
      S.isValid(M.mkImplies(AR.Invariants, M.mkNot(AR.SuccessCondition))));
}

TEST_F(IntroExampleTest, InvariantsMatchPaper) {
  // I = alpha_{n*n} >= 0 ∧ alpha_i >= 0 ∧ alpha_i > n ∧ n >= 0.
  VarId Ai = AR.LoopExitVars.at({0, "i"});
  VarId N = AR.InputVars.at("n");
  ASSERT_EQ(AR.Origins.size(), 5u); // flag, n, alpha_i, alpha_j, alpha_nn
  // Find the non-linear abstraction.
  VarId Ann = 0;
  bool FoundAnn = false;
  for (const auto &[V, O] : AR.Origins)
    if (O.K == analysis::VarOrigin::Kind::NonLinear) {
      Ann = V;
      FoundAnn = true;
    }
  ASSERT_TRUE(FoundAnn);
  const Formula *Expect = M.mkAnd(
      {M.mkGe(var(Ann), LinearExpr::constant(0)),
       M.mkGe(var(Ai), LinearExpr::constant(0)), M.mkGt(var(Ai), var(N)),
       M.mkGe(var(N), LinearExpr::constant(0))});
  EXPECT_TRUE(S.equivalent(AR.Invariants, Expect))
      << toString(AR.Invariants, M.vars());
}

TEST_F(IntroExampleTest, ProofObligationPropertiesAndCost) {
  // The paper's narrative gives Gamma = alpha_j >= n (cost 1 + |Vars| = 6
  // under Definition 2). Our engine finds the abstraction-only obligation
  // alpha_j >= alpha_i - 1 (cost 2), which is *more* minimal under the
  // paper's own cost function -- see EXPERIMENTS.md (E4 deviation). Verify
  // the defining properties, the minimality bound, and that the paper's
  // query follows from ours under I.
  VarId Ai = AR.LoopExitVars.at({0, "i"});
  VarId Aj = AR.LoopExitVars.at({0, "j"});
  VarId N = AR.InputVars.at("n");
  AbductionResult Gamma =
      Abd.proofObligation(AR.Invariants, AR.SuccessCondition);
  ASSERT_TRUE(Gamma.Found);
  // Definition 1: Gamma ∧ I |= phi and SAT(Gamma ∧ I).
  EXPECT_TRUE(S.isValid(
      M.mkImplies(M.mkAnd(Gamma.Fml, AR.Invariants), AR.SuccessCondition)));
  EXPECT_TRUE(S.isSat(M.mkAnd(Gamma.Fml, AR.Invariants)));
  // Strictly cheaper than the paper's alpha_j >= n under Definition 2.
  EXPECT_EQ(Gamma.Cost, 2);
  EXPECT_EQ(freeVars(Gamma.Fml), (std::set<VarId>{Ai, Aj}));
  // Our obligation entails the paper's under I (both discharge the error).
  const Formula *PaperGamma = M.mkGe(var(Aj), var(N));
  EXPECT_TRUE(S.isValid(M.mkImplies(M.mkAnd(Gamma.Fml, AR.Invariants),
                                    PaperGamma)));
  // The paper's query is itself a valid proof obligation in our framework.
  EXPECT_TRUE(S.isValid(M.mkImplies(M.mkAnd(PaperGamma, AR.Invariants),
                                    AR.SuccessCondition)));
}

TEST_F(IntroExampleTest, FailureWitnessIsNotFlagAndNegativeSum) {
  VarId Ai = AR.LoopExitVars.at({0, "i"});
  VarId Aj = AR.LoopExitVars.at({0, "j"});
  VarId Flag = AR.InputVars.at("flag");
  AbductionResult Upsilon =
      Abd.failureWitness(AR.Invariants, AR.SuccessCondition);
  ASSERT_TRUE(Upsilon.Found);
  // The paper's weakest minimum failure witness:
  // ¬flag ∧ alpha_i + alpha_j < 0.
  const Formula *Expect =
      M.mkAnd(M.mkEq(var(Flag), LinearExpr::constant(0)),
              M.mkLt(var(Ai).add(var(Aj)), LinearExpr::constant(0)));
  EXPECT_TRUE(S.isValid(
      M.mkImplies(AR.Invariants, M.mkIff(Upsilon.Fml, Expect))))
      << "got: " << toString(Upsilon.Fml, M.vars());
}

TEST_F(IntroExampleTest, ObligationCheaperThanWitness) {
  // The paper's engine decides discharging is more promising: the proof
  // obligation is cheaper than the failure witness.
  AbductionResult Gamma =
      Abd.proofObligation(AR.Invariants, AR.SuccessCondition);
  AbductionResult Upsilon =
      Abd.failureWitness(AR.Invariants, AR.SuccessCondition);
  ASSERT_TRUE(Gamma.Found);
  ASSERT_TRUE(Upsilon.Found);
  EXPECT_LE(Gamma.Cost, Upsilon.Cost);
}

/// Example 1/2 of the paper: a1/a2 variant where Gamma ≡ alpha_j >= 0.
const char *Example1Source = R"(
program example1(a1, a2) {
  var k, i, j, z;
  if (a2 > 0) { k = a2; } else { k = 1; }
  while (i < a2 + 1) {
    i = i + 1;
    j = j + i;
  } @ [i > -1 && i > a2]
  if (a1 > 0) { z = k + i + j; } else { z = 2 * a2 + 1; }
  check(z > 2 * a2);
}
)";

TEST_F(AbductionTest, PaperExample2ObligationIsAlphaJGeZero) {
  lang::ParseResult P = lang::parseProgram(Example1Source);
  ASSERT_TRUE(P.ok()) << P.Error;
  analysis::AnalysisResult AR = analysis::analyzeProgram(*P.Prog, S);
  AbductionResult Gamma =
      Abd.proofObligation(AR.Invariants, AR.SuccessCondition);
  ASSERT_TRUE(Gamma.Found);
  VarId Aj = AR.LoopExitVars.at({0, "j"});
  const Formula *Expect =
      M.mkGe(LinearExpr::variable(Aj), LinearExpr::constant(0));
  // Example 2: "after simplification, yields alpha_j >= 0".
  EXPECT_TRUE(S.isValid(
      M.mkImplies(AR.Invariants, M.mkIff(Gamma.Fml, Expect))))
      << "got: " << toString(Gamma.Fml, M.vars());
  EXPECT_EQ(freeVars(Gamma.Fml), std::set<VarId>{Aj});
}

} // namespace
