//===- tests/core/ConcreteOracleTest.cpp - Machine oracle tests -------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"
#include "core/ConcreteOracle.h"

#include "analysis/SymbolicAnalyzer.h"
#include "lang/Parser.h"
#include "smt/FormulaParser.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

namespace {

class ConcreteOracleTest : public ::testing::Test {
protected:
  FormulaManager M;
  NativeBackend S{M};
  lang::Program Prog;
  analysis::AnalysisResult AR;

  void load(const char *Src) {
    lang::ParseResult P = lang::parseProgram(Src);
    ASSERT_TRUE(P.ok()) << P.Error;
    Prog = std::move(*P.Prog);
    AR = analysis::analyzeProgram(Prog, S);
  }

  const Formula *fml(const char *Text) {
    FormulaParseOptions Opts;
    Opts.CreateUnknownVars = false;
    FormulaParseResult R = parseFormula(M, Text, Opts);
    EXPECT_TRUE(R.ok()) << Text << ": " << R.Error;
    return R.F;
  }
};

TEST_F(ConcreteOracleTest, InputFactsAnswered) {
  load("program p(n) { assume(n >= 0); check(n < 100); }");
  ConcreteOracle O(Prog, AR);
  // Within the explored box and surviving the assume, n >= 0 always holds.
  EXPECT_EQ(O.isInvariant(fml("n >= 0")), Oracle::Answer::Yes);
  EXPECT_EQ(O.isInvariant(fml("n >= 1")), Oracle::Answer::No);
  EXPECT_EQ(O.isPossible(fml("n = 3"), M.getTrue()), Oracle::Answer::Yes);
  EXPECT_EQ(O.isPossible(fml("n < 0"), M.getTrue()), Oracle::Answer::No);
}

TEST_F(ConcreteOracleTest, LoopExitValuesAnswered) {
  load(R"(
program p(n) {
  var i, j;
  assume(n >= 0);
  i = 0;
  j = 0;
  while (i < n) { i = i + 1; j = j + 2; }
  check(j >= 0);
}
)");
  ConcreteOracle O(Prog, AR);
  EXPECT_EQ(O.isInvariant(fml("j@loop1 = 2*i@loop1")), Oracle::Answer::Yes);
  EXPECT_EQ(O.isInvariant(fml("j@loop1 > i@loop1")), Oracle::Answer::No)
      << "violated when the loop runs zero times";
  EXPECT_EQ(O.isPossible(fml("i@loop1 = 5"), M.getTrue()),
            Oracle::Answer::Yes);
}

TEST_F(ConcreteOracleTest, ConditionalPossibilityUsesContext) {
  load(R"(
program p(a) {
  var x;
  if (a > 0) { x = 1; } else { x = 2; }
  check(x > 0);
}
)");
  ConcreteOracle O(Prog, AR);
  // x is not an analysis variable; the context uses inputs only.
  EXPECT_EQ(O.isPossible(fml("a = 1"), fml("a >= 1")), Oracle::Answer::Yes);
  EXPECT_EQ(O.isPossible(fml("a = 1"), fml("a >= 2")), Oracle::Answer::No);
}

TEST_F(ConcreteOracleTest, NonLinearProductResolved) {
  load("program p(x) { var q; q = x * x; check(q >= 0); }");
  ConcreteOracle O(Prog, AR);
  // mul@1 resolves to x*x in every run: x*x >= 0 and x*x >= x hold for all
  // integers, but x*x >= 2x fails at x = 1.
  EXPECT_EQ(O.isInvariant(fml("mul@1 >= 0")), Oracle::Answer::Yes);
  EXPECT_EQ(O.isInvariant(fml("mul@1 >= x")), Oracle::Answer::Yes);
  EXPECT_EQ(O.isInvariant(fml("mul@1 >= 2*x")), Oracle::Answer::No);
}

TEST_F(ConcreteOracleTest, HavocValuesEnumerated) {
  load("program p() { var x; x = havoc(); check(x != 0); }");
  ConcreteOracle O(Prog, AR);
  EXPECT_TRUE(O.anyFailingRun()) << "havoc can be 0";
  EXPECT_EQ(O.isPossible(fml("havoc@0 = 0"), M.getTrue()),
            Oracle::Answer::Yes);
  EXPECT_EQ(O.isPossible(fml("havoc@0 = 2"), M.getTrue()),
            Oracle::Answer::No)
      << "2 is not among the enumerated havoc values";
}

TEST_F(ConcreteOracleTest, UnknownWhenVariableNeverDefined) {
  // A loop that never exits within fuel in any completed run would leave
  // its alpha undefined; easier: a loop guarded to never run still defines
  // alpha (exit state). Instead ask about a variable from *no* run:
  // unreachable loop exit happens when every run aborts via assume.
  load(R"(
program p(n) {
  var i;
  assume(n > 100);
  i = 0;
  while (i < n) { i = i + 1; }
  check(i >= 0);
}
)");
  ConcreteOracle O(Prog, AR);
  // No run survives assume(n > 100) inside the small input box.
  EXPECT_FALSE(O.anyCompletedRun());
  EXPECT_EQ(O.isInvariant(fml("i@loop1 >= 0")), Oracle::Answer::Unknown);
}

TEST_F(ConcreteOracleTest, RunCountRespectsCap) {
  load("program p(a, b, c) { check(a + b + c > -1000); }");
  ConcreteOracleConfig Config;
  Config.MaxRuns = 1000;
  ConcreteOracle O(Prog, AR, Config);
  EXPECT_LE(O.numRuns(), 1000u);
  EXPECT_TRUE(O.anyCompletedRun());
}

} // namespace
