//===- tests/core/DiagnosisTest.cpp - Figure 6 engine tests -----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"
#include "core/Diagnosis.h"

#include "core/ErrorDiagnoser.h"
#include "smt/Printer.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

namespace {

using Ans = Oracle::Answer;

class DiagnosisTest : public ::testing::Test {
protected:
  FormulaManager M;
  NativeBackend S{M};
  VarId Alpha = M.vars().create("alpha", VarKind::Abstraction);
  VarId Beta = M.vars().create("beta", VarKind::Abstraction);
  VarId N = M.vars().create("n", VarKind::Input);

  LinearExpr a() { return LinearExpr::variable(Alpha); }
  LinearExpr b() { return LinearExpr::variable(Beta); }
  LinearExpr n() { return LinearExpr::variable(N); }
  LinearExpr c(int64_t V) { return LinearExpr::constant(V); }

  DiagnosisResult run(const Formula *I, const Formula *Phi, Oracle &O) {
    DiagnosisEngine E(S);
    return E.run(I, Phi, O);
  }
};

TEST_F(DiagnosisTest, DischargedWithoutQueriesWhenLemma1Applies) {
  ScriptedOracle O({});
  DiagnosisResult R = run(M.mkGe(a(), c(5)), M.mkGe(a(), c(0)), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Discharged);
  EXPECT_TRUE(R.DecidedWithoutQueries);
  EXPECT_TRUE(R.Transcript.empty());
}

TEST_F(DiagnosisTest, ValidatedWithoutQueriesWhenLemma2Applies) {
  ScriptedOracle O({});
  DiagnosisResult R = run(M.mkGe(a(), c(5)), M.mkLe(a(), c(0)), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Validated);
  EXPECT_TRUE(R.DecidedWithoutQueries);
}

TEST_F(DiagnosisTest, YesToObligationDischarges) {
  // I = true, phi = alpha >= 0: the obligation is alpha >= 0 itself.
  ScriptedOracle O({Ans::Yes});
  DiagnosisResult R = run(M.getTrue(), M.mkGe(a(), c(0)), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Discharged);
  ASSERT_EQ(R.Transcript.size(), 1u);
  EXPECT_EQ(R.Transcript[0].K, QueryRecord::Kind::Invariant);
}

TEST_F(DiagnosisTest, NoThenWitnessValidates) {
  // phi = alpha >= 0 with no invariants. "No" to the obligation teaches
  // the engine the witness alpha < 0, which contradicts phi -> Validated
  // (Figure 6 line 4 on the next iteration).
  ScriptedOracle O({Ans::No});
  DiagnosisResult R = run(M.getTrue(), M.mkGe(a(), c(0)), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Validated);
}

TEST_F(DiagnosisTest, WitnessQueryYesValidates) {
  // phi = (n >= 0 && alpha >= 0): the obligation needs both variables
  // (cost 1 + |Vars| per Definition 2) while the witness "n < 0 possible"
  // needs only the cheap input (Definition 9), so the engine asks the
  // witness first; "yes" validates.
  ScriptedOracle O({Ans::Yes});
  DiagnosisResult R =
      run(M.getTrue(), M.mkAnd(M.mkGe(n(), c(0)), M.mkGe(a(), c(0))), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Validated);
  ASSERT_GE(R.Transcript.size(), 1u);
  EXPECT_EQ(R.Transcript[0].K, QueryRecord::Kind::Possible);
}

TEST_F(DiagnosisTest, WitnessQueryNoLearnsInvariantAndDischarges) {
  // "No executions with n < 0" teaches n >= 0; the remaining obligation is
  // "alpha >= 0", answered yes -> discharged.
  ScriptedOracle O({Ans::No, Ans::Yes});
  DiagnosisResult R =
      run(M.getTrue(), M.mkAnd(M.mkGe(n(), c(0)), M.mkGe(a(), c(0))), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Discharged);
  ASSERT_EQ(R.Transcript.size(), 2u);
  EXPECT_EQ(R.Transcript[0].K, QueryRecord::Kind::Possible);
  EXPECT_EQ(R.Transcript[1].K, QueryRecord::Kind::Invariant);
}

TEST_F(DiagnosisTest, UnknownFallsBackToDifferentQuery) {
  // First query unknown; Section 5's potential sets must steer the engine
  // to a different query next, and the run still concludes.
  ScriptedOracle O({Ans::Unknown, Ans::Yes});
  DiagnosisResult R =
      run(M.getTrue(), M.mkAnd(M.mkGe(n(), c(0)), M.mkGe(a(), c(0))), O);
  EXPECT_NE(R.Outcome, DiagnosisOutcome::Inconclusive);
  ASSERT_EQ(R.Transcript.size(), 2u);
  EXPECT_NE(R.Transcript[0].Fml, R.Transcript[1].Fml)
      << "second query must differ after an unknown answer";
}

TEST_F(DiagnosisTest, MultiRoundLearning) {
  // phi = (alpha >= 0 && beta >= 0). Expect per-clause decomposition into
  // two invariant subqueries; yes to both discharges.
  ScriptedOracle O({Ans::Yes, Ans::Yes});
  DiagnosisResult R =
      run(M.getTrue(), M.mkAnd(M.mkGe(a(), c(0)), M.mkGe(b(), c(0))), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Discharged);
  EXPECT_EQ(R.Transcript.size(), 2u);
}

TEST_F(DiagnosisTest, SubqueryLearningSurvivesFailedQuery) {
  // First clause invariant yes, second no: the engine learns clause 1 as
  // an invariant and the violation of clause 2 as a witness; with
  // phi = alpha >= 0 && beta >= 0 the witness beta < 0 then validates.
  ScriptedOracle O({Ans::Yes, Ans::No});
  DiagnosisResult R =
      run(M.getTrue(), M.mkAnd(M.mkGe(a(), c(0)), M.mkGe(b(), c(0))), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Validated);
}

TEST_F(DiagnosisTest, ConjunctiveWitnessAskedSequentially) {
  // phi = n1 >= 0 || n2 >= 0 with an unrelated invariant on alpha to keep
  // |Vars| = 3: the obligation would cost an input at price 3, while the
  // witness conjunction n1 < 0 && n2 < 0 costs 2, so the witness is asked
  // first, decomposed into two conditional possibility queries.
  VarId N2 = M.vars().create("n2", VarKind::Input);
  LinearExpr N2v = LinearExpr::variable(N2);
  const Formula *I = M.mkGe(a(), c(0));
  ScriptedOracle O({Ans::Yes, Ans::Yes});
  DiagnosisResult R =
      run(I, M.mkOr(M.mkGe(n(), c(0)), M.mkGe(N2v, c(0))), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Validated);
  ASSERT_EQ(R.Transcript.size(), 2u);
  EXPECT_EQ(R.Transcript[0].K, QueryRecord::Kind::Possible);
  EXPECT_EQ(R.Transcript[1].K, QueryRecord::Kind::Possible);
  EXPECT_FALSE(R.Transcript[1].Given->isTrue())
      << "second conjunct asked under the context of the first";
}

TEST_F(DiagnosisTest, InconclusiveWhenAllUnknown) {
  std::deque<Ans> Lots(64, Ans::Unknown);
  ScriptedOracle O(std::move(Lots));
  DiagnosisResult R = run(M.getTrue(), M.mkGe(a(), n()), O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Inconclusive);
}

TEST_F(DiagnosisTest, TranscriptTextIsRendered) {
  ScriptedOracle O({Ans::Yes});
  DiagnosisResult R = run(M.getTrue(), M.mkGe(a(), c(0)), O);
  ASSERT_FALSE(R.Transcript.empty());
  EXPECT_NE(R.Transcript[0].Text.find("every execution"), std::string::npos);
  EXPECT_NE(R.Transcript[0].Text.find("alpha"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// End-to-end: ErrorDiagnoser + ConcreteOracle classify real programs.
//===----------------------------------------------------------------------===//

struct EndToEndCase {
  const char *Name;
  const char *Source;
  bool IsRealBug;
};

const EndToEndCase Cases[] = {
    {"false_alarm_loop_sum",
     R"(program p(n) {
          var i, j;
          assume(n >= 0);
          i = 0; j = 0;
          while (i <= n) { i = i + 1; j = j + i; } @ [i >= 0 && i > n]
          check(j >= n);
        })",
     false},
    {"real_bug_offset",
     R"(program p(n) {
          var i;
          assume(n >= 0);
          i = 0;
          while (i < n) { i = i + 1; } @ [i >= 0 && i >= n]
          check(i > n);
        })",
     true}, // fails when n == 0 (i == 0 == n)
    {"false_alarm_square",
     R"(program p(n) {
          var k;
          k = n * n;
          check(k + 1 > 0);
        })",
     false},
    {"real_bug_havoc",
     R"(program p() {
          var x;
          x = havoc();
          check(x != 10);
        })",
     true},
};

TEST(EndToEndDiagnosisTest, ConcreteOracleClassifiesCorrectly) {
  for (const EndToEndCase &C : Cases) {
    ErrorDiagnoser D;
    LoadResult L = D.loadSource(C.Source);
    ASSERT_TRUE(L) << C.Name << ": " << L.message();
    auto O = D.makeConcreteOracle();
    DiagnosisResult R = D.diagnose(*O);
    DiagnosisOutcome Expect =
        C.IsRealBug ? DiagnosisOutcome::Validated : DiagnosisOutcome::Discharged;
    EXPECT_EQ(R.Outcome, Expect) << C.Name;
  }
}

TEST(EndToEndDiagnosisTest, IntroExampleDischargedWithOneQuery) {
  const char *Intro = R"(
program intro(flag, n) {
  var k, i, j, z;
  assume(n >= 0);
  k = 1;
  if (flag != 0) { k = n * n; }
  i = 0;
  j = 0;
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @ [i >= 0 && i > n]
  z = k + i + j;
  check(z > 2 * n);
}
)";
  // The paper's annotation is already present, so no auto-annotation.
  ErrorDiagnoser D(abdiag::Options().autoAnnotate(false));
  LoadResult L = D.loadSource(Intro);
  ASSERT_TRUE(L) << L.message();
  EXPECT_FALSE(D.dischargedByAnalysis());
  EXPECT_FALSE(D.validatedByAnalysis());
  auto O = D.makeConcreteOracle();
  DiagnosisResult R = D.diagnose(*O);
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Discharged);
  // The paper: one simple query ("is j >= n after the loop?") suffices.
  EXPECT_EQ(R.Transcript.size(), 1u);
}

TEST(EndToEndDiagnosisTest, GroundTruthMatchesInterpreterExhaustively) {
  for (const EndToEndCase &C : Cases) {
    ErrorDiagnoser D;
    ASSERT_TRUE(D.loadSource(C.Source)) << C.Name;
    auto O = D.makeConcreteOracle();
    EXPECT_EQ(O->anyFailingRun(), C.IsRealBug) << C.Name;
  }
}

} // namespace
