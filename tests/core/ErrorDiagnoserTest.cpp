//===- tests/core/ErrorDiagnoserTest.cpp - Public API tests -----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"

#include "lang/AstPrinter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace abdiag;
using namespace abdiag::core;

namespace {

const char *SafeLoop = R"(
program p(n) {
  var i;
  i = 0;
  while (i < n) { i = i + 1; }
  check(i >= 0);
}
)";

TEST(ErrorDiagnoserTest, ParseErrorsReported) {
  ErrorDiagnoser D;
  LoadResult R = D.loadSource("program broken(");
  EXPECT_FALSE(R);
  EXPECT_FALSE(R.message().empty());
}

TEST(ErrorDiagnoserTest, ParseErrorsCarryPosition) {
  ErrorDiagnoser D;
  // The parse error is on line 3 ("check" misspelled as an expression
  // statement is rejected at the identifier).
  LoadResult R = D.loadSource("program p(n) {\n  var i;\n  ???\n}\n");
  ASSERT_FALSE(R);
  EXPECT_TRUE(R.Diagnostic.hasPosition());
  EXPECT_EQ(R.Diagnostic.Line, 3u);
  EXPECT_GE(R.Diagnostic.Col, 1u);
  // The rendered message embeds the same position.
  EXPECT_NE(R.message().find("line 3"), std::string::npos);
}

TEST(ErrorDiagnoserTest, MissingFileReported) {
  ErrorDiagnoser D;
  LoadResult R = D.loadFile("/nonexistent/path.adg");
  EXPECT_FALSE(R);
  EXPECT_NE(R.message().find("cannot open"), std::string::npos);
  // IO failures have no source position.
  EXPECT_FALSE(R.Diagnostic.hasPosition());
}

TEST(ErrorDiagnoserTest, BackendSelection) {
  // The default diagnoser runs on the native backend; an unknown backend
  // name fails in the constructor with a catchable error.
  ErrorDiagnoser D;
  EXPECT_STREQ(D.procedure().name(), "native");
  ErrorDiagnoser::Options Opts;
  Opts.backend("no-such-backend");
  EXPECT_THROW(ErrorDiagnoser Bad(Opts), smt::BackendError);
}

TEST(ErrorDiagnoserTest, AutoAnnotationToggle) {
  // With auto-annotation the interval analysis adds the loop exit facts,
  // discharging the check; without, the report stays open.
  {
    ErrorDiagnoser D; // AutoAnnotate defaults to true
    LoadResult R = D.loadSource(SafeLoop);
    ASSERT_TRUE(R) << R.message();
    EXPECT_TRUE(D.dischargedByAnalysis());
    std::string Printed = lang::programToString(D.program());
    EXPECT_NE(Printed.find("@ ["), std::string::npos);
  }
  {
    ErrorDiagnoser D(abdiag::Options().autoAnnotate(false));
    LoadResult R = D.loadSource(SafeLoop);
    ASSERT_TRUE(R) << R.message();
    EXPECT_FALSE(D.dischargedByAnalysis());
  }
}

TEST(ErrorDiagnoserTest, ReloadReplacesProgram) {
  ErrorDiagnoser D;
  LoadResult R1 = D.loadSource(SafeLoop);
  ASSERT_TRUE(R1) << R1.message();
  LoadResult R2 = D.loadSource("program q(a) { check(a == a); }");
  ASSERT_TRUE(R2) << R2.message();
  EXPECT_EQ(D.program().Name, "q");
  EXPECT_TRUE(D.dischargedByAnalysis());
}

TEST(ErrorDiagnoserTest, LoadFileRoundTrip) {
  std::string Path = ::testing::TempDir() + "abdiag_test_prog.adg";
  {
    std::ofstream Out(Path);
    Out << SafeLoop;
  }
  ErrorDiagnoser D;
  LoadResult R = D.loadFile(Path);
  ASSERT_TRUE(R) << R.message();
  EXPECT_EQ(D.program().Name, "p");
  std::remove(Path.c_str());
}

TEST(ErrorDiagnoserTest, DiagnoseIsRepeatable) {
  // Engine state must not leak between diagnose() calls.
  ErrorDiagnoser D(abdiag::Options().autoAnnotate(false));
  LoadResult L = D.loadSource(R"(
program p(n) {
  var i;
  assume(n >= 0);
  i = 0;
  while (i < n) { i = i + 1; } @ [i >= 0]
  check(i >= 0);
}
)");
  ASSERT_TRUE(L) << L.message();
  auto O = D.makeConcreteOracle();
  DiagnosisResult R1 = D.diagnose(*O);
  DiagnosisResult R2 = D.diagnose(*O);
  EXPECT_EQ(R1.Outcome, R2.Outcome);
  EXPECT_EQ(R1.Transcript.size(), R2.Transcript.size());
}

TEST(ErrorDiagnoserTest, MaxQueriesBudgetRespected) {
  ErrorDiagnoser D(abdiag::Options().maxQueries(1));
  // Needs two facts; with a one-query budget the run ends inconclusive (a
  // lone "yes" to one clause cannot decide the report).
  LoadResult L = D.loadSource(R"(
program p() {
  var x, y;
  x = havoc();
  y = havoc();
  check(x > 0 && y > 0);
}
)");
  ASSERT_TRUE(L) << L.message();
  ScriptedOracle O({Oracle::Answer::No});
  DiagnosisResult R = D.diagnose(O);
  EXPECT_LE(R.Transcript.size(), 1u);
}

TEST(ErrorDiagnoserTest, OptionSettersChain) {
  // The named setters mutate the flat fields and chain.
  abdiag::Options O;
  O.maxIterations(3)
      .maxQueries(7)
      .decomposeQueries(false)
      .incrementalMsa(false)
      .msaMaxSubsets(99)
      .costs(CostModel::Uniform);
  EXPECT_EQ(O.MaxIterations, 3);
  EXPECT_EQ(O.MaxQueries, 7);
  EXPECT_FALSE(O.DecomposeQueries);
  EXPECT_FALSE(O.IncrementalMsa);
  EXPECT_EQ(O.MsaMaxSubsets, 99u);
  EXPECT_EQ(O.Costs, CostModel::Uniform);
  // And the per-layer views carry them through.
  DiagnosisConfig C = O.diagnosisConfig();
  EXPECT_EQ(C.MaxIterations, 3);
  EXPECT_EQ(C.MaxQueries, 7);
  EXPECT_FALSE(C.DecomposeQueries);
  EXPECT_FALSE(C.IncrementalMsa);
  EXPECT_EQ(C.MsaMaxSubsets, 99u);
  EXPECT_EQ(C.Costs, CostModel::Uniform);
}

} // namespace
