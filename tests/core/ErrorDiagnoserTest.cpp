//===- tests/core/ErrorDiagnoserTest.cpp - Public API tests -----------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"

#include "lang/AstPrinter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace abdiag;
using namespace abdiag::core;

namespace {

const char *SafeLoop = R"(
program p(n) {
  var i;
  i = 0;
  while (i < n) { i = i + 1; }
  check(i >= 0);
}
)";

TEST(ErrorDiagnoserTest, ParseErrorsReported) {
  ErrorDiagnoser D;
  std::string Err;
  EXPECT_FALSE(D.loadSource("program broken(", &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(ErrorDiagnoserTest, MissingFileReported) {
  ErrorDiagnoser D;
  std::string Err;
  EXPECT_FALSE(D.loadFile("/nonexistent/path.adg", &Err));
  EXPECT_NE(Err.find("cannot open"), std::string::npos);
}

TEST(ErrorDiagnoserTest, AutoAnnotationToggle) {
  // With auto-annotation the interval analysis adds the loop exit facts,
  // discharging the check; without, the report stays open.
  {
    ErrorDiagnoser D; // AutoAnnotate defaults to true
    std::string Err;
    ASSERT_TRUE(D.loadSource(SafeLoop, &Err)) << Err;
    EXPECT_TRUE(D.dischargedByAnalysis());
    std::string Printed = lang::programToString(D.program());
    EXPECT_NE(Printed.find("@ ["), std::string::npos);
  }
  {
    ErrorDiagnoser::Options Opts;
    Opts.AutoAnnotate = false;
    ErrorDiagnoser D(Opts);
    std::string Err;
    ASSERT_TRUE(D.loadSource(SafeLoop, &Err)) << Err;
    EXPECT_FALSE(D.dischargedByAnalysis());
  }
}

TEST(ErrorDiagnoserTest, ReloadReplacesProgram) {
  ErrorDiagnoser D;
  std::string Err;
  ASSERT_TRUE(D.loadSource(SafeLoop, &Err)) << Err;
  ASSERT_TRUE(
      D.loadSource("program q(a) { check(a == a); }", &Err))
      << Err;
  EXPECT_EQ(D.program().Name, "q");
  EXPECT_TRUE(D.dischargedByAnalysis());
}

TEST(ErrorDiagnoserTest, LoadFileRoundTrip) {
  std::string Path = ::testing::TempDir() + "abdiag_test_prog.adg";
  {
    std::ofstream Out(Path);
    Out << SafeLoop;
  }
  ErrorDiagnoser D;
  std::string Err;
  ASSERT_TRUE(D.loadFile(Path, &Err)) << Err;
  EXPECT_EQ(D.program().Name, "p");
  std::remove(Path.c_str());
}

TEST(ErrorDiagnoserTest, DiagnoseIsRepeatable) {
  // Engine state must not leak between diagnose() calls.
  ErrorDiagnoser::Options Opts;
  Opts.AutoAnnotate = false;
  ErrorDiagnoser D(Opts);
  std::string Err;
  ASSERT_TRUE(D.loadSource(R"(
program p(n) {
  var i;
  assume(n >= 0);
  i = 0;
  while (i < n) { i = i + 1; } @ [i >= 0]
  check(i >= 0);
}
)",
                           &Err))
      << Err;
  auto O = D.makeConcreteOracle();
  DiagnosisResult R1 = D.diagnose(*O);
  DiagnosisResult R2 = D.diagnose(*O);
  EXPECT_EQ(R1.Outcome, R2.Outcome);
  EXPECT_EQ(R1.Transcript.size(), R2.Transcript.size());
}

TEST(ErrorDiagnoserTest, MaxQueriesBudgetRespected) {
  ErrorDiagnoser::Options Opts;
  Opts.Diagnosis.MaxQueries = 1;
  ErrorDiagnoser D(Opts);
  std::string Err;
  // Needs two facts; with a one-query budget the run ends inconclusive (a
  // lone "yes" to one clause cannot decide the report).
  ASSERT_TRUE(D.loadSource(R"(
program p() {
  var x, y;
  x = havoc();
  y = havoc();
  check(x > 0 && y > 0);
}
)",
                           &Err))
      << Err;
  ScriptedOracle O({Oracle::Answer::No});
  DiagnosisResult R = D.diagnose(O);
  EXPECT_LE(R.Transcript.size(), 1u);
}

} // namespace
