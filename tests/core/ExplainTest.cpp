//===- tests/core/ExplainTest.cpp - Explanation rendering tests -------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Explain.h"

#include "core/ErrorDiagnoser.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::core;

namespace {

std::string diagnoseAndExplain(const char *Src,
                               DiagnosisOutcome *OutOutcome = nullptr) {
  ErrorDiagnoser D(abdiag::Options().autoAnnotate(false));
  LoadResult L = D.loadSource(Src);
  EXPECT_TRUE(L) << L.message();
  auto O = D.makeConcreteOracle();
  DiagnosisResult R = D.diagnose(*O);
  if (OutOutcome)
    *OutOutcome = R.Outcome;
  return explainDiagnosis(R, D.analysis(), D.manager().vars());
}

TEST(ExplainTest, FalseAlarmExplanation) {
  std::string E = diagnoseAndExplain(R"(
program p(n) {
  var i;
  assume(n >= 0);
  i = 0;
  while (i < n) { i = i + 1; } @ [i >= 0]
  check(i >= 0);
}
)");
  EXPECT_NE(E.find("FALSE ALARM"), std::string::npos) << E;
  EXPECT_NE(E.find("no user interaction"), std::string::npos) << E;
}

TEST(ExplainTest, RealBugExplanationListsQuestions) {
  DiagnosisOutcome Outcome;
  std::string E = diagnoseAndExplain(R"(
program p() {
  var x;
  x = havoc();
  check(x != 10);
}
)",
                                     &Outcome);
  ASSERT_EQ(Outcome, DiagnosisOutcome::Validated);
  EXPECT_NE(E.find("REAL BUG"), std::string::npos) << E;
  EXPECT_NE(E.find("1."), std::string::npos) << E;
  EXPECT_NE(E.find("where:"), std::string::npos) << E;
  EXPECT_NE(E.find("unknown call"), std::string::npos)
      << "legend should describe the havoc variable: " << E;
}

TEST(ExplainTest, QueryTrailNumbersAllQuestions) {
  std::string E = diagnoseAndExplain(R"(
program p(n) {
  var i, j;
  assume(n >= 0);
  i = 0; j = 0;
  while (i <= n) { i = i + 1; j = j + i; } @ [i >= 0 && i > n]
  check(j >= n);
}
)");
  EXPECT_NE(E.find("Resolved after"), std::string::npos) << E;
  EXPECT_NE(E.find("->  yes"), std::string::npos) << E;
}

} // namespace
