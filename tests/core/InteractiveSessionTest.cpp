//===- tests/core/InteractiveSessionTest.cpp - Pull-based sessions -----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The inverted Figure 6 loop: sessions step via next()/answer(), many
// sessions interleave from one driver thread, protocol misuse throws
// SessionError without tearing the session down, deadlines fire while the
// oracle is parked, and -- the acceptance bar -- replaying a certified
// corpus through sessions answered by a mirror concrete oracle produces
// verdicts identical to batch TriageEngine rows.
//
//===----------------------------------------------------------------------===//

#include "core/InteractiveSession.h"

#include "core/Triage.h"
#include "smt/FormulaParser.h"
#include "study/Benchmarks.h"
#include "study/Corpus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace abdiag;
using namespace abdiag::core;

namespace {

/// Answers a session query the way a remote mirror client does: parse the
/// wire text into the mirror's manager, ask the mirror's concrete oracle.
/// Exercising the text round trip (rather than the in-process pointers) is
/// the point -- it is what the daemon's clients must rely on.
class MirrorOracle {
public:
  explicit MirrorOracle(const std::string &Path) {
    EXPECT_TRUE(D.loadFile(Path));
    O = D.makeConcreteOracle();
  }

  Answer answer(const SessionEvent &E) {
    smt::FormulaParseOptions PO;
    PO.CreateUnknownVars = false;
    smt::FormulaParseResult F =
        smt::parseFormula(D.manager(), E.Query.Formula, PO);
    if (!F.ok()) {
      ADD_FAILURE() << "unparseable wire formula: " << E.Query.Formula << ": "
                    << F.Error;
      return Answer::Unknown;
    }
    if (E.K == SessionEvent::Kind::AskInvariant)
      return O->isInvariant(F.F);
    const smt::Formula *Given = D.manager().getTrue();
    if (!E.Query.GivenText.empty()) {
      smt::FormulaParseResult G =
          smt::parseFormula(D.manager(), E.Query.GivenText, PO);
      if (!G.ok()) {
        ADD_FAILURE() << "unparseable wire given: " << E.Query.GivenText;
        return Answer::Unknown;
      }
      Given = G.F;
    }
    return O->isPossible(F.F, Given);
  }

private:
  ErrorDiagnoser D;
  std::unique_ptr<ConcreteOracle> O;
};

/// Drives one session to completion with a mirror oracle.
TriageReport replaySession(const std::string &Path, const std::string &Name) {
  InteractiveSession S(SessionInput{Name, "", Path});
  std::unique_ptr<MirrorOracle> Mirror; // lazy, like the wire client
  for (;;) {
    SessionEvent E = S.next();
    if (E.K == SessionEvent::Kind::Done)
      return E.Report;
    if (!Mirror)
      Mirror = std::make_unique<MirrorOracle>(Path);
    S.answer(Mirror->answer(E));
  }
}

/// A program the analysis cannot settle alone: every run asks queries.
const char *AsksQueriesSource = R"(
program asks(n) {
  var i, j;
  assume(n >= 0);
  i = 0;
  j = 0;
  while (i < n) {
    i = i + 1;
    j = j + 2;
  } @ [i >= 0]
  check(j >= i);
}
)";

std::string writeTemp(const char *Name, const char *Source) {
  std::string Path = ::testing::TempDir() + Name;
  std::ofstream Out(Path);
  Out << Source;
  return Path;
}

TEST(InteractiveSessionTest, BenchmarkReplayMatchesBatchVerdicts) {
  std::vector<TriageRequest> Queue;
  for (const study::BenchmarkInfo &B : study::benchmarkSuite())
    Queue.emplace_back(study::benchmarkPath(B), B.Name);
  TriageResult Batch = TriageEngine().run(Queue);

  for (size_t I = 0; I < Queue.size(); ++I) {
    TriageReport R = replaySession(Queue[I].Path, Queue[I].Name);
    const TriageReport &B = Batch.Reports[I];
    EXPECT_EQ(R.Status, B.Status) << Queue[I].Name;
    EXPECT_EQ(R.Outcome, B.Outcome) << Queue[I].Name;
    EXPECT_EQ(R.Queries, B.Queries) << Queue[I].Name;
    EXPECT_EQ(R.Iterations, B.Iterations) << Queue[I].Name;
    EXPECT_EQ(R.AnswersYes, B.AnswersYes) << Queue[I].Name;
    EXPECT_EQ(R.AnswersNo, B.AnswersNo) << Queue[I].Name;
    EXPECT_EQ(R.AnswersUnknown, B.AnswersUnknown) << Queue[I].Name;
    EXPECT_EQ(R.Escalated, B.Escalated) << Queue[I].Name;
    EXPECT_EQ(R.AnalysisAlone, B.AnalysisAlone) << Queue[I].Name;
  }
}

TEST(InteractiveSessionTest, GeneratedCorpusReplayMatchesBatchVerdicts) {
  study::CorpusOptions CO;
  CO.Seed = 20260807;
  CO.Count = 8;
  study::CorpusGenerator Gen(CO);

  for (size_t I = 0; I < CO.Count; ++I) {
    study::CorpusProgram P = Gen.generate(I);
    std::string Path = writeTemp(P.FileName.c_str(), P.Source.c_str());

    TriageResult Batch =
        TriageEngine().run({TriageRequest(Path, P.Name)});
    const TriageReport &B = Batch.Reports[0];
    TriageReport R = replaySession(Path, P.Name);
    EXPECT_EQ(R.Status, B.Status) << P.Name;
    EXPECT_EQ(R.Outcome, B.Outcome) << P.Name;
    EXPECT_EQ(R.Queries, B.Queries) << P.Name;
    std::filesystem::remove(Path);
  }
}

TEST(InteractiveSessionTest, InterleavedSessionsStepIndependently) {
  // Three sessions over the same program, stepped round-robin from one
  // thread: each must see its own query sequence and reach the same
  // verdict, with per-session answer bookkeeping never crossing over.
  std::string Path = writeTemp("interleaved.adg", AsksQueriesSource);
  MirrorOracle Mirror(Path);

  constexpr size_t N = 3;
  std::vector<std::unique_ptr<InteractiveSession>> Sessions;
  for (size_t I = 0; I < N; ++I)
    Sessions.push_back(std::make_unique<InteractiveSession>(
        SessionInput{"s" + std::to_string(I), "", Path}));

  std::vector<TriageReport> Reports(N);
  std::vector<bool> Done(N, false);
  std::vector<uint64_t> NextIndex(N, 0);
  size_t Finished = 0;
  while (Finished < N) {
    for (size_t I = 0; I < N; ++I) {
      if (Done[I])
        continue;
      SessionEvent E = Sessions[I]->next();
      if (E.K == SessionEvent::Kind::Done) {
        Reports[I] = E.Report;
        Done[I] = true;
        ++Finished;
        continue;
      }
      // Query indices are per-session and strictly sequential.
      EXPECT_EQ(E.Query.Index, NextIndex[I]) << "session " << I;
      ++NextIndex[I];
      Sessions[I]->answer(Mirror.answer(E));
    }
  }

  ASSERT_GT(Reports[0].Queries, 0u) << "test program must ask queries";
  for (size_t I = 1; I < N; ++I) {
    EXPECT_EQ(Reports[I].Status, Reports[0].Status);
    EXPECT_EQ(Reports[I].Outcome, Reports[0].Outcome);
    EXPECT_EQ(Reports[I].Queries, Reports[0].Queries);
  }
  std::filesystem::remove(Path);
}

TEST(InteractiveSessionTest, AnswerAfterDoneThrows) {
  InteractiveSession S(SessionInput{"done", "program t(n) { check(1 > 0); }", ""});
  while (!S.finished())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  SessionEvent E = S.next();
  ASSERT_EQ(E.K, SessionEvent::Kind::Done);
  EXPECT_EQ(E.Report.Status, TriageStatus::Diagnosed);
  EXPECT_THROW(S.answer(Answer::Yes), SessionError);
  // next() keeps re-delivering Done; the protocol error changed nothing.
  EXPECT_EQ(S.next().K, SessionEvent::Kind::Done);
  EXPECT_THROW(S.answer(Answer::No), SessionError);
}

TEST(InteractiveSessionTest, AnswerWithoutPendingQueryThrows) {
  // Whichever state the worker is in -- still computing (no query posted)
  // or already done -- an unsolicited answer is a SessionError, and the
  // session still runs to its verdict afterwards.
  InteractiveSession S(SessionInput{"nopend", "program t(n) { check(1 > 0); }", ""});
  EXPECT_THROW(S.answer(Answer::Unknown), SessionError);
  SessionEvent E = S.next();
  ASSERT_EQ(E.K, SessionEvent::Kind::Done);
  EXPECT_EQ(E.Report.Outcome, DiagnosisOutcome::Discharged);
}

TEST(InteractiveSessionTest, DoubleAnswerThrows) {
  std::string Path = writeTemp("double_answer.adg", AsksQueriesSource);
  InteractiveSession S(SessionInput{"dbl", "", Path});
  SessionEvent E = S.next();
  ASSERT_NE(E.K, SessionEvent::Kind::Done);
  S.answer(Answer::Unknown);
  // The second answer races the worker: either it has not consumed the
  // first one yet (double answer) or it is computing / has posted the next
  // query. Only the first case throws, so spin until the error path is
  // exercised or the next event shows up.
  for (;;) {
    try {
      S.answer(Answer::Unknown);
    } catch (const SessionError &) {
      break; // double-answer (or answer-after-done) rejected: pass
    }
    SessionEvent Next = S.next();
    if (Next.K == SessionEvent::Kind::Done) {
      // Consumed every query without ever racing the worker; the
      // answer-after-done variant must still throw.
      EXPECT_THROW(S.answer(Answer::Unknown), SessionError);
      break;
    }
  }
  std::filesystem::remove(Path);
}

TEST(InteractiveSessionTest, DeadlineExpiresWhileParked) {
  std::string Path = writeTemp("deadline_parked.adg", AsksQueriesSource);
  InteractiveSessionOptions Opts;
  Opts.DeadlineMs = 150;
  InteractiveSession S(SessionInput{"dead", "", Path}, Opts);

  SessionEvent E = S.next();
  ASSERT_NE(E.K, SessionEvent::Kind::Done) << "program should ask first";
  // Never answer: the worker is parked in the oracle when the deadline
  // hits, so the timed wait (not the solver's poll loop) must wake it.
  auto Start = std::chrono::steady_clock::now();
  for (;;) {
    E = S.next();
    if (E.K == SessionEvent::Kind::Done)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_LT(std::chrono::steady_clock::now() - Start,
              std::chrono::seconds(30));
  }
  EXPECT_EQ(E.Report.Status, TriageStatus::Timeout);
  std::filesystem::remove(Path);
}

TEST(InteractiveSessionTest, CancelWhileParkedReportsCancelled) {
  std::string Path = writeTemp("cancel_parked.adg", AsksQueriesSource);
  InteractiveSession S(SessionInput{"cxl", "", Path});
  SessionEvent E = S.next();
  ASSERT_NE(E.K, SessionEvent::Kind::Done);
  S.cancel();
  while ((E = S.next()).K != SessionEvent::Kind::Done)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(E.Report.Status, TriageStatus::Cancelled);
  EXPECT_TRUE(S.finished());
  // cancel() after done is a no-op.
  S.cancel();
  EXPECT_EQ(S.result().Status, TriageStatus::Cancelled);
  std::filesystem::remove(Path);
}

TEST(InteractiveSessionTest, PollDeliversEachEventOnce) {
  std::string Path = writeTemp("poll_once.adg", AsksQueriesSource);
  MirrorOracle Mirror(Path);
  InteractiveSession S(SessionInput{"poll", "", Path});
  size_t Asks = 0;
  for (;;) {
    std::optional<SessionEvent> E = S.poll();
    if (!E) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (E->K == SessionEvent::Kind::Done)
      break;
    ++Asks;
    // Until answered, poll() must stay silent about the same query.
    EXPECT_FALSE(S.poll().has_value());
    S.answer(Mirror.answer(*E));
  }
  EXPECT_GT(Asks, 0u);
  // Done was delivered; poll() has nothing further.
  EXPECT_FALSE(S.poll().has_value());
  // But next() re-delivers it forever.
  EXPECT_EQ(S.next().K, SessionEvent::Kind::Done);
  std::filesystem::remove(Path);
}

TEST(InteractiveSessionTest, OnEventFiresForEveryAskAndDone) {
  std::string Path = writeTemp("onevent.adg", AsksQueriesSource);
  MirrorOracle Mirror(Path);
  std::atomic<size_t> Events{0};
  InteractiveSessionOptions Opts;
  Opts.OnEvent = [&] { Events.fetch_add(1); };
  InteractiveSession S(SessionInput{"ev", "", Path}, Opts);
  size_t Asks = 0;
  for (;;) {
    SessionEvent E = S.next();
    if (E.K == SessionEvent::Kind::Done)
      break;
    ++Asks;
    S.answer(Mirror.answer(E));
  }
  // One callback per ask plus one for Done. The Done callback may still be
  // in flight on the worker when next() returns, so allow it to land.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (Events.load() < Asks + 1 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(Events.load(), Asks + 1);
  std::filesystem::remove(Path);
}

TEST(InteractiveSessionTest, LoadErrorReportsWithoutQueries) {
  InteractiveSession S(SessionInput{"bad", "program oops(", ""});
  SessionEvent E = S.next();
  ASSERT_EQ(E.K, SessionEvent::Kind::Done);
  EXPECT_EQ(E.Report.Status, TriageStatus::LoadError);
  EXPECT_EQ(E.Report.Queries, 0u);
}

TEST(InteractiveSessionTest, DestructorCancelsRunningSession) {
  std::string Path = writeTemp("dtor.adg", AsksQueriesSource);
  {
    InteractiveSession S(SessionInput{"gone", "", Path});
    SessionEvent E = S.next();
    ASSERT_NE(E.K, SessionEvent::Kind::Done);
    // Abandon the session mid-query; the destructor must unwind the
    // parked worker and join without hanging.
  }
  std::filesystem::remove(Path);
}

TEST(ScriptedOracleTest, ExhaustionPolicyUnknownKeepsGoing) {
  // An empty script under the Abort policy kills the process, under the
  // Unknown policy it answers "I don't know" forever -- the Section 5
  // degradation -- and counts how often it was consulted past the script.
  ErrorDiagnoser D;
  ASSERT_TRUE(D.loadSource(AsksQueriesSource));
  ScriptedOracle O({}, ScriptExhaustion::Unknown);
  DiagnosisResult R = D.diagnose(O);
  EXPECT_GT(O.exhaustedQueries(), 0u);
  // All-unknown answers cannot settle this report.
  EXPECT_EQ(R.Outcome, DiagnosisOutcome::Inconclusive);
}

} // namespace
