//===- tests/core/MsaTest.cpp - Minimum satisfying assignment tests ---------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/NativeBackend.h"
#include "core/Msa.h"

#include "smt/Cooper.h"
#include "smt/FormulaOps.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace abdiag;
using namespace abdiag::core;
using namespace abdiag::smt;

namespace {

class MsaTest : public ::testing::Test {
protected:
  FormulaManager M;
  NativeBackend S{M};
  VarId X = M.vars().create("x", VarKind::Input);
  VarId Y = M.vars().create("y", VarKind::Input);
  VarId Z = M.vars().create("z", VarKind::Abstraction);

  LinearExpr x(int64_t C = 1) { return LinearExpr::variable(X, C); }
  LinearExpr y(int64_t C = 1) { return LinearExpr::variable(Y, C); }
  LinearExpr z(int64_t C = 1) { return LinearExpr::variable(Z, C); }
  LinearExpr c(int64_t V) { return LinearExpr::constant(V); }

  CostFn unitCost() {
    return [](VarId) { return 1; };
  }
};

TEST_F(MsaTest, ValidFormulaNeedsNoAssignment) {
  const Formula *F = M.mkOr(M.mkLe(x(), c(5)), M.mkGe(x(), c(6)));
  MsaResult R = findMsa(S, F, {}, unitCost());
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Cost, 0);
  ASSERT_EQ(R.Candidates.size(), 1u);
  EXPECT_TRUE(R.Candidates[0].Vars.empty());
}

TEST_F(MsaTest, UnsatisfiableFormulaHasNoMsa) {
  const Formula *F = M.mkAnd(M.mkGe(x(), c(1)), M.mkLe(x(), c(0)));
  MsaResult R = findMsa(S, F, {}, unitCost());
  EXPECT_FALSE(R.Found);
}

TEST_F(MsaTest, SingleVariableSuffices) {
  // (x >= 5) => (x >= y) needs only y pinned (e.g. y = 5)... actually
  // assigning y <= 5 any value works; the MSA is {y}.
  const Formula *F = M.mkImplies(M.mkGe(x(), c(5)), M.mkGe(x(), y()));
  MsaResult R = findMsa(S, F, {}, unitCost());
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Cost, 1);
  bool HasYOnly = false;
  for (const auto &Cand : R.Candidates)
    if (Cand.Vars == std::vector<VarId>{Y})
      HasYOnly = true;
  EXPECT_TRUE(HasYOnly);
}

TEST_F(MsaTest, AssignmentActuallySatisfies) {
  // Verify the defining property: sigma(F) is valid.
  const Formula *F =
      M.mkOr(M.mkAnd(M.mkGe(x(), y()), M.mkLe(z(), c(0))),
             M.mkGe(z(), c(10)));
  MsaResult R = findMsa(S, F, {}, unitCost());
  ASSERT_TRUE(R.Found);
  for (const auto &Cand : R.Candidates) {
    std::unordered_map<VarId, LinearExpr> Subst;
    for (const auto &[V, Val] : Cand.Assignment)
      Subst.emplace(V, LinearExpr::constant(Val));
    const Formula *Instantiated = substitute(M, F, Subst);
    EXPECT_TRUE(S.isValid(Instantiated));
  }
}

TEST_F(MsaTest, CostFunctionDirectsChoice) {
  // F: (x = 0) || (y = 0): assigning either variable to 0 works. With x
  // expensive the MSA must pick y.
  const Formula *F = M.mkOr(M.mkEq(x(), c(0)), M.mkEq(y(), c(0)));
  CostFn Cost = [this](VarId V) { return V == X ? int64_t(10) : int64_t(1); };
  MsaResult R = findMsa(S, F, {}, Cost);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Cost, 1);
  for (const auto &Cand : R.Candidates)
    EXPECT_EQ(Cand.Vars, std::vector<VarId>{Y});
}

TEST_F(MsaTest, ConsistencyRejectsAssignments) {
  // F := (x = 5) => anything-valid; MSA {} works. But require consistency
  // with x = 3 ... {} is consistent. Force a variable assignment scenario:
  // F := x >= y; MSA must assign something; consistency with x <= 2 rules
  // out assignments that force x >= 3.
  const Formula *F = M.mkGe(x(), y());
  const Formula *C1 = M.mkLe(x(), c(2));
  MsaResult R = findMsa(S, F, {C1}, unitCost());
  ASSERT_TRUE(R.Found);
  // sigma must keep x <= 2 satisfiable: e.g. {y -> small} or {x,y}.
  for (const auto &Cand : R.Candidates) {
    std::unordered_map<VarId, LinearExpr> Subst;
    for (const auto &[V, Val] : Cand.Assignment)
      Subst.emplace(V, LinearExpr::constant(Val));
    EXPECT_TRUE(S.isSat(substitute(M, C1, Subst)));
    EXPECT_TRUE(S.isValid(substitute(M, F, Subst)));
  }
}

TEST_F(MsaTest, IndividualConsistencyNotJoint) {
  // Two mutually exclusive consistency conditions: sigma must be
  // individually consistent with each, which is possible when sigma leaves
  // their shared variable unconstrained.
  const Formula *F = M.mkImplies(M.mkGe(z(), c(0)), M.mkGe(z(), y()));
  const Formula *C1 = M.mkEq(x(), c(0));
  const Formula *C2 = M.mkEq(x(), c(1)); // contradicts C1
  MsaResult R = findMsa(S, F, {C1, C2}, unitCost());
  ASSERT_TRUE(R.Found) << "conditions are individually satisfiable";
}

TEST_F(MsaTest, MinimalityAgainstBruteForce) {
  Rng Rand(808);
  for (int Round = 0; Round < 25; ++Round) {
    // Random implication between conjunctions; compare MSA cost against
    // brute-force search over variable subsets with values in [-4, 4].
    std::vector<const Formula *> Lhs, Rhs;
    for (int I = 0; I < 2; ++I) {
      Lhs.push_back(M.mkAtom(
          AtomRel::Le, x(Rand.range(-2, 2)).add(y(Rand.range(-2, 2)))
                           .add(z(Rand.range(-2, 2)))
                           .addConst(Rand.range(-3, 3))));
      Rhs.push_back(M.mkAtom(
          AtomRel::Le, x(Rand.range(-2, 2)).add(y(Rand.range(-2, 2)))
                           .add(z(Rand.range(-2, 2)))
                           .addConst(Rand.range(-3, 3))));
    }
    const Formula *F = M.mkImplies(M.mkAnd(Lhs), M.mkAnd(Rhs));
    MsaResult R = findMsa(S, F, {}, unitCost());

    // Brute force: smallest subset size admitting values making F valid.
    std::vector<VarId> Vars = {X, Y, Z};
    int Best = -1;
    for (int Mask = 0; Mask < 8 && Best == -1; ++Mask) {
      // iterate masks by popcount order
      for (int Sub = 0; Sub < 8; ++Sub) {
        if (__builtin_popcount(Sub) != Mask)
          continue;
        // Try all assignments in [-4,4]^|Sub|.
        std::vector<VarId> Chosen;
        for (int I = 0; I < 3; ++I)
          if (Sub & (1 << I))
            Chosen.push_back(Vars[I]);
        std::vector<int64_t> Vals(Chosen.size(), -4);
        while (true) {
          std::unordered_map<VarId, LinearExpr> Subst;
          for (size_t I = 0; I < Chosen.size(); ++I)
            Subst.emplace(Chosen[I], LinearExpr::constant(Vals[I]));
          if (S.isValid(substitute(M, F, Subst))) {
            Best = Mask;
            break;
          }
          if (Chosen.empty())
            break;
          size_t I = 0;
          while (I < Vals.size() && ++Vals[I] > 4) {
            Vals[I] = -4;
            ++I;
          }
          if (I == Vals.size())
            break;
        }
        if (Best != -1)
          break;
      }
      if (Best != -1)
        break;
    }
    if (R.Found) {
      ASSERT_NE(Best, -1) << "MSA found but brute force did not (round "
                          << Round << ")";
      // Brute force restricted to [-4,4] may need MORE variables than the
      // true MSA (which can use any integers), never fewer.
      EXPECT_LE(R.Cost, Best) << "round " << Round;
    }
  }
}

TEST_F(MsaTest, CollectsMultipleMinimumSets) {
  // Symmetric formula: (x = 0) || (y = 0) has two unit-cost MSAs.
  const Formula *F = M.mkOr(M.mkEq(x(), c(0)), M.mkEq(y(), c(0)));
  MsaResult R = findMsa(S, F, {}, unitCost());
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Cost, 1);
  EXPECT_EQ(R.Candidates.size(), 2u);
}

TEST_F(MsaTest, IncrementalSearchMatchesFreshSolverSearch) {
  // The session-backed search must find the same cost and variable subsets
  // as the per-candidate fresh-solver search on randomized targets, with
  // and without consistency conditions.
  Rng Rand(424242);
  for (int Round = 0; Round < 20; ++Round) {
    std::vector<const Formula *> Lhs, Rhs;
    for (int I = 0; I < 2; ++I) {
      Lhs.push_back(M.mkAtom(
          AtomRel::Le, x(Rand.range(-2, 2)).add(y(Rand.range(-2, 2)))
                           .add(z(Rand.range(-2, 2)))
                           .addConst(Rand.range(-3, 3))));
      Rhs.push_back(M.mkAtom(
          AtomRel::Le, x(Rand.range(-2, 2)).add(y(Rand.range(-2, 2)))
                           .add(z(Rand.range(-2, 2)))
                           .addConst(Rand.range(-3, 3))));
    }
    const Formula *F = M.mkImplies(M.mkAnd(Lhs), M.mkAnd(Rhs));
    std::vector<const Formula *> Consist;
    if (Round % 2 == 0)
      Consist.push_back(M.mkAnd(Lhs));

    MsaOptions Inc, Fresh;
    Inc.Incremental = true;
    Fresh.Incremental = false;
    MsaResult RInc = findMsa(S, F, Consist, unitCost(), Inc);
    MsaResult RFresh = findMsa(S, F, Consist, unitCost(), Fresh);

    ASSERT_EQ(RInc.Found, RFresh.Found) << "round " << Round;
    if (!RInc.Found)
      continue;
    EXPECT_EQ(RInc.Cost, RFresh.Cost) << "round " << Round;
    auto VarSets = [](const MsaResult &R) {
      std::vector<std::vector<VarId>> Sets;
      for (const MsaCandidate &Cand : R.Candidates)
        Sets.push_back(Cand.Vars);
      std::sort(Sets.begin(), Sets.end());
      return Sets;
    };
    EXPECT_EQ(VarSets(RInc), VarSets(RFresh)) << "round " << Round;
  }
}

} // namespace
