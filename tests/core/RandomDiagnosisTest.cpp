//===- tests/core/RandomDiagnosisTest.cpp - End-to-end soundness property ---===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-pipeline soundness property: for randomly generated programs
/// (auto-annotated by the interval analysis, diagnosed with the exhaustive
/// concrete-execution oracle), the verdict must never contradict the ground
/// truth observed by running the interpreter over the same input box:
///
///   * Discharged  => no completed run fails its check;
///   * Validated   => some completed run fails its check.
///
/// This exercises parser, annotator, symbolic analysis, SMT stack, MSA,
/// abduction, query decomposition and the oracle together on inputs nobody
/// hand-picked.
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"

#include "study/Corpus.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::core;

namespace {

/// Random program with loops, branches, assumes, havoc and products --
/// the shared factory behind both this property test and the certified
/// corpus generator's mixed-statement mode.
std::string randomProgram(Rng &R) { return study::randomMixedProgram(R); }

TEST(RandomDiagnosisTest, VerdictNeverContradictsGroundTruth) {
  Rng R(20260704);
  int Discharged = 0, Validated = 0, Inconclusive = 0;
  for (int Round = 0; Round < 60; ++Round) {
    std::string Src = randomProgram(R);
    ErrorDiagnoser D;
    LoadResult L = D.loadSource(Src);
    ASSERT_TRUE(L) << L.message() << "\n" << Src;
    ConcreteOracleConfig Config;
    Config.InputBound = 5; // keep 60 programs fast
    auto Oracle = D.makeConcreteOracle(Config);
    if (!Oracle->anyCompletedRun())
      continue; // assume() filtered everything out
    bool GroundTruthBug = Oracle->anyFailingRun();
    DiagnosisResult Res = D.diagnose(*Oracle);
    switch (Res.Outcome) {
    case DiagnosisOutcome::Discharged:
      ++Discharged;
      EXPECT_FALSE(GroundTruthBug)
          << "discharged a failing program (round " << Round << "):\n"
          << Src;
      break;
    case DiagnosisOutcome::Validated:
      ++Validated;
      EXPECT_TRUE(GroundTruthBug)
          << "validated a safe program (round " << Round << "):\n"
          << Src;
      break;
    case DiagnosisOutcome::Inconclusive:
      ++Inconclusive;
      break;
    }
  }
  // The pipeline should decide the overwhelming majority of these.
  EXPECT_GT(Discharged + Validated, 40)
      << "discharged=" << Discharged << " validated=" << Validated
      << " inconclusive=" << Inconclusive;
  EXPECT_GT(Discharged, 5);
  EXPECT_GT(Validated, 5);
}

TEST(RandomDiagnosisTest, LemmasSoundOnRandomPrograms) {
  // When the analysis alone decides (Lemmas 1/2), concrete runs must agree
  // even before any oracle is involved.
  Rng R(777777);
  for (int Round = 0; Round < 60; ++Round) {
    std::string Src = randomProgram(R);
    ErrorDiagnoser D;
    LoadResult L = D.loadSource(Src);
    ASSERT_TRUE(L) << L.message() << "\n" << Src;
    ConcreteOracleConfig Config;
    Config.InputBound = 5;
    auto Oracle = D.makeConcreteOracle(Config);
    if (!Oracle->anyCompletedRun())
      continue;
    if (D.dischargedByAnalysis()) {
      EXPECT_FALSE(Oracle->anyFailingRun()) << Src;
    }
    if (D.validatedByAnalysis()) {
      EXPECT_TRUE(Oracle->anyFailingRun()) << Src;
    }
  }
}

} // namespace
