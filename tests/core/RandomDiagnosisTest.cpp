//===- tests/core/RandomDiagnosisTest.cpp - End-to-end soundness property ---===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-pipeline soundness property: for randomly generated programs
/// (auto-annotated by the interval analysis, diagnosed with the exhaustive
/// concrete-execution oracle), the verdict must never contradict the ground
/// truth observed by running the interpreter over the same input box:
///
///   * Discharged  => no completed run fails its check;
///   * Validated   => some completed run fails its check.
///
/// This exercises parser, annotator, symbolic analysis, SMT stack, MSA,
/// abduction, query decomposition and the oracle together on inputs nobody
/// hand-picked.
///
//===----------------------------------------------------------------------===//

#include "core/ErrorDiagnoser.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::core;

namespace {

/// Random program with loops, branches, assumes, havoc and products.
std::string randomProgram(Rng &R) {
  std::string Src = "program rnd(a, b) {\n  var x, y, z;\n";
  auto Expr = [&]() {
    const char *Vars[] = {"a", "b", "x", "y", "z"};
    std::string E = std::to_string(R.range(-6, 6));
    for (const char *V : Vars)
      if (R.chance(0.35))
        E += std::string(" + ") + std::to_string(R.range(-2, 2)) + " * " + V;
    return E;
  };
  if (R.chance(0.6))
    Src += "  assume(a >= " + std::to_string(R.range(-2, 2)) + ");\n";
  int N = static_cast<int>(R.range(2, 6));
  for (int I = 0; I < N; ++I) {
    const char *T = R.chance(0.5) ? "x" : (R.chance(0.5) ? "y" : "z");
    switch (R.range(0, 4)) {
    case 0:
      Src += std::string("  ") + T + " = " + Expr() + ";\n";
      break;
    case 1:
      Src += std::string("  if (") + Expr() + " > " + Expr() + ") { " + T +
             " = " + Expr() + "; } else { " + T + " = " + Expr() + "; }\n";
      break;
    case 2: {
      // A bounded counting loop (always terminates).
      std::string Bound = std::to_string(R.range(1, 6));
      Src += std::string("  ") + T + " = 0;\n";
      Src += std::string("  while (") + T + " < " + Bound + ") { " + T +
             " = " + T + " + 1; }\n";
      break;
    }
    case 3:
      Src += std::string("  ") + T + " = havoc();\n";
      break;
    default:
      Src += std::string("  ") + T + " = " + (R.chance(0.5) ? "a" : "b") +
             " * " + (R.chance(0.5) ? "a" : "b") + ";\n";
      break;
    }
  }
  Src += std::string("  check(") + Expr() +
         (R.chance(0.5) ? " >= " : " != ") + Expr() + ");\n}\n";
  return Src;
}

TEST(RandomDiagnosisTest, VerdictNeverContradictsGroundTruth) {
  Rng R(20260704);
  int Discharged = 0, Validated = 0, Inconclusive = 0;
  for (int Round = 0; Round < 60; ++Round) {
    std::string Src = randomProgram(R);
    ErrorDiagnoser D;
    LoadResult L = D.loadSource(Src);
    ASSERT_TRUE(L) << L.message() << "\n" << Src;
    ConcreteOracleConfig Config;
    Config.InputBound = 5; // keep 60 programs fast
    auto Oracle = D.makeConcreteOracle(Config);
    if (!Oracle->anyCompletedRun())
      continue; // assume() filtered everything out
    bool GroundTruthBug = Oracle->anyFailingRun();
    DiagnosisResult Res = D.diagnose(*Oracle);
    switch (Res.Outcome) {
    case DiagnosisOutcome::Discharged:
      ++Discharged;
      EXPECT_FALSE(GroundTruthBug)
          << "discharged a failing program (round " << Round << "):\n"
          << Src;
      break;
    case DiagnosisOutcome::Validated:
      ++Validated;
      EXPECT_TRUE(GroundTruthBug)
          << "validated a safe program (round " << Round << "):\n"
          << Src;
      break;
    case DiagnosisOutcome::Inconclusive:
      ++Inconclusive;
      break;
    }
  }
  // The pipeline should decide the overwhelming majority of these.
  EXPECT_GT(Discharged + Validated, 40)
      << "discharged=" << Discharged << " validated=" << Validated
      << " inconclusive=" << Inconclusive;
  EXPECT_GT(Discharged, 5);
  EXPECT_GT(Validated, 5);
}

TEST(RandomDiagnosisTest, LemmasSoundOnRandomPrograms) {
  // When the analysis alone decides (Lemmas 1/2), concrete runs must agree
  // even before any oracle is involved.
  Rng R(777777);
  for (int Round = 0; Round < 60; ++Round) {
    std::string Src = randomProgram(R);
    ErrorDiagnoser D;
    LoadResult L = D.loadSource(Src);
    ASSERT_TRUE(L) << L.message() << "\n" << Src;
    ConcreteOracleConfig Config;
    Config.InputBound = 5;
    auto Oracle = D.makeConcreteOracle(Config);
    if (!Oracle->anyCompletedRun())
      continue;
    if (D.dischargedByAnalysis()) {
      EXPECT_FALSE(Oracle->anyFailingRun()) << Src;
    }
    if (D.validatedByAnalysis()) {
      EXPECT_TRUE(Oracle->anyFailingRun()) << Src;
    }
  }
}

} // namespace
