//===- tests/core/TriageTest.cpp - Parallel triage engine -------------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Triage.h"

#include "study/Benchmarks.h"
#include "study/Corpus.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace abdiag;
using namespace abdiag::core;

namespace {

std::vector<TriageRequest> suiteQueue() {
  std::vector<TriageRequest> Q;
  for (const study::BenchmarkInfo &B : study::benchmarkSuite())
    Q.emplace_back(study::benchmarkPath(B), B.Name);
  return Q;
}

std::string writeTemp(const char *Name, const char *Source) {
  std::string Path = ::testing::TempDir() + Name;
  std::ofstream Out(Path);
  Out << Source;
  return Path;
}

/// Non-linear chains whose abduction step runs essentially forever: the
/// only way this report produces a row is the cancellation token.
const char *PathologicalSource = R"(
program pathological(a, b, c, d) {
  var p, q, r, s;
  p = a * b;
  q = c * d;
  r = p * q;
  s = r * r;
  check(7*p + 11*q + 13*r + 17*s > 5*a + 3*b + 2*c + d
        || 19*p - 23*q + 29*r - 31*s < 1000);
}
)";

const char *QuickFalseAlarm = R"(
program quick(n) {
  var i;
  i = 0;
  while (i < n) { i = i + 1; }
  check(i >= 0);
}
)";

TEST(TriageTest, ParallelVerdictsMatchSerial) {
  std::vector<TriageRequest> Queue = suiteQueue();

  TriageOptions Serial;
  Serial.Jobs = 1;
  TriageResult R1 = TriageEngine(Serial).run(Queue);

  TriageOptions Parallel;
  Parallel.Jobs = 4;
  TriageResult R4 = TriageEngine(Parallel).run(Queue);

  ASSERT_EQ(R1.Reports.size(), Queue.size());
  ASSERT_EQ(R4.Reports.size(), Queue.size());
  for (size_t I = 0; I < Queue.size(); ++I) {
    // Reports come back in queue order regardless of completion order.
    EXPECT_EQ(R1.Reports[I].Name, Queue[I].Name);
    EXPECT_EQ(R4.Reports[I].Name, Queue[I].Name);
    // Workers are solver-per-thread, so parallelism must not change any
    // verdict: the diagnosis is deterministic per report.
    EXPECT_EQ(R1.Reports[I].Status, R4.Reports[I].Status) << Queue[I].Name;
    EXPECT_EQ(R1.Reports[I].Outcome, R4.Reports[I].Outcome) << Queue[I].Name;
    EXPECT_EQ(R1.Reports[I].Queries, R4.Reports[I].Queries) << Queue[I].Name;
  }
  // Figure 7 ground truth: 5 real bugs, 6 false alarms, nothing unresolved.
  EXPECT_EQ(R1.Summary.RealBugs, 5u);
  EXPECT_EQ(R1.Summary.FalseAlarms, 6u);
  EXPECT_EQ(R1.Summary.Inconclusive, 0u);
  EXPECT_EQ(R4.Summary.RealBugs, 5u);
  EXPECT_EQ(R4.Summary.FalseAlarms, 6u);
}

TEST(TriageTest, ParallelSpeedupOnMulticore) {
  // Wall-clock speedup needs real cores; on smaller machines only the
  // verdict-equality half of the acceptance criterion is checkable.
  if (std::thread::hardware_concurrency() < 4)
    GTEST_SKIP() << "needs >= 4 hardware threads";
  // Quadruple the suite so per-report noise averages out.
  std::vector<TriageRequest> Queue;
  for (int Rep = 0; Rep < 4; ++Rep)
    for (const study::BenchmarkInfo &B : study::benchmarkSuite())
      Queue.emplace_back(study::benchmarkPath(B), B.Name);

  TriageOptions Serial;
  Serial.Jobs = 1;
  TriageResult R1 = TriageEngine(Serial).run(Queue);
  TriageOptions Parallel;
  Parallel.Jobs = 4;
  TriageResult R4 = TriageEngine(Parallel).run(Queue);
  EXPECT_LT(R4.Summary.WallMs * 2.0, R1.Summary.WallMs)
      << "expected >= 2x speedup with 4 workers (serial "
      << R1.Summary.WallMs << " ms, parallel " << R4.Summary.WallMs << " ms)";
}

TEST(TriageTest, DeadlineTurnsPathologicalReportIntoTimeoutRow) {
  std::string Patho = writeTemp("abdiag_patho.adg", PathologicalSource);
  std::string Quick = writeTemp("abdiag_quick.adg", QuickFalseAlarm);

  std::vector<TriageRequest> Queue = {
      TriageRequest(Quick, "quick-before"),
      TriageRequest(Patho, "pathological"),
      TriageRequest(Quick, "quick-after"),
  };
  TriageOptions Opts;
  Opts.Jobs = 1; // same worker must survive the timeout
  Opts.DeadlineMs = 1000;
  auto Start = std::chrono::steady_clock::now();
  TriageResult R = TriageEngine(Opts).run(Queue);
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  ASSERT_EQ(R.Reports.size(), 3u);
  EXPECT_EQ(R.Reports[0].Status, TriageStatus::Diagnosed);
  EXPECT_EQ(R.Reports[0].Outcome, DiagnosisOutcome::Discharged);
  EXPECT_EQ(R.Reports[1].Status, TriageStatus::Timeout);
  EXPECT_NE(R.Reports[1].Message.find("deadline"), std::string::npos);
  // The batch survives the timeout: the report after the pathological one
  // still gets a full diagnosis from the rebuilt worker.
  EXPECT_EQ(R.Reports[2].Status, TriageStatus::Diagnosed);
  EXPECT_EQ(R.Reports[2].Outcome, DiagnosisOutcome::Discharged);
  EXPECT_EQ(R.Summary.Timeouts, 1u);
  EXPECT_EQ(R.Summary.FalseAlarms, 2u);
  // Cooperative cancellation is prompt: well under 10x the budget even
  // with the polling rate limit (in practice within a few ms).
  EXPECT_LT(WallMs, 10000.0);

  std::remove(Patho.c_str());
  std::remove(Quick.c_str());
}

TEST(TriageTest, LoadErrorRowDoesNotAbortBatch) {
  std::string Bad =
      writeTemp("abdiag_bad.adg", "program broken(\n  ???\n");
  std::string Quick = writeTemp("abdiag_quick2.adg", QuickFalseAlarm);
  std::vector<TriageRequest> Queue = {
      TriageRequest("/nonexistent/missing.adg", "missing"),
      TriageRequest(Bad, "syntax-error"),
      TriageRequest(Quick, "quick"),
  };
  TriageResult R = TriageEngine().run(Queue);
  ASSERT_EQ(R.Reports.size(), 3u);
  EXPECT_EQ(R.Reports[0].Status, TriageStatus::LoadError);
  EXPECT_NE(R.Reports[0].Message.find("cannot open"), std::string::npos);
  EXPECT_EQ(R.Reports[1].Status, TriageStatus::LoadError);
  EXPECT_TRUE(R.Reports[1].LoadDiag.hasPosition());
  EXPECT_EQ(R.Reports[2].Status, TriageStatus::Diagnosed);
  EXPECT_EQ(R.Summary.LoadErrors, 2u);
  EXPECT_EQ(R.Summary.FalseAlarms, 1u);
  std::remove(Bad.c_str());
  std::remove(Quick.c_str());
}

TEST(TriageTest, SummarySolverStatsAreSumOfRowDeltas) {
  TriageResult R = TriageEngine().run(suiteQueue());
  smt::SolverStats Manual;
  for (const TriageReport &Row : R.Reports) {
    Manual += Row.Solver;
    EXPECT_EQ(Row.Backend, "native") << Row.Name;
  }
  EXPECT_EQ(Manual.Queries, R.Summary.Solver.Queries);
  EXPECT_EQ(Manual.TheoryChecks, R.Summary.Solver.TheoryChecks);
  EXPECT_EQ(Manual.CacheHits, R.Summary.Solver.CacheHits);
  EXPECT_EQ(Manual.SessionChecks, R.Summary.Solver.SessionChecks);
  EXPECT_EQ(Manual.QeCacheHits, R.Summary.Solver.QeCacheHits);
  // Per-report deltas are real work, not a shared-cache echo: the suite
  // cannot be diagnosed with zero solver queries.
  EXPECT_GT(Manual.Queries, 0u);
}

TEST(TriageTest, EscalationRetriesInconclusiveReports) {
  // A zero-query budget makes every report inconclusive; triage must
  // retry once with escalated budgets and flag the row.
  std::string Quick = writeTemp("abdiag_quick3.adg", QuickFalseAlarm);
  TriageOptions Opts;
  Opts.Pipeline.autoAnnotate(false).maxQueries(0);
  TriageResult R =
      TriageEngine(Opts).run({TriageRequest(Quick, "starved")});
  ASSERT_EQ(R.Reports.size(), 1u);
  EXPECT_EQ(R.Reports[0].Status, TriageStatus::Diagnosed);
  EXPECT_EQ(R.Reports[0].Outcome, DiagnosisOutcome::Inconclusive);
  EXPECT_TRUE(R.Reports[0].Escalated);
  std::remove(Quick.c_str());

  // With escalation disabled the flag stays clear.
  std::string Quick2 = writeTemp("abdiag_quick4.adg", QuickFalseAlarm);
  Opts.EscalateOnInconclusive = false;
  TriageResult R2 =
      TriageEngine(Opts).run({TriageRequest(Quick2, "starved")});
  ASSERT_EQ(R2.Reports.size(), 1u);
  EXPECT_FALSE(R2.Reports[0].Escalated);
  std::remove(Quick2.c_str());
}

TEST(TriageTest, DirectoryIngestionTriagesEveryAdgFile) {
  // abdiag_triage accepts a directory: every *.adg inside, sorted by name,
  // with file stems as report names (regression for the corpus workflow).
  std::string Dir = ::testing::TempDir() + "abdiag_triage_dir";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  {
    std::ofstream(Dir + "/b_second.adg") << QuickFalseAlarm;
    std::ofstream(Dir + "/a_first.adg") << QuickFalseAlarm;
    std::ofstream(Dir + "/notes.txt") << "not a report";
  }
  study::QueueExpansion Q = study::expandPathArgument(Dir);
  ASSERT_TRUE(Q) << Q.Error;
  ASSERT_EQ(Q.Requests.size(), 2u) << "non-.adg files must be skipped";
  EXPECT_EQ(Q.Requests[0].Name, "a_first");
  EXPECT_EQ(Q.Requests[1].Name, "b_second");

  TriageResult R = TriageEngine().run(Q.Requests);
  ASSERT_EQ(R.Reports.size(), 2u);
  for (const TriageReport &Row : R.Reports) {
    EXPECT_EQ(Row.Status, TriageStatus::Diagnosed) << Row.Name;
    EXPECT_EQ(Row.Outcome, DiagnosisOutcome::Discharged) << Row.Name;
  }
  std::filesystem::remove_all(Dir);
}

TEST(TriageTest, ManifestIngestionMatchesCertifiedClassifications) {
  // abdiag_triage --manifest: the queue comes from manifest.jsonl and each
  // entry carries its certified classification; engine verdicts must match.
  std::string Dir = ::testing::TempDir() + "abdiag_triage_manifest";
  std::filesystem::remove_all(Dir);
  study::CorpusOptions GenOpts;
  GenOpts.Seed = 29;
  GenOpts.Count = 4;
  auto Progs = study::CorpusGenerator(GenOpts).generateAll();
  ASSERT_EQ(study::writeCorpus(Dir, Progs), "");

  study::QueueExpansion Q =
      study::expandManifestArgument(Dir + "/manifest.jsonl");
  ASSERT_TRUE(Q) << Q.Error;
  ASSERT_EQ(Q.Requests.size(), 4u);
  ASSERT_EQ(Q.Expected.size(), 4u);

  TriageResult R = TriageEngine().run(Q.Requests);
  ASSERT_EQ(R.Reports.size(), 4u);
  for (size_t I = 0; I < R.Reports.size(); ++I) {
    ASSERT_EQ(R.Reports[I].Status, TriageStatus::Diagnosed)
        << R.Reports[I].Name;
    DiagnosisOutcome Expect = Q.Expected[I].IsRealBug
                                  ? DiagnosisOutcome::Validated
                                  : DiagnosisOutcome::Discharged;
    EXPECT_EQ(R.Reports[I].Outcome, Expect) << R.Reports[I].Name;
  }
  std::filesystem::remove_all(Dir);
}

TEST(TriageTest, UnknownInjectionIsDeterministicAtJobsOne) {
  // Injection keys on (report name, per-report query index), never on
  // wall clock or PRNG state: two serial runs of the same corpus must be
  // byte-equal down to the per-report unknown counts and potential lists,
  // and a parallel run must land on the same verdicts. (Only verdicts are
  // compared across jobs levels: with more workers, dynamic
  // report-to-worker assignment changes which warm per-worker solver
  // caches serve which report, which can legally reshape the query
  // sequence of an individual report -- see bench/run_bench.sh.)
  std::string Dir = ::testing::TempDir() + "abdiag_triage_inject";
  std::filesystem::remove_all(Dir);
  study::CorpusOptions GenOpts;
  GenOpts.Seed = 61;
  GenOpts.Count = 12;
  GenOpts.Causes = {
      study::ReportCause::ImpreciseInvariant,
      study::ReportCause::MissingAnnotation,
      study::ReportCause::NonLinearArithmetic,
      study::ReportCause::EnvironmentFact,
      study::ReportCause::SummarizedCall,
      study::ReportCause::UnknownAnswer,
  };
  auto Progs = study::CorpusGenerator(GenOpts).generateAll();
  ASSERT_EQ(study::writeCorpus(Dir, Progs), "");
  std::vector<TriageRequest> Queue;
  for (const study::CorpusProgram &P : Progs)
    Queue.emplace_back(Dir + "/" + P.FileName, P.Name);

  TriageOptions Serial;
  Serial.Jobs = 1;
  Serial.InjectUnknownRate = 0.25;
  TriageOptions Parallel = Serial;
  Parallel.Jobs = 4;
  TriageResult A = TriageEngine(Serial).run(Queue);
  TriageResult B = TriageEngine(Serial).run(Queue);
  TriageResult C = TriageEngine(Parallel).run(Queue);

  ASSERT_EQ(A.Reports.size(), Queue.size());
  ASSERT_EQ(B.Reports.size(), Queue.size());
  ASSERT_EQ(C.Reports.size(), Queue.size());
  size_t Unknowns = 0;
  for (size_t I = 0; I < Queue.size(); ++I) {
    EXPECT_EQ(A.Reports[I].Status, B.Reports[I].Status) << Queue[I].Name;
    EXPECT_EQ(A.Reports[I].Outcome, B.Reports[I].Outcome) << Queue[I].Name;
    EXPECT_EQ(A.Reports[I].Queries, B.Reports[I].Queries) << Queue[I].Name;
    EXPECT_EQ(A.Reports[I].AnswersUnknown, B.Reports[I].AnswersUnknown)
        << Queue[I].Name;
    EXPECT_EQ(A.Reports[I].PotentialInvariants, B.Reports[I].PotentialInvariants)
        << Queue[I].Name;
    EXPECT_EQ(A.Reports[I].PotentialWitnesses, B.Reports[I].PotentialWitnesses)
        << Queue[I].Name;
    EXPECT_EQ(A.Reports[I].Status, C.Reports[I].Status) << Queue[I].Name;
    EXPECT_EQ(A.Reports[I].Outcome, C.Reports[I].Outcome) << Queue[I].Name;
    Unknowns += A.Reports[I].AnswersUnknown;
  }
  // At a 25% rate over a 12-program corpus the don't-know path must
  // actually fire somewhere.
  EXPECT_GT(Unknowns, 0u);
  std::filesystem::remove_all(Dir);
}

TEST(TriageTest, InlineAndSummaryVerdictsAgreeOnCorpus) {
  // The acceptance bar in miniature: a non-recursive generated corpus
  // (including the interprocedural summarized_call template) triaged with
  // Options::InlineCalls on and off must produce identical verdicts;
  // summary mode additionally reports its interprocedural counters.
  std::string Dir = ::testing::TempDir() + "abdiag_triage_inline_vs_summary";
  std::filesystem::remove_all(Dir);
  study::CorpusOptions GenOpts;
  GenOpts.Seed = 1;
  GenOpts.Count = 12;
  GenOpts.Causes = {
      study::ReportCause::ImpreciseInvariant,
      study::ReportCause::SummarizedCall,
  };
  auto Progs = study::CorpusGenerator(GenOpts).generateAll();
  ASSERT_EQ(study::writeCorpus(Dir, Progs), "");
  std::vector<TriageRequest> Queue;
  for (const study::CorpusProgram &P : Progs)
    Queue.emplace_back(Dir + "/" + P.FileName, P.Name);

  TriageOptions SummaryMode;
  TriageOptions InlineMode;
  InlineMode.Pipeline.inlineCalls(true);
  TriageResult SR = TriageEngine(SummaryMode).run(Queue);
  TriageResult IR = TriageEngine(InlineMode).run(Queue);

  uint64_t Instantiated = 0;
  for (size_t I = 0; I < Queue.size(); ++I) {
    ASSERT_EQ(SR.Reports[I].Status, TriageStatus::Diagnosed) << Queue[I].Name;
    EXPECT_EQ(SR.Reports[I].Outcome, IR.Reports[I].Outcome) << Queue[I].Name;
    Instantiated += SR.Reports[I].SummariesInstantiated;
    EXPECT_EQ(IR.Reports[I].SummariesInstantiated, 0u) << Queue[I].Name;
  }
  EXPECT_GT(Instantiated, 0u);
  std::filesystem::remove_all(Dir);
}

} // namespace
