//===- tests/lang/FunctionInlineTest.cpp - Function inlining tests ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Inline.h"
#include "lang/Interp.h"
#include "lang/Parser.h"

#include "analysis/SymbolicAnalyzer.h"
#include "core/ErrorDiagnoser.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

/// Parses and lowers through the legacy inlining pass (the subject of this
/// test file); the resulting program is call-free.
Program parse(const char *Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  InlineResult I = inlineCalls(*R.Prog);
  EXPECT_TRUE(I.ok()) << I.Error;
  EXPECT_TRUE(I.Prog->Functions.empty());
  EXPECT_EQ(I.Prog->NumCallSites, 0u);
  return std::move(*I.Prog);
}

TEST(FunctionInlineTest, SimpleCall) {
  Program P = parse(R"(
function add(a, b) {
  var r;
  r = a + b;
  return r;
}
program main(x) {
  var y;
  y = add(x, 1);
  check(y == x + 1);
}
)");
  for (int64_t X = -5; X <= 5; ++X)
    EXPECT_EQ(runProgram(P, {X}).Status, RunStatus::CheckPassed) << X;
}

TEST(FunctionInlineTest, MultipleCallSitesAreIndependent) {
  Program P = parse(R"(
function square(v) {
  var r;
  r = v * v;
  return r;
}
program main(x) {
  var a, b;
  a = square(x);
  b = square(x + 1);
  check(a + b >= 0 || a + b < 0);
}
)");
  // Two inlined copies: their locals must not collide.
  RunResult R = runProgram(P, {3});
  EXPECT_EQ(R.Status, RunStatus::CheckPassed);
  EXPECT_EQ(R.FinalStore.at("a"), 9);
  EXPECT_EQ(R.FinalStore.at("b"), 16);
}

TEST(FunctionInlineTest, CalleeLocalsResetPerCall) {
  // The accumulator local starts at 0 in every call.
  Program P = parse(R"(
function count_up(n) {
  var i, acc;
  i = 0;
  acc = 0;
  while (i < n) {
    i = i + 1;
    acc = acc + 1;
  }
  return acc;
}
program main(x) {
  var a, b;
  assume(x >= 0);
  assume(x <= 10);
  a = count_up(x);
  b = count_up(x);
  check(a == b);
}
)");
  for (int64_t X = 0; X <= 10; ++X)
    EXPECT_EQ(runProgram(P, {X}).Status, RunStatus::CheckPassed) << X;
}

TEST(FunctionInlineTest, LoopsGetFreshIdsPerInline) {
  Program P = parse(R"(
function spin(n) {
  var i;
  i = 0;
  while (i < n) { i = i + 1; }
  return i;
}
program main(x) {
  var a, b;
  assume(x >= 0);
  a = spin(x);
  b = spin(x + 1);
  check(b == a + 1);
}
)");
  EXPECT_EQ(P.NumLoops, 2u) << "each inline gets its own loop";
  RunResult R = runProgram(P, {4});
  EXPECT_EQ(R.Status, RunStatus::CheckPassed);
  // Both loop-exit records exist.
  EXPECT_EQ(R.LoopExitValues.size(), 2u);
}

TEST(FunctionInlineTest, HavocSitesFreshPerInline) {
  Program P = parse(R"(
function read() {
  var r;
  r = havoc();
  return r;
}
program main() {
  var a, b;
  a = read();
  b = read();
  check(a == b || a != b);
}
)");
  EXPECT_EQ(P.NumHavocs, 2u);
  // Different sites can produce different values.
  auto Havoc = [](uint32_t Site, uint64_t) -> int64_t { return Site; };
  RunResult R = runProgram(P, {}, 1000, Havoc);
  EXPECT_NE(R.FinalStore.at("a"), R.FinalStore.at("b"));
}

TEST(FunctionInlineTest, NestedCallsThroughDefinitionOrder) {
  Program P = parse(R"(
function twice(v) {
  var r;
  r = 2 * v;
  return r;
}
function quad(v) {
  var t, r;
  t = twice(v);
  r = twice(t);
  return r;
}
program main(x) {
  var y;
  y = quad(x);
  check(y == 4 * x);
}
)");
  for (int64_t X = -3; X <= 3; ++X)
    EXPECT_EQ(runProgram(P, {X}).Status, RunStatus::CheckPassed) << X;
}

TEST(FunctionInlineTest, RecursionRejected) {
  // Recursion parses (the summary pipeline handles it) but cannot be
  // lowered by inlining; the failure carries the call site's position.
  ParseResult R = parseProgram(R"(
function f(n) {
  var r;
  r = f(n - 1);
  return r;
}
program main(x) { var y; y = f(x); check(y >= 0); }
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Prog->Functions.size(), 1u);
  EXPECT_TRUE(R.Prog->Functions[0].Recursive);
  InlineResult I = inlineCalls(*R.Prog);
  ASSERT_FALSE(I.ok());
  EXPECT_NE(I.Error.find("recursive"), std::string::npos) << I.Error;
  // Anchored at the first reachable call into the cycle: main's `y = f(x)`.
  EXPECT_EQ(I.D.Line, 7u);
}

TEST(FunctionInlineTest, ArityMismatchRejected) {
  ParseResult R = parseProgram(R"(
function f(a, b) { var r; r = a + b; return r; }
program main(x) { var y; y = f(x); check(y >= 0); }
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("argument"), std::string::npos);
}

TEST(FunctionInlineTest, CallInsideExpressionRejected) {
  ParseResult R = parseProgram(R"(
function f(a) { var r; r = a; return r; }
program main(x) { var y; y = f(x) + 1; check(y >= 0); }
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("right-hand side"), std::string::npos);
}

TEST(FunctionInlineTest, InlinedProgramRoundTripsThroughPrinter) {
  Program P = parse(R"(
function add(a, b) { var r; r = a + b; return r; }
program main(x) { var y; y = add(x, 1); check(y > x); }
)");
  std::string Printed = programToString(P);
  ParseResult R2 = parseProgram(Printed);
  ASSERT_TRUE(R2.ok()) << R2.Error << "\n" << Printed;
  EXPECT_EQ(Printed, programToString(*R2.Prog));
}

TEST(FunctionInlineTest, DiagnosisWorksAcrossCalls) {
  // End to end: a false alarm whose resolution needs a fact about a loop
  // inside a callee.
  const char *Src = R"(
function sum_to(n) {
  var i, s;
  i = 0;
  s = 0;
  while (i < n) {
    i = i + 1;
    s = s + i;
  } @ [i >= 0 && i >= n]
  return s;
}
program main(n) {
  var total;
  assume(n >= 1);
  total = sum_to(n);
  check(total >= n);
}
)";
  core::ErrorDiagnoser D;
  core::LoadResult L = D.loadSource(Src);
  ASSERT_TRUE(L) << L.message();
  EXPECT_FALSE(D.dischargedByAnalysis());
  auto O = D.makeConcreteOracle();
  core::DiagnosisResult R = D.diagnose(*O);
  EXPECT_EQ(R.Outcome, core::DiagnosisOutcome::Discharged);
}

TEST(FunctionInlineTest, RecursiveProgramDiagnosesViaSummaries) {
  // Inlining rejects recursion; the default summary pipeline does not. The
  // recursive result is one opaque CallResult alpha and the concrete
  // oracle resolves it from the recorded return value, so diagnosis still
  // reaches a decisive verdict.
  const char *Src = R"(
function dec(n) {
  var r;
  if (n <= 0) { r = 0; } else { r = dec(n - 1); }
  return r;
}
program main(n) {
  var y;
  assume(n >= 0 && n <= 5);
  y = dec(n);
  check(y >= 1);
}
)";
  core::ErrorDiagnoser D;
  core::LoadResult L = D.loadSource(Src);
  ASSERT_TRUE(L) << L.message();
  auto O = D.makeConcreteOracle();
  core::DiagnosisResult R = D.diagnose(*O);
  // dec always returns 0, so the check is a real bug.
  EXPECT_EQ(R.Outcome, core::DiagnosisOutcome::Validated);

  // The discharged twin: the same recursive structure with a passing check.
  const char *OkSrc = R"(
function dec(n) {
  var r;
  if (n <= 0) { r = 0; } else { r = dec(n - 1); }
  return r;
}
program main(n) {
  var y;
  assume(n >= 0 && n <= 5);
  y = dec(n);
  check(y <= 0);
}
)";
  core::ErrorDiagnoser D2;
  ASSERT_TRUE(D2.loadSource(OkSrc));
  auto O2 = D2.makeConcreteOracle();
  core::DiagnosisResult R2 = D2.diagnose(*O2);
  EXPECT_EQ(R2.Outcome, core::DiagnosisOutcome::Discharged);
}

TEST(FunctionInlineTest, InlineAndSummaryModesAgree) {
  // The same non-recursive program diagnosed under Options::InlineCalls
  // and under the default summary pipeline must reach the same verdict:
  // summaries are a representation change, not a semantics change.
  const char *Cases[] = {
      // False alarm resolved through a callee loop fact.
      R"(
function sum_to(n) {
  var i, s;
  i = 0;
  s = 0;
  while (i < n) { i = i + 1; s = s + i; } @ [i >= 0 && i >= n]
  return s;
}
program main(n) {
  var total;
  assume(n >= 1);
  total = sum_to(n);
  check(total >= n);
}
)",
      // Real bug: the second call's larger argument breaks the check.
      R"(
function twice(v) {
  var r;
  r = v + v;
  return r;
}
program main(a) {
  var x, y;
  x = twice(a);
  y = twice(a + 1);
  check(x >= y);
}
)",
  };
  for (const char *Src : Cases) {
    core::ErrorDiagnoser Summary;
    ASSERT_TRUE(Summary.loadSource(Src));
    auto SO = Summary.makeConcreteOracle();
    core::DiagnosisResult SR = Summary.diagnose(*SO);

    core::ErrorDiagnoser Inline{Options().inlineCalls(true)};
    ASSERT_TRUE(Inline.loadSource(Src));
    auto IO = Inline.makeConcreteOracle();
    core::DiagnosisResult IR = Inline.diagnose(*IO);

    EXPECT_EQ(SR.Outcome, IR.Outcome) << Src;
  }
}

} // namespace
