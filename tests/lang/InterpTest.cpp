//===- tests/lang/InterpTest.cpp - Concrete interpreter tests ---------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Interp.h"

#include "lang/CallPlan.h"
#include "lang/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

Program parse(const char *Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(*R.Prog);
}

TEST(InterpTest, StraightLineArithmetic) {
  Program P = parse(
      "program p(a, b) { var c; c = a * 2 + b - 3; check(c == a + a + b - 3); }");
  for (int64_t A = -3; A <= 3; ++A)
    for (int64_t B = -3; B <= 3; ++B)
      EXPECT_EQ(runProgram(P, {A, B}).Status, RunStatus::CheckPassed);
}

TEST(InterpTest, LocalsStartAtZero) {
  Program P = parse("program p() { var x; check(x == 0); }");
  EXPECT_EQ(runProgram(P, {}).Status, RunStatus::CheckPassed);
}

TEST(InterpTest, IfElseBranches) {
  Program P = parse(R"(
program p(a) {
  var r;
  if (a > 0) { r = 1; } else { r = 2; }
  check(r == 1 || r == 2);
}
)");
  EXPECT_EQ(runProgram(P, {5}).Status, RunStatus::CheckPassed);
  EXPECT_EQ(runProgram(P, {-5}).Status, RunStatus::CheckPassed);
  EXPECT_EQ(runProgram(P, {5}).FinalStore.at("r"), 1);
  EXPECT_EQ(runProgram(P, {-5}).FinalStore.at("r"), 2);
}

TEST(InterpTest, WhileLoopSum) {
  // Sum 1..n.
  Program P = parse(R"(
program p(n) {
  var i, s;
  i = 0;
  s = 0;
  while (i < n) {
    i = i + 1;
    s = s + i;
  }
  check(2 * s == n * (n + 1) || n < 0);
}
)");
  for (int64_t N = -2; N <= 10; ++N)
    EXPECT_EQ(runProgram(P, {N}).Status, RunStatus::CheckPassed) << N;
}

TEST(InterpTest, LoopExitValuesRecorded) {
  Program P = parse(R"(
program p(n) {
  var i;
  i = 0;
  while (i < n) { i = i + 1; }
  i = 99;
  check(i == 99);
}
)");
  RunResult R = runProgram(P, {5});
  ASSERT_EQ(R.Status, RunStatus::CheckPassed);
  // The alpha value of i after loop 0 is 5, even though i is 99 at the end.
  ASSERT_TRUE(R.LoopExitValues.count(0));
  EXPECT_EQ(R.LoopExitValues.at(0).at("i"), 5);
  EXPECT_EQ(R.FinalStore.at("i"), 99);
}

TEST(InterpTest, CheckFailureDetected) {
  Program P = parse("program p(a) { check(a != 3); }");
  EXPECT_EQ(runProgram(P, {3}).Status, RunStatus::CheckFailed);
  EXPECT_EQ(runProgram(P, {4}).Status, RunStatus::CheckPassed);
}

TEST(InterpTest, AssumeDiscardsExecutions) {
  Program P = parse("program p(a) { assume(a > 0); check(a > -1); }");
  EXPECT_EQ(runProgram(P, {-5}).Status, RunStatus::AssumeViolated);
  EXPECT_EQ(runProgram(P, {5}).Status, RunStatus::CheckPassed);
}

TEST(InterpTest, FuelExhaustion) {
  Program P = parse(R"(
program p() {
  var i;
  while (0 < 1) { i = i + 1; }
  check(i == 0);
}
)");
  EXPECT_EQ(runProgram(P, {}, /*Fuel=*/100).Status, RunStatus::OutOfFuel);
}

TEST(InterpTest, HavocCallback) {
  Program P = parse(
      "program p() { var x, y; x = havoc(); y = havoc(); check(x < y); }");
  auto Havoc = [](uint32_t Site, uint64_t) -> int64_t {
    return Site == 0 ? 1 : 2;
  };
  EXPECT_EQ(runProgram(P, {}, 1000, Havoc).Status, RunStatus::CheckPassed);
  auto Havoc2 = [](uint32_t, uint64_t) -> int64_t { return 7; };
  EXPECT_EQ(runProgram(P, {}, 1000, Havoc2).Status, RunStatus::CheckFailed);
}

TEST(InterpTest, ShortCircuitSemanticsMatchCpp) {
  // a != 0 && 10 / a ... division is not in the language; emulate with
  // nested comparisons. This test pins down && / || evaluation as boolean.
  Program P = parse(R"(
program p(a) {
  var r;
  if (a > 0 && a < 10) { r = 1; } else { r = 0; }
  if (a < 0 || a > 100) { r = r + 2; }
  check(r >= 0 && r <= 3);
}
)");
  for (int64_t A : {-50, 0, 5, 50, 150})
    EXPECT_EQ(runProgram(P, {A}).Status, RunStatus::CheckPassed) << A;
}

TEST(InterpTest, NestedLoops) {
  Program P = parse(R"(
program p(n) {
  var i, j, c;
  assume(n >= 0);
  assume(n <= 8);
  i = 0;
  c = 0;
  while (i < n) {
    j = 0;
    while (j < n) {
      j = j + 1;
      c = c + 1;
    }
    i = i + 1;
  }
  check(c == n * n);
}
)");
  for (int64_t N = 0; N <= 8; ++N)
    EXPECT_EQ(runProgram(P, {N}).Status, RunStatus::CheckPassed) << N;
}

TEST(InterpTest, CalleeLoopExitsRecordedPerCallInstance) {
  // The interpreter executes calls directly and snapshots callee loop
  // exits under the *global* ids of the call plan: two call instances of
  // the same callee record under two distinct loop ids, both of which the
  // analyzer's summary instantiations name the same way.
  Program P = parse(R"(
function count(n) {
  var k;
  k = 0;
  while (k < n) { k = k + 1; }
  return k;
}
program p(a, b) {
  var x, y;
  x = count(a);
  y = count(b);
  check(x + y == a + b);
}
)");
  CallPlan Plan = buildCallPlan(P);
  EXPECT_EQ(Plan.NumLoops, 2u);
  EXPECT_EQ(Plan.NumCallResults, 0u);
  RunResult R = runProgram(P, {3, 5}, /*Fuel=*/100000, /*Havoc=*/{}, &Plan);
  ASSERT_EQ(R.Status, RunStatus::CheckPassed);
  ASSERT_TRUE(R.LoopExitValues.count(0));
  ASSERT_TRUE(R.LoopExitValues.count(1));
  EXPECT_EQ(R.LoopExitValues.at(0).at("k"), 3);
  EXPECT_EQ(R.LoopExitValues.at(1).at("k"), 5);
}

TEST(InterpTest, RecursiveCallReturnRecordedUnderCallResultId) {
  Program P = parse(R"(
function fib(n) {
  var a, b, r;
  if (n <= 1) { r = n; } else {
    a = fib(n - 1);
    b = fib(n - 2);
    r = a + b;
  }
  return r;
}
program p(n) {
  var y;
  assume(n >= 0 && n <= 8);
  y = fib(n);
  check(y >= 0);
}
)");
  CallPlan Plan = buildCallPlan(P);
  ASSERT_EQ(Plan.NumCallResults, 1u);
  RunResult R = runProgram(P, {7}, /*Fuel=*/100000, /*Havoc=*/{}, &Plan);
  ASSERT_EQ(R.Status, RunStatus::CheckPassed);
  ASSERT_TRUE(R.CallReturns.count(0));
  EXPECT_EQ(R.CallReturns.at(0), 13); // fib(7)
}

TEST(InterpTest, RecursionConsumesFuel) {
  // Unplanned (recursive) frames charge fuel, so runaway recursion ends
  // in OutOfFuel rather than a stack overflow.
  Program P = parse(R"(
function spin(n) {
  var r;
  r = spin(n + 1);
  return r;
}
program p() {
  var y;
  y = spin(0);
  check(y == 0);
}
)");
  EXPECT_EQ(runProgram(P, {}, /*Fuel=*/1000).Status, RunStatus::OutOfFuel);
}

} // namespace
