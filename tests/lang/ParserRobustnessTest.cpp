//===- tests/lang/ParserRobustnessTest.cpp - Fuzz-ish parser tests ----------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness properties: the parsers must never crash -- every input
/// either parses or yields a diagnostic -- and printing a parsed program is
/// a fixpoint (print . parse . print == print).
///
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "smt/FormulaParser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  const char *Pieces[] = {"program", "function", "p",     "(",  ")",  "{",
                          "}",       "var",      "x",     ";",  "=",  "+",
                          "-",       "*",        "while", "if", "@",  "[",
                          "]",       "check",    "1",     "<",  "&&", "!",
                          "havoc",   "return",   ",",     "assume"};
  Rng R(321);
  for (int Round = 0; Round < 500; ++Round) {
    std::string Src;
    int Len = static_cast<int>(R.range(1, 60));
    for (int I = 0; I < Len; ++I) {
      Src += Pieces[R.range(0, static_cast<int64_t>(std::size(Pieces)) - 1)];
      Src += ' ';
    }
    ParseResult P = parseProgram(Src);
    if (!P.ok()) {
      EXPECT_FALSE(P.Error.empty());
    }
  }
}

TEST(ParserRobustnessTest, RandomBytesNeverCrash) {
  Rng R(99);
  for (int Round = 0; Round < 300; ++Round) {
    std::string Src;
    int Len = static_cast<int>(R.range(0, 200));
    for (int I = 0; I < Len; ++I)
      Src += static_cast<char>(R.range(1, 127));
    ParseResult P = parseProgram(Src);
    if (!P.ok()) {
      EXPECT_FALSE(P.Error.empty());
    }
  }
}

TEST(ParserRobustnessTest, FormulaParserRandomBytesNeverCrash) {
  Rng R(7);
  smt::FormulaManager M;
  for (int Round = 0; Round < 300; ++Round) {
    std::string Src;
    int Len = static_cast<int>(R.range(0, 80));
    for (int I = 0; I < Len; ++I)
      Src += static_cast<char>(R.range(32, 126));
    smt::FormulaParseResult P = smt::parseFormula(M, Src);
    if (!P.ok()) {
      EXPECT_FALSE(P.Error.empty());
    }
  }
}

/// Random well-formed program generator (straight-line + ifs + loops).
std::string randomProgram(Rng &R) {
  std::string Src = "program rnd(a, b) {\n  var x, y;\n";
  auto Expr = [&]() {
    const char *Vars[] = {"a", "b", "x", "y"};
    std::string E = std::to_string(R.range(-9, 9));
    for (const char *V : Vars)
      if (R.chance(0.4))
        E += std::string(" + ") + std::to_string(R.range(-3, 3)) + " * " + V;
    return E;
  };
  int N = static_cast<int>(R.range(1, 6));
  for (int I = 0; I < N; ++I) {
    const char *T = R.chance(0.5) ? "x" : "y";
    switch (R.range(0, 3)) {
    case 0:
      Src += std::string("  ") + T + " = " + Expr() + ";\n";
      break;
    case 1:
      Src += std::string("  if (") + Expr() + " > " + Expr() + ") { " + T +
             " = " + Expr() + "; } else { skip; }\n";
      break;
    case 2:
      Src += std::string("  while (") + T + " < " + std::to_string(R.range(0, 5)) +
             ") { " + T + " = " + T + " + 1; }\n";
      break;
    default:
      Src += std::string("  assume(") + Expr() + " <= " + Expr() + ");\n";
      break;
    }
  }
  Src += "  check(x + y >= a - b);\n}\n";
  return Src;
}

TEST(ParserRobustnessTest, PropertyPrintIsFixpoint) {
  Rng R(1234);
  for (int Round = 0; Round < 100; ++Round) {
    std::string Src = randomProgram(R);
    ParseResult P1 = parseProgram(Src);
    ASSERT_TRUE(P1.ok()) << P1.Error << "\n" << Src;
    std::string Printed1 = programToString(*P1.Prog);
    ParseResult P2 = parseProgram(Printed1);
    ASSERT_TRUE(P2.ok()) << P2.Error << "\n" << Printed1;
    EXPECT_EQ(Printed1, programToString(*P2.Prog)) << "round " << Round;
  }
}

/// Random well-formed *interprocedural* program: a helper function
/// (sometimes self-recursive) called once or twice from main.
std::string randomFunctionProgram(Rng &R) {
  bool Recursive = R.chance(0.3);
  std::string Body;
  if (Recursive)
    Body = "  if (a <= 0) { r = " + std::to_string(R.range(-3, 3)) +
           "; } else { r = helper(a - 1); }\n";
  else
    Body = "  r = a + " + std::to_string(R.range(-5, 5)) + ";\n";
  std::string Src = "function helper(a) {\n  var r;\n" + Body +
                    "  return r;\n}\nprogram rnd(n) {\n  var x, y;\n";
  Src += "  x = helper(n);\n";
  if (R.chance(0.5))
    Src += "  y = helper(x + " + std::to_string(R.range(0, 4)) + ");\n";
  else
    Src += "  y = x;\n";
  Src += "  check(x + y >= " + std::to_string(R.range(-9, 9)) + ");\n}\n";
  return Src;
}

TEST(ParserRobustnessTest, PropertyFunctionProgramsPrintFixpoint) {
  Rng R(4321);
  for (int Round = 0; Round < 100; ++Round) {
    std::string Src = randomFunctionProgram(R);
    ParseResult P1 = parseProgram(Src);
    ASSERT_TRUE(P1.ok()) << P1.Error << "\n" << Src;
    ASSERT_EQ(P1.Prog->Functions.size(), 1u);
    std::string Printed1 = programToString(*P1.Prog);
    ParseResult P2 = parseProgram(Printed1);
    ASSERT_TRUE(P2.ok()) << P2.Error << "\n" << Printed1;
    EXPECT_EQ(P1.Prog->Functions[0].Recursive,
              P2.Prog->Functions[0].Recursive);
    EXPECT_EQ(Printed1, programToString(*P2.Prog)) << "round " << Round;
  }
}

TEST(ParserRobustnessTest, CallDiagnosticsCarryPositions) {
  // Every rejection around calls must point at the offending source line:
  // an IDE (or the daemon's load_error frame) anchors on Diag::Line.
  struct Case {
    const char *Src;
    uint32_t Line;
    const char *Needle;
  } Cases[] = {
      // Call to a function that is never defined.
      {"program main(x) {\n  var y;\n  y = ghost(x);\n  check(y >= 0);\n}\n",
       3, "ghost"},
      // Wrong argument count.
      {"function f(a, b) {\n  var r;\n  r = a + b;\n  return r;\n}\n"
       "program main(x) {\n  var y;\n  y = f(x);\n  check(y >= 0);\n}\n",
       8, "argument"},
      // Calls are statements, not sub-expressions.
      {"function f(a) {\n  var r;\n  r = a;\n  return r;\n}\n"
       "program main(x) {\n  var y;\n  y = f(x) + 1;\n  check(y >= 0);\n}\n",
       8, "right-hand side"},
  };
  for (const Case &C : Cases) {
    ParseResult P = parseProgram(C.Src);
    ASSERT_FALSE(P.ok()) << C.Src;
    EXPECT_TRUE(P.D.hasPosition()) << P.Error;
    EXPECT_EQ(P.D.Line, C.Line) << P.Error;
    EXPECT_NE(P.Error.find(C.Needle), std::string::npos) << P.Error;
  }
}

} // namespace
