//===- tests/lang/ParserTest.cpp - Lexer and parser unit tests --------------===//
//
// Part of the abdiag project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/AstPrinter.h"
#include "lang/Lexer.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace abdiag;
using namespace abdiag::lang;

namespace {

TEST(LexerTest, BasicTokens) {
  auto Toks = tokenize("program foo(x) { x = x + 41; }");
  ASSERT_GE(Toks.size(), 10u);
  EXPECT_EQ(Toks[0].Kind, TokKind::KwProgram);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "foo");
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
}

TEST(LexerTest, TwoCharOperators) {
  auto Toks = tokenize("<= >= == != && || < > = !");
  std::vector<TokKind> Kinds;
  for (const auto &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expect = {
      TokKind::Le,     TokKind::Ge,   TokKind::EqEq, TokKind::NotEq,
      TokKind::AndAnd, TokKind::OrOr, TokKind::Lt,   TokKind::Gt,
      TokKind::Assign, TokKind::Bang, TokKind::Eof};
  EXPECT_EQ(Kinds, Expect);
}

TEST(LexerTest, CommentsAndPositions) {
  auto Toks = tokenize("x // comment\n# another\ny");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "x");
  EXPECT_EQ(Toks[1].Text, "y");
  EXPECT_EQ(Toks[1].Line, 3u);
}

TEST(LexerTest, NumbersAndInvalidChars) {
  auto Toks = tokenize("12345 $");
  EXPECT_EQ(Toks[0].Kind, TokKind::Number);
  EXPECT_EQ(Toks[0].Number, 12345);
  EXPECT_EQ(Toks[1].Kind, TokKind::Error);
}

const char *Intro = R"(
program intro(flag, n) {
  var k, i, j, z;
  assume(n >= 0);
  k = 1;
  if (flag != 0) { k = n * n; }
  i = 0;
  j = 0;
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @ [i >= 0 && i > n]
  z = k + i + j;
  check(z > 2 * n);
}
)";

TEST(ParserTest, ParsesIntroExample) {
  ParseResult R = parseProgram(Intro);
  ASSERT_TRUE(R.ok()) << R.Error;
  const Program &P = *R.Prog;
  EXPECT_EQ(P.Name, "intro");
  EXPECT_EQ(P.Params, (std::vector<std::string>{"flag", "n"}));
  EXPECT_EQ(P.Locals, (std::vector<std::string>{"k", "i", "j", "z"}));
  EXPECT_EQ(P.NumLoops, 1u);
  ASSERT_NE(P.Check, nullptr);
}

TEST(ParserTest, RoundTripThroughPrinter) {
  ParseResult R1 = parseProgram(Intro);
  ASSERT_TRUE(R1.ok()) << R1.Error;
  std::string Printed = programToString(*R1.Prog);
  ParseResult R2 = parseProgram(Printed);
  ASSERT_TRUE(R2.ok()) << R2.Error << "\n" << Printed;
  EXPECT_EQ(Printed, programToString(*R2.Prog)) << "printer not idempotent";
}

TEST(ParserTest, LoopAnnotationAttached) {
  ParseResult R = parseProgram(Intro);
  ASSERT_TRUE(R.ok());
  const auto *Body = cast<BlockStmt>(R.Prog->Body);
  const WhileStmt *Loop = nullptr;
  for (const Stmt *S : Body->stmts())
    if (const auto *W = dyn_cast<WhileStmt>(S))
      Loop = W;
  ASSERT_NE(Loop, nullptr);
  ASSERT_NE(Loop->annot(), nullptr);
  EXPECT_EQ(predToString(Loop->annot()), "i >= 0 && i > n");
}

TEST(ParserTest, UndeclaredVariableRejected) {
  ParseResult R = parseProgram("program p(a) { b = 1; check(a > 0); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("undeclared"), std::string::npos);
}

TEST(ParserTest, DuplicateDeclarationRejected) {
  ParseResult R =
      parseProgram("program p(a) { var a; check(a > 0); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("duplicate"), std::string::npos);
}

TEST(ParserTest, MissingCheckRejected) {
  ParseResult R = parseProgram("program p(a) { a = 1; }");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, ErrorsCarryPositions) {
  ParseResult R = parseProgram("program p(a) {\n  a = ;\n check(a>0); }");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("line 2"), std::string::npos) << R.Error;
}

TEST(ParserTest, ParenthesizedPredicatesAndExpressions) {
  // Both uses of parentheses: grouping a predicate and grouping arithmetic.
  ParseResult R = parseProgram(
      "program p(a, b) { var c; c = (a + b) * 2; "
      "if ((a > 0 && b > 0) || (a + 1) < b) { c = 0; } check(c >= 0); }");
  ASSERT_TRUE(R.ok()) << R.Error;
}

TEST(ParserTest, UnaryMinusAndPrecedence) {
  ParseResult R = parseProgram(
      "program p(a) { var c; c = -a + 2 * a - 1; check(c == a - 1); }");
  ASSERT_TRUE(R.ok()) << R.Error;
  // 2 * a binds tighter than +.
  std::string S = programToString(*R.Prog);
  EXPECT_NE(S.find("2 * a"), std::string::npos);
}

TEST(ParserTest, HavocSitesNumbered) {
  ParseResult R = parseProgram(
      "program p() { var x, y; x = havoc(); y = havoc(); check(x == y); }");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Prog->NumHavocs, 2u);
}

TEST(ParserTest, ElseIfChains) {
  ParseResult R = parseProgram(R"(
program p(a) {
  var r;
  if (a > 10) { r = 2; }
  else if (a > 5) { r = 1; }
  else { r = 0; }
  check(r >= 0);
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
}

TEST(ParserTest, ProgramLocCountsNonBlankLines) {
  ParseResult R = parseProgram(Intro);
  ASSERT_TRUE(R.ok());
  size_t Loc = programLoc(*R.Prog);
  EXPECT_GE(Loc, 12u);
  EXPECT_LE(Loc, 20u);
}

} // namespace
